// Command ichannels regenerates the paper's figures and tables and runs
// covert-channel demonstrations on the simulator.
//
// Usage:
//
//	ichannels list                      list available experiments
//	ichannels exp <id> [-seed N]        run one experiment (e.g. fig10a)
//	ichannels exp all [-seed N]         run every experiment serially
//	ichannels run [ids...|--all] [-parallel N] [-seed N] [-json]
//	                                    batch experiments on a worker pool
//	ichannels scenario run spec.json    run declarative scenario spec(s)
//	ichannels scenario schema           print the scenario JSON schema
//	ichannels sweep run sweep.json      expand and run a parameter grid
//	ichannels sweep expand sweep.json   print a grid's expanded cells
//	ichannels sweep schema              print the sweep JSON schema
//	ichannels serve [-addr HOST:PORT]   serve the scenario API over HTTP
//	ichannels demo [-kind K] [-seed N]  transmit a message covertly
//	ichannels spy [-seed N]             instruction-class inference demo
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"ichannels"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = list()
	case "exp":
		err = runExp(os.Args[2:])
	case "run":
		err = runBatch(os.Args[2:])
	case "scenario":
		err = scenarioCmd(os.Args[2:])
	case "sweep":
		err = sweepCmd(os.Args[2:])
	case "store":
		err = storeCmd(os.Args[2:])
	case "serve":
		err = serveCmd(os.Args[2:])
	case "demo":
		err = demo(os.Args[2:])
	case "spy":
		err = spy(os.Args[2:])
	case "trace":
		err = traceCmd(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ichannels:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ichannels list                      list available experiments
  ichannels exp <id>|all [-seed N]    regenerate paper figures/tables (serial)
  ichannels run [ids...] [--all] [-parallel N] [-seed N] [-json]
                                      batch experiments on a worker pool
  ichannels scenario run <spec.json...|-> [-parallel N] [-seed N] [-json|-ndjson] [-store DIR|URL [-cache DIR] [-resume]]
                                      run declarative scenario spec(s) (object or array per file)
  ichannels scenario schema           print the scenario spec JSON schema
  ichannels sweep run <sweep.json|-> [-parallel N] [-seed N] [-json|-ndjson] [-store DIR|URL [-cache DIR] [-resume]]
                                     [-refine] [-workers URL,URL,...]
                                      expand a parameter grid and run it (streaming, grouped aggregate;
                                      -store persists cells, -resume serves surviving cells from it;
                                      with a remote -store URL, -cache DIR keeps a read-through replica:
                                      local hits skip the network, remote hits are verified once and
                                      kept, writes flush upstream asynchronously;
                                      a spec with a refine block runs adaptively — coarse pass, then
                                      only regions whose metric moves re-expand; -refine asserts one;
                                      -workers dispatches cells to 'serve -worker' nodes, with verified
                                      responses, redispatch on failure, and byte-identical output)
  ichannels sweep expand <sweep.json|-> [-json]
                                      print a grid's expanded cells without running them
  ichannels sweep schema              print the sweep spec JSON schema
  ichannels store ls|verify|gc|pack <dir> [-json] (gc: [-max-age DUR] [-max-bytes N])
                                      list, integrity-check, clean, or migrate a result store directory
                                      (both layouts: per-file entries or packed segments; gc retention:
                                      drop entries older than -max-age, then evict oldest until the
                                      corpus fits -max-bytes; pack migrates per-file -> packed segments
                                      in place, idempotent and crash-resumable)
  ichannels store sync <dir> -to URL [-json]
                                      push every local entry the remote corpus lacks (reconcile a
                                      -cache replica after a partition, dropped flushes, or a remote
                                      wipe; idempotent — deterministic results make pushes byte-stable)
  ichannels store bench [-n N] [-reads N] [-layout both|perfile|packed] [-dir DIR] [-json|-bench]
                                      fill a synthetic corpus and measure write throughput, warm-read
                                      latency, and gc time per layout (-bench emits go-bench lines)
  ichannels serve [-addr HOST:PORT] [-store DIR|URL [-cache DIR]] [-worker] [-share]
                  [-gc-every DUR [-max-age DUR] [-max-bytes N]]
                                      HTTP v1 API: GET /v1/experiments, GET /v1/scenarios/schema,
                                      POST /v1/scenarios, POST /v1/sweeps, GET /v1/sweeps/schema,
                                      GET /v1/stats (+ legacy /experiments, /run/{name};
                                      -store = durable result tier, either layout or a remote URL;
                                      -cache layers a local read-through replica over a remote URL;
                                      -worker adds POST /v1/cells, the distributed sweep cell endpoint;
                                      -share adds GET/PUT /v1/store/{key} + GET /v1/store, so other
                                      processes can use this corpus via -store http://HOST:PORT;
                                      -gc-every runs server-side retention on a timer: corrupt and
                                      expired entries dropped, oldest evicted to fit -max-bytes, and
                                      oversized uploads rejected at the door; config + last report
                                      are advertised on /v1/stats)
  ichannels demo [-kind thread|smt|cores|retire|clockmod] [-msg S] [-seed N]
  ichannels spy [-seed N]
  ichannels trace [-proc NAME] [-class C] [-ghz F] [-us D]  CSV Vcc/Icc/IPC trace`)
}

func list() error {
	for _, e := range ichannels.Experiments() {
		fmt.Printf("  %-10s %-6s %s\n", e.ID, e.Section, e.Desc)
	}
	return nil
}

// runBatch executes experiments through the parallel engine. Reports go
// to stdout (deterministic for a fixed seed, regardless of -parallel);
// per-experiment timing goes to stderr.
func runBatch(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	all := fs.Bool("all", false, "run every registered experiment")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size")
	seed := fs.Int64("seed", 1, "base seed (per-experiment seeds derive from it)")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON batch instead of text reports")
	// Accept experiment ids and flags in any order ("run fig13 -seed 7",
	// "run -json fig11 -seed 7"), matching the exp subcommand's id-first
	// convention: alternate between collecting non-flag tokens as ids
	// and handing the rest back to the flag parser.
	var ids []string
	rest := args
	for len(rest) > 0 {
		for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
			ids = append(ids, rest[0])
			rest = rest[1:]
		}
		if len(rest) == 0 {
			break
		}
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if len(fs.Args()) == len(rest) {
			return fmt.Errorf("run: unexpected argument %q", rest[0])
		}
		rest = fs.Args()
	}
	if *all && len(ids) > 0 {
		return errors.New("run: give either --all or explicit experiment ids, not both")
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			return fmt.Errorf("run: experiment %q given more than once (same seed would just repeat the report)", id)
		}
		seen[id] = true
	}
	if !*all && len(ids) == 0 {
		return errors.New("run: no experiments selected (pass ids or --all; see 'ichannels list')")
	}
	if *all {
		ids = nil // engine default: every registered experiment
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	batch, err := ichannels.RunExperiments(ctx, ichannels.BatchOptions{
		IDs: ids, BaseSeed: *seed, Parallel: *parallel,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := batch.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else {
		if err := batch.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	batch.WriteTiming(os.Stderr)
	if failed := batch.Failed(); len(failed) > 0 {
		return fmt.Errorf("run: %d of %d experiments failed (first: %s: %v)",
			len(failed), len(batch.Results), failed[0].ID, failed[0].Err)
	}
	return nil
}

// scenarioCmd dispatches the scenario subcommands.
func scenarioCmd(args []string) error {
	if len(args) < 1 {
		return errors.New("scenario: missing subcommand (run or schema)")
	}
	switch args[0] {
	case "schema":
		_, err := os.Stdout.Write(ichannels.ScenarioSchemaJSON())
		return err
	case "run":
		return scenarioRun(args[1:])
	default:
		return fmt.Errorf("scenario: unknown subcommand %q (run or schema)", args[0])
	}
}

// splitFilesAndFlags separates positional file paths ("-" = stdin) from
// flags, accepting them in any order, and parses the flags into fs —
// the one arg loop the scenario and sweep subcommands share.
func splitFilesAndFlags(cmd string, args []string, fs *flag.FlagSet) ([]string, error) {
	var files []string
	rest := args
	for len(rest) > 0 {
		for len(rest) > 0 && (!strings.HasPrefix(rest[0], "-") || rest[0] == "-") {
			files = append(files, rest[0])
			rest = rest[1:]
		}
		if len(rest) == 0 {
			break
		}
		if err := fs.Parse(rest); err != nil {
			return nil, err
		}
		if len(fs.Args()) == len(rest) {
			return nil, fmt.Errorf("%s: unexpected argument %q", cmd, rest[0])
		}
		rest = fs.Args()
	}
	return files, nil
}

// scenarioRun loads one or more spec files (each a single scenario
// object or an array) and executes them as one batch through the
// engine. Results go to stdout (deterministic for a fixed seed,
// regardless of -parallel); per-scenario timing goes to stderr.
func scenarioRun(args []string) error {
	fs := flag.NewFlagSet("scenario run", flag.ContinueOnError)
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size")
	seed := fs.Int64("seed", 1, "base seed (scenarios that pin no seed derive theirs from it)")
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON batch instead of the comparison table")
	ndjsonOut := fs.Bool("ndjson", false, "emit one JSON outcome per line (the HTTP v1 batch framing)")
	storeDir := fs.String("store", "", "persist results to this store directory")
	cacheDir := fs.String("cache", "", "with a remote -store URL, keep a local read-through replica cache in this directory")
	resume := fs.Bool("resume", false, "serve scenarios the store already holds instead of recomputing them")
	files, err := splitFilesAndFlags("scenario run", args, fs)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return errors.New("scenario run: no spec files given (pass paths or - for stdin)")
	}
	if *jsonOut && *ndjsonOut {
		return errors.New("scenario run: give either -json or -ndjson, not both")
	}
	st, closeStore, err := openRunStore("scenario run", *storeDir, *cacheDir, *resume)
	if err != nil {
		return err
	}
	defer closeStore()

	var specs []ichannels.Scenario
	for _, f := range files {
		var data []byte
		var err error
		if f == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(f)
		}
		if err != nil {
			return fmt.Errorf("scenario run: %w", err)
		}
		loaded, err := decodeSpecs(data)
		if err != nil {
			return fmt.Errorf("scenario run: %s: %w", f, err)
		}
		specs = append(specs, loaded...)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	batch, err := ichannels.RunScenarios(ctx, ichannels.ScenarioBatchOptions{
		Scenarios: specs, BaseSeed: *seed, Parallel: *parallel, Store: st,
	})
	if err != nil {
		return err
	}
	switch {
	case *jsonOut:
		err = batch.WriteJSON(os.Stdout)
	case *ndjsonOut:
		err = batch.WriteNDJSON(os.Stdout)
	default:
		err = batch.WriteText(os.Stdout)
	}
	if err != nil {
		return err
	}
	batch.WriteTiming(os.Stderr)
	if failed := batch.Failed(); len(failed) > 0 {
		return fmt.Errorf("scenario run: %d of %d scenarios failed (first: %s: %v)",
			len(failed), len(batch.Results), failed[0].Scenario.Describe(), failed[0].Err)
	}
	return nil
}

// decodeSpecs parses one spec file through the shared strict decoder
// (the same one the HTTP v1 layer uses), so checked-in specs cannot
// drift from the schema and CLI/wire accept identical payloads.
func decodeSpecs(data []byte) ([]ichannels.Scenario, error) {
	specs, _, err := ichannels.ParseScenarioSpecs(data)
	return specs, err
}

// sweepCmd dispatches the sweep subcommands.
func sweepCmd(args []string) error {
	if len(args) < 1 {
		return errors.New("sweep: missing subcommand (run, expand, or schema)")
	}
	switch args[0] {
	case "schema":
		_, err := os.Stdout.Write(ichannels.SweepSchemaJSON())
		return err
	case "run":
		return sweepRun(args[1:])
	case "expand":
		return sweepExpand(args[1:])
	default:
		return fmt.Errorf("sweep: unknown subcommand %q (run, expand, or schema)", args[0])
	}
}

// loadSweep reads and strictly decodes one sweep spec file (or stdin).
func loadSweep(cmd string, args []string, fs *flag.FlagSet) (ichannels.Sweep, error) {
	files, err := splitFilesAndFlags(cmd, args, fs)
	if err != nil {
		return ichannels.Sweep{}, err
	}
	if len(files) != 1 {
		return ichannels.Sweep{}, fmt.Errorf("%s: give exactly one sweep spec file (or - for stdin); the axes provide the fan-out", cmd)
	}
	var data []byte
	if files[0] == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(files[0])
	}
	if err != nil {
		return ichannels.Sweep{}, fmt.Errorf("%s: %w", cmd, err)
	}
	sw, err := ichannels.ParseSweepSpec(data)
	if err != nil {
		return ichannels.Sweep{}, fmt.Errorf("%s: %s: %w", cmd, files[0], err)
	}
	return sw, nil
}

// sweepRun expands a parameter grid and executes it on the streaming
// engine. Text and -json modes print at the end (compact summaries +
// grouped aggregate; never the full envelopes); -ndjson streams one
// full outcome line per cell as it completes, then the aggregate line —
// the same framing POST /v1/sweeps uses, with byte-identical aggregate
// output for a fixed spec and seed.
func sweepRun(args []string) error {
	fs := flag.NewFlagSet("sweep run", flag.ContinueOnError)
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size")
	seed := fs.Int64("seed", 1, "base seed (cells that pin no seed derive theirs from it)")
	jsonOut := fs.Bool("json", false, "emit the machine-readable summary (cells + aggregate) instead of text")
	ndjsonOut := fs.Bool("ndjson", false, "stream one JSON outcome per cell plus a final aggregate line (the HTTP v1 framing)")
	storeDir := fs.String("store", "", "persist cell results to this store directory")
	cacheDir := fs.String("cache", "", "with a remote -store URL, keep a local read-through replica cache in this directory")
	resume := fs.Bool("resume", false, "serve cells the store already holds instead of recomputing them (resume a killed sweep)")
	refine := fs.Bool("refine", false, "require adaptive refinement: error unless the spec carries a refine block (a spec with one always runs refined)")
	workers := fs.String("workers", "", "comma-separated worker base URLs (ichannels serve -worker nodes) to dispatch cells to")
	sw, err := loadSweep("sweep run", args, fs)
	if err != nil {
		return err
	}
	if *jsonOut && *ndjsonOut {
		return errors.New("sweep run: give either -json or -ndjson, not both")
	}
	if *refine && sw.Refine == nil {
		return errors.New("sweep run: -refine given but the spec has no refine block (see 'ichannels sweep schema')")
	}
	st, closeStore, err := openRunStore("sweep run", *storeDir, *cacheDir, *resume)
	if err != nil {
		return err
	}
	defer closeStore()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := ichannels.SweepOptions{BaseSeed: *seed, Parallel: *parallel}.WithStore(st)
	if *workers != "" {
		pool, err := ichannels.NewWorkerPool(strings.Split(*workers, ","), ichannels.WorkerPoolOptions{})
		if err != nil {
			return fmt.Errorf("sweep run: %w", err)
		}
		opts.Runner = pool
	}
	var enc *json.Encoder
	if *ndjsonOut {
		enc = json.NewEncoder(os.Stdout)
		opts.OnCell = func(o ichannels.SweepCellOutcome) error {
			return enc.Encode(ichannels.SweepCellLine(o))
		}
		opts.OnPass = func(p ichannels.SweepPassStats) error {
			return ichannels.WriteSweepPassLine(os.Stdout, p)
		}
	}
	res, err := ichannels.RunSweep(ctx, sw, opts)
	if err != nil {
		return err
	}
	switch {
	case *ndjsonOut:
		err = res.WriteAggregateLine(os.Stdout)
	case *jsonOut:
		err = res.WriteJSON(os.Stdout)
	default:
		err = res.WriteText(os.Stdout)
	}
	if err != nil {
		return err
	}
	res.WriteTiming(os.Stderr)
	if *workers != "" {
		// Store tallies ride the dist line: hits are cells the corpus
		// served, misses the cells that had to compute, errors the
		// degraded store operations split by class — transient is the
		// network's fault, permanent the bytes' fault (all wall-clock
		// metadata — the aggregate bytes never depend on them).
		storeHits, storeMisses := 0, 0
		if *storeDir != "" {
			storeHits = res.Cached
			storeMisses = len(res.Cells) - res.Cached
		}
		fmt.Fprintf(os.Stderr, "dist: %d remote, %d redispatched, %d corrupt, %d local fallback; store: %d hits, %d misses, %d transient, %d permanent\n",
			res.RemoteDispatched, res.RemoteRedispatched, res.RemoteCorrupt, res.RemoteLocal,
			storeHits, storeMisses, res.StoreTransient, res.StorePermanent)
	}
	writeStoreTierLine(os.Stderr, res.StoreTier, res.StoreTransient, res.StorePermanent)
	if res.Failed > 0 {
		return fmt.Errorf("sweep run: %d of %d cells failed", res.Failed, len(res.Cells))
	}
	return nil
}

// writeStoreTierLine reports the resilient store path's counters when
// a run had a remote corpus behind it: retry/breaker activity on the
// remote leg, cache activity on the replica leg. Wall-clock metadata
// only — the aggregate bytes never depend on it.
func writeStoreTierLine(w io.Writer, t *ichannels.StoreTierStats, transient, permanent int) {
	if t == nil {
		return
	}
	if r := t.Remote; r != nil {
		fmt.Fprintf(w, "store remote: %d attempts, %d retries, %d transient, %d permanent, %d breaker opens, %d fast fails, state %s\n",
			r.Attempts, r.Retries, r.Transient, r.Permanent, r.BreakerOpens, r.FastFails, r.State)
	}
	if c := t.Replica; c != nil {
		fmt.Fprintf(w, "store replica: %d local hits, %d fills, %d remote misses, %d corrupt, %d flushed, %d flush errors, %d dropped\n",
			c.LocalHits, c.RemoteFills, c.RemoteMisses, c.CorruptRemote, c.FlushOK, c.FlushErrors, c.FlushDropped)
	}
	// The engine-side split of degraded store operations: transient is
	// the network's fault (retried, then recomputed), permanent the
	// bytes' fault (a byzantine corpus — rejected, never retried).
	fmt.Fprintf(w, "store errors: %d transient, %d permanent\n", transient, permanent)
}

// sweepExpand prints a grid's cells without running them: a text table
// by default, or (-json) a JSON array of the normalized scenarios —
// which `ichannels scenario run -` accepts verbatim.
func sweepExpand(args []string) error {
	fs := flag.NewFlagSet("sweep expand", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit the cells as a runnable JSON scenario array")
	sw, err := loadSweep("sweep expand", args, fs)
	if err != nil {
		return err
	}
	cells, err := ichannels.ExpandSweep(sw)
	if err != nil {
		return err
	}
	if *jsonOut {
		specs := make([]ichannels.Scenario, len(cells))
		for i, c := range cells {
			specs[i] = c.Scenario
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(specs)
	}
	for _, c := range cells {
		fmt.Printf("%4d  %-16s  %s\n", c.Index, c.Scenario.Hash(), c.Scenario.Name)
	}
	fmt.Printf("%d cells (hash %s, group by %s)\n", len(cells), sw.Hash(), strings.Join(sw.EffectiveGroupBy(), ", "))
	return nil
}

// openRunStore opens the optional -store/-cache/-resume trio the
// scenario and sweep run commands share: no -store means no
// persistence, -store alone persists but recomputes everything
// (re-verifying determinism), -store with -resume serves
// already-materialized results. The spec is a directory (either
// layout, detected) or an http(s) URL naming a `serve -share` corpus;
// with a URL, -cache DIR layers a read-through replica cache over it
// (local hits skip the network, remote hits are verified once and
// kept, writes flush upstream asynchronously). The returned closer
// seals packed segments and drains the replica flush queue, and must
// run after the sweep drains.
func openRunStore(cmd, spec, cache string, resume bool) (ichannels.ResultStore, func() error, error) {
	if spec == "" {
		if resume {
			return nil, nil, fmt.Errorf("%s: -resume needs -store DIR|URL (nothing to resume from)", cmd)
		}
		if cache != "" {
			return nil, nil, fmt.Errorf("%s: -cache needs -store URL (a remote corpus to cache)", cmd)
		}
		return nil, func() error { return nil }, nil
	}
	var st ichannels.ResultStore
	var err error
	if cache != "" {
		if !ichannels.IsRemoteStoreSpec(spec) {
			return nil, nil, fmt.Errorf("%s: -cache only applies to a remote -store URL (a local directory already is the cache)", cmd)
		}
		st, err = ichannels.OpenReplicaStore(cache, spec)
	} else {
		st, err = ichannels.OpenResultStore(spec)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", cmd, err)
	}
	closeStore := func() error { return ichannels.CloseResultStore(st) }
	if !resume {
		return ichannels.WriteOnlyStore(st), closeStore, nil
	}
	return st, closeStore, nil
}

// storeCmd dispatches the result-store maintenance subcommands. Every
// directory subcommand opens through the layout-detecting facade, so
// per-file and packed corpora are served by identical invocations.
func storeCmd(args []string) error {
	if len(args) < 1 {
		return errors.New("store: missing subcommand (ls, verify, gc, pack, sync, or bench)")
	}
	sub := args[0]
	switch sub {
	case "bench":
		return storeBench(args[1:])
	case "sync":
		return storeSync(args[1:])
	case "ls", "verify", "gc", "pack":
	default:
		return fmt.Errorf("store: unknown subcommand %q (ls, verify, gc, pack, sync, or bench)", sub)
	}
	fs := flag.NewFlagSet("store "+sub, flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON")
	var maxAge time.Duration
	var maxBytes int64
	if sub == "gc" {
		fs.DurationVar(&maxAge, "max-age", 0, "also remove intact entries older than this (e.g. 72h; 0 = keep all ages)")
		fs.Int64Var(&maxBytes, "max-bytes", 0, "evict oldest intact entries until the store fits this many bytes (0 = unbounded)")
	}
	dirs, err := splitFilesAndFlags("store "+sub, args[1:], fs)
	if err != nil {
		return err
	}
	if len(dirs) != 1 {
		return fmt.Errorf("store %s: give exactly one store directory", sub)
	}
	if _, err := os.Stat(dirs[0]); err != nil {
		return fmt.Errorf("store %s: %w", sub, err)
	}
	emit := func(v any) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	if sub == "pack" {
		rep, err := ichannels.PackStore(dirs[0])
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(rep)
		}
		for _, p := range rep.Problems {
			fmt.Printf("SKIPPED %s\n", p)
		}
		fmt.Printf("packed %d entries (%d bytes) into %d segments; %d already packed, %d skipped\n",
			rep.Packed, rep.Bytes, rep.Segments, rep.AlreadyPacked, rep.Skipped)
		return nil
	}
	st, err := ichannels.OpenStoreDir(dirs[0])
	if err != nil {
		return err
	}
	defer st.Close()
	switch sub {
	case "ls":
		entries, err := st.List()
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(entries)
		}
		var total int64
		for _, e := range entries {
			fmt.Printf("%-24s %-12d %8d\n", e.Key.Hash, e.Key.Seed, e.Size)
			total += e.Size
		}
		fmt.Printf("%d entries, %d bytes\n", len(entries), total)
	case "verify":
		rep, err := st.Verify()
		if err != nil {
			return err
		}
		if *jsonOut {
			if err := emit(rep); err != nil {
				return err
			}
		} else {
			for _, p := range rep.Problems {
				fmt.Printf("CORRUPT %s: %s\n", p.Path, p.Err)
			}
			fmt.Printf("%d entries, %d bytes, %d corrupt, %d stray files\n",
				rep.Entries, rep.Bytes, len(rep.Problems), rep.Stray)
		}
		if len(rep.Problems) > 0 {
			return fmt.Errorf("store verify: %d corrupt entries (run 'ichannels store gc %s' to remove them)", len(rep.Problems), dirs[0])
		}
	case "gc":
		rep, err := st.GCWith(ichannels.StoreGCOptions{MaxAge: maxAge, MaxBytes: maxBytes})
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(rep)
		}
		fmt.Printf("removed %d corrupt entries, %d stray files, %d expired, %d over budget (%d bytes); %d entries kept, %d foreign files skipped\n",
			rep.RemovedCorrupt, rep.RemovedStray, rep.RemovedExpired, rep.RemovedOverBudget, rep.ReclaimedBytes, rep.Kept, rep.Skipped)
	}
	return nil
}

// storeSync reconciles a local store directory (typically a -cache
// replica) against a remote corpus: every local entry the remote lacks
// is pushed upstream. The recovery path after a partition, a dropped
// flush, or a remote wipe — safe to re-run, since deterministic
// results make every push byte-idempotent.
func storeSync(args []string) error {
	fs := flag.NewFlagSet("store sync", flag.ContinueOnError)
	remote := fs.String("to", "", "remote corpus base URL (a serve -share process); required")
	jsonOut := fs.Bool("json", false, "emit the machine-readable report")
	dirs, err := splitFilesAndFlags("store sync", args, fs)
	if err != nil {
		return err
	}
	if len(dirs) != 1 {
		return errors.New("store sync: give exactly one local store directory")
	}
	if *remote == "" {
		return errors.New("store sync: -to URL is required (the remote corpus to reconcile against)")
	}
	if _, err := os.Stat(dirs[0]); err != nil {
		return fmt.Errorf("store sync: %w", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := ichannels.SyncStoreDir(ctx, dirs[0], *remote)
	if err != nil {
		return fmt.Errorf("store sync: %w", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("synced %s -> %s: %d local, %d remote, %d pushed, %d push errors\n",
		dirs[0], *remote, rep.LocalEntries, rep.RemoteEntries, rep.Pushed, rep.PushErrors)
	if rep.PushErrors > 0 {
		return fmt.Errorf("store sync: %d pushes failed (re-run to retry)", rep.PushErrors)
	}
	return nil
}

// storeBench measures the layouts against each other on a synthetic
// corpus: write throughput, warm-read latency, gc time.
func storeBench(args []string) error {
	fs := flag.NewFlagSet("store bench", flag.ContinueOnError)
	n := fs.Int("n", 1000000, "synthetic entries to write per layout")
	reads := fs.Int("reads", 0, "warm reads to time (0 = one per entry)")
	layoutName := fs.String("layout", "both", "layouts to measure: both, perfile, or packed")
	dir := fs.String("dir", "", "scratch directory (default: a temp dir, removed afterwards)")
	jsonOut := fs.Bool("json", false, "emit the machine-readable report")
	benchOut := fs.Bool("bench", false, "emit go-bench lines (for tools/benchjson)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var layouts []ichannels.ResultStoreLayout
	switch *layoutName {
	case "both":
		layouts = []ichannels.ResultStoreLayout{ichannels.StoreLayoutPerFile, ichannels.StoreLayoutPacked}
	case "perfile":
		layouts = []ichannels.ResultStoreLayout{ichannels.StoreLayoutPerFile}
	case "packed":
		layouts = []ichannels.ResultStoreLayout{ichannels.StoreLayoutPacked}
	default:
		return fmt.Errorf("store bench: unknown -layout %q (both, perfile, or packed)", *layoutName)
	}
	rep, err := ichannels.RunStoreBench(ichannels.StoreBenchOptions{
		Entries: *n, Reads: *reads, Dir: *dir, Layouts: layouts,
	})
	if err != nil {
		return err
	}
	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	case *benchOut:
		for _, lr := range rep.Layouts {
			fmt.Printf("BenchmarkStoreWrite/%s %d %.0f ns/op %.1f entries_per_sec\n",
				lr.Layout, lr.Entries, lr.WriteNSPerOp, lr.WriteEntriesPerSec)
			fmt.Printf("BenchmarkStoreWarmRead/%s %d %.0f ns/op %.0f p95_ns\n",
				lr.Layout, lr.Reads, lr.ReadNSPerOp, lr.ReadP95NS)
			fmt.Printf("BenchmarkStoreGC/%s 1 %.0f ns/op\n", lr.Layout, lr.GCNS)
		}
	default:
		fmt.Printf("%-8s %12s %14s %14s %14s %12s\n",
			"layout", "entries", "write ns/op", "read ns/op", "read p95 ns", "gc ms")
		for _, lr := range rep.Layouts {
			fmt.Printf("%-8s %12d %14.0f %14.0f %14.0f %12.1f\n",
				lr.Layout, lr.Entries, lr.WriteNSPerOp, lr.ReadNSPerOp, lr.ReadP95NS, lr.GCNS/1e6)
		}
	}
	return nil
}

// serveCmd runs the HTTP experiment server until interrupted.
func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	storeSpec := fs.String("store", "", "durable result store: a directory (either layout) or a remote http(s) URL")
	cacheDir := fs.String("cache", "", "with a remote -store URL, keep a local read-through replica cache in this directory")
	worker := fs.Bool("worker", false, "additionally serve POST /v1/cells, the distributed sweep cell endpoint coordinators dispatch to")
	share := fs.Bool("share", false, "additionally serve the store's objects over GET/PUT /v1/store/{key} (requires -store)")
	gcEvery := fs.Duration("gc-every", 0, "run store retention on this interval (0 = never; requires -store)")
	gcMaxAge := fs.Duration("max-age", 0, "retention: remove intact entries older than this (0 = keep all ages)")
	gcMaxBytes := fs.Int64("max-bytes", 0, "retention: evict oldest entries until the store fits this many bytes, and reject larger uploads (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *share && *storeSpec == "" {
		return errors.New("serve: -share needs -store DIR|URL (no corpus to share)")
	}
	if *gcEvery > 0 && *storeSpec == "" {
		return errors.New("serve: -gc-every needs -store DIR|URL (no corpus to retain)")
	}
	if *cacheDir != "" && !ichannels.IsRemoteStoreSpec(*storeSpec) {
		return errors.New("serve: -cache only applies to a remote -store URL (a local directory already is the cache)")
	}
	var st ichannels.ResultStore
	if *storeSpec != "" {
		var err error
		if *cacheDir != "" {
			st, err = ichannels.OpenReplicaStore(*cacheDir, *storeSpec)
		} else {
			st, err = ichannels.OpenResultStore(*storeSpec)
		}
		if err != nil {
			return err
		}
		defer ichannels.CloseResultStore(st)
	}
	api := ichannels.NewAPIServer(ichannels.ServerOptions{
		Store: st, Worker: *worker, ShareStore: *share,
		GCEvery: *gcEvery, GCMaxAge: *gcMaxAge, GCMaxBytes: *gcMaxBytes,
	})
	defer api.Close()
	handler := api.Handler()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	routes := "GET /v1/experiments, GET /v1/scenarios/schema, POST /v1/scenarios, GET /v1/sweeps/schema, POST /v1/sweeps, GET /v1/stats"
	if *worker {
		routes += ", POST /v1/cells"
	}
	if *share {
		routes += ", GET/PUT /v1/store/{key}"
	}
	fmt.Fprintf(os.Stderr, "ichannels: serving the scenario API on http://%s (%s)\n", ln.Addr(), routes)
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}

func runExp(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("exp: missing experiment id (try 'ichannels list')")
	}
	id := args[0]
	fs := flag.NewFlagSet("exp", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	run := func(id string) error {
		rep, err := ichannels.RunExperiment(id, *seed)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(rep)
		return nil
	}
	if id == "all" {
		for _, e := range ichannels.Experiments() {
			if err := run(e.ID); err != nil {
				return err
			}
		}
		return nil
	}
	return run(id)
}

func demo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	kindName := fs.String("kind", "cores",
		"channel kind: "+strings.Join(ichannels.ChannelKindNames(), ", "))
	msg := fs.String("msg", "IChannels", "message to exfiltrate")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var kind ichannels.ChannelKind
	switch *kindName {
	case "thread":
		kind = ichannels.SameThread
	case "smt":
		kind = ichannels.SMT
	case "cores":
		kind = ichannels.CrossCore
	default:
		if ichannels.ChannelKindDescribe(*kindName) != "" {
			// An adopted family (retire, clockmod): run it through the
			// scenario path, which knows how to build and decode it.
			return demoScenario(*kindName, *msg, *seed)
		}
		return fmt.Errorf("demo: unknown kind %q (%s)", *kindName,
			strings.Join(ichannels.ChannelKindNames(), ", "))
	}

	proc := ichannels.CannonLake8121U()
	m, err := ichannels.NewMachine(ichannels.MachineOptions{
		Processor:       proc,
		Noise:           ichannels.NoiseWithRates(500, 100),
		TSCJitterCycles: 200,
		Seed:            *seed,
	})
	if err != nil {
		return err
	}
	ch, err := ichannels.NewChannel(m, ichannels.DefaultChannelParams(kind, proc))
	if err != nil {
		return err
	}
	cal, err := ch.Calibrate(8)
	if err != nil {
		return err
	}
	fmt.Printf("%v on %s: calibrated, level means %v cycles (gap %.0f)\n",
		kind, proc.Name, cal.MeanCycles, cal.Gap)

	frame, err := ichannels.EncodeFrame([]byte(*msg), 7)
	if err != nil {
		return err
	}
	res, err := ch.Transmit(frame)
	if err != nil {
		return err
	}
	payload, corrected, err := ichannels.DecodeFrame(res.DecodedBits, 7)
	if err != nil {
		return fmt.Errorf("frame unrecoverable after channel errors: %w", err)
	}
	fmt.Printf("sent %d bits in %v (%.0f b/s raw, channel BER %.4f, %d bits ECC-corrected)\n",
		len(frame), res.Elapsed, res.ThroughputBPS, res.BER, corrected)
	fmt.Printf("exfiltrated message: %q\n", string(payload))
	return nil
}

// demoScenario exfiltrates the message over a registry channel family
// (retire, clockmod) via the declarative scenario path.
func demoScenario(kind, msg string, seed int64) error {
	res, err := ichannels.RunScenario(context.Background(), ichannels.Scenario{
		Role:    "channel",
		Kind:    kind,
		Payload: msg,
		Seed:    seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s (%s; %s): calibration gap %.0f cycles\n",
		kind, ichannels.ChannelKindDescribe(kind), ichannels.ChannelKindSource(kind),
		res.Extra["calibration_gap_cycles"])
	fmt.Printf("sent %d bits in %.0f µs (%.0f b/s raw, channel BER %.4f)\n",
		res.Bits, res.ElapsedSimUS, res.ThroughputBPS, res.BER)
	if res.DecodedPayload != "" {
		fmt.Printf("exfiltrated message: %q\n", res.DecodedPayload)
	} else {
		fmt.Printf("message not recovered (notes: %v)\n", res.Notes)
	}
	return nil
}

// traceCmd records a Fig. 9-style NI-DAQ trace of one PHI burst and writes
// it as CSV to stdout for offline plotting.
func traceCmd(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	procName := fs.String("proc", "Cannon Lake", "processor profile name")
	className := fs.String("class", "256b_Heavy", "instruction class of the burst")
	ghz := fs.Float64("ghz", 1.4, "requested frequency in GHz")
	durUS := fs.Float64("us", 60, "trace duration in microseconds")
	sampleNS := fs.Float64("sample", 200, "sampling interval in nanoseconds")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	proc, err := ichannels.ProcessorByName(*procName)
	if err != nil {
		return err
	}
	cls, err := ichannels.ParseClass(*className)
	if err != nil {
		return err
	}
	m, err := ichannels.NewMachine(ichannels.MachineOptions{
		Processor:     proc,
		RequestedFreq: ichannels.Hertz(*ghz) * ichannels.GHz,
		Cores:         1,
		Seed:          *seed,
	})
	if err != nil {
		return err
	}
	rec, err := ichannels.NewRecorder(m, ichannels.Duration(*sampleNS)*ichannels.Nanosecond)
	if err != nil {
		return err
	}
	rec.Start()
	agent := ichannels.AgentFunc{AgentName: "trace", Fn: func(env *ichannels.AgentEnv, prev *ichannels.Result) ichannels.Action {
		if prev == nil {
			return ichannels.Exec(ichannels.KernelFor(cls), 200)
		}
		return ichannels.StopAction()
	}}
	if _, err := m.Bind(0, 0, agent); err != nil {
		return err
	}
	m.RunFor(ichannels.Duration(*durUS) * ichannels.Microsecond)
	rec.Stop()
	return rec.WriteCSV(os.Stdout)
}

func spy(args []string) error {
	fs := flag.NewFlagSet("spy", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	proc := ichannels.CannonLake8121U()
	m, err := ichannels.NewMachine(ichannels.MachineOptions{Processor: proc, Seed: *seed})
	if err != nil {
		return err
	}
	s, err := ichannels.NewSpy(m, ichannels.SMT)
	if err != nil {
		return err
	}
	if err := s.Calibrate(6); err != nil {
		return err
	}
	// A "victim" alternating between instruction widths; the spy on the
	// SMT sibling identifies each window's width.
	victim := []ichannels.Class{
		ichannels.Vec256Heavy, ichannels.Scalar64, ichannels.Vec512Heavy,
		ichannels.Vec128Heavy, ichannels.Vec256Heavy, ichannels.Scalar64,
		ichannels.Vec512Heavy, ichannels.Vec512Heavy, ichannels.Vec128Heavy,
		ichannels.Scalar64,
	}
	res, err := s.Infer(victim)
	if err != nil {
		return err
	}
	fmt.Println("victim executed → spy inferred:")
	for i := range res.Actual {
		mark := "✓"
		if res.Actual[i] != res.Inferred[i] {
			mark = "✗"
		}
		fmt.Printf("  %-12s → %-12s %s\n", res.Actual[i], res.Inferred[i], mark)
	}
	fmt.Printf("accuracy: %.0f%%\n", res.Accuracy*100)
	return nil
}
