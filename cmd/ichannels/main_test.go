package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDecodeSpecs(t *testing.T) {
	if specs, err := decodeSpecs([]byte(`{"role":"channel","bits":8}`)); err != nil || len(specs) != 1 {
		t.Errorf("single object: specs=%d err=%v", len(specs), err)
	}
	if specs, err := decodeSpecs([]byte(`[{"role":"channel"},{"role":"spy"}]`)); err != nil || len(specs) != 2 {
		t.Errorf("array: specs=%d err=%v", len(specs), err)
	}
	for _, bad := range []string{
		``,
		`{"role":"channel","warp":1}`,      // unknown field
		`{"role":"channel"}{"role":"spy"}`, // trailing object silently dropped before the fix
		`[{"role":"channel"}] garbage`,     // trailing garbage after array
	} {
		if _, err := decodeSpecs([]byte(bad)); err == nil {
			t.Errorf("%q: decoded but should fail", bad)
		}
	}
	if _, err := decodeSpecs([]byte(`{"role":"a"}{"role":"b"}`)); err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Errorf("concatenated objects: %v", err)
	}
}

func TestLoadSweep(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sw.json")
	if err := os.WriteFile(path, []byte(`{"base":{"role":"channel","kind":"cores"},"axes":{"bits":[4,8]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	sw, err := loadSweep("sweep run", []string{path}, flag.NewFlagSet("t", flag.ContinueOnError))
	if err != nil {
		t.Fatalf("one file: %v", err)
	}
	if n, err := sw.CountCells(); err != nil || n != 2 {
		t.Errorf("loaded sweep expands to %d cells (%v), want 2", n, err)
	}
	// Exactly one spec file: the axes are the fan-out, not the arg list.
	if _, err := loadSweep("sweep run", []string{path, path}, flag.NewFlagSet("t", flag.ContinueOnError)); err == nil ||
		!strings.Contains(err.Error(), "exactly one") {
		t.Errorf("two files: %v", err)
	}
	if _, err := loadSweep("sweep run", nil, flag.NewFlagSet("t", flag.ContinueOnError)); err == nil {
		t.Error("no files accepted")
	}
	// Flags mix with the file path in any order.
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	par := fs.Int("parallel", 1, "")
	if _, err := loadSweep("sweep run", []string{"-parallel", "4", path}, fs); err != nil || *par != 4 {
		t.Errorf("flag-first parse: err=%v parallel=%d", err, *par)
	}
}
