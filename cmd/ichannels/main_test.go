package main

import (
	"strings"
	"testing"
)

func TestDecodeSpecs(t *testing.T) {
	if specs, err := decodeSpecs([]byte(`{"role":"channel","bits":8}`)); err != nil || len(specs) != 1 {
		t.Errorf("single object: specs=%d err=%v", len(specs), err)
	}
	if specs, err := decodeSpecs([]byte(`[{"role":"channel"},{"role":"spy"}]`)); err != nil || len(specs) != 2 {
		t.Errorf("array: specs=%d err=%v", len(specs), err)
	}
	for _, bad := range []string{
		``,
		`{"role":"channel","warp":1}`,      // unknown field
		`{"role":"channel"}{"role":"spy"}`, // trailing object silently dropped before the fix
		`[{"role":"channel"}] garbage`,     // trailing garbage after array
	} {
		if _, err := decodeSpecs([]byte(bad)); err == nil {
			t.Errorf("%q: decoded but should fail", bad)
		}
	}
	if _, err := decodeSpecs([]byte(`{"role":"a"}{"role":"b"}`)); err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Errorf("concatenated objects: %v", err)
	}
}
