package ichannels_test

// Chaos conformance suite: drive the real CLI's shared-store tier
// through a fault-injecting proxy (internal/chaos) and assert the
// repo's determinism contract from the failure side — whatever the
// proxy does to the wire (flaked connections, 5xx bursts, corrupted
// bodies, partitions, a dead server), a sweep exits 0 with
// byte-identical output, corrupt bytes are never cached, and the
// degradation is visible in the store-tier counters, never the result
// bytes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"strings"
	"testing"

	"ichannels/internal/chaos"
)

// runCLIStderr execs the built binary like runCLI but also returns the
// stderr text, where the dist/store-tier diagnostics live.
func runCLIStderr(t *testing.T, args ...string) ([][]byte, string) {
	t.Helper()
	cmd := exec.Command(buildCLI(t), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("ichannels %s: %v\nstderr: %s", strings.Join(args, " "), err, stderr.String())
	}
	var lines [][]byte
	for _, ln := range bytes.Split(stdout.Bytes(), []byte("\n")) {
		if len(bytes.TrimSpace(ln)) > 0 {
			lines = append(lines, ln)
		}
	}
	return lines, stderr.String()
}

// remoteTier is the `store remote:` stderr line — the retry/breaker
// counters a run against a remote corpus reports.
type remoteTier struct {
	attempts, retries, transient, permanent int
	breakerOpens, fastFails                 int
	state                                   string
}

func parseRemoteTier(t *testing.T, stderr string) remoteTier {
	t.Helper()
	for _, ln := range strings.Split(stderr, "\n") {
		var rt remoteTier
		if _, err := fmt.Sscanf(ln, "store remote: %d attempts, %d retries, %d transient, %d permanent, %d breaker opens, %d fast fails, state %s",
			&rt.attempts, &rt.retries, &rt.transient, &rt.permanent,
			&rt.breakerOpens, &rt.fastFails, &rt.state); err == nil {
			return rt
		}
	}
	t.Fatalf("no `store remote:` line in stderr:\n%s", stderr)
	return remoteTier{}
}

// storeErrSplit is the `store errors:` stderr line — the engine's
// classification of degraded store operations.
type storeErrSplit struct{ transient, permanent int }

func parseStoreErrors(t *testing.T, stderr string) storeErrSplit {
	t.Helper()
	for _, ln := range strings.Split(stderr, "\n") {
		var se storeErrSplit
		if _, err := fmt.Sscanf(ln, "store errors: %d transient, %d permanent",
			&se.transient, &se.permanent); err == nil {
			return se
		}
	}
	t.Fatalf("no `store errors:` line in stderr:\n%s", stderr)
	return storeErrSplit{}
}

// replicaTier is the `store replica:` stderr line — the read-through
// cache counters a -cache run reports.
type replicaTier struct {
	localHits, fills, remoteMisses, corrupt int
	flushed, flushErrors, dropped           int
}

func parseReplicaTier(t *testing.T, stderr string) replicaTier {
	t.Helper()
	for _, ln := range strings.Split(stderr, "\n") {
		var rt replicaTier
		if _, err := fmt.Sscanf(ln, "store replica: %d local hits, %d fills, %d remote misses, %d corrupt, %d flushed, %d flush errors, %d dropped",
			&rt.localHits, &rt.fills, &rt.remoteMisses, &rt.corrupt,
			&rt.flushed, &rt.flushErrors, &rt.dropped); err == nil {
			return rt
		}
	}
	t.Fatalf("no `store replica:` line in stderr:\n%s", stderr)
	return replicaTier{}
}

// remoteEntryCount lists a share server's corpus over the wire.
func remoteEntryCount(t *testing.T, baseURL string) int {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/store")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	return len(entries)
}

// startChaos wraps a share server's URL in a fault-injecting proxy.
func startChaos(t *testing.T, target string, opts chaos.Options) (*chaos.Proxy, string) {
	t.Helper()
	opts.Target = target
	p, err := chaos.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	url, stop := p.Start()
	t.Cleanup(stop)
	return p, url
}

// TestChaosFlakyShareServer: the table6 sweep against a share server
// whose connections flake 20% of the time and answer 503 in periodic
// bursts. The retry layer absorbs it all: exit 0, byte-identical
// stream, and the damage shows up only as retry counters.
func TestChaosFlakyShareServer(t *testing.T) {
	host := startServe(t, "-store", t.TempDir(), "-share")
	p, url := startChaos(t, host.url, chaos.Options{
		Seed: 7, FlakeRate: 0.2, Burst5xx: 2, Burst5xxPeriod: 25,
	})

	args := []string{"sweep", "run", clusterSpec, "-ndjson", "-parallel", "4", "-store", url, "-resume"}
	cold, coldErr := runCLIStderr(t, args...)
	assertClusterStream(t, "chaos-flaky-cold", cold)

	warm, warmErr := runCLIStderr(t, args...)
	assertClusterStream(t, "chaos-flaky-warm", warm)

	// The proxy really injected faults, and the retry layer really
	// absorbed them — otherwise this test proves nothing.
	if s := p.Stats(); s.Flaked == 0 || s.Bursted == 0 {
		t.Errorf("proxy injected no faults: %+v", s)
	}
	for _, stderr := range []string{coldErr, warmErr} {
		rt := parseRemoteTier(t, stderr)
		if rt.retries == 0 {
			t.Errorf("no retries recorded against a flaky server: %+v", rt)
		}
		if rt.permanent != 0 {
			t.Errorf("flaked/5xx traffic misclassified as permanent: %+v", rt)
		}
	}
}

// TestChaosCorruptingShareServer: every GET from the corpus comes back
// with one flipped byte — a byzantine server. Envelope verification
// rejects every response (classified permanent, never retried), the
// cells recompute locally, the output is byte-identical, and not one
// corrupt envelope lands in the -cache replica.
func TestChaosCorruptingShareServer(t *testing.T) {
	storeDir := t.TempDir()
	host := startServe(t, "-store", storeDir, "-share")

	// Populate the corpus through the clean path first.
	cold := runCLI(t, "sweep", "run", clusterSpec, "-ndjson", "-parallel", "4", "-store", host.url)
	assertClusterStream(t, "chaos-corrupt-populate", cold)

	_, url := startChaos(t, host.url, chaos.Options{Seed: 11, CorruptRate: 1})
	cacheDir := t.TempDir()
	warm, stderr := runCLIStderr(t, "sweep", "run", clusterSpec, "-ndjson", "-parallel", "4",
		"-store", url, "-cache", cacheDir, "-resume")
	assertClusterStream(t, "chaos-corrupt", warm)
	for i, ln := range warm[:len(warm)-1] {
		if wl, _ := parseWireLine(t, ln); wl.Cached {
			t.Errorf("chaos-corrupt cell %d served from a byzantine corpus", i)
		}
	}

	cells, _, _ := clusterReference(t)
	// Corruption is caught by envelope verification above the retry
	// layer: the wire looked healthy (no retries), the engine saw
	// permanent failures, and the replica rejected every fetched body.
	rt := parseRemoteTier(t, stderr)
	if rt.retries != 0 {
		t.Errorf("corrupt envelopes must never be retried: %+v", rt)
	}
	se := parseStoreErrors(t, stderr)
	if se.permanent != len(cells) || se.transient != 0 {
		t.Errorf("store errors %+v: want %d permanent (one rejected read per cell)", se, len(cells))
	}
	ct := parseReplicaTier(t, stderr)
	if ct.corrupt != len(cells) || ct.fills != 0 {
		t.Errorf("replica tier %+v: want every remote read rejected, zero fills", ct)
	}

	// The recomputed results were cached locally; the corrupt remote
	// bytes never were. The replica must verify clean and hold the
	// full corpus.
	ls := runCLI(t, "store", "verify", cacheDir)
	verdict := string(ls[len(ls)-1])
	if !strings.HasPrefix(verdict, fmt.Sprintf("%d entries", len(cells))) || !strings.Contains(verdict, "0 corrupt") {
		t.Errorf("cache verify after byzantine reads: %q", verdict)
	}
}

// TestChaosPartitionAndHeal: one sweep runs against a fully
// partitioned share server — every cell degrades to local compute and
// the run still exits 0 byte-identical. The partition heals, and the
// next sweep reconnects through the same proxy and populates the
// corpus normally.
func TestChaosPartitionAndHeal(t *testing.T) {
	host := startServe(t, "-store", t.TempDir(), "-share")
	p, url := startChaos(t, host.url, chaos.Options{Seed: 3})
	p.Partition(0)

	args := []string{"sweep", "run", clusterSpec, "-ndjson", "-parallel", "4", "-store", url, "-resume"}
	during, stderr := runCLIStderr(t, args...)
	assertClusterStream(t, "chaos-partitioned", during)
	if s := p.Stats(); s.Partitioned == 0 || s.Forwarded != 0 {
		t.Errorf("partition was not airtight: %+v", s)
	}
	rt := parseRemoteTier(t, stderr)
	if rt.transient == 0 {
		t.Errorf("a partition must register transient failures: %+v", rt)
	}
	if rt.permanent != 0 {
		t.Errorf("a partition misclassified as permanent: %+v", rt)
	}

	// Heal and run again: the degraded tier was wall-clock damage only,
	// and the reconnected run fills the corpus over the same proxy.
	p.Heal()
	after, afterErr := runCLIStderr(t, args...)
	assertClusterStream(t, "chaos-healed", after)
	if s := p.Stats(); s.Forwarded == 0 {
		t.Errorf("no traffic reconnected after the heal: %+v", s)
	}
	if rt := parseRemoteTier(t, afterErr); rt.state != "closed" {
		t.Errorf("healed run ended with breaker state %q, want closed: %+v", rt.state, rt)
	}
}

// TestChaosDeadShareServer: the -store URL points at a closed port.
// Every cell recomputes locally, the circuit breaker turns the dead
// host into fast-fails instead of per-cell timeouts, and the sweep
// still exits 0 with byte-identical output.
func TestChaosDeadShareServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	lines, stderr := runCLIStderr(t, "sweep", "run", clusterSpec, "-ndjson", "-parallel", "4",
		"-store", deadURL, "-resume")
	assertClusterStream(t, "chaos-dead", lines)

	rt := parseRemoteTier(t, stderr)
	if rt.breakerOpens == 0 || rt.fastFails == 0 {
		t.Errorf("a dead server must open the breaker and fast-fail: %+v", rt)
	}
	if rt.permanent != 0 {
		t.Errorf("connection refusals misclassified as permanent: %+v", rt)
	}
}

// TestChaosReplicaCacheColdRestart is the replica-cache acceptance
// path: run once against a share server with -cache, restart the
// server cold (empty corpus, new port), and run again. Every cell is
// served from the local cache — the restarted server sees zero store
// reads — and the bytes match the serial reference.
func TestChaosReplicaCacheColdRestart(t *testing.T) {
	cacheDir := t.TempDir()
	hostA := startServe(t, "-store", t.TempDir(), "-share")

	first, firstErr := runCLIStderr(t, "sweep", "run", clusterSpec, "-ndjson", "-parallel", "4",
		"-store", hostA.url, "-cache", cacheDir)
	assertClusterStream(t, "replica-first", first)
	cells, _, _ := clusterReference(t)
	// The tier line snapshots mid-drain, so it cannot claim an exact
	// flush count — but nothing may have failed or been dropped.
	ft := parseReplicaTier(t, firstErr)
	if ft.flushErrors != 0 || ft.dropped != 0 {
		t.Errorf("first run replica tier %+v: flushes failed or dropped", ft)
	}
	// The CLI drains its flush queue before exiting; by now the full
	// corpus reached the share server.
	if n := remoteEntryCount(t, hostA.url); n != len(cells) {
		t.Errorf("share server holds %d entries after the first run, want %d", n, len(cells))
	}

	// Cold restart: the old process dies, the new one starts with an
	// empty corpus on a new port. Only the local cache survives.
	hostA.cmd.Process.Kill()
	hostA.cmd.Wait()
	hostB := startServe(t, "-store", t.TempDir(), "-share")

	second, secondErr := runCLIStderr(t, "sweep", "run", clusterSpec, "-ndjson", "-parallel", "4",
		"-store", hostB.url, "-cache", cacheDir, "-resume")
	assertClusterStream(t, "replica-second", second)
	for i, ln := range second[:len(second)-1] {
		if wl, _ := parseWireLine(t, ln); !wl.Cached {
			t.Errorf("replica-second cell %d recomputed despite a warm cache", i)
		}
	}
	st := parseReplicaTier(t, secondErr)
	if st.localHits != len(cells) || st.fills != 0 || st.remoteMisses != 0 {
		t.Errorf("second run replica tier %+v: want all %d cells served locally", st, len(cells))
	}

	// Counter-assert the zero-network claim on the server's side too.
	resp, err := http.Get(hostB.url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Store *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Store == nil {
		t.Fatal("restarted server reports no store block")
	}
	if stats.Store.Hits != 0 || stats.Store.Misses != 0 {
		t.Errorf("restarted server saw store traffic (hits=%d misses=%d); the cache leaked reads",
			stats.Store.Hits, stats.Store.Misses)
	}
}
