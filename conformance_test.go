package ichannels_test

// Cross-surface conformance suite: for every checked-in example spec,
// the CLI (ichannels scenario run / sweep run -ndjson), the HTTP v1 API
// (POST /v1/scenarios, POST /v1/sweeps), and the Go API must emit
// byte-identical result envelopes for the same seed — with a cold
// store, a warm store, and across surfaces sharing one store. This is
// the determinism contract's one test that spans all three surfaces.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"ichannels"
)

// cliOnce builds the real CLI binary once per test process; every
// conformance subtest execs it the way a user would. TestMain removes
// the build directory after the run.
var cliOnce struct {
	sync.Once
	dir  string
	path string
	err  error
}

func TestMain(m *testing.M) {
	code := m.Run()
	if cliOnce.dir != "" {
		os.RemoveAll(cliOnce.dir)
	}
	os.Exit(code)
}

func buildCLI(t *testing.T) string {
	t.Helper()
	cliOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ichannels-cli-")
		if err != nil {
			cliOnce.err = err
			return
		}
		cliOnce.dir = dir
		bin := filepath.Join(dir, "ichannels")
		out, err := exec.Command("go", "build", "-o", bin, "./cmd/ichannels").CombinedOutput()
		if err != nil {
			cliOnce.err = fmt.Errorf("building CLI: %v\n%s", err, out)
			return
		}
		cliOnce.path = bin
	})
	if cliOnce.err != nil {
		t.Fatal(cliOnce.err)
	}
	return cliOnce.path
}

// runCLI execs the built binary and returns its stdout lines.
func runCLI(t *testing.T, args ...string) [][]byte {
	t.Helper()
	cmd := exec.Command(buildCLI(t), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("ichannels %s: %v\nstderr: %s", strings.Join(args, " "), err, stderr.String())
	}
	var lines [][]byte
	for _, ln := range bytes.Split(stdout.Bytes(), []byte("\n")) {
		if len(bytes.TrimSpace(ln)) > 0 {
			lines = append(lines, ln)
		}
	}
	return lines
}

// wireLine is the common shape of one outcome on any surface: the CLI
// batch NDJSON line, the HTTP batch/sweep NDJSON line, and the HTTP
// single-scenario response all carry seed, cached, and the result
// envelope.
type wireLine struct {
	Seed   int64           `json:"seed"`
	Cached bool            `json:"cached"`
	Error  json.RawMessage `json:"error,omitempty"`
	Result json.RawMessage `json:"result"`
}

// parseWireLine decodes and compacts one outcome line (the HTTP
// single-object response is indented; compaction only strips
// whitespace, never reorders fields).
func parseWireLine(t *testing.T, line []byte) (wireLine, []byte) {
	t.Helper()
	var wl wireLine
	if err := json.Unmarshal(line, &wl); err != nil {
		t.Fatalf("outcome line %s: %v", line, err)
	}
	if len(wl.Error) > 0 {
		t.Fatalf("outcome carries an error: %s", line)
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, wl.Result); err != nil {
		t.Fatal(err)
	}
	return wl, buf.Bytes()
}

// goReference runs the specs through the Go API and returns the
// marshaled result bytes plus effective seeds, the reference every
// other surface must match.
func goReference(t *testing.T, specs []ichannels.Scenario) (results [][]byte, seeds []int64) {
	t.Helper()
	batch, err := ichannels.RunScenarios(context.Background(), ichannels.ScenarioBatchOptions{
		Scenarios: specs, BaseSeed: 1, Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch.Results {
		r := &batch.Results[i]
		if r.Err != nil {
			t.Fatalf("go api: %s: %v", r.Scenario.Describe(), r.Err)
		}
		b, err := json.Marshal(r.Result)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, b)
		seeds = append(seeds, r.Seed)
	}
	return results, seeds
}

// assertSurface compares one surface's outcome lines against the Go
// reference and checks every line's cached marker.
func assertSurface(t *testing.T, surface string, lines [][]byte, want [][]byte, seeds []int64, wantCached bool) {
	t.Helper()
	if len(lines) != len(want) {
		t.Fatalf("%s: %d outcomes, want %d", surface, len(lines), len(want))
	}
	for i, ln := range lines {
		wl, res := parseWireLine(t, ln)
		if wl.Seed != seeds[i] {
			t.Errorf("%s outcome %d: seed %d, want %d", surface, i, wl.Seed, seeds[i])
		}
		if wl.Cached != wantCached {
			t.Errorf("%s outcome %d: cached=%v, want %v", surface, i, wl.Cached, wantCached)
		}
		if !bytes.Equal(res, want[i]) {
			t.Errorf("%s outcome %d result bytes differ:\n%s\nwant:\n%s", surface, i, res, want[i])
		}
	}
}

// postNDJSON posts body and returns the response's non-empty lines.
func postNDJSON(t *testing.T, ts *httptest.Server, path string, body []byte) [][]byte {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, buf.String())
	}
	var lines [][]byte
	for _, ln := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(bytes.TrimSpace(ln)) > 0 {
			lines = append(lines, ln)
		}
	}
	return lines
}

// specFiles globs one example spec directory, failing if it is empty —
// a renamed directory must not silently skip the suite.
func specFiles(t *testing.T, pattern string) []string {
	t.Helper()
	files, err := filepath.Glob(pattern)
	if err != nil || len(files) == 0 {
		t.Fatalf("no spec files match %s (err=%v)", pattern, err)
	}
	return files
}

// TestConformanceScenarios: every checked-in scenario spec produces
// identical result bytes from the Go API, the CLI, and HTTP — cold
// store, warm store, and a server warming from the CLI's store.
func TestConformanceScenarios(t *testing.T) {
	for _, f := range specFiles(t, "examples/scenarios/specs/*.json") {
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			specs, isArray, err := ichannels.ParseScenarioSpecs(data)
			if err != nil {
				t.Fatal(err)
			}
			want, seeds := goReference(t, specs)

			storeDir := t.TempDir()
			args := []string{"scenario", "run", f, "-ndjson", "-parallel", "4", "-store", storeDir, "-resume"}
			cold := runCLI(t, args...)
			assertSurface(t, "cli-cold", cold, want, seeds, false)
			warm := runCLI(t, args...)
			assertSurface(t, "cli-warm", warm, want, seeds, true)

			// A fresh server sharing the CLI's store serves every
			// scenario from disk; a storeless server recomputes —
			// both must produce the same bytes.
			shared := httptest.NewServer(newStoreServer(t, storeDir))
			defer shared.Close()
			assertSurface(t, "http-warm", postScenarios(t, shared, data, isArray), want, seeds, true)
			coldSrv := httptest.NewServer(ichannels.NewExperimentServer())
			defer coldSrv.Close()
			assertSurface(t, "http-cold", postScenarios(t, coldSrv, data, isArray), want, seeds, false)
		})
	}
}

// newStoreServer opens a result store in whatever layout the directory
// holds and serves the v1 API over it.
func newStoreServer(t *testing.T, dir string) http.Handler {
	t.Helper()
	st, err := ichannels.OpenStoreDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return ichannels.NewExperimentServerWithStore(st)
}

// postScenarios posts a spec payload to /v1/scenarios and returns one
// line per outcome (the single-object response becomes one line).
func postScenarios(t *testing.T, ts *httptest.Server, data []byte, isArray bool) [][]byte {
	t.Helper()
	lines := postNDJSON(t, ts, "/v1/scenarios", data)
	if !isArray {
		// The single-object response is one indented JSON document.
		return [][]byte{bytes.Join(lines, []byte("\n"))}
	}
	return lines
}

// TestConformanceSweeps: every checked-in sweep spec streams identical
// per-cell result bytes and a byte-identical trailing aggregate line
// from the Go API, the CLI, and HTTP, cold and warm.
func TestConformanceSweeps(t *testing.T) {
	for _, f := range specFiles(t, "examples/sweeps/specs/*.json") {
		t.Run(filepath.Base(f), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			sw, err := ichannels.ParseSweepSpec(data)
			if err != nil {
				t.Fatal(err)
			}
			// Go API reference: per-cell result bytes in stream order,
			// the pass markers of a refined spec, plus the aggregate's
			// NDJSON framing.
			var want [][]byte
			var wantMarkers [][]byte
			var seeds []int64
			res, err := ichannels.RunSweep(context.Background(), sw, ichannels.SweepOptions{
				BaseSeed: 1, Parallel: 4,
				OnCell: func(o ichannels.SweepCellOutcome) error {
					if o.Err != nil {
						return o.Err
					}
					b, err := json.Marshal(o.Result)
					if err != nil {
						return err
					}
					want = append(want, b)
					seeds = append(seeds, o.Seed)
					return nil
				},
				OnPass: func(p ichannels.SweepPassStats) error {
					var buf bytes.Buffer
					if err := ichannels.WriteSweepPassLine(&buf, p); err != nil {
						return err
					}
					wantMarkers = append(wantMarkers, bytes.TrimRight(buf.Bytes(), "\n"))
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			var aggBuf bytes.Buffer
			if err := res.WriteAggregateLine(&aggBuf); err != nil {
				t.Fatal(err)
			}
			wantAgg := bytes.TrimRight(aggBuf.Bytes(), "\n")

			checkStream := func(surface string, lines [][]byte, cached bool) {
				t.Helper()
				// Refined sweeps interleave pass markers with cell
				// lines; split them out and compare each stream.
				var cells, markers [][]byte
				for _, ln := range lines {
					if bytes.HasPrefix(ln, []byte(`{"pass":`)) {
						markers = append(markers, ln)
					} else {
						cells = append(cells, ln)
					}
				}
				if len(markers) != len(wantMarkers) {
					t.Fatalf("%s: %d pass markers, want %d", surface, len(markers), len(wantMarkers))
				}
				for i, m := range markers {
					if !bytes.Equal(m, wantMarkers[i]) {
						t.Errorf("%s pass marker %d differs:\n%s\nwant:\n%s", surface, i, m, wantMarkers[i])
					}
				}
				if len(cells) != len(want)+1 {
					t.Fatalf("%s: %d lines, want %d cells + aggregate", surface, len(cells), len(want))
				}
				assertSurface(t, surface, cells[:len(cells)-1], want, seeds, cached)
				if agg := cells[len(cells)-1]; !bytes.Equal(agg, wantAgg) {
					t.Errorf("%s aggregate differs:\n%s\nwant:\n%s", surface, agg, wantAgg)
				}
			}

			storeDir := t.TempDir()
			args := []string{"sweep", "run", f, "-ndjson", "-parallel", "4", "-store", storeDir, "-resume"}
			checkStream("cli-cold", runCLI(t, args...), false)
			checkStream("cli-warm", runCLI(t, args...), true)

			shared := httptest.NewServer(newStoreServer(t, storeDir))
			defer shared.Close()
			checkStream("http-warm", postNDJSON(t, shared, "/v1/sweeps", data), true)
			coldSrv := httptest.NewServer(ichannels.NewExperimentServer())
			defer coldSrv.Close()
			checkStream("http-cold", postNDJSON(t, coldSrv, "/v1/sweeps", data), false)
		})
	}
}
