package ichannels_test

// Native fuzz targets for the strict spec parsers (the one decoder the
// CLI and HTTP v1 layer share). The invariant under fuzz: a payload the
// parser accepts must normalize to a fixed point —
// parse → normalize → marshal → re-parse → normalize → marshal yields
// the same bytes — and nothing in the parse/normalize/validate/hash
// path may panic. CI runs each target for a short smoke window; longer
// local runs: go test -run '^$' -fuzz FuzzParseSpecs -fuzztime 2m .

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ichannels"
)

// seedFromSpecs adds every checked-in example spec matching pattern to
// the corpus.
func seedFromSpecs(f *testing.F, pattern string) {
	f.Helper()
	files, err := filepath.Glob(pattern)
	if err != nil || len(files) == 0 {
		f.Fatalf("no seed specs match %s (err=%v)", pattern, err)
	}
	for _, fn := range files {
		data, err := os.ReadFile(fn)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
}

func FuzzParseSpecs(f *testing.F) {
	seedFromSpecs(f, "examples/scenarios/specs/*.json")
	f.Add([]byte(`{"role":"channel","kind":"smt","bits":16,"noise":{}}`))
	f.Add([]byte(`[{"role":"spy"},{"role":"experiment","experiment":"fig6a","seed":3}]`))
	f.Add([]byte(`{"role":"mitigation-eval","mitigation":"per-core-vr","kind":"thread","processor":"coffee lake"}`))
	f.Add([]byte(`{"role":"baseline","baseline":"turbocc","params":{"freq_ghz":3.5}}`))
	f.Add([]byte(`{"role":"channel","kind":"retire","bits":32,"params":{"slot_period_us":40,"sender_iters":8}}`))
	f.Add([]byte(`{"role":"channel","kind":"clockmod","payload":"hi","noise":{"tsc_jitter_cycles":150}}`))
	f.Add([]byte(`{"role":"mitigation-eval","kind":"clockmod","mitigation":"securemode","bits":16}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		specs, isArray, err := ichannels.ParseScenarioSpecs(data)
		if err != nil {
			return // rejected payloads only need to not panic
		}
		norm := make([]ichannels.Scenario, len(specs))
		for i, s := range specs {
			norm[i] = s.Normalized()
			// Validate and Hash must never panic, valid spec or not.
			_ = norm[i].Validate()
			_ = norm[i].Hash()
			_ = norm[i].Describe()
		}
		blob := marshalSpecs(t, norm, isArray)
		specs2, isArray2, err := ichannels.ParseScenarioSpecs(blob)
		if err != nil {
			t.Fatalf("re-parse of normalized marshal failed: %v\n%s", err, blob)
		}
		if isArray2 != isArray {
			t.Fatalf("array-ness flipped across re-marshal: %v -> %v", isArray, isArray2)
		}
		for i := range specs2 {
			specs2[i] = specs2[i].Normalized()
		}
		if blob2 := marshalSpecs(t, specs2, isArray); !bytes.Equal(blob, blob2) {
			t.Fatalf("normalize/marshal is not a fixed point:\nfirst:  %s\nsecond: %s", blob, blob2)
		}
	})
}

// marshalSpecs re-marshals specs in the payload's original shape.
func marshalSpecs(t *testing.T, specs []ichannels.Scenario, isArray bool) []byte {
	t.Helper()
	var v any = specs
	if !isArray {
		v = specs[0]
	}
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal of parsed specs failed: %v", err)
	}
	return blob
}

// FuzzParseCellDispatch fuzzes the coordinator↔worker wire frame (the
// distributed tier's POST /v1/cells payload). Seeds are genuine
// dispatch traffic: every cell of every checked-in example sweep,
// framed exactly as the coordinator frames them, plus hand-written
// frames. Invariants: the strict parser never panics, Validate never
// panics on accepted frames, and parse → normalize → marshal is a
// fixed point.
func FuzzParseCellDispatch(f *testing.F) {
	files, err := filepath.Glob("examples/sweeps/specs/*.json")
	if err != nil || len(files) == 0 {
		f.Fatalf("no seed sweeps (err=%v)", err)
	}
	for _, fn := range files {
		data, err := os.ReadFile(fn)
		if err != nil {
			f.Fatal(err)
		}
		sw, err := ichannels.ParseSweepSpec(data)
		if err != nil {
			f.Fatal(err)
		}
		cells, err := ichannels.ExpandSweep(sw)
		if err != nil {
			f.Fatal(err)
		}
		for _, c := range cells {
			frame, err := json.Marshal(ichannels.NewCellDispatch(c.Scenario, c.Scenario.Hash(), 42))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(frame)
		}
	}
	f.Add([]byte(`{"v":1,"hash":"0011223344556677","seed":7,"scenario":{"role":"spy"}}`))
	f.Add([]byte(`{"v":2,"hash":"","seed":-1,"scenario":{}}`))
	f.Add([]byte(`{"v":1,"hash":"x","seed":1,"scenario":{"role":"channel","kind":"smt","bits":16,"noise":{}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ichannels.ParseCellDispatch(data)
		if err != nil {
			return // rejected frames only need to not panic
		}
		n := d.Normalized()
		// Validate recomputes the scenario hash — the version-skew
		// check — and must be panic-free on anything the parser admits.
		_ = n.Validate()
		blob, err := json.Marshal(n)
		if err != nil {
			t.Fatalf("marshal of parsed dispatch failed: %v", err)
		}
		d2, err := ichannels.ParseCellDispatch(blob)
		if err != nil {
			t.Fatalf("re-parse of normalized marshal failed: %v\n%s", err, blob)
		}
		blob2, err := json.Marshal(d2.Normalized())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("normalize/marshal is not a fixed point:\nfirst:  %s\nsecond: %s", blob, blob2)
		}
	})
}

func FuzzParseSweep(f *testing.F) {
	seedFromSpecs(f, "examples/sweeps/specs/*.json")
	f.Add([]byte(`{"base":{"role":"channel","kind":"cores"},"axes":{"bits":[4,8],"processor":["Haswell"]}}`))
	f.Add([]byte(`{"base":{"role":"mitigation-eval"},"axes":{"kind":["smt","cores"]},"filters":[{"kind":"smt"}],"group_by":["kind"],"max_cells":10}`))
	f.Add([]byte(`{"base":{"role":"channel","bits":16},"axes":{"kind":["thread","smt","cores","retire","clockmod"]},"group_by":["kind"]}`))
	f.Add([]byte(`{"base":{"role":"mitigation-eval"},"axes":{"kind":["retire","clockmod"],"mitigation":["none","secure-mode"]}}`))
	f.Add([]byte(`{"base":{"role":"channel"},"axes":{"bits":[2,4,6,8]},"group_by":["bits"],"refine":{"stride":{"bits":2},"threshold":0.1}}`))
	f.Add([]byte(`{"base":{"role":"channel"},"axes":{"bits":[2,4,6]},"refine":{"metric":"THROUGHPUT_BPS","stride":{"BITS":2},"threshold":0.5,"max_passes":2,"max_cells_per_pass":3}}`))
	f.Add([]byte(`{"base":{"role":"channel"},"axes":{"bits":[2,4]},"refine":{"stride":{"noise":-1},"threshold":0}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sw, err := ichannels.ParseSweepSpec(data)
		if err != nil {
			return
		}
		norm := sw.Normalized()
		// The whole spec-level surface must be panic-free on arbitrary
		// accepted payloads (Validate expands and checks every cell).
		_ = norm.Validate()
		_ = norm.Hash()
		_ = norm.Describe()
		_ = norm.EffectiveGroupBy()
		blob, err := json.Marshal(norm)
		if err != nil {
			t.Fatalf("marshal of parsed sweep failed: %v", err)
		}
		sw2, err := ichannels.ParseSweepSpec(blob)
		if err != nil {
			t.Fatalf("re-parse of normalized marshal failed: %v\n%s", err, blob)
		}
		blob2, err := json.Marshal(sw2.Normalized())
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("normalize/marshal is not a fixed point:\nfirst:  %s\nsecond: %s", blob, blob2)
		}
	})
}
