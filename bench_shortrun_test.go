package ichannels_test

// Short-run benchmarks: the figure shapes whose simulated durations are
// small enough that fixed per-run overhead (machine construction, RNG
// seeding, event-name formatting) dominates wall-clock. The full figure
// benchmarks amortize that overhead over long simulations; these do
// not, so a regression in the setup path shows up here first.

import (
	"testing"

	"ichannels"
)

// shortRunMachine builds the fixed-overhead-dominated machine every
// short-run shape starts from: fresh construction per iteration is the
// point (the grid path without pooling).
func shortRunMachine(b *testing.B, cores int, seed int64) *ichannels.Machine {
	b.Helper()
	proc := ichannels.CannonLake8121U()
	m, err := ichannels.NewMachine(ichannels.MachineOptions{Processor: proc, Cores: cores, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// runShortAgent binds one single-action agent per (core, slot) pair and
// runs the machine for the given simulated window.
func runShortAgent(b *testing.B, m *ichannels.Machine, placements [][2]int, act ichannels.Action, window ichannels.Duration) {
	b.Helper()
	for _, p := range placements {
		done := false
		a := ichannels.AgentFunc{AgentName: "short", Fn: func(env *ichannels.AgentEnv, prev *ichannels.Result) ichannels.Action {
			if done {
				return ichannels.StopAction()
			}
			done = true
			return act
		}}
		if _, err := m.Bind(p[0], p[1], a); err != nil {
			b.Fatal(err)
		}
	}
	m.RunFor(window)
}

// BenchmarkShortRunFig8bc is the Fig. 8b/c shape at small simulated
// duration: one thread issuing a first AVX-512 burst from idle (license
// request, gate wake, throttling ramp) over a 50 µs window.
func BenchmarkShortRunFig8bc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := shortRunMachine(b, 1, int64(i+1))
		runShortAgent(b, m, [][2]int{{0, 0}},
			ichannels.Exec(ichannels.KernelFor(ichannels.Vec512Heavy), 200),
			50*ichannels.Microsecond)
	}
}

// BenchmarkShortRunFig9 is the Fig. 9 shape at small simulated
// duration: scalar work on one SMT sibling while the other issues the
// throttling-period AVX-256 burst, over a 50 µs window.
func BenchmarkShortRunFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := shortRunMachine(b, 1, int64(i+1))
		done := false
		scalar := ichannels.AgentFunc{AgentName: "scalar", Fn: func(env *ichannels.AgentEnv, prev *ichannels.Result) ichannels.Action {
			if done {
				return ichannels.StopAction()
			}
			done = true
			return ichannels.Exec(ichannels.KernelFor(ichannels.Scalar64), 2000)
		}}
		if _, err := m.Bind(0, 1, scalar); err != nil {
			b.Fatal(err)
		}
		runShortAgent(b, m, [][2]int{{0, 0}},
			ichannels.Exec(ichannels.KernelFor(ichannels.Vec256Heavy), 500),
			50*ichannels.Microsecond)
	}
}

// BenchmarkShortRunFig10a is the Fig. 10a shape at small simulated
// duration: two cores issuing wide bursts together, serializing on the
// shared voltage regulator, over a 50 µs window.
func BenchmarkShortRunFig10a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := shortRunMachine(b, 2, int64(i+1))
		runShortAgent(b, m, [][2]int{{0, 0}, {1, 0}},
			ichannels.Exec(ichannels.KernelFor(ichannels.Vec512Heavy), 200),
			50*ichannels.Microsecond)
	}
}
