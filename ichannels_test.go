package ichannels_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"testing"

	"ichannels"
)

// The root package is the public API surface; these tests exercise it the
// way a downstream user would.

func TestQuickstartFlow(t *testing.T) {
	proc := ichannels.CannonLake8121U()
	m, err := ichannels.NewMachine(ichannels.MachineOptions{Processor: proc, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := ichannels.NewChannel(m, ichannels.DefaultChannelParams(ichannels.CrossCore, proc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ch.Calibrate(4); err != nil {
		t.Fatal(err)
	}
	res, err := ch.Transmit([]int{1, 0, 1, 1, 0, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.BER != 0 {
		t.Fatalf("BER = %g", res.BER)
	}
}

func TestProcessorsExposed(t *testing.T) {
	if len(ichannels.Processors()) != 3 {
		t.Fatal("three characterized processors expected")
	}
	if _, err := ichannels.ProcessorByName("Cannon Lake"); err != nil {
		t.Fatal(err)
	}
}

func TestFrameCodingExposed(t *testing.T) {
	frame, err := ichannels.EncodeFrame([]byte("hi"), 7)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := ichannels.DecodeFrame(frame, 7)
	if err != nil || string(back) != "hi" {
		t.Fatalf("frame roundtrip: %q, %v", back, err)
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	if len(ichannels.Experiments()) < 19 {
		t.Fatalf("experiments = %d", len(ichannels.Experiments()))
	}
	for _, e := range ichannels.Experiments() {
		if e.ID == "" || e.Section == "" || e.Desc == "" {
			t.Fatalf("incomplete experiment info: %+v", e)
		}
	}
	rep, err := ichannels.RunExperiment("fig11", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["throttled_undelivered_frac"] < 0.7 {
		t.Fatal("fig11 metric missing")
	}
}

func TestExperimentEngineExposed(t *testing.T) {
	batch, err := ichannels.RunExperiments(context.Background(), ichannels.BatchOptions{
		IDs: []string{"fig13", "fig11"}, BaseSeed: 1, Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 || len(batch.Failed()) != 0 {
		t.Fatalf("batch: %d results, %d failed", len(batch.Results), len(batch.Failed()))
	}
	if batch.Results[0].ID != "fig13" || batch.Results[1].ID != "fig11" {
		t.Fatal("batch results not in request order")
	}
	if batch.Results[0].Seed != ichannels.DeriveSeed(1, "fig13") {
		t.Fatal("batch did not use the derived seed")
	}
}

func TestExperimentServerExposed(t *testing.T) {
	ts := httptest.NewServer(ichannels.NewExperimentServer())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /experiments: %d", resp.StatusCode)
	}
	var list []ichannels.ExperimentInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(ichannels.Experiments()) {
		t.Fatalf("served %d experiments, registry has %d", len(list), len(ichannels.Experiments()))
	}
}

func TestMitigationAPI(t *testing.T) {
	a, err := ichannels.EvaluateMitigation(ichannels.SecureMode, ichannels.SameThread,
		ichannels.CannonLake8121U(), 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.BER < 0.3 {
		t.Fatalf("secure mode left BER at %g", a.BER)
	}
}

func TestAgentAPI(t *testing.T) {
	proc := ichannels.CannonLake8121U()
	m, err := ichannels.NewMachine(ichannels.MachineOptions{Processor: proc, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	agent := ichannels.AgentFunc{AgentName: "user", Fn: func(env *ichannels.AgentEnv, prev *ichannels.Result) ichannels.Action {
		if prev == nil {
			return ichannels.Exec(ichannels.KernelFor(ichannels.Vec256Heavy), 100)
		}
		done = true
		return ichannels.StopAction()
	}}
	if _, err := m.Bind(0, 0, agent); err != nil {
		t.Fatal(err)
	}
	m.RunFor(200 * ichannels.Microsecond)
	if !done {
		t.Fatal("agent did not complete")
	}
	if m.Cores[0].ThrottleTime(m.Now()) <= 0 {
		t.Fatal("PHI burst must have throttled the core")
	}
}

// TestScenarioAPIExposed exercises the v1 Scenario surface end to end
// the way a downstream user would: one declarative spec through the Go
// entry point, a batch through the engine, and the same spec over HTTP
// — all three producing byte-identical result JSON for a fixed seed.
func TestScenarioAPIExposed(t *testing.T) {
	spec := ichannels.Scenario{Role: "channel", Kind: "cores", Bits: 16, Seed: 5}

	direct, err := ichannels.RunScenario(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if direct.BER != 0 || direct.ThroughputBPS <= 0 {
		t.Errorf("quiet-machine channel run degraded: BER=%v bps=%v", direct.BER, direct.ThroughputBPS)
	}

	batch, err := ichannels.RunScenarios(context.Background(), ichannels.ScenarioBatchOptions{
		Scenarios: []ichannels.Scenario{spec, ichannels.ScenarioFromExperiment("fig13")},
		BaseSeed:  1, Parallel: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Failed()) != 0 {
		t.Fatalf("batch failed: %v", batch.Failed()[0].Err)
	}
	wantJSON, _ := json.Marshal(direct)
	gotJSON, _ := json.Marshal(batch.Results[0].Result)
	if string(wantJSON) != string(gotJSON) {
		t.Error("batch result differs from direct RunScenario for the same pinned seed")
	}
	if batch.Results[1].Result.Report == nil {
		t.Error("experiment-role scenario returned no report")
	}

	ts := httptest.NewServer(ichannels.NewExperimentServer())
	defer ts.Close()
	body, _ := json.Marshal(spec)
	resp, err := ts.Client().Post(ts.URL+"/v1/scenarios", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST /v1/scenarios: status %d", resp.StatusCode)
	}
	var served struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	var typed ichannels.ScenarioResult
	if err := json.Unmarshal(served.Result, &typed); err != nil {
		t.Fatal(err)
	}
	renorm, _ := json.Marshal(&typed)
	if string(renorm) != string(wantJSON) {
		t.Errorf("HTTP result differs from direct RunScenario:\n%s\n%s", renorm, wantJSON)
	}

	if len(ichannels.ScenarioSchemaJSON()) == 0 || len(ichannels.AllExperimentScenarios()) == 0 {
		t.Error("schema or experiment generators empty")
	}
}

// TestSweepAPIExposed exercises the sweep surface the way a downstream
// user would: parse the checked-in Table-6-style spec, expand it (≥ 48
// cells), run it through the streaming engine, and POST the same spec
// to /v1/sweeps — with byte-identical aggregate output between the two
// transports.
func TestSweepAPIExposed(t *testing.T) {
	data, err := os.ReadFile("examples/sweeps/specs/table6_processor_mitigation.json")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := ichannels.ParseSweepSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := ichannels.ExpandSweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 48 {
		t.Fatalf("the checked-in grid expands to %d cells, want ≥ 48", len(cells))
	}

	streamed := 0
	res, err := ichannels.RunSweep(context.Background(), sw, ichannels.SweepOptions{
		BaseSeed: 7, Parallel: 8,
		OnCell: func(o ichannels.SweepCellOutcome) error { streamed++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || streamed != len(cells) || len(res.Cells) != len(cells) {
		t.Fatalf("ran %d/%d cells, %d failed", streamed, len(cells), res.Failed)
	}
	var direct bytes.Buffer
	if err := ichannels.WriteSweepAggregateLine(&direct, res.Aggregate); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(ichannels.NewExperimentServer())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/sweeps?seed=7", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("POST /v1/sweeps: status %d", resp.StatusCode)
	}
	wire, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(wire), []byte("\n"))
	if len(lines) != len(cells)+1 {
		t.Fatalf("HTTP stream has %d lines, want %d cells + aggregate", len(lines), len(cells))
	}
	if got := string(lines[len(lines)-1]) + "\n"; got != direct.String() {
		t.Errorf("HTTP aggregate differs from RunSweep:\nhttp:   %sdirect: %s", got, direct.String())
	}

	if len(ichannels.SweepSchemaJSON()) == 0 {
		t.Error("sweep schema empty")
	}
}
