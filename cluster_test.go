package ichannels_test

// Multi-process cluster conformance suite: build the real CLI binary,
// spawn a coordinator and worker processes over loopback, run a
// checked-in sweep spec distributed, and assert the streamed cell lines
// and the final aggregate carry exactly the bytes a serial local run
// produces — including with a worker SIGKILLed mid-sweep. This is the
// distributed tier's end of the determinism contract, exercised the way
// a user deploys it (real processes, real sockets), not through
// httptest.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os/exec"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

const clusterSpec = "examples/sweeps/specs/table6_processor_mitigation.json"

// serialRef runs the cluster spec serially in one local process, once
// per test binary — the reference every distributed run must match.
var serialRef struct {
	sync.Once
	cells [][]byte // per-cell result bytes, stream order
	seeds []int64
	agg   []byte // the trailing aggregate line, verbatim
}

func clusterReference(t *testing.T) ([][]byte, []int64, []byte) {
	t.Helper()
	serialRef.Do(func() {
		lines := runCLI(t, "sweep", "run", clusterSpec, "-ndjson", "-parallel", "1")
		for _, ln := range lines[:len(lines)-1] {
			wl, res := parseWireLine(t, ln)
			serialRef.cells = append(serialRef.cells, res)
			serialRef.seeds = append(serialRef.seeds, wl.Seed)
		}
		serialRef.agg = lines[len(lines)-1]
	})
	if serialRef.agg == nil {
		t.Fatal("serial reference run failed (see the first failing test)")
	}
	return serialRef.cells, serialRef.seeds, serialRef.agg
}

// workerProc is one spawned `ichannels serve -worker` process.
type workerProc struct {
	url string
	cmd *exec.Cmd
}

var bannerRE = regexp.MustCompile(`serving the scenario API on (http://[^ ]+) `)

// startWorker spawns a worker process on an ephemeral loopback port and
// parses the bound address from its startup banner.
func startWorker(t *testing.T, extra ...string) *workerProc {
	t.Helper()
	return startServe(t, append([]string{"-worker"}, extra...)...)
}

// startServe spawns `ichannels serve -addr 127.0.0.1:0` with extra
// flags and parses the bound address from its startup banner.
func startServe(t *testing.T, extra ...string) *workerProc {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(buildCLI(t), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	urlCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := bannerRE.FindStringSubmatch(sc.Text()); m != nil {
				urlCh <- m[1]
				break
			}
		}
		// Keep draining so the worker never blocks on a full pipe.
		io.Copy(io.Discard, stderr)
	}()
	select {
	case url := <-urlCh:
		return &workerProc{url: url, cmd: cmd}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not print its startup banner")
		return nil
	}
}

// distStats is the coordinator's `dist:` stderr summary line,
// including the store-tier tallies appended after the semicolon.
type distStats struct {
	remote, redispatched, corrupt, localFallback           int
	storeHits, storeMisses, storeTransient, storePermanent int
}

// storeErrors is the combined degraded-operation count, any class.
func (ds distStats) storeErrors() int { return ds.storeTransient + ds.storePermanent }

func parseDistStats(t *testing.T, stderr string) distStats {
	t.Helper()
	for _, ln := range strings.Split(stderr, "\n") {
		var ds distStats
		if _, err := fmt.Sscanf(ln, "dist: %d remote, %d redispatched, %d corrupt, %d local fallback; store: %d hits, %d misses, %d transient, %d permanent",
			&ds.remote, &ds.redispatched, &ds.corrupt, &ds.localFallback,
			&ds.storeHits, &ds.storeMisses, &ds.storeTransient, &ds.storePermanent); err == nil {
			return ds
		}
	}
	t.Fatalf("no dist stats line in coordinator stderr:\n%s", stderr)
	return distStats{}
}

// assertClusterStream compares a distributed run's NDJSON stream with
// the serial reference: per-cell result bytes and seeds, and the final
// aggregate line byte-for-byte.
func assertClusterStream(t *testing.T, surface string, lines [][]byte) {
	t.Helper()
	cells, seeds, agg := clusterReference(t)
	if len(lines) != len(cells)+1 {
		t.Fatalf("%s: %d lines, want %d cells + aggregate", surface, len(lines), len(cells))
	}
	for i, ln := range lines[:len(lines)-1] {
		wl, res := parseWireLine(t, ln)
		if wl.Seed != seeds[i] {
			t.Errorf("%s cell %d: seed %d, want %d", surface, i, wl.Seed, seeds[i])
		}
		if !bytes.Equal(res, cells[i]) {
			t.Errorf("%s cell %d result differs from serial run:\n%s\nwant:\n%s", surface, i, res, cells[i])
		}
	}
	if got := lines[len(lines)-1]; !bytes.Equal(got, agg) {
		t.Errorf("%s aggregate differs from serial run:\n%s\nwant:\n%s", surface, got, agg)
	}
}

// TestClusterConformance: a coordinator process dispatching to two
// worker processes over loopback emits byte-identical cell results and
// aggregate to a serial single-process run, with every cell served
// remotely and zero verification rejections.
func TestClusterConformance(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)

	cmd := exec.Command(buildCLI(t), "sweep", "run", clusterSpec, "-ndjson", "-parallel", "4",
		"-workers", w1.url+","+w2.url)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("coordinator: %v\nstderr: %s", err, stderr.String())
	}
	var lines [][]byte
	for _, ln := range bytes.Split(stdout.Bytes(), []byte("\n")) {
		if len(bytes.TrimSpace(ln)) > 0 {
			lines = append(lines, ln)
		}
	}
	assertClusterStream(t, "cluster", lines)

	cells, _, _ := clusterReference(t)
	ds := parseDistStats(t, stderr.String())
	if ds.remote != len(cells) || ds.localFallback != 0 {
		t.Errorf("dist stats %+v: want all %d cells served remotely", ds, len(cells))
	}
	if ds.corrupt != 0 {
		t.Errorf("dist stats %+v: healthy workers must produce zero verification rejections", ds)
	}
	if ds.storeHits != 0 || ds.storeMisses != 0 || ds.storeErrors() != 0 {
		t.Errorf("dist stats %+v: a storeless coordinator must report zero store activity", ds)
	}
}

// TestClusterWorkerKilled: SIGKILL one of two workers while the
// coordinator is mid-sweep. Its in-flight cells are redispatched (or
// recomputed locally if the fleet thrashes) and the emitted bytes are
// unchanged — the coordinator exits 0 with the serial run's output.
func TestClusterWorkerKilled(t *testing.T) {
	w1, w2 := startWorker(t), startWorker(t)

	cmd := exec.Command(buildCLI(t), "sweep", "run", clusterSpec, "-ndjson", "-parallel", "4",
		"-workers", w1.url+","+w2.url)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	var lines [][]byte
	sc := bufio.NewScanner(stdout)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		ln := append([]byte(nil), bytes.TrimSpace(sc.Bytes())...)
		if len(ln) == 0 {
			continue
		}
		lines = append(lines, ln)
		if len(lines) == 5 {
			// Mid-sweep: cells are streaming, more are in flight on
			// both workers. Kill one without warning.
			if err := w1.cmd.Process.Kill(); err != nil {
				t.Fatalf("killing worker: %v", err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading coordinator stdout: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("coordinator exited abnormally after worker death: %v\nstderr: %s", err, stderr.String())
	}
	assertClusterStream(t, "cluster-killed", lines)

	// The dead worker's cells must have been recovered somewhere —
	// redispatched to the survivor or recomputed locally — and none of
	// it may surface as corruption.
	ds := parseDistStats(t, stderr.String())
	if ds.corrupt != 0 {
		t.Errorf("dist stats %+v: a killed worker must not register as corruption", ds)
	}
	cells, _, _ := clusterReference(t)
	if ds.remote+ds.localFallback != len(cells) {
		t.Errorf("dist stats %+v: remote + local fallback should cover all %d cells", ds, len(cells))
	}
}

// TestClusterSharedStore: one process serves its corpus over HTTP
// (`serve -store DIR -share`) and a separate coordinator process uses
// it as its -store by URL — no shared filesystem. The cold run
// populates the corpus over the wire; the warm run streams every cell
// cached, byte-identical to the serial reference.
func TestClusterSharedStore(t *testing.T) {
	storeDir := t.TempDir()
	host := startServe(t, "-store", storeDir, "-share")

	args := []string{"sweep", "run", clusterSpec, "-ndjson", "-parallel", "4", "-store", host.url, "-resume"}
	cold := runCLI(t, args...)
	assertClusterStream(t, "shared-cold", cold)
	for i, ln := range cold[:len(cold)-1] {
		if wl, _ := parseWireLine(t, ln); wl.Cached {
			t.Errorf("shared-cold cell %d marked cached against an empty corpus", i)
		}
	}

	warm := runCLI(t, args...)
	assertClusterStream(t, "shared-warm", warm)
	for i, ln := range warm[:len(warm)-1] {
		if wl, _ := parseWireLine(t, ln); !wl.Cached {
			t.Errorf("shared-warm cell %d not served from the remote corpus", i)
		}
	}

	// The corpus physically lives on the serving process's disk.
	cells, _, _ := clusterReference(t)
	ls := runCLI(t, "store", "ls", storeDir)
	if got := string(ls[len(ls)-1]); !strings.HasPrefix(got, fmt.Sprintf("%d entries", len(cells))) {
		t.Errorf("host corpus holds %q, want %d entries", got, len(cells))
	}
}
