package ichannels_test

// Acceptance tests for adaptive sweep refinement against the real
// simulator: the checked-in Fig. 14-style noise/BER sweep must find its
// knee with at most half the dense grid's cells, and every group it
// does compute must match the dense run exactly (same per-cell seeds ⇒
// same result bytes — the determinism contract extended over grids).

import (
	"context"
	"encoding/json"
	"math"
	"os"
	"sort"
	"testing"

	"ichannels"
)

// loadRefinedSpec loads the checked-in refined noise sweep.
func loadRefinedSpec(t *testing.T) ichannels.Sweep {
	t.Helper()
	data, err := os.ReadFile("examples/sweeps/specs/fig14_noise_refined.json")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := ichannels.ParseSweepSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

// jitterOf recovers the noise axis coordinate from a group key label.
func jitterOf(t *testing.T, label string) int {
	t.Helper()
	if label == "{}" {
		return 0
	}
	var n struct {
		J int `json:"tsc_jitter_cycles"`
	}
	if err := json.Unmarshal([]byte(label), &n); err != nil {
		t.Fatalf("group label %q: %v", label, err)
	}
	return n.J
}

func TestRefinedNoiseSweepMatchesDenseAtHalfTheCells(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 40-cell dense grid")
	}
	sw := loadRefinedSpec(t)
	threshold := sw.Refine.Threshold

	refined, err := ichannels.RefineSweep(context.Background(), sw, ichannels.SweepOptions{BaseSeed: 1, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	dense := sw
	dense.Refine = nil
	denseRes, err := ichannels.RunSweep(context.Background(), dense, ichannels.SweepOptions{BaseSeed: 1, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if refined.Failed != 0 || denseRes.Failed != 0 {
		t.Fatalf("failed cells: refined %d, dense %d", refined.Failed, denseRes.Failed)
	}

	// Acceptance: at most 50% of the dense grid computed.
	ref := refined.Refinement
	if ref == nil {
		t.Fatal("no refinement record")
	}
	if ref.DenseCells != len(denseRes.Cells) {
		t.Fatalf("refinement says dense=%d, dense run has %d cells", ref.DenseCells, len(denseRes.Cells))
	}
	if 2*ref.CellsComputed > ref.DenseCells {
		t.Fatalf("refined run computed %d of %d cells (> 50%%)", ref.CellsComputed, ref.DenseCells)
	}

	// Index the dense aggregate by noise coordinate.
	denseBER := map[string]float64{}
	for _, g := range denseRes.Aggregate.Groups {
		denseBER[g.Key["noise"]] = g.BER.Mean
	}

	// Every group the refined run computed matches the dense run
	// exactly: per-cell seeds derive from (base seed, cell hash), so a
	// refined cell IS the dense cell.
	for _, g := range refined.Aggregate.Groups {
		want, ok := denseBER[g.Key["noise"]]
		if !ok {
			t.Fatalf("refined group %v not in the dense aggregate", g.Key)
		}
		if math.Abs(g.BER.Mean-want) > 1e-12 {
			t.Errorf("group %v: refined BER %.6f, dense %.6f", g.Key, g.BER.Mean, want)
		}
	}

	// The controller's stopping invariant: between any two adjacent
	// computed positions with uncomputed cells still in the gap, the
	// metric moved by less than the threshold — nothing visibly moving
	// was left unexplored.
	type point struct {
		jit int
		ber float64
	}
	var refCurve []point
	jitPos := map[int]int{}
	var axis []int
	for _, g := range denseRes.Aggregate.Groups {
		axis = append(axis, jitterOf(t, g.Key["noise"]))
	}
	sort.Ints(axis)
	for i, j := range axis {
		jitPos[j] = i
	}
	for _, g := range refined.Aggregate.Groups {
		refCurve = append(refCurve, point{jit: jitterOf(t, g.Key["noise"]), ber: g.BER.Mean})
	}
	sort.Slice(refCurve, func(i, j int) bool { return refCurve[i].jit < refCurve[j].jit })
	for i := 0; i+1 < len(refCurve); i++ {
		a, b := refCurve[i], refCurve[i+1]
		if jitPos[b.jit]-jitPos[a.jit] > 1 && math.Abs(b.ber-a.ber) >= threshold {
			t.Errorf("interval jitter %d→%d moves %.4f ≥ %v but was left unexplored",
				a.jit, b.jit, math.Abs(b.ber-a.ber), threshold)
		}
	}

	// Knee coverage: the curve's documented transition band (the BER
	// climb between jitter 6k and 14k, whose coarse-visible gradient is
	// several times the threshold) must be locally dense — that is the
	// region the paper's Fig. 14-style curves need sampled finely.
	computed := map[int]bool{}
	for _, p := range refCurve {
		computed[p.jit] = true
	}
	for _, jit := range []int{6000, 7000, 8000, 9000, 10000, 12000, 14000} {
		if !computed[jit] {
			t.Errorf("knee position jitter=%d was not computed by the refined run", jit)
		}
	}
	t.Logf("refined %d/%d cells over %d passes", ref.CellsComputed, ref.DenseCells, len(ref.Passes))
}
