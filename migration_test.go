package ichannels_test

// Migration conformance: a corpus materialized by a per-file sweep,
// migrated with `store pack`, must serve a resumed run and a fresh
// server with byte-identical output — cold == warm == migrated, every
// post-migration cell marked cached. This is the promise that lets an
// operator pack a production corpus between runs without anyone
// downstream noticing.

import (
	"bytes"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"ichannels"
)

const migrationSpec = "examples/sweeps/specs/crosscore_noise.json"

func TestStorePackMigrationConformance(t *testing.T) {
	storeDir := t.TempDir()
	args := []string{"sweep", "run", migrationSpec, "-ndjson", "-parallel", "4", "-store", storeDir, "-resume"}

	// Cold run materializes the per-file corpus.
	cold := runCLI(t, args...)
	if ichannels.DetectStoreLayout(storeDir) != ichannels.StoreLayoutPerFile {
		t.Fatal("fresh corpus did not come up per-file")
	}
	for _, ln := range cold[:len(cold)-1] {
		if wl, _ := parseWireLine(t, ln); wl.Cached {
			t.Fatal("cold cell marked cached")
		}
	}

	// Migrate in place via the CLI, exactly as an operator would.
	out := runCLI(t, "store", "pack", storeDir)
	if len(out) == 0 || !bytes.Contains(out[len(out)-1], []byte("packed")) {
		t.Fatalf("store pack said: %s", bytes.Join(out, []byte("\n")))
	}
	if ichannels.DetectStoreLayout(storeDir) != ichannels.StoreLayoutPacked {
		t.Fatal("store pack left the corpus per-file")
	}
	// Nothing per-file survives except the segments directory.
	des, err := os.ReadDir(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if de.Name() != "segments" {
			t.Fatalf("per-file remnant %q after pack", de.Name())
		}
	}

	// The packed corpus still verifies through the same CLI surface.
	verify := runCLI(t, "store", "verify", storeDir)
	last := string(verify[len(verify)-1])
	if !strings.Contains(last, "0 corrupt") {
		t.Fatalf("store verify after pack: %s", last)
	}

	// A resumed run over the migrated corpus: byte-identical stream,
	// every cell served from the store.
	warm := runCLI(t, args...)
	if len(warm) != len(cold) {
		t.Fatalf("migrated run emitted %d lines, cold %d", len(warm), len(cold))
	}
	for i, ln := range warm[:len(warm)-1] {
		wl, res := parseWireLine(t, ln)
		if !wl.Cached {
			t.Errorf("migrated cell %d not served from the packed store", i)
		}
		_, coldRes := parseWireLine(t, cold[i])
		if !bytes.Equal(res, coldRes) {
			t.Errorf("migrated cell %d result differs from cold run:\n%s\nwant:\n%s", i, res, coldRes)
		}
	}
	if !bytes.Equal(warm[len(warm)-1], cold[len(cold)-1]) {
		t.Errorf("migrated aggregate differs from cold run:\n%s\nwant:\n%s",
			warm[len(warm)-1], cold[len(cold)-1])
	}

	// A fresh server over the packed corpus serves the sweep entirely
	// from segments, byte-identical again.
	data, err := os.ReadFile(migrationSpec)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newStoreServer(t, storeDir))
	defer srv.Close()
	http := postNDJSON(t, srv, "/v1/sweeps", data)
	if len(http) != len(cold) {
		t.Fatalf("http emitted %d lines, cold %d", len(http), len(cold))
	}
	for i, ln := range http[:len(http)-1] {
		wl, res := parseWireLine(t, ln)
		if !wl.Cached {
			t.Errorf("http cell %d not served from the packed store", i)
		}
		_, coldRes := parseWireLine(t, cold[i])
		if !bytes.Equal(res, coldRes) {
			t.Errorf("http cell %d result differs from cold run", i)
		}
	}
	if !bytes.Equal(http[len(http)-1], cold[len(cold)-1]) {
		t.Error("http aggregate differs from cold run after migration")
	}

	// And gc over the packed layout stays a safe no-op on a live corpus.
	gc := runCLI(t, "store", "gc", storeDir)
	if !strings.Contains(string(gc[len(gc)-1]), "removed 0 corrupt") {
		t.Fatalf("store gc after pack: %s", gc[len(gc)-1])
	}
}
