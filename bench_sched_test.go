package ichannels_test

// Event-scheduler microbenchmarks: the timing wheel (sched.Queue)
// against the container/heap reference (sched.HeapQueue) on the three
// load shapes the simulator produces — dense near-future completions,
// sparse far-future timers (the wheel's overflow tier), and
// cancel-heavy reprice storms. Run with -benchmem: the wheel's
// free-listed nodes should show zero steady-state allocations.

import (
	"testing"

	"ichannels/internal/sched"
	"ichannels/internal/units"
)

// benchEvents is the working set per benchmark iteration — large enough
// to spread over many wheel buckets, small enough that one -benchtime 1x
// CI pass stays in microseconds.
const benchEvents = 4096

// benchRNG is a splitmix-style step: deterministic offsets without
// seeding a math/rand source inside the timed loop.
func benchRNG(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

func benchScheduler(b *testing.B, mk func() sched.Scheduler) {
	nop := func(units.Time) {}

	// dense: every delay lands inside the wheel horizon (≈1 ms), the
	// completion/PMU-decay steady state of a running simulation.
	b.Run("dense", func(b *testing.B) {
		q := mk()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rng := uint64(i)
			for j := 0; j < benchEvents; j++ {
				d := units.Duration(1 + benchRNG(&rng)%uint64(900*units.Microsecond))
				q.After(d, "dense", nop)
			}
			q.Run(benchEvents)
		}
	})

	// sparse: delays up to 100 ms, so most events enter far beyond the
	// wheel horizon and must migrate through the overflow tier.
	b.Run("sparse", func(b *testing.B) {
		q := mk()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rng := uint64(i)
			for j := 0; j < benchEvents; j++ {
				d := units.Duration(1 + benchRNG(&rng)%uint64(100*units.Millisecond))
				q.After(d, "sparse", nop)
			}
			q.Run(benchEvents)
		}
	})

	// cancel: schedule near-future, immediately cancel 3 of every 4 —
	// the completion-reprice storm SMT co-scheduling produces.
	b.Run("cancel", func(b *testing.B) {
		q := mk()
		refs := make([]sched.EventRef, benchEvents)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rng := uint64(i)
			for j := 0; j < benchEvents; j++ {
				d := units.Duration(1 + benchRNG(&rng)%uint64(900*units.Microsecond))
				refs[j] = q.After(d, "cancel", nop)
			}
			fire := benchEvents
			for j, r := range refs {
				if j%4 != 0 {
					q.Cancel(r)
					fire--
				}
			}
			q.Run(uint64(fire))
		}
	})
}

func BenchmarkSchedWheel(b *testing.B) {
	benchScheduler(b, func() sched.Scheduler { return sched.NewQueue() })
}

func BenchmarkSchedHeap(b *testing.B) {
	benchScheduler(b, func() sched.Scheduler { return sched.NewHeapQueue() })
}
