package ichannels_test

// Fuzz the remote-store client against a byzantine share server: the
// server answers every request with attacker-controlled status and
// body bytes. The invariants are the trust boundary of the shared
// corpus — no response may panic the client, a result is only ever
// served if its envelope verified, and the replica cache never
// persists bytes that did not verify. Smoke window in CI; longer local
// runs: go test -run '^$' -fuzz FuzzRemoteResponses -fuzztime 2m .

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"ichannels/internal/scenario"
	"ichannels/internal/store"
)

func FuzzRemoteResponses(f *testing.F) {
	key := store.Key{Hash: "0123456789abcdef", Seed: 1}
	result := &scenario.Result{Role: scenario.RoleChannel, Hash: key.Hash, Seed: key.Seed, Bits: 1}
	valid, err := store.EncodeEnvelope(key, result)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint16(200), valid)
	f.Add(uint16(200), valid[:len(valid)/2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x01
	f.Add(uint16(200), flipped)
	f.Add(uint16(200), []byte(`{}`))
	f.Add(uint16(200), []byte(`[]`))
	f.Add(uint16(200), []byte(`<html>504 Gateway Time-out</html>`))
	f.Add(uint16(200), []byte{})
	f.Add(uint16(404), []byte(`{"error":"not found"}`))
	f.Add(uint16(503), []byte(`chaos: burst`))
	f.Add(uint16(413), []byte(`too large`))

	// One server reused across iterations; each iteration swaps the
	// scripted response under the lock (iterations are sequential
	// within a fuzz worker process).
	var mu sync.Mutex
	status, body := 200, []byte(nil)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		s, b := status, append([]byte(nil), body...)
		mu.Unlock()
		w.WriteHeader(s)
		w.Write(b)
	}))
	f.Cleanup(srv.Close)
	backend, err := store.NewHTTPBackend(srv.URL, srv.Client())
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, rawStatus uint16, data []byte) {
		mu.Lock()
		// Clamp to a final-response status; 1xx would make the client
		// wait for a second response that never comes.
		status = 200 + int(rawStatus)%400
		body = data
		mu.Unlock()

		rb := store.NewRetryBackend(backend, store.RetryOptions{Disable: true})
		remote := store.NewBackendStore(rb)
		res, ok, err := remote.Get(key)
		if ok && (err != nil || res == nil) {
			t.Fatalf("remote get: ok with err=%v res=%v", err, res)
		}
		// Writes and listings against the hostile server must degrade
		// to errors, never panic.
		_ = remote.Put(key, result)
		_, _ = rb.ListObjects()

		rep, rerr := store.OpenReplica(t.TempDir(), rb, store.ReplicaOptions{})
		if rerr != nil {
			t.Fatal(rerr)
		}
		defer rep.Close()
		res2, ok2, _ := rep.Get(key)
		if ok2 && res2 == nil {
			t.Fatal("replica get: ok with nil result")
		}
		cachedBytes, cached, _ := rep.Local().GetObject(key)
		if cached {
			// Whatever landed in the cache must be a verified envelope
			// for the key — byzantine bytes never persist.
			if _, derr := store.DecodeEnvelope(key, cachedBytes); derr != nil {
				t.Fatalf("replica cached an envelope that does not verify: %v", derr)
			}
		}
		if !ok2 && cached {
			t.Fatal("replica cached bytes for a key it refused to serve")
		}
	})
}
