// Package ichannels is a simulator-backed reproduction of "IChannels:
// Exploiting Current Management Mechanisms to Create Covert Channels in
// Modern Processors" (Haj-Yahya et al., ISCA 2021).
//
// It provides:
//
//   - a deterministic, picosecond-resolution discrete-event simulator of a
//     modern client SoC's current-management subsystem (voltage regulators
//     with slew-limited ramps, a central PMU with multi-level voltage
//     guardbands and serialized transitions, per-core IDQ throttling, SMT,
//     AVX power gates, Iccmax/Vccmax protection, and a two-stage thermal
//     model), calibrated to the paper's three processors;
//   - the three IChannels covert channels (IccThreadCovert, IccSMTcovert,
//     IccCoresCovert), an instruction-class-inference side channel, and
//     the four baselines the paper compares against (NetSpectre, TurboCC,
//     DFScovert, PowerT);
//   - the paper's three mitigations (per-core VRs, improved throttling,
//     secure mode) and an evaluation harness;
//   - runners that regenerate every figure and table of the paper's
//     evaluation, a parallel batch engine that executes them on a worker
//     pool with per-experiment derived seeds (RunExperiments);
//   - the Scenario API: one declarative, JSON-serializable spec for
//     every run path above (RunScenario, RunScenarios), and an HTTP
//     server exposing it as a versioned v1 API with a (scenario, seed)
//     result cache (NewExperimentServer).
//
// Determinism is a hard guarantee throughout: for a fixed seed the
// simulator, every experiment, and every batch (at any parallelism)
// reproduce byte-identical results. See docs/ARCHITECTURE.md.
//
// Quickstart:
//
//	proc := ichannels.CannonLake8121U()
//	m, _ := ichannels.NewMachine(ichannels.MachineOptions{Processor: proc, Seed: 1})
//	ch, _ := ichannels.NewChannel(m, ichannels.DefaultChannelParams(ichannels.CrossCore, proc))
//	ch.Calibrate(8)
//	res, _ := ch.Transmit([]int{1, 0, 1, 1, 0, 0, 1, 0})
//	fmt.Println(res.DecodedBits, res.ThroughputBPS)
package ichannels

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"ichannels/internal/baselines"
	"ichannels/internal/core"
	"ichannels/internal/dist"
	"ichannels/internal/ecc"
	"ichannels/internal/engine"
	"ichannels/internal/exp"
	"ichannels/internal/isa"
	"ichannels/internal/mitigate"
	"ichannels/internal/model"
	"ichannels/internal/scenario"
	"ichannels/internal/serve"
	"ichannels/internal/soc"
	"ichannels/internal/store"
	"ichannels/internal/sweep"
	"ichannels/internal/trace"
	"ichannels/internal/units"
)

// ---- Simulated machine ----

// Machine is a fully wired simulated system-on-chip.
type Machine = soc.Machine

// MachineOptions configures a Machine.
type MachineOptions = soc.Options

// NoiseConfig describes OS interrupt/context-switch injection.
type NoiseConfig = soc.NoiseConfig

// PowerState is an instantaneous electrical snapshot.
type PowerState = soc.PowerState

// Agent is a software context bound to a hardware thread.
type Agent = soc.Agent

// AgentFunc adapts a function to the Agent interface.
type AgentFunc = soc.AgentFunc

// AgentEnv is the execution context handed to agents.
type AgentEnv = soc.Env

// Action and Result are the agent protocol types.
type (
	Action = soc.Action
	Result = soc.Result
)

// Agent action constructors.
var (
	Exec       = soc.Exec
	SpinUntil  = soc.SpinUntil
	IdleFor    = soc.IdleFor
	StopAction = soc.Stop
)

// NewMachine builds a machine from options.
func NewMachine(opts MachineOptions) (*Machine, error) { return soc.New(opts) }

// NoiseWithRates builds a noise config with default event durations.
func NoiseWithRates(interruptsPerSec, ctxSwitchesPerSec float64) NoiseConfig {
	return soc.WithRates(interruptsPerSec, ctxSwitchesPerSec)
}

// ---- Processor profiles ----

// Processor is a calibrated processor profile.
type Processor = model.Processor

// The three parts characterized in the paper, plus the §6.4 server
// extension profile (extrapolated, not calibrated against published data).
var (
	Haswell4770K     = model.Haswell4770K
	CoffeeLake9700K  = model.CoffeeLake9700K
	CannonLake8121U  = model.CannonLake8121U
	XeonPlatinum8160 = model.XeonPlatinum8160
)

// Processors returns all calibrated profiles.
func Processors() []Processor { return model.All() }

// ProcessorByName looks up a profile by marketing or code name.
func ProcessorByName(name string) (Processor, error) { return model.ByName(name) }

// ---- Instruction model ----

// Class is an instruction computational-intensity class.
type Class = isa.Class

// Kernel is an instruction loop.
type Kernel = isa.Kernel

// The seven intensity classes (paper §4/§5.5).
const (
	Scalar64    = isa.Scalar64
	Vec128Light = isa.Vec128Light
	Vec128Heavy = isa.Vec128Heavy
	Vec256Light = isa.Vec256Light
	Vec256Heavy = isa.Vec256Heavy
	Vec512Light = isa.Vec512Light
	Vec512Heavy = isa.Vec512Heavy
)

// KernelFor returns the canonical loop kernel for a class.
func KernelFor(c Class) Kernel { return isa.KernelFor(c) }

// ParseClass converts a class name ("64b", "256b_Heavy", ...) to a Class.
func ParseClass(s string) (Class, error) { return isa.ParseClass(s) }

// ---- Covert channels (the paper's contribution) ----

// Channel is one configured IChannels covert channel.
type Channel = core.Channel

// ChannelKind selects the variant (SameThread, SMT, CrossCore).
type ChannelKind = core.Kind

// Channel variants.
const (
	SameThread = core.SameThread
	SMT        = core.SMT
	CrossCore  = core.CrossCore
)

// ChannelParams time-boxes covert transactions.
type ChannelParams = core.Params

// Calibration is a learned decode rule.
type Calibration = core.Calibration

// TransmitResult reports a covert transmission.
type TransmitResult = core.TransmitResult

// Symbol is a 2-bit covert symbol.
type Symbol = core.Symbol

// Spy is the §6.5 instruction-class-inference side channel.
type Spy = core.Spy

// NewChannel builds a covert channel on a machine.
func NewChannel(m *Machine, p ChannelParams) (*Channel, error) { return core.New(m, p) }

// DefaultChannelParams returns tuned transaction parameters for a kind on
// a processor.
func DefaultChannelParams(kind ChannelKind, p Processor) ChannelParams {
	return core.DefaultParams(kind, p)
}

// NewSpy builds the side-channel observer.
func NewSpy(m *Machine, kind ChannelKind) (*Spy, error) { return core.NewSpy(m, kind) }

// ---- Baselines ----

// Baseline channel implementations compared against in Fig. 12 / Table 2.
type (
	NetSpectre = baselines.NetSpectre
	TurboCC    = baselines.TurboCC
	DFScovert  = baselines.DFScovert
	PowerT     = baselines.PowerT
)

// Baseline constructors.
var (
	NewNetSpectre = baselines.NewNetSpectre
	NewTurboCC    = baselines.NewTurboCC
	NewDFScovert  = baselines.NewDFScovert
	NewPowerT     = baselines.NewPowerT
)

// ---- Mitigations ----

// Mitigation identifies one of the paper's §7 defenses.
type Mitigation = mitigate.Kind

// The mitigations of Table 1.
const (
	NoMitigation       = mitigate.None
	PerCoreVR          = mitigate.PerCoreVR
	ImprovedThrottling = mitigate.ImprovedThrottling
	SecureMode         = mitigate.SecureMode
)

// MitigationAssessment grades a channel under a mitigation.
type MitigationAssessment = mitigate.Assessment

// EvaluateMitigation attacks a mitigated machine and grades the outcome.
func EvaluateMitigation(k Mitigation, ch ChannelKind, p Processor, nBits int, seed int64) (*MitigationAssessment, error) {
	return mitigate.Evaluate(k, ch, p, nBits, seed)
}

// MitigatedMachineOptions returns machine options with mitigation k
// applied (including the evaluation noise environment).
func MitigatedMachineOptions(k Mitigation, p Processor, seed int64) MachineOptions {
	return mitigate.MachineOptions(k, p, seed)
}

// ---- Coding (noise recovery, §6.3) ----

// Frame coding helpers: Hamming(7,4) + interleaving + CRC-8 framing.
var (
	EncodeFrame = ecc.EncodeFrame
	DecodeFrame = ecc.DecodeFrame
)

// ---- Measurement ----

// Recorder samples a machine like the paper's NI-DAQ card.
type Recorder = trace.Recorder

// NewRecorder creates a sampler with the given interval.
func NewRecorder(m *Machine, interval Duration) (*Recorder, error) {
	return trace.NewRecorder(m, interval)
}

// ---- Units ----

// Time and Duration are simulated picosecond timestamps/spans; Hertz is a
// frequency.
type (
	Time     = units.Time
	Duration = units.Duration
	Hertz    = units.Hertz
)

// Common duration and frequency constants.
const (
	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
	Second      = units.Second
	GHz         = units.GHz
	MHz         = units.MHz
)

// ---- Experiments ----

// Report is a regenerated figure/table.
type Report = exp.Report

// ExperimentInfo describes one registered experiment (ID, paper section,
// description).
type ExperimentInfo = exp.Experiment

// RunExperiment regenerates one of the paper's figures or tables by ID
// (fig6a…fig14c, sevenzip, table1, table2) with an explicit seed.
func RunExperiment(id string, seed int64) (*Report, error) { return exp.Run(id, seed) }

// Experiments lists the registered experiments in definition order.
func Experiments() []ExperimentInfo { return exp.Experiments() }

// ---- Experiment engine (batch) and serving ----

// BatchOptions configures a parallel batch run of experiments.
type BatchOptions = engine.Options

// BatchResult is one experiment's outcome within a batch.
type BatchResult = engine.Result

// ExperimentBatch is the outcome of a batch run.
type ExperimentBatch = engine.Batch

// RunExperiments executes experiments on a worker pool with derived
// per-experiment seeds. For a fixed BaseSeed the reports are
// byte-identical regardless of BatchOptions.Parallel.
func RunExperiments(ctx context.Context, opts BatchOptions) (*ExperimentBatch, error) {
	return engine.Run(ctx, opts)
}

// DeriveSeed maps a batch base seed and an experiment ID to the seed
// that experiment receives in a batch.
func DeriveSeed(base int64, id string) int64 { return engine.DeriveSeed(base, id) }

// ---- Scenario API (v1): one declarative spec for every run ----

// Scenario is the declarative, JSON-serializable description of one
// run: an IChannels channel transmission, a baseline channel, the side
// channel, a mitigation evaluation, or a registered experiment. The
// same spec executes identically from Go (RunScenario), the CLI
// (ichannels scenario run), and the wire (POST /v1/scenarios).
type Scenario = scenario.Scenario

// ScenarioResult is the normalized result envelope every scenario run
// produces (decoded bits, throughput, BER, timing, per-role extras).
type ScenarioResult = scenario.Result

// ScenarioNoise, ScenarioCoding and ScenarioParams are the spec's
// optional sub-objects.
type (
	ScenarioNoise  = scenario.Noise
	ScenarioCoding = scenario.Coding
	ScenarioParams = scenario.Params
)

// RunScenario validates and executes one scenario (spec seed, or
// scenario.DefaultSeed when unset). For a fixed (spec, seed) the
// result's JSON encoding is byte-identical across processes and
// transports.
func RunScenario(ctx context.Context, s Scenario) (*ScenarioResult, error) {
	return scenario.Run(ctx, s)
}

// ScenarioBatchOptions configures a batch of scenarios on the engine's
// worker pool.
type ScenarioBatchOptions = engine.ScenarioOptions

// ScenarioBatch is the outcome of a scenario batch run.
type ScenarioBatch = engine.ScenarioBatch

// RunScenarios executes scenarios on a worker pool with derived
// per-scenario seeds. For a fixed BaseSeed the results are
// byte-identical regardless of Parallel.
func RunScenarios(ctx context.Context, opts ScenarioBatchOptions) (*ScenarioBatch, error) {
	return engine.RunScenarios(ctx, opts)
}

// ScenarioFromExperiment wraps a registered experiment ID as a
// Scenario (the canned generator for the figure/table registry).
func ScenarioFromExperiment(id string) Scenario { return scenario.FromExperiment(id) }

// AllExperimentScenarios returns one experiment-role Scenario per
// registered experiment, in definition order.
func AllExperimentScenarios() []Scenario { return scenario.AllExperiments() }

// ScenarioSchemaJSON returns the machine-readable Scenario spec schema
// (the payload of GET /v1/scenarios/schema).
func ScenarioSchemaJSON() []byte { return scenario.SchemaJSON() }

// ChannelKindNames returns every registered channel kind in canonical
// order — the paper's three variants plus the adopted families — all
// valid for scenario roles channel and mitigation-eval.
func ChannelKindNames() []string { return scenario.ChannelKindNames() }

// SpyKindNames returns the channel kinds the spy role accepts.
func SpyKindNames() []string { return scenario.SpyKindNames() }

// BaselineNames returns every registered baseline channel name.
func BaselineNames() []string { return scenario.BaselineNames() }

// MitigationNames returns every canonical mitigation name.
func MitigationNames() []string { return scenario.MitigationNames() }

// ChannelKindSource returns the source-paper citation for a registered
// channel kind ("" for unknown names).
func ChannelKindSource(kind string) string { return scenario.KindSource(kind) }

// ChannelKindDescribe returns the one-line description of a registered
// channel kind ("" for unknown names).
func ChannelKindDescribe(kind string) string { return scenario.KindDescribe(kind) }

// ParseScenarioSpecs parses a JSON spec payload — one scenario object
// or a non-empty array — rejecting unknown fields and trailing data.
// The CLI and the HTTP v1 layer share this decoder, so a spec that one
// accepts the other does too.
func ParseScenarioSpecs(data []byte) (specs []Scenario, isArray bool, err error) {
	return scenario.ParseSpecs(data)
}

// NewExperimentServer returns an http.Handler exposing the versioned
// scenario API (GET /v1/experiments, GET /v1/scenarios/schema, POST
// /v1/scenarios with a (scenario, seed) result cache, POST /v1/sweeps
// and GET /v1/sweeps/schema for parameter grids) plus the deprecated
// legacy routes GET /experiments and POST /run/{name}?seed=N.
func NewExperimentServer() http.Handler { return serve.New(serve.Options{}).Handler() }

// NewExperimentServerWithStore is NewExperimentServer with a durable
// result store under the in-memory cache: memory misses are served
// from the store before computing, computed results are persisted, and
// a restarted server warms from disk.
func NewExperimentServerWithStore(st ResultStore) http.Handler {
	return serve.New(serve.Options{Store: st}).Handler()
}

// ---- Result store: the durable (scenario hash, seed) corpus ----

// ResultStore is the pluggable persistence contract every execution
// layer accepts: results are content-addressed by (scenario hash,
// effective seed) and immutable by the determinism contract. Set it on
// ScenarioBatchOptions/ScenarioStreamOptions/SweepOptions (directly or
// via their WithStore methods) to make runs fetch-or-compute, or hand
// it to NewExperimentServerWithStore.
type ResultStore = store.Store

// ResultStoreKey identifies one stored result.
type ResultStoreKey = store.Key

// FSResultStore is the filesystem ResultStore: one atomically written,
// checksummed, versioned envelope per result under a root directory.
type FSResultStore = store.FS

// StoreEntry, StoreVerifyReport and StoreGCReport are the maintenance
// views of a filesystem store (List, Verify, GC/GCWith).
type (
	StoreEntry        = store.Entry
	StoreVerifyReport = store.VerifyReport
	StoreGCReport     = store.GCReport
)

// StoreGCOptions bounds what FSResultStore.GCWith retains: entries
// older than MaxAge are removed, then the oldest survivors are evicted
// until the corpus fits MaxBytes — the retention knobs
// `ichannels store gc -max-age -max-bytes` exposes for CI scratch
// corpora. Evicted results are recomputable on demand (determinism),
// so retention trades disk for recompute, never data.
type StoreGCOptions = store.GCOptions

// OpenStore creates (if needed) and opens a filesystem result store
// rooted at dir — what `ichannels sweep run -store DIR` and
// `ichannels serve -store DIR` open.
func OpenStore(dir string) (*FSResultStore, error) { return store.Open(dir) }

// WriteOnlyStore returns a view of st whose reads always miss: runs
// persist every result but recompute all of them — how `-store`
// without `-resume` re-verifies determinism while (re)materializing
// the corpus.
func WriteOnlyStore(st ResultStore) ResultStore { return store.WriteOnly(st) }

// ---- Store v2: packed segments, migration, backends ----

// ResultStoreLayout names an on-disk corpus layout: per-file (one
// envelope per file) or packed (append-only segments with index
// sidecars). Both serve the identical ResultStore surface; the layout
// only changes the storage economics.
type ResultStoreLayout = store.Layout

// The two directory layouts.
const (
	StoreLayoutPerFile = store.LayoutPerFile
	StoreLayoutPacked  = store.LayoutPacked
)

// DirResultStore is the full directory-store surface both layouts
// implement: the ResultStore read/write pair plus maintenance (List,
// Verify, GC), the raw-object Backend verbs, and lifecycle (Close).
type DirResultStore = store.DirStore

// PackedResultStore is the packed-segment DirResultStore: checksummed
// envelopes packed into append-only segment files with per-segment
// index sidecars, crash-safe rebuild, and live-entry compaction.
type PackedResultStore = store.Packed

// RemoteResultStore is a ResultStore served by another process over
// HTTP (`ichannels serve -store DIR -share`): every read is re-verified
// locally, so a misbehaving server degrades to recomputes, never to
// wrong bytes.
type RemoteResultStore = store.Remote

// ResultStoreBackend is the raw-object seam under every store: three
// verbs moving opaque envelope bytes by key. Implement it to plug a new
// transport in; wrap it with NewBackendResultStore to get a verifying
// ResultStore back.
type ResultStoreBackend = store.Backend

// StorePackReport and the bench types are the machine-readable results
// of `ichannels store pack` and `ichannels store bench`.
type (
	StorePackReport        = store.PackReport
	StoreBenchOptions      = store.BenchOptions
	StoreBenchReport       = store.BenchReport
	StoreBenchLayoutReport = store.BenchLayoutReport
)

// DetectStoreLayout reports which layout a store directory holds.
func DetectStoreLayout(dir string) ResultStoreLayout { return store.DetectLayout(dir) }

// OpenStoreDir opens a store directory in whichever layout it already
// holds — the opener every maintenance surface uses so `store
// ls|verify|gc` work identically on both layouts.
func OpenStoreDir(dir string) (DirResultStore, error) { return store.OpenDir(dir) }

// OpenResultStore opens a store spec: an http(s):// URL becomes a
// RemoteResultStore talking to a `serve -share` corpus, anything else a
// directory in its detected layout. The opener behind every `-store`
// flag.
func OpenResultStore(spec string) (ResultStore, error) { return store.OpenAuto(spec) }

// IsRemoteStoreSpec reports whether a -store spec names a remote corpus.
func IsRemoteStoreSpec(spec string) bool { return store.IsRemoteSpec(spec) }

// CloseResultStore releases st's resources (segment handles, pending
// compaction) when it has any; stores without lifecycle are a no-op.
func CloseResultStore(st ResultStore) error { return store.CloseStore(st) }

// OpenPackedStore creates (if needed) and opens a packed-layout store.
func OpenPackedStore(dir string) (*PackedResultStore, error) { return store.OpenPacked(dir) }

// OpenRemoteStore opens the corpus a `serve -store DIR -share` process
// exposes at baseURL.
func OpenRemoteStore(baseURL string) (*RemoteResultStore, error) {
	return store.OpenRemote(baseURL, nil)
}

// NewBackendResultStore wraps a raw-object backend in the envelope
// verification that makes it a trustworthy ResultStore.
func NewBackendResultStore(b ResultStoreBackend) ResultStore { return store.NewBackendStore(b) }

// ---- Resilient shared-corpus tier ----

// RemoteStoreRetryOptions tunes the retry/backoff/circuit-breaker
// policy every remote store opens with (OpenRemoteStore uses the
// defaults). Transient failures — transport errors, timeouts, 5xx —
// are retried with bounded exponential backoff; permanent ones (4xx,
// corrupt envelopes) surface immediately; a dead share server costs
// one probe per cooldown instead of a timeout per cell.
type RemoteStoreRetryOptions = store.RetryOptions

// OpenRemoteStoreWith opens a remote corpus with an explicit retry
// policy (tests use RemoteStoreRetryOptions{Disable: true} to skip
// backoff sleeps).
func OpenRemoteStoreWith(baseURL string, opts RemoteStoreRetryOptions) (*RemoteResultStore, error) {
	return store.OpenRemoteWith(baseURL, nil, opts)
}

// ReplicaResultStore is the read-through replica cache that makes the
// shared-corpus tier survivable: a local store layered over a remote
// corpus. Remote hits are verified once and persisted verbatim, local
// hits never touch the network, writes land locally first with an
// async best-effort upstream flush. Because results are immutable,
// the tiers can never disagree about a key's bytes — there is no
// invalidation, only presence.
type (
	ReplicaResultStore  = store.ReplicaStore
	ReplicaStoreOptions = store.ReplicaOptions
	StoreSyncReport     = store.SyncReport
)

// Tier counters the resilient store path exposes: retry/breaker
// activity on the remote leg, cache activity on the replica leg.
// Engine stream stats, sweep results, and GET /v1/stats all carry a
// StoreTierStats snapshot when the store has a remote behind it.
type (
	StoreTierStats    = store.TierStats
	StoreRemoteStats  = store.RemoteStats
	StoreReplicaStats = store.ReplicaStats
)

// OpenReplicaStore layers a local cache directory (created packed if
// new) over the remote corpus at baseURL — what `-store URL -cache
// DIR` opens. The remote leg carries the default retry policy.
func OpenReplicaStore(cacheDir, baseURL string) (*ReplicaResultStore, error) {
	r, err := store.OpenRemote(baseURL, nil)
	if err != nil {
		return nil, err
	}
	return store.OpenReplica(cacheDir, r.Retry(), store.ReplicaOptions{})
}

// SyncStoreDir reconciles a local store directory against the remote
// corpus at baseURL: every local entry the remote lacks is pushed
// upstream. The recovery path after a partition or a remote wipe —
// `ichannels store sync` drives it.
func SyncStoreDir(ctx context.Context, dir, baseURL string) (*StoreSyncReport, error) {
	local, err := store.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	defer local.Close()
	r, err := store.OpenRemote(baseURL, nil)
	if err != nil {
		return nil, err
	}
	return store.SyncDirToRemote(ctx, local, r.Retry())
}

// PackStore migrates a per-file corpus into packed segments in place.
// Idempotent and crash-resumable: each entry is removed only after its
// bytes land in a segment, and a re-run finishes whatever a crash left.
func PackStore(dir string) (*StorePackReport, error) { return store.Pack(dir) }

// RunStoreBench fills a synthetic corpus and measures write throughput,
// warm-read latency, and gc time — per layout, so the per-file/packed
// trade-off is a measurement, not folklore.
func RunStoreBench(opts StoreBenchOptions) (*StoreBenchReport, error) {
	return store.RunBench(opts)
}

// ---- Streaming execution ----

// ScenarioStreamOptions configures a streaming scenario run: scenarios
// are pulled lazily from Next and outcomes pushed in order to Emit,
// with memory bounded by the worker count and reorder window instead of
// the stream length.
type ScenarioStreamOptions = engine.StreamOptions

// ScenarioStreamStats summarizes a completed stream.
type ScenarioStreamStats = engine.StreamStats

// StreamScenarios executes a lazily produced scenario sequence on a
// worker pool with bounded memory, emitting outcomes in stream order.
// RunScenarios is its collect-all wrapper; sweeps are its main client.
func StreamScenarios(ctx context.Context, opts ScenarioStreamOptions) (*ScenarioStreamStats, error) {
	return engine.StreamScenarios(ctx, opts)
}

// ---- Sweep API: declarative parameter grids ----

// Sweep is the declarative description of a parameter grid: a base
// Scenario plus named axes (processor, kind, baseline, mitigation,
// bits, noise, coding, params) whose cross-product expands
// deterministically into cells — the paper's processors × kinds ×
// mitigations tables as one spec. The same spec executes identically
// from Go (RunSweep), the CLI (ichannels sweep run), and the wire
// (POST /v1/sweeps).
type Sweep = scenario.Sweep

// SweepAxes names the grid dimensions of a Sweep.
type SweepAxes = scenario.SweepAxes

// SweepFilter is one cell-exclusion rule of a Sweep.
type SweepFilter = scenario.SweepFilter

// SweepCell is one expanded grid point: the combined normalized
// scenario plus its axis coordinates.
type SweepCell = scenario.Cell

// SweepOptions configures a sweep run (seed, parallelism, streaming
// hook, executor override).
type SweepOptions = sweep.Options

// SweepCellOutcome is one completed cell streamed to
// SweepOptions.OnCell.
type SweepCellOutcome = sweep.CellOutcome

// SweepResult is a completed sweep: compact per-cell summaries plus
// the grouped aggregate table.
type SweepResult = sweep.Result

// SweepTable is the grouped aggregate (count and mean/min/max/p50/p95
// of BER, throughput, and simulated time per axis-subset group).
type SweepTable = sweep.Table

// RunSweep expands and executes a sweep, streaming cells through the
// engine worker pool with bounded memory and reducing them on the fly.
// For a fixed (sweep, BaseSeed) every per-cell result and the aggregate
// table are byte-identical at any parallelism.
func RunSweep(ctx context.Context, sw Sweep, opts SweepOptions) (*SweepResult, error) {
	return sweep.Run(ctx, sw, opts)
}

// ExpandSweep materializes a sweep's cells in expansion order without
// running them (each cell's Scenario is normalized and validated).
func ExpandSweep(sw Sweep) ([]SweepCell, error) { return sw.Expand() }

// ParseSweepSpec parses one JSON sweep object, rejecting unknown fields
// and trailing data — the decoder the CLI and HTTP v1 layer share.
func ParseSweepSpec(data []byte) (Sweep, error) { return scenario.ParseSweep(data) }

// SweepSchemaJSON returns the machine-readable Sweep spec schema (the
// payload of GET /v1/sweeps/schema).
func SweepSchemaJSON() []byte { return scenario.SweepSchemaJSON() }

// SweepCellLineJSON is the NDJSON wire form of one streamed sweep cell.
type SweepCellLineJSON = sweep.CellLine

// SweepCellLine converts a streamed cell outcome to the NDJSON line
// form the CLI emits (the HTTP layer adds a `cached` field on top).
func SweepCellLine(o SweepCellOutcome) SweepCellLineJSON { return sweep.LineOf(o) }

// WriteSweepAggregateLine writes the aggregate's NDJSON framing — the
// final line of both `ichannels sweep run -ndjson` and POST /v1/sweeps,
// byte-identical between the two for a fixed spec and seed. Refined
// runs use SweepResult.WriteAggregateLine instead, which carries the
// refinement record in the same line.
func WriteSweepAggregateLine(w io.Writer, t *SweepTable) error {
	return sweep.WriteAggregateLine(w, t)
}

// ---- Distributed execution ----

// CellRunner is the hash-aware compute seam of the streaming engine:
// set one on ScenarioBatchOptions/ScenarioStreamOptions/SweepOptions
// (the Runner field) to delegate each cell's compute — the distributed
// tier's WorkerPool is the remote implementation. Implementations must
// honor the determinism contract: for a fixed (spec, seed) the returned
// result's JSON encoding is byte-identical to a local run's.
type CellRunner = engine.CellRunner

// WorkerPool is the distributed sweep coordinator: a CellRunner that
// dispatches cells to remote workers over the HTTP v1 wire, verifies
// every response against the store's checksummed envelope format (a
// byzantine or stale worker is rejected and its cell redispatched),
// quarantines failing workers with exponential backoff, and falls back
// to local compute so output bytes never depend on which machines were
// alive. See internal/dist and docs/ARCHITECTURE.md.
type WorkerPool = dist.Pool

// WorkerPoolOptions configures a WorkerPool (HTTP client, retry
// attempts, backoff, local-fallback policy).
type WorkerPoolOptions = dist.Options

// WorkerPoolStats snapshots a pool's counters: verified remote cells,
// redispatches, rejected (byzantine/stale) responses, local fallbacks.
type WorkerPoolStats = dist.Stats

// NewWorkerPool builds a coordinator over worker base URLs — what
// `ichannels sweep run -workers URL,URL` constructs.
func NewWorkerPool(workers []string, opts WorkerPoolOptions) (*WorkerPool, error) {
	return dist.New(workers, opts)
}

// CellDispatch is the coordinator→worker wire frame for one cell
// (version, content hash, effective seed, normalized spec).
type CellDispatch = dist.CellDispatch

// NewCellDispatch frames one cell for the wire; ParseCellDispatch is
// the strict decoder the worker endpoint uses (unknown fields and
// trailing data rejected).
var (
	NewCellDispatch   = dist.NewCellDispatch
	ParseCellDispatch = dist.ParseCellDispatch
)

// NewWorkerServer is NewExperimentServerWithStore plus the distributed
// tier's cell endpoint (POST /v1/cells): the handler `ichannels serve
// -worker` mounts. Workers share the single-flight (hash, seed) cache
// with every other route, and with a non-nil store the durable corpus
// too — cross-node dedup for free. Pass nil to run a memory-only
// worker.
func NewWorkerServer(st ResultStore) http.Handler {
	return serve.New(serve.Options{Store: st, Worker: true}).Handler()
}

// ServerOptions configures NewServer: the full serve surface (store
// tier, worker endpoint, store sharing, cache and concurrency bounds)
// in one struct. The named constructors above remain as the common
// presets.
type ServerOptions = serve.Options

// NewServer builds the scenario-API handler from explicit options.
// Callers that need the server's lifecycle (the retention timer) use
// NewAPIServer instead.
func NewServer(opts ServerOptions) http.Handler { return serve.New(opts).Handler() }

// APIServer is the serve-layer server itself, exposed for callers that
// need more than the handler: Close stops the retention timer,
// RunRetention forces one GC pass.
type APIServer = serve.Server

// NewAPIServer builds the full server — what `ichannels serve` uses so
// shutdown stops the retention loop (-gc-every) cleanly.
func NewAPIServer(opts ServerOptions) *APIServer { return serve.New(opts) }

// ---- Adaptive sweep refinement ----

// SweepRefine is the optional refine block of a Sweep: run a coarse
// strided pass first, then re-expand only the group_by regions whose
// metric (BER or throughput) actually moves — the Fig. 14-style
// noise/BER knee found with a fraction of the dense grid's cells. See
// scenario.Refine for the pass model and determinism contract.
type SweepRefine = scenario.Refine

// SweepPassStats is one executed refinement pass's deterministic
// header (pass number, cell count, budget truncation); streamed to
// SweepOptions.OnPass and recorded in SweepRefinementStats.
type SweepPassStats = sweep.PassStats

// SweepRefinementStats records a refined run's shape: the watched
// metric, each pass, and cells computed vs the dense-grid equivalent.
type SweepRefinementStats = sweep.RefinementStats

// RefineSweep runs a sweep adaptively, requiring the spec to carry a
// refine block (RunSweep also honors the block; this entry point makes
// the intent explicit and fails loudly on a dense spec). The refined
// cell set, per-cell results, and the final aggregate are byte-identical
// at any parallelism and across kill-and-resume, because per-pass
// dispatch follows scenario content-hash order and per-cell seeds
// derive from (BaseSeed, cell hash) exactly as in a dense run.
func RefineSweep(ctx context.Context, sw Sweep, opts SweepOptions) (*SweepResult, error) {
	if sw.Normalized().Refine == nil {
		return nil, fmt.Errorf("ichannels: RefineSweep needs a spec with a refine block (use RunSweep for dense grids)")
	}
	return sweep.Run(ctx, sw, opts)
}

// WriteSweepPassLine writes one refinement pass marker's NDJSON framing
// — emitted before the pass's cell lines by both the CLI's -ndjson mode
// and POST /v1/sweeps.
func WriteSweepPassLine(w io.Writer, p SweepPassStats) error {
	return sweep.WritePassLine(w, p)
}
