module ichannels

go 1.24
