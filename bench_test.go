package ichannels_test

// One benchmark per paper table/figure: each regenerates the artifact and
// reports its headline metrics via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.

import (
	"context"
	"fmt"
	"os"
	"testing"

	"ichannels"
)

// benchedExperiments maps every benchmarked experiment ID to the
// headline metrics its benchmark reports. TestBenchmarkSpecsValidate
// checks the table against the live registry, so a renamed or removed
// experiment breaks the test step, not the bench step.
var benchedExperiments = map[string][]string{
	"fig6a":    {"vcc_delta_core1_mv", "vcc_delta_both_mv"},
	"fig6b":    {"vcc_delta_max_mv"},
	"fig7a":    {"case1_settled_ghz", "case4_settled_ghz"},
	"fig7b":    {"freq_AVX512_ghz", "temp_AVX2_c"},
	"fig8a":    {"tp_mean_us_Haswell", "tp_mean_us_Cannon_Lake"},
	"fig8bc":   {"first_iter_delta_ns_Coffee_Lake"},
	"fig9":     {"a_min_ipc_ratio", "b_wake_fraction_pct"},
	"fig10a":   {"two_core_ratio_256H_1GHz", "tp_512H_1.4GHz_1core_us"},
	"fig10b":   {"tp512_after_64b_us"},
	"fig11":    {"throttled_undelivered_frac"},
	"fig12a":   {"iccthread_bps", "ratio"},
	"fig12b":   {"iccsmt_bps", "ratio_vs_powert"},
	"fig13":    {"separable_gt_2k_cycles"},
	"fig14a":   {"ber_irq_10000"},
	"fig14b":   {"ser_app512b_Heavy_symL4"},
	"fig14c":   {"ber_rate_10000"},
	"sevenzip": {"ber"},
	"server":   {"ber_IccCoresCovert"},
	"table1":   {"ber_Secure-Mode_IccThreadCovert"},
	"table2":   {"ichannels_bw_bps"},
}

func benchExperiment(b *testing.B, id string) {
	metrics, ok := benchedExperiments[id]
	if !ok {
		b.Fatalf("experiment %s is not in benchedExperiments", id)
	}
	var rep *ichannels.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = ichannels.RunExperiment(id, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		if v, ok := rep.Metrics[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkFig6a(b *testing.B) { benchExperiment(b, "fig6a") }

func BenchmarkFig6b(b *testing.B) { benchExperiment(b, "fig6b") }

func BenchmarkFig7a(b *testing.B) { benchExperiment(b, "fig7a") }

func BenchmarkFig7b(b *testing.B) { benchExperiment(b, "fig7b") }

func BenchmarkFig8a(b *testing.B) { benchExperiment(b, "fig8a") }

func BenchmarkFig8bc(b *testing.B) { benchExperiment(b, "fig8bc") }

func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

func BenchmarkFig10a(b *testing.B) { benchExperiment(b, "fig10a") }

func BenchmarkFig10b(b *testing.B) { benchExperiment(b, "fig10b") }

func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

func BenchmarkFig12a(b *testing.B) { benchExperiment(b, "fig12a") }

func BenchmarkFig12b(b *testing.B) { benchExperiment(b, "fig12b") }

func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

func BenchmarkFig14a(b *testing.B) { benchExperiment(b, "fig14a") }

func BenchmarkFig14b(b *testing.B) { benchExperiment(b, "fig14b") }

func BenchmarkFig14c(b *testing.B) { benchExperiment(b, "fig14c") }

func BenchmarkSevenZip(b *testing.B) { benchExperiment(b, "sevenzip") }

// BenchmarkServer covers the §6.4 Skylake-SP extension — the smoke
// test found it registered but unbenchmarked, a hole in the perf
// trajectory.
func BenchmarkServer(b *testing.B) { benchExperiment(b, "server") }

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationSerializedVR compares the cross-core channel's level
// separability with the serialized shared VR (the real mechanism) against
// per-core VRs (serialization removed): the covert signal collapses.
func BenchmarkAblationSerializedVR(b *testing.B) {
	run := func(perCore bool, seed int64) float64 {
		proc := ichannels.CannonLake8121U()
		opts := ichannels.MachineOptions{Processor: proc, Seed: seed}
		if perCore {
			opts = ichannels.MitigatedMachineOptions(ichannels.PerCoreVR, proc, seed)
			opts.Noise = ichannels.NoiseConfig{}
			opts.TSCJitterCycles = 0
		}
		m, err := ichannels.NewMachine(opts)
		if err != nil {
			b.Fatal(err)
		}
		ch, err := ichannels.NewChannel(m, ichannels.DefaultChannelParams(ichannels.CrossCore, proc))
		if err != nil {
			b.Fatal(err)
		}
		cal, err := ch.Calibrate(4)
		if err != nil {
			return 0
		}
		return cal.Gap
	}
	var shared, perCore float64
	for i := 0; i < b.N; i++ {
		shared = run(false, int64(i+1))
		perCore = run(true, int64(i+1))
	}
	b.ReportMetric(shared, "gap_shared_vr_cycles")
	b.ReportMetric(perCore, "gap_percore_vr_cycles")
}

// BenchmarkAblationResetTime sweeps the license hysteresis: the paper's
// 650 µs reset-time is the dominant term of the transaction cycle, so
// capacity scales almost inversely with it.
func BenchmarkAblationResetTime(b *testing.B) {
	run := func(hysteresisUS float64) float64 {
		proc := ichannels.CannonLake8121U()
		proc.LicenseHysteresis = ichannels.Duration(hysteresisUS) * ichannels.Microsecond
		m, err := ichannels.NewMachine(ichannels.MachineOptions{Processor: proc, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		ch, err := ichannels.NewChannel(m, ichannels.DefaultChannelParams(ichannels.SameThread, proc))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ch.Calibrate(4); err != nil {
			b.Fatal(err)
		}
		res, err := ch.Transmit([]int{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1, 0})
		if err != nil || res.BER > 0 {
			return 0
		}
		return res.ThroughputBPS
	}
	var at650, at325 float64
	for i := 0; i < b.N; i++ {
		at650 = run(650)
		at325 = run(325)
	}
	b.ReportMetric(at650, "bps_reset_650us")
	b.ReportMetric(at325, "bps_reset_325us")
}

// BenchmarkAblationThrottleFactor compares the paper's measured 1-of-4 IDQ
// gate against a hypothetical harsher 1-of-8 gate: receiver separability
// (and thus the channel) survives either, showing the channel rides the
// ramp *duration*, not the throttle *depth*.
func BenchmarkAblationThrottleFactor(b *testing.B) {
	run := func(factor float64, seed int64) float64 {
		proc := ichannels.CannonLake8121U()
		proc.ThrottleFactor = factor
		m, err := ichannels.NewMachine(ichannels.MachineOptions{Processor: proc, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		ch, err := ichannels.NewChannel(m, ichannels.DefaultChannelParams(ichannels.SMT, proc))
		if err != nil {
			b.Fatal(err)
		}
		cal, err := ch.Calibrate(4)
		if err != nil {
			return 0
		}
		return cal.Gap
	}
	var quarter, eighth float64
	for i := 0; i < b.N; i++ {
		quarter = run(0.25, int64(i+1))
		eighth = run(0.125, int64(i+1))
	}
	b.ReportMetric(quarter, "gap_1of4_cycles")
	b.ReportMetric(eighth, "gap_1of8_cycles")
}

// Scenario API benchmarks: the perf trajectory of the single declarative
// entry point and of batches at increasing parallelism.

// BenchmarkRunScenario measures one scenario end to end (machine build,
// calibration, 32-bit transmission) through the declarative entry point.
func BenchmarkRunScenario(b *testing.B) {
	var last *ichannels.ScenarioResult
	for i := 0; i < b.N; i++ {
		res, err := ichannels.RunScenario(context.Background(), ichannels.Scenario{
			Role: "channel", Kind: "cores", Bits: 32, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ThroughputBPS, "channel_bps")
}

// benchedChannelKinds lists every channel kind with a per-kind scenario
// benchmark. TestBenchmarkSpecsValidate enforces the bijection against
// the kind registry, so adding a channel family without extending the
// perf trajectory (or benchmarking a kind that no longer exists) breaks
// the test step, not the bench step.
var benchedChannelKinds = map[string]bool{
	"thread":   true,
	"smt":      true,
	"cores":    true,
	"retire":   true,
	"clockmod": true,
}

// benchScenarioKind measures one 16-bit transmission of the given
// channel kind end to end through the declarative entry point.
func benchScenarioKind(b *testing.B, kind string) {
	if !benchedChannelKinds[kind] {
		b.Fatalf("kind %s is not in benchedChannelKinds", kind)
	}
	var last *ichannels.ScenarioResult
	for i := 0; i < b.N; i++ {
		res, err := ichannels.RunScenario(context.Background(), ichannels.Scenario{
			Role: "channel", Kind: kind, Bits: 16, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ThroughputBPS, "channel_bps")
	b.ReportMetric(last.BER, "ber")
}

func BenchmarkScenarioKindThread(b *testing.B) { benchScenarioKind(b, "thread") }

func BenchmarkScenarioKindSMT(b *testing.B) { benchScenarioKind(b, "smt") }

func BenchmarkScenarioKindCores(b *testing.B) { benchScenarioKind(b, "cores") }

func BenchmarkScenarioKindRetire(b *testing.B) { benchScenarioKind(b, "retire") }

func BenchmarkScenarioKindClockMod(b *testing.B) { benchScenarioKind(b, "clockmod") }

// batch16Specs is the fixed heterogeneous 16-scenario batch
// (4 processors × {cross-core channel, same-thread channel, cross-core
// spy, NetSpectre baseline}) BenchmarkRunScenariosBatch16 runs and
// TestBenchmarkSpecsValidate guards.
func batch16Specs() []ichannels.Scenario {
	var specs []ichannels.Scenario
	for _, proc := range []string{"Cannon Lake", "Coffee Lake", "Haswell", "Skylake-SP"} {
		specs = append(specs,
			ichannels.Scenario{Role: "channel", Kind: "cores", Processor: proc, Bits: 16},
			ichannels.Scenario{Role: "channel", Kind: "thread", Processor: proc, Bits: 16},
			ichannels.Scenario{Role: "spy", Kind: "cores", Processor: proc, Bits: 8},
			ichannels.Scenario{Role: "baseline", Baseline: "netspectre", Processor: proc, Bits: 8},
		)
	}
	return specs
}

// BenchmarkRunScenariosBatch16 runs the fixed heterogeneous batch at
// three pool sizes. The result bytes are parallelism-invariant; only
// the wall clock moves.
func BenchmarkRunScenariosBatch16(b *testing.B) {
	specs := batch16Specs()
	for _, par := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				batch, err := ichannels.RunScenarios(context.Background(), ichannels.ScenarioBatchOptions{
					Scenarios: specs, BaseSeed: int64(i + 1), Parallel: par,
				})
				if err != nil {
					b.Fatal(err)
				}
				if failed := batch.Failed(); len(failed) > 0 {
					b.Fatalf("%s: %v", failed[0].Scenario.Describe(), failed[0].Err)
				}
			}
		})
	}
}

// streamGrid yields the 32-cell grid BenchmarkStreamScenarios pulls
// through the streaming core (and TestBenchmarkSpecsValidate checks).
func streamGrid() func() (ichannels.Scenario, bool) {
	procs := []string{"Cannon Lake", "Coffee Lake", "Haswell", "Skylake-SP"}
	i := 0
	return func() (ichannels.Scenario, bool) {
		if i >= 32 {
			return ichannels.Scenario{}, false
		}
		s := ichannels.Scenario{
			Role: "channel", Kind: "cores",
			Processor: procs[i%len(procs)],
			Bits:      8 + 2*(i/len(procs)),
		}
		i++
		return s, true
	}
}

// BenchmarkStreamScenarios measures the streaming execution core — the
// path every sweep cell takes — over a 32-cell grid with a bounded
// reorder window, at two pool sizes. Run with -benchmem: the RunScenario
// hot path's preallocation work (measurement/decode slices sized from
// the schedule) shows up directly in B/op and allocs/op here.
func BenchmarkStreamScenarios(b *testing.B) {
	grid := streamGrid
	for _, par := range []int{1, 8} {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stats, err := ichannels.StreamScenarios(context.Background(), ichannels.ScenarioStreamOptions{
					Next: grid(), BaseSeed: int64(i + 1), Parallel: par, Window: 8,
				})
				if err != nil {
					b.Fatal(err)
				}
				if stats.Emitted != 32 || stats.Failed != 0 {
					b.Fatalf("stream stats %+v", stats)
				}
			}
		})
	}
}

// BenchmarkSweepTable6 runs the checked-in Table-6-style grid (88 cells
// post-filter) end to end: lazy expansion, streaming execution, grouped
// aggregation.
func BenchmarkSweepTable6(b *testing.B) {
	data, err := os.ReadFile("examples/sweeps/specs/table6_processor_mitigation.json")
	if err != nil {
		b.Fatal(err)
	}
	sw, err := ichannels.ParseSweepSpec(data)
	if err != nil {
		b.Fatal(err)
	}
	var res *ichannels.SweepResult
	for i := 0; i < b.N; i++ {
		res, err = ichannels.RunSweep(context.Background(), sw, ichannels.SweepOptions{
			BaseSeed: int64(i + 1), Parallel: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed > 0 {
			b.Fatalf("%d cells failed", res.Failed)
		}
	}
	b.ReportMetric(float64(len(res.Cells)), "cells")
}

// BenchmarkSweepRefined runs the checked-in adaptive Fig. 14-style
// noise sweep end to end: coarse pass, aggregator-driven scoring,
// midpoint refinement. cells vs dense_cells is the algorithmic win the
// refinement exists for (the knee found with ≤ half the dense grid);
// ns/op and allocs/op track the per-cell hot path it shares with every
// other sweep.
func BenchmarkSweepRefined(b *testing.B) {
	data, err := os.ReadFile("examples/sweeps/specs/fig14_noise_refined.json")
	if err != nil {
		b.Fatal(err)
	}
	sw, err := ichannels.ParseSweepSpec(data)
	if err != nil {
		b.Fatal(err)
	}
	var res *ichannels.SweepResult
	for i := 0; i < b.N; i++ {
		res, err = ichannels.RefineSweep(context.Background(), sw, ichannels.SweepOptions{
			BaseSeed: int64(i + 1), Parallel: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Failed > 0 {
			b.Fatalf("%d cells failed", res.Failed)
		}
	}
	b.ReportMetric(float64(res.Refinement.CellsComputed), "cells")
	b.ReportMetric(float64(res.Refinement.DenseCells), "dense_cells")
	b.ReportMetric(float64(len(res.Refinement.Passes)), "passes")
}

// TestBenchmarkSpecsValidate guards the bench setup: every benchmarked
// experiment must still be registered (and every registered experiment
// benchmarked, so the perf trajectory has no holes), and every
// scenario or sweep spec a benchmark constructs must validate — a
// bench broken by spec evolution fails here, in the test step, before
// the bench step ever runs.
func TestBenchmarkSpecsValidate(t *testing.T) {
	registered := map[string]bool{}
	for _, e := range ichannels.Experiments() {
		registered[e.ID] = true
	}
	for id := range benchedExperiments {
		if !registered[id] {
			t.Errorf("benchmarked experiment %q is not in the registry", id)
			continue
		}
		if err := ichannels.ScenarioFromExperiment(id).Validate(); err != nil {
			t.Errorf("experiment %q scenario: %v", id, err)
		}
	}
	for id := range registered {
		if _, ok := benchedExperiments[id]; !ok {
			t.Errorf("registered experiment %q has no benchmark (add it to benchedExperiments)", id)
		}
	}

	// Channel-kind bijection: every registered kind is benchmarked and
	// every benchmarked kind is registered, with a spec that validates.
	for _, k := range ichannels.ChannelKindNames() {
		if !benchedChannelKinds[k] {
			t.Errorf("registered channel kind %q has no benchmark (add it to benchedChannelKinds)", k)
		}
	}
	for k := range benchedChannelKinds {
		if ichannels.ChannelKindDescribe(k) == "" {
			t.Errorf("benchmarked channel kind %q is not in the registry", k)
			continue
		}
		if err := (ichannels.Scenario{Role: "channel", Kind: k, Bits: 16}).Validate(); err != nil {
			t.Errorf("kind %q bench spec: %v", k, err)
		}
	}

	for i, s := range batch16Specs() {
		if err := s.Validate(); err != nil {
			t.Errorf("batch16 spec %d (%s): %v", i, s.Describe(), err)
		}
	}
	next := streamGrid()
	for i := 0; ; i++ {
		s, ok := next()
		if !ok {
			if i != 32 {
				t.Errorf("stream grid yields %d cells, benchmark asserts 32", i)
			}
			break
		}
		if err := s.Validate(); err != nil {
			t.Errorf("stream grid cell %d (%s): %v", i, s.Describe(), err)
		}
	}
	if err := (ichannels.Scenario{Role: "channel", Kind: "cores", Bits: 32}).Validate(); err != nil {
		t.Errorf("BenchmarkRunScenario spec: %v", err)
	}

	data, err := os.ReadFile("examples/sweeps/specs/table6_processor_mitigation.json")
	if err != nil {
		t.Fatalf("BenchmarkSweepTable6 spec file: %v", err)
	}
	sw, err := ichannels.ParseSweepSpec(data)
	if err != nil {
		t.Fatalf("BenchmarkSweepTable6 spec: %v", err)
	}
	if n, err := sw.CountCells(); err != nil || n != 88 {
		t.Errorf("table6 sweep expands to %d cells (%v), benchmark asserts 88", n, err)
	}

	rdata, err := os.ReadFile("examples/sweeps/specs/fig14_noise_refined.json")
	if err != nil {
		t.Fatalf("BenchmarkSweepRefined spec file: %v", err)
	}
	rsw, err := ichannels.ParseSweepSpec(rdata)
	if err != nil {
		t.Fatalf("BenchmarkSweepRefined spec: %v", err)
	}
	if rsw.Refine == nil {
		t.Error("BenchmarkSweepRefined spec lost its refine block")
	}
	if n, err := rsw.CountCells(); err != nil || n != 40 {
		t.Errorf("refined sweep's dense grid is %d cells (%v), benchmark assumes 40", n, err)
	}
}

// BenchmarkSimulatorThroughput measures raw simulator performance:
// simulated microseconds per wall second while the covert channel runs.
func BenchmarkSimulatorThroughput(b *testing.B) {
	proc := ichannels.CannonLake8121U()
	m, err := ichannels.NewMachine(ichannels.MachineOptions{Processor: proc, Seed: 1, Noise: ichannels.NoiseWithRates(1000, 200)})
	if err != nil {
		b.Fatal(err)
	}
	ch, err := ichannels.NewChannel(m, ichannels.DefaultChannelParams(ichannels.CrossCore, proc))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ch.Calibrate(4); err != nil {
		b.Fatal(err)
	}
	bits := []int{1, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Transmit(bits); err != nil {
			b.Fatal(err)
		}
	}
}
