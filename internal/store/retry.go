package store

// The retry layer gives the remote store the same resilience contract
// the distributed tier gave workers: transient failures are retried
// with bounded exponential backoff, permanent failures (4xx, corrupt
// envelopes) are surfaced immediately, and a half-open circuit breaker
// turns a dead share server into one cheap probe per cooldown instead
// of a full timeout per cell. None of it changes output bytes — the
// engine recomputes anything the remote cannot serve — only wall clock
// and the counters.

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Retry/breaker defaults. Conservative enough that a healthy server
// never notices them; aggressive enough that a dead one costs a sweep
// milliseconds per cell, not timeouts.
const (
	defaultMaxAttempts      = 3
	defaultBackoffBase      = 50 * time.Millisecond
	defaultBackoffMax       = 2 * time.Second
	defaultAttemptTimeout   = 10 * time.Second
	defaultBreakerThreshold = 4
	defaultBreakerCooldown  = 3 * time.Second
)

// RetryOptions configures a RetryBackend. Zero values take defaults.
type RetryOptions struct {
	// MaxAttempts bounds HTTP attempts per operation (first try
	// included).
	MaxAttempts int
	// BackoffBase is the sleep before the first retry; it doubles per
	// attempt up to BackoffMax, with ±50% jitter.
	BackoffBase time.Duration
	// BackoffMax caps the per-retry sleep.
	BackoffMax time.Duration
	// AttemptTimeout bounds each individual attempt; the caller's
	// context still bounds the whole operation.
	AttemptTimeout time.Duration
	// BreakerThreshold is the consecutive transient-failure count that
	// opens the circuit.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit fast-fails before
	// admitting one half-open probe.
	BreakerCooldown time.Duration
	// Disable bypasses retries and the breaker entirely: one attempt,
	// caller's context only. Tests and fuzz targets use it to avoid
	// backoff sleeps.
	Disable bool
}

// RetryBackend wraps a context-aware Backend with retries and a
// circuit breaker. It implements Backend and BackendContext, so it
// slots under BackendStore exactly where the raw HTTP backend did.
type RetryBackend struct {
	b    Backend
	opts RetryOptions
	now  func() time.Time

	mu       sync.Mutex
	rng      *rand.Rand
	open     bool
	probing  bool
	reopenAt time.Time
	consec   int // consecutive transient failures
	stats    RemoteStats
}

// NewRetryBackend wraps b with the given retry policy.
func NewRetryBackend(b Backend, opts RetryOptions) *RetryBackend {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = defaultMaxAttempts
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = defaultBackoffBase
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = defaultBackoffMax
	}
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = defaultAttemptTimeout
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = defaultBreakerThreshold
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = defaultBreakerCooldown
	}
	return &RetryBackend{
		b:    b,
		opts: opts,
		now:  time.Now,
		rng:  rand.New(rand.NewSource(1)),
	}
}

// admit gates one attempt through the breaker. It returns probe=true
// when this attempt is the half-open probe, or ErrUnavailable when the
// circuit is open (the remote is not contacted at all).
func (r *RetryBackend) admit() (probe bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.open {
		return false, nil
	}
	if r.now().Before(r.reopenAt) || r.probing {
		r.stats.FastFails++
		return false, ErrUnavailable
	}
	r.probing = true
	return true, nil
}

// record books one attempt's outcome and drives the breaker state
// machine. Success and permanent errors both close the circuit (the
// server answered; availability is fine), transient failures count
// toward opening it.
func (r *RetryBackend) record(probe bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Attempts++
	if err == nil || IsPermanentError(err) {
		if err != nil {
			r.stats.Permanent++
		}
		r.open = false
		r.probing = false
		r.consec = 0
		return
	}
	r.stats.Transient++
	r.consec++
	if probe {
		// Failed probe: stay open for another cooldown.
		r.probing = false
		r.reopenAt = r.now().Add(r.opts.BreakerCooldown)
		return
	}
	if !r.open && r.consec >= r.opts.BreakerThreshold {
		r.open = true
		r.reopenAt = r.now().Add(r.opts.BreakerCooldown)
		r.stats.BreakerOpens++
	}
}

// sleep waits out one backoff step (exponential with ±50% jitter),
// honoring ctx.
func (r *RetryBackend) sleep(ctx context.Context, attempt int) error {
	d := r.opts.BackoffBase << (attempt - 1)
	if d > r.opts.BackoffMax || d <= 0 {
		d = r.opts.BackoffMax
	}
	r.mu.Lock()
	d = d/2 + time.Duration(r.rng.Int63n(int64(d)))
	r.mu.Unlock()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do runs op under the retry policy: per-attempt timeouts, backoff
// between transient failures, breaker gating each attempt.
func (r *RetryBackend) do(ctx context.Context, op func(context.Context) error) error {
	if r.opts.Disable {
		r.mu.Lock()
		r.stats.Attempts++
		r.mu.Unlock()
		return op(ctx)
	}
	var err error
	for attempt := 1; attempt <= r.opts.MaxAttempts; attempt++ {
		probe, aerr := r.admit()
		if aerr != nil {
			return aerr
		}
		if attempt > 1 {
			r.mu.Lock()
			r.stats.Retries++
			r.mu.Unlock()
		}
		actx, cancel := context.WithTimeout(ctx, r.opts.AttemptTimeout)
		err = op(actx)
		cancel()
		r.record(probe, err)
		if err == nil || IsPermanentError(err) {
			return err
		}
		// The caller gave up: its context error wins over ours.
		if ctx.Err() != nil {
			return err
		}
		if attempt < r.opts.MaxAttempts {
			if serr := r.sleep(ctx, attempt); serr != nil {
				return err
			}
		}
	}
	return err
}

// GetObject implements Backend.
func (r *RetryBackend) GetObject(key Key) ([]byte, bool, error) {
	return r.GetObjectContext(context.Background(), key)
}

// GetObjectContext implements BackendContext with retries.
func (r *RetryBackend) GetObjectContext(ctx context.Context, key Key) (data []byte, ok bool, err error) {
	err = r.do(ctx, func(actx context.Context) error {
		var oerr error
		data, ok, oerr = backendGet(actx, r.b, key)
		return oerr
	})
	if err != nil {
		return nil, false, err
	}
	return data, ok, nil
}

// PutObject implements Backend.
func (r *RetryBackend) PutObject(key Key, data []byte) error {
	return r.PutObjectContext(context.Background(), key, data)
}

// PutObjectContext implements BackendContext with retries.
func (r *RetryBackend) PutObjectContext(ctx context.Context, key Key, data []byte) error {
	return r.do(ctx, func(actx context.Context) error {
		return backendPut(actx, r.b, key, data)
	})
}

// ListObjects implements Backend.
func (r *RetryBackend) ListObjects() ([]Entry, error) {
	return r.ListObjectsContext(context.Background())
}

// ListObjectsContext implements BackendContext with retries.
func (r *RetryBackend) ListObjectsContext(ctx context.Context) (out []Entry, err error) {
	err = r.do(ctx, func(actx context.Context) error {
		var oerr error
		out, oerr = backendList(actx, r.b)
		return oerr
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stats snapshots the retry/breaker counters.
func (r *RetryBackend) Stats() RemoteStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	switch {
	case !r.open:
		s.State = "closed"
	case r.probing || !r.now().Before(r.reopenAt):
		s.State = "half-open"
	default:
		s.State = "open"
	}
	return s
}

func (r *RetryBackend) statsPtr() *RemoteStats {
	s := r.Stats()
	return &s
}

// TierStats implements TierStatter.
func (r *RetryBackend) TierStats() TierStats { return TierStats{Remote: r.statsPtr()} }
