package store

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openPackedTest(t *testing.T) *Packed {
	t.Helper()
	p, err := OpenPacked(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// fillPacked puts n distinct entries (seeds 1..n under the fixture
// hash) and returns their keys.
func fillPacked(t *testing.T, p *Packed, n int) []Key {
	t.Helper()
	keys := make([]Key, 0, n)
	for i := 1; i <= n; i++ {
		key := Key{Hash: "0123456789abcdef", Seed: int64(i)}
		if err := p.Put(key, testResult(key.Seed)); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	return keys
}

func TestPackedPutGetRoundTrip(t *testing.T) {
	p := openPackedTest(t)
	key := Key{Hash: "0123456789abcdef", Seed: 7}
	if _, ok, err := p.Get(key); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	want := testResult(7)
	if err := p.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := p.Get(key)
	if err != nil || !ok {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	}
	if got.ThroughputBPS != want.ThroughputBPS || got.BER != want.BER || got.Seed != want.Seed {
		t.Fatalf("round-trip mutated the result: %+v", got)
	}
	if got.Extra["calibration_gap_cycles"] != 4200 {
		t.Fatalf("extra metrics lost: %+v", got.Extra)
	}
}

// TestPackedPutDedupes: re-putting an existing key appends nothing —
// the log must not accumulate duplicate records.
func TestPackedPutDedupes(t *testing.T) {
	p := openPackedTest(t)
	key := Key{Hash: "0123456789abcdef", Seed: 1}
	if err := p.Put(key, testResult(1)); err != nil {
		t.Fatal(err)
	}
	size0 := p.active.size
	for i := 0; i < 5; i++ {
		if err := p.Put(key, testResult(1)); err != nil {
			t.Fatal(err)
		}
	}
	if p.active.size != size0 {
		t.Fatalf("duplicate puts grew the segment: %d -> %d bytes", size0, p.active.size)
	}
	ls, err := p.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 1 {
		t.Fatalf("listed %d entries, want 1", len(ls))
	}
}

// TestPackedReopenUnsealed: a store abandoned without Close (no sidecar
// for the active segment) serves everything after reopen — the
// crash-safe rebuild path.
func TestPackedReopenUnsealed(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fillPacked(t, p, 5)
	// Abandon: no Close, no sidecar. Only release the handles so the
	// bytes are visible to the second open on every platform.
	for _, st := range p.segs {
		st.f.Close()
	}
	if _, err := os.Stat(p.idxPath(1)); !os.IsNotExist(err) {
		t.Fatalf("unsealed segment already has a sidecar (err=%v)", err)
	}

	p2, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for _, key := range keys {
		if _, ok, err := p2.Get(key); !ok || err != nil {
			t.Fatalf("entry %s after rebuild: ok=%v err=%v", key, ok, err)
		}
	}
	// The rebuild reseals: the sidecar now exists and a third open
	// loads through it.
	if _, err := os.Stat(p2.idxPath(1)); err != nil {
		t.Fatalf("rebuild did not reseal the segment: %v", err)
	}
}

// TestPackedSealAndReopen: Close seals; reopen serves through the
// sidecar (no rescan — detected by corrupting the segment body, which a
// sidecar-trusting open will not notice until read time).
func TestPackedSealAndReopen(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fillPacked(t, p, 3)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	ls, err := p2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != len(keys) {
		t.Fatalf("listed %d entries after reopen, want %d", len(ls), len(keys))
	}
	for _, key := range keys {
		if _, ok, err := p2.Get(key); !ok || err != nil {
			t.Fatalf("entry %s after sealed reopen: ok=%v err=%v", key, ok, err)
		}
	}
}

// TestPackedStaleSidecarRescans: appending to a sealed segment behind
// the store's back makes the sidecar stale (covered_bytes mismatch);
// the next open must rescan and serve the extra record.
func TestPackedStaleSidecarRescans(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	fillPacked(t, p, 2)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Append a third, valid record directly to the segment file.
	extra := Key{Hash: "0123456789abcdef", Seed: 99}
	env, err := EncodeEnvelope(extra, testResult(99))
	if err != nil {
		t.Fatal(err)
	}
	frame := make([]byte, 4+len(env))
	binary.BigEndian.PutUint32(frame, uint32(len(env)))
	copy(frame[4:], env)
	segPath := filepath.Join(dir, SegmentsDirName, "00000001.seg")
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	p2, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if _, ok, err := p2.Get(extra); !ok || err != nil {
		t.Fatalf("record behind a stale sidecar not served: ok=%v err=%v", ok, err)
	}
	ls, _ := p2.List()
	if len(ls) != 3 {
		t.Fatalf("listed %d entries, want 3", len(ls))
	}
}

// TestPackedSegmentRoll: a tiny roll threshold produces multiple
// segments and every entry still serves.
func TestPackedSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPackedWith(dir, PackedOptions{MaxSegmentBytes: 600})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillPacked(t, p, 10)
	if len(p.segs) < 2 {
		t.Fatalf("10 entries over a 600-byte roll produced %d segment(s)", len(p.segs))
	}
	for _, key := range keys {
		if _, ok, err := p.Get(key); !ok || err != nil {
			t.Fatalf("entry %s across rolled segments: ok=%v err=%v", key, ok, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// And across a reopen, through the per-segment sidecars.
	p2, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for _, key := range keys {
		if _, ok, err := p2.Get(key); !ok || err != nil {
			t.Fatalf("entry %s after reopen: ok=%v err=%v", key, ok, err)
		}
	}
}

// TestPackedGetSelfHeals: a bit-flipped record errors once, drops from
// the index (subsequent Get is a clean miss), and a re-Put serves
// again — the engine's error-then-recompute-then-Put cycle heals the
// corpus.
func TestPackedGetSelfHeals(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fillPacked(t, p, 2)
	victim := keys[0]
	ref := p.index[victim]
	// Flip one byte inside the victim's payload, through the OS file.
	f, err := os.OpenFile(p.segPath(ref.seg), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, ref.off+10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, ok, err := p.Get(victim); err == nil || ok {
		t.Fatalf("corrupt record served: ok=%v err=%v", ok, err)
	}
	if _, ok, err := p.Get(victim); ok || err != nil {
		t.Fatalf("dropped record should be a clean miss: ok=%v err=%v", ok, err)
	}
	if err := p.Put(victim, testResult(victim.Seed)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := p.Get(victim); !ok || err != nil {
		t.Fatalf("re-put after self-heal: ok=%v err=%v", ok, err)
	}
	// The untouched neighbor was never affected.
	if _, ok, err := p.Get(keys[1]); !ok || err != nil {
		t.Fatalf("neighbor entry: ok=%v err=%v", ok, err)
	}
	p.Close()
}

// TestPackedGCCompacts: gc on a corpus with dropped records rewrites
// segments — disk shrinks, survivors serve, and a reopen agrees.
func TestPackedGCCompacts(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPackedWith(dir, PackedOptions{MaxSegmentBytes: 600})
	if err != nil {
		t.Fatal(err)
	}
	keys := fillPacked(t, p, 10)
	victim := keys[3]
	ref := p.index[victim]
	f, err := os.OpenFile(p.segPath(ref.seg), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, ref.off+10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	before, _ := p.segBytesLocked()
	rep, err := p.GC()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedCorrupt != 1 || rep.Kept != 9 {
		t.Fatalf("gc report %+v: want 1 corrupt removed, 9 kept", rep)
	}
	if rep.ReclaimedBytes <= 0 {
		t.Fatalf("gc report %+v: compaction reclaimed nothing", rep)
	}
	after, _ := p.segBytesLocked()
	if after >= before {
		t.Fatalf("disk did not shrink: %d -> %d bytes", before, after)
	}
	for _, key := range keys {
		if key == victim {
			continue
		}
		if _, ok, err := p.Get(key); !ok || err != nil {
			t.Fatalf("survivor %s after compaction: ok=%v err=%v", key, ok, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	p2, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	ls, _ := p2.List()
	if len(ls) != 9 {
		t.Fatalf("reopen after compaction lists %d entries, want 9", len(ls))
	}
}

// TestPackedGCMaxAge mirrors the FS retention semantics on the packed
// layout's append-timestamp clock.
func TestPackedGCMaxAge(t *testing.T) {
	p := openPackedTest(t)
	base := time.Now()
	p.now = func() time.Time { return base.Add(-48 * time.Hour) }
	old := fillPacked(t, p, 2)
	p.now = func() time.Time { return base }
	fresh := Key{Hash: "fedcba9876543210", Seed: 1}
	if err := p.Put(fresh, testResult(1)); err != nil {
		t.Fatal(err)
	}

	rep, err := p.GCWith(GCOptions{MaxAge: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedExpired != 2 || rep.Kept != 1 {
		t.Fatalf("gc report %+v: want 2 expired, 1 kept", rep)
	}
	for _, key := range old {
		if _, ok, _ := p.Get(key); ok {
			t.Fatalf("expired entry %s still serves", key)
		}
	}
	if _, ok, err := p.Get(fresh); !ok || err != nil {
		t.Fatalf("fresh entry evicted: ok=%v err=%v", ok, err)
	}
}

// TestPackedGCMaxBytes: the size budget evicts oldest append first.
func TestPackedGCMaxBytes(t *testing.T) {
	p := openPackedTest(t)
	base := time.Now()
	for i := 1; i <= 4; i++ {
		p.now = func() time.Time { return base.Add(time.Duration(i) * time.Hour) }
		key := Key{Hash: "0123456789abcdef", Seed: int64(i)}
		if err := p.Put(key, testResult(key.Seed)); err != nil {
			t.Fatal(err)
		}
	}
	// Every record is the same size; budget for two.
	var one int64
	for _, ref := range p.index {
		one = ref.length
		break
	}
	rep, err := p.GCWith(GCOptions{MaxBytes: 2 * one})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedOverBudget != 2 || rep.Kept != 2 {
		t.Fatalf("gc report %+v: want 2 evicted, 2 kept", rep)
	}
	for seed := int64(1); seed <= 2; seed++ {
		if _, ok, _ := p.Get(Key{Hash: "0123456789abcdef", Seed: seed}); ok {
			t.Fatalf("oldest entry (seed %d) survived the budget", seed)
		}
	}
	for seed := int64(3); seed <= 4; seed++ {
		if _, ok, err := p.Get(Key{Hash: "0123456789abcdef", Seed: seed}); !ok || err != nil {
			t.Fatalf("newest entry (seed %d) evicted: ok=%v err=%v", seed, ok, err)
		}
	}
}

// TestPackedGCSkipsForeignFiles: files gc does not recognize are
// counted, reported, and left exactly where they were — on the root and
// inside the segments directory alike.
func TestPackedGCSkipsForeignFiles(t *testing.T) {
	p := openPackedTest(t)
	fillPacked(t, p, 2)
	foreignRoot := filepath.Join(p.Dir(), "README.txt")
	foreignSeg := filepath.Join(p.segDir, "notes.json")
	for _, path := range []string{foreignRoot, foreignSeg} {
		if err := os.WriteFile(path, []byte("not a segment"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := p.GC()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 2 {
		t.Fatalf("gc report %+v: want Skipped=2", rep)
	}
	if rep.Kept != 2 || rep.RemovedCorrupt != 0 {
		t.Fatalf("gc report %+v: foreign files must not affect entries", rep)
	}
	for _, path := range []string{foreignRoot, foreignSeg} {
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("gc touched foreign file %s: %v", path, err)
		}
	}
}

// TestFSGCSkipsForeignFiles: the same contract on the per-file layout.
func TestFSGCSkipsForeignFiles(t *testing.T) {
	fs := openTest(t)
	key := Key{Hash: "0123456789abcdef", Seed: 1}
	if err := fs.Put(key, testResult(1)); err != nil {
		t.Fatal(err)
	}
	foreign := filepath.Join(fs.Dir(), "README.txt")
	if err := os.WriteFile(foreign, []byte("not an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.GC()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 || rep.Kept != 1 {
		t.Fatalf("gc report %+v: want Skipped=1 Kept=1", rep)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("gc touched the foreign file: %v", err)
	}
}

// TestPackedAutoCompact: an open that discovers a mostly-dead corpus
// schedules compaction in the background; after WaitMaintenance the
// disk holds only live records.
func TestPackedAutoCompact(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fillPacked(t, p, 4)
	// Abandon unsealed, then damage 3 of 4 records on disk so the
	// rescan finds a 3/4-dead segment.
	var refs []packedRef
	for _, k := range keys[:3] {
		refs = append(refs, p.index[k])
	}
	segPath := p.segPath(1)
	for _, st := range p.segs {
		st.f.Close()
	}
	f, err := os.OpenFile(segPath, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs {
		if _, err := f.WriteAt([]byte{0xff}, ref.off+10); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	p2, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	p2.WaitMaintenance()
	ls, err := p2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 1 {
		t.Fatalf("auto-compacted corpus lists %d entries, want 1", len(ls))
	}
	if _, ok, err := p2.Get(keys[3]); !ok || err != nil {
		t.Fatalf("surviving entry: ok=%v err=%v", ok, err)
	}
	p2.mu.RLock()
	dead := p2.deadBytes
	p2.mu.RUnlock()
	if dead != 0 {
		t.Fatalf("auto-compaction left %d dead bytes", dead)
	}
}

// TestPackedVerify: report-only integrity pass, with stray accounting
// for files the layout does not own.
func TestPackedVerify(t *testing.T) {
	p := openPackedTest(t)
	keys := fillPacked(t, p, 3)
	if err := os.WriteFile(filepath.Join(p.Dir(), "stray.bin"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := p.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 3 || len(rep.Problems) != 0 || rep.Stray != 1 {
		t.Fatalf("verify report %+v: want 3 clean entries, 1 stray", rep)
	}

	// Damage one record: verify reports it but keeps serving the rest
	// and does not drop the entry.
	ref := p.index[keys[1]]
	f, err := os.OpenFile(p.segPath(ref.seg), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, ref.off+10); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rep, err = p.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 1 {
		t.Fatalf("verify report %+v: want exactly the damaged record flagged", rep)
	}
	if !strings.Contains(rep.Problems[0].Path, "@") {
		t.Fatalf("problem path %q should carry the segment offset", rep.Problems[0].Path)
	}
}

// TestDetectLayoutAndOpenDir: layout detection drives OpenDir to the
// right implementation, and the per-file default holds for fresh
// directories.
func TestDetectLayoutAndOpenDir(t *testing.T) {
	dir := t.TempDir()
	if got := DetectLayout(dir); got != LayoutPerFile {
		t.Fatalf("fresh dir layout = %q, want perfile", got)
	}
	st, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Layout() != LayoutPerFile {
		t.Fatalf("OpenDir on fresh dir = %q", st.Layout())
	}
	st.Close()

	p, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if got := DetectLayout(dir); got != LayoutPacked {
		t.Fatalf("layout after packed open = %q, want packed", got)
	}
	st, err = OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Layout() != LayoutPacked {
		t.Fatalf("OpenDir on packed dir = %q", st.Layout())
	}
}

func TestParseKeyString(t *testing.T) {
	cases := []struct {
		in   string
		want Key
		ok   bool
	}{
		{"0123456789abcdef-7", Key{Hash: "0123456789abcdef", Seed: 7}, true},
		{"abc-123-456", Key{Hash: "abc-123", Seed: 456}, true},
		{"nodash", Key{}, false},
		{"-7", Key{}, false},
		{"hash-", Key{}, false},
		{"hash-notanumber", Key{}, false},
	}
	for _, c := range cases {
		got, ok := ParseKeyString(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("ParseKeyString(%q) = %+v, %v; want %+v, %v", c.in, got, ok, c.want, c.ok)
		}
	}
}
