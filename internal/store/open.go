package store

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// Layout names an on-disk store format.
type Layout string

const (
	// LayoutPerFile is the v1 format: one file per entry under
	// dir/<hash[:2]>/<hash>-<seed>.json.
	LayoutPerFile Layout = "perfile"
	// LayoutPacked is the v2 format: framed envelopes appended to
	// segment files under dir/segments, each with an index sidecar.
	LayoutPacked Layout = "packed"
)

// DirStore is the full surface both directory-backed layouts share:
// the Store contract plus the maintenance operations the `store` CLI
// and CI retention drive. OpenDir returns one without the caller ever
// naming a layout.
type DirStore interface {
	Store
	Backend
	List() ([]Entry, error)
	Verify() (*VerifyReport, error)
	GC() (*GCReport, error)
	GCWith(opts GCOptions) (*GCReport, error)
	Dir() string
	Layout() Layout
	// Close releases resources and, for the packed layout, seals the
	// active segment. Always safe to call; a no-op for per-file.
	Close() error
}

var (
	_ DirStore = (*FS)(nil)
	_ DirStore = (*Packed)(nil)
	_ Store    = (*BackendStore)(nil)
	_ Backend  = (*BackendStore)(nil)
)

// DetectLayout reports which format dir holds: packed when a
// dir/segments directory exists, per-file otherwise (including for a
// directory that does not exist yet — new corpora default to the v1
// layout until `store pack` migrates them).
func DetectLayout(dir string) Layout {
	if info, err := os.Stat(filepath.Join(dir, SegmentsDirName)); err == nil && info.IsDir() {
		return LayoutPacked
	}
	return LayoutPerFile
}

// OpenDir opens a directory-backed store in whatever layout it already
// holds. Every CLI surface (-store, -resume, `store ls|verify|gc`, and
// `serve -store`) opens through it, which is what makes the layouts
// interchangeable: no caller branches on the format.
func OpenDir(dir string) (DirStore, error) {
	if DetectLayout(dir) == LayoutPacked {
		return OpenPacked(dir)
	}
	return Open(dir)
}

// IsRemoteSpec reports whether a -store argument names a remote
// backend (an http:// or https:// base URL) rather than a directory.
func IsRemoteSpec(spec string) bool {
	return strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://")
}

// OpenAuto opens any -store argument: a remote store for http(s) URLs,
// a directory store (either layout) otherwise.
func OpenAuto(spec string) (Store, error) {
	if IsRemoteSpec(spec) {
		return OpenRemote(spec, nil)
	}
	return OpenDir(spec)
}

// ParseKeyString recovers a Key from its canonical "hash-seed" spelling
// (Key.String, entry file basenames, /v1/store/{key} path elements).
func ParseKeyString(s string) (Key, bool) {
	i := strings.LastIndexByte(s, '-')
	if i <= 0 || i == len(s)-1 {
		return Key{}, false
	}
	seed, err := strconv.ParseInt(s[i+1:], 10, 64)
	if err != nil {
		return Key{}, false
	}
	return Key{Hash: s[:i], Seed: seed}, true
}

// CloseStore closes s if it is closeable (packed stores seal their
// active segment); a convenience for callers holding the Store
// interface. WriteOnly wrappers are unwrapped implicitly because the
// embedded Store's Close promotes.
func CloseStore(s Store) error {
	if c, ok := s.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}
