package store

// ReplicaStore is the read-through cache that makes the shared-corpus
// tier survivable: a local packed store layered over any remote
// Backend. Remote hits are verified once and persisted verbatim, local
// hits never touch the network, and writes land locally first with a
// best-effort async flush upstream. Because results are immutable by
// the determinism contract, the two tiers can never disagree about a
// key's bytes — there is no invalidation, only presence — which is why
// a cache this simple is safe.

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"ichannels/internal/scenario"
)

// defaultFlushQueue bounds the async upstream write queue. Overflow
// drops to local-only (counted); `store sync` reconciles later.
const defaultFlushQueue = 256

// flushPollInterval paces Flush's wait for the queue to drain.
const flushPollInterval = 10 * time.Millisecond

// ReplicaOptions configures a ReplicaStore. Zero values take defaults.
type ReplicaOptions struct {
	// QueueSize bounds the async flush queue.
	QueueSize int
}

// ReplicaStore layers a local directory store over a remote backend.
// It implements Store, ContextStore, Backend, and TierStatter.
type ReplicaStore struct {
	local  DirStore
	remote Backend

	ch chan flushItem
	wg sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	pending int64
	stats   ReplicaStats
}

type flushItem struct {
	key  Key
	data []byte
}

// OpenReplica opens (or creates) the local cache at cacheDir and
// layers it over remote. A new cache directory is created in the
// packed layout; an existing directory keeps whatever layout it holds.
func OpenReplica(cacheDir string, remote Backend, opts ReplicaOptions) (*ReplicaStore, error) {
	if remote == nil {
		return nil, fmt.Errorf("store: replica %s: nil remote backend", cacheDir)
	}
	var local DirStore
	var err error
	if _, serr := os.Stat(cacheDir); serr == nil {
		local, err = OpenDir(cacheDir)
	} else {
		local, err = OpenPacked(cacheDir)
	}
	if err != nil {
		return nil, err
	}
	size := opts.QueueSize
	if size <= 0 {
		size = defaultFlushQueue
	}
	r := &ReplicaStore{local: local, remote: remote, ch: make(chan flushItem, size)}
	r.wg.Add(1)
	go r.flushLoop()
	return r, nil
}

// flushLoop drains the async write queue: each item is pushed upstream
// best-effort. A failed push stays local only — the entry is already
// durable in the cache, and `store sync` reconciles the difference.
func (r *ReplicaStore) flushLoop() {
	defer r.wg.Done()
	for item := range r.ch {
		err := backendPut(context.Background(), r.remote, item.key, item.data)
		r.mu.Lock()
		r.pending--
		if err != nil {
			r.stats.FlushErrors++
		} else {
			r.stats.FlushOK++
		}
		r.mu.Unlock()
	}
}

// Local returns the local cache tier.
func (r *ReplicaStore) Local() DirStore { return r.local }

// Get implements Store.
func (r *ReplicaStore) Get(key Key) (*scenario.Result, bool, error) {
	return r.GetContext(context.Background(), key)
}

// GetContext implements ContextStore: local tier first (no network on
// a hit), then the remote; a verified remote hit is persisted locally
// so the next read is free.
func (r *ReplicaStore) GetContext(ctx context.Context, key Key) (*scenario.Result, bool, error) {
	if res, ok, err := r.local.Get(key); err == nil && ok {
		r.count(func(s *ReplicaStats) { s.LocalHits++ })
		return res, true, nil
	}
	// Local miss or locally damaged entry (the packed layout self-heals
	// damaged refs): consult the remote.
	data, ok, err := backendGet(ctx, r.remote, key)
	if err != nil {
		return nil, false, err
	}
	if !ok {
		r.count(func(s *ReplicaStats) { s.RemoteMisses++ })
		return nil, false, nil
	}
	res, err := decodeEnvelope(key, data)
	if err != nil {
		// Corrupt remote bytes are rejected and never cached.
		r.count(func(s *ReplicaStats) { s.CorruptRemote++ })
		return nil, false, err
	}
	// Verified once; stored verbatim.
	if perr := r.local.PutObject(key, data); perr == nil {
		r.count(func(s *ReplicaStats) { s.RemoteFills++ })
	}
	return res, true, nil
}

// Put implements Store.
func (r *ReplicaStore) Put(key Key, res *scenario.Result) error {
	return r.PutContext(context.Background(), key, res)
}

// PutContext implements ContextStore: local-first (the local write is
// the durable one), then an async best-effort push upstream.
func (r *ReplicaStore) PutContext(ctx context.Context, key Key, res *scenario.Result) error {
	data, err := EncodeEnvelope(key, res)
	if err != nil {
		return err
	}
	return r.putBytes(key, data)
}

// putBytes is the shared write path: persist locally, enqueue the
// upstream flush.
func (r *ReplicaStore) putBytes(key Key, data []byte) error {
	if err := r.local.PutObject(key, data); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.LocalPuts++
	if r.closed {
		r.stats.FlushDropped++
		return nil
	}
	select {
	case r.ch <- flushItem{key: key, data: data}:
		r.pending++
	default:
		r.stats.FlushDropped++
	}
	return nil
}

// GetObject implements Backend: the read-through in raw-bytes form, so
// a serve process can share a replica onward (proxy chains compose).
func (r *ReplicaStore) GetObject(key Key) ([]byte, bool, error) {
	if data, ok, err := r.local.GetObject(key); err == nil && ok {
		r.count(func(s *ReplicaStats) { s.LocalHits++ })
		return data, true, nil
	}
	data, ok, err := backendGet(context.Background(), r.remote, key)
	if err != nil || !ok {
		if err == nil {
			r.count(func(s *ReplicaStats) { s.RemoteMisses++ })
		}
		return nil, false, err
	}
	if _, derr := decodeEnvelope(key, data); derr != nil {
		r.count(func(s *ReplicaStats) { s.CorruptRemote++ })
		return nil, false, derr
	}
	if perr := r.local.PutObject(key, data); perr == nil {
		r.count(func(s *ReplicaStats) { s.RemoteFills++ })
	}
	return data, true, nil
}

// PutObject implements Backend: local-first plus the async flush.
func (r *ReplicaStore) PutObject(key Key, data []byte) error {
	return r.putBytes(key, data)
}

// ListObjects implements Backend: the union of both tiers, local
// entries winning (identical bytes anyway). A dead remote degrades to
// the local listing.
func (r *ReplicaStore) ListObjects() ([]Entry, error) {
	local, err := r.local.List()
	if err != nil {
		return nil, err
	}
	remote, err := backendList(context.Background(), r.remote)
	if err != nil {
		return local, nil
	}
	return mergeEntries(local, remote), nil
}

// sortEntries orders a listing the way both layouts do: by hash, then
// seed.
func sortEntries(out []Entry) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Hash != out[j].Key.Hash {
			return out[i].Key.Hash < out[j].Key.Hash
		}
		return out[i].Key.Seed < out[j].Key.Seed
	})
}

// mergeEntries unions two sorted entry listings by key.
func mergeEntries(a, b []Entry) []Entry {
	seen := make(map[Key]bool, len(a))
	out := make([]Entry, 0, len(a)+len(b))
	for _, e := range a {
		seen[e.Key] = true
		out = append(out, e)
	}
	for _, e := range b {
		if !seen[e.Key] {
			out = append(out, e)
		}
	}
	sortEntries(out)
	return out
}

// Flush waits for the async write queue to drain (or ctx to expire).
func (r *ReplicaStore) Flush(ctx context.Context) error {
	for {
		r.mu.Lock()
		n := r.pending
		r.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(flushPollInterval):
		}
	}
}

// SyncReport describes one reconcile pass against the remote.
type SyncReport struct {
	// LocalEntries / RemoteEntries are the tier sizes at sync time.
	LocalEntries  int `json:"local_entries"`
	RemoteEntries int `json:"remote_entries"`
	// Pushed counts local entries uploaded because the remote lacked
	// them; PushErrors counts uploads that failed (they stay local).
	Pushed     int `json:"pushed"`
	PushErrors int `json:"push_errors"`
}

// Sync drains the flush queue, then reconciles: every local entry the
// remote lacks is pushed upstream. It is the recovery path after a
// partition or a remote wipe — the local cache is a full replica of
// everything this process computed or fetched.
func (r *ReplicaStore) Sync(ctx context.Context) (*SyncReport, error) {
	if err := r.Flush(ctx); err != nil {
		return nil, err
	}
	return SyncDirToRemote(ctx, r.local, r.remote)
}

// SyncDirToRemote pushes every entry in local that remote lacks. The
// `store sync` CLI drives it against a plain cache directory, no
// ReplicaStore needed.
func SyncDirToRemote(ctx context.Context, local DirStore, remote Backend) (*SyncReport, error) {
	locals, err := local.List()
	if err != nil {
		return nil, err
	}
	remotes, err := backendList(ctx, remote)
	if err != nil {
		return nil, err
	}
	have := make(map[Key]bool, len(remotes))
	for _, e := range remotes {
		have[e.Key] = true
	}
	rep := &SyncReport{LocalEntries: len(locals), RemoteEntries: len(remotes)}
	for _, e := range locals {
		if have[e.Key] {
			continue
		}
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		data, ok, gerr := local.GetObject(e.Key)
		if gerr != nil || !ok {
			rep.PushErrors++
			continue
		}
		if perr := backendPut(ctx, remote, e.Key, data); perr != nil {
			rep.PushErrors++
			continue
		}
		rep.Pushed++
	}
	return rep, nil
}

// GCWith forwards retention to the local tier: a serve process fronting
// a remote with a replica cache bounds its own disk, never the
// upstream's.
func (r *ReplicaStore) GCWith(opts GCOptions) (*GCReport, error) {
	return r.local.GCWith(opts)
}

// TierStats implements TierStatter: the replica counters merged with
// the remote's retry/breaker counters when it exposes them.
func (r *ReplicaStore) TierStats() TierStats {
	r.mu.Lock()
	s := r.stats
	s.FlushPending = r.pending
	r.mu.Unlock()
	ts := TierStats{Replica: &s}
	if t, ok := r.remote.(TierStatter); ok {
		ts.Remote = t.TierStats().Remote
	}
	return ts
}

// Stats snapshots the replica counters.
func (r *ReplicaStore) Stats() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.FlushPending = r.pending
	return s
}

// Close drains the flush queue, stops the worker, and closes the local
// tier. Writes after Close stay local-only.
func (r *ReplicaStore) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	close(r.ch)
	r.wg.Wait()
	return r.local.Close()
}

func (r *ReplicaStore) count(f func(*ReplicaStats)) {
	r.mu.Lock()
	f(&r.stats)
	r.mu.Unlock()
}
