package store

// Retention under load: GCWith running concurrently with readers and
// writers on the packed layout. The contract is the serve retention
// loop's safety argument — a live server can run GC on a timer while
// it answers store traffic: survivors keep serving (modulo the one
// documented self-heal retry), evicted keys turn into clean misses,
// and the corpus stays verifiable afterwards. Run under -race in CI.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGCUnderLoadPacked(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	st, err := OpenPacked(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	key := func(i int) Key {
		return Key{Hash: fmt.Sprintf("%016x", i+1), Seed: int64(i)}
	}
	const seedEntries = 64
	for i := 0; i < seedEntries; i++ {
		if err := st.Put(key(i), testResult(int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	var (
		stop     atomic.Bool
		written  atomic.Int64 // highest key index written, exclusive
		hits     atomic.Int64
		misses   atomic.Int64
		failures atomic.Int64
		firstErr atomic.Value
	)
	written.Store(seedEntries)
	fail := func(err error) {
		failures.Add(1)
		firstErr.CompareAndSwap(nil, err)
	}

	var wg sync.WaitGroup
	// Writer: keeps appending fresh entries while GC churns segments.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := seedEntries; !stop.Load(); i++ {
			if err := st.Put(key(i), testResult(int64(i))); err != nil {
				fail(fmt.Errorf("put %d: %w", i, err))
				return
			}
			written.Store(int64(i + 1))
		}
	}()
	// Readers: every key ever written must either serve or be a clean
	// miss (evicted). An error is a contract violation — the packed
	// layout's ref-retry is supposed to absorb concurrent compaction.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; !stop.Load(); i += 3 {
				n := int(written.Load())
				k := key(i % n)
				res, ok, err := st.Get(k)
				switch {
				case err != nil:
					fail(fmt.Errorf("get %s: %w", k, err))
					return
				case ok && res == nil:
					fail(fmt.Errorf("get %s: ok with nil result", k))
					return
				case ok:
					hits.Add(1)
				default:
					misses.Add(1)
				}
			}
		}(g)
	}
	// Retention: a tight byte budget forces eviction and compaction on
	// every pass, exactly what a serve -gc-every timer does.
	deadline := time.Now().Add(2 * time.Second)
	var gcPasses int
	for time.Now().Before(deadline) && failures.Load() == 0 {
		if _, err := st.GCWith(GCOptions{MaxBytes: 16 << 10}); err != nil {
			fail(fmt.Errorf("gc pass %d: %w", gcPasses, err))
			break
		}
		gcPasses++
		time.Sleep(5 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	st.WaitMaintenance()

	if n := failures.Load(); n > 0 {
		t.Fatalf("%d contract violations under gc load (first: %v)", n, firstErr.Load())
	}
	if gcPasses < 2 {
		t.Fatalf("only %d gc passes completed; the test never overlapped gc with traffic", gcPasses)
	}
	if hits.Load() == 0 || misses.Load() == 0 {
		t.Logf("coverage note: %d hits, %d misses (both classes ideally exercised)", hits.Load(), misses.Load())
	}

	// The surviving corpus is intact and still bounded.
	rep, err := st.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 0 {
		t.Fatalf("corpus corrupt after concurrent gc: %+v", rep.Problems)
	}
}
