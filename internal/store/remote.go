package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// StorePathPrefix is the route prefix a serve process sharing its
// corpus mounts: GET/PUT {prefix}/{key} for one envelope, GET {prefix}
// for the entry listing. The payloads are exactly the EncodeEnvelope
// bytes every other surface exchanges, so the wire adds framing, never
// a second encoding.
const StorePathPrefix = "/v1/store"

// defaultRemoteTimeout bounds one object round-trip against a remote
// store; a hung coordinator-side fetch must degrade to a local
// recompute, not stall the sweep.
const defaultRemoteTimeout = 30 * time.Second

// HTTPBackend is the remote half of the backend seam: an object client
// for the /v1/store routes of a serve process (or anything speaking the
// same three-verb protocol). It moves raw bytes only — Remote wraps it
// in BackendStore so every fetched envelope is verified against its key
// before anyone trusts it, the same defense the distributed tier
// applies to worker responses.
type HTTPBackend struct {
	base   string
	client *http.Client
}

// NewHTTPBackend validates baseURL (http or https, with a host) and
// returns a backend talking to its /v1/store routes. A nil client gets
// a default with a per-request timeout.
func NewHTTPBackend(baseURL string, client *http.Client) (*HTTPBackend, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("store: remote %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("store: remote %q: need an http(s) base URL", baseURL)
	}
	if client == nil {
		client = &http.Client{Timeout: defaultRemoteTimeout}
	}
	return &HTTPBackend{base: strings.TrimRight(baseURL, "/"), client: client}, nil
}

// objectURL is the entry route for key.
func (b *HTTPBackend) objectURL(key Key) string {
	return b.base + StorePathPrefix + "/" + url.PathEscape(key.String())
}

// GetObject implements Backend: 404 is a clean miss, 200 returns the
// envelope bytes, anything else is an error.
func (b *HTTPBackend) GetObject(key Key) ([]byte, bool, error) {
	resp, err := b.client.Get(b.objectURL(key))
	if err != nil {
		return nil, false, fmt.Errorf("store: remote get %s: %w", key, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxRecordBytes+1))
		if err != nil {
			return nil, false, fmt.Errorf("store: remote get %s: %w", key, err)
		}
		if int64(len(data)) > maxRecordBytes {
			return nil, false, fmt.Errorf("store: remote get %s: oversized envelope", key)
		}
		return data, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("store: remote get %s: %s", key, resp.Status)
	}
}

// PutObject implements Backend: PUT the envelope bytes; any 2xx is
// success (the server deduplicates identical writes itself).
func (b *HTTPBackend) PutObject(key Key, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, b.objectURL(key), bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("store: remote put %s: %w", key, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return fmt.Errorf("store: remote put %s: %w", key, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("store: remote put %s: %s", key, resp.Status)
	}
	return nil
}

// ListObjects implements Backend: the server's sorted entry listing.
func (b *HTTPBackend) ListObjects() ([]Entry, error) {
	resp, err := b.client.Get(b.base + StorePathPrefix)
	if err != nil {
		return nil, fmt.Errorf("store: remote list: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("store: remote list: %s", resp.Status)
	}
	var out []Entry
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("store: remote list: %w", err)
	}
	if out == nil {
		out = []Entry{}
	}
	return out, nil
}

// Remote is an HTTP-backed Store: HTTPBackend for the bytes,
// BackendStore for the verification. `-store http://host:port` opens
// one, which is how a fleet shares a corpus without a shared
// filesystem.
type Remote struct {
	*BackendStore
	backend *HTTPBackend
}

// OpenRemote opens a remote store on a serve process sharing its
// corpus at baseURL.
func OpenRemote(baseURL string, client *http.Client) (*Remote, error) {
	b, err := NewHTTPBackend(baseURL, client)
	if err != nil {
		return nil, err
	}
	return &Remote{BackendStore: NewBackendStore(b), backend: b}, nil
}

// Base returns the remote's base URL.
func (r *Remote) Base() string { return r.backend.base }

// List enumerates the remote corpus.
func (r *Remote) List() ([]Entry, error) { return r.backend.ListObjects() }
