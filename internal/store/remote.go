package store

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// StorePathPrefix is the route prefix a serve process sharing its
// corpus mounts: GET/PUT {prefix}/{key} for one envelope, GET {prefix}
// for the entry listing. The payloads are exactly the EncodeEnvelope
// bytes every other surface exchanges, so the wire adds framing, never
// a second encoding.
const StorePathPrefix = "/v1/store"

// defaultRemoteTimeout bounds one object round-trip against a remote
// store; a hung coordinator-side fetch must degrade to a local
// recompute, not stall the sweep. The retry layer applies tighter
// per-attempt deadlines on top; this is the outer safety net.
const defaultRemoteTimeout = 30 * time.Second

// HTTPBackend is the remote half of the backend seam: an object client
// for the /v1/store routes of a serve process (or anything speaking the
// same three-verb protocol). It moves raw bytes only — Remote wraps it
// in BackendStore so every fetched envelope is verified against its key
// before anyone trusts it, the same defense the distributed tier
// applies to worker responses.
//
// Every verb honors the caller's context: a cancelled sweep aborts
// in-flight store I/O immediately instead of waiting out the flat
// client timeout.
type HTTPBackend struct {
	base   string
	client *http.Client
}

// NewHTTPBackend validates baseURL (http or https, with a host) and
// returns a backend talking to its /v1/store routes. A nil client gets
// a default with a per-request timeout.
func NewHTTPBackend(baseURL string, client *http.Client) (*HTTPBackend, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("store: remote %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("store: remote %q: need an http(s) base URL", baseURL)
	}
	if client == nil {
		client = &http.Client{Timeout: defaultRemoteTimeout}
	}
	return &HTTPBackend{base: strings.TrimRight(baseURL, "/"), client: client}, nil
}

// Base returns the backend's base URL.
func (b *HTTPBackend) Base() string { return b.base }

// objectURL is the entry route for key.
func (b *HTTPBackend) objectURL(key Key) string {
	return b.base + StorePathPrefix + "/" + url.PathEscape(key.String())
}

// statusErr builds a typed error for a non-success response, so the
// retry layer can tell 4xx (permanent) from 5xx (transient).
func statusErr(code int, format string, args ...any) error {
	return &remoteStatusError{msg: fmt.Sprintf(format, args...), code: code}
}

// GetObject implements Backend: 404 is a clean miss, 200 returns the
// envelope bytes, anything else is an error.
func (b *HTTPBackend) GetObject(key Key) ([]byte, bool, error) {
	return b.GetObjectContext(context.Background(), key)
}

// GetObjectContext is GetObject honoring ctx for the whole round-trip.
func (b *HTTPBackend) GetObjectContext(ctx context.Context, key Key) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.objectURL(key), nil)
	if err != nil {
		return nil, false, fmt.Errorf("store: remote get %s: %w", key, err)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("store: remote get %s: %w", key, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxRecordBytes+1))
		if err != nil {
			return nil, false, fmt.Errorf("store: remote get %s: %w", key, err)
		}
		if int64(len(data)) > maxRecordBytes {
			return nil, false, fmt.Errorf("store: remote get %s: oversized envelope", key)
		}
		return data, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, statusErr(resp.StatusCode, "store: remote get %s: %s", key, resp.Status)
	}
}

// PutObject implements Backend: PUT the envelope bytes; any 2xx is
// success (the server deduplicates identical writes itself).
func (b *HTTPBackend) PutObject(key Key, data []byte) error {
	return b.PutObjectContext(context.Background(), key, data)
}

// PutObjectContext is PutObject honoring ctx for the whole round-trip.
func (b *HTTPBackend) PutObjectContext(ctx context.Context, key Key, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, b.objectURL(key), bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("store: remote put %s: %w", key, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return fmt.Errorf("store: remote put %s: %w", key, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return statusErr(resp.StatusCode, "store: remote put %s: %s", key, resp.Status)
	}
	return nil
}

// ListObjects implements Backend: the server's sorted entry listing.
func (b *HTTPBackend) ListObjects() ([]Entry, error) {
	return b.ListObjectsContext(context.Background())
}

// ListObjectsContext is ListObjects honoring ctx.
func (b *HTTPBackend) ListObjectsContext(ctx context.Context) ([]Entry, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+StorePathPrefix, nil)
	if err != nil {
		return nil, fmt.Errorf("store: remote list: %w", err)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("store: remote list: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, statusErr(resp.StatusCode, "store: remote list: %s", resp.Status)
	}
	var out []Entry
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxListBytes)).Decode(&out); err != nil {
		return nil, fmt.Errorf("store: remote list: %w", err)
	}
	if out == nil {
		out = []Entry{}
	}
	return out, nil
}

// Remote is an HTTP-backed Store: HTTPBackend for the bytes, a
// RetryBackend for resilience, BackendStore for the verification.
// `-store http://host:port` opens one, which is how a fleet shares a
// corpus without a shared filesystem.
type Remote struct {
	*BackendStore
	http  *HTTPBackend
	retry *RetryBackend
}

// OpenRemote opens a remote store on a serve process sharing its
// corpus at baseURL, with default retry/breaker policy.
func OpenRemote(baseURL string, client *http.Client) (*Remote, error) {
	return OpenRemoteWith(baseURL, client, RetryOptions{})
}

// OpenRemoteWith opens a remote store with an explicit retry policy.
func OpenRemoteWith(baseURL string, client *http.Client, opts RetryOptions) (*Remote, error) {
	b, err := NewHTTPBackend(baseURL, client)
	if err != nil {
		return nil, err
	}
	rb := NewRetryBackend(b, opts)
	return &Remote{BackendStore: NewBackendStore(rb), http: b, retry: rb}, nil
}

// Base returns the remote's base URL.
func (r *Remote) Base() string { return r.http.base }

// Retry returns the retrying backend, for counter inspection.
func (r *Remote) Retry() *RetryBackend { return r.retry }

// TierStats implements TierStatter: the retry layer's counters.
func (r *Remote) TierStats() TierStats {
	return TierStats{Remote: r.retry.statsPtr()}
}

// List enumerates the remote corpus.
func (r *Remote) List() ([]Entry, error) { return r.retry.ListObjects() }

// maxListBytes bounds a remote listing response; a byzantine server
// must not balloon coordinator memory through the index route.
const maxListBytes = 256 << 20
