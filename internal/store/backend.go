package store

import (
	"ichannels/internal/scenario"
)

// Backend is the pluggable object seam under the Store contract: raw
// envelope bytes addressed by content key. Both on-disk layouts expose
// it (FS stores one object per file, Packed one record per object), and
// the HTTP remote backend serves it over /v1/store/{key} — so N workers
// can share one corpus without a shared filesystem.
//
// A Backend moves bytes; it does not vouch for them. BackendStore
// layers the envelope verification every read path in this repo goes
// through, so a corrupt or byzantine backend is detected exactly the
// way a corrupt disk entry is.
type Backend interface {
	// GetObject returns the stored envelope bytes for key, ok=false on
	// a clean miss.
	GetObject(key Key) ([]byte, bool, error)
	// PutObject stores envelope bytes under key. Callers must only
	// store canonical EncodeEnvelope output; implementations may assume
	// (or verify) that.
	PutObject(key Key, data []byte) error
	// ListObjects enumerates the stored entries sorted by key.
	ListObjects() ([]Entry, error)
}

// BackendStore adapts a Backend to the Store interface, adding the
// envelope round-trip: Get decodes and verifies the fetched bytes
// against the key, Put encodes the canonical envelope. It is how remote
// backends join the engine/sweep/serve read-through paths.
type BackendStore struct {
	b Backend
}

// NewBackendStore wraps a Backend as a verifying Store.
func NewBackendStore(b Backend) *BackendStore {
	return &BackendStore{b: b}
}

// Backend returns the wrapped backend.
func (s *BackendStore) Backend() Backend { return s.b }

// Get implements Store: fetch and verify.
func (s *BackendStore) Get(key Key) (*scenario.Result, bool, error) {
	data, ok, err := s.b.GetObject(key)
	if err != nil || !ok {
		return nil, false, err
	}
	res, err := decodeEnvelope(key, data)
	if err != nil {
		return nil, false, err
	}
	return res, true, nil
}

// Put implements Store: encode canonically and store.
func (s *BackendStore) Put(key Key, res *scenario.Result) error {
	data, err := EncodeEnvelope(key, res)
	if err != nil {
		return err
	}
	return s.b.PutObject(key, data)
}

// List enumerates the backend's entries.
func (s *BackendStore) List() ([]Entry, error) { return s.b.ListObjects() }

// GetObject, PutObject and ListObjects forward the raw verbs, so a
// BackendStore is itself a Backend: a server whose -store is a remote
// corpus can still share it onward (proxy chains compose).
func (s *BackendStore) GetObject(key Key) ([]byte, bool, error) { return s.b.GetObject(key) }

// PutObject forwards to the wrapped backend.
func (s *BackendStore) PutObject(key Key, data []byte) error { return s.b.PutObject(key, data) }

// ListObjects forwards to the wrapped backend.
func (s *BackendStore) ListObjects() ([]Entry, error) { return s.b.ListObjects() }
