package store

import (
	"context"

	"ichannels/internal/scenario"
)

// Backend is the pluggable object seam under the Store contract: raw
// envelope bytes addressed by content key. Both on-disk layouts expose
// it (FS stores one object per file, Packed one record per object), and
// the HTTP remote backend serves it over /v1/store/{key} — so N workers
// can share one corpus without a shared filesystem.
//
// A Backend moves bytes; it does not vouch for them. BackendStore
// layers the envelope verification every read path in this repo goes
// through, so a corrupt or byzantine backend is detected exactly the
// way a corrupt disk entry is.
type Backend interface {
	// GetObject returns the stored envelope bytes for key, ok=false on
	// a clean miss.
	GetObject(key Key) ([]byte, bool, error)
	// PutObject stores envelope bytes under key. Callers must only
	// store canonical EncodeEnvelope output; implementations may assume
	// (or verify) that.
	PutObject(key Key, data []byte) error
	// ListObjects enumerates the stored entries sorted by key.
	ListObjects() ([]Entry, error)
}

// BackendContext is the context-aware variant of Backend. Remote
// backends implement it so a cancelled sweep aborts in-flight store
// I/O promptly; local backends need not bother (disk ops don't hang).
// The backendGet/backendPut/backendList helpers upgrade to it when
// available, so callers pass a context unconditionally.
type BackendContext interface {
	GetObjectContext(ctx context.Context, key Key) ([]byte, bool, error)
	PutObjectContext(ctx context.Context, key Key, data []byte) error
	ListObjectsContext(ctx context.Context) ([]Entry, error)
}

// backendGet fetches through the context-aware path when b supports it.
func backendGet(ctx context.Context, b Backend, key Key) ([]byte, bool, error) {
	if cb, ok := b.(BackendContext); ok && ctx != nil {
		return cb.GetObjectContext(ctx, key)
	}
	return b.GetObject(key)
}

// backendPut stores through the context-aware path when b supports it.
func backendPut(ctx context.Context, b Backend, key Key, data []byte) error {
	if cb, ok := b.(BackendContext); ok && ctx != nil {
		return cb.PutObjectContext(ctx, key, data)
	}
	return b.PutObject(key, data)
}

// backendList lists through the context-aware path when b supports it.
func backendList(ctx context.Context, b Backend) ([]Entry, error) {
	if cb, ok := b.(BackendContext); ok && ctx != nil {
		return cb.ListObjectsContext(ctx)
	}
	return b.ListObjects()
}

// ContextStore is the context-aware variant of Store, implemented by
// stores whose reads and writes can be cancelled mid-flight. The
// package-level GetContext/PutContext helpers upgrade to it, so the
// engine threads its stream context through without every Store
// implementation changing.
type ContextStore interface {
	GetContext(ctx context.Context, key Key) (*scenario.Result, bool, error)
	PutContext(ctx context.Context, key Key, res *scenario.Result) error
}

// GetContext reads key from s, honoring ctx when s supports it.
func GetContext(ctx context.Context, s Store, key Key) (*scenario.Result, bool, error) {
	if cs, ok := s.(ContextStore); ok && ctx != nil {
		return cs.GetContext(ctx, key)
	}
	return s.Get(key)
}

// PutContext writes key to s, honoring ctx when s supports it.
func PutContext(ctx context.Context, s Store, key Key, res *scenario.Result) error {
	if cs, ok := s.(ContextStore); ok && ctx != nil {
		return cs.PutContext(ctx, key, res)
	}
	return s.Put(key, res)
}

// BackendStore adapts a Backend to the Store interface, adding the
// envelope round-trip: Get decodes and verifies the fetched bytes
// against the key, Put encodes the canonical envelope. It is how remote
// backends join the engine/sweep/serve read-through paths.
type BackendStore struct {
	b Backend
}

// NewBackendStore wraps a Backend as a verifying Store.
func NewBackendStore(b Backend) *BackendStore {
	return &BackendStore{b: b}
}

// Backend returns the wrapped backend.
func (s *BackendStore) Backend() Backend { return s.b }

// Get implements Store: fetch and verify.
func (s *BackendStore) Get(key Key) (*scenario.Result, bool, error) {
	return s.GetContext(context.Background(), key)
}

// GetContext implements ContextStore: fetch honoring ctx, then verify.
func (s *BackendStore) GetContext(ctx context.Context, key Key) (*scenario.Result, bool, error) {
	data, ok, err := backendGet(ctx, s.b, key)
	if err != nil || !ok {
		return nil, false, err
	}
	res, err := decodeEnvelope(key, data)
	if err != nil {
		return nil, false, err
	}
	return res, true, nil
}

// Put implements Store: encode canonically and store.
func (s *BackendStore) Put(key Key, res *scenario.Result) error {
	return s.PutContext(context.Background(), key, res)
}

// PutContext implements ContextStore: encode canonically, store
// honoring ctx.
func (s *BackendStore) PutContext(ctx context.Context, key Key, res *scenario.Result) error {
	data, err := EncodeEnvelope(key, res)
	if err != nil {
		return err
	}
	return backendPut(ctx, s.b, key, data)
}

// List enumerates the backend's entries.
func (s *BackendStore) List() ([]Entry, error) { return s.b.ListObjects() }

// GetObject, PutObject and ListObjects forward the raw verbs, so a
// BackendStore is itself a Backend: a server whose -store is a remote
// corpus can still share it onward (proxy chains compose).
func (s *BackendStore) GetObject(key Key) ([]byte, bool, error) { return s.b.GetObject(key) }

// PutObject forwards to the wrapped backend.
func (s *BackendStore) PutObject(key Key, data []byte) error { return s.b.PutObject(key, data) }

// ListObjects forwards to the wrapped backend.
func (s *BackendStore) ListObjects() ([]Entry, error) { return s.b.ListObjects() }
