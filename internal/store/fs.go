package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"ichannels/internal/scenario"
)

// envelope is the on-disk form of one entry. Result is kept as the raw
// canonical JSON encoding so the checksum covers exactly the bytes a
// consumer re-marshals — the byte-identity contract extends through a
// store round-trip.
type envelope struct {
	Version  int             `json:"version"`
	Hash     string          `json:"hash"`
	Seed     int64           `json:"seed"`
	Checksum string          `json:"checksum"`
	Result   json.RawMessage `json:"result"`
}

// tmpPrefix marks in-progress writes; GC removes leftovers from killed
// processes.
const tmpPrefix = ".tmp-"

// FS is the filesystem Store: one file per (hash, seed) under
// dir/<hash[:2]>/<hash>-<seed>.json, written atomically.
type FS struct {
	dir string
}

// Open creates (if needed) and opens a filesystem store rooted at dir.
func Open(dir string) (*FS, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &FS{dir: dir}, nil
}

// Dir returns the store's root directory.
func (f *FS) Dir() string { return f.dir }

// path returns the entry file for key. The two-hex-character shard
// directory keeps any one directory small on big corpora.
func (f *FS) path(key Key) string {
	shard := "xx"
	if len(key.Hash) >= 2 {
		shard = key.Hash[:2]
	}
	return filepath.Join(f.dir, shard, key.String()+".json")
}

// checksumOf hashes the canonical result bytes the way envelopes record
// them.
func checksumOf(raw []byte) string {
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Get implements Store.
func (f *FS) Get(key Key) (*scenario.Result, bool, error) {
	data, err := os.ReadFile(f.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: read %s: %w", key, err)
	}
	res, err := decodeEnvelope(key, data)
	if err != nil {
		return nil, false, err
	}
	return res, true, nil
}

// EncodeEnvelope wraps a result in the versioned, checksummed envelope
// the store persists — and the byte format the distributed tier ships
// over the wire: a worker answers a cell dispatch with exactly these
// bytes, and the coordinator accepts them only through DecodeEnvelope,
// so a byzantine or stale worker is detected by the same integrity
// check a corrupt disk entry is.
func EncodeEnvelope(key Key, res *scenario.Result) ([]byte, error) {
	if res == nil {
		return nil, fmt.Errorf("store: encode %s: nil result", key)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("store: encode %s: %w", key, err)
	}
	env := envelope{
		Version: EnvelopeVersion, Hash: key.Hash, Seed: key.Seed,
		Checksum: checksumOf(raw), Result: raw,
	}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("store: encode %s: %w", key, err)
	}
	return data, nil
}

// DecodeEnvelope validates one envelope's bytes against the key the
// caller expects — version, identity, and result checksum — and returns
// the result. It is the read half of EncodeEnvelope, shared by the
// filesystem store (Get/Verify/GC) and the distributed coordinator
// (worker-response verification).
func DecodeEnvelope(key Key, data []byte) (*scenario.Result, error) {
	return decodeEnvelope(key, data)
}

// decodeEnvelope validates one entry's bytes against its key and
// returns the result. Every failure is tagged with ErrCorrupt: the
// bytes themselves are wrong, so no amount of retrying the same source
// helps — callers classify these as permanent.
func decodeEnvelope(key Key, data []byte) (*scenario.Result, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, markCorrupt(fmt.Errorf("store: entry %s: malformed envelope: %w", key, err))
	}
	if env.Version != EnvelopeVersion {
		return nil, markCorrupt(fmt.Errorf("store: entry %s: envelope version %d, want %d", key, env.Version, EnvelopeVersion))
	}
	if env.Hash != key.Hash || env.Seed != key.Seed {
		return nil, markCorrupt(fmt.Errorf("store: entry %s: envelope identifies %s-%d (renamed file?)", key, env.Hash, env.Seed))
	}
	if got := checksumOf(env.Result); got != env.Checksum {
		return nil, markCorrupt(fmt.Errorf("store: entry %s: checksum mismatch (corrupt result payload)", key))
	}
	var res scenario.Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		return nil, markCorrupt(fmt.Errorf("store: entry %s: malformed result: %w", key, err))
	}
	return &res, nil
}

// Put implements Store: marshal the canonical envelope, write it to a
// temporary file in the destination directory, and rename it into
// place. Rename is atomic on POSIX, so readers only ever see absent or
// complete entries, and concurrent writers of one key (which, by
// determinism, write identical bytes) cannot interleave.
func (f *FS) Put(key Key, res *scenario.Result) error {
	data, err := EncodeEnvelope(key, res)
	if err != nil {
		return err
	}
	return f.PutObject(key, data)
}

// GetObject implements Backend: the entry's raw envelope bytes, no
// verification (BackendStore layers that).
func (f *FS) GetObject(key Key) ([]byte, bool, error) {
	data, err := os.ReadFile(f.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: read %s: %w", key, err)
	}
	return data, true, nil
}

// ListObjects implements Backend.
func (f *FS) ListObjects() ([]Entry, error) { return f.List() }

// Layout identifies the on-disk format for DirStore consumers.
func (f *FS) Layout() Layout { return LayoutPerFile }

// Close implements DirStore; the per-file layout holds no open state.
func (f *FS) Close() error { return nil }

// PutObject implements Backend: write pre-encoded envelope bytes
// atomically under key's entry path.
func (f *FS) PutObject(key Key, data []byte) error {
	dest := f.path(key)
	dir := filepath.Dir(dest)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err == nil {
		// CreateTemp made the file 0600; the corpus is explicitly
		// shared across processes and users (CLI writes, a server
		// running as someone else reads), so entries get normal
		// data-file permissions.
		err = os.Chmod(tmp.Name(), 0o644)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), dest); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	return nil
}

// Entry describes one stored result for listings.
type Entry struct {
	Key  Key   `json:"key"`
	Size int64 `json:"size"`
}

// parseEntryName recovers the key from an entry file name
// (<hash>-<seed>.json). ok is false for anything else (tmp files,
// foreign files).
func parseEntryName(name string) (Key, bool) {
	base, found := strings.CutSuffix(name, ".json")
	if !found || strings.HasPrefix(name, tmpPrefix) {
		return Key{}, false
	}
	i := strings.LastIndexByte(base, '-')
	if i <= 0 || i == len(base)-1 {
		return Key{}, false
	}
	seed, err := strconv.ParseInt(base[i+1:], 10, 64)
	if err != nil {
		return Key{}, false
	}
	return Key{Hash: base[:i], Seed: seed}, true
}

// walk visits every regular file under the store root in deterministic
// (lexical) order.
func (f *FS) walk(fn func(path string, name string, size int64, mtime time.Time) error) error {
	return filepath.WalkDir(f.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		return fn(path, d.Name(), info.Size(), info.ModTime())
	})
}

// List returns every entry in the store, sorted by key (hash, then
// seed). The slice is non-nil even when empty, so `store ls -json`
// emits [] rather than null.
func (f *FS) List() ([]Entry, error) {
	out := []Entry{}
	err := f.walk(func(path, name string, size int64, _ time.Time) error {
		if key, ok := parseEntryName(name); ok {
			out = append(out, Entry{Key: key, Size: size})
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Hash != out[j].Key.Hash {
			return out[i].Key.Hash < out[j].Key.Hash
		}
		return out[i].Key.Seed < out[j].Key.Seed
	})
	return out, nil
}

// Problem is one entry (or stray file) Verify found unreadable.
type Problem struct {
	Path string `json:"path"`
	Err  string `json:"error"`
}

// VerifyReport summarizes an integrity pass over the whole store.
type VerifyReport struct {
	Entries  int       `json:"entries"`
	Bytes    int64     `json:"bytes"`
	Problems []Problem `json:"problems,omitempty"`
	// Stray counts files that are not entries (leftover temporaries,
	// foreign files); they are reported by GC, not treated as damage.
	Stray int `json:"stray"`
}

// Verify reads and checks every entry: envelope version, key match,
// checksum, and result decodability.
func (f *FS) Verify() (*VerifyReport, error) {
	rep := &VerifyReport{}
	err := f.walk(func(path, name string, size int64, _ time.Time) error {
		key, ok := parseEntryName(name)
		if !ok {
			rep.Stray++
			return nil
		}
		rep.Entries++
		rep.Bytes += size
		data, err := os.ReadFile(path)
		if err == nil {
			_, err = decodeEnvelope(key, data)
		}
		if err != nil {
			rep.Problems = append(rep.Problems, Problem{Path: path, Err: err.Error()})
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: verify: %w", err)
	}
	return rep, nil
}

// GCOptions bounds what GCWith retains beyond the always-removed
// corruption and stray temporaries — the retention knobs CI scratch
// corpora need (results are deterministic, so an evicted entry costs a
// recompute, never data).
type GCOptions struct {
	// MaxAge, when positive, removes intact entries whose file
	// modification time is older than now − MaxAge.
	MaxAge time.Duration
	// MaxBytes, when positive, evicts intact entries oldest-first
	// until the surviving corpus is at most this many bytes.
	MaxBytes int64
}

// GCReport summarizes a garbage-collection pass.
type GCReport struct {
	// RemovedCorrupt counts entries deleted because they failed the
	// integrity check; RemovedStray counts leftover temporary files
	// from killed writers.
	RemovedCorrupt int   `json:"removed_corrupt"`
	RemovedStray   int   `json:"removed_stray"`
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
	// RemovedExpired counts intact entries past GCOptions.MaxAge;
	// RemovedOverBudget intact entries evicted oldest-first to fit
	// GCOptions.MaxBytes.
	RemovedExpired    int `json:"removed_expired,omitempty"`
	RemovedOverBudget int `json:"removed_over_budget,omitempty"`
	// Skipped counts files gc recognized as not belonging to the store
	// (neither entries nor temporaries) and deliberately left alone —
	// reported so an operator pointing gc at the wrong directory sees
	// the mismatch instead of silence.
	Skipped int `json:"skipped,omitempty"`
	// Kept counts the intact entries that survive.
	Kept int `json:"kept"`
}

// gcTmpAge is how old a temporary file must be before GC treats it as
// abandoned. A live writer holds its temp file for milliseconds; an
// hour-old one belongs to a killed process. The margin keeps
// `store gc` safe to run while sweeps write into the same directory.
const gcTmpAge = time.Hour

// gcCandidate is one entry the GC walk flagged as corrupt, re-checked
// before removal.
type gcCandidate struct {
	path string
	key  Key
	size int64
}

// gcIntact is one healthy entry, carried through the retention passes.
type gcIntact struct {
	path  string
	size  int64
	mtime time.Time
}

// GC removes what cannot ever be served: corrupt entries (their
// deterministic results are recomputable on demand) and abandoned
// temporary files (older than gcTmpAge — a younger one may belong to a
// live writer). Intact entries are never evicted — use GCWith for
// age/size-bounded retention.
func (f *FS) GC() (*GCReport, error) {
	return f.GCWith(GCOptions{})
}

// GCWith is GC plus retention: after the corruption and stray-file
// sweep, intact entries older than MaxAge are removed, then the
// oldest survivors are evicted until the corpus fits MaxBytes. Zero
// options make it plain GC. Eviction order is oldest modification
// time first (ties by path), so a CI scratch corpus keeps its most
// recently materialized results.
func (f *FS) GCWith(opts GCOptions) (*GCReport, error) {
	rep := &GCReport{}
	var removeTmp []string
	var corrupt []gcCandidate
	var intact []gcIntact
	var reclaim int64
	cutoff := time.Now().Add(-gcTmpAge)
	err := f.walk(func(path, name string, size int64, mtime time.Time) error {
		key, ok := parseEntryName(name)
		if !ok {
			if strings.HasPrefix(name, tmpPrefix) {
				if info, err := os.Stat(path); err != nil || info.ModTime().After(cutoff) {
					return nil // live (or already gone): leave it
				}
				removeTmp = append(removeTmp, path)
				reclaim += size
				rep.RemovedStray++
			} else {
				// Not an entry, not a temporary: a foreign file. Report
				// it, never touch it.
				rep.Skipped++
			}
			return nil
		}
		data, err := os.ReadFile(path)
		if err == nil {
			_, err = decodeEnvelope(key, data)
		}
		if err != nil {
			corrupt = append(corrupt, gcCandidate{path: path, key: key, size: size})
			return nil
		}
		intact = append(intact, gcIntact{path: path, size: size, mtime: mtime})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: gc: %w", err)
	}
	for _, path := range removeTmp {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("store: gc: %w", err)
		}
	}
	for _, c := range corrupt {
		// Re-validate immediately before removal: a concurrent writer
		// may have atomically replaced the corrupt entry with a fresh
		// valid one since the walk, and deleting that would discard
		// just-persisted work.
		data, err := os.ReadFile(c.path)
		if err == nil {
			if _, err := decodeEnvelope(c.key, data); err == nil {
				info, statErr := os.Stat(c.path)
				if statErr != nil {
					continue
				}
				intact = append(intact, gcIntact{path: c.path, size: info.Size(), mtime: info.ModTime()})
				continue
			}
		} else if os.IsNotExist(err) {
			continue
		}
		if err := os.Remove(c.path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("store: gc: %w", err)
		}
		rep.RemovedCorrupt++
		reclaim += c.size
	}

	// Retention pass 1: age bound.
	if opts.MaxAge > 0 {
		ageCutoff := time.Now().Add(-opts.MaxAge)
		survivors := intact[:0]
		for _, e := range intact {
			if e.mtime.Before(ageCutoff) {
				if err := os.Remove(e.path); err != nil && !os.IsNotExist(err) {
					return nil, fmt.Errorf("store: gc: %w", err)
				}
				rep.RemovedExpired++
				reclaim += e.size
				continue
			}
			survivors = append(survivors, e)
		}
		intact = survivors
	}

	// Retention pass 2: size budget, oldest out first.
	if opts.MaxBytes > 0 {
		var total int64
		for _, e := range intact {
			total += e.size
		}
		if total > opts.MaxBytes {
			sort.Slice(intact, func(i, j int) bool {
				if !intact[i].mtime.Equal(intact[j].mtime) {
					return intact[i].mtime.Before(intact[j].mtime)
				}
				return intact[i].path < intact[j].path
			})
			for len(intact) > 0 && total > opts.MaxBytes {
				e := intact[0]
				intact = intact[1:]
				if err := os.Remove(e.path); err != nil && !os.IsNotExist(err) {
					return nil, fmt.Errorf("store: gc: %w", err)
				}
				rep.RemovedOverBudget++
				reclaim += e.size
				total -= e.size
			}
		}
	}

	rep.Kept = len(intact)
	rep.ReclaimedBytes = reclaim
	return rep, nil
}
