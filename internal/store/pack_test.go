package store

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPackMigratesCorpus: every per-file entry lands in segments with
// identical payload bytes, the per-file originals disappear, and the
// directory now detects as packed.
func TestPackMigratesCorpus(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var keys []Key
	for i := 1; i <= 6; i++ {
		key := Key{Hash: "0123456789abcdef", Seed: int64(i)}
		if err := fs.Put(key, testResult(key.Seed)); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	// Snapshot the canonical bytes before migrating.
	want := map[Key][]byte{}
	for _, key := range keys {
		data, _, err := fs.GetObject(key)
		if err != nil {
			t.Fatal(err)
		}
		want[key] = data
	}

	rep, err := Pack(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packed != 6 || rep.Skipped != 0 || rep.AlreadyPacked != 0 {
		t.Fatalf("pack report %+v: want 6 packed", rep)
	}
	if rep.Segments < 1 {
		t.Fatalf("pack report %+v: no segments", rep)
	}
	if DetectLayout(dir) != LayoutPacked {
		t.Fatal("packed directory not detected as packed")
	}
	// Per-file originals are gone (shard dirs removed too).
	for _, key := range keys {
		if _, err := os.Stat(fs.path(key)); !os.IsNotExist(err) {
			t.Fatalf("per-file entry %s survived the migration (err=%v)", key, err)
		}
	}
	// The packed corpus serves byte-identical envelopes.
	p, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for _, key := range keys {
		data, ok, err := p.GetObject(key)
		if !ok || err != nil {
			t.Fatalf("migrated entry %s: ok=%v err=%v", key, ok, err)
		}
		if string(data) != string(want[key]) {
			t.Fatalf("entry %s bytes changed across migration", key)
		}
	}
}

// TestPackIsIdempotent: re-running pack on an already-packed corpus
// (plus one freshly recreated per-file duplicate) finishes the job
// without duplicating records.
func TestPackIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Hash: "0123456789abcdef", Seed: 1}
	if err := fs.Put(key, testResult(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Pack(dir); err != nil {
		t.Fatal(err)
	}
	// A pure re-run is a no-op.
	rep, err := Pack(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packed != 0 || rep.AlreadyPacked != 0 {
		t.Fatalf("re-pack report %+v: want a no-op", rep)
	}
	// Recreate the per-file duplicate (the crash-mid-pack shape: bytes
	// already in a segment, file not yet removed) and re-run.
	if err := fs.Put(key, testResult(1)); err != nil {
		t.Fatal(err)
	}
	rep, err = Pack(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AlreadyPacked != 1 || rep.Packed != 0 {
		t.Fatalf("re-pack report %+v: want 1 already-packed", rep)
	}
	if _, err := os.Stat(fs.path(key)); !os.IsNotExist(err) {
		t.Fatal("duplicate per-file entry survived")
	}
	p, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	ls, err := p.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 1 {
		t.Fatalf("%d entries after double pack, want 1", len(ls))
	}
}

// TestPackLeavesCorruptEntriesInPlace: a per-file entry that fails
// verification is reported and left for gc, never migrated.
func TestPackLeavesCorruptEntriesInPlace(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := Key{Hash: "0123456789abcdef", Seed: 1}
	bad := Key{Hash: "0123456789abcdef", Seed: 2}
	for _, key := range []Key{good, bad} {
		if err := fs.Put(key, testResult(key.Seed)); err != nil {
			t.Fatal(err)
		}
	}
	corrupt(t, fs, bad)

	rep, err := Pack(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Packed != 1 || rep.Skipped != 1 || len(rep.Problems) != 1 {
		t.Fatalf("pack report %+v: want 1 packed, 1 skipped with its problem", rep)
	}
	if _, err := os.Stat(fs.path(bad)); err != nil {
		t.Fatalf("corrupt entry removed instead of left in place: %v", err)
	}
	p, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, ok, err := p.Get(good); !ok || err != nil {
		t.Fatalf("good entry after pack: ok=%v err=%v", ok, err)
	}
	if _, ok, _ := p.Get(bad); ok {
		t.Fatal("corrupt entry migrated")
	}
	// gc on the packed layout reports the leftover as skipped-foreign
	// only once its shard path is foreign — it still parses as an entry
	// name, so the packed gc counts the whole file foreign.
	gcRep, err := p.GC()
	if err != nil {
		t.Fatal(err)
	}
	if gcRep.Skipped != 1 {
		t.Fatalf("gc report %+v: want the un-migrated file skipped", gcRep)
	}
	if _, err := os.Stat(filepath.Join(dir, SegmentsDirName)); err != nil {
		t.Fatal(err)
	}
}

// TestStoreBenchSmoke: the bench harness end to end at toy scale, both
// layouts, sane numbers.
func TestStoreBenchSmoke(t *testing.T) {
	rep, err := RunBench(BenchOptions{Entries: 64, Reads: 32, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Layouts) != 2 {
		t.Fatalf("bench covered %d layouts, want 2", len(rep.Layouts))
	}
	for _, lr := range rep.Layouts {
		if lr.Entries != 64 || lr.Reads != 32 {
			t.Fatalf("layout %s sized wrong: %+v", lr.Layout, lr)
		}
		if lr.WriteNSPerOp <= 0 || lr.ReadNSPerOp <= 0 || lr.GCNS <= 0 || lr.Bytes <= 0 {
			t.Fatalf("layout %s has non-positive measurements: %+v", lr.Layout, lr)
		}
		if lr.ReadP95NS < lr.ReadNSPerOp/10 {
			t.Fatalf("layout %s p95 %.0f implausibly below mean %.0f", lr.Layout, lr.ReadP95NS, lr.ReadNSPerOp)
		}
	}
}
