package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Segment file format (the packed "store v2" layout).
//
// A segment is an append-only file of checksummed result envelopes:
//
//	offset 0        8 bytes   magic "ICSEG001"
//	then, back to back, one record per stored result:
//	  4 bytes       big-endian uint32: payload length N
//	  N bytes       one EncodeEnvelope payload (versioned, checksummed)
//
// The envelope payload is byte-identical to what the per-file layout
// stores and the distributed tier ships — the segment adds framing,
// never a second encoding. There is no per-record CRC: the envelope's
// own SHA-256 checksum covers the payload, and a damaged length prefix
// surfaces as an impossible frame (zero, oversized, or past the end of
// the file), which scanning treats as a torn tail.
//
// Each segment has an index sidecar (<segment>.idx) written atomically
// (temp file + rename) when the segment seals: a JSON document mapping
// (hash, seed) → (offset, framed length, append timestamp) and
// recording how many segment bytes it covers. A sidecar that is
// missing, unreadable, or covers a different byte count than the
// segment holds is ignored and the segment is rescanned — the index is
// always reconstructible from the data it indexes.

// segMagic identifies a segment file; the trailing digits version the
// framing (the envelope payloads carry their own EnvelopeVersion).
const segMagic = "ICSEG001"

// maxRecordBytes bounds one framed payload — far above any real result
// envelope, so a garbage length prefix is rejected instead of driving a
// giant allocation.
const maxRecordBytes = 64 << 20

// SegmentEntry locates one decodable record inside a segment.
type SegmentEntry struct {
	Key Key
	// Offset is the position of the record's 4-byte length prefix;
	// Length is the full framed length (prefix + payload).
	Offset int64
	Length int64
}

// SegmentScan is the result of scanning one segment's bytes — the
// crash-safe index rebuild primitive.
type SegmentScan struct {
	// Entries are the records whose envelopes decode and verify, in
	// file order.
	Entries []SegmentEntry
	// Corrupt counts records whose framing was intact but whose
	// envelope failed to decode or verify; their bytes are dead but
	// scanning resynchronizes on the next record.
	Corrupt      int
	CorruptBytes int64
	// ValidBytes is the prefix covered by the magic header and complete
	// records (corrupt ones included — their frames are whole). Bytes
	// past it are a torn tail a killed writer left; truncating the file
	// to ValidBytes removes them losslessly.
	ValidBytes int64
	// Torn reports that the segment ends in an incomplete or
	// unparseable frame.
	Torn bool
}

// ScanSegment parses a segment image and locates every decodable
// record. A damaged record with intact framing is skipped and counted;
// an unparseable frame ends the scan (Torn) — everything before it
// still serves. Only a missing or wrong magic header is an error.
func ScanSegment(data []byte) (*SegmentScan, error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("store: not a segment file (bad magic)")
	}
	sc := &SegmentScan{ValidBytes: int64(len(segMagic))}
	off := int64(len(segMagic))
	size := int64(len(data))
	for off < size {
		rem := size - off
		if rem < 4 {
			sc.Torn = true
			break
		}
		n := int64(binary.BigEndian.Uint32(data[off:]))
		if n == 0 || n > maxRecordBytes || n > rem-4 {
			sc.Torn = true
			break
		}
		payload := data[off+4 : off+4+n]
		var env envelope
		err := json.Unmarshal(payload, &env)
		switch {
		case err != nil, env.Version != EnvelopeVersion, env.Hash == "",
			checksumOf(env.Result) != env.Checksum:
			sc.Corrupt++
			sc.CorruptBytes += 4 + n
		default:
			sc.Entries = append(sc.Entries, SegmentEntry{
				Key: Key{Hash: env.Hash, Seed: env.Seed}, Offset: off, Length: 4 + n,
			})
		}
		off += 4 + n
		sc.ValidBytes = off
	}
	return sc, nil
}

// segIndexVersion is the sidecar format version; unknown versions are
// treated as stale (rescan), never guessed at.
const segIndexVersion = 1

// segmentIndex is the sidecar document.
type segmentIndex struct {
	Version int `json:"version"`
	// CoveredBytes is the segment file size the sidecar describes; a
	// mismatch with the file on disk marks the sidecar stale.
	CoveredBytes int64               `json:"covered_bytes"`
	Entries      []segmentIndexEntry `json:"entries"`
}

type segmentIndexEntry struct {
	Hash string `json:"hash"`
	Seed int64  `json:"seed"`
	Off  int64  `json:"off"`
	Len  int64  `json:"len"`
	// TS is the unix-second append time, the retention clock MaxAge
	// evicts by (a rescan falls back to the segment's mtime).
	TS int64 `json:"ts"`
}

// writeSidecar atomically writes a segment's index sidecar — the
// "seal". Like entry writes in the per-file layout: temp file in the
// destination directory, then rename.
func writeSidecar(path string, idx *segmentIndex) error {
	data, err := json.Marshal(idx)
	if err != nil {
		return fmt.Errorf("store: seal %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: seal %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err == nil {
		err = os.Chmod(tmp.Name(), 0o644)
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: seal %s: %w", path, err)
	}
	return nil
}

// readSidecar loads a sidecar; ok is false when it is missing, damaged,
// from an unknown version, or stale for a segment of segSize bytes —
// every one of those means "rescan the segment".
func readSidecar(path string, segSize int64) (*segmentIndex, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var idx segmentIndex
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, false
	}
	if idx.Version != segIndexVersion || idx.CoveredBytes != segSize {
		return nil, false
	}
	for _, e := range idx.Entries {
		if e.Hash == "" || e.Off < int64(len(segMagic)) || e.Len <= 4 || e.Off+e.Len > segSize {
			return nil, false
		}
	}
	return &idx, true
}
