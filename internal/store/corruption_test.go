package store

import (
	"os"
	"strings"
	"testing"
	"time"
)

// truncate cuts an entry's file in half — the on-disk shape of a writer
// killed mid-write on a filesystem without atomic rename, or a
// partially transferred worker response.
func truncate(t *testing.T, fs *FS, key Key) {
	t.Helper()
	path := fs.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGetRejectsTruncatedEnvelope: a half-written entry is an error (a
// degraded miss to the engine), never a served result.
func TestGetRejectsTruncatedEnvelope(t *testing.T) {
	fs := openTest(t)
	key := Key{Hash: "0123456789abcdef", Seed: 3}
	if err := fs.Put(key, testResult(3)); err != nil {
		t.Fatal(err)
	}
	truncate(t, fs, key)
	if _, ok, err := fs.Get(key); ok || err == nil || !strings.Contains(err.Error(), "malformed envelope") {
		t.Errorf("truncated entry: ok=%v err=%v, want malformed-envelope error", ok, err)
	}
}

// TestDecodeEnvelopeFailurePaths drives the shared verifier (disk reads
// and worker responses alike) through every rejection class directly.
func TestDecodeEnvelopeFailurePaths(t *testing.T) {
	key := Key{Hash: "0123456789abcdef", Seed: 3}
	good, err := EncodeEnvelope(key, testResult(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeEnvelope(key, good); err != nil {
		t.Fatalf("DecodeEnvelope(intact): %v", err)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "malformed envelope"},
		{"truncated", good[:len(good)/2], "malformed envelope"},
		{"not-json", []byte("junk"), "malformed envelope"},
		{"bit-flip", flipResultByte(t, good), "checksum mismatch"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := DecodeEnvelope(key, c.data); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want %q", err, c.want)
			}
		})
	}
	// The same intact bytes under the wrong key are an identity error:
	// a coordinator must reject a worker answering for another cell.
	if _, err := DecodeEnvelope(Key{Hash: "fedcba9876543210", Seed: 3}, good); err == nil || !strings.Contains(err.Error(), "identifies") {
		t.Errorf("wrong key: err = %v, want identity error", err)
	}
}

// flipResultByte flips one digit inside the result payload, leaving the
// recorded checksum vouching for bytes that no longer exist.
func flipResultByte(t *testing.T, env []byte) []byte {
	t.Helper()
	out := append([]byte(nil), env...)
	i := strings.Index(string(out), `"ber":`)
	if i < 0 {
		t.Fatalf("no ber field in %s", out)
	}
	out[i+6] ^= 0x01
	return out
}

// TestVerifyFlagsTruncatedAndBitFlipped: an integrity pass over a
// partially damaged corpus reports exactly the damaged entries.
func TestVerifyFlagsTruncatedAndBitFlipped(t *testing.T) {
	fs := openTest(t)
	keys := []Key{
		{Hash: "0123456789abcdef", Seed: 1},
		{Hash: "0123456789abcdef", Seed: 2},
		{Hash: "0123456789abcdef", Seed: 3},
	}
	for _, k := range keys {
		if err := fs.Put(k, testResult(k.Seed)); err != nil {
			t.Fatal(err)
		}
	}
	truncate(t, fs, keys[0])
	corrupt(t, fs, keys[1])
	rep, err := fs.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 3 {
		t.Errorf("Entries = %d, want 3", rep.Entries)
	}
	if len(rep.Problems) != 2 {
		t.Fatalf("Problems = %+v, want the truncated and bit-flipped entries", rep.Problems)
	}
}

// TestGCWithEmptyCorpus: a retention pass over nothing is a no-op, not
// an error — including with every retention knob set.
func TestGCWithEmptyCorpus(t *testing.T) {
	fs := openTest(t)
	for _, opts := range []GCOptions{{}, {MaxAge: time.Hour}, {MaxBytes: 1}, {MaxAge: time.Hour, MaxBytes: 1}} {
		rep, err := fs.GCWith(opts)
		if err != nil {
			t.Fatalf("GCWith(%+v) on empty corpus: %v", opts, err)
		}
		if *rep != (GCReport{}) {
			t.Errorf("GCWith(%+v) on empty corpus = %+v, want zero report", opts, rep)
		}
	}
}

// TestGCWithPartiallyCorruptCorpus: GC removes exactly the damaged
// entries (truncated and bit-flipped) and the survivors still serve.
func TestGCWithPartiallyCorruptCorpus(t *testing.T) {
	fs := openTest(t)
	keys := []Key{
		{Hash: "0123456789abcdef", Seed: 1},
		{Hash: "0123456789abcdef", Seed: 2},
		{Hash: "0123456789abcdef", Seed: 3},
		{Hash: "0123456789abcdef", Seed: 4},
	}
	for _, k := range keys {
		if err := fs.Put(k, testResult(k.Seed)); err != nil {
			t.Fatal(err)
		}
	}
	truncate(t, fs, keys[0])
	corrupt(t, fs, keys[1])
	rep, err := fs.GCWith(GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedCorrupt != 2 || rep.Kept != 2 {
		t.Fatalf("report = %+v, want 2 removed corrupt, 2 kept", rep)
	}
	for _, k := range keys[:2] {
		if _, ok, err := fs.Get(k); ok || err != nil {
			t.Errorf("removed entry %s: ok=%v err=%v, want a clean miss", k, ok, err)
		}
	}
	for _, k := range keys[2:] {
		if _, ok, err := fs.Get(k); !ok || err != nil {
			t.Errorf("surviving entry %s: ok=%v err=%v, want served", k, ok, err)
		}
	}
}
