package store

// The backend seam: both directory layouts and the HTTP remote expose
// the same three-verb object protocol, and BackendStore layers the
// envelope verification that makes any of them safe to trust.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// backendFixtures returns one backend per implementation, each holding
// the same two entries, plus the server teardown for the remote.
func backendFixtures(t *testing.T) map[string]Backend {
	t.Helper()
	keys := []Key{
		{Hash: "0123456789abcdef", Seed: 1},
		{Hash: "fedcba9876543210", Seed: 2},
	}
	fill := func(s Store) {
		for _, key := range keys {
			if err := s.Put(key, testResult(key.Seed)); err != nil {
				t.Fatal(err)
			}
		}
	}

	fs := openTest(t)
	fill(fs)

	packed := openPackedTest(t)
	fill(packed)

	// The remote backend, served off a per-file store the way
	// `serve -store DIR -share` does — but through a minimal handler so
	// this test pins the wire protocol itself, not the serve layer.
	origin := openTest(t)
	fill(origin)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == StorePathPrefix {
			ls, _ := origin.List()
			writeTestJSON(w, ls)
			return
		}
		key, ok := ParseKeyString(r.URL.Path[len(StorePathPrefix)+1:])
		if !ok {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			data, ok, err := origin.GetObject(key)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if !ok {
				http.NotFound(w, r)
				return
			}
			w.Write(data)
		case http.MethodPut:
			buf := make([]byte, r.ContentLength)
			r.Body.Read(buf)
			if err := origin.PutObject(key, buf); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	t.Cleanup(srv.Close)
	hb, err := NewHTTPBackend(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}

	return map[string]Backend{"fs": fs, "packed": packed, "http": hb}
}

func writeTestJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, _ := json.Marshal(v)
	w.Write(data)
}

func TestBackendRoundTrip(t *testing.T) {
	for name, b := range backendFixtures(t) {
		t.Run(name, func(t *testing.T) {
			st := NewBackendStore(b)
			key := Key{Hash: "0123456789abcdef", Seed: 1}
			res, ok, err := st.Get(key)
			if err != nil || !ok {
				t.Fatalf("get: ok=%v err=%v", ok, err)
			}
			if res.Seed != 1 || res.BER != 0.125 {
				t.Fatalf("wrong result through backend: %+v", res)
			}
			if _, ok, err := st.Get(Key{Hash: "0123456789abcdef", Seed: 999}); ok || err != nil {
				t.Fatalf("miss: ok=%v err=%v", ok, err)
			}
			// Put through the verifying store, read back.
			put := Key{Hash: "00aa00aa00aa00aa", Seed: 5}
			if err := st.Put(put, testResult(5)); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := st.Get(put); !ok || err != nil {
				t.Fatalf("read-after-write: ok=%v err=%v", ok, err)
			}
			ls, err := b.ListObjects()
			if err != nil {
				t.Fatal(err)
			}
			if len(ls) != 3 {
				t.Fatalf("listed %d entries, want 3", len(ls))
			}
		})
	}
}

// TestBackendStoreRejectsCorruptBytes: a backend serving damaged bytes
// is caught by BackendStore's envelope verification — the byzantine-
// backend defense.
func TestBackendStoreRejectsCorruptBytes(t *testing.T) {
	key := Key{Hash: "0123456789abcdef", Seed: 1}
	good, err := EncodeEnvelope(key, testResult(1))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x01
	st := NewBackendStore(fakeBackend{data: bad})
	if _, ok, err := st.Get(key); err == nil || ok {
		t.Fatalf("corrupt backend bytes accepted: ok=%v err=%v", ok, err)
	}
	// And a backend serving someone else's (intact) envelope is caught
	// by the identity check.
	other, _ := EncodeEnvelope(Key{Hash: "fedcba9876543210", Seed: 2}, testResult(2))
	st = NewBackendStore(fakeBackend{data: other})
	if _, ok, err := st.Get(key); err == nil || ok {
		t.Fatalf("misidentified envelope accepted: ok=%v err=%v", ok, err)
	}
}

type fakeBackend struct{ data []byte }

func (f fakeBackend) GetObject(Key) ([]byte, bool, error) { return f.data, true, nil }
func (f fakeBackend) PutObject(Key, []byte) error         { return nil }
func (f fakeBackend) ListObjects() ([]Entry, error)       { return []Entry{}, nil }

// TestHTTPBackendErrors: server failures surface as errors (which the
// engine degrades to recomputes), never as false hits.
func TestHTTPBackendErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	b, err := NewHTTPBackend(srv.URL, srv.Client())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := b.GetObject(Key{Hash: "ab", Seed: 1}); err == nil || ok {
		t.Fatalf("500 treated as ok=%v err=%v", ok, err)
	}
	if err := b.PutObject(Key{Hash: "ab", Seed: 1}, []byte("{}")); err == nil {
		t.Fatal("500 on put not surfaced")
	}
	if _, err := b.ListObjects(); err == nil {
		t.Fatal("500 on list not surfaced")
	}

	for _, bad := range []string{"", "ftp://host", "not a url", "http://"} {
		if _, err := NewHTTPBackend(bad, nil); err == nil {
			t.Errorf("NewHTTPBackend(%q) accepted", bad)
		}
	}
}

// TestOpenAuto routes specs: URLs to the remote store, paths to the
// directory layouts.
func TestOpenAuto(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenAuto(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*FS); !ok {
		t.Fatalf("OpenAuto(dir) = %T, want *FS", st)
	}
	CloseStore(st)

	st, err = OpenAuto("http://127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*Remote); !ok {
		t.Fatalf("OpenAuto(url) = %T, want *Remote", st)
	}
	if !IsRemoteSpec("https://host/x") || IsRemoteSpec("/tmp/store") {
		t.Fatal("IsRemoteSpec misclassifies")
	}
}
