// Package store persists scenario results on disk, content-addressed
// by the same (scenario hash, seed) identity the serve layer's
// in-memory cache keys on. Results are immutable by the determinism
// contract — for a fixed spec and seed the result bytes never change —
// so the store needs no invalidation: an entry, once written, is valid
// forever, and any writer racing on the same key writes the same bytes.
//
// The filesystem implementation (FS) wraps every result in a versioned
// envelope carrying a checksum of the result's canonical JSON encoding;
// reads verify the checksum and the key before returning anything, so a
// truncated or bit-flipped file surfaces as an error instead of a wrong
// result. Writes go to a temporary file in the destination directory
// and are renamed into place, so a killed process never leaves a
// half-written entry under a valid name — the property sweep resume
// relies on.
//
// The engine (StreamScenarios), the sweep runner, and the HTTP serve
// layer all consult a Store before computing and persist after, turning
// every surface into one shared result corpus: a killed sweep resumes
// from the surviving cells, a restarted server warms its cache from
// disk, and CLI runs and CI share work.
package store

import (
	"context"
	"fmt"

	"ichannels/internal/scenario"
)

// EnvelopeVersion is the on-disk envelope format version. Bump it when
// the envelope shape changes; readers reject versions they don't know
// instead of guessing.
const EnvelopeVersion = 1

// Key identifies one immutable result: the scenario's content hash
// (scenario.Scenario.Hash, which excludes the display name and the
// seed) plus the effective seed the run used.
type Key struct {
	Hash string `json:"hash"`
	Seed int64  `json:"seed"`
}

// String renders the key the way CLI output and file names spell it.
func (k Key) String() string { return fmt.Sprintf("%s-%d", k.Hash, k.Seed) }

// Store is a pluggable result store. Implementations must be safe for
// concurrent use: the engine calls Get/Put from every worker.
type Store interface {
	// Get returns the stored result for key, ok=false on a clean miss.
	// A present-but-unreadable entry (corrupt envelope, checksum
	// mismatch) returns an error; callers typically treat that as a
	// miss and recompute — the determinism contract makes the
	// recomputed result identical to what the entry should have held.
	Get(key Key) (*scenario.Result, bool, error)
	// Put persists a result under key. Putting an existing key is a
	// no-op-equivalent overwrite: deterministic results make both
	// writes byte-identical.
	Put(key Key, res *scenario.Result) error
}

// writeOnly wraps a Store so every Get misses: results are persisted
// but never fetched. `sweep run -store DIR` without -resume uses it so
// a run both re-verifies determinism and (re)materializes the corpus.
type writeOnly struct{ Store }

func (w writeOnly) Get(Key) (*scenario.Result, bool, error) { return nil, false, nil }

// GetContext must also miss: without this override, a context-aware
// wrapped store's promoted GetContext would leak reads around the
// write-only veil.
func (w writeOnly) GetContext(context.Context, Key) (*scenario.Result, bool, error) {
	return nil, false, nil
}

// PutContext forwards writes through the context-aware path.
func (w writeOnly) PutContext(ctx context.Context, key Key, res *scenario.Result) error {
	return PutContext(ctx, w.Store, key, res)
}

// Close forwards lifecycle to the wrapped store (segment handles,
// replica flush queues): the veil hides reads, not resources.
func (w writeOnly) Close() error { return CloseStore(w.Store) }

// TierStats forwards the wrapped store's tier counters when it has any,
// so a write-only replica still reports its flush and retry activity.
func (w writeOnly) TierStats() TierStats {
	if t, ok := w.Store.(TierStatter); ok {
		return t.TierStats()
	}
	return TierStats{}
}

// WriteOnly returns a view of s that persists results but never serves
// reads from it.
func WriteOnly(s Store) Store {
	if s == nil {
		return nil
	}
	return writeOnly{s}
}
