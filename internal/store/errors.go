package store

// Error classification for the degraded paths: every store failure an
// engine sees is either transient (the network blipped, the server had
// a bad moment — retrying or recomputing locally is the answer) or
// permanent (the bytes themselves are wrong — retrying would fetch the
// same damage). The split matters operationally: a transient burst
// points at infrastructure, a permanent count points at a corrupt or
// byzantine server, and the sweep counters report them separately.

import "errors"

// ErrCorrupt marks an envelope that failed verification: malformed
// JSON, wrong version, wrong identity, or a checksum mismatch. Matched
// with errors.Is; every decodeEnvelope failure carries it.
var ErrCorrupt = errors.New("store: corrupt envelope")

// ErrUnavailable marks a fast-fail while the remote circuit breaker is
// open: the remote was not contacted at all. Transient by definition —
// the breaker will probe again after its cooldown.
var ErrUnavailable = errors.New("store: remote unavailable (circuit open)")

// corruptError tags an envelope-verification failure without changing
// its message. errors.Is(err, ErrCorrupt) matches through it.
type corruptError struct{ err error }

func (e *corruptError) Error() string        { return e.err.Error() }
func (e *corruptError) Unwrap() error        { return e.err }
func (e *corruptError) Is(target error) bool { return target == ErrCorrupt }

// markCorrupt wraps err as a permanent corruption error.
func markCorrupt(err error) error {
	if err == nil {
		return nil
	}
	return &corruptError{err: err}
}

// remoteStatusError carries the HTTP status of a failed remote call so
// the retry layer can split client errors (permanent: the request is
// wrong) from server errors (transient: the server is having a bad
// time).
type remoteStatusError struct {
	msg  string
	code int
}

func (e *remoteStatusError) Error() string { return e.msg }

// IsCorrupt reports whether err marks a permanently damaged envelope.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }

// IsPermanentError reports whether a store failure is permanent:
// retrying cannot help (corrupt envelope, 4xx from the remote).
// Everything else — transport errors, 5xx, timeouts, an open breaker —
// is transient: the same request may succeed later, and the engine's
// local recompute covers the meantime.
func IsPermanentError(err error) bool {
	if err == nil {
		return false
	}
	if IsCorrupt(err) {
		return true
	}
	var se *remoteStatusError
	if errors.As(err, &se) {
		return se.code >= 400 && se.code < 500
	}
	return false
}
