package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"ichannels/internal/scenario"
)

// SegmentsDirName is the subdirectory whose presence marks a store
// directory as packed-layout (DetectLayout keys on it).
const SegmentsDirName = "segments"

// DefaultMaxSegmentBytes is the roll threshold: the active segment
// seals and a new one starts once it grows past this.
const DefaultMaxSegmentBytes int64 = 8 << 20

// autoCompactDenominator triggers background compaction when the dead
// fraction discovered at open reaches 1/autoCompactDenominator of the
// corpus bytes.
const autoCompactDenominator = 4

// segFileRE matches the two file kinds a segments directory owns.
var segFileRE = regexp.MustCompile(`^\d{8}\.(seg|idx)$`)

// PackedOptions tunes OpenPackedWith; the zero value is OpenPacked's
// default.
type PackedOptions struct {
	// MaxSegmentBytes overrides the segment roll threshold (0 =
	// DefaultMaxSegmentBytes).
	MaxSegmentBytes int64
	// DisableAutoCompact turns off the background compaction an
	// open-time rescan otherwise schedules when it finds enough dead
	// bytes (corrupt records, superseded duplicates).
	DisableAutoCompact bool
}

// packedRef locates one live entry in the in-memory index.
type packedRef struct {
	seg    int
	off    int64
	length int64 // framed (prefix + payload)
	ts     int64 // unix-second append time, the MaxAge retention clock
}

// segmentState is one on-disk segment the store has open.
type segmentState struct {
	id     int
	path   string
	f      *os.File
	size   int64
	sealed bool
	// entries accumulates the sidecar rows for an unsealed (active)
	// segment.
	entries []segmentIndexEntry
}

// Packed is the segment-corpus Store: results are appended as framed
// envelopes to an active segment under dir/segments, located through an
// in-memory index loaded from per-segment sidecars — or rebuilt by
// scanning any segment whose sidecar is missing or stale, the
// crash-safe path. It implements the same Store interface as FS plus
// the same maintenance surface (List, Verify, GC/GCWith), so the
// engine, sweep resume, and serve use it with no layout-specific code.
//
// Semantics that differ from FS on purpose:
//
//   - Put of an existing key is a true no-op (the per-file layout
//     rewrites the identical bytes; appending them again would only
//     create dead bytes in the log).
//   - A Get that finds a damaged record drops it from the index
//     (self-healing): the caller sees the usual error-degrades-to-miss
//     contract, and the next Put of that key re-materializes it —
//     compaction reclaims the dead bytes later.
//   - GCWith compacts: segments that lost records are rewritten —
//     survivors copied verbatim into fresh segments, old files deleted
//     — so reclaimed bytes actually return to the filesystem.
//
// One process should write a packed directory at a time (the active
// segment is an append cursor); racing writers are detected at segment
// creation (O_EXCL) and pick distinct ids, but the per-file layout
// remains the choice for heavily multi-writer corpora.
type Packed struct {
	dir    string
	segDir string
	maxSeg int64
	// now is the retention clock, swappable by tests.
	now func() time.Time

	mu      sync.RWMutex
	index   map[Key]packedRef
	segs    map[int]*segmentState
	active  *segmentState
	nextSeg int
	// deadBytes tracks on-disk bytes no index entry covers (corrupt
	// records, superseded duplicates) — compaction's trigger.
	deadBytes int64

	bg sync.WaitGroup
}

// OpenPacked creates (if needed) and opens a packed-layout store rooted
// at dir with default options.
func OpenPacked(dir string) (*Packed, error) {
	return OpenPackedWith(dir, PackedOptions{})
}

// OpenPackedWith is OpenPacked with explicit options. Opening loads
// every segment's sidecar; a segment whose sidecar is missing or stale
// is rescanned (truncating any torn tail a killed writer left) and
// resealed, so the full corpus serves after any crash.
func OpenPackedWith(dir string, opts PackedOptions) (*Packed, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	segDir := filepath.Join(dir, SegmentsDirName)
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	maxSeg := opts.MaxSegmentBytes
	if maxSeg <= 0 {
		maxSeg = DefaultMaxSegmentBytes
	}
	p := &Packed{
		dir: dir, segDir: segDir, maxSeg: maxSeg,
		now:     time.Now,
		index:   map[Key]packedRef{},
		segs:    map[int]*segmentState{},
		nextSeg: 1,
	}
	if err := p.load(); err != nil {
		p.Close()
		return nil, err
	}
	if !opts.DisableAutoCompact && p.deadBytes > 0 {
		var live int64
		for _, ref := range p.index {
			live += ref.length
		}
		if p.deadBytes*autoCompactDenominator >= live+p.deadBytes {
			p.bg.Add(1)
			go func() {
				defer p.bg.Done()
				p.GC() // compaction is the zero-options pass
			}()
		}
	}
	return p, nil
}

// load reads every segment's index (rescanning and resealing as needed)
// and builds the in-memory index.
func (p *Packed) load() error {
	des, err := os.ReadDir(p.segDir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var ids []int
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".seg") || !segFileRE.MatchString(de.Name()) {
			continue
		}
		var id int
		fmt.Sscanf(de.Name(), "%08d.seg", &id)
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := p.loadSegment(id); err != nil {
			return err
		}
		if id >= p.nextSeg {
			p.nextSeg = id + 1
		}
	}
	return nil
}

func (p *Packed) segPath(id int) string {
	return filepath.Join(p.segDir, fmt.Sprintf("%08d.seg", id))
}

func (p *Packed) idxPath(id int) string {
	return filepath.Join(p.segDir, fmt.Sprintf("%08d.idx", id))
}

// loadSegment opens one segment — through its sidecar when valid, by
// rescanning (and resealing) otherwise.
func (p *Packed) loadSegment(id int) error {
	path := p.segPath(id)
	info, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	size := info.Size()
	idx, ok := readSidecar(p.idxPath(id), size)
	if !ok {
		// Missing or stale sidecar: rebuild it from the segment bytes.
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		sc, err := ScanSegment(data)
		if err != nil {
			// Not a segment at all; leave the file for gc to report.
			return nil
		}
		if sc.ValidBytes < size {
			// Torn tail from a killed writer: truncate it away so the
			// resealed sidecar covers exactly what is on disk.
			if err := os.Truncate(path, sc.ValidBytes); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			size = sc.ValidBytes
		}
		p.deadBytes += sc.CorruptBytes
		ts := info.ModTime().Unix()
		idx = &segmentIndex{Version: segIndexVersion, CoveredBytes: size}
		for _, e := range sc.Entries {
			idx.Entries = append(idx.Entries, segmentIndexEntry{
				Hash: e.Key.Hash, Seed: e.Key.Seed, Off: e.Offset, Len: e.Length, TS: ts,
			})
		}
		if err := writeSidecar(p.idxPath(id), idx); err != nil {
			return err
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	p.segs[id] = &segmentState{id: id, path: path, f: f, size: size, sealed: true}
	for _, e := range idx.Entries {
		key := Key{Hash: e.Hash, Seed: e.Seed}
		if old, dup := p.index[key]; dup {
			// Later segments win (a re-put entry supersedes a dropped
			// one); the older record becomes dead bytes.
			p.deadBytes += old.length
		}
		p.index[key] = packedRef{seg: id, off: e.Off, length: e.Len, ts: e.TS}
	}
	return nil
}

// Dir returns the store's root directory.
func (p *Packed) Dir() string { return p.dir }

// Layout identifies the on-disk format for DirStore consumers.
func (p *Packed) Layout() Layout { return LayoutPacked }

// WaitMaintenance blocks until any background compaction scheduled at
// open has finished — the deterministic hook tests and Close use.
func (p *Packed) WaitMaintenance() { p.bg.Wait() }

// Close seals the active segment (writing its sidecar atomically) and
// releases file handles. A store abandoned without Close loses nothing:
// the next open rescans the unsealed segment and reseals it.
func (p *Packed) Close() error {
	p.bg.Wait()
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	if p.active != nil {
		if err := p.sealLocked(p.active); err != nil {
			firstErr = err
		}
		p.active = nil
	}
	for _, st := range p.segs {
		if st.f != nil {
			if err := st.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			st.f = nil
		}
	}
	return firstErr
}

// sealLocked writes st's sidecar and marks it sealed.
func (p *Packed) sealLocked(st *segmentState) error {
	idx := &segmentIndex{Version: segIndexVersion, CoveredBytes: st.size, Entries: st.entries}
	if err := writeSidecar(p.idxPath(st.id), idx); err != nil {
		return err
	}
	st.sealed = true
	return nil
}

// newActiveLocked creates the next segment file for appends. O_EXCL
// detects another writer racing on the same id; the loser moves on to
// the next.
func (p *Packed) newActiveLocked() error {
	for {
		id := p.nextSeg
		p.nextSeg++
		f, err := os.OpenFile(p.segPath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) {
			continue
		}
		if err != nil {
			return fmt.Errorf("store: new segment: %w", err)
		}
		if _, err := f.WriteString(segMagic); err != nil {
			f.Close()
			os.Remove(p.segPath(id))
			return fmt.Errorf("store: new segment: %w", err)
		}
		st := &segmentState{id: id, path: p.segPath(id), f: f, size: int64(len(segMagic))}
		p.segs[id] = st
		p.active = st
		return nil
	}
}

// getPayload reads one entry's raw envelope bytes with its index ref.
// A read that fails is retried once against a fresh ref — a concurrent
// compaction may have relocated the record (and closed its old segment)
// between the index lookup and the file read.
func (p *Packed) getPayload(key Key) ([]byte, packedRef, bool, error) {
	var lastErr error
	var lastRef packedRef
	for attempt := 0; attempt < 2; attempt++ {
		p.mu.RLock()
		ref, ok := p.index[key]
		var f *os.File
		if ok {
			if st := p.segs[ref.seg]; st != nil {
				f = st.f
			}
		}
		p.mu.RUnlock()
		if !ok {
			return nil, packedRef{}, false, nil
		}
		if attempt > 0 && ref == lastRef {
			break // nothing moved; the record really is damaged
		}
		payload, err := p.readRecord(f, key, ref)
		if err == nil {
			return payload, ref, true, nil
		}
		lastErr, lastRef = err, ref
	}
	return nil, lastRef, true, lastErr
}

// Get implements Store. A record that fails verification is dropped
// from the index (its bytes stay dead until compaction) so a later Put
// can heal the key; the caller sees the standard error-degrades-to-miss
// contract either way.
func (p *Packed) Get(key Key) (*scenario.Result, bool, error) {
	payload, ref, ok, err := p.getPayload(key)
	if !ok {
		return nil, false, nil
	}
	if err != nil {
		p.dropRef(key, ref)
		return nil, false, err
	}
	res, err := decodeEnvelope(key, payload)
	if err != nil {
		p.dropRef(key, ref)
		return nil, false, err
	}
	return res, true, nil
}

// GetObject returns one entry's raw envelope bytes (the Backend seam).
// Framing damage drops the entry like Get does; payload verification is
// the consumer's job (BackendStore decodes).
func (p *Packed) GetObject(key Key) ([]byte, bool, error) {
	payload, ref, ok, err := p.getPayload(key)
	if !ok {
		return nil, false, nil
	}
	if err != nil {
		p.dropRef(key, ref)
		return nil, false, err
	}
	return payload, true, nil
}

// readRecord fetches and frame-checks one record's payload bytes.
func (p *Packed) readRecord(f *os.File, key Key, ref packedRef) ([]byte, error) {
	if f == nil {
		return nil, fmt.Errorf("store: entry %s: segment %d not open", key, ref.seg)
	}
	buf := make([]byte, ref.length)
	if _, err := f.ReadAt(buf, ref.off); err != nil {
		return nil, fmt.Errorf("store: entry %s: segment read: %w", key, err)
	}
	if int64(binary.BigEndian.Uint32(buf))+4 != ref.length {
		return nil, fmt.Errorf("store: entry %s: malformed envelope frame", key)
	}
	return buf[4:], nil
}

// dropRef removes a damaged entry from the index — only if it still
// points at the same record, since a concurrent compaction may have
// already relocated the key to fresh, valid bytes.
func (p *Packed) dropRef(key Key, ref packedRef) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cur, ok := p.index[key]; ok && cur == ref {
		delete(p.index, key)
		p.deadBytes += ref.length
	}
}

// Put implements Store: frame the canonical envelope and append it to
// the active segment, rolling (and sealing) at the size threshold. An
// already-present key is a no-op — by determinism the bytes would be
// identical, and the log should not accumulate duplicates.
func (p *Packed) Put(key Key, res *scenario.Result) error {
	env, err := EncodeEnvelope(key, res)
	if err != nil {
		return err
	}
	return p.PutObject(key, env)
}

// PutObject appends pre-encoded envelope bytes (the Backend seam; Put
// and pack migration share it). The caller vouches that data is a valid
// envelope for key — BackendStore and Pack decode before calling.
func (p *Packed) PutObject(key Key, data []byte) error {
	if len(data) == 0 || int64(len(data)) > maxRecordBytes {
		return fmt.Errorf("store: put %s: envelope of %d bytes outside record bounds", key, len(data))
	}
	frame := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(frame, uint32(len(data)))
	copy(frame[4:], data)
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.index[key]; ok {
		return nil
	}
	return p.appendLocked(key, frame, p.now().Unix())
}

// appendLocked writes one framed record to the active segment and
// indexes it. ts is preserved as given — compaction re-appends with the
// original timestamp so retention clocks never reset.
func (p *Packed) appendLocked(key Key, frame []byte, ts int64) error {
	if p.active == nil {
		if err := p.newActiveLocked(); err != nil {
			return err
		}
	}
	st := p.active
	if _, err := st.f.Write(frame); err != nil {
		// Roll the partial write back so the in-memory size stays the
		// truth; a crash here instead leaves a torn tail the next open
		// truncates away.
		st.f.Truncate(st.size)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	off := st.size
	st.size += int64(len(frame))
	st.entries = append(st.entries, segmentIndexEntry{
		Hash: key.Hash, Seed: key.Seed, Off: off, Len: int64(len(frame)), TS: ts,
	})
	p.index[key] = packedRef{seg: st.id, off: off, length: int64(len(frame)), ts: ts}
	if st.size >= p.maxSeg {
		if err := p.sealLocked(st); err != nil {
			return err
		}
		p.active = nil
	}
	return nil
}

// ListObjects implements Backend.
func (p *Packed) ListObjects() ([]Entry, error) { return p.List() }

// List returns every indexed entry sorted by key, sizes in payload
// bytes — the same view FS.List gives of the per-file layout.
func (p *Packed) List() ([]Entry, error) {
	p.mu.RLock()
	out := make([]Entry, 0, len(p.index))
	for key, ref := range p.index {
		out = append(out, Entry{Key: key, Size: ref.length - 4})
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Hash != out[j].Key.Hash {
			return out[i].Key.Hash < out[j].Key.Hash
		}
		return out[i].Key.Seed < out[j].Key.Seed
	})
	return out, nil
}

// sortedKeysLocked returns the index keys in deterministic order.
func (p *Packed) sortedKeysLocked() []Key {
	keys := make([]Key, 0, len(p.index))
	for k := range p.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Hash != keys[j].Hash {
			return keys[i].Hash < keys[j].Hash
		}
		return keys[i].Seed < keys[j].Seed
	})
	return keys
}

// Verify reads and checks every indexed entry and reports files the
// packed layout does not own (temporaries, foreign files, un-migrated
// per-file entries) as stray. Report-only: unlike Get it never drops
// damaged entries.
func (p *Packed) Verify() (*VerifyReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rep := &VerifyReport{}
	for _, key := range p.sortedKeysLocked() {
		ref := p.index[key]
		rep.Entries++
		rep.Bytes += ref.length - 4
		var f *os.File
		if st := p.segs[ref.seg]; st != nil {
			f = st.f
		}
		payload, err := p.readRecord(f, key, ref)
		if err == nil {
			_, err = decodeEnvelope(key, payload)
		}
		if err != nil {
			rep.Problems = append(rep.Problems, Problem{
				Path: fmt.Sprintf("%s@%d", p.segPath(ref.seg), ref.off), Err: err.Error(),
			})
		}
	}
	foreign, _, err := p.foreignFilesLocked()
	if err != nil {
		return nil, fmt.Errorf("store: verify: %w", err)
	}
	tmps, err := p.tmpFilesLocked(time.Time{})
	if err != nil {
		return nil, fmt.Errorf("store: verify: %w", err)
	}
	rep.Stray = len(foreign) + len(tmps)
	return rep, nil
}

// foreignFilesLocked lists files the layout does not own — anything
// under the root outside segments/, and anything inside segments/ that
// is not a segment, sidecar, or temporary — plus orphan sidecars (an
// .idx whose .seg is gone), which gc removes as stray.
func (p *Packed) foreignFilesLocked() (foreign, orphanIdx []string, err error) {
	err = filepath.WalkDir(p.dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if filepath.Dir(path) != p.segDir {
			foreign = append(foreign, path)
			return nil
		}
		if strings.HasPrefix(name, tmpPrefix) {
			return nil // temporaries have their own pass
		}
		if !segFileRE.MatchString(name) {
			foreign = append(foreign, path)
			return nil
		}
		if strings.HasSuffix(name, ".idx") {
			var id int
			fmt.Sscanf(name, "%08d.idx", &id)
			if _, ok := p.segs[id]; !ok {
				orphanIdx = append(orphanIdx, path)
			}
		}
		return nil
	})
	return foreign, orphanIdx, err
}

// tmpFilesLocked lists temporaries in the segments directory older than
// cutoff (zero cutoff = all of them).
func (p *Packed) tmpFilesLocked(cutoff time.Time) ([]string, error) {
	des, err := os.ReadDir(p.segDir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, de := range des {
		if de.IsDir() || !strings.HasPrefix(de.Name(), tmpPrefix) {
			continue
		}
		if !cutoff.IsZero() {
			info, err := de.Info()
			if err != nil || info.ModTime().After(cutoff) {
				continue
			}
		}
		out = append(out, filepath.Join(p.segDir, de.Name()))
	}
	return out, nil
}

// GC is GCWith with zero options: drop damaged records and abandoned
// temporaries, then compact — rewrite segments that lost records so the
// reclaimed bytes return to the filesystem.
func (p *Packed) GC() (*GCReport, error) { return p.GCWith(GCOptions{}) }

// GCWith is the packed layout's retention + compaction pass. The
// retention semantics mirror FS.GCWith — corrupt entries always go,
// then MaxAge and MaxBytes evict intact entries oldest-first by append
// time — and compaction then rewrites every segment holding dead bytes:
// survivors are copied verbatim (frames and timestamps preserved) into
// fresh segments and the old files deleted. Files the layout does not
// own are counted in Skipped and never touched.
func (p *Packed) GCWith(opts GCOptions) (*GCReport, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	rep := &GCReport{}

	// Compaction wants every segment sealed; the active one reopens on
	// the next Put.
	if p.active != nil {
		if err := p.sealLocked(p.active); err != nil {
			return nil, err
		}
		p.active = nil
	}

	diskBefore, err := p.segBytesLocked()
	if err != nil {
		return nil, fmt.Errorf("store: gc: %w", err)
	}

	// Pass 1: damaged records (framing or envelope) always go.
	for _, key := range p.sortedKeysLocked() {
		ref := p.index[key]
		var f *os.File
		if st := p.segs[ref.seg]; st != nil {
			f = st.f
		}
		payload, err := p.readRecord(f, key, ref)
		if err == nil {
			_, err = decodeEnvelope(key, payload)
		}
		if err != nil {
			delete(p.index, key)
			p.deadBytes += ref.length
			rep.RemovedCorrupt++
		}
	}

	// Pass 2: age bound, on the append timestamps the sidecars persist.
	if opts.MaxAge > 0 {
		cutoff := p.now().Add(-opts.MaxAge).Unix()
		for _, key := range p.sortedKeysLocked() {
			if ref := p.index[key]; ref.ts < cutoff {
				delete(p.index, key)
				p.deadBytes += ref.length
				rep.RemovedExpired++
			}
		}
	}

	// Pass 3: size budget over live record bytes, oldest out first
	// (ties broken by key order, so eviction is deterministic).
	if opts.MaxBytes > 0 {
		keys := p.sortedKeysLocked()
		sort.SliceStable(keys, func(i, j int) bool {
			return p.index[keys[i]].ts < p.index[keys[j]].ts
		})
		var total int64
		for _, k := range keys {
			total += p.index[k].length
		}
		for _, k := range keys {
			if total <= opts.MaxBytes {
				break
			}
			ref := p.index[k]
			delete(p.index, k)
			p.deadBytes += ref.length
			total -= ref.length
			rep.RemovedOverBudget++
		}
	}

	// Abandoned temporaries (a live writer holds its temp file for
	// milliseconds; see gcTmpAge) and orphan sidecars.
	tmps, err := p.tmpFilesLocked(time.Now().Add(-gcTmpAge))
	if err != nil {
		return nil, fmt.Errorf("store: gc: %w", err)
	}
	foreign, orphans, err := p.foreignFilesLocked()
	if err != nil {
		return nil, fmt.Errorf("store: gc: %w", err)
	}
	for _, path := range append(tmps, orphans...) {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("store: gc: %w", err)
		}
		rep.RemovedStray++
	}
	rep.Skipped = len(foreign)

	if err := p.compactLocked(); err != nil {
		return nil, err
	}

	diskAfter, err := p.segBytesLocked()
	if err != nil {
		return nil, fmt.Errorf("store: gc: %w", err)
	}
	if reclaimed := diskBefore - diskAfter; reclaimed > 0 {
		rep.ReclaimedBytes = reclaimed
	}
	rep.Kept = len(p.index)
	return rep, nil
}

// segBytesLocked sums the on-disk segment file sizes.
func (p *Packed) segBytesLocked() (int64, error) {
	var total int64
	for _, st := range p.segs {
		info, err := os.Stat(st.path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}

// compactLocked rewrites every sealed segment whose on-disk bytes
// exceed its live records: survivors are copied (frame bytes and
// timestamps verbatim, offset order for sequential reads) into a fresh
// active segment, then the old segment and its sidecar are deleted.
// Relocation targets get ids above every pre-existing segment, so the
// snapshot iteration never revisits them. Callers must have sealed the
// active segment first.
func (p *Packed) compactLocked() error {
	bySeg := map[int][]Key{}
	for _, key := range p.sortedKeysLocked() {
		ref := p.index[key]
		bySeg[ref.seg] = append(bySeg[ref.seg], key)
	}
	for _, keys := range bySeg {
		sort.Slice(keys, func(i, j int) bool {
			return p.index[keys[i]].off < p.index[keys[j]].off
		})
	}
	var ids []int
	for id := range p.segs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := p.segs[id]
		var live int64
		for _, k := range bySeg[id] {
			live += p.index[k].length
		}
		if st.size == int64(len(segMagic))+live {
			continue // fully live: keep as-is
		}
		for _, key := range bySeg[id] {
			ref := p.index[key]
			frame := make([]byte, ref.length)
			if _, err := st.f.ReadAt(frame, ref.off); err != nil {
				return fmt.Errorf("store: gc: rewrite %s: %w", key, err)
			}
			if err := p.appendLocked(key, frame, ref.ts); err != nil {
				return err
			}
		}
		st.f.Close()
		if err := os.Remove(st.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: gc: %w", err)
		}
		if err := os.Remove(p.idxPath(id)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("store: gc: %w", err)
		}
		delete(p.segs, id)
	}
	if p.active != nil {
		if err := p.sealLocked(p.active); err != nil {
			return err
		}
		p.active = nil
	}
	p.deadBytes = 0
	return nil
}
