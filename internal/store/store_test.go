package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ichannels/internal/scenario"
)

func testResult(seed int64) *scenario.Result {
	return &scenario.Result{
		Role: scenario.RoleChannel, Processor: "Cannon Lake", Kind: scenario.KindCores,
		Hash: "0123456789abcdef", Seed: seed,
		Bits: 4, SentBits: []int{1, 0, 1, 1}, DecodedBits: []int{1, 0, 1, 1},
		ThroughputBPS: 3000.25, BER: 0.125, ElapsedSimUS: 1234.5,
		Extra: map[string]float64{"calibration_gap_cycles": 4200},
		Notes: []string{"test fixture"},
	}
}

func openTest(t *testing.T) *FS {
	t.Helper()
	fs, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestPutGetRoundTrip(t *testing.T) {
	fs := openTest(t)
	key := Key{Hash: "0123456789abcdef", Seed: 7}
	if _, ok, err := fs.Get(key); ok || err != nil {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	want := testResult(7)
	if err := fs.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := fs.Get(key)
	if !ok || err != nil {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	}
	// The byte-identity contract must survive a store round-trip: the
	// fetched result re-marshals to exactly the computed result's bytes.
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if !bytes.Equal(wb, gb) {
		t.Errorf("round-trip bytes differ:\n put: %s\n got: %s", wb, gb)
	}
	// Overwriting an existing key (deterministic results make the bytes
	// identical) must succeed.
	if err := fs.Put(key, want); err != nil {
		t.Errorf("re-put: %v", err)
	}
}

func TestPutLeavesNoTemporaries(t *testing.T) {
	fs := openTest(t)
	for seed := int64(1); seed <= 4; seed++ {
		if err := fs.Put(Key{Hash: "aabb304958aabbcc", Seed: seed}, testResult(seed)); err != nil {
			t.Fatal(err)
		}
	}
	err := filepath.WalkDir(fs.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), tmpPrefix) {
			t.Errorf("leftover temporary %s", path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// corrupt flips one byte inside the stored result payload.
func corrupt(t *testing.T, fs *FS, key Key) string {
	t.Helper()
	path := fs.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := bytes.Index(data, []byte(`"ber":`))
	if i < 0 {
		t.Fatalf("no ber field in %s", data)
	}
	data[i+6] ^= 0x01 // '0' ↔ '1': keeps the JSON valid, changes the payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGetRejectsCorruption(t *testing.T) {
	fs := openTest(t)
	key := Key{Hash: "0123456789abcdef", Seed: 3}
	if err := fs.Put(key, testResult(3)); err != nil {
		t.Fatal(err)
	}
	corrupt(t, fs, key)
	if _, ok, err := fs.Get(key); ok || err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupt entry: ok=%v err=%v, want checksum error", ok, err)
	}
}

func TestGetRejectsWrongKeyAndVersion(t *testing.T) {
	fs := openTest(t)
	key := Key{Hash: "0123456789abcdef", Seed: 3}
	if err := fs.Put(key, testResult(3)); err != nil {
		t.Fatal(err)
	}
	// A renamed entry (same bytes, different key) must not be served.
	moved := Key{Hash: "fedcba9876543210", Seed: 3}
	if err := os.MkdirAll(filepath.Dir(fs.path(moved)), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(fs.path(key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fs.path(moved), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := fs.Get(moved); ok || err == nil || !strings.Contains(err.Error(), "identifies") {
		t.Errorf("renamed entry: ok=%v err=%v, want identity error", ok, err)
	}
	// An unknown envelope version must be rejected, not guessed at.
	bumped := bytes.Replace(data, []byte(`"version":1`), []byte(`"version":99`), 1)
	if err := os.WriteFile(fs.path(key), bumped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := fs.Get(key); ok || err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version: ok=%v err=%v, want version error", ok, err)
	}
}

func TestListSorted(t *testing.T) {
	fs := openTest(t)
	keys := []Key{
		{Hash: "bb00000000000000", Seed: 2},
		{Hash: "aa00000000000000", Seed: 9},
		{Hash: "aa00000000000000", Seed: 1},
	}
	for _, k := range keys {
		if err := fs.Put(k, testResult(k.Seed)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := fs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("listed %d entries, want 3", len(entries))
	}
	want := []Key{
		{Hash: "aa00000000000000", Seed: 1},
		{Hash: "aa00000000000000", Seed: 9},
		{Hash: "bb00000000000000", Seed: 2},
	}
	for i, e := range entries {
		if e.Key != want[i] {
			t.Errorf("entries[%d] = %v, want %v", i, e.Key, want[i])
		}
		if e.Size <= 0 {
			t.Errorf("entries[%d] size %d", i, e.Size)
		}
	}
}

func TestVerifyAndGC(t *testing.T) {
	fs := openTest(t)
	good := Key{Hash: "0123456789abcdef", Seed: 1}
	bad := Key{Hash: "0123456789abcdef", Seed: 2}
	for _, k := range []Key{good, bad} {
		if err := fs.Put(k, testResult(k.Seed)); err != nil {
			t.Fatal(err)
		}
	}
	corrupt(t, fs, bad)
	// A leftover temporary from a long-dead writer (backdated past the
	// GC age margin) and a fresh one from a "live" writer.
	stray := filepath.Join(fs.Dir(), "01", tmpPrefix+"orphan")
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * gcTmpAge)
	if err := os.Chtimes(stray, old, old); err != nil {
		t.Fatal(err)
	}
	live := filepath.Join(fs.Dir(), "01", tmpPrefix+"live")
	if err := os.WriteFile(live, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := fs.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries != 2 || len(rep.Problems) != 1 || rep.Stray != 2 {
		t.Fatalf("verify report %+v, want 2 entries / 1 problem / 2 stray", rep)
	}

	gc, err := fs.GC()
	if err != nil {
		t.Fatal(err)
	}
	if gc.RemovedCorrupt != 1 || gc.RemovedStray != 1 || gc.Kept != 1 || gc.ReclaimedBytes <= 0 {
		t.Fatalf("gc report %+v", gc)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Errorf("abandoned temporary survived gc: %v", err)
	}
	if _, err := os.Stat(live); err != nil {
		t.Errorf("live temporary removed by gc: %v", err)
	}
	os.Remove(live)
	if _, ok, err := fs.Get(good); !ok || err != nil {
		t.Errorf("good entry after gc: ok=%v err=%v", ok, err)
	}
	if _, ok, err := fs.Get(bad); ok || err != nil {
		t.Errorf("corrupt entry after gc: ok=%v err=%v (want clean miss)", ok, err)
	}
	rep, err = fs.Verify()
	if err != nil || len(rep.Problems) != 0 || rep.Stray != 0 {
		t.Errorf("post-gc verify %+v err=%v", rep, err)
	}
}

func TestWriteOnly(t *testing.T) {
	fs := openTest(t)
	wo := WriteOnly(fs)
	key := Key{Hash: "0123456789abcdef", Seed: 5}
	if err := wo.Put(key, testResult(5)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := wo.Get(key); ok || err != nil {
		t.Errorf("write-only get: ok=%v err=%v, want miss", ok, err)
	}
	if _, ok, err := fs.Get(key); !ok || err != nil {
		t.Errorf("underlying get: ok=%v err=%v, want hit", ok, err)
	}
	if WriteOnly(nil) != nil {
		t.Error("WriteOnly(nil) should stay nil")
	}
}

func TestParseEntryName(t *testing.T) {
	cases := []struct {
		name string
		key  Key
		ok   bool
	}{
		{"0123456789abcdef-7.json", Key{"0123456789abcdef", 7}, true},
		{"exp:fig10a-12.json", Key{"exp:fig10a", 12}, true},
		{tmpPrefix + "12345", Key{}, false},
		{"noseed.json", Key{}, false},
		{"0123456789abcdef-7.txt", Key{}, false},
		{"-7.json", Key{}, false},
	}
	for _, c := range cases {
		key, ok := parseEntryName(c.name)
		if ok != c.ok || key != c.key {
			t.Errorf("parseEntryName(%q) = %v, %v; want %v, %v", c.name, key, ok, c.key, c.ok)
		}
	}
}

// backdate rewinds an entry file's mtime so retention tests can age
// entries without sleeping.
func backdate(t *testing.T, fs *FS, key Key, age time.Duration) {
	t.Helper()
	old := time.Now().Add(-age)
	if err := os.Chtimes(fs.path(key), old, old); err != nil {
		t.Fatal(err)
	}
}

func TestGCWithMaxAge(t *testing.T) {
	fs := openTest(t)
	oldKey := Key{Hash: "aaaa304958aabbcc", Seed: 1}
	newKey := Key{Hash: "bbbb304958aabbcc", Seed: 2}
	for _, k := range []Key{oldKey, newKey} {
		if err := fs.Put(k, testResult(k.Seed)); err != nil {
			t.Fatal(err)
		}
	}
	backdate(t, fs, oldKey, 96*time.Hour)

	rep, err := fs.GCWith(GCOptions{MaxAge: 72 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedExpired != 1 || rep.Kept != 1 {
		t.Fatalf("report %+v, want 1 expired / 1 kept", rep)
	}
	if rep.ReclaimedBytes <= 0 {
		t.Error("expired entry reclaimed no bytes")
	}
	if _, ok, _ := fs.Get(oldKey); ok {
		t.Error("expired entry still served")
	}
	if _, ok, err := fs.Get(newKey); err != nil || !ok {
		t.Errorf("fresh entry lost (ok=%v err=%v)", ok, err)
	}
}

func TestGCWithMaxBytesEvictsOldestFirst(t *testing.T) {
	fs := openTest(t)
	keys := []Key{
		{Hash: "aaaa304958aabbcc", Seed: 1},
		{Hash: "bbbb304958aabbcc", Seed: 2},
		{Hash: "cccc304958aabbcc", Seed: 3},
	}
	var each int64
	for i, k := range keys {
		if err := fs.Put(k, testResult(k.Seed)); err != nil {
			t.Fatal(err)
		}
		// Strictly increasing ages: keys[0] oldest.
		backdate(t, fs, k, time.Duration(len(keys)-i)*time.Hour)
		info, err := os.Stat(fs.path(k))
		if err != nil {
			t.Fatal(err)
		}
		each = info.Size()
	}

	// Budget for exactly two entries: the oldest one must go.
	rep, err := fs.GCWith(GCOptions{MaxBytes: 2 * each})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedOverBudget != 1 || rep.Kept != 2 {
		t.Fatalf("report %+v, want 1 over-budget / 2 kept", rep)
	}
	if _, ok, _ := fs.Get(keys[0]); ok {
		t.Error("oldest entry survived a budget that fits only two")
	}
	for _, k := range keys[1:] {
		if _, ok, err := fs.Get(k); err != nil || !ok {
			t.Errorf("entry %v evicted out of order (ok=%v err=%v)", k, ok, err)
		}
	}

	// A budget everything fits under removes nothing.
	rep, err = fs.GCWith(GCOptions{MaxBytes: 100 * each})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedOverBudget != 0 || rep.Kept != 2 {
		t.Fatalf("no-op budget report %+v", rep)
	}
}

func TestGCWithZeroOptionsIsPlainGC(t *testing.T) {
	fs := openTest(t)
	key := Key{Hash: "aaaa304958aabbcc", Seed: 9}
	if err := fs.Put(key, testResult(9)); err != nil {
		t.Fatal(err)
	}
	backdate(t, fs, key, 1000*time.Hour)
	rep, err := fs.GC()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RemovedExpired != 0 || rep.RemovedOverBudget != 0 || rep.Kept != 1 {
		t.Fatalf("plain GC applied retention: %+v", rep)
	}
}
