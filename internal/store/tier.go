package store

// Tier counters: how the remote-store path degraded (or didn't) during
// a run. The retry backend and the replica cache each publish their
// half; TierStats is the merged snapshot the sweep timing lines and
// /v1/stats report. Counters describe wall-clock behavior only — output
// bytes are identical whatever these say, by the determinism contract.

// RemoteStats counts the retry/breaker layer's view of a remote store.
type RemoteStats struct {
	// Attempts is every HTTP attempt issued (first tries and retries).
	Attempts int64 `json:"attempts"`
	// Retries is attempts beyond the first for an operation.
	Retries int64 `json:"retries"`
	// Transient counts failed attempts worth retrying: transport
	// errors, timeouts, 5xx.
	Transient int64 `json:"transient"`
	// Permanent counts failures retrying cannot fix: 4xx responses.
	// (Corrupt envelopes are counted above this layer, by whoever
	// verifies the bytes.)
	Permanent int64 `json:"permanent"`
	// BreakerOpens counts closed→open transitions: each is one degraded
	// span during which the remote was presumed dead.
	BreakerOpens int64 `json:"breaker_opens"`
	// FastFails counts operations rejected while the circuit was open,
	// without contacting the remote.
	FastFails int64 `json:"fast_fails"`
	// State is the breaker state at snapshot time: closed, open, or
	// half-open.
	State string `json:"state"`
}

// ReplicaStats counts the read-through replica cache's activity.
type ReplicaStats struct {
	// LocalHits are reads served from the local cache with no network.
	LocalHits int64 `json:"local_hits"`
	// RemoteFills are remote hits verified and persisted locally.
	RemoteFills int64 `json:"remote_fills"`
	// RemoteMisses are clean misses on both tiers.
	RemoteMisses int64 `json:"remote_misses"`
	// CorruptRemote counts remote responses that failed envelope
	// verification and were rejected without caching.
	CorruptRemote int64 `json:"corrupt_remote"`
	// LocalPuts are writes persisted to the local cache.
	LocalPuts int64 `json:"local_puts"`
	// FlushOK / FlushErrors / FlushDropped account the async upstream
	// flush queue: successful pushes, failed pushes (the entry stays
	// local; `store sync` reconciles), and writes dropped because the
	// queue was full.
	FlushOK      int64 `json:"flush_ok"`
	FlushErrors  int64 `json:"flush_errors"`
	FlushDropped int64 `json:"flush_dropped"`
	// FlushPending is the queue depth at snapshot time.
	FlushPending int64 `json:"flush_pending"`
}

// TierStats is the merged remote-path snapshot a store exposes.
type TierStats struct {
	Remote  *RemoteStats  `json:"remote,omitempty"`
	Replica *ReplicaStats `json:"replica,omitempty"`
}

// TierStatter is implemented by stores with a remote path worth
// reporting on (Remote, ReplicaStore, RetryBackend). The engine
// snapshots it after a stream drains; serve includes it in /v1/stats.
type TierStatter interface {
	TierStats() TierStats
}
