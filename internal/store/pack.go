package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// PackReport summarizes one per-file → packed migration.
type PackReport struct {
	// Packed counts entries appended to segments (and their per-file
	// originals removed); AlreadyPacked entries the segment corpus
	// already held (their per-file duplicates are removed too).
	Packed        int `json:"packed"`
	AlreadyPacked int `json:"already_packed,omitempty"`
	// Skipped counts per-file entries that failed envelope verification
	// and were left in place for `store gc` to deal with.
	Skipped int `json:"skipped,omitempty"`
	// Bytes is the payload volume migrated; Segments the segment count
	// after the migration sealed.
	Bytes    int64     `json:"bytes"`
	Segments int       `json:"segments"`
	Problems []Problem `json:"problems,omitempty"`
}

// Pack migrates a per-file corpus into the packed segment layout, in
// place: every verifying entry is appended to segments under
// dir/segments (envelope bytes copied verbatim, so checksums and the
// byte-identity contract survive untouched) and its per-file original
// removed; entries that fail verification stay where they are and are
// reported. Pack is idempotent and crash-resumable — the per-file
// entry is removed only after its bytes are in a segment, the packed
// Put deduplicates, and a re-run finishes whatever an interrupted one
// left (including a corpus that is already fully packed: a no-op).
func Pack(dir string) (*PackReport, error) {
	fsStore, err := Open(dir)
	if err != nil {
		return nil, err
	}
	packed, err := OpenPackedWith(dir, PackedOptions{DisableAutoCompact: true})
	if err != nil {
		return nil, err
	}
	defer packed.Close()

	rep := &PackReport{}
	// FS.List ignores segment files and sidecars (their names are not
	// entry names), so listing the root of a half-packed corpus sees
	// exactly the entries still to migrate.
	entries, err := fsStore.List()
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		path := fsStore.path(e.Key)
		data, _, err := fsStore.GetObject(e.Key)
		if err == nil {
			_, err = decodeEnvelope(e.Key, data)
		}
		if err != nil {
			rep.Skipped++
			rep.Problems = append(rep.Problems, Problem{Path: path, Err: err.Error()})
			continue
		}
		packed.mu.RLock()
		_, dup := packed.index[e.Key]
		packed.mu.RUnlock()
		if dup {
			rep.AlreadyPacked++
		} else {
			if err := packed.PutObject(e.Key, data); err != nil {
				return nil, err
			}
			rep.Packed++
			rep.Bytes += int64(len(data))
		}
		// The segment holds the bytes (or already did); the per-file
		// original is now a duplicate.
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("store: pack: %w", err)
		}
	}
	removeEmptyShards(dir)
	if err := packed.Close(); err != nil {
		return nil, err
	}
	packed.mu.RLock()
	rep.Segments = len(packed.segs)
	packed.mu.RUnlock()
	return rep, nil
}

// removeEmptyShards clears out the two-hex-character shard directories
// the per-file layout leaves behind once their entries migrate. Best
// effort: a non-empty directory (a skipped corrupt entry, a foreign
// file) simply stays.
func removeEmptyShards(dir string) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range des {
		if de.IsDir() && de.Name() != SegmentsDirName {
			os.Remove(filepath.Join(dir, de.Name()))
		}
	}
}
