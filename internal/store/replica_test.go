package store

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// memBackend is an in-memory remote corpus with fault switches and
// operation counters — the test double for a `serve -share` process.
type memBackend struct {
	mu      sync.Mutex
	objects map[Key][]byte
	gets    int
	puts    int
	lists   int
	getErr  error
	putErr  error
	listErr error
}

func newMemBackend() *memBackend { return &memBackend{objects: map[Key][]byte{}} }

func (m *memBackend) GetObject(key Key) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gets++
	if m.getErr != nil {
		return nil, false, m.getErr
	}
	data, ok := m.objects[key]
	return data, ok, nil
}

func (m *memBackend) PutObject(key Key, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts++
	if m.putErr != nil {
		return m.putErr
	}
	m.objects[key] = append([]byte(nil), data...)
	return nil
}

func (m *memBackend) ListObjects() ([]Entry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lists++
	if m.listErr != nil {
		return nil, m.listErr
	}
	out := make([]Entry, 0, len(m.objects))
	for k, v := range m.objects {
		out = append(out, Entry{Key: k, Size: int64(len(v))})
	}
	sortEntries(out)
	return out, nil
}

func (m *memBackend) getCalls() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gets
}

func (m *memBackend) has(key Key) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.objects[key]
	return ok
}

func (m *memBackend) setPutErr(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.putErr = err
}

func replicaKey(seed int64) Key {
	return Key{Hash: "0123456789abcdef", Seed: seed}
}

func seedRemote(t *testing.T, m *memBackend, seed int64) Key {
	t.Helper()
	key := replicaKey(seed)
	data, err := EncodeEnvelope(key, testResult(seed))
	if err != nil {
		t.Fatal(err)
	}
	m.objects[key] = data
	return key
}

func openTestReplica(t *testing.T, remote Backend) *ReplicaStore {
	t.Helper()
	r, err := OpenReplica(t.TempDir(), remote, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestReplicaReadThroughFillsThenServesLocally(t *testing.T) {
	mb := newMemBackend()
	key := seedRemote(t, mb, 1)
	r := openTestReplica(t, mb)

	res, ok, err := r.Get(key)
	if err != nil || !ok || res == nil {
		t.Fatalf("read-through get: ok=%v err=%v", ok, err)
	}
	if calls := mb.getCalls(); calls != 1 {
		t.Fatalf("first get made %d remote calls, want 1", calls)
	}
	// The verified envelope is now local: the second read must not
	// touch the network.
	if _, ok, err := r.Get(key); err != nil || !ok {
		t.Fatalf("cached get: ok=%v err=%v", ok, err)
	}
	if calls := mb.getCalls(); calls != 1 {
		t.Fatalf("cached get made a remote call (%d total)", calls)
	}
	s := r.Stats()
	if s.RemoteFills != 1 || s.LocalHits != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReplicaRemoteMissIsClean(t *testing.T) {
	mb := newMemBackend()
	r := openTestReplica(t, mb)
	_, ok, err := r.Get(replicaKey(9))
	if err != nil || ok {
		t.Fatalf("miss: ok=%v err=%v", ok, err)
	}
	if s := r.Stats(); s.RemoteMisses != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReplicaNeverCachesCorruptRemoteBytes(t *testing.T) {
	mb := newMemBackend()
	key := seedRemote(t, mb, 1)
	mb.objects[key][len(mb.objects[key])/2] ^= 0x01 // byzantine remote
	r := openTestReplica(t, mb)

	if _, ok, err := r.Get(key); err == nil || ok {
		t.Fatalf("corrupt remote bytes served: ok=%v err=%v", ok, err)
	}
	if _, ok, err := r.Local().GetObject(key); err != nil || ok {
		t.Fatalf("corrupt bytes reached the cache: ok=%v err=%v", ok, err)
	}
	s := r.Stats()
	if s.CorruptRemote != 1 || s.RemoteFills != 0 {
		t.Fatalf("stats: %+v", s)
	}
	// The cache stays verifiably clean.
	rep, err := r.Local().Verify()
	if err != nil || len(rep.Problems) != 0 {
		t.Fatalf("cache verify after corrupt fetch: %+v err=%v", rep, err)
	}
}

func TestReplicaWritesLocallyAndFlushesUpstream(t *testing.T) {
	mb := newMemBackend()
	r := openTestReplica(t, mb)
	key := replicaKey(3)
	if err := r.Put(key, testResult(3)); err != nil {
		t.Fatal(err)
	}
	// The local write is durable immediately.
	if _, ok, err := r.Local().GetObject(key); err != nil || !ok {
		t.Fatalf("local tier after put: ok=%v err=%v", ok, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if !mb.has(key) {
		t.Fatal("flush did not reach the remote")
	}
	if s := r.Stats(); s.LocalPuts != 1 || s.FlushOK != 1 || s.FlushErrors != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReplicaFlushFailureStaysLocalAndSyncRecovers(t *testing.T) {
	mb := newMemBackend()
	mb.setPutErr(errors.New("remote down"))
	r := openTestReplica(t, mb)
	key := replicaKey(4)
	if err := r.Put(key, testResult(4)); err != nil {
		t.Fatalf("a dead remote must not fail local writes: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if s := r.Stats(); s.FlushErrors != 1 || s.FlushOK != 0 {
		t.Fatalf("stats after failed flush: %+v", s)
	}
	if mb.has(key) {
		t.Fatal("failed flush still wrote upstream")
	}

	// The remote heals; Sync reconciles the difference.
	mb.setPutErr(nil)
	rep, err := r.Sync(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pushed != 1 || rep.PushErrors != 0 {
		t.Fatalf("sync report: %+v", rep)
	}
	if !mb.has(key) {
		t.Fatal("sync did not push the local entry")
	}
	// Re-running is a no-op: the remote already has everything.
	rep, err = r.Sync(ctx)
	if err != nil || rep.Pushed != 0 {
		t.Fatalf("second sync: %+v err=%v", rep, err)
	}
}

func TestReplicaListUnionAndDeadRemoteDegrade(t *testing.T) {
	mb := newMemBackend()
	remoteKey := seedRemote(t, mb, 1)
	r := openTestReplica(t, mb)
	localKey := replicaKey(2)
	if err := r.Put(localKey, testResult(2)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	ls, err := r.ListObjects()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 2 {
		t.Fatalf("union listing has %d entries, want 2: %+v", len(ls), ls)
	}

	// A dead remote degrades the listing to the local tier.
	mb.mu.Lock()
	mb.listErr = errors.New("remote down")
	mb.mu.Unlock()
	ls, err = r.ListObjects()
	if err != nil {
		t.Fatalf("listing with a dead remote must degrade, not fail: %v", err)
	}
	// remoteKey was never read, so it lives only upstream; the degraded
	// listing holds just the local entry.
	if len(ls) != 1 || ls[0].Key != localKey || ls[0].Key == remoteKey {
		t.Fatalf("degraded listing: %+v, want just the local entry", ls)
	}
}

func TestReplicaTierStatsMergeRemoteCounters(t *testing.T) {
	mb := newMemBackend()
	rb := NewRetryBackend(mb, RetryOptions{Disable: true})
	r, err := OpenReplica(t.TempDir(), rb, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.Get(replicaKey(1)); err != nil {
		t.Fatal(err)
	}
	ts := r.TierStats()
	if ts.Replica == nil || ts.Replica.RemoteMisses != 1 {
		t.Fatalf("replica tier stats: %+v", ts.Replica)
	}
	if ts.Remote == nil || ts.Remote.Attempts != 1 {
		t.Fatalf("remote tier stats: %+v", ts.Remote)
	}
}

func TestWriteOnlyReplicaKeepsLifecycleAndTierStats(t *testing.T) {
	mb := newMemBackend()
	key := seedRemote(t, mb, 1)
	r, err := OpenReplica(t.TempDir(), mb, ReplicaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := WriteOnly(r)
	// The veil hides reads...
	if _, ok, err := w.Get(key); err != nil || ok {
		t.Fatalf("write-only get: ok=%v err=%v", ok, err)
	}
	if _, ok, err := GetContext(context.Background(), w, key); err != nil || ok {
		t.Fatalf("write-only context get: ok=%v err=%v", ok, err)
	}
	// ...but not the tier counters or the lifecycle.
	if _, ok := w.(TierStatter); !ok {
		t.Fatal("write-only replica lost TierStats")
	}
	if err := CloseStore(w); err != nil {
		t.Fatal(err)
	}
	// Close reached the wrapped replica (idempotently): the flush
	// worker is gone and a second close is a no-op.
	if err := r.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
