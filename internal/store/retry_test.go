package store

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// scriptBackend pops one scripted error per operation; nil means the
// operation succeeds with fixed data. Exhausting the script succeeds.
type scriptBackend struct {
	mu    sync.Mutex
	errs  []error
	calls int
	data  []byte
}

func (s *scriptBackend) next() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if len(s.errs) == 0 {
		return nil
	}
	err := s.errs[0]
	s.errs = s.errs[1:]
	return err
}

func (s *scriptBackend) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *scriptBackend) GetObject(Key) ([]byte, bool, error) {
	if err := s.next(); err != nil {
		return nil, false, err
	}
	return s.data, true, nil
}

func (s *scriptBackend) PutObject(Key, []byte) error { return s.next() }

func (s *scriptBackend) ListObjects() ([]Entry, error) {
	if err := s.next(); err != nil {
		return nil, err
	}
	return []Entry{}, nil
}

var errFlaky = errors.New("connection reset by chaos")

// fastRetry is a policy with sleeps short enough for tests.
func fastRetry(maxAttempts int) RetryOptions {
	return RetryOptions{
		MaxAttempts: maxAttempts,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	}
}

func TestRetryRecoversFromTransient(t *testing.T) {
	sb := &scriptBackend{errs: []error{errFlaky, errFlaky}, data: []byte("x")}
	rb := NewRetryBackend(sb, fastRetry(3))
	data, ok, err := rb.GetObject(Key{Hash: "h", Seed: 1})
	if err != nil || !ok || string(data) != "x" {
		t.Fatalf("get after transient failures: data=%q ok=%v err=%v", data, ok, err)
	}
	s := rb.Stats()
	if s.Attempts != 3 || s.Retries != 2 || s.Transient != 2 || s.Permanent != 0 {
		t.Fatalf("stats after recovery: %+v", s)
	}
	if s.State != "closed" {
		t.Fatalf("breaker state %q, want closed", s.State)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	sb := &scriptBackend{errs: []error{errFlaky, errFlaky, errFlaky, errFlaky}}
	rb := NewRetryBackend(sb, fastRetry(2))
	if err := rb.PutObject(Key{Hash: "h", Seed: 1}, []byte("x")); !errors.Is(err, errFlaky) {
		t.Fatalf("put error %v, want the transport error", err)
	}
	if sb.callCount() != 2 {
		t.Fatalf("%d attempts, want exactly MaxAttempts=2", sb.callCount())
	}
}

func TestRetryPermanentErrorIsNotRetried(t *testing.T) {
	bad := statusErr(400, "store: remote get: 400 Bad Request")
	sb := &scriptBackend{errs: []error{bad, nil}}
	rb := NewRetryBackend(sb, fastRetry(3))
	_, _, err := rb.GetObject(Key{Hash: "h", Seed: 1})
	if err == nil || !IsPermanentError(err) {
		t.Fatalf("4xx must surface as permanent, got %v", err)
	}
	if sb.callCount() != 1 {
		t.Fatalf("%d attempts for a 4xx, want 1 (no retry)", sb.callCount())
	}
	s := rb.Stats()
	if s.Permanent != 1 || s.Retries != 0 {
		t.Fatalf("stats after 4xx: %+v", s)
	}
}

// breakerBackend always fails with a transient error.
type breakerBackend struct{ scriptBackend }

func (b *breakerBackend) GetObject(Key) ([]byte, bool, error) {
	b.mu.Lock()
	b.calls++
	b.mu.Unlock()
	return nil, false, errFlaky
}

func TestBreakerOpensFastFailsAndProbes(t *testing.T) {
	sb := &breakerBackend{}
	opts := fastRetry(1)
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = time.Hour
	rb := NewRetryBackend(sb, opts)
	clock := time.Unix(1000, 0)
	rb.now = func() time.Time { return clock }

	key := Key{Hash: "h", Seed: 1}
	for i := 0; i < 2; i++ {
		if _, _, err := rb.GetObject(key); !errors.Is(err, errFlaky) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if s := rb.Stats(); s.State != "open" || s.BreakerOpens != 1 {
		t.Fatalf("after %d consecutive failures: %+v", opts.BreakerThreshold, s)
	}

	// Open circuit: the remote is not contacted at all.
	before := sb.callCount()
	if _, _, err := rb.GetObject(key); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("open-circuit get: %v, want ErrUnavailable", err)
	}
	if sb.callCount() != before {
		t.Fatal("open circuit still contacted the backend")
	}
	if s := rb.Stats(); s.FastFails != 1 {
		t.Fatalf("stats after fast-fail: %+v", s)
	}

	// Cooldown over: exactly one probe goes through; its failure re-arms
	// the cooldown without a second breaker-open span.
	clock = clock.Add(2 * time.Hour)
	before = sb.callCount()
	if _, _, err := rb.GetObject(key); !errors.Is(err, errFlaky) {
		t.Fatalf("probe: %v", err)
	}
	if sb.callCount() != before+1 {
		t.Fatalf("probe made %d calls, want 1", sb.callCount()-before)
	}
	if s := rb.Stats(); s.State != "open" || s.BreakerOpens != 1 {
		t.Fatalf("after failed probe: %+v", s)
	}

	// A successful probe closes the circuit.
	clock = clock.Add(2 * time.Hour)
	good := &scriptBackend{data: []byte("x")}
	rb.b = good
	if _, _, err := rb.GetObject(key); err != nil {
		t.Fatalf("probe against healthy backend: %v", err)
	}
	if s := rb.Stats(); s.State != "closed" {
		t.Fatalf("after successful probe: %+v", s)
	}
}

func TestRetryHonorsCallerContext(t *testing.T) {
	sb := &breakerBackend{}
	opts := RetryOptions{MaxAttempts: 5, BackoffBase: time.Hour, BackoffMax: time.Hour}
	rb := NewRetryBackend(sb, opts)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, _, err := rb.GetObjectContext(ctx, Key{Hash: "h", Seed: 1})
	if err == nil {
		t.Fatal("cancelled get succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("cancelled get took %v; backoff ignored the context", time.Since(start))
	}
}

func TestRetryDisableIsSingleAttempt(t *testing.T) {
	sb := &scriptBackend{errs: []error{errFlaky, nil}}
	rb := NewRetryBackend(sb, RetryOptions{Disable: true})
	if _, _, err := rb.GetObject(Key{Hash: "h", Seed: 1}); !errors.Is(err, errFlaky) {
		t.Fatalf("disabled retry: %v, want the raw error", err)
	}
	if sb.callCount() != 1 {
		t.Fatalf("%d attempts with Disable, want 1", sb.callCount())
	}
}

func TestIsPermanentErrorClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errFlaky, false},
		{statusErr(503, "unavailable"), false},
		{statusErr(500, "boom"), false},
		{statusErr(404, "missing"), true}, // 404s are clean misses upstream; as errors they are permanent
		{statusErr(400, "bad"), true},
		{markCorrupt(fmt.Errorf("store: entry x: checksum mismatch")), true},
		{fmt.Errorf("wrapping: %w", markCorrupt(errors.New("inner"))), true},
		{context.DeadlineExceeded, false},
	}
	for i, c := range cases {
		if got := IsPermanentError(c.err); got != c.want {
			t.Errorf("case %d (%v): IsPermanentError=%v, want %v", i, c.err, got, c.want)
		}
	}
}
