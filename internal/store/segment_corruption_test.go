package store

// Segment-layer counterpart of corruption_test.go: every class of
// on-disk damage a packed corpus can suffer — torn tails, bit flips
// mid-segment, missing or stale sidecars — must degrade to explicit
// errors or clean rebuilds, never to wrong results, and the scanner
// must hold its invariants on arbitrary bytes (FuzzSegmentDecode).

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// jsonUnmarshal keeps the fuzz invariant readable.
func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }

// buildSegmentImage materializes a real packed segment holding n
// fixture entries and returns its bytes and the keys, newest store
// first sealed via Close.
func buildSegmentImage(t *testing.T, n int) ([]byte, []Key) {
	t.Helper()
	dir := t.TempDir()
	p, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fillPacked(t, p, n)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, SegmentsDirName, "00000001.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return data, keys
}

func TestScanSegmentRejectsBadMagic(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("short"), []byte("NOTSEG00rest of file")} {
		if _, err := ScanSegment(data); err == nil {
			t.Errorf("ScanSegment(%q...) accepted a non-segment", data)
		}
	}
}

func TestScanSegmentCleanImage(t *testing.T) {
	data, keys := buildSegmentImage(t, 3)
	sc, err := ScanSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Entries) != 3 || sc.Corrupt != 0 || sc.Torn {
		t.Fatalf("clean segment scan: %+v", sc)
	}
	if sc.ValidBytes != int64(len(data)) {
		t.Fatalf("ValidBytes %d, want full %d", sc.ValidBytes, len(data))
	}
	for i, e := range sc.Entries {
		if e.Key != keys[i] {
			t.Errorf("entry %d key %v, want %v", i, e.Key, keys[i])
		}
	}
}

// TestScanSegmentTruncatedTail: cutting the file mid-record loses only
// the torn record — everything before it still indexes.
func TestScanSegmentTruncatedTail(t *testing.T) {
	data, _ := buildSegmentImage(t, 3)
	sc, err := ScanSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	last := sc.Entries[2]
	cut := last.Offset + last.Length/2
	sc2, err := ScanSegment(data[:cut])
	if err != nil {
		t.Fatal(err)
	}
	if len(sc2.Entries) != 2 || !sc2.Torn {
		t.Fatalf("truncated scan: %+v, want 2 entries and Torn", sc2)
	}
	if sc2.ValidBytes != last.Offset {
		t.Fatalf("ValidBytes %d, want torn tail to start at %d", sc2.ValidBytes, last.Offset)
	}
}

// TestScanSegmentBitFlipMidSegment: a flipped byte inside one record's
// payload kills exactly that record; framing resynchronizes and the
// rest of the segment serves.
func TestScanSegmentBitFlipMidSegment(t *testing.T) {
	data, keys := buildSegmentImage(t, 3)
	sc, err := ScanSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	mid := sc.Entries[1]
	data[mid.Offset+mid.Length/2] ^= 0x40
	sc2, err := ScanSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc2.Entries) != 2 || sc2.Corrupt != 1 || sc2.Torn {
		t.Fatalf("bit-flip scan: %+v, want 2 entries + 1 corrupt", sc2)
	}
	if sc2.Entries[0].Key != keys[0] || sc2.Entries[1].Key != keys[2] {
		t.Fatalf("wrong survivors: %+v", sc2.Entries)
	}
	if sc2.ValidBytes != int64(len(data)) {
		t.Fatalf("a framed corrupt record must still count as covered: ValidBytes %d of %d",
			sc2.ValidBytes, len(data))
	}
}

// TestScanSegmentGarbageFrame: a length prefix pointing past the end
// (or zeroed) ends the scan as a torn tail instead of allocating or
// misreading.
func TestScanSegmentGarbageFrame(t *testing.T) {
	data, _ := buildSegmentImage(t, 2)
	sc, _ := ScanSegment(data)
	first := sc.Entries[0]
	for _, frame := range []uint32{0, 0xffffffff, uint32(len(data))} {
		img := append([]byte(nil), data...)
		binary.BigEndian.PutUint32(img[first.Offset+first.Length:], frame)
		sc2, err := ScanSegment(img)
		if err != nil {
			t.Fatal(err)
		}
		if len(sc2.Entries) != 1 || !sc2.Torn {
			t.Fatalf("frame %#x: scan %+v, want 1 entry and Torn", frame, sc2)
		}
	}
}

// TestPackedTruncatedTailReopens is the store-level version of the
// torn-tail row: a segment cut mid-record reopens, serves the whole
// records, and the file is truncated back to its valid prefix.
func TestPackedTruncatedTailReopens(t *testing.T) {
	dir := t.TempDir()
	p, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fillPacked(t, p, 3)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, SegmentsDirName, "00000001.seg")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ScanSegment(data)
	if err != nil {
		t.Fatal(err)
	}
	last := sc.Entries[2]
	if err := os.Truncate(segPath, last.Offset+last.Length/2); err != nil {
		t.Fatal(err)
	}

	p2, err := OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for _, key := range keys[:2] {
		if _, ok, err := p2.Get(key); !ok || err != nil {
			t.Fatalf("whole record %s lost to a torn tail: ok=%v err=%v", key, ok, err)
		}
	}
	if _, ok, _ := p2.Get(keys[2]); ok {
		t.Fatal("torn record served")
	}
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != last.Offset {
		t.Fatalf("segment not truncated to its valid prefix: %d, want %d", info.Size(), last.Offset)
	}
}

// FuzzSegmentDecode: ScanSegment on arbitrary bytes must never panic
// and must keep its structural invariants — entries in bounds and in
// order, ValidBytes within the image, every indexed record decodable.
func FuzzSegmentDecode(f *testing.F) {
	data, _ := buildSegmentImageF(f, 3)
	f.Add(data)                          // a clean real segment
	f.Add(data[:len(data)-7])            // torn tail
	f.Add(data[:len(segMagic)])          // empty segment
	f.Add([]byte(segMagic + "\x00\x00")) // short frame
	flipped := append([]byte(nil), data...)
	flipped[len(data)/2] ^= 0x01
	f.Add(flipped)
	f.Add([]byte("not a segment at all"))

	f.Fuzz(func(t *testing.T, img []byte) {
		sc, err := ScanSegment(img)
		if err != nil {
			return
		}
		if sc.ValidBytes < int64(len(segMagic)) || sc.ValidBytes > int64(len(img)) {
			t.Fatalf("ValidBytes %d outside [%d,%d]", sc.ValidBytes, len(segMagic), len(img))
		}
		prevEnd := int64(len(segMagic))
		for i, e := range sc.Entries {
			if e.Offset < prevEnd || e.Length <= 4 || e.Offset+e.Length > sc.ValidBytes {
				t.Fatalf("entry %d out of bounds: %+v (prev end %d, valid %d)", i, e, prevEnd, sc.ValidBytes)
			}
			prevEnd = e.Offset + e.Length
			// Exactly what ScanSegment promises for an indexed record:
			// the envelope parses, identifies e.Key, and checksums.
			payload := img[e.Offset+4 : e.Offset+e.Length]
			var env envelope
			if err := jsonUnmarshal(payload, &env); err != nil {
				t.Fatalf("indexed record %d does not parse: %v", i, err)
			}
			if (Key{Hash: env.Hash, Seed: env.Seed}) != e.Key {
				t.Fatalf("indexed record %d identifies %s-%d, scanned as %v", i, env.Hash, env.Seed, e.Key)
			}
			if checksumOf(env.Result) != env.Checksum {
				t.Fatalf("indexed record %d fails its checksum", i)
			}
		}
		if sc.Torn && sc.ValidBytes == int64(len(img)) {
			t.Fatal("Torn with nothing past ValidBytes")
		}
	})
}

// buildSegmentImageF is buildSegmentImage for fuzz seeding (testing.F
// instead of *testing.T).
func buildSegmentImageF(f *testing.F, n int) ([]byte, []Key) {
	f.Helper()
	dir := f.TempDir()
	p, err := OpenPacked(dir)
	if err != nil {
		f.Fatal(err)
	}
	var keys []Key
	for i := 1; i <= n; i++ {
		key := Key{Hash: "0123456789abcdef", Seed: int64(i)}
		if err := p.Put(key, testResult(key.Seed)); err != nil {
			f.Fatal(err)
		}
		keys = append(keys, key)
	}
	if err := p.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, SegmentsDirName, "00000001.seg"))
	if err != nil {
		f.Fatal(err)
	}
	return data, keys
}

// TestSidecarRoundTripAndStaleness: the sidecar read/write pair and its
// staleness rules.
func TestSidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "00000001.idx")
	idx := &segmentIndex{
		Version: segIndexVersion, CoveredBytes: 100,
		Entries: []segmentIndexEntry{{Hash: "abc", Seed: 1, Off: 8, Len: 92, TS: 1700000000}},
	}
	if err := writeSidecar(path, idx); err != nil {
		t.Fatal(err)
	}
	got, ok := readSidecar(path, 100)
	if !ok || len(got.Entries) != 1 || got.Entries[0].TS != 1700000000 {
		t.Fatalf("sidecar round-trip: ok=%v got=%+v", ok, got)
	}
	// Staleness and damage all mean "rescan".
	if _, ok := readSidecar(path, 150); ok {
		t.Fatal("size-mismatched sidecar accepted")
	}
	if _, ok := readSidecar(filepath.Join(dir, "missing.idx"), 100); ok {
		t.Fatal("missing sidecar accepted")
	}
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := readSidecar(path, 100); ok {
		t.Fatal("unparseable sidecar accepted")
	}
	// Out-of-bounds entries are rejected even with matching size.
	bad := &segmentIndex{Version: segIndexVersion, CoveredBytes: 100,
		Entries: []segmentIndexEntry{{Hash: "abc", Seed: 1, Off: 90, Len: 20, TS: 1}}}
	if err := writeSidecar(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, ok := readSidecar(path, 100); ok {
		t.Fatal("out-of-bounds sidecar entry accepted")
	}
	// No temporaries left behind by the atomic writes.
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if !bytes.HasSuffix([]byte(de.Name()), []byte(".idx")) {
			t.Fatalf("leftover file %s", de.Name())
		}
	}
}
