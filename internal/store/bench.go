package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"ichannels/internal/scenario"
	"ichannels/internal/stats"
)

// BenchOptions sizes a store benchmark run (`store bench`).
type BenchOptions struct {
	// Entries is the synthetic corpus size to write per layout.
	Entries int
	// Reads is how many warm reads to sample (0 = Entries, capped).
	Reads int
	// Dir is the scratch root; one subdirectory per layout is created
	// under it (a temp dir when empty).
	Dir string
	// Layouts selects which layouts to measure (nil = both).
	Layouts []Layout
}

// BenchLayoutReport is one layout's measurements.
type BenchLayoutReport struct {
	Layout  Layout `json:"layout"`
	Entries int    `json:"entries"`
	// Bytes is the corpus size on disk after the fill.
	Bytes int64 `json:"bytes"`
	// Write throughput over the fill.
	WriteNSPerOp       float64 `json:"write_ns_per_op"`
	WriteEntriesPerSec float64 `json:"write_entries_per_sec"`
	// Warm-read latency over Reads random (deterministically sampled)
	// gets against the filled, reopened corpus.
	Reads       int     `json:"reads"`
	ReadNSPerOp float64 `json:"read_ns_per_op"`
	ReadP95NS   float64 `json:"read_p95_ns"`
	// GCNS is one full zero-options gc pass over the corpus.
	GCNS float64 `json:"gc_ns"`
}

// BenchReport is the full `store bench` result.
type BenchReport struct {
	Entries int                 `json:"entries"`
	Layouts []BenchLayoutReport `json:"layouts"`
}

// benchResult builds the i-th synthetic result. Small and realistic:
// the per-entry envelope lands in the few-hundred-byte range a real
// sweep cell produces.
func benchResult(hash string, i int) *scenario.Result {
	return &scenario.Result{
		Role: scenario.RoleChannel, Processor: "Cannon Lake", Kind: scenario.KindCores,
		Hash: hash, Seed: 1,
		Bits: 4, SentBits: []int{1, 0, 1, 1}, DecodedBits: []int{1, 0, 1, 1},
		ThroughputBPS: 3000.25 + float64(i%97), BER: float64(i%8) / 64,
		ElapsedSimUS: 1234.5 + float64(i%13),
		Extra:        map[string]float64{"calibration_gap_cycles": float64(4200 + i%29)},
	}
}

// benchKey derives the i-th synthetic key: distinct hashes spread
// across shards the way real scenario hashes are.
func benchKey(i int) Key {
	sum := sha256.Sum256([]byte(strconv.Itoa(i)))
	return Key{Hash: hex.EncodeToString(sum[:8]), Seed: 1}
}

// openBenchStore opens a fresh store of the given layout at dir.
func openBenchStore(layout Layout, dir string) (DirStore, error) {
	if layout == LayoutPacked {
		return OpenPacked(dir)
	}
	return Open(dir)
}

// RunBench fills a synthetic corpus per layout and measures write
// throughput, warm-read latency (after a reopen, so the packed layout
// pays its index load), and one gc pass — the numbers behind the
// packed-vs-per-file crossover claim. The scratch corpora are removed
// afterwards.
func RunBench(opts BenchOptions) (*BenchReport, error) {
	if opts.Entries <= 0 {
		return nil, fmt.Errorf("store: bench: need a positive entry count")
	}
	layouts := opts.Layouts
	if len(layouts) == 0 {
		layouts = []Layout{LayoutPerFile, LayoutPacked}
	}
	reads := opts.Reads
	if reads <= 0 {
		reads = opts.Entries
	}
	if reads > opts.Entries {
		reads = opts.Entries
	}
	root := opts.Dir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "ichannels-store-bench-")
		if err != nil {
			return nil, fmt.Errorf("store: bench: %w", err)
		}
		defer os.RemoveAll(root)
	}

	rep := &BenchReport{Entries: opts.Entries}
	for _, layout := range layouts {
		lr, err := benchLayout(layout, filepath.Join(root, string(layout)), opts.Entries, reads)
		if err != nil {
			return nil, err
		}
		rep.Layouts = append(rep.Layouts, *lr)
	}
	return rep, nil
}

func benchLayout(layout Layout, dir string, entries, reads int) (*BenchLayoutReport, error) {
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("store: bench: %w", err)
	}
	st, err := openBenchStore(layout, dir)
	if err != nil {
		return nil, err
	}
	lr := &BenchLayoutReport{Layout: layout, Entries: entries, Reads: reads}

	// Phase 1: fill.
	start := time.Now()
	for i := 0; i < entries; i++ {
		if err := st.Put(benchKey(i), benchResult(benchKey(i).Hash, i)); err != nil {
			st.Close()
			return nil, err
		}
	}
	if err := st.Close(); err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	lr.WriteNSPerOp = float64(elapsed.Nanoseconds()) / float64(entries)
	lr.WriteEntriesPerSec = float64(entries) / elapsed.Seconds()

	// Phase 2: warm reads against a reopened corpus — the resume/serve
	// access pattern, including the open cost amortized to zero.
	st, err = openBenchStore(layout, dir)
	if err != nil {
		return nil, err
	}
	ls, err := st.List()
	if err != nil {
		st.Close()
		return nil, err
	}
	for _, e := range ls {
		lr.Bytes += e.Size
	}
	lat := make([]float64, 0, reads)
	// Deterministic LCG sampling: identical key sequence per layout.
	rng := uint64(1)
	for i := 0; i < reads; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		key := benchKey(int(rng % uint64(entries)))
		t0 := time.Now()
		_, ok, err := st.Get(key)
		if err != nil || !ok {
			st.Close()
			return nil, fmt.Errorf("store: bench: warm read %s: ok=%v err=%v", key, ok, err)
		}
		lat = append(lat, float64(time.Since(t0).Nanoseconds()))
	}
	sum := stats.Summarize(lat)
	lr.ReadNSPerOp = sum.Mean
	lr.ReadP95NS = sum.P95

	// Phase 3: one zero-options gc pass (integrity sweep + compaction
	// on packed, integrity sweep on per-file).
	t0 := time.Now()
	if _, err := st.GC(); err != nil {
		st.Close()
		return nil, err
	}
	lr.GCNS = float64(time.Since(t0).Nanoseconds())
	return lr, st.Close()
}
