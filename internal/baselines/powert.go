package baselines

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/soc"
	"ichannels/internal/stats"
	"ichannels/internal/units"
)

// PowerT models Khatamifard et al.'s POWERT channel: the sender modulates
// the package's power/thermal state (here: die-stage junction temperature)
// by running a power virus, and the receiver polls the thermal sensor. The
// bit period rides the die thermal time constant (~15 ms), giving the
// ~122 b/s the paper quotes — still 24× below IChannels.
type PowerT struct {
	m *soc.Machine
	// BitPeriod is one bit window.
	BitPeriod units.Duration
	// HeatFraction is the fraction of the window the sender heats for a
	// 1 bit.
	HeatFraction float64
	// PollInterval is the receiver's thermal-sensor polling period.
	PollInterval units.Duration

	threshold float64
}

// NewPowerT builds the channel with sender on core 0 and receiver polling
// from core 1.
func NewPowerT(m *soc.Machine) (*PowerT, error) {
	if m == nil {
		return nil, fmt.Errorf("baselines: nil machine")
	}
	if len(m.Cores) < 2 {
		return nil, fmt.Errorf("baselines: PowerT needs two cores")
	}
	return &PowerT{
		m:            m,
		BitPeriod:    8200 * units.Microsecond, // ≈122 b/s
		HeatFraction: 0.6,
		PollInterval: 500 * units.Microsecond,
	}, nil
}

// ptSender runs the heater burst for 1 bits.
type ptSender struct {
	pt   *PowerT
	base units.Time
	bits []int
	idx  int
	sent bool
}

func (a *ptSender) Name() string { return "powert.sender" }

func (a *ptSender) Next(env *soc.Env, prev *soc.Result) soc.Action {
	if !a.sent {
		if a.idx >= len(a.bits) {
			return soc.Stop()
		}
		a.sent = true
		return soc.SpinUntil(a.base.Add(units.Duration(a.idx) * a.pt.BitPeriod))
	}
	bit := a.bits[a.idx]
	a.idx++
	a.sent = false
	if bit == 1 {
		heat := units.Duration(float64(a.pt.BitPeriod) * a.pt.HeatFraction)
		// Size the virus loop to roughly fill the heating window.
		freq := env.M.PMU.Frequency()
		k := isa.Loop256Heavy
		iters := int64(heat.Seconds()*float64(freq)/float64(k.UopsPerIter)) + 1
		return soc.Exec(k, iters)
	}
	return a.Next(env, nil)
}

// ptReceiver polls the thermal sensor through each window and records the
// start→end temperature delta.
type ptReceiver struct {
	pt      *PowerT
	base    units.Time
	windows int
	idx     int
	polls   int
	tStart  float64
	tMax    float64
	deltas  []float64
	phase   int // 0 wait-window, 1 polling
}

func (a *ptReceiver) Name() string { return "powert.receiver" }

func (a *ptReceiver) Next(env *soc.Env, prev *soc.Result) soc.Action {
	switch a.phase {
	case 0:
		if a.idx >= a.windows {
			return soc.Stop()
		}
		a.phase = 1
		a.polls = 0
		return soc.SpinUntil(a.base.Add(units.Duration(a.idx) * a.pt.BitPeriod))
	case 1:
		temp := float64(env.M.ProbeScalars().Temp)
		if a.polls == 0 {
			a.tStart = temp
			a.tMax = temp
		} else if temp > a.tMax {
			a.tMax = temp
		}
		a.polls++
		windowEnd := a.base.Add(units.Duration(a.idx+1) * a.pt.BitPeriod)
		nextPoll := env.Now().Add(a.pt.PollInterval)
		if nextPoll.Add(a.pt.PollInterval/2) >= windowEnd {
			// Last poll of the window: decode on the peak rise over the
			// window (robust to tail-end cooling).
			a.deltas = append(a.deltas, a.tMax-a.tStart)
			a.idx++
			a.phase = 0
			return a.Next(env, nil)
		}
		return soc.IdleFor(a.pt.PollInterval)
	default:
		panic("baselines: powert receiver in invalid phase")
	}
}

func (p *PowerT) run(bits []int) ([]float64, error) {
	base := p.m.Now().Add(50 * units.Microsecond)
	snd := &ptSender{pt: p, base: base, bits: bits}
	rcv := &ptReceiver{pt: p, base: base, windows: len(bits)}
	if _, err := p.m.Bind(0, 0, snd); err != nil {
		return nil, err
	}
	if _, err := p.m.Bind(1, 0, rcv); err != nil {
		return nil, err
	}
	end := base.Add(units.Duration(len(bits)) * p.BitPeriod).Add(time500us)
	p.m.RunUntil(end)
	if len(rcv.deltas) != len(bits) {
		return nil, fmt.Errorf("baselines: powert measured %d of %d bits", len(rcv.deltas), len(bits))
	}
	return rcv.deltas, nil
}

// Calibrate learns the heat/no-heat decision threshold.
func (p *PowerT) Calibrate(pairs int) error {
	if pairs <= 0 {
		return fmt.Errorf("baselines: pairs must be positive")
	}
	bits := make([]int, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		bits = append(bits, 1, 0)
	}
	deltas, err := p.run(bits)
	if err != nil {
		return err
	}
	var ones, zeros []float64
	for i, d := range deltas {
		if bits[i] == 1 {
			ones = append(ones, d)
		} else {
			zeros = append(zeros, d)
		}
	}
	mo, mz := stats.Summarize(ones).Mean, stats.Summarize(zeros).Mean
	if mo <= mz {
		return fmt.Errorf("baselines: powert calibration found no thermal contrast (1→%g°C, 0→%g°C)", mo, mz)
	}
	p.threshold = (mo + mz) / 2
	return nil
}

// Transmit sends bits (1 bit per window) and decodes them.
func (p *PowerT) Transmit(bits []int) (*Result, error) {
	if err := validBits(bits); err != nil {
		return nil, err
	}
	if p.threshold == 0 {
		return nil, fmt.Errorf("baselines: powert not calibrated")
	}
	deltas, err := p.run(bits)
	if err != nil {
		return nil, err
	}
	decoded := make([]int, len(deltas))
	for i, d := range deltas {
		if d > p.threshold {
			decoded[i] = 1
		}
	}
	return finishResult("PowerT", bits, decoded, units.Duration(len(bits))*p.BitPeriod)
}
