package baselines

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/soc"
	"ichannels/internal/units"
)

// NetSpectre models the paper's comparison point for IccThreadCovert: the
// NetSpectre AVX-based gadget (§3, §6.2). The sender leaks one bit per
// transaction by either executing an AVX2 instruction (bit 1) or not
// (bit 0); the receiver then times its own AVX2 loop. A set bit leaves
// the voltage pre-ramped, so the measurement is fast; a clear bit makes
// the measurement pay the full throttling period. Single-level decoding →
// one bit per reset-time cycle, half of IccThreadCovert's rate.
type NetSpectre struct {
	m *soc.Machine
	// SlotPeriod is the transaction cycle (reset-time + send window).
	SlotPeriod units.Duration
	// TriggerIters sizes the bit-1 AVX2 burst; it must outlast the
	// voltage ramp so the later measurement sees a settled guardband.
	TriggerIters int64
	// MeasureIters sizes the timed AVX2 loop.
	MeasureIters int64

	threshold float64
	core      int
	slot      int
}

// NewNetSpectre builds the gadget on core 0 of m.
func NewNetSpectre(m *soc.Machine) (*NetSpectre, error) {
	if m == nil {
		return nil, fmt.Errorf("baselines: nil machine")
	}
	return &NetSpectre{
		m:            m,
		SlotPeriod:   m.Proc.LicenseHysteresis + 40*units.Microsecond,
		TriggerIters: 64,
		MeasureIters: 48,
	}, nil
}

// nsAgent drives one transmission of the NetSpectre gadget.
type nsAgent struct {
	ns       *NetSpectre
	base     units.Time
	bits     []int
	idx      int
	phase    int // 0 wait, 1 send, 2 awaiting-trigger, 3 awaiting-measure
	measures []int64
}

func (a *nsAgent) Name() string { return "netspectre" }

func (a *nsAgent) Next(env *soc.Env, prev *soc.Result) soc.Action {
	switch a.phase {
	case 0: // slot boundary
		if a.idx >= len(a.bits) {
			return soc.Stop()
		}
		a.phase = 1
		return soc.SpinUntil(a.base.Add(units.Duration(a.idx) * a.ns.SlotPeriod))
	case 1: // start of slot: trigger on bit 1, else measure directly
		bit := a.bits[a.idx]
		a.idx++
		if bit == 1 {
			// The leak gadget executes its AVX2 instruction(s).
			a.phase = 2
			return soc.Exec(isa.Loop256Heavy, a.ns.TriggerIters)
		}
		a.phase = 3
		return soc.Exec(isa.Loop256Heavy, a.ns.MeasureIters)
	case 2: // trigger finished: measure
		a.phase = 3
		return soc.Exec(isa.Loop256Heavy, a.ns.MeasureIters)
	case 3: // measurement finished: record and wait for the next slot
		a.measures = append(a.measures, prev.ElapsedTSC())
		a.phase = 0
		return a.Next(env, nil)
	default:
		panic("baselines: netspectre agent in invalid phase")
	}
}

// run transmits raw bits and returns per-bit measurement cycles.
func (n *NetSpectre) run(bits []int) ([]int64, error) {
	base := n.m.Now().Add(20 * units.Microsecond)
	agent := &nsAgent{ns: n, base: base, bits: bits,
		measures: make([]int64, 0, len(bits))}
	if _, err := n.m.Bind(n.core, n.slot, agent); err != nil {
		return nil, err
	}
	end := base.Add(units.Duration(len(bits)) * n.SlotPeriod).Add(100 * units.Microsecond)
	n.m.RunUntil(end)
	if len(agent.measures) != len(bits) {
		return nil, fmt.Errorf("baselines: netspectre measured %d of %d bits", len(agent.measures), len(bits))
	}
	return agent.measures, nil
}

// Calibrate learns the warm/cold decision threshold from n known 1/0
// transaction pairs.
func (n *NetSpectre) Calibrate(pairs int) error {
	if pairs <= 0 {
		return fmt.Errorf("baselines: pairs must be positive")
	}
	bits := make([]int, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		bits = append(bits, 1, 0)
	}
	measures, err := n.run(bits)
	if err != nil {
		return err
	}
	var warm, cold float64
	for i, m := range measures {
		if bits[i] == 1 {
			warm += float64(m)
		} else {
			cold += float64(m)
		}
	}
	warm /= float64(pairs)
	cold /= float64(pairs)
	if cold <= warm {
		return fmt.Errorf("baselines: netspectre calibration found no throttle contrast (warm=%g cold=%g)", warm, cold)
	}
	n.threshold = (warm + cold) / 2
	return nil
}

// Transmit sends bits (1 bit per transaction) and decodes them.
func (n *NetSpectre) Transmit(bits []int) (*Result, error) {
	if err := validBits(bits); err != nil {
		return nil, err
	}
	if n.threshold == 0 {
		return nil, fmt.Errorf("baselines: netspectre not calibrated")
	}
	measures, err := n.run(bits)
	if err != nil {
		return nil, err
	}
	decoded := make([]int, len(measures))
	for i, m := range measures {
		if float64(m) < n.threshold {
			decoded[i] = 1 // warm → AVX was executed → bit 1
		}
	}
	return finishResult("NetSpectre", bits, decoded, units.Duration(len(bits))*n.SlotPeriod)
}
