package baselines

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/soc"
	"ichannels/internal/stats"
	"ichannels/internal/units"
)

// TurboCC models Kalmbach et al.'s cross-core frequency covert channel:
// the sender executes PHIs at Turbo so the Iccmax/Vccmax protection drops
// the (package-wide) clock; the receiver times a scalar loop to detect the
// lower frequency. The bit period is dominated by the PMU's slow
// frequency-restore hysteresis (tens of milliseconds), which is why the
// paper measures TurboCC at 61 b/s — nearly 50× below IChannels (§6.2).
//
// The machine must be configured at a Turbo operating point where the
// sender's PHI class trips a protection limit (e.g. Cannon Lake at
// 3.1 GHz with a 512b_Heavy sender).
type TurboCC struct {
	m *soc.Machine
	// BitPeriod is one bit window; it must cover downshift, detection,
	// and frequency restoration.
	BitPeriod units.Duration
	// SenderIters sizes the PHI burst that trips the limit.
	SenderIters int64
	// MeasureIters sizes the receiver's scalar timing loop.
	MeasureIters int64
	// MeasureOffset places the measurement inside the bit window, after
	// the downshift has surely happened but before restoration.
	MeasureOffset units.Duration

	threshold float64
}

// NewTurboCC builds the channel with sender on core 0 and receiver on
// core 1.
func NewTurboCC(m *soc.Machine) (*TurboCC, error) {
	if m == nil {
		return nil, fmt.Errorf("baselines: nil machine")
	}
	if len(m.Cores) < 2 {
		return nil, fmt.Errorf("baselines: TurboCC needs two cores")
	}
	restore := m.Proc.FreqRestoreDelay
	return &TurboCC{
		m:             m,
		BitPeriod:     restore + 1400*units.Microsecond,
		SenderIters:   12000, // ≈1.7 ms of 512b_Heavy at ~1 UPC / 2.9 GHz
		MeasureIters:  2000,  // ≈130 µs scalar timing loop
		MeasureOffset: 4 * units.Millisecond,
	}, nil
}

// tcSender holds the PHI burst at each 1-bit window start.
type tcSender struct {
	tc   *TurboCC
	base units.Time
	bits []int
	idx  int
	sent bool
}

func (a *tcSender) Name() string { return "turbocc.sender" }

func (a *tcSender) Next(env *soc.Env, prev *soc.Result) soc.Action {
	if !a.sent {
		if a.idx >= len(a.bits) {
			return soc.Stop()
		}
		a.sent = true
		return soc.SpinUntil(a.base.Add(units.Duration(a.idx) * a.tc.BitPeriod))
	}
	bit := a.bits[a.idx]
	a.idx++
	a.sent = false
	if bit == 1 {
		k := isa.Loop512Heavy
		if !a.tc.m.Proc.HasAVX512 {
			k = isa.Loop256Heavy
		}
		return soc.Exec(k, a.tc.SenderIters)
	}
	// Bit 0: stay scalar; the clock keeps its Turbo bin.
	return a.Next(env, nil)
}

// tcReceiver times a scalar loop mid-window; it spins (stays busy)
// between measurements so the package's active-core count — and with it
// the current budget — stays constant.
type tcReceiver struct {
	tc       *TurboCC
	base     units.Time
	windows  int
	idx      int
	phase    int // 0 spin to offset, 1 measuring
	measures []int64
}

func (a *tcReceiver) Name() string { return "turbocc.receiver" }

func (a *tcReceiver) Next(env *soc.Env, prev *soc.Result) soc.Action {
	switch a.phase {
	case 0:
		if prev != nil && prev.Action.Kind == soc.ActExec {
			a.measures = append(a.measures, prev.ElapsedTSC())
		}
		if a.idx >= a.windows {
			return soc.Stop()
		}
		a.phase = 1
		return soc.SpinUntil(a.base.Add(units.Duration(a.idx)*a.tc.BitPeriod + a.tc.MeasureOffset))
	case 1:
		a.idx++
		a.phase = 0
		return soc.Exec(isa.Loop64b, a.tc.MeasureIters)
	default:
		panic("baselines: turbocc receiver in invalid phase")
	}
}

func (t *TurboCC) run(bits []int) ([]int64, error) {
	base := t.m.Now().Add(50 * units.Microsecond)
	snd := &tcSender{tc: t, base: base, bits: bits}
	rcv := &tcReceiver{tc: t, base: base, windows: len(bits),
		measures: make([]int64, 0, len(bits))}
	if _, err := t.m.Bind(0, 0, snd); err != nil {
		return nil, err
	}
	if _, err := t.m.Bind(1, 0, rcv); err != nil {
		return nil, err
	}
	end := base.Add(units.Duration(len(bits)) * t.BitPeriod).Add(time500us)
	t.m.RunUntil(end)
	if len(rcv.measures) != len(bits) {
		return nil, fmt.Errorf("baselines: turbocc measured %d of %d bits", len(rcv.measures), len(bits))
	}
	return rcv.measures, nil
}

const time500us = 500 * units.Microsecond

// Calibrate learns the fast/slow decision threshold.
func (t *TurboCC) Calibrate(pairs int) error {
	if pairs <= 0 {
		return fmt.Errorf("baselines: pairs must be positive")
	}
	bits := make([]int, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		bits = append(bits, 1, 0)
	}
	measures, err := t.run(bits)
	if err != nil {
		return err
	}
	var ones, zeros []float64
	for i, m := range measures {
		if bits[i] == 1 {
			ones = append(ones, float64(m))
		} else {
			zeros = append(zeros, float64(m))
		}
	}
	mo, mz := stats.Summarize(ones).Mean, stats.Summarize(zeros).Mean
	if mo <= mz {
		return fmt.Errorf("baselines: turbocc calibration found no frequency contrast (1→%g, 0→%g); is the machine at a Turbo operating point?", mo, mz)
	}
	t.threshold = (mo + mz) / 2
	return nil
}

// Transmit sends bits (1 bit per window) and decodes them.
func (t *TurboCC) Transmit(bits []int) (*Result, error) {
	if err := validBits(bits); err != nil {
		return nil, err
	}
	if t.threshold == 0 {
		return nil, fmt.Errorf("baselines: turbocc not calibrated")
	}
	measures, err := t.run(bits)
	if err != nil {
		return nil, err
	}
	decoded := make([]int, len(measures))
	for i, m := range measures {
		if float64(m) > t.threshold {
			decoded[i] = 1 // slower loop → lower frequency → PHI burst
		}
	}
	return finishResult("TurboCC", bits, decoded, units.Duration(len(bits))*t.BitPeriod)
}
