package baselines

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/soc"
	"ichannels/internal/stats"
	"ichannels/internal/units"
)

// DFScovert models Alagappan et al.'s governor-based covert channel: a
// kernel-privileged sender modulates the DVFS governor's target frequency
// (a sysfs write that the governor applies on its sampling period, tens of
// milliseconds), and the receiver senses the package frequency with a
// timed loop. Actuation latency limits it to ~20 b/s (paper Fig. 12(b)).
type DFScovert struct {
	m *soc.Machine
	// BitPeriod is one bit window (must cover governor latency, the
	// P-state transition, and detection).
	BitPeriod units.Duration
	// GovernorLatency is the delay between the sysfs write and the
	// PMU seeing the new requested frequency.
	GovernorLatency units.Duration
	// LowFreq/HighFreq are the two operating points the sender toggles.
	LowFreq, HighFreq units.Hertz
	// MeasureIters sizes the receiver's scalar timing loop.
	MeasureIters int64
	// MeasureOffset places the measurement inside the bit window.
	MeasureOffset units.Duration

	threshold float64
}

// NewDFScovert builds the channel: sender actuation is software-only (no
// core pinned); the receiver times loops on core 1.
func NewDFScovert(m *soc.Machine) (*DFScovert, error) {
	if m == nil {
		return nil, fmt.Errorf("baselines: nil machine")
	}
	if len(m.Cores) < 2 {
		return nil, fmt.Errorf("baselines: DFScovert needs two cores")
	}
	base := m.Proc.BaseFreq
	return &DFScovert{
		m:               m,
		BitPeriod:       50 * units.Millisecond,
		GovernorLatency: 10 * units.Millisecond,
		LowFreq:         base / 2,
		HighFreq:        base,
		MeasureIters:    2000,
		MeasureOffset:   35 * units.Millisecond,
	}, nil
}

// dfsSender issues one governor write per bit window.
type dfsSender struct {
	d    *DFScovert
	base units.Time
	bits []int
	idx  int
}

func (a *dfsSender) Name() string { return "dfscovert.sender" }

func (a *dfsSender) Next(env *soc.Env, prev *soc.Result) soc.Action {
	if prev != nil {
		// The spin to the window boundary completed: write the governor.
		bit := a.bits[a.idx]
		a.idx++
		target := a.d.HighFreq
		if bit == 1 {
			target = a.d.LowFreq
		}
		env.M.Q.After(a.d.GovernorLatency, "dfscovert.governor.apply", func(units.Time) {
			env.M.PMU.SetRequestedFrequency(target)
		})
	}
	if a.idx >= len(a.bits) {
		return soc.Stop()
	}
	return soc.SpinUntil(a.base.Add(units.Duration(a.idx) * a.d.BitPeriod))
}

// dfsReceiver times a scalar loop at the measurement offset of each
// window.
type dfsReceiver struct {
	d        *DFScovert
	base     units.Time
	windows  int
	idx      int
	phase    int
	measures []int64
}

func (a *dfsReceiver) Name() string { return "dfscovert.receiver" }

func (a *dfsReceiver) Next(env *soc.Env, prev *soc.Result) soc.Action {
	switch a.phase {
	case 0:
		if prev != nil && prev.Action.Kind == soc.ActExec {
			a.measures = append(a.measures, prev.ElapsedTSC())
		}
		if a.idx >= a.windows {
			return soc.Stop()
		}
		a.phase = 1
		return soc.SpinUntil(a.base.Add(units.Duration(a.idx)*a.d.BitPeriod + a.d.MeasureOffset))
	case 1:
		a.idx++
		a.phase = 0
		return soc.Exec(isa.Loop64b, a.d.MeasureIters)
	default:
		panic("baselines: dfscovert receiver in invalid phase")
	}
}

func (d *DFScovert) run(bits []int) ([]int64, error) {
	base := d.m.Now().Add(50 * units.Microsecond)
	snd := &dfsSender{d: d, base: base, bits: bits}
	rcv := &dfsReceiver{d: d, base: base, windows: len(bits),
		measures: make([]int64, 0, len(bits))}
	if _, err := d.m.Bind(0, 0, snd); err != nil {
		return nil, err
	}
	if _, err := d.m.Bind(1, 0, rcv); err != nil {
		return nil, err
	}
	end := base.Add(units.Duration(len(bits)) * d.BitPeriod).Add(time500us)
	d.m.RunUntil(end)
	// Restore the nominal operating point for whatever runs next.
	d.m.PMU.SetRequestedFrequency(d.HighFreq)
	d.m.RunFor(2 * units.Millisecond)
	if len(rcv.measures) != len(bits) {
		return nil, fmt.Errorf("baselines: dfscovert measured %d of %d bits", len(rcv.measures), len(bits))
	}
	return rcv.measures, nil
}

// Calibrate learns the fast/slow decision threshold.
func (d *DFScovert) Calibrate(pairs int) error {
	if pairs <= 0 {
		return fmt.Errorf("baselines: pairs must be positive")
	}
	bits := make([]int, 0, 2*pairs)
	for i := 0; i < pairs; i++ {
		bits = append(bits, 1, 0)
	}
	measures, err := d.run(bits)
	if err != nil {
		return err
	}
	var ones, zeros []float64
	for i, m := range measures {
		if bits[i] == 1 {
			ones = append(ones, float64(m))
		} else {
			zeros = append(zeros, float64(m))
		}
	}
	mo, mz := stats.Summarize(ones).Mean, stats.Summarize(zeros).Mean
	if mo <= mz {
		return fmt.Errorf("baselines: dfscovert calibration found no frequency contrast")
	}
	d.threshold = (mo + mz) / 2
	return nil
}

// Transmit sends bits (1 bit per window) and decodes them.
func (d *DFScovert) Transmit(bits []int) (*Result, error) {
	if err := validBits(bits); err != nil {
		return nil, err
	}
	if d.threshold == 0 {
		return nil, fmt.Errorf("baselines: dfscovert not calibrated")
	}
	measures, err := d.run(bits)
	if err != nil {
		return nil, err
	}
	decoded := make([]int, len(measures))
	for i, m := range measures {
		if float64(m) > d.threshold {
			decoded[i] = 1
		}
	}
	return finishResult("DFScovert", bits, decoded, units.Duration(len(bits))*d.BitPeriod)
}
