// Package baselines reimplements, on the same simulator substrate, the
// four covert channels the paper compares against (§6.2, Fig. 12,
// Table 2):
//
//   - NetSpectre [Schwarz+ ESORICS'19]: single-level AVX2 throttle
//     side-effect on the same hardware thread — 1 bit per transaction.
//   - TurboCC [Kalmbach+ '20]: cross-core Turbo-frequency modulation via
//     PHI licenses — bits take tens of milliseconds because frequency
//     restoration is on the PMU's slow hysteresis.
//   - DFScovert [Alagappan+ VLSI-SoC'17]: software DVFS governor
//     modulation — slower still (tens of ms per governor actuation).
//   - PowerT [Khatamifard+ HPCA'19]: thermal-state modulation — bits ride
//     the millisecond-scale die thermal time constant.
//
// Each baseline actually transmits bits through the simulated mechanism;
// throughput differences against IChannels emerge from mechanism latency,
// exactly as the paper argues.
package baselines

import (
	"fmt"

	"ichannels/internal/stats"
	"ichannels/internal/units"
)

// Result reports one baseline transmission.
type Result struct {
	Name          string
	SentBits      []int
	DecodedBits   []int
	BER           float64
	ThroughputBPS float64
	Elapsed       units.Duration
}

func finishResult(name string, sent, decoded []int, elapsed units.Duration) (*Result, error) {
	if len(decoded) != len(sent) {
		return nil, fmt.Errorf("baselines: %s decoded %d of %d bits (simulation ended early?)",
			name, len(decoded), len(sent))
	}
	r := &Result{
		Name:        name,
		SentBits:    sent,
		DecodedBits: decoded,
		BER:         stats.BER(sent, decoded),
		Elapsed:     elapsed,
	}
	if elapsed > 0 {
		r.ThroughputBPS = float64(len(sent)) / elapsed.Seconds()
	}
	return r, nil
}

func validBits(bits []int) error {
	if len(bits) == 0 {
		return fmt.Errorf("baselines: empty bit stream")
	}
	for i, b := range bits {
		if b&^1 != 0 {
			return fmt.Errorf("baselines: non-bit value %d at index %d", b, i)
		}
	}
	return nil
}
