package baselines

import (
	"math/rand"
	"testing"

	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/units"
)

func machine(t *testing.T, p model.Processor, freq units.Hertz, seed int64) *soc.Machine {
	t.Helper()
	m, err := soc.New(soc.Options{Processor: p, RequestedFreq: freq, Cores: 2, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomBits(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(2)
	}
	return out
}

func TestNetSpectre(t *testing.T) {
	m := machine(t, model.CoffeeLake9700K(), 3.6*units.GHz, 1)
	ns, err := NewNetSpectre(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Transmit([]int{1}); err == nil {
		t.Fatal("uncalibrated transmit accepted")
	}
	if err := ns.Calibrate(5); err != nil {
		t.Fatal(err)
	}
	res, err := ns.Transmit(randomBits(40, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.BER != 0 {
		t.Fatalf("noise-free NetSpectre BER = %g", res.BER)
	}
	// Paper Table 2: ≈1.5 kb/s — half of IccThreadCovert.
	if res.ThroughputBPS < 1300 || res.ThroughputBPS > 1600 {
		t.Fatalf("throughput %.0f b/s outside the paper band", res.ThroughputBPS)
	}
}

func TestTurboCC(t *testing.T) {
	// TurboCC requires a Turbo operating point where the PHI burst trips
	// Iccmax (Cannon Lake at 3.1 GHz with 512b_Heavy).
	m := machine(t, model.CannonLake8121U(), 3.1*units.GHz, 1)
	tc, err := NewTurboCC(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.Calibrate(3); err != nil {
		t.Fatal(err)
	}
	res, err := tc.Transmit(randomBits(12, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.BER != 0 {
		t.Fatalf("TurboCC BER = %g", res.BER)
	}
	// Paper: 61 b/s.
	if res.ThroughputBPS < 55 || res.ThroughputBPS > 67 {
		t.Fatalf("throughput %.1f b/s, want ≈61", res.ThroughputBPS)
	}
}

func TestTurboCCNeedsTurbo(t *testing.T) {
	// At a sub-Turbo operating point the protection never engages and
	// calibration must fail with a diagnosable error.
	m := machine(t, model.CannonLake8121U(), 1.4*units.GHz, 1)
	tc, err := NewTurboCC(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.Calibrate(2); err == nil {
		t.Fatal("TurboCC calibrated without a Turbo operating point")
	}
}

func TestDFScovert(t *testing.T) {
	m := machine(t, model.CannonLake8121U(), 2.2*units.GHz, 1)
	d, err := NewDFScovert(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Calibrate(3); err != nil {
		t.Fatal(err)
	}
	res, err := d.Transmit(randomBits(10, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.BER != 0 {
		t.Fatalf("DFScovert BER = %g", res.BER)
	}
	// Paper: 20 b/s.
	if res.ThroughputBPS < 18 || res.ThroughputBPS > 22 {
		t.Fatalf("throughput %.1f b/s, want ≈20", res.ThroughputBPS)
	}
}

func TestPowerT(t *testing.T) {
	m := machine(t, model.CannonLake8121U(), 2.2*units.GHz, 1)
	p, err := NewPowerT(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Calibrate(4); err != nil {
		t.Fatal(err)
	}
	res, err := p.Transmit(randomBits(24, 5))
	if err != nil {
		t.Fatal(err)
	}
	// The thermal channel is inherently noisier; the paper's point is
	// the ~24× throughput gap, not perfection.
	if res.BER > 0.1 {
		t.Fatalf("PowerT BER = %g", res.BER)
	}
	// Paper: 122 b/s.
	if res.ThroughputBPS < 115 || res.ThroughputBPS > 130 {
		t.Fatalf("throughput %.1f b/s, want ≈122", res.ThroughputBPS)
	}
}

func TestBaselineOrderingMatchesPaper(t *testing.T) {
	// Fig. 12(b): DFScovert < TurboCC < PowerT ≪ IChannels (~2.8 kb/s).
	dfs := 1.0 / (50e-3)   // by construction
	tcc := 1.0 / (16.4e-3) // ≈61
	pt := 1.0 / (8.2e-3)   // ≈122
	if !(dfs < tcc && tcc < pt && pt < 2800) {
		t.Fatal("mechanism-latency ordering broken")
	}
}

func TestValidBitsRejectsJunk(t *testing.T) {
	if err := validBits(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if err := validBits([]int{0, 1, 2}); err == nil {
		t.Fatal("non-bit accepted")
	}
	if err := validBits([]int{0, 1, 1}); err != nil {
		t.Fatalf("valid bits rejected: %v", err)
	}
}

func TestTwoCoreRequirement(t *testing.T) {
	m, err := soc.New(soc.Options{Processor: model.CannonLake8121U(), Cores: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTurboCC(m); err == nil {
		t.Fatal("TurboCC on one core accepted")
	}
	if _, err := NewDFScovert(m); err == nil {
		t.Fatal("DFScovert on one core accepted")
	}
	if _, err := NewPowerT(m); err == nil {
		t.Fatal("PowerT on one core accepted")
	}
}
