package mitigate

import (
	"testing"

	"ichannels/internal/core"
	"ichannels/internal/model"
)

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{
		None: "None", PerCoreVR: "Per-core VR",
		ImprovedThrottling: "Improved Throttling", SecureMode: "Secure-Mode",
	}
	for k, n := range names {
		if k.String() != n {
			t.Errorf("%d → %q", int(k), k.String())
		}
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind must still format")
	}
}

func TestOverheadsMatchTable1(t *testing.T) {
	if PerCoreVR.Overhead() != "11%-13% more area" {
		t.Error("per-core VR overhead")
	}
	if SecureMode.Overhead() != "4%-11% additional power" {
		t.Error("secure-mode overhead")
	}
	if ImprovedThrottling.Overhead() != "Some design effort" {
		t.Error("improved throttling overhead")
	}
}

func TestMachineOptionsApplyMitigations(t *testing.T) {
	p := model.CannonLake8121U()
	if !MachineOptions(PerCoreVR, p, 1).PerCoreVR {
		t.Error("per-core VR not applied")
	}
	if MachineOptions(PerCoreVR, p, 1).VROverride == nil {
		t.Error("per-core VR must swap in an LDO")
	}
	if !MachineOptions(ImprovedThrottling, p, 1).PerThreadThrottle {
		t.Error("improved throttling not applied")
	}
	if !MachineOptions(SecureMode, p, 1).SecureMode {
		t.Error("secure mode not applied")
	}
	base := MachineOptions(None, p, 1)
	if base.PerCoreVR || base.PerThreadThrottle || base.SecureMode {
		t.Error("baseline must not carry mitigations")
	}
}

func TestEvaluateValidation(t *testing.T) {
	p := model.CannonLake8121U()
	if _, err := Evaluate(None, core.SameThread, p, 0, 1); err == nil {
		t.Fatal("zero bits accepted")
	}
	if _, err := Evaluate(None, core.SameThread, p, 3, 1); err == nil {
		t.Fatal("odd bits accepted")
	}
}

// TestTable1Matrix verifies the paper's Table 1 verdicts hold on the
// attacked machines (the repository's central security claim).
func TestTable1Matrix(t *testing.T) {
	p := model.CannonLake8121U()
	assessments, err := EvaluateAll(p, 96, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := map[[2]string]Verdict{}
	for _, a := range assessments {
		got[[2]string{a.Mitigation.String(), a.Channel.String()}] = a.Verdict
	}
	want := map[[2]string]Verdict{
		{"None", "IccThreadCovert"}:                Unaffected,
		{"None", "IccSMTcovert"}:                   Unaffected,
		{"None", "IccCoresCovert"}:                 Unaffected,
		{"Per-core VR", "IccThreadCovert"}:         Partial,
		{"Per-core VR", "IccSMTcovert"}:            Partial,
		{"Per-core VR", "IccCoresCovert"}:          Mitigated,
		{"Improved Throttling", "IccThreadCovert"}: Unaffected,
		{"Improved Throttling", "IccSMTcovert"}:    Mitigated,
		{"Improved Throttling", "IccCoresCovert"}:  Unaffected,
		{"Secure-Mode", "IccThreadCovert"}:         Mitigated,
		{"Secure-Mode", "IccSMTcovert"}:            Mitigated,
		{"Secure-Mode", "IccCoresCovert"}:          Mitigated,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%v × %v: verdict %v, want %v", k[0], k[1], got[k], v)
		}
	}
}

func TestSMTSkippedOnNonSMTPart(t *testing.T) {
	p := model.CoffeeLake9700K()
	p.Cores = 2 // keep the matrix small
	assessments, err := EvaluateAll(p, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range assessments {
		if a.Channel == core.SMT {
			t.Fatal("SMT channel evaluated on a part without SMT")
		}
	}
}
