// Package mitigate implements and evaluates the paper's three proposed
// defenses (§7, Table 1):
//
//  1. Per-core voltage regulators (fast LDOs): each core handles its own
//     transitions, killing the cross-core serialization side-effect and
//     shrinking throttling periods below the noise floor (partial for the
//     same-thread and SMT channels).
//  2. Improved core throttling: only the PHI-issuing thread's uops are
//     blocked, so SMT siblings observe nothing.
//  3. Secure mode: the voltage is pinned at the worst-case power-virus
//     guardband, so PHI execution never triggers a transition at all.
//
// Evaluation builds a machine with the mitigation applied, attempts to
// calibrate and run each IChannels variant under realistic measurement
// noise, and grades the outcome.
package mitigate

import (
	"fmt"

	"ichannels/internal/core"
	"ichannels/internal/model"
	"ichannels/internal/pdn"
	"ichannels/internal/soc"
)

// Kind identifies a mitigation.
type Kind int

const (
	// None is the unmitigated baseline.
	None Kind = iota
	// PerCoreVR is mitigation 1: per-core LDO regulators.
	PerCoreVR
	// ImprovedThrottling is mitigation 2: per-thread PHI-only throttling.
	ImprovedThrottling
	// SecureMode is mitigation 3: worst-case guardband pinned.
	SecureMode
)

func (k Kind) String() string {
	switch k {
	case None:
		return "None"
	case PerCoreVR:
		return "Per-core VR"
	case ImprovedThrottling:
		return "Improved Throttling"
	case SecureMode:
		return "Secure-Mode"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Overhead describes the mitigation's cost, as reported in Table 1.
func (k Kind) Overhead() string {
	switch k {
	case PerCoreVR:
		return "11%-13% more area"
	case ImprovedThrottling:
		return "Some design effort"
	case SecureMode:
		return "4%-11% additional power"
	default:
		return "-"
	}
}

// Verdict grades a channel under a mitigation.
type Verdict int

const (
	// Unaffected: the channel still decodes essentially error-free.
	Unaffected Verdict = iota
	// Partial: the channel still exists but its error rate is
	// substantial (establishing it is "much more difficult", §7).
	Partial
	// Mitigated: the channel cannot be established (calibration finds
	// no usable signal, or decoding is at chance).
	Mitigated
)

func (v Verdict) String() string {
	switch v {
	case Unaffected:
		return "unaffected"
	case Partial:
		return "partial"
	case Mitigated:
		return "mitigated"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// MachineOptions returns the soc options that apply mitigation k to a
// processor, including the evaluation's standard noise environment (a
// modest interrupt load plus rdtsc jitter; the per-core-VR mitigation is
// only *partial* because its sub-µs residual TPs drown in exactly this
// noise).
func MachineOptions(k Kind, p model.Processor, seed int64) soc.Options {
	opts := soc.Options{
		Processor:       p,
		RequestedFreq:   p.BaseFreq,
		Noise:           soc.WithRates(300, 50),
		TSCJitterCycles: 150,
		Seed:            seed,
	}
	switch k {
	case PerCoreVR:
		ldo := pdn.DefaultConfig(pdn.LDO)
		opts.PerCoreVR = true
		opts.VROverride = &ldo
	case ImprovedThrottling:
		opts.PerThreadThrottle = true
	case SecureMode:
		opts.SecureMode = true
	}
	return opts
}

// Channel is the mitigation evaluator's view of a covert channel:
// calibrate a decision threshold (returning the observed signal gap in
// cycles), then transmit a bit stream. *core.Channel is adapted to it
// below; the channels package's families implement it via small wrappers
// in internal/scenario.
type Channel interface {
	Calibrate(reps int) (gap float64, err error)
	Transmit(bits []int) (ber, bps float64, err error)
}

// Factory builds a channel on an already-mitigated machine.
type Factory func(m *soc.Machine) (Channel, error)

// Assessment is the outcome of one (mitigation, channel) cell of Table 1.
type Assessment struct {
	Mitigation Kind
	Channel    core.Kind
	// ChannelName names the channel family (core.Kind strings for the
	// paper's variants, the scenario kind for registry channels).
	ChannelName string
	Verdict     Verdict
	// BER is the measured bit error rate (0.5 ≈ chance when the channel
	// is dead; reported even when calibration failed, as 0.5).
	BER float64
	// CalibrationGap is the worst cluster separation seen during
	// calibration, in cycles (negative = overlapping clusters).
	CalibrationGap float64
	// EffectiveBPS is the error-free goodput estimate:
	// raw rate × (1 − BER) for intuition (0 when mitigated).
	EffectiveBPS float64
}

// berPartial and berDead grade assessment outcomes.
const (
	berPartial = 0.03
	berDead    = 0.35
)

// Evaluate grades one channel against one mitigation, transmitting a
// pseudo-random payload of nBits bits.
func Evaluate(k Kind, chKind core.Kind, proc model.Processor, nBits int, seed int64) (*Assessment, error) {
	return EvaluatePooled(nil, k, chKind, proc, nBits, seed)
}

// EvaluatePooled is Evaluate drawing its machine from a pool (nil
// constructs one, exactly like Evaluate). The assessment is identical
// either way — recycled machines replay byte-identically — so the pool
// only changes wall-clock.
func EvaluatePooled(pool *soc.Pool, k Kind, chKind core.Kind, proc model.Processor, nBits int, seed int64) (*Assessment, error) {
	a, err := EvaluateChannelPooled(pool, k, chKind.String(), proc, nBits, 8, seed,
		func(m *soc.Machine) (Channel, error) {
			ch, err := core.New(m, core.DefaultParams(chKind, proc))
			if err != nil {
				return nil, err
			}
			return coreChannel{ch}, nil
		})
	if err != nil {
		return nil, err
	}
	a.Channel = chKind
	return a, nil
}

// coreChannel adapts *core.Channel (the paper's multi-level channel) to
// the evaluator's Channel interface.
type coreChannel struct{ ch *core.Channel }

func (c coreChannel) Calibrate(reps int) (float64, error) {
	cal, err := c.ch.Calibrate(reps)
	if err != nil {
		return 0, err
	}
	return cal.Gap, nil
}

func (c coreChannel) Transmit(bits []int) (float64, float64, error) {
	res, err := c.ch.Transmit(bits)
	if err != nil {
		return 0, 0, err
	}
	return res.BER, res.ThroughputBPS, nil
}

// EvaluateChannelPooled grades an arbitrary channel family against a
// mitigation: build the mitigated machine, construct the channel on it,
// calibrate (failure means the mitigation killed the signal), transmit a
// pseudo-random payload, and grade the error rate. The operation order —
// acquire, construct, calibrate, then draw payload bits from the machine's
// RNG — is part of the determinism contract: recycled machines replay it
// byte-identically.
func EvaluateChannelPooled(pool *soc.Pool, k Kind, name string, proc model.Processor, nBits, calibReps int, seed int64, f Factory) (*Assessment, error) {
	if nBits <= 0 || nBits%2 != 0 {
		return nil, fmt.Errorf("mitigate: nBits must be positive and even, got %d", nBits)
	}
	m, err := pool.Acquire(MachineOptions(k, proc, seed))
	if err != nil {
		return nil, err
	}
	defer pool.Release(m)
	ch, err := f(m)
	if err != nil {
		return nil, err
	}
	a := &Assessment{Mitigation: k, ChannelName: name}

	gap, err := ch.Calibrate(calibReps)
	if err != nil {
		// No usable signal at all.
		a.Verdict = Mitigated
		a.BER = 0.5
		return a, nil
	}
	a.CalibrationGap = gap

	bits := make([]int, nBits)
	rng := m.Rand()
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	ber, bps, err := ch.Transmit(bits)
	if err != nil {
		return nil, err
	}
	a.BER = ber
	switch {
	case ber >= berDead:
		a.Verdict = Mitigated
	case ber > berPartial:
		a.Verdict = Partial
		a.EffectiveBPS = bps * (1 - ber)
	default:
		a.Verdict = Unaffected
		a.EffectiveBPS = bps * (1 - ber)
	}
	return a, nil
}

// EvaluateAll builds the full Table 1 matrix for a processor: every
// mitigation × every channel (the SMT channel requires an SMT part).
func EvaluateAll(proc model.Processor, nBits int, seed int64) ([]*Assessment, error) {
	var out []*Assessment
	channels := []core.Kind{core.SameThread, core.SMT, core.CrossCore}
	// One pool across the matrix: the None and ImprovedThrottling and
	// SecureMode cells all share a machine shape, so most of the grid
	// reuses one SoC instead of rebuilding twelve.
	pool := soc.NewPool()
	for _, mk := range []Kind{None, PerCoreVR, ImprovedThrottling, SecureMode} {
		for _, ck := range channels {
			if ck == core.SMT && proc.SMTWays < 2 {
				continue
			}
			if ck == core.CrossCore && proc.Cores < 2 {
				continue
			}
			a, err := EvaluatePooled(pool, mk, ck, proc, nBits, seed+int64(mk)*17+int64(ck)*3)
			if err != nil {
				return nil, fmt.Errorf("mitigate: %v × %v: %w", mk, ck, err)
			}
			out = append(out, a)
		}
	}
	return out, nil
}
