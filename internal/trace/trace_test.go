package trace

import (
	"strings"
	"testing"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/units"
)

func machine(t *testing.T) *soc.Machine {
	t.Helper()
	m, err := soc.New(soc.Options{Processor: model.CannonLake8121U(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRecorderValidation(t *testing.T) {
	m := machine(t)
	if _, err := NewRecorder(nil, units.Microsecond); err == nil {
		t.Fatal("nil machine accepted")
	}
	if _, err := NewRecorder(m, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestRecorderSamplesAtInterval(t *testing.T) {
	m := machine(t)
	rec, err := NewRecorder(m, 10*units.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	rec.Start()
	m.RunFor(100 * units.Microsecond)
	rec.Stop()
	m.RunFor(100 * units.Microsecond)
	// [0, 100] µs inclusive at 10 µs → 11 samples; Stop must hold.
	if rec.Len() != 11 {
		t.Fatalf("samples = %d, want 11", rec.Len())
	}
	for i, s := range rec.Samples() {
		if want := units.Time(i) * units.Time(10*units.Microsecond); s.T != want {
			t.Fatalf("sample %d at %v, want %v", i, s.T, want)
		}
	}
}

func TestRecorderStartIdempotent(t *testing.T) {
	m := machine(t)
	rec, _ := NewRecorder(m, 10*units.Microsecond)
	rec.Start()
	rec.Start() // must not double-sample
	m.RunFor(20 * units.Microsecond)
	rec.Stop()
	if rec.Len() != 3 {
		t.Fatalf("samples = %d, want 3", rec.Len())
	}
}

func TestVccDeltaTracksGuardband(t *testing.T) {
	m := machine(t)
	rec, _ := NewRecorder(m, 2*units.Microsecond)
	rec.Start()
	agent := soc.AgentFunc{AgentName: "w", Fn: func(env *soc.Env, prev *soc.Result) soc.Action {
		if prev == nil {
			return soc.Exec(isa.Loop256Heavy, 200)
		}
		return soc.Stop()
	}}
	if _, err := m.Bind(0, 0, agent); err != nil {
		t.Fatal(err)
	}
	m.RunFor(100 * units.Microsecond)
	rec.Stop()
	// 256b_Heavy at 2.2 GHz: +18.7 mV guardband.
	max := rec.MaxVccDelta()
	if max < 18 || max > 20 {
		t.Fatalf("max Vcc delta = %.1f mV, want ≈18.7", max)
	}
	// The first sample is the baseline → delta 0.
	if rec.VccDelta()[0] != 0 {
		t.Fatal("first delta must be zero")
	}
}

func TestWriteCSV(t *testing.T) {
	m := machine(t)
	rec, _ := NewRecorder(m, 10*units.Microsecond)
	rec.Start()
	m.RunFor(30 * units.Microsecond)
	rec.Stop()
	var b strings.Builder
	if err := rec.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != rec.Len()+1 {
		t.Fatalf("CSV lines = %d, want %d", len(lines), rec.Len()+1)
	}
	if !strings.HasPrefix(lines[0], "t_us,vcc_v") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestEmptyRecorderHelpers(t *testing.T) {
	m := machine(t)
	rec, _ := NewRecorder(m, units.Microsecond)
	if rec.VccDelta() != nil {
		t.Fatal("empty delta must be nil")
	}
	if rec.MaxVccDelta() != 0 {
		t.Fatal("empty max delta must be 0")
	}
}
