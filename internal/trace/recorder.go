// Package trace records time series from a running machine, playing the
// role of the paper's NI-DAQ measurement card (§5.1): a periodic sampler of
// regulator voltage, supply current, frequency, temperature, and per-core
// IPC, at a configurable rate (the real card samples at up to 3.5 MS/s).
package trace

import (
	"fmt"
	"io"

	"ichannels/internal/soc"
	"ichannels/internal/units"
)

// Recorder samples a machine at a fixed interval.
type Recorder struct {
	m        *soc.Machine
	interval units.Duration
	samples  []soc.PowerState
	running  bool
}

// NewRecorder creates a recorder sampling every interval. It does not
// start sampling until Start is called.
func NewRecorder(m *soc.Machine, interval units.Duration) (*Recorder, error) {
	if m == nil {
		return nil, fmt.Errorf("trace: nil machine")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("trace: non-positive sampling interval %v", interval)
	}
	return &Recorder{m: m, interval: interval}, nil
}

// Start begins sampling at the current simulated time. Sampling continues
// until Stop.
func (r *Recorder) Start() {
	if r.running {
		return
	}
	r.running = true
	r.tick()
}

// Stop ends sampling after the current simulated instant.
func (r *Recorder) Stop() { r.running = false }

func (r *Recorder) tick() {
	if !r.running {
		return
	}
	r.samples = append(r.samples, r.m.Probe())
	r.m.Q.After(r.interval, "trace.sample", func(units.Time) { r.tick() })
}

// Samples returns the recorded series.
func (r *Recorder) Samples() []soc.PowerState { return r.samples }

// Len returns the number of samples recorded.
func (r *Recorder) Len() int { return len(r.samples) }

// VccDelta returns, for each sample, the regulator voltage in millivolts
// relative to the first sample — the quantity Fig. 6 plots.
func (r *Recorder) VccDelta() []float64 {
	if len(r.samples) == 0 {
		return nil
	}
	v0 := r.samples[0].Vcc
	out := make([]float64, len(r.samples))
	for i, s := range r.samples {
		out[i] = (s.Vcc - v0).Millivolts()
	}
	return out
}

// MaxVccDelta returns the maximum millivolt rise over the recording.
func (r *Recorder) MaxVccDelta() float64 {
	var max float64
	for _, d := range r.VccDelta() {
		if d > max {
			max = d
		}
	}
	return max
}

// WriteCSV emits the series as CSV (time in µs) for offline plotting.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_us,vcc_v,vccload_v,icc_a,power_w,freq_ghz,temp_c,ipc0,throttled0"); err != nil {
		return err
	}
	for _, s := range r.samples {
		ipc0, th0 := 0.0, 0
		if len(s.CoreIPC) > 0 {
			ipc0 = s.CoreIPC[0]
		}
		if len(s.Throttled) > 0 && s.Throttled[0] {
			th0 = 1
		}
		if _, err := fmt.Fprintf(w, "%.3f,%.6f,%.6f,%.3f,%.3f,%.3f,%.2f,%.3f,%d\n",
			s.T.Microseconds(), float64(s.Vcc), float64(s.Vccload), float64(s.Icc),
			float64(s.Power), s.Freq.GHzF(), float64(s.Temp), ipc0, th0); err != nil {
			return err
		}
	}
	return nil
}
