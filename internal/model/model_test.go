package model

import (
	"testing"

	"ichannels/internal/isa"
	"ichannels/internal/units"
)

func TestAllProfilesValidate(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Haswell", "Core i7-9700K", "Cannon Lake"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("Pentium III"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestPaperHardwareShapes(t *testing.T) {
	hsw, cfl, cnl := Haswell4770K(), CoffeeLake9700K(), CannonLake8121U()

	// Core/SMT topology from the paper's §5.1/§6.1.
	if cnl.Cores != 2 || cnl.SMTWays != 2 {
		t.Error("Cannon Lake is 2C/4T")
	}
	if cfl.SMTWays != 1 {
		t.Error("Coffee Lake i7-9700K has no SMT (the paper tests IccSMTcovert only on Cannon Lake)")
	}
	if hsw.SMTWays != 2 {
		t.Error("Haswell i7-4770K has SMT")
	}

	// Electrical limits from Fig. 7.
	if cfl.Limits.VccMax != 1.27 || cfl.Limits.IccMax != 100 {
		t.Error("Coffee Lake limits are Vccmax=1.27V / Iccmax=100A")
	}
	if cnl.Limits.VccMax != 1.15 || cnl.Limits.IccMax != 29 || cnl.Limits.TjMax != 100 {
		t.Error("Cannon Lake limits are Vccmax=1.15V / Iccmax=29A / Tjmax=100°C")
	}

	// Power gates: AVX gating arrived with Skylake (Fig. 8(b,c)).
	if p, _, _ := hsw.AVX256Gate.Gate(); p {
		t.Error("Haswell must not power-gate the AVX unit")
	}
	if p, _, _ := cfl.AVX256Gate.Gate(); !p {
		t.Error("Coffee Lake power-gates the AVX unit")
	}
	if p, _, _ := cnl.AVX512Gate.Gate(); !p {
		t.Error("Cannon Lake power-gates the AVX-512 unit")
	}
	if cfl.HasAVX512 {
		t.Error("i7-9700K has no AVX-512")
	}
	if !cnl.HasAVX512 {
		t.Error("i3-8121U has AVX-512")
	}

	// Reset-time (§4.1.2).
	for _, p := range All() {
		if p.LicenseHysteresis != 650*units.Microsecond {
			t.Errorf("%s: reset-time %v, want 650µs", p.Name, p.LicenseHysteresis)
		}
	}
}

func TestGuardbandCalibrationCoffeeLake(t *testing.T) {
	// Fig. 6(a): one core's AVX2 at 2 GHz steps Vcc by ≈8 mV; the second
	// core adds ≈9 mV.
	cfl := CoffeeLake9700K()
	one := cfl.Guardband.Single(isa.Vec256Heavy, 2*units.GHz).Millivolts()
	if one < 7.5 || one > 8.5 {
		t.Fatalf("single-core AVX2 guardband at 2 GHz = %.1f mV, want ≈8", one)
	}
	both := cfl.Guardband.Sum([]isa.Class{isa.Vec256Heavy, isa.Vec256Heavy}, 2*units.GHz).Millivolts()
	second := both - one
	if second < 8.5 || second > 9.5 {
		t.Fatalf("second core adds %.1f mV, want ≈9", second)
	}
}

func TestGuardbandCalibrationCannonLake(t *testing.T) {
	// Fig. 10(a): two cores need ≈1.8× the single-core guardband.
	cnl := CannonLake8121U()
	one := cnl.Guardband.Single(isa.Vec256Heavy, 1*units.GHz)
	two := cnl.Guardband.Sum([]isa.Class{isa.Vec256Heavy, isa.Vec256Heavy}, 1*units.GHz)
	if r := float64(two / one); r < 1.75 || r > 1.85 {
		t.Fatalf("two-core ratio %.2f, want ≈1.8", r)
	}
}

func TestVFCurveCalibration(t *testing.T) {
	// Fig. 7(a) desktop: AVX2 voltage demand exceeds Vccmax at 4.9 GHz
	// but not at 4.8 GHz.
	cfl := CoffeeLake9700K()
	demand := func(f units.Hertz) units.Volt {
		return cfl.VF.Voltage(f) + cfl.Guardband.Single(isa.Vec256Heavy, f)
	}
	if demand(4.9*units.GHz) <= cfl.Limits.VccMax {
		t.Fatal("AVX2 at 4.9 GHz must violate Vccmax")
	}
	if demand(4.8*units.GHz) > cfl.Limits.VccMax {
		t.Fatal("AVX2 at 4.8 GHz must fit under Vccmax")
	}
	if cfl.VF.Voltage(4.9*units.GHz) > cfl.Limits.VccMax {
		t.Fatal("non-AVX at 4.9 GHz must fit under Vccmax")
	}
}

func TestIccCalibrationCannonLake(t *testing.T) {
	// Fig. 7(a) mobile: two cores of AVX2 at 3.1 GHz draw over Iccmax
	// (29 A); at 2.2 GHz they fit comfortably.
	cnl := CannonLake8121U()
	icc := func(f units.Hertz) float64 {
		v := cnl.VF.Voltage(f) + cnl.Guardband.Sum([]isa.Class{isa.Vec256Heavy, isa.Vec256Heavy}, f)
		dyn := 2 * cnl.Cdyn.PerClass[isa.Vec256Heavy] * float64(v) * float64(f)
		return dyn + float64(cnl.Leakage.Current(v, 70))
	}
	if icc(3.1*units.GHz) <= 29 {
		t.Fatalf("2×AVX2 at 3.1 GHz draws %.1f A, must exceed 29", icc(3.1*units.GHz))
	}
	if icc(2.2*units.GHz) > 29 {
		t.Fatalf("2×AVX2 at 2.2 GHz draws %.1f A, must fit under 29", icc(2.2*units.GHz))
	}
}

func TestFIVRFasterThanMBVR(t *testing.T) {
	// Fig. 8(a): Haswell's FIVR ramps faster → shorter TP.
	hsw, cnl := Haswell4770K(), CannonLake8121U()
	if hsw.VR.SlewUp <= cnl.VR.SlewUp {
		t.Fatal("FIVR must slew faster than MBVR")
	}
}
