package model

import (
	"ichannels/internal/isa"
	"ichannels/internal/pdn"
	"ichannels/internal/pmu"
	"ichannels/internal/power"
	"ichannels/internal/units"
)

// XeonPlatinum8160 models a Skylake-SP server part (24C/48T, AVX-512),
// extending the reproduction to the paper's §6.4 claim that Intel *server*
// processors share the client cores' current-management behaviour ("Intel
// CPU core design is a single development project... a master superset
// core"). The guardband/throttle machinery mirrors the client parts;
// electrical capacity is server-class (shared VR per chip with a much
// higher Iccmax). Calibration here is extrapolated, not measured — the
// paper publishes no server figures — so experiments on this profile are
// labelled as extensions.
func XeonPlatinum8160() Processor {
	vr := pdn.DefaultConfig(pdn.MBVR)
	vr.SlewUp = units.Volt(1100)
	return Processor{
		Name:     "Xeon Platinum 8160",
		CodeName: "Skylake-SP",
		Cores:    24,
		SMTWays:  2,
		BaseFreq: 2.1 * units.GHz,
		MaxTurbo: 3.7 * units.GHz,
		TSCFreq:  2.1 * units.GHz,
		VR:       vr,
		RLL:      units.MilliOhm(0.9), // many-phase server VR: lower load-line
		Guardband: pmu.GuardbandTable{
			PerClassPerGHz: mv([isa.NumClasses]float64{0, 0.8, 2.6, 4.4, 6.3, 7.8, 10.0}),
			// Many cores: later contributors taper off.
			CoreWeights: []float64{1.0, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.7},
		},
		VF:      power.VFCurve{V0: 0.58, K1: 0.05, K2: 0.03},
		Limits:  power.Limits{IccMax: 255, VccMax: 1.23, TjMax: 96},
		Cdyn:    power.CdynModel{PerClass: nf([isa.NumClasses]float64{1.8, 2.2, 2.9, 3.8, 5.0, 6.1, 7.5}), Idle: 0.35e-9},
		Leakage: power.LeakageModel{IRef: 20, VRef: 0.95, TempCoeff: 0.008, TRef: 55},
		Thermal: ThermalSpec{Ambient: 38, RPkg: 0.12, TauPkg: 3 * units.Second, RDie: 0.05, TauDie: 25 * units.Millisecond},
		AVX256Gate: uarchGate{
			Present: true, WakeLatency: 11 * units.Nanosecond, IdleTimeout: 5 * units.Microsecond,
		},
		AVX512Gate: uarchGate{
			Present: true, WakeLatency: 13 * units.Nanosecond, IdleTimeout: 5 * units.Microsecond,
		},
		LicenseHysteresis: 650 * units.Microsecond,
		FreqRestoreDelay:  15 * units.Millisecond,
		PLLRelock:         7 * units.Microsecond,
		FreqStep:          100 * units.MHz,
		ThrottleFactor:    0.25,
		DeliverWidth:      4,
		HasAVX512:         true,
	}
}
