// Package model provides calibrated processor profiles for the three parts
// the paper characterizes: Haswell (Core i7-4770K), Coffee Lake (Core
// i7-9700K), and Cannon Lake (Core i3-8121U). Calibration targets are the
// paper's measured numbers: guardband steps from Fig. 6 and Fig. 10,
// throttling periods from Fig. 8(a), electrical limits from Fig. 7, power
// gate wake latencies from Fig. 8(b,c), and the 650 µs reset-time from
// §4.1.2. The integration tests in internal/exp assert the
// paper-vs-model values per figure.
package model

import (
	"fmt"
	"sync"

	"ichannels/internal/isa"
	"ichannels/internal/pdn"
	"ichannels/internal/pmu"
	"ichannels/internal/power"
	"ichannels/internal/units"
)

// ThermalSpec parametrizes the two-stage junction-temperature model:
// a slow package/heatsink stage and a fast die stage (the latter gives the
// millisecond response thermal covert channels rely on).
type ThermalSpec struct {
	Ambient units.Celsius
	RPkg    float64 // package thermal resistance, °C per watt
	TauPkg  units.Duration
	RDie    float64 // die-stage thermal resistance, °C per watt
	TauDie  units.Duration
}

// Processor is a complete calibrated description of one simulated part.
type Processor struct {
	Name     string // marketing name, e.g. "Core i7-9700K"
	CodeName string // microarchitecture, e.g. "Coffee Lake"

	Cores   int
	SMTWays int // hardware threads per core

	BaseFreq units.Hertz // nominal (non-Turbo) frequency
	MaxTurbo units.Hertz // single-core maximum Turbo frequency
	TSCFreq  units.Hertz // invariant TSC rate

	VR  pdn.Config
	RLL units.Ohm

	Guardband pmu.GuardbandTable
	VF        power.VFCurve
	Limits    power.Limits
	Cdyn      power.CdynModel
	Leakage   power.LeakageModel
	Thermal   ThermalSpec

	AVX256Gate uarchGate
	AVX512Gate uarchGate

	LicenseHysteresis units.Duration
	FreqRestoreDelay  units.Duration
	PLLRelock         units.Duration
	FreqStep          units.Hertz
	ThrottleFactor    float64
	DeliverWidth      int
	HasAVX512         bool
}

// uarchGate mirrors uarch.PowerGateConfig without importing uarch (the soc
// layer converts); model stays a pure-data package.
type uarchGate struct {
	Present     bool
	WakeLatency units.Duration
	IdleTimeout units.Duration
}

// Gate constructs the tuple used to build a uarch.PowerGateConfig.
func (g uarchGate) Gate() (present bool, wake, idle units.Duration) {
	return g.Present, g.WakeLatency, g.IdleTimeout
}

// Validate cross-checks the profile.
func (p Processor) Validate() error {
	if p.Cores <= 0 {
		return fmt.Errorf("model: %s: no cores", p.Name)
	}
	if p.SMTWays != 1 && p.SMTWays != 2 {
		return fmt.Errorf("model: %s: SMTWays must be 1 or 2", p.Name)
	}
	if p.BaseFreq <= 0 || p.MaxTurbo < p.BaseFreq || p.TSCFreq <= 0 {
		return fmt.Errorf("model: %s: inconsistent frequencies", p.Name)
	}
	if err := p.VR.Validate(); err != nil {
		return fmt.Errorf("model: %s: %w", p.Name, err)
	}
	if err := p.Guardband.Validate(); err != nil {
		return fmt.Errorf("model: %s: %w", p.Name, err)
	}
	if err := p.VF.Validate(); err != nil {
		return fmt.Errorf("model: %s: %w", p.Name, err)
	}
	if err := p.Limits.Validate(); err != nil {
		return fmt.Errorf("model: %s: %w", p.Name, err)
	}
	if err := p.Cdyn.Validate(); err != nil {
		return fmt.Errorf("model: %s: %w", p.Name, err)
	}
	if p.LicenseHysteresis <= 0 {
		return fmt.Errorf("model: %s: license hysteresis must be positive", p.Name)
	}
	if p.ThrottleFactor <= 0 || p.ThrottleFactor > 1 {
		return fmt.Errorf("model: %s: throttle factor outside (0,1]", p.Name)
	}
	if p.DeliverWidth <= 0 {
		return fmt.Errorf("model: %s: deliver width must be positive", p.Name)
	}
	return nil
}

// mv builds a guardband vector from per-class mV/GHz values.
func mv(vals [isa.NumClasses]float64) [isa.NumClasses]units.Volt {
	var out [isa.NumClasses]units.Volt
	for i, v := range vals {
		out[i] = units.MV(v)
	}
	return out
}

// nf builds a Cdyn vector from per-class nanofarad values.
func nf(vals [isa.NumClasses]float64) [isa.NumClasses]float64 {
	var out [isa.NumClasses]float64
	for i, v := range vals {
		out[i] = v * 1e-9
	}
	return out
}

// CannonLake8121U models the Core i3-8121U: 2 cores / 4 threads, MBVR
// power delivery, AVX-512 capable, Iccmax 29 A, Vccmax 1.15 V, Tjmax
// 100 °C (paper §5.1, Fig. 7). This is the paper's primary
// characterization vehicle (it is the only evaluated part with both SMT
// and AVX-512).
func CannonLake8121U() Processor {
	vr := pdn.DefaultConfig(pdn.MBVR)
	return Processor{
		Name:     "Core i3-8121U",
		CodeName: "Cannon Lake",
		Cores:    2,
		SMTWays:  2,
		BaseFreq: 2.2 * units.GHz,
		MaxTurbo: 3.1 * units.GHz,
		TSCFreq:  2.2 * units.GHz,
		VR:       vr,
		RLL:      units.MilliOhm(1.8),
		Guardband: pmu.GuardbandTable{
			// mV per GHz, single-core power virus; calibrated so the
			// Fig. 10(a) sweep at 1.0–1.4 GHz lands on the paper's
			// 0–22 µs band with the L1–L5 level structure.
			PerClassPerGHz: mv([isa.NumClasses]float64{0, 1.0, 3.5, 6.0, 8.5, 10.5, 13.5}),
			// Two cores need ≈1.8× the single-core step (Fig. 10a).
			CoreWeights: []float64{1.0, 0.8},
		},
		VF:      power.VFCurve{V0: 0.5465, K1: 0.0312, K2: 0.04233},
		Limits:  power.Limits{IccMax: 29, VccMax: 1.15, TjMax: 100},
		Cdyn:    power.CdynModel{PerClass: nf([isa.NumClasses]float64{1.4, 1.8, 2.4, 3.1, 4.3, 5.3, 6.5}), Idle: 0.25e-9},
		Leakage: power.LeakageModel{IRef: 2.0, VRef: 0.82, TempCoeff: 0.008, TRef: 50},
		Thermal: ThermalSpec{Ambient: 40, RPkg: 0.45, TauPkg: 1500 * units.Millisecond, RDie: 0.30, TauDie: 15 * units.Millisecond},
		AVX256Gate: uarchGate{
			Present: true, WakeLatency: 12 * units.Nanosecond, IdleTimeout: 5 * units.Microsecond,
		},
		AVX512Gate: uarchGate{
			Present: true, WakeLatency: 14 * units.Nanosecond, IdleTimeout: 5 * units.Microsecond,
		},
		LicenseHysteresis: 650 * units.Microsecond,
		FreqRestoreDelay:  15 * units.Millisecond,
		PLLRelock:         7 * units.Microsecond,
		FreqStep:          100 * units.MHz,
		ThrottleFactor:    0.25,
		DeliverWidth:      4,
		HasAVX512:         true,
	}
}

// CoffeeLake9700K models the Core i7-9700K: 8 cores, no SMT, MBVR,
// Iccmax 100 A, Vccmax 1.27 V (paper Fig. 7(a)). The guardband is
// calibrated to Fig. 6(a): one core's AVX2 phase raises Vcc by ≈8 mV at
// 2 GHz and the second core adds ≈9 mV more.
func CoffeeLake9700K() Processor {
	vr := pdn.DefaultConfig(pdn.MBVR)
	vr.SlewUp = units.Volt(1300) // 1.3 mV/µs: Fig. 8(a) TP ≈ 12 µs at 3.6 GHz
	return Processor{
		Name:     "Core i7-9700K",
		CodeName: "Coffee Lake",
		Cores:    8,
		SMTWays:  1,
		BaseFreq: 3.6 * units.GHz,
		MaxTurbo: 4.9 * units.GHz,
		TSCFreq:  3.6 * units.GHz,
		VR:       vr,
		RLL:      units.MilliOhm(1.6),
		Guardband: pmu.GuardbandTable{
			PerClassPerGHz: mv([isa.NumClasses]float64{0, 0.5, 1.6, 2.8, 4.0, 5.0, 6.4}),
			CoreWeights:    []float64{1.0, 1.125, 1.0, 0.9, 0.85, 0.8, 0.8, 0.8},
		},
		VF:      power.VFCurve{V0: 0.6284, K1: 0.0573, K2: 0.0143},
		Limits:  power.Limits{IccMax: 100, VccMax: 1.27, TjMax: 100},
		Cdyn:    power.CdynModel{PerClass: nf([isa.NumClasses]float64{2.2, 2.6, 3.3, 4.2, 5.5, 6.6, 8.0}), Idle: 0.4e-9},
		Leakage: power.LeakageModel{IRef: 5.0, VRef: 1.0, TempCoeff: 0.008, TRef: 50},
		Thermal: ThermalSpec{Ambient: 35, RPkg: 0.25, TauPkg: 2500 * units.Millisecond, RDie: 0.10, TauDie: 20 * units.Millisecond},
		AVX256Gate: uarchGate{
			// Skylake-and-later AVX power gating; ≈8 ns first-iteration
			// delta in Fig. 8(b).
			Present: true, WakeLatency: 10 * units.Nanosecond, IdleTimeout: 5 * units.Microsecond,
		},
		AVX512Gate:        uarchGate{Present: false},
		LicenseHysteresis: 650 * units.Microsecond,
		FreqRestoreDelay:  15 * units.Millisecond,
		PLLRelock:         7 * units.Microsecond,
		FreqStep:          100 * units.MHz,
		ThrottleFactor:    0.25,
		DeliverWidth:      4,
		HasAVX512:         false,
	}
}

// Haswell4770K models the Core i7-4770K: 4 cores / 8 threads, FIVR power
// delivery (faster ramps → shorter TP, Fig. 8(a)), and crucially *no* AVX
// power gate (Fig. 8(c)): AVX power gating arrived with Skylake.
func Haswell4770K() Processor {
	return Processor{
		Name:     "Core i7-4770K",
		CodeName: "Haswell",
		Cores:    4,
		SMTWays:  2,
		BaseFreq: 3.5 * units.GHz,
		MaxTurbo: 3.9 * units.GHz,
		TSCFreq:  3.5 * units.GHz,
		VR:       pdn.DefaultConfig(pdn.FIVR),
		RLL:      units.MilliOhm(2.0),
		Guardband: pmu.GuardbandTable{
			PerClassPerGHz: mv([isa.NumClasses]float64{0, 0.7, 2.5, 4.2, 6.0, 7.4, 9.5}),
			CoreWeights:    []float64{1.0, 1.0, 0.9, 0.85},
		},
		VF:      power.VFCurve{V0: 0.60, K1: 0.05, K2: 0.012},
		Limits:  power.Limits{IccMax: 100, VccMax: 1.35, TjMax: 100},
		Cdyn:    power.CdynModel{PerClass: nf([isa.NumClasses]float64{2.0, 2.4, 3.0, 3.8, 5.0, 6.0, 7.2}), Idle: 0.4e-9},
		Leakage: power.LeakageModel{IRef: 4.0, VRef: 0.95, TempCoeff: 0.008, TRef: 50},
		Thermal: ThermalSpec{Ambient: 35, RPkg: 0.28, TauPkg: 2500 * units.Millisecond, RDie: 0.12, TauDie: 18 * units.Millisecond},
		// Haswell does not power-gate the AVX unit: every iteration of
		// Fig. 8(c) has the same latency.
		AVX256Gate:        uarchGate{Present: false},
		AVX512Gate:        uarchGate{Present: false},
		LicenseHysteresis: 650 * units.Microsecond,
		FreqRestoreDelay:  15 * units.Millisecond,
		PLLRelock:         7 * units.Microsecond,
		FreqStep:          100 * units.MHz,
		ThrottleFactor:    0.25,
		DeliverWidth:      4,
		HasAVX512:         false,
	}
}

// All returns the three characterized processors.
func All() []Processor {
	return []Processor{Haswell4770K(), CoffeeLake9700K(), CannonLake8121U()}
}

// registry lists every profile constructor (characterized parts plus
// the server extension), in definition order.
var registry = []func() Processor{Haswell4770K, CoffeeLake9700K, CannonLake8121U, XeonPlatinum8160}

// ctorByName indexes marketing and code names to constructors once; the
// lookup itself still calls the constructor, so every caller keeps
// getting a fresh profile it may mutate freely (the scenario layer
// resolves names on every cell of a sweep — rebuilding all four
// profiles per lookup was a measurable slice of the per-cell cost).
var ctorByName = sync.OnceValue(func() map[string]func() Processor {
	m := make(map[string]func() Processor, 2*len(registry))
	for _, ctor := range registry {
		p := ctor()
		m[p.Name] = ctor
		m[p.CodeName] = ctor
	}
	return m
})

// ByName looks a processor up by marketing or code name, including the
// server extension profile. The returned profile is freshly constructed
// (never shared), so callers may adjust it.
func ByName(name string) (Processor, error) {
	if ctor, ok := ctorByName()[name]; ok {
		return ctor(), nil
	}
	return Processor{}, fmt.Errorf("model: unknown processor %q", name)
}
