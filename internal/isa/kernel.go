package isa

import "fmt"

// Kernel describes an instruction loop: a short body of instructions of a
// single dominant intensity class, executed for many iterations. This is
// the unit of work software contexts submit to a simulated core, mirroring
// the microbenchmark loops (e.g. 300 VMULPD instructions) the paper uses.
type Kernel struct {
	// Name identifies the kernel in traces and experiment output.
	Name string

	// Class is the dominant computational-intensity class of the body.
	// The core requests a license for this class before running the body
	// at full rate.
	Class Class

	// UopsPerIter is the number of micro-operations one loop iteration
	// feeds from the IDQ to the back-end.
	UopsPerIter int

	// BaseUPC is the sustained uop throughput (uops per cycle) of the
	// loop on an unthrottled core running a single thread. Scalar loops
	// sustain ~2, heavy vector loops ~1 (paper Fig. 4 assumes IPC 2 for
	// scalar and 1 for PHI loops).
	BaseUPC float64

	// CdynScale scales the per-class dynamic capacitance for this
	// specific kernel (1.0 = the class's reference power virus level;
	// a typical application is below 1).
	CdynScale float64
}

// Validate checks the kernel invariants. A zero-value or malformed kernel
// must never reach the execution engine.
func (k Kernel) Validate() error {
	if !k.Class.Valid() {
		return fmt.Errorf("isa: kernel %q has invalid class %d", k.Name, int(k.Class))
	}
	if k.UopsPerIter <= 0 {
		return fmt.Errorf("isa: kernel %q has non-positive uops/iter %d", k.Name, k.UopsPerIter)
	}
	if k.BaseUPC <= 0 || k.BaseUPC > 4 {
		return fmt.Errorf("isa: kernel %q has base UPC %g outside (0,4]", k.Name, k.BaseUPC)
	}
	if k.CdynScale <= 0 {
		return fmt.Errorf("isa: kernel %q has non-positive Cdyn scale %g", k.Name, k.CdynScale)
	}
	return nil
}

// CyclesPerIter returns the unthrottled single-thread cycles one iteration
// takes.
func (k Kernel) CyclesPerIter() float64 { return float64(k.UopsPerIter) / k.BaseUPC }

func (k Kernel) String() string {
	return fmt.Sprintf("%s(%s,%duops)", k.Name, k.Class, k.UopsPerIter)
}

// LoopKernel builds a canonical microbenchmark loop for a class: a body of
// `body` instructions of the class plus loop overhead, with the class's
// reference throughput. It mirrors the Agner-Fog-style measurement loops
// from the paper (§5.1).
func LoopKernel(c Class, body int) Kernel {
	if body <= 0 {
		body = 100
	}
	upc := 2.0 // scalar loops sustain ~2 uops/cycle
	if c.PHI() {
		upc = 1.0 // heavy vector loops sustain ~1 uop/cycle
	}
	return Kernel{
		Name:        fmt.Sprintf("loop_%s", c),
		Class:       c,
		UopsPerIter: body,
		BaseUPC:     upc,
		CdynScale:   1.0,
	}
}

// Reference kernels matching the pseudo-code in the paper's Fig. 3. Each is
// a loop of a few hundred instructions of the named class.
var (
	// Loop64b is the scalar receiver loop used by IccSMTcovert.
	Loop64b = LoopKernel(Scalar64, 200)
	// Loop128Light is a 128-bit light vector loop (e.g. VPOR xmm).
	Loop128Light = LoopKernel(Vec128Light, 200)
	// Loop128Heavy is the cross-core receiver loop (e.g. MULPD xmm).
	Loop128Heavy = LoopKernel(Vec128Heavy, 200)
	// Loop256Light is a 256-bit light loop (e.g. VORPD ymm).
	Loop256Light = LoopKernel(Vec256Light, 200)
	// Loop256Heavy is an AVX2 FP/multiply loop (e.g. VMULPD ymm).
	Loop256Heavy = LoopKernel(Vec256Heavy, 200)
	// Loop512Light is a 512-bit light loop (e.g. VPORQ zmm).
	Loop512Light = LoopKernel(Vec512Light, 200)
	// Loop512Heavy is the same-thread receiver loop (e.g. VMULPD zmm).
	Loop512Heavy = LoopKernel(Vec512Heavy, 200)
)

// KernelFor returns the canonical loop kernel for a class.
func KernelFor(c Class) Kernel {
	switch c {
	case Scalar64:
		return Loop64b
	case Vec128Light:
		return Loop128Light
	case Vec128Heavy:
		return Loop128Heavy
	case Vec256Light:
		return Loop256Light
	case Vec256Heavy:
		return Loop256Heavy
	case Vec512Light:
		return Loop512Light
	case Vec512Heavy:
		return Loop512Heavy
	default:
		panic(fmt.Sprintf("isa: no canonical kernel for class %d", int(c)))
	}
}
