package isa

import (
	"testing"
	"testing/quick"
)

func TestClassOrderingAndCount(t *testing.T) {
	if NumClasses != 7 {
		t.Fatalf("NumClasses = %d, want 7 (paper §5.5)", NumClasses)
	}
	all := AllClasses()
	if len(all) != NumClasses {
		t.Fatalf("AllClasses returned %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatal("AllClasses not strictly increasing")
		}
	}
}

func TestClassWidths(t *testing.T) {
	cases := map[Class]int{
		Scalar64: 64, Vec128Light: 128, Vec128Heavy: 128,
		Vec256Light: 256, Vec256Heavy: 256, Vec512Light: 512, Vec512Heavy: 512,
	}
	for c, w := range cases {
		if c.Width() != w {
			t.Errorf("%v width = %d, want %d", c, c.Width(), w)
		}
	}
	if Class(99).Width() != 0 {
		t.Error("invalid class must have zero width")
	}
}

func TestClassHeavy(t *testing.T) {
	heavy := map[Class]bool{
		Scalar64: false, Vec128Light: false, Vec128Heavy: true,
		Vec256Light: false, Vec256Heavy: true, Vec512Light: false, Vec512Heavy: true,
	}
	for c, h := range heavy {
		if c.Heavy() != h {
			t.Errorf("%v heavy = %v, want %v", c, c.Heavy(), h)
		}
	}
}

func TestClassPHIAndVector(t *testing.T) {
	if Scalar64.PHI() || Scalar64.Vector() {
		t.Error("scalar must not be PHI or vector")
	}
	for _, c := range AllClasses()[1:] {
		if !c.PHI() || !c.Vector() {
			t.Errorf("%v must be PHI and vector", c)
		}
	}
}

func TestClassAVX(t *testing.T) {
	if Vec128Heavy.AVX() {
		t.Error("128-bit SSE-class ops are not AVX power-gated")
	}
	if !Vec256Light.AVX() || !Vec512Heavy.AVX() {
		t.Error("256/512-bit classes exercise the AVX gate")
	}
	if Vec256Heavy.AVX512() {
		t.Error("256-bit is not AVX-512")
	}
	if !Vec512Light.AVX512() {
		t.Error("512-bit is AVX-512")
	}
}

func TestParseClassRoundTrip(t *testing.T) {
	for _, c := range AllClasses() {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Fatalf("roundtrip %v → %v", c, got)
		}
	}
	if _, err := ParseClass("1024b_Mega"); err == nil {
		t.Fatal("expected error for unknown class")
	}
}

func TestClassStringInvalid(t *testing.T) {
	if Class(-1).String() != "Class(-1)" {
		t.Fatalf("got %q", Class(-1).String())
	}
	if Class(-1).Valid() || Class(NumClasses).Valid() {
		t.Fatal("out-of-range classes must be invalid")
	}
}

func TestKernelValidate(t *testing.T) {
	good := LoopKernel(Vec256Heavy, 100)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
	bad := []Kernel{
		{Name: "c", Class: Class(99), UopsPerIter: 10, BaseUPC: 1, CdynScale: 1},
		{Name: "u", Class: Scalar64, UopsPerIter: 0, BaseUPC: 1, CdynScale: 1},
		{Name: "r0", Class: Scalar64, UopsPerIter: 10, BaseUPC: 0, CdynScale: 1},
		{Name: "r5", Class: Scalar64, UopsPerIter: 10, BaseUPC: 5, CdynScale: 1},
		{Name: "s", Class: Scalar64, UopsPerIter: 10, BaseUPC: 1, CdynScale: 0},
	}
	for _, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("kernel %q should fail validation", k.Name)
		}
	}
}

func TestLoopKernelDefaults(t *testing.T) {
	k := LoopKernel(Scalar64, 0)
	if k.UopsPerIter != 100 {
		t.Fatalf("default body = %d", k.UopsPerIter)
	}
	if k.BaseUPC != 2 {
		t.Fatalf("scalar UPC = %g", k.BaseUPC)
	}
	if LoopKernel(Vec512Heavy, 50).BaseUPC != 1 {
		t.Fatal("PHI loops sustain 1 uop/cycle")
	}
}

func TestCyclesPerIter(t *testing.T) {
	k := Kernel{Name: "k", Class: Scalar64, UopsPerIter: 200, BaseUPC: 2, CdynScale: 1}
	if got := k.CyclesPerIter(); got != 100 {
		t.Fatalf("CyclesPerIter = %g", got)
	}
}

func TestKernelForEveryClass(t *testing.T) {
	for _, c := range AllClasses() {
		k := KernelFor(c)
		if k.Class != c {
			t.Errorf("KernelFor(%v).Class = %v", c, k.Class)
		}
		if err := k.Validate(); err != nil {
			t.Errorf("KernelFor(%v) invalid: %v", c, err)
		}
	}
}

func TestKernelForInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KernelFor(Class(42))
}

// Property: for any valid class index, widths are nondecreasing in class
// order and heavy classes have the same width as the light class below.
func TestPropertyWidthMonotone(t *testing.T) {
	f := func(raw uint8) bool {
		c := Class(int(raw) % NumClasses)
		if c == Scalar64 {
			return c.Width() == 64
		}
		return c.Width() >= (c - 1).Width()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
