// Package isa models the instruction-set properties that matter to current
// management: the computational-intensity class of an instruction stream
// (operand width × heavy/light operation) and loop kernels built from those
// classes.
//
// The paper (§4) partitions the instruction set into seven classes by width
// (64-bit scalar, 128/256/512-bit vector) and heaviness (Heavy = floating
// point or multiplication; Light = everything else). The class determines
// the dynamic capacitance Cdyn the stream exercises and therefore the
// voltage guardband — and throttling period — the processor applies.
package isa

import "fmt"

// Class is a computational-intensity class of an instruction stream,
// ordered by increasing intensity. The ordering is load-bearing: the
// PMU's guardband tables are indexed by Class and must be monotone in it.
type Class int

// The seven classes from the paper's characterization (§5.5), in
// increasing order of computational intensity.
const (
	Scalar64 Class = iota // 64-bit scalar integer/logic (e.g. ADD64, MOV64)
	Vec128Light
	Vec128Heavy
	Vec256Light
	Vec256Heavy
	Vec512Light
	Vec512Heavy
	NumClasses int = iota
)

var classNames = [NumClasses]string{
	"64b", "128b_Light", "128b_Heavy", "256b_Light", "256b_Heavy", "512b_Light", "512b_Heavy",
}

func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// Valid reports whether c is one of the seven defined classes.
func (c Class) Valid() bool { return c >= Scalar64 && int(c) < NumClasses }

// Width returns the operand width in bits.
func (c Class) Width() int {
	switch c {
	case Scalar64:
		return 64
	case Vec128Light, Vec128Heavy:
		return 128
	case Vec256Light, Vec256Heavy:
		return 256
	case Vec512Light, Vec512Heavy:
		return 512
	default:
		return 0
	}
}

// Heavy reports whether the class contains "heavy" operations: any
// instruction requiring the floating-point unit (ADDPD, SUBPS, ...) or any
// multiplication (paper §4). Light covers non-multiplication integer
// arithmetic, logic, shuffle, and blend.
func (c Class) Heavy() bool {
	switch c {
	case Vec128Heavy, Vec256Heavy, Vec512Heavy:
		return true
	default:
		return false
	}
}

// Vector reports whether the class uses the vector (AVX/SSE) units at all.
func (c Class) Vector() bool { return c != Scalar64 }

// AVX reports whether the class exercises a power-gated AVX unit
// (256-bit or wider on Skylake-and-later parts).
func (c Class) AVX() bool { return c.Width() >= 256 }

// AVX512 reports whether the class exercises the AVX-512 unit.
func (c Class) AVX512() bool { return c.Width() >= 512 }

// PHI reports whether the class is a power-hungry-instruction class, i.e.
// requires a voltage guardband above the scalar baseline.
func (c Class) PHI() bool { return c > Scalar64 }

// AllClasses returns the seven classes in increasing intensity order.
func AllClasses() []Class {
	out := make([]Class, NumClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

// ParseClass converts the paper's textual class names ("64b", "256b_Heavy",
// ...) back to a Class.
func ParseClass(s string) (Class, error) {
	for i, n := range classNames {
		if n == s {
			return Class(i), nil
		}
	}
	return 0, fmt.Errorf("isa: unknown instruction class %q", s)
}
