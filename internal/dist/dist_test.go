package dist_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ichannels/internal/dist"
	"ichannels/internal/engine"
	"ichannels/internal/scenario"
	"ichannels/internal/serve"
	"ichannels/internal/sweep"
)

// newWorker starts an in-process worker: the real serve handler with
// the cell endpoint enabled.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(serve.New(serve.Options{Worker: true}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func testSpecs() []scenario.Scenario {
	return []scenario.Scenario{
		{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 8},
		{Role: scenario.RoleChannel, Kind: scenario.KindThread, Bits: 8},
		{Role: scenario.RoleChannel, Kind: scenario.KindSMT, Bits: 8},
		{Role: scenario.RoleSpy, Bits: 8},
	}
}

// resultBytes marshals each outcome's result (or error string) — the
// deterministic payload byte-identity is asserted on.
func resultBytes(t *testing.T, b *engine.ScenarioBatch) [][]byte {
	t.Helper()
	out := make([][]byte, len(b.Results))
	for i, r := range b.Results {
		if r.Err != nil {
			out[i] = []byte("error: " + r.Err.Error())
			continue
		}
		data, err := json.Marshal(r.Result)
		if err != nil {
			t.Fatalf("marshal result %d: %v", i, err)
		}
		out[i] = data
	}
	return out
}

func runBatch(t *testing.T, runner engine.CellRunner) *engine.ScenarioBatch {
	t.Helper()
	b, err := engine.RunScenarios(context.Background(), engine.ScenarioOptions{
		Scenarios: testSpecs(),
		BaseSeed:  7,
		Parallel:  2,
		Runner:    runner,
	})
	if err != nil {
		t.Fatalf("RunScenarios: %v", err)
	}
	return b
}

// TestPoolByteIdentity is the core distributed determinism check: a
// batch computed through a real worker endpoint yields byte-identical
// result payloads to a local run.
func TestPoolByteIdentity(t *testing.T) {
	w := newWorker(t)
	pool, err := dist.New([]string{w.URL}, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	local := runBatch(t, nil)
	remote := runBatch(t, pool)
	wantLines, gotLines := resultBytes(t, local), resultBytes(t, remote)
	for i := range wantLines {
		if !bytes.Equal(wantLines[i], gotLines[i]) {
			t.Errorf("result %d differs:\nlocal:  %s\nremote: %s", i, wantLines[i], gotLines[i])
		}
		if local.Results[i].Seed != remote.Results[i].Seed {
			t.Errorf("result %d seed: local %d remote %d", i, local.Results[i].Seed, remote.Results[i].Seed)
		}
	}
	st := pool.Stats()
	if st.Dispatched != len(wantLines) {
		t.Errorf("Dispatched = %d, want %d", st.Dispatched, len(wantLines))
	}
	if st.Corrupt != 0 || st.Redispatched != 0 || st.LocalFallback != 0 {
		t.Errorf("unexpected failure counters: %+v", st)
	}
}

// byzantineProxy wraps a worker and flips bytes inside every result
// payload while keeping the recorded checksum — a worker serving
// corrupted results.
func byzantineProxy(t *testing.T, inner http.Handler) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		// Mutate the result sub-object, not the envelope fields: the
		// checksum no longer matches the payload it vouches for.
		corrupted := bytes.Replace(body, []byte(`"role":`), []byte(`"rol3":`), 1)
		for k, v := range rec.Header() {
			w.Header()[k] = v
		}
		w.WriteHeader(rec.Code)
		w.Write(corrupted)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestPoolByzantineWorker: a worker flipping result bytes is rejected
// by envelope verification, its cells land on the honest worker, and
// the corruption is counted — in the pool and in the engine's stream
// stats.
func TestPoolByzantineWorker(t *testing.T) {
	honest := newWorker(t)
	evil := byzantineProxy(t, serve.New(serve.Options{Worker: true}).Handler())
	pool, err := dist.New([]string{evil.URL, honest.URL}, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}

	local := runBatch(t, nil)
	var stats *engine.StreamStats
	specs := testSpecs()
	i := 0
	var got []engine.ScenarioOutcome
	stats, err = engine.StreamScenarios(context.Background(), engine.StreamOptions{
		Next: func() (scenario.Scenario, bool) {
			if i >= len(specs) {
				return scenario.Scenario{}, false
			}
			s := specs[i]
			i++
			return s, true
		},
		BaseSeed: 7,
		Parallel: 1, // serial: every cell tries the byzantine worker first
		Runner:   pool,
		Emit:     func(o engine.ScenarioOutcome) error { got = append(got, o); return nil },
	})
	if err != nil {
		t.Fatalf("StreamScenarios: %v", err)
	}
	wantLines := resultBytes(t, local)
	for i, o := range got {
		if o.Err != nil {
			t.Fatalf("outcome %d: %v", i, o.Err)
		}
		data, _ := json.Marshal(o.Result)
		if !bytes.Equal(data, wantLines[i]) {
			t.Errorf("outcome %d differs from local run:\nlocal:  %s\nremote: %s", i, wantLines[i], data)
		}
	}
	st := pool.Stats()
	if st.Corrupt == 0 {
		t.Errorf("Corrupt = 0, want > 0 (byzantine responses must be rejected): %+v", st)
	}
	if st.Redispatched < st.Corrupt {
		t.Errorf("Redispatched = %d < Corrupt = %d: corrupt cells must be retried", st.Redispatched, st.Corrupt)
	}
	if st.LocalFallback != 0 {
		t.Errorf("LocalFallback = %d, want 0 (the honest worker serves everything)", st.LocalFallback)
	}
	if stats.RemoteCorrupt != st.Corrupt || stats.RemoteDispatched != st.Dispatched {
		t.Errorf("stream stats %+v do not mirror pool stats %+v", stats, st)
	}
}

// TestPoolDeadWorkerRedispatch: a worker killed mid-run costs its
// in-flight cells a redispatch to the surviving worker; the output is
// unchanged.
func TestPoolDeadWorkerRedispatch(t *testing.T) {
	live := newWorker(t)
	dead := httptest.NewServer(serve.New(serve.Options{Worker: true}).Handler())
	dead.Close() // connection refused from the first dispatch

	pool, err := dist.New([]string{dead.URL, live.URL}, dist.Options{
		BackoffBase: time.Minute, // stay quarantined for the whole test
	})
	if err != nil {
		t.Fatal(err)
	}
	local := runBatch(t, nil)
	remote := runBatch(t, pool)
	wantLines, gotLines := resultBytes(t, local), resultBytes(t, remote)
	for i := range wantLines {
		if !bytes.Equal(wantLines[i], gotLines[i]) {
			t.Errorf("result %d differs after worker death", i)
		}
	}
	st := pool.Stats()
	if st.Redispatched == 0 {
		t.Errorf("Redispatched = 0, want > 0: %+v", st)
	}
	if st.Dispatched != len(wantLines) {
		t.Errorf("Dispatched = %d, want %d (the live worker serves everything)", st.Dispatched, len(wantLines))
	}
}

// TestPoolFleetDeadFallsBackLocal: with every worker unreachable the
// pool degrades to local compute and the bytes still match.
func TestPoolFleetDeadFallsBackLocal(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	pool, err := dist.New([]string{dead.URL}, dist.Options{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	local := runBatch(t, nil)
	remote := runBatch(t, pool)
	wantLines, gotLines := resultBytes(t, local), resultBytes(t, remote)
	for i := range wantLines {
		if !bytes.Equal(wantLines[i], gotLines[i]) {
			t.Errorf("result %d differs under local fallback", i)
		}
	}
	st := pool.Stats()
	if st.LocalFallback != len(wantLines) {
		t.Errorf("LocalFallback = %d, want %d", st.LocalFallback, len(wantLines))
	}
	if st.Dispatched != 0 {
		t.Errorf("Dispatched = %d, want 0", st.Dispatched)
	}
}

// TestPoolDisableLocalFallback: the strict mode turns an undispatchable
// cell into an error instead of silent local compute.
func TestPoolDisableLocalFallback(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	pool, err := dist.New([]string{dead.URL}, dist.Options{DisableLocalFallback: true, MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := testSpecs()[0].Normalized()
	_, err = pool.RunCell(context.Background(), s, s.Hash(), 1)
	if err == nil {
		t.Fatal("RunCell succeeded with a dead fleet and no local fallback")
	}
}

// TestPoolRunFailedRecomputesLocally: a worker-reported deterministic
// run failure is recomputed locally (so error bytes match a serial
// run), without quarantining the healthy worker.
func TestPoolRunFailedRecomputesLocally(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"code":"run_failed","message":"scenario exploded"}`)
	}))
	t.Cleanup(srv.Close)

	var localRuns atomic.Int64
	wantErr := fmt.Errorf("deterministic local failure")
	pool, err := dist.New([]string{srv.URL}, dist.Options{
		Run: func(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
			localRuns.Add(1)
			return nil, wantErr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := testSpecs()[0].Normalized()
	_, err = pool.RunCell(context.Background(), s, s.Hash(), 1)
	if err != wantErr {
		t.Fatalf("RunCell error = %v, want the local executor's %v", err, wantErr)
	}
	if localRuns.Load() != 1 {
		t.Fatalf("local executor ran %d times, want 1", localRuns.Load())
	}
	st := pool.Stats()
	if st.LocalFallback != 1 || st.Redispatched != 0 {
		t.Fatalf("stats = %+v, want exactly one local fallback and no redispatch", st)
	}
}

// TestPoolStaleWorkerHashMismatch: a worker whose hashing disagrees
// answers 409; the coordinator treats it as a worker fault and the cell
// degrades (here: local fallback, with only one worker configured).
func TestPoolStaleWorkerHashMismatch(t *testing.T) {
	w := newWorker(t)
	pool, err := dist.New([]string{w.URL}, dist.Options{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := testSpecs()[0].Normalized()
	// Dispatch under a wrong hash — exactly what a version-skewed
	// coordinator would do. The worker must refuse to serve under the
	// disputed identity, and the pool must still produce the result.
	res, err := pool.RunCell(context.Background(), s, "0000000000000000", 1)
	if err != nil {
		t.Fatalf("RunCell: %v", err)
	}
	if res == nil {
		t.Fatal("RunCell returned nil result")
	}
	st := pool.Stats()
	if st.Dispatched != 0 || st.LocalFallback != 1 {
		t.Fatalf("stats = %+v, want the 409 rejected and the cell computed locally", st)
	}
}

// TestSweepDistributedByteIdentity runs a real sweep (expansion,
// aggregation) through the distributed runner and asserts the entire
// serialized result — cells and aggregate — is byte-identical to the
// local run's.
func TestSweepDistributedByteIdentity(t *testing.T) {
	sw := scenario.Sweep{
		Base: scenario.Scenario{Role: scenario.RoleChannel, Bits: 8},
		Axes: scenario.SweepAxes{Kind: []string{scenario.KindCores, scenario.KindThread, scenario.KindSMT}},
	}
	runSweep := func(runner engine.CellRunner) []byte {
		t.Helper()
		res, err := sweep.Run(context.Background(), sw, sweep.Options{
			BaseSeed: 11,
			Parallel: 2,
			Runner:   runner,
		})
		if err != nil {
			t.Fatalf("sweep.Run: %v", err)
		}
		data, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal sweep result: %v", err)
		}
		return data
	}
	local := runSweep(nil)

	w1, w2 := newWorker(t), newWorker(t)
	pool, err := dist.New([]string{w1.URL, w2.URL}, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	remote := runSweep(pool)
	if !bytes.Equal(local, remote) {
		t.Errorf("distributed sweep result differs from local:\nlocal:  %s\nremote: %s", local, remote)
	}
	if st := pool.Stats(); st.Dispatched == 0 {
		t.Errorf("Dispatched = 0, want > 0: %+v", st)
	}
}

// TestNewRejectsBadWorkers covers coordinator construction validation.
func TestNewRejectsBadWorkers(t *testing.T) {
	cases := [][]string{
		nil,
		{""},
		{"not-a-url"},
		{"ftp://host"},
		{"http://"},
		{"http://host/v1/cells"},
		{"http://host:1", "http://host:1"},
	}
	for _, ws := range cases {
		if _, err := dist.New(ws, dist.Options{}); err == nil {
			t.Errorf("New(%q) succeeded, want error", ws)
		}
	}
	if _, err := dist.New([]string{"http://host:1", "http://host:2/"}, dist.Options{}); err != nil {
		t.Errorf("New with valid workers failed: %v", err)
	}
}

// TestParseCellDispatchStrictness covers the wire decoding discipline.
func TestParseCellDispatchStrictness(t *testing.T) {
	s := testSpecs()[0].Normalized()
	d := dist.NewCellDispatch(s, s.Hash(), 42)
	frame, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dist.ParseCellDispatch(frame)
	if err != nil {
		t.Fatalf("ParseCellDispatch(round-trip): %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate(round-trip): %v", err)
	}
	// Fixed point: parse → normalize → marshal is stable.
	again, err := json.Marshal(got.Normalized())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(frame, again) {
		t.Errorf("dispatch encoding is not a fixed point:\n%s\n%s", frame, again)
	}

	bad := [][]byte{
		nil,
		[]byte("  "),
		[]byte(`{"v":1,"hash":"x","seed":1,"scenario":{},"extra":1}`),
		append(append([]byte{}, frame...), []byte(` {}`)...),
		[]byte(`[1,2]`),
	}
	for _, b := range bad {
		if _, err := dist.ParseCellDispatch(b); err == nil {
			t.Errorf("ParseCellDispatch(%q) succeeded, want error", b)
		}
	}

	wrongVersion := d
	wrongVersion.V = 99
	if err := wrongVersion.Validate(); err == nil {
		t.Error("Validate accepted an unknown wire version")
	}
	wrongSeed := d
	wrongSeed.Seed = 0
	if err := wrongSeed.Validate(); err == nil {
		t.Error("Validate accepted a zero seed")
	}
	wrongHash := d
	wrongHash.Hash = "deadbeef"
	if err := wrongHash.Validate(); err == nil {
		t.Error("Validate accepted a mismatched hash")
	}
}
