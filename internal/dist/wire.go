// Package dist is the distributed sweep tier: a coordinator that
// delegates scenario cells to remote workers over the HTTP v1 wire and
// verifies every returned result against the store's checksummed
// envelope format.
//
// The coordinator (Pool) implements engine.CellRunner, so it plugs into
// the same compute seam every local surface uses: StreamScenarios (and
// therefore sweeps, refinement passes, batches, and -resume) delegate
// each cell's compute to Pool.RunCell, which POSTs a CellDispatch to a
// worker's /v1/cells endpoint and decodes the response through
// store.DecodeEnvelope. Because the envelope carries the cell's
// (content hash, seed) identity and a checksum over the canonical
// result bytes, a byzantine worker that flips bytes, a stale worker
// whose normalization disagrees, or a truncated response is rejected
// exactly like a corrupt store entry — the cell is redispatched to
// another worker and, when the fleet is exhausted, recomputed locally.
// Either way the emitted bytes are the ones a serial local run
// produces: the determinism contract (serial == parallel == distributed
// bytes) extends across process and machine boundaries.
//
// Failure handling is coordinator-side only: workers are stateless
// cell servers (the serve package's worker endpoint over its
// single-flight (hash, seed) cache, the cross-node dedup layer).
// A worker that dies mid-sweep costs its in-flight cells one
// redispatch; a killed coordinator resumes from its result store
// exactly as `sweep run -resume` does today, because delegated
// successes are persisted by the engine like local ones.
package dist

import (
	"bytes"
	"encoding/json"
	"fmt"

	"ichannels/internal/scenario"
)

// DispatchVersion is the coordinator↔worker wire version. Workers
// reject versions they don't know instead of guessing — a fleet can
// only be rolled forward once every worker understands the new frame.
const DispatchVersion = 1

// DispatchPath is the worker endpoint cells are POSTed to.
const DispatchPath = "/v1/cells"

// CellDispatch is the coordinator→worker wire frame for one cell: the
// normalized scenario spec, the effective seed, and the cell's content
// hash as the coordinator computed it. The hash is deliberately
// redundant — the worker recomputes it from the spec and rejects a
// mismatch, so a version-skewed worker whose normalization or hashing
// drifted is detected before it can serve results under the wrong
// identity.
type CellDispatch struct {
	V        int               `json:"v"`
	Hash     string            `json:"hash"`
	Seed     int64             `json:"seed"`
	Scenario scenario.Scenario `json:"scenario"`
}

// Normalized returns the dispatch with its scenario normalized — the
// canonical wire form (ParseCellDispatch callers re-marshal this; the
// encoding is a fixed point under parse → normalize → marshal).
func (d CellDispatch) Normalized() CellDispatch {
	d.Scenario = d.Scenario.Normalized()
	return d
}

// Validate checks the frame: known version, a positive effective seed
// (derived seeds are always positive; zero would silently re-derive on
// the worker), a runnable scenario, and a hash that matches the spec.
func (d CellDispatch) Validate() error {
	if d.V != DispatchVersion {
		return fmt.Errorf("dist: dispatch version %d, want %d", d.V, DispatchVersion)
	}
	if d.Seed <= 0 {
		return fmt.Errorf("dist: dispatch seed %d: effective seeds are positive", d.Seed)
	}
	n := d.Scenario.Normalized()
	if err := n.Validate(); err != nil {
		return fmt.Errorf("dist: dispatch scenario: %w", err)
	}
	if h := n.Hash(); d.Hash != h {
		return fmt.Errorf("dist: dispatch hash %q does not match the scenario (%s): coordinator/worker version skew", d.Hash, h)
	}
	return nil
}

// NewCellDispatch frames one cell for the wire.
func NewCellDispatch(s scenario.Scenario, hash string, seed int64) CellDispatch {
	return CellDispatch{V: DispatchVersion, Hash: hash, Seed: seed, Scenario: s}
}

// ParseCellDispatch strictly parses one coordinator→worker frame,
// rejecting unknown fields and trailing data — the same decoding
// discipline every other wire surface has, so a drifted coordinator
// cannot smuggle fields past an old worker silently.
func ParseCellDispatch(data []byte) (CellDispatch, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return CellDispatch{}, fmt.Errorf("dist: empty dispatch")
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	var d CellDispatch
	if err := dec.Decode(&d); err != nil {
		return CellDispatch{}, fmt.Errorf("dist: decoding dispatch: %w", err)
	}
	if dec.More() {
		return CellDispatch{}, fmt.Errorf("dist: trailing data after dispatch frame")
	}
	return d, nil
}
