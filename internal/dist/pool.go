package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"ichannels/internal/scenario"
	"ichannels/internal/store"
)

// Defaults for Options zero values.
const (
	DefaultMaxAttempts      = 3
	DefaultBackoffBase      = 100 * time.Millisecond
	DefaultBackoffMax       = 5 * time.Second
	DefaultMaxResponseBytes = 64 << 20
)

// Options configures a coordinator Pool.
type Options struct {
	// Client is the HTTP client dispatches go through. Nil means a
	// fresh client with no global timeout — cells are bounded by the
	// run context, and a worker grinding through a long simulation must
	// not be declared dead by a stopwatch.
	Client *http.Client
	// MaxAttempts bounds how many workers one cell is offered to before
	// it degrades to local compute. Zero means DefaultMaxAttempts.
	MaxAttempts int
	// DisableLocalFallback makes an undispatchable cell an error
	// instead of a local recompute. The default (fallback on) preserves
	// the determinism contract under any fleet failure: output bytes
	// never depend on which machines were alive.
	DisableLocalFallback bool
	// BackoffBase/BackoffMax shape the per-worker quarantine after a
	// failed dispatch: base doubles per consecutive failure, capped at
	// max. Zeroes mean the defaults.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxResponseBytes bounds one worker response. Zero means
	// DefaultMaxResponseBytes.
	MaxResponseBytes int64
	// Run overrides the local fallback executor (nil means
	// scenario.Run) — injected by tests to observe fallback.
	Run func(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error)
}

// Stats summarizes a pool's activity. All counters are cumulative over
// the pool's lifetime and safe to snapshot concurrently.
type Stats struct {
	// Dispatched counts cells served by a worker and verified.
	Dispatched int `json:"dispatched"`
	// Redispatched counts failed dispatch attempts that were retried —
	// the in-flight cells of a dead worker land here.
	Redispatched int `json:"redispatched"`
	// Corrupt counts worker responses rejected by envelope
	// verification: wrong version, wrong (hash, seed) identity, or a
	// checksum mismatch over the result bytes — byzantine or stale
	// workers.
	Corrupt int `json:"corrupt"`
	// LocalFallback counts cells computed locally after dispatch was
	// exhausted (or a worker reported a deterministic run failure,
	// which is recomputed locally so error bytes match a serial run).
	LocalFallback int `json:"local_fallback"`
}

// worker is one remote endpoint's dispatch state.
type worker struct {
	url      string
	inflight int
	fails    int // consecutive failures
	until    time.Time
}

// Pool is the distributed coordinator: an engine.CellRunner that
// dispatches cells to the least-loaded healthy worker, verifies every
// response through store.DecodeEnvelope, quarantines failing workers
// with exponential backoff, and falls back to local compute so a sweep
// finishes with byte-identical output no matter how the fleet behaves.
type Pool struct {
	client      *http.Client
	maxAttempts int
	localOK     bool
	backoffBase time.Duration
	backoffMax  time.Duration
	maxResp     int64
	runLocal    func(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error)

	mu      sync.Mutex
	workers []*worker
	stats   Stats
}

// New builds a coordinator over the given worker base URLs (scheme +
// host[:port], e.g. "http://10.0.0.7:8080"; the /v1/cells path is
// appended per dispatch).
func New(workers []string, opts Options) (*Pool, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("dist: no workers given")
	}
	p := &Pool{
		client:      opts.Client,
		maxAttempts: opts.MaxAttempts,
		localOK:     !opts.DisableLocalFallback,
		backoffBase: opts.BackoffBase,
		backoffMax:  opts.BackoffMax,
		maxResp:     opts.MaxResponseBytes,
		runLocal:    opts.Run,
	}
	if p.client == nil {
		p.client = &http.Client{}
	}
	if p.maxAttempts <= 0 {
		p.maxAttempts = DefaultMaxAttempts
	}
	if p.backoffBase <= 0 {
		p.backoffBase = DefaultBackoffBase
	}
	if p.backoffMax <= 0 {
		p.backoffMax = DefaultBackoffMax
	}
	if p.maxResp <= 0 {
		p.maxResp = DefaultMaxResponseBytes
	}
	if p.runLocal == nil {
		p.runLocal = func(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
			return scenario.Runner{}.RunSeeded(ctx, s, seed)
		}
	}
	seen := map[string]bool{}
	for _, raw := range workers {
		u, err := url.Parse(strings.TrimRight(strings.TrimSpace(raw), "/"))
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("dist: worker %q: need an http(s) base URL", raw)
		}
		if u.Path != "" {
			return nil, fmt.Errorf("dist: worker %q: give the base URL only (the %s path is appended)", raw, DispatchPath)
		}
		base := u.String()
		if seen[base] {
			return nil, fmt.Errorf("dist: worker %q given more than once", base)
		}
		seen[base] = true
		p.workers = append(p.workers, &worker{url: base})
	}
	return p, nil
}

// Workers returns the pool's worker base URLs in registration order.
func (p *Pool) Workers() []string {
	out := make([]string, len(p.workers))
	for i, w := range p.workers {
		out[i] = w.url
	}
	return out
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// RemoteCellStats implements engine.RemoteCellStats so StreamScenarios
// surfaces the pool's counters in its StreamStats.
func (p *Pool) RemoteCellStats() (dispatched, redispatched, corrupt, localFallback int) {
	s := p.Stats()
	return s.Dispatched, s.Redispatched, s.Corrupt, s.LocalFallback
}

// pick returns the least-loaded worker not in quarantine (ties to the
// lowest index), reserving an in-flight slot, or nil when the whole
// fleet is quarantined.
func (p *Pool) pick(now time.Time) *worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *worker
	for _, w := range p.workers {
		if now.Before(w.until) {
			continue
		}
		if best == nil || w.inflight < best.inflight {
			best = w
		}
	}
	if best != nil {
		best.inflight++
	}
	return best
}

// release returns a worker's in-flight slot, clearing or growing its
// quarantine by the attempt's outcome.
func (p *Pool) release(w *worker, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.inflight--
	if ok {
		w.fails = 0
		w.until = time.Time{}
		return
	}
	w.fails++
	back := p.backoffBase << (w.fails - 1)
	if back > p.backoffMax || back <= 0 {
		back = p.backoffMax
	}
	w.until = time.Now().Add(back)
}

func (p *Pool) count(fn func(*Stats)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn(&p.stats)
}

// dispatchErr classifies one failed dispatch attempt.
type dispatchErr struct {
	err     error
	corrupt bool // envelope verification rejected the response
	// runFailed marks a worker-reported deterministic scenario failure
	// — not a worker fault; the cell recomputes locally so its error
	// bytes match a serial run.
	runFailed bool
}

// RunCell implements engine.CellRunner: dispatch the cell to up to
// MaxAttempts workers, verify each response against the store envelope
// format, and degrade to local compute when the fleet cannot serve it.
// The returned result is byte-identical to a local run's by the
// determinism contract — verification enforces the envelope's
// integrity, determinism guarantees its content.
func (p *Pool) RunCell(ctx context.Context, s scenario.Scenario, hash string, seed int64) (*scenario.Result, error) {
	frame, err := json.Marshal(NewCellDispatch(s, hash, seed))
	if err != nil {
		return nil, fmt.Errorf("dist: framing cell %s-%d: %w", hash, seed, err)
	}
	key := store.Key{Hash: hash, Seed: seed}
	var last error
	for attempt := 0; attempt < p.maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w := p.pick(time.Now())
		if w == nil {
			break // whole fleet quarantined; fall through
		}
		res, derr := p.dispatch(ctx, w, key, frame)
		if derr == nil {
			p.release(w, true)
			p.count(func(st *Stats) { st.Dispatched++ })
			return res, nil
		}
		if derr.runFailed {
			// The worker is healthy; the scenario itself fails
			// deterministically. Recompute locally so the emitted error
			// string is the one a serial run produces.
			p.release(w, true)
			return p.fallback(ctx, s, seed)
		}
		p.release(w, false)
		p.count(func(st *Stats) {
			st.Redispatched++
			if derr.corrupt {
				st.Corrupt++
			}
		})
		last = derr.err
	}
	if !p.localOK {
		if last == nil {
			last = fmt.Errorf("all workers quarantined")
		}
		return nil, fmt.Errorf("dist: cell %s: dispatch exhausted: %w", key, last)
	}
	return p.fallback(ctx, s, seed)
}

// fallback computes a cell locally, counting it.
func (p *Pool) fallback(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
	p.count(func(st *Stats) { st.LocalFallback++ })
	return p.runLocal(ctx, s, seed)
}

// workerError is the structured {code, message} error envelope the
// serve layer answers failures with (mirrored here; dist cannot import
// serve, which imports dist for the wire types).
type workerError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// dispatch POSTs one framed cell to w and verifies the response.
func (p *Pool) dispatch(ctx context.Context, w *worker, key store.Key, frame []byte) (*scenario.Result, *dispatchErr) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+DispatchPath, bytes.NewReader(frame))
	if err != nil {
		return nil, &dispatchErr{err: fmt.Errorf("dist: %s: %w", w.url, err)}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, &dispatchErr{err: fmt.Errorf("dist: %s: %w", w.url, err)}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, p.maxResp+1))
	if err != nil {
		return nil, &dispatchErr{err: fmt.Errorf("dist: %s: reading response: %w", w.url, err)}
	}
	if int64(len(data)) > p.maxResp {
		return nil, &dispatchErr{err: fmt.Errorf("dist: %s: response exceeds %d bytes", w.url, p.maxResp), corrupt: true}
	}
	if resp.StatusCode != http.StatusOK {
		var we workerError
		_ = json.Unmarshal(data, &we)
		err := fmt.Errorf("dist: %s: status %d (%s: %s)", w.url, resp.StatusCode, we.Code, we.Message)
		// 5xx with the run_failed code is the scenario failing
		// deterministically, not the worker failing; everything else
		// (version skew, hash mismatch, overload) is a worker problem.
		return nil, &dispatchErr{err: err, runFailed: we.Code == "run_failed"}
	}
	res, err := store.DecodeEnvelope(key, data)
	if err != nil {
		return nil, &dispatchErr{err: fmt.Errorf("dist: %s: rejected response: %w", w.url, err), corrupt: true}
	}
	return res, nil
}
