package power

import (
	"fmt"
	"math"

	"ichannels/internal/units"
)

// Thermal is a two-stage RC junction-temperature model:
//
//	T_junction = T_ambient + s_pkg + s_die
//	τ_pkg · ds_pkg/dt = P·R_pkg − s_pkg      (heatsink/package, seconds)
//	τ_die · ds_die/dt = P·R_die − s_die      (die, tens of milliseconds)
//
// The slow package stage dominates steady state; the fast die stage gives
// the millisecond-scale response that thermal covert channels (PowerT)
// exploit. Both stages remain orders of magnitude slower than the
// microsecond current-management mechanisms — the paper's §5.3 point that
// immediate PHI throttling cannot be thermal.
type Thermal struct {
	Ambient units.Celsius

	RPkg   float64        // package thermal resistance, °C/W
	TauPkg units.Duration // package time constant

	RDie   float64        // die-stage thermal resistance, °C/W
	TauDie units.Duration // die time constant

	sPkg, sDie float64
	last       units.Time
}

// NewThermal creates a two-stage thermal model at ambient temperature.
// A zero rDie disables the fast stage (pure single-RC model).
func NewThermal(ambient units.Celsius, rPkg float64, tauPkg units.Duration, rDie float64, tauDie units.Duration) (*Thermal, error) {
	if rPkg <= 0 {
		return nil, fmt.Errorf("power: package thermal resistance must be positive, got %g", rPkg)
	}
	if tauPkg <= 0 {
		return nil, fmt.Errorf("power: package thermal time constant must be positive, got %v", tauPkg)
	}
	if rDie < 0 {
		return nil, fmt.Errorf("power: negative die thermal resistance %g", rDie)
	}
	if rDie > 0 && tauDie <= 0 {
		return nil, fmt.Errorf("power: die thermal time constant must be positive, got %v", tauDie)
	}
	return &Thermal{Ambient: ambient, RPkg: rPkg, TauPkg: tauPkg, RDie: rDie, TauDie: tauDie}, nil
}

// Temperature returns the junction temperature as of the last Advance.
func (t *Thermal) Temperature() units.Celsius {
	return t.Ambient + units.Celsius(t.sPkg+t.sDie)
}

// Advance integrates the model from the last update to now assuming
// constant power p over the interval, and returns the new junction
// temperature. Calls with now before the last update are ignored.
func (t *Thermal) Advance(now units.Time, p units.Watt) units.Celsius {
	if now > t.last {
		dt := now.Sub(t.last).Seconds()
		t.last = now
		t.sPkg = settle(t.sPkg, float64(p)*t.RPkg, dt, t.TauPkg.Seconds())
		if t.RDie > 0 {
			t.sDie = settle(t.sDie, float64(p)*t.RDie, dt, t.TauDie.Seconds())
		}
	}
	return t.Temperature()
}

// settle is the exact solution of one first-order stage over dt.
func settle(state, target, dt, tau float64) float64 {
	return target + (state-target)*math.Exp(-dt/tau)
}

// SteadyState returns the temperature the junction settles at under
// constant power p.
func (t *Thermal) SteadyState(p units.Watt) units.Celsius {
	return t.Ambient + units.Celsius(float64(p)*(t.RPkg+t.RDie))
}
