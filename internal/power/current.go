package power

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/units"
)

// CdynModel gives the per-core dynamic capacitance exercised by a
// power-virus of each instruction-intensity class, in farads. The dynamic
// current of a core then follows Icc_dyn = Cdyn · Vcc · F (paper §2,
// Equation 1 context), and the class ordering must be strictly monotone:
// higher intensity → higher Cdyn.
type CdynModel struct {
	// PerClass is the power-virus Cdyn of one core running each class,
	// in farads (order matches isa.Class).
	PerClass [isa.NumClasses]float64
	// Idle is the residual Cdyn of an active but idle core (clock
	// running, no instructions retiring).
	Idle float64
}

// Validate checks strict monotonicity and positivity.
func (m CdynModel) Validate() error {
	if m.Idle < 0 {
		return fmt.Errorf("power: negative idle Cdyn %g", m.Idle)
	}
	prev := 0.0
	for c, v := range m.PerClass {
		if v <= prev {
			return fmt.Errorf("power: Cdyn must be strictly increasing by class; class %s (%g F) <= previous (%g F)",
				isa.Class(c), v, prev)
		}
		prev = v
	}
	return nil
}

// Cdyn returns the dynamic capacitance for a core running class c at
// activity scale (1.0 = power virus of that class).
func (m CdynModel) Cdyn(c isa.Class, scale float64) float64 {
	if !c.Valid() {
		panic(fmt.Sprintf("power: invalid class %d", int(c)))
	}
	if scale < 0 {
		scale = 0
	}
	return m.Idle + (m.PerClass[c]-m.Idle)*scale
}

// DynamicCurrent returns the dynamic current of a load with total dynamic
// capacitance cdyn at voltage v and frequency f.
func DynamicCurrent(cdyn float64, v units.Volt, f units.Hertz) units.Ampere {
	return units.Ampere(cdyn * float64(v) * float64(f))
}

// LeakageModel gives the leakage current of the core power plane as a
// function of voltage and junction temperature. Leakage rises roughly
// linearly with voltage and exponentially (weakly, in our range) with
// temperature; a linearized temperature coefficient suffices for the
// paper's experiments, which never approach thermal limits.
type LeakageModel struct {
	// IRef is the leakage at VRef and TRef, in amperes (whole package).
	IRef units.Ampere
	// VRef, TRef are the reference point.
	VRef units.Volt
	// TempCoeff is the fractional leakage increase per °C above TRef.
	TempCoeff float64
	TRef      units.Celsius
}

// Current returns the leakage current at voltage v and temperature t.
func (l LeakageModel) Current(v units.Volt, t units.Celsius) units.Ampere {
	if l.IRef == 0 {
		return 0
	}
	vs := 1.0
	if l.VRef > 0 {
		vs = float64(v) / float64(l.VRef)
		if vs < 0 {
			vs = 0
		}
	}
	ts := 1.0 + l.TempCoeff*float64(t-l.TRef)
	if ts < 0.1 {
		ts = 0.1
	}
	return units.Ampere(float64(l.IRef) * vs * ts)
}

// Limits are the electrical design limits of the package (paper §2):
// exceeding Iccmax can damage the VR; Vccmax is the maximum operational
// voltage; Tjmax the maximum junction temperature.
type Limits struct {
	IccMax units.Ampere
	VccMax units.Volt
	TjMax  units.Celsius
}

// Validate checks the limits are positive.
func (l Limits) Validate() error {
	if l.IccMax <= 0 || l.VccMax <= 0 || l.TjMax <= 0 {
		return fmt.Errorf("power: limits must be positive (got %+v)", l)
	}
	return nil
}
