package power

import (
	"math"
	"testing"
	"testing/quick"

	"ichannels/internal/isa"
	"ichannels/internal/units"
)

func testCurve() VFCurve { return VFCurve{V0: 0.55, K1: 0.03, K2: 0.04} }

func TestVFCurveValidate(t *testing.T) {
	if err := testCurve().Validate(); err != nil {
		t.Fatalf("valid curve rejected: %v", err)
	}
	for _, bad := range []VFCurve{
		{V0: 0, K1: 0.03, K2: 0.04},
		{V0: 0.5, K1: -1, K2: 0},
		{V0: 0.5, K1: 0, K2: 0},
	} {
		if bad.Validate() == nil {
			t.Errorf("curve %+v should fail", bad)
		}
	}
}

func TestVFCurveVoltageMonotone(t *testing.T) {
	c := testCurve()
	prev := units.Volt(0)
	for f := 0.5; f <= 5; f += 0.1 {
		v := c.Voltage(units.Hertz(f) * units.GHz)
		if v <= prev {
			t.Fatalf("V(F) not increasing at %g GHz", f)
		}
		prev = v
	}
}

// Property: MaxFrequencyFor returns the largest stepped frequency whose
// voltage (plus guardband) fits under vmax.
func TestPropertyMaxFrequencyFor(t *testing.T) {
	c := testCurve()
	step := 100 * units.MHz
	f := func(vmaxMilli uint16, gbMilli uint8) bool {
		vmax := units.Volt(0.6 + float64(vmaxMilli%900)/1000)
		gb := units.Volt(float64(gbMilli%50) / 1000)
		fmax := c.MaxFrequencyFor(vmax, gb, step)
		if fmax == 0 {
			// Even the smallest step must not fit.
			return c.Voltage(step)+gb > vmax
		}
		ok := c.Voltage(fmax)+gb <= vmax+1e-12
		next := fmax + step
		return ok && c.Voltage(next)+gb > vmax-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFrequencyForLinearCurve(t *testing.T) {
	c := VFCurve{V0: 0.5, K1: 0.1, K2: 0}
	// budget 0.3 V → 3 GHz exactly.
	got := c.MaxFrequencyFor(0.8, 0, 100*units.MHz)
	if got != 3*units.GHz {
		t.Fatalf("got %v", got)
	}
	if c.MaxFrequencyFor(0.4, 0, 100*units.MHz) != 0 {
		t.Fatal("impossible budget must return 0")
	}
}

func testCdyn() CdynModel {
	var m CdynModel
	for i := range m.PerClass {
		m.PerClass[i] = float64(i+1) * 1e-9
	}
	m.Idle = 0.2e-9
	return m
}

func TestCdynValidate(t *testing.T) {
	if err := testCdyn().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := testCdyn()
	bad.PerClass[3] = bad.PerClass[2] // not strictly increasing
	if bad.Validate() == nil {
		t.Fatal("non-monotone Cdyn accepted")
	}
	bad2 := testCdyn()
	bad2.Idle = -1
	if bad2.Validate() == nil {
		t.Fatal("negative idle accepted")
	}
}

func TestCdynScaling(t *testing.T) {
	m := testCdyn()
	full := m.Cdyn(isa.Vec256Heavy, 1)
	if full != m.PerClass[isa.Vec256Heavy] {
		t.Fatalf("virus scale: %g", full)
	}
	half := m.Cdyn(isa.Vec256Heavy, 0.5)
	want := m.Idle + (m.PerClass[isa.Vec256Heavy]-m.Idle)*0.5
	if math.Abs(half-want) > 1e-18 {
		t.Fatalf("half scale: %g want %g", half, want)
	}
	if m.Cdyn(isa.Scalar64, -3) != m.Idle {
		t.Fatal("negative scale must clamp to idle")
	}
}

func TestCdynInvalidClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	testCdyn().Cdyn(isa.Class(99), 1)
}

func TestDynamicCurrent(t *testing.T) {
	// 5 nF × 1 V × 2 GHz = 10 A.
	got := DynamicCurrent(5e-9, 1.0, 2*units.GHz)
	if math.Abs(float64(got)-10) > 1e-9 {
		t.Fatalf("Icc = %v", got)
	}
}

func TestLeakage(t *testing.T) {
	l := LeakageModel{IRef: 2, VRef: 0.8, TempCoeff: 0.01, TRef: 50}
	at := l.Current(0.8, 50)
	if math.Abs(float64(at)-2) > 1e-12 {
		t.Fatalf("reference leakage = %v", at)
	}
	hotter := l.Current(0.8, 60)
	if hotter <= at {
		t.Fatal("leakage must rise with temperature")
	}
	higherV := l.Current(1.0, 50)
	if higherV <= at {
		t.Fatal("leakage must rise with voltage")
	}
	var zero LeakageModel
	if zero.Current(1, 100) != 0 {
		t.Fatal("zero model must leak nothing")
	}
}

func TestLimitsValidate(t *testing.T) {
	if (Limits{IccMax: 29, VccMax: 1.15, TjMax: 100}).Validate() != nil {
		t.Fatal("valid limits rejected")
	}
	if (Limits{IccMax: 0, VccMax: 1, TjMax: 100}).Validate() == nil {
		t.Fatal("zero Iccmax accepted")
	}
}

func TestThermalConvergence(t *testing.T) {
	th, err := NewThermal(40, 0.5, units.Second, 0.2, 20*units.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Steady state at 20 W: 40 + 20×0.7 = 54 °C.
	want := th.SteadyState(20)
	if math.Abs(float64(want)-54) > 1e-9 {
		t.Fatalf("steady = %v", want)
	}
	// After 10 package time constants we must be within 0.1 °C.
	var tm units.Time
	for i := 0; i < 100; i++ {
		tm = tm.Add(100 * units.Millisecond)
		th.Advance(tm, 20)
	}
	if math.Abs(float64(th.Temperature()-want)) > 0.1 {
		t.Fatalf("converged to %v, want %v", th.Temperature(), want)
	}
}

func TestThermalFastStageLeadsSlowStage(t *testing.T) {
	th, _ := NewThermal(40, 0.5, 2*units.Second, 0.3, 15*units.Millisecond)
	// 5 ms of 30 W: the die stage responds, the package barely moves.
	th.Advance(units.Time(5*units.Millisecond), 30)
	rise := float64(th.Temperature() - 40)
	// Die stage alone would contribute 30×0.3×(1−e^(−1/3)) ≈ 2.55 °C.
	if rise < 1.5 || rise > 4 {
		t.Fatalf("5 ms rise = %g °C, want ≈2.5 (fast die stage)", rise)
	}
}

func TestThermalNeverRunsBackwards(t *testing.T) {
	th, _ := NewThermal(40, 0.5, units.Second, 0, 0)
	th.Advance(units.Time(units.Second), 50)
	before := th.Temperature()
	th.Advance(units.Time(500*units.Millisecond), 0) // in the past
	if th.Temperature() != before {
		t.Fatal("backwards Advance changed state")
	}
}

func TestThermalValidation(t *testing.T) {
	if _, err := NewThermal(40, 0, units.Second, 0, 0); err == nil {
		t.Fatal("zero Rth accepted")
	}
	if _, err := NewThermal(40, 0.5, 0, 0, 0); err == nil {
		t.Fatal("zero tau accepted")
	}
	if _, err := NewThermal(40, 0.5, units.Second, -1, units.Second); err == nil {
		t.Fatal("negative die Rth accepted")
	}
	if _, err := NewThermal(40, 0.5, units.Second, 0.1, 0); err == nil {
		t.Fatal("die stage without tau accepted")
	}
}

// Property: the thermal model never overshoots its steady state from
// below, and cooling never undershoots ambient.
func TestPropertyThermalBounded(t *testing.T) {
	f := func(powerRaw uint8, steps uint8) bool {
		th, _ := NewThermal(40, 0.4, 500*units.Millisecond, 0.2, 10*units.Millisecond)
		p := units.Watt(powerRaw % 60)
		steady := th.SteadyState(p)
		var tm units.Time
		for i := 0; i < int(steps%40)+1; i++ {
			tm = tm.Add(25 * units.Millisecond)
			got := th.Advance(tm, p)
			if got > steady+1e-9 || got < 40-1e-9 {
				return false
			}
		}
		// Now cool: never below ambient.
		for i := 0; i < 50; i++ {
			tm = tm.Add(50 * units.Millisecond)
			if got := th.Advance(tm, 0); got < 40-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
