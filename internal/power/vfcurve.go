// Package power models the electrical behaviour of the simulated processor:
// voltage/frequency curves, per-class dynamic capacitance, supply current,
// the Iccmax/Vccmax design limits, and a first-order thermal model for the
// core junction temperature.
//
// These models feed the PMU's two protection mechanisms the paper
// characterizes: voltage-emergency (di/dt) avoidance via guardbands, and
// maximum current/voltage limit protection via frequency reduction (§2,
// §5.2, §5.3).
package power

import (
	"fmt"
	"math"

	"ichannels/internal/units"
)

// VFCurve maps core clock frequency to the minimum stable supply voltage
// (before guardbands): Vcc(F) = V0 + K1·F + K2·F², with F in GHz. The
// quadratic term models the super-linear voltage demand near Turbo
// frequencies that makes Vccmax reachable (paper Fig. 7(a)).
type VFCurve struct {
	V0 units.Volt // voltage intercept at F→0
	K1 float64    // V per GHz
	K2 float64    // V per GHz²
}

// Validate checks the curve is physically plausible (monotone increasing
// over positive frequencies).
func (c VFCurve) Validate() error {
	if c.V0 <= 0 {
		return fmt.Errorf("power: VF curve intercept %v must be positive", c.V0)
	}
	if c.K1 < 0 || c.K2 < 0 {
		return fmt.Errorf("power: VF curve slopes must be non-negative (k1=%g k2=%g)", c.K1, c.K2)
	}
	if c.K1 == 0 && c.K2 == 0 {
		return fmt.Errorf("power: VF curve must rise with frequency")
	}
	return nil
}

// Voltage returns the base supply voltage required at frequency f.
func (c VFCurve) Voltage(f units.Hertz) units.Volt {
	g := f.GHzF()
	return c.V0 + units.Volt(c.K1*g+c.K2*g*g)
}

// MaxFrequencyFor returns the highest frequency (rounded down to step) whose
// base voltage plus the supplied guardband fits under vmax. It returns 0 if
// no positive frequency qualifies.
func (c VFCurve) MaxFrequencyFor(vmax units.Volt, guardband units.Volt, step units.Hertz) units.Hertz {
	if step <= 0 {
		step = 100 * units.MHz
	}
	budget := float64(vmax - guardband - c.V0)
	if budget <= 0 {
		return 0
	}
	var g float64
	if c.K2 == 0 {
		g = budget / c.K1
	} else {
		// Solve K2·g² + K1·g − budget = 0 for the positive root.
		disc := c.K1*c.K1 + 4*c.K2*budget
		g = (-c.K1 + math.Sqrt(disc)) / (2 * c.K2)
	}
	f := units.Hertz(g * 1e9)
	steps := math.Floor(float64(f) / float64(step))
	if steps < 0 {
		return 0
	}
	return units.Hertz(steps) * step
}
