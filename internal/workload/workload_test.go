package workload

import (
	"testing"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/units"
)

func machine(t *testing.T, seed int64) *soc.Machine {
	t.Helper()
	m, err := soc.New(soc.Options{Processor: model.CannonLake8121U(), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPhasedLoopStopsAtDeadline(t *testing.T) {
	m := machine(t, 1)
	pl := &PhasedLoop{
		Label:  "p",
		Phases: []Phase{{Kernel: isa.Loop64b, Iters: 100}, {Kernel: isa.Loop256Heavy, Iters: 50}},
		Until:  units.Time(200 * units.Microsecond),
	}
	th, err := m.Bind(0, 0, pl)
	if err != nil {
		t.Fatal(err)
	}
	m.RunFor(400 * units.Microsecond)
	if !th.Stopped() {
		t.Fatal("phased loop did not stop at its deadline")
	}
}

func TestPhasedLoopEmptyStops(t *testing.T) {
	m := machine(t, 1)
	pl := &PhasedLoop{Label: "e", Until: units.Time(units.Second)}
	th, err := m.Bind(0, 0, pl)
	if err != nil {
		t.Fatal(err)
	}
	m.RunFor(10 * units.Microsecond)
	if !th.Stopped() {
		t.Fatal("empty phased loop must stop immediately")
	}
}

func TestPowerVirusRaisesLicense(t *testing.T) {
	m := machine(t, 2)
	v := NewPowerVirus(true, units.Time(100*units.Microsecond))
	if _, err := m.Bind(0, 0, v); err != nil {
		t.Fatal(err)
	}
	m.RunFor(60 * units.Microsecond)
	if m.PMU.Licenses()[0] != isa.Vec512Heavy {
		t.Fatalf("virus license = %v", m.PMU.Licenses()[0])
	}
	// Non-AVX512 variant must cap at 256b_Heavy.
	if NewPowerVirus(false, 0).Phases[0].Kernel.Class != isa.Vec256Heavy {
		t.Fatal("non-AVX512 virus class")
	}
}

func TestCalculixProxyAlternatesPhases(t *testing.T) {
	p := NewCalculixProxy(units.Time(units.Second))
	if len(p.Phases) < 2 {
		t.Fatal("calculix proxy needs phases")
	}
	sawScalar, sawAVX := false, false
	for _, ph := range p.Phases {
		if ph.Kernel.Class == isa.Scalar64 {
			sawScalar = true
		}
		if ph.Kernel.Class.AVX() {
			sawAVX = true
		}
	}
	if !sawScalar || !sawAVX {
		t.Fatal("calculix proxy must alternate non-AVX and AVX2 phases")
	}
}

func TestSevenZipNeverUsesAVX512(t *testing.T) {
	m := machine(t, 3)
	zip := &SevenZip{Until: units.Time(5 * units.Millisecond)}
	if _, err := m.Bind(0, 0, zip); err != nil {
		t.Fatal(err)
	}
	m.RunFor(5 * units.Millisecond)
	for _, lic := range m.PMU.Licenses() {
		if lic.AVX512() {
			t.Fatal("7-zip proxy must not touch AVX-512 (paper §6.3)")
		}
	}
	// It must have exercised AVX2 at least once.
	if m.Cores[0].AVX256Wakes() == 0 {
		t.Fatal("7-zip proxy never used AVX2")
	}
}

func TestPHIInjectorValidate(t *testing.T) {
	if (&PHIInjector{Rate: 0, Class: isa.Vec256Heavy}).Validate() == nil {
		t.Fatal("zero rate accepted")
	}
	if (&PHIInjector{Rate: 10, Class: isa.Class(99)}).Validate() == nil {
		t.Fatal("invalid class accepted")
	}
	if (&PHIInjector{Rate: 10, Random: true}).Validate() != nil {
		t.Fatal("random injector rejected")
	}
}

func TestPHIInjectorApproximatesRate(t *testing.T) {
	m := machine(t, 4)
	inj := &PHIInjector{Rate: 2000, Class: isa.Vec256Heavy, BurstIters: 10, Until: units.Time(50 * units.Millisecond)}
	if _, err := m.Bind(1, 0, inj); err != nil {
		t.Fatal(err)
	}
	m.RunFor(50 * units.Millisecond)
	// Each burst touches the license; count grants+touches indirectly via
	// PMU stats: every burst after decay re-requests. Cheaper check: the
	// machine spent a plausible amount of time with a PHI license.
	grants := m.PMU.Stats().Grants
	// 2000/s × 50 ms = ~100 bursts; consecutive bursts inside one
	// hysteresis window share a grant, so expect ≳10 and ≲120 grants.
	if grants < 10 || grants > 130 {
		t.Fatalf("grants = %d for 100 expected bursts", grants)
	}
}

func TestPHIInjectorRandomDrawsAllLevels(t *testing.T) {
	// Bursts ~1 ms apart leave room for the license to decay between
	// them, so the sampled license reflects each burst's own level
	// rather than a sticky maximum.
	m := machine(t, 5)
	inj := &PHIInjector{Rate: 1000, Random: true, BurstIters: 5, Until: units.Time(80 * units.Millisecond)}
	if _, err := m.Bind(1, 0, inj); err != nil {
		t.Fatal(err)
	}
	seen := map[isa.Class]bool{}
	for i := 0; i < 1600; i++ {
		m.RunFor(50 * units.Microsecond)
		seen[m.PMU.Licenses()[1]] = true
	}
	phiKinds := 0
	for c := range seen {
		if c.PHI() {
			phiKinds++
		}
	}
	if phiKinds < 3 {
		t.Fatalf("random injector exercised only %d PHI levels (%v)", phiKinds, seen)
	}
}
