// Package workload provides the software contexts the paper's experiments
// run besides the attack code: Agner-Fog-style measurement loops, a power
// virus, a proxy for SPEC CPU2006 454.calculix (alternating non-AVX and
// AVX2 phases, Fig. 6(b)), a 7-zip proxy (bursty AVX2 without AVX-512,
// §6.3), and the synthetic PHI-injecting application used for the noise
// study (Fig. 14(b,c)).
package workload

import (
	"fmt"
	"math"

	"ichannels/internal/isa"
	"ichannels/internal/soc"
	"ichannels/internal/units"
)

// Phase is one stage of a phased workload.
type Phase struct {
	Kernel isa.Kernel
	Iters  int64
}

// PhasedLoop cycles through phases until a deadline, then stops. It is
// the generic building block for phase-structured applications.
type PhasedLoop struct {
	Label  string
	Phases []Phase
	Until  units.Time

	idx int
}

// Name implements soc.Agent.
func (p *PhasedLoop) Name() string { return p.Label }

// Next implements soc.Agent.
func (p *PhasedLoop) Next(env *soc.Env, prev *soc.Result) soc.Action {
	if env.Now() >= p.Until {
		return soc.Stop()
	}
	if len(p.Phases) == 0 {
		return soc.Stop()
	}
	ph := p.Phases[p.idx%len(p.Phases)]
	p.idx++
	return soc.Exec(ph.Kernel, ph.Iters)
}

// NewPowerVirus returns an agent that pins the machine at the worst-case
// dynamic capacitance (a 512b_Heavy virus loop, or 256b_Heavy on parts
// without AVX-512) until the deadline.
func NewPowerVirus(avx512 bool, until units.Time) *PhasedLoop {
	k := isa.Loop512Heavy
	if !avx512 {
		k = isa.Loop256Heavy
	}
	return &PhasedLoop{
		Label:  "power-virus",
		Phases: []Phase{{Kernel: k, Iters: 2000}},
		Until:  until,
	}
}

// NewCalculixProxy returns an agent mimicking 454.calculix compiled with
// AVX2 auto-vectorization: long scalar phases interleaved with AVX2
// phases of comparable length (the paper's Fig. 6(b) trace alternates on
// the order of hundreds of milliseconds). Iteration counts assume ≈2 GHz.
func NewCalculixProxy(until units.Time) *PhasedLoop {
	// ~200 ms scalar, ~150 ms AVX2 per cycle at 2 GHz.
	scalarIters := int64(2_000_000) // 2e6 × 200 uops / 2 UPC / 2 GHz ≈ 100 ms
	avxIters := int64(1_500_000)    // 1.5e6 × 200 uops / 1 UPC / 2 GHz ≈ 150 ms
	return &PhasedLoop{
		Label: "454.calculix-proxy",
		Phases: []Phase{
			{Kernel: isa.Loop64b, Iters: scalarIters},
			{Kernel: isa.Loop256Heavy, Iters: avxIters},
			{Kernel: isa.Loop64b, Iters: scalarIters / 2},
			{Kernel: isa.Loop256Light, Iters: avxIters / 2},
		},
		Until: until,
	}
}

// SevenZip is a proxy for the 7-zip benchmark: bursts of AVX2 work
// (match/encode loops use 128/256-bit integer SIMD; never AVX-512) with
// scalar bookkeeping in between. Burst lengths are drawn from the
// machine's deterministic RNG.
type SevenZip struct {
	Until units.Time
	burst bool
}

// Name implements soc.Agent.
func (s *SevenZip) Name() string { return "7zip-proxy" }

// Next implements soc.Agent.
func (s *SevenZip) Next(env *soc.Env, prev *soc.Result) soc.Action {
	if env.Now() >= s.Until {
		return soc.Stop()
	}
	rng := env.M.Rand()
	s.burst = !s.burst
	if s.burst {
		// AVX2 burst: mixed light/heavy 256-bit work, 20–200 µs.
		k := isa.Loop256Light
		if rng.Intn(3) == 0 {
			k = isa.Loop256Heavy
		}
		iters := 100 + rng.Int63n(900)
		return soc.Exec(k, iters)
	}
	// Scalar bookkeeping between bursts, 50–500 µs.
	return soc.Exec(isa.Loop64b, 500+rng.Int63n(4500))
}

// PHIInjector is the synthetic "App" of the paper's Fig. 14(b,c): it
// executes short PHI bursts at a configurable average rate, each at a
// fixed or random intensity level, idling in between.
type PHIInjector struct {
	// Rate is the average injection rate in PHI bursts per second.
	Rate float64
	// Class fixes the burst intensity; if Random is set, each burst
	// instead draws uniformly from the four covert-symbol classes.
	Class  isa.Class
	Random bool
	// BurstIters sizes each PHI burst (default 50 iterations).
	BurstIters int64
	// Until stops the injector.
	Until units.Time

	inBurst bool
}

// Name implements soc.Agent.
func (p *PHIInjector) Name() string { return "phi-injector" }

// Validate checks the injector configuration.
func (p *PHIInjector) Validate() error {
	if p.Rate <= 0 {
		return fmt.Errorf("workload: injector rate must be positive, got %g", p.Rate)
	}
	if !p.Random && !p.Class.Valid() {
		return fmt.Errorf("workload: injector class %d invalid", int(p.Class))
	}
	return nil
}

// symbolClasses are the four covert-channel intensity levels (paper
// Fig. 3) the random injector draws from.
var symbolClasses = [4]isa.Class{isa.Vec128Heavy, isa.Vec256Light, isa.Vec256Heavy, isa.Vec512Heavy}

// Next implements soc.Agent.
func (p *PHIInjector) Next(env *soc.Env, prev *soc.Result) soc.Action {
	if env.Now() >= p.Until {
		return soc.Stop()
	}
	rng := env.M.Rand()
	if p.inBurst {
		p.inBurst = false
		cls := p.Class
		if p.Random {
			cls = symbolClasses[rng.Intn(len(symbolClasses))]
		}
		iters := p.BurstIters
		if iters <= 0 {
			iters = 50
		}
		return soc.Exec(isa.KernelFor(cls), iters)
	}
	p.inBurst = true
	// Exponential inter-arrival around the configured rate.
	mean := 1 / p.Rate
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	gap := units.FromSeconds(mean * -math.Log(u))
	if gap < units.Microsecond {
		gap = units.Microsecond
	}
	return soc.IdleFor(gap)
}
