package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// TestRegistryComplete: every registry entry carries everything the
// dispatchers need, so a half-filled entry fails here instead of as a
// nil-dereference inside a run.
func TestRegistryComplete(t *testing.T) {
	if len(kindRegistry) == 0 {
		t.Fatal("empty kind registry")
	}
	for _, ks := range kindRegistry {
		if ks.name == "" || ks.describe == "" || ks.source == "" {
			t.Errorf("kind %+v: missing name/describe/source", ks)
		}
		if ks.defaultBits <= 0 || ks.defaultBits%2 != 0 {
			t.Errorf("kind %s: default bits %d not positive and even", ks.name, ks.defaultBits)
		}
		if ks.defaultCalibReps <= 0 {
			t.Errorf("kind %s: default calib reps %d", ks.name, ks.defaultCalibReps)
		}
		if ks.run == nil || ks.evalMitigation == nil {
			t.Errorf("kind %s: missing executor", ks.name)
		}
	}
	for _, bs := range baselineRegistry {
		if bs.construct == nil || bs.defaultBits <= 0 || bs.defaultCalibReps <= 0 {
			t.Errorf("baseline %s: incomplete entry", bs.name)
		}
	}
}

// TestSchemaEnumsMatchRegistry is the drift guard: the schema document's
// kind/baseline/mitigation enums must be exactly the registry keys —
// there is no second hand-maintained list to fall out of sync.
func TestSchemaEnumsMatchRegistry(t *testing.T) {
	props := Schema()["properties"].(map[string]any)
	enumOf := func(field string) []string {
		raw, ok := props[field].(map[string]any)["enum"]
		if !ok {
			t.Fatalf("schema field %s has no enum", field)
		}
		return raw.([]string)
	}
	if got := enumOf("kind"); !reflect.DeepEqual(got, ChannelKindNames()) {
		t.Errorf("schema kind enum %v != registry %v", got, ChannelKindNames())
	}
	if got := enumOf("baseline"); !reflect.DeepEqual(got, BaselineNames()) {
		t.Errorf("schema baseline enum %v != registry %v", got, BaselineNames())
	}
	if got := enumOf("mitigation"); !reflect.DeepEqual(got, MitigationNames()) {
		t.Errorf("schema mitigation enum %v != registry %v", got, MitigationNames())
	}
}

// TestValidateAcceptanceMatchesRegistry: Validate accepts exactly the
// registered names for each role — every registered kind/baseline/
// mitigation passes, and any unregistered name is a validation error
// (never a silent fallback to a default).
func TestValidateAcceptanceMatchesRegistry(t *testing.T) {
	for _, k := range ChannelKindNames() {
		for _, role := range []string{RoleChannel, RoleMitigation} {
			if err := (Scenario{Role: role, Kind: k}).Validate(); err != nil {
				t.Errorf("registered kind %s rejected for role %s: %v", k, role, err)
			}
		}
		spyErr := (Scenario{Role: RoleSpy, Kind: k}).Validate()
		isSpy := false
		for _, s := range SpyKindNames() {
			if s == k {
				isSpy = true
			}
		}
		if isSpy && spyErr != nil {
			t.Errorf("spy kind %s rejected: %v", k, spyErr)
		}
		if !isSpy && (spyErr == nil || !strings.Contains(spyErr.Error(), "spy kind must be")) {
			t.Errorf("non-spy kind %s for role spy: err=%v", k, spyErr)
		}
	}
	for _, b := range BaselineNames() {
		if err := (Scenario{Role: RoleBaseline, Baseline: b}).Validate(); err != nil {
			t.Errorf("registered baseline %s rejected: %v", b, err)
		}
	}
	for _, mname := range MitigationNames() {
		if err := (Scenario{Role: RoleMitigation, Mitigation: mname}).Validate(); err != nil {
			t.Errorf("registered mitigation %s rejected: %v", mname, err)
		}
		if _, err := mitigationKind(mname); err != nil {
			t.Errorf("mitigationKind(%s): %v", mname, err)
		}
	}

	// Unknown names must surface as errors on every role, with the
	// registry vocabulary in the message.
	for _, role := range []string{RoleChannel, RoleMitigation} {
		err := (Scenario{Role: role, Kind: "sgx"}).Validate()
		if err == nil || !strings.Contains(err.Error(), "unknown channel kind") {
			t.Errorf("role %s with unknown kind: err=%v", role, err)
		}
		for _, k := range ChannelKindNames() {
			if err != nil && !strings.Contains(err.Error(), k) {
				t.Errorf("unknown-kind error does not list %s: %v", k, err)
			}
		}
	}
	if err := (Scenario{Role: RoleBaseline, Baseline: "sgx"}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "unknown baseline") {
		t.Errorf("unknown baseline: err=%v", err)
	}
	if err := (Scenario{Role: RoleMitigation, Kind: KindCores, Mitigation: "sgx"}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "unknown mitigation") {
		t.Errorf("unknown mitigation: err=%v", err)
	}
}

// TestRegistryDefaultsApplied: normalization reads per-kind defaults
// from the registry (clockmod's smaller payload), and the calibration
// depth follows the kind.
func TestRegistryDefaultsApplied(t *testing.T) {
	for _, ks := range kindRegistry {
		n := Scenario{Role: RoleChannel, Kind: ks.name}.Normalized()
		if n.Bits != ks.defaultBits {
			t.Errorf("kind %s: normalized bits %d, registry default %d", ks.name, n.Bits, ks.defaultBits)
		}
		if got := effectiveCalibReps(n); got != ks.defaultCalibReps {
			t.Errorf("kind %s: calib reps %d, registry default %d", ks.name, got, ks.defaultCalibReps)
		}
	}
	for _, bs := range baselineRegistry {
		n := Scenario{Role: RoleBaseline, Baseline: bs.name}.Normalized()
		if n.Bits != bs.defaultBits {
			t.Errorf("baseline %s: normalized bits %d, registry default %d", bs.name, n.Bits, bs.defaultBits)
		}
		if got := effectiveCalibReps(n); got != bs.defaultCalibReps {
			t.Errorf("baseline %s: calib reps %d, registry default %d", bs.name, got, bs.defaultCalibReps)
		}
	}
}

// TestNewKindConstraints: the adopted families' topology and knob rules.
func TestNewKindConstraints(t *testing.T) {
	// retire needs SMT: the 9700K profile has none.
	err := (Scenario{Role: RoleChannel, Kind: KindRetire, Processor: "Coffee Lake"}).Validate()
	if err == nil || !strings.Contains(err.Error(), "requires an SMT processor") {
		t.Errorf("retire on SMT-less part: err=%v", err)
	}
	// clockmod needs two cores.
	err = (Scenario{Role: RoleChannel, Kind: KindClockMod, Params: &Params{Cores: 1}}).Validate()
	if err == nil || !strings.Contains(err.Error(), "requires at least 2 cores") {
		t.Errorf("clockmod on one core: err=%v", err)
	}
	// clockmod's sender is one MSR write per window; there is no sender
	// loop to tune, so the override is rejected instead of ignored.
	err = (Scenario{Role: RoleChannel, Kind: KindClockMod, Params: &Params{SenderIters: 100}}).Validate()
	if err == nil || !strings.Contains(err.Error(), "sender_iters is not valid for kind clockmod") {
		t.Errorf("clockmod sender_iters: err=%v", err)
	}
	// ... but the window knobs map and are accepted.
	if err := (Scenario{Role: RoleChannel, Kind: KindClockMod,
		Params: &Params{SlotPeriodUS: 200, ReceiverIters: 100, ReceiverOffsetUS: 20}}).Validate(); err != nil {
		t.Errorf("clockmod window knobs rejected: %v", err)
	}
	if err := (Scenario{Role: RoleChannel, Kind: KindRetire,
		Params: &Params{SenderIters: 32}}).Validate(); err != nil {
		t.Errorf("retire sender_iters rejected: %v", err)
	}
}

// TestSweepAxisRegistryValidation: enum axis values are checked against
// the registries at parse/validate time, so a typo or a kind the base
// role cannot run fails before any cell simulates.
func TestSweepAxisRegistryValidation(t *testing.T) {
	cases := []struct {
		name string
		sw   Sweep
		want string
	}{
		{"unknown kind", Sweep{Base: Scenario{Role: RoleChannel},
			Axes: SweepAxes{Kind: []string{KindCores, "sgx"}}},
			"not a registered channel kind"},
		{"non-spy kind for spy base", Sweep{Base: Scenario{Role: RoleSpy},
			Axes: SweepAxes{Kind: []string{KindSMT, KindRetire}}},
			"not valid for base role spy"},
		{"kind axis on baseline base", Sweep{Base: Scenario{Role: RoleBaseline, Baseline: BaselineTurboCC},
			Axes: SweepAxes{Kind: []string{KindCores}}},
			"kind axis is not valid for base role baseline"},
		{"unknown baseline", Sweep{Base: Scenario{Role: RoleBaseline},
			Axes: SweepAxes{Baseline: []string{"sgx"}}},
			"not a registered baseline"},
		{"unknown mitigation", Sweep{Base: Scenario{Role: RoleMitigation, Kind: KindCores},
			Axes: SweepAxes{Mitigation: []string{MitigationNone, "sgx"}}},
			"not a registered mitigation"},
	}
	for _, tc := range cases {
		err := tc.sw.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err=%v, want substring %q", tc.name, err, tc.want)
		}
	}
	// The full cross-family grid is valid on the default SMT part.
	ok := Sweep{
		Base: Scenario{Role: RoleMitigation, Bits: 16},
		Axes: SweepAxes{Kind: ChannelKindNames(), Mitigation: MitigationNames()},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("cross-family grid rejected: %v", err)
	}
	got, err := ok.CountCells()
	if err != nil {
		t.Errorf("cross-family grid count: %v", err)
	} else if got != len(ChannelKindNames())*len(MitigationNames()) {
		t.Errorf("cross-family grid cells = %d", got)
	}
}

// TestMitigationAliasesFoldToRegistry: every alias normalizes onto a
// registered canonical name.
func TestMitigationAliasesFoldToRegistry(t *testing.T) {
	for alias, canon := range mitigationAliases {
		if _, ok := mitigationByName[canon]; !ok {
			t.Errorf("alias %q folds to unregistered %q", alias, canon)
		}
		n := Scenario{Role: RoleMitigation, Kind: KindCores, Mitigation: alias}.Normalized()
		if n.Mitigation != canon {
			t.Errorf("alias %q normalized to %q, want %q", alias, n.Mitigation, canon)
		}
	}
}
