package scenario

import (
	"fmt"
	"sort"
)

// Refinement metrics: the per-cell scalar the refinement controller
// watches for transitions.
const (
	RefineMetricBER        = "ber"
	RefineMetricThroughput = "throughput_bps"
)

// Refinement bounds.
const (
	// DefaultRefineMaxPasses is how many refinement passes follow the
	// coarse pass when the spec does not say; MaxRefinePasses is the
	// hard ceiling (a stride of 2^32 is not a real grid).
	DefaultRefineMaxPasses = 4
	MaxRefinePasses        = 32
	// DefaultRefineCellsPerPass bounds one pass's simulation work when
	// the spec pins no budget.
	DefaultRefineCellsPerPass = 1024
)

// Refine describes adaptive multi-pass execution of a sweep: run a
// coarse subsample of the grid first, then re-expand only the regions
// where the watched metric actually moves. The paper's noise-vs-BER
// curves (Fig. 14) need dense sampling only near the knee; a refined
// sweep finds the knee with a fraction of the dense grid's cells.
//
// Mechanics: every axis named in Stride is sampled at positions
// {0, s, 2s, …, last} in the coarse pass. After each pass the grouped
// aggregate is scored: for every pair of adjacent computed positions
// along a refined axis (within each combination of the other group_by
// axes), the score is the larger of the metric's mean shift between the
// two groups and either group's internal min-max spread. An interval
// scoring at or above Threshold gains its midpoint cell(s) in the next
// pass, until the grid is locally dense, the interval flattens, or
// MaxPasses is exhausted. Refined axes must therefore appear in the
// sweep's effective group_by — the aggregator is the refinement signal.
//
// Determinism: the refined cell set and the final aggregate are a pure
// function of (sweep, base seed). Within a pass, cells dispatch in the
// order of their scenario content hashes (ties by dense index), which
// is also the order the per-pass budget truncates in — so serial,
// parallel, and killed-and-resumed runs compute the same cells and emit
// byte-identical aggregates.
type Refine struct {
	// Metric is the watched per-cell scalar: "ber" (default) or
	// "throughput_bps".
	Metric string `json:"metric,omitempty"`
	// Stride maps a refined axis name to its coarse sampling stride
	// (≥ 2). At least one axis is required, it must be an axis of the
	// sweep with at least 3 values, and it must be in group_by.
	Stride map[string]int `json:"stride"`
	// Threshold is the score at or above which an interval refines
	// (same unit as the metric). Must be positive: a zero threshold
	// would re-expand everything and the sweep would just be dense.
	Threshold float64 `json:"threshold"`
	// MaxPasses caps the refinement passes that follow the coarse pass
	// (0 = DefaultRefineMaxPasses, at most MaxRefinePasses).
	MaxPasses int `json:"max_passes,omitempty"`
	// MaxCellsPerPass bounds one pass's cell count (0 =
	// DefaultRefineCellsPerPass). Truncation keeps the hash-order
	// prefix; the dropped cells stay candidates for the next pass.
	MaxCellsPerPass int `json:"max_cells_per_pass,omitempty"`
}

// normalizedRefine folds defaults and canonicalizes names so two
// spellings of the same refinement hash identically.
func normalizedRefine(r *Refine) *Refine {
	if r == nil {
		return nil
	}
	n := *r
	n.Metric = normalizeEnum(n.Metric)
	if n.Metric == "" {
		n.Metric = RefineMetricBER
	}
	if n.MaxPasses == 0 {
		n.MaxPasses = DefaultRefineMaxPasses
	}
	if n.MaxCellsPerPass == 0 {
		n.MaxCellsPerPass = DefaultRefineCellsPerPass
	}
	if len(r.Stride) > 0 {
		stride := make(map[string]int, len(r.Stride))
		// Deterministic rebuild: sorted original keys, so a (invalid)
		// casing collision resolves the same way on every run and the
		// normalize→marshal fixed point holds.
		keys := make([]string, 0, len(r.Stride))
		for k := range r.Stride {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			stride[normalizeEnum(k)] = r.Stride[k]
		}
		n.Stride = stride
	}
	return &n
}

// validateRefine checks a normalized refine block against the sweep's
// normalized axes and group-by. usedAxes maps axis name → value count.
func validateRefine(r *Refine, usedAxes map[string]int, groupBy []string) error {
	switch r.Metric {
	case RefineMetricBER, RefineMetricThroughput:
	default:
		return fmt.Errorf("sweep: refine metric must be %q or %q, got %q",
			RefineMetricBER, RefineMetricThroughput, r.Metric)
	}
	if len(r.Stride) == 0 {
		return fmt.Errorf("sweep: refine needs at least one strided axis")
	}
	grouped := map[string]bool{}
	for _, g := range groupBy {
		grouped[g] = true
	}
	// Sorted keys so multi-error specs fail the same way every run.
	keys := make([]string, 0, len(r.Stride))
	for k := range r.Stride {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, axis := range keys {
		s := r.Stride[axis]
		n, used := usedAxes[axis]
		if !used {
			return fmt.Errorf("sweep: refine stride names %q, which is not an axis of this sweep", axis)
		}
		if s < 2 {
			return fmt.Errorf("sweep: refine stride for %s must be ≥ 2 (1 is just the dense grid), got %d", axis, s)
		}
		if n < 3 {
			return fmt.Errorf("sweep: axis %s has %d values; refining needs at least 3 (coarse endpoints plus something to skip)", axis, n)
		}
		if !grouped[axis] {
			return fmt.Errorf("sweep: refined axis %s must be in group_by (the grouped aggregate is the refinement signal)", axis)
		}
	}
	if !(r.Threshold > 0) {
		return fmt.Errorf("sweep: refine threshold must be positive, got %v", r.Threshold)
	}
	if r.MaxPasses < 0 || r.MaxPasses > MaxRefinePasses {
		return fmt.Errorf("sweep: refine max_passes must be in [1, %d], got %d", MaxRefinePasses, r.MaxPasses)
	}
	if r.MaxCellsPerPass < 0 || r.MaxCellsPerPass > MaxSweepCells {
		return fmt.Errorf("sweep: refine max_cells_per_pass must be in [1, %d], got %d", MaxSweepCells, r.MaxCellsPerPass)
	}
	return nil
}
