package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"ichannels/internal/exp"
	"ichannels/internal/model"
)

// ParseSpecs parses a JSON spec payload — one scenario object or a
// non-empty array of them — rejecting unknown fields and trailing data
// so specs cannot silently drift from the schema. It is the one decoder
// the CLI and the HTTP v1 layer share. isArray reports which form the
// payload used (the HTTP layer answers arrays with an NDJSON stream).
func ParseSpecs(data []byte) (specs []Scenario, isArray bool, err error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return nil, false, fmt.Errorf("empty spec; give a scenario object or array")
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	if trimmed[0] == '[' {
		isArray = true
		if err := dec.Decode(&specs); err != nil {
			return nil, true, err
		}
		if len(specs) == 0 {
			return nil, true, fmt.Errorf("empty scenario array")
		}
	} else {
		var s Scenario
		if err := dec.Decode(&s); err != nil {
			return nil, false, err
		}
		specs = []Scenario{s}
	}
	if dec.More() {
		return nil, isArray, fmt.Errorf("trailing data after JSON value (did you mean a [...] array?)")
	}
	return specs, isArray, nil
}

// FromExperiment wraps a registered experiment ID as a Scenario, the
// canned generator that lets the figure/table registry ride the same
// batch and HTTP paths as ad-hoc scenarios.
func FromExperiment(id string) Scenario {
	return Scenario{Role: RoleExperiment, Experiment: id}
}

// AllExperiments returns one experiment-role Scenario per registered
// experiment, in definition order.
func AllExperiments() []Scenario {
	ids := exp.IDs()
	out := make([]Scenario, len(ids))
	for i, id := range ids {
		out[i] = FromExperiment(id)
	}
	return out
}

// Schema returns a machine-readable description of the Scenario spec —
// a JSON-Schema-shaped document with the enums resolved against the
// live registries (processors, experiments), served at GET
// /v1/scenarios/schema so clients and docs cannot drift from the code.
func Schema() map[string]any {
	procs := []string{}
	for _, p := range model.All() {
		procs = append(procs, p.CodeName)
	}
	if x, err := model.ByName("Skylake-SP"); err == nil {
		procs = append(procs, x.CodeName)
	}
	str := func(desc string, enum ...string) map[string]any {
		m := map[string]any{"type": "string", "description": desc}
		if len(enum) > 0 {
			m["enum"] = enum
		}
		return m
	}
	num := func(t, desc string) map[string]any {
		return map[string]any{"type": t, "description": desc}
	}
	return map[string]any{
		"$schema":     "https://json-schema.org/draft/2020-12/schema",
		"$id":         "ichannels/v1/scenario",
		"title":       "Scenario",
		"description": "One declarative run spec: POST a single object or an array of them to /v1/scenarios.",
		"type":        "object",
		"required":    []string{"role"},
		"properties": map[string]any{
			"name": str("optional label echoed into the result; not part of the scenario's identity"),
			"role": str("run path", RoleChannel, RoleBaseline, RoleSpy, RoleMitigation, RoleExperiment),
			"processor": str("simulated part, marketing or code name (default \""+DefaultProcessor+"\")",
				procs...),
			"kind": str("channel variant: "+strings.Join(ChannelKindNames(), "/")+" for channel and mitigation-eval (default "+KindCores+"), "+
				strings.Join(SpyKindNames(), "/")+" for spy (default "+KindSMT+")",
				ChannelKindNames()...),
			"baseline": str("comparison channel for role baseline",
				BaselineNames()...),
			"mitigation": str("defense for role mitigation-eval (default "+MitigationNone+")",
				MitigationNames()...),
			"experiment": str("registered experiment id for role experiment", exp.IDs()...),
			"noise": map[string]any{
				"type":        "object",
				"description": "OS noise injection; absent = quiet machine (rejected by mitigation-eval, which has its own noise env)",
				"properties": map[string]any{
					"interrupts_per_sec":   num("number", "machine-wide interrupt arrival rate"),
					"ctx_switches_per_sec": num("number", "context-switch arrival rate"),
					"tsc_jitter_cycles":    num("integer", "uniform [0,n) rdtsc measurement jitter"),
				},
			},
			"coding": map[string]any{
				"type":        "object",
				"description": "Hamming(7,4)+interleave+CRC framing of the payload (role channel)",
				"properties": map[string]any{
					"interleave_depth": num("integer", "bit interleaver depth (default 7)"),
				},
			},
			"bits":    num("integer", "pseudo-random payload bits, even, ≤ 8192 (defaults: "+bitsDefaultsDesc()+")"),
			"payload": num("string", "literal payload instead of random bits (roles channel/baseline, ≤ 255 bytes)"),
			"seed":    num("integer", "simulation seed; 0 means default (1 for single runs, derived from the batch base seed otherwise)"),
			"params": map[string]any{
				"type":        "object",
				"description": "tuning overrides; zero values keep the per-processor defaults. Fields a role would ignore are rejected: the slot/iteration knobs are channel-only, and mitigation-eval accepts only cores.",
				"properties": map[string]any{
					"slot_period_us":     num("number", "covert transaction cycle (role channel only)"),
					"sender_iters":       num("integer", "sender PHI-loop iterations (role channel only)"),
					"receiver_iters":     num("integer", "receiver measurement-loop iterations (role channel only)"),
					"receiver_offset_us": num("number", "receiver measurement offset in the slot (role channel only)"),
					"freq_ghz":           num("number", "requested operating point (default: base frequency; turbocc: max Turbo; not mitigation-eval)"),
					"cores":              num("integer", "instantiated cores (default 2)"),
					"calib_reps":         num("integer", "calibration repetitions per symbol/width/pair (not mitigation-eval)"),
				},
			},
		},
	}
}

// SchemaJSON renders Schema as indented JSON.
func SchemaJSON() []byte {
	b, err := json.MarshalIndent(Schema(), "", "  ")
	if err != nil {
		panic("scenario: schema marshal: " + err.Error())
	}
	return append(b, '\n')
}

// SweepSchema returns the machine-readable description of the Sweep
// spec (served at GET /v1/sweeps/schema). The per-cell scenario shape
// is the Scenario schema; this document describes the grid around it.
func SweepSchema() map[string]any {
	scenarioSchema := Schema()
	str := func(desc string, enum ...string) map[string]any {
		m := map[string]any{"type": "string", "description": desc}
		if len(enum) > 0 {
			m["enum"] = enum
		}
		return m
	}
	axisList := func(items any, desc string) map[string]any {
		return map[string]any{"type": "array", "items": items, "description": desc}
	}
	num := func(t, desc string) map[string]any {
		return map[string]any{"type": t, "description": desc}
	}
	subObject := func(key string) any { return scenarioSchema["properties"].(map[string]any)[key] }
	return map[string]any{
		"$schema":     "https://json-schema.org/draft/2020-12/schema",
		"$id":         "ichannels/v1/sweep",
		"title":       "Sweep",
		"description": "A declarative parameter grid: one base scenario plus named axes whose cross-product expands into cells. POST the object to /v1/sweeps; the response streams one NDJSON line per cell followed by an aggregate envelope.",
		"type":        "object",
		"required":    []string{"base", "axes"},
		"properties": map[string]any{
			"name": str("optional label; not part of the sweep's identity"),
			"base": scenarioSchema,
			"axes": map[string]any{
				"type":        "object",
				"description": "grid dimensions; at least one non-empty. Expansion is deterministic: canonical axis order processor, kind, baseline, mitigation, bits, noise, coding, params, last axis varying fastest. A field used as an axis must be unset in the base.",
				"properties": map[string]any{
					"processor":  axisList(map[string]any{"type": "string"}, "processor names (marketing or code)"),
					"kind":       axisList(map[string]any{"type": "string"}, "channel kinds ("+strings.Join(ChannelKindNames(), "/")+"; each must be registered and valid for the base role)"),
					"baseline":   axisList(map[string]any{"type": "string"}, "baseline names ("+strings.Join(BaselineNames(), "/")+")"),
					"mitigation": axisList(map[string]any{"type": "string"}, "mitigation names ("+strings.Join(MitigationNames(), "/")+")"),
					"bits":       axisList(map[string]any{"type": "integer"}, "payload sizes (positive, even)"),
					"noise":      axisList(subObject("noise"), "noise environments"),
					"coding":     axisList(subObject("coding"), "coding configurations"),
					"params":     axisList(subObject("params"), "tuning-override sets"),
				},
			},
			"filters": map[string]any{
				"type":        "array",
				"description": "skip-list: a cell matching every set field of any filter is dropped (e.g. kind smt on a processor without SMT)",
				"items": map[string]any{
					"type": "object",
					"properties": map[string]any{
						"processor":  map[string]any{"type": "string"},
						"kind":       map[string]any{"type": "string"},
						"baseline":   map[string]any{"type": "string"},
						"mitigation": map[string]any{"type": "string"},
						"bits":       map[string]any{"type": "integer"},
					},
				},
			},
			"group_by": axisList(map[string]any{"type": "string", "enum": AxisNames()},
				"axis subset the aggregate table groups by (default: every axis the sweep uses, canonical order)"),
			"max_cells": map[string]any{
				"type":        "integer",
				"description": fmt.Sprintf("pre-filter expansion cap (default %d, hard limit %d)", DefaultMaxSweepCells, MaxSweepCells),
			},
			"refine": map[string]any{
				"type":        "object",
				"description": "adaptive multi-pass execution: a coarse strided pass first, then only group_by regions whose metric moves (mean shift or min-max spread ≥ threshold between adjacent computed positions) re-expand toward the dense grid. Refined axes must be in group_by. Deterministic: per-pass dispatch and budget truncation follow scenario content-hash order, so serial == parallel == resumed bytes. Part of the sweep's identity hash.",
				"required":    []string{"stride", "threshold"},
				"properties": map[string]any{
					"metric": str("watched per-cell scalar (default "+RefineMetricBER+")",
						RefineMetricBER, RefineMetricThroughput),
					"stride": map[string]any{
						"type":                 "object",
						"description":          "refined axis name → coarse sampling stride (≥ 2); coarse pass samples positions {0, s, 2s, …, last}",
						"additionalProperties": map[string]any{"type": "integer"},
					},
					"threshold": num("number", "score at/above which an interval refines (metric units, > 0)"),
					"max_passes": num("integer", fmt.Sprintf("refinement passes after the coarse pass (default %d, max %d)",
						DefaultRefineMaxPasses, MaxRefinePasses)),
					"max_cells_per_pass": num("integer", fmt.Sprintf("per-pass cell budget (default %d); truncation keeps the hash-order prefix",
						DefaultRefineCellsPerPass)),
				},
			},
		},
	}
}

// SweepSchemaJSON renders SweepSchema as indented JSON.
func SweepSchemaJSON() []byte {
	b, err := json.MarshalIndent(SweepSchema(), "", "  ")
	if err != nil {
		panic("scenario: sweep schema marshal: " + err.Error())
	}
	return append(b, '\n')
}
