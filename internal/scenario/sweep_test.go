package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// testSweep is a small grid exercising scalar and object axes plus a
// filter (Coffee Lake has no SMT, so its smt cells must be dropped).
func testSweep() Sweep {
	return Sweep{
		Name: "unit",
		Base: Scenario{Role: RoleChannel},
		Axes: SweepAxes{
			Processor: []string{"Cannon Lake", "Coffee Lake"},
			Kind:      []string{KindSMT, KindCores},
			Bits:      []int{8, 16},
		},
		Filters: []SweepFilter{{Processor: "Coffee Lake", Kind: KindSMT}},
	}
}

// TestSweepExpansionOrderStable: expansion is the canonical odometer
// order (processor, kind, bits; last axis fastest), filters drop cells
// without perturbing the rest, and repeated expansions are identical.
func TestSweepExpansionOrderStable(t *testing.T) {
	sw := testSweep()
	cells, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 2×2×2 = 8 pre-filter, minus the 2 Coffee Lake smt cells.
	want := []string{
		"processor=Cannon Lake kind=smt bits=8",
		"processor=Cannon Lake kind=smt bits=16",
		"processor=Cannon Lake kind=cores bits=8",
		"processor=Cannon Lake kind=cores bits=16",
		"processor=Coffee Lake kind=cores bits=8",
		"processor=Coffee Lake kind=cores bits=16",
	}
	if len(cells) != len(want) {
		t.Fatalf("expanded to %d cells, want %d", len(cells), len(want))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		got := strings.TrimPrefix(c.Scenario.Name, "unit: ")
		if got != want[i] {
			t.Errorf("cell %d = %q, want %q", i, got, want[i])
		}
		if c.Axes[AxisProcessor] != c.Scenario.Processor || c.Axes[AxisKind] != c.Scenario.Kind {
			t.Errorf("cell %d axis labels %v do not match spec %+v", i, c.Axes, c.Scenario)
		}
	}
	again, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if again[i].Scenario.Hash() != cells[i].Scenario.Hash() {
			t.Fatalf("re-expansion diverged at cell %d", i)
		}
	}
}

// TestSweepHashInvariantToAxisKeyOrder: two JSON spellings of one sweep
// with the axes (and top-level) keys in different orders parse to the
// same spec and therefore the same hash; a genuinely different grid
// hashes differently.
func TestSweepHashInvariantToAxisKeyOrder(t *testing.T) {
	a := []byte(`{"base":{"role":"channel"},"axes":{"processor":["Cannon Lake","Haswell"],"bits":[8,16],"kind":["cores"]}}`)
	b := []byte(`{"axes":{"kind":["cores"],"bits":[8,16],"processor":["Cannon Lake","Haswell"]},"base":{"role":"channel"}}`)
	swA, err := ParseSweep(a)
	if err != nil {
		t.Fatal(err)
	}
	swB, err := ParseSweep(b)
	if err != nil {
		t.Fatal(err)
	}
	if swA.Hash() != swB.Hash() {
		t.Errorf("axis key order changed the hash: %s vs %s", swA.Hash(), swB.Hash())
	}
	// Name, base name/seed, and the cap are display/bounding concerns,
	// not identity.
	swC := swA
	swC.Name = "labelled"
	swC.Base.Name = "base-label"
	swC.Base.Seed = 99
	swC.MaxCells = 100
	if swC.Hash() != swA.Hash() {
		t.Errorf("name/seed/cap entered the hash")
	}
	// Marketing vs code name is one processor.
	swD := swA
	swD.Axes.Processor = []string{"Core i3-8121U", "Core i7-4770K"}
	if swD.Hash() != swA.Hash() {
		t.Errorf("marketing names hash differently from code names")
	}
	swE := swA
	swE.Axes.Bits = []int{8, 32}
	if swE.Hash() == swA.Hash() {
		t.Errorf("different grids hash identically")
	}
}

// TestSweepValidateRejects covers the structural failure modes.
func TestSweepValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Sweep)
		want string
	}{
		{"no axes", func(sw *Sweep) { sw.Axes = SweepAxes{} }, "at least one"},
		{"dup axis value", func(sw *Sweep) { sw.Axes.Bits = []int{8, 8} }, "repeats value"},
		{"dup axis value normalized", func(sw *Sweep) {
			sw.Axes.Processor = []string{"Cannon Lake", "Core i3-8121U"}
		}, "repeats value"},
		{"base/axis conflict", func(sw *Sweep) { sw.Base.Kind = KindCores }, "both a base field and an axis"},
		{"bits axis with payload", func(sw *Sweep) { sw.Base.Payload = "hi" }, "exclusive"},
		{"empty filter", func(sw *Sweep) { sw.Filters = append(sw.Filters, SweepFilter{}) }, "empty"},
		{"empty axis value", func(sw *Sweep) { sw.Axes.Kind = []string{KindSMT, ""} }, "non-empty"},
		{"zero bits value", func(sw *Sweep) { sw.Axes.Bits = []int{0, 8} }, "positive"},
		{"negative cap", func(sw *Sweep) { sw.MaxCells = -1 }, "non-negative"},
		{"cap above hard limit", func(sw *Sweep) { sw.MaxCells = MaxSweepCells + 1 }, "hard limit"},
		{"over cap", func(sw *Sweep) { sw.MaxCells = 4 }, "above the cap"},
		{"unknown group axis", func(sw *Sweep) { sw.GroupBy = []string{"noise"} }, "not an axis"},
		{"dup group axis", func(sw *Sweep) { sw.GroupBy = []string{"kind", "kind"} }, "repeats axis"},
		{"filters drop all", func(sw *Sweep) {
			sw.Filters = []SweepFilter{{Processor: "Cannon Lake"}, {Processor: "Coffee Lake"}}
		}, "drop every cell"},
		{"invalid cell", func(sw *Sweep) { sw.Filters = nil }, "add a filter"},
	}
	for _, tc := range cases {
		sw := testSweep()
		tc.mut(&sw)
		err := sw.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := testSweep().Validate(); err != nil {
		t.Errorf("baseline sweep invalid: %v", err)
	}
}

// TestSweepObjectAxes: noise/params axes substitute whole sub-objects
// and label cells with their compact JSON.
func TestSweepObjectAxes(t *testing.T) {
	sw := Sweep{
		Base: Scenario{Role: RoleChannel, Kind: KindCores, Bits: 8},
		Axes: SweepAxes{
			Noise: []Noise{{}, {InterruptsPerSec: 1000}},
		},
	}
	cells, err := sw.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded to %d cells, want 2", len(cells))
	}
	if cells[0].Axes[AxisNoise] != "{}" {
		t.Errorf("quiet cell label = %q", cells[0].Axes[AxisNoise])
	}
	if cells[0].Scenario.Noise != nil {
		t.Errorf("empty noise axis value should normalize away, got %+v", cells[0].Scenario.Noise)
	}
	if cells[1].Scenario.Noise == nil || cells[1].Scenario.Noise.InterruptsPerSec != 1000 {
		t.Errorf("noise axis not applied: %+v", cells[1].Scenario.Noise)
	}
	if cells[0].Scenario.Hash() == cells[1].Scenario.Hash() {
		t.Errorf("distinct noise cells hash identically")
	}
	if got := sw.EffectiveGroupBy(); len(got) != 1 || got[0] != AxisNoise {
		t.Errorf("EffectiveGroupBy = %v, want [noise]", got)
	}
}

// TestSweepCountAndCap: CountCells reports post-filter size; the
// default cap admits grids up to DefaultMaxSweepCells pre-filter.
func TestSweepCountAndCap(t *testing.T) {
	sw := testSweep()
	n, err := sw.CountCells()
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("CountCells = %d, want 6", n)
	}
	// 2 × 2 × 1025 > 4096 must trip the default cap.
	big := testSweep()
	big.Filters = nil
	big.Axes.Kind = []string{KindCores}
	big.Axes.Bits = nil
	noise := make([]Noise, 2049)
	for i := range noise {
		noise[i] = Noise{TSCJitterCycles: int64(i + 1)}
	}
	big.Axes.Noise = noise
	if err := big.Validate(); err == nil || !strings.Contains(err.Error(), "above the cap") {
		t.Errorf("default cap not enforced: %v", err)
	}
	big.MaxCells = MaxSweepCells
	if err := big.Validate(); err != nil {
		t.Errorf("raised cap should admit the grid: %v", err)
	}
}

// TestParseSweepStrict: unknown fields, arrays, and trailing garbage are
// rejected by the shared strict decoder.
func TestParseSweepStrict(t *testing.T) {
	for _, bad := range []string{
		``,
		`[]`,
		`{"base":{"role":"channel"},"axes":{"bits":[8]},"unknown":1}`,
		`{"base":{"role":"channel"},"axes":{"bitz":[8]}}`,
		`{"base":{"role":"channel"},"axes":{"bits":[8]}} extra`,
	} {
		if _, err := ParseSweep([]byte(bad)); err == nil {
			t.Errorf("ParseSweep(%q) accepted", bad)
		}
	}
	sw, err := ParseSweep([]byte(`{"base":{"role":"channel","kind":"cores"},"axes":{"bits":[8,16]},"group_by":["bits"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSweepSchemaServes: both schemas marshal and the sweep schema
// embeds the scenario schema for its base.
func TestSweepSchemaServes(t *testing.T) {
	var doc map[string]any
	if err := json.Unmarshal(SweepSchemaJSON(), &doc); err != nil {
		t.Fatal(err)
	}
	props, ok := doc["properties"].(map[string]any)
	if !ok {
		t.Fatal("sweep schema has no properties")
	}
	base, ok := props["base"].(map[string]any)
	if !ok || base["title"] != "Scenario" {
		t.Errorf("sweep schema base is not the scenario schema: %v", base)
	}
	for _, key := range []string{"axes", "filters", "group_by", "max_cells"} {
		if _, ok := props[key]; !ok {
			t.Errorf("sweep schema missing %q", key)
		}
	}
}
