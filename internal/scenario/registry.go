package scenario

import (
	"context"
	"fmt"
	"strings"

	"ichannels/internal/baselines"
	"ichannels/internal/core"
	"ichannels/internal/mitigate"
	"ichannels/internal/model"
	"ichannels/internal/soc"
)

// This file is the single registry for every enum the Scenario spec
// exposes: channel kinds, baselines, and mitigations. Validate, the
// schema endpoint, Describe's error vocabulary, sweep axis validation,
// and the run dispatchers all read from these tables — adding an entry
// here is the whole job of adding a kind, and nothing else in the
// package may hand-list the names (registry_test.go enforces that the
// schema enums, the validate acceptance set, and these keys agree).

// kindSpec is one registered channel kind: its preconditions, defaults,
// and the two executors (role channel, and role mitigation-eval).
type kindSpec struct {
	name string
	// describe is a one-line description for docs and CLI help; source
	// cites the design the family reproduces.
	describe string
	source   string
	// spyRole marks kinds the spy role accepts (every registered kind
	// is valid for roles channel and mitigation-eval).
	spyRole bool
	// requiresSMT / minCores are the topology preconditions Validate
	// enforces against the processor profile and params.cores.
	requiresSMT bool
	minCores    int
	// defaultBits / defaultCalibReps apply when the spec leaves the
	// fields zero.
	defaultBits      int
	defaultCalibReps int
	// noSenderIters rejects the params.sender_iters override for kinds
	// whose sender is a software actor with no loop length.
	noSenderIters bool
	// coreKind is the paper-variant enum for kinds backed by
	// core.Channel (hasCore false for the channels-package families).
	hasCore  bool
	coreKind core.Kind
	// run executes role channel for this kind.
	run func(ctx context.Context, n Scenario, seed int64, res *Result, pool *soc.Pool) error
	// evalMitigation grades the kind under one defense.
	evalMitigation func(pool *soc.Pool, mk mitigate.Kind, proc model.Processor, nBits int, seed int64) (*mitigate.Assessment, error)
}

// New channel-family kind names (the paper's three are declared in
// scenario.go).
const (
	KindRetire   = "retire"
	KindClockMod = "clockmod"
)

// kindRegistry lists every channel kind in canonical (documentation)
// order: the paper's three variants, then the adopted families.
var kindRegistry = []*kindSpec{
	{
		name:             KindThread,
		describe:         "same-thread multi-level current channel (IccThreadCovert)",
		source:           "IChannels, ISCA'21",
		defaultBits:      64,
		defaultCalibReps: 6,
		hasCore:          true,
		coreKind:         core.SameThread,
		run:              runCoreKind(core.SameThread),
		evalMitigation:   evalCoreKind(core.SameThread),
	},
	{
		name:             KindSMT,
		describe:         "SMT-sibling multi-level current channel (IccSMTcovert)",
		source:           "IChannels, ISCA'21",
		spyRole:          true,
		requiresSMT:      true,
		defaultBits:      64,
		defaultCalibReps: 6,
		hasCore:          true,
		coreKind:         core.SMT,
		run:              runCoreKind(core.SMT),
		evalMitigation:   evalCoreKind(core.SMT),
	},
	{
		name:             KindCores,
		describe:         "cross-core multi-level current channel (IccCoresCovert)",
		source:           "IChannels, ISCA'21",
		spyRole:          true,
		minCores:         2,
		defaultBits:      64,
		defaultCalibReps: 6,
		hasCore:          true,
		coreKind:         core.CrossCore,
		run:              runCoreKind(core.CrossCore),
		evalMitigation:   evalCoreKind(core.CrossCore),
	},
	{
		name:             KindRetire,
		describe:         "retirement-stage SMT contention, decoded from the receiver's own cycle counter",
		source:           "arXiv 2307.12486",
		requiresSMT:      true,
		defaultBits:      64,
		defaultCalibReps: 6,
		run:              runRetire,
		evalMitigation:   evalRetireMitigation,
	},
	{
		name:             KindClockMod,
		describe:         "clock-modulation (T-state duty cycle) carrier with windowed timing decode",
		source:           "arXiv 2404.05823",
		minCores:         2,
		defaultBits:      32,
		defaultCalibReps: 4,
		noSenderIters:    true,
		run:              runClockMod,
		evalMitigation:   evalClockModMitigation,
	},
}

// baselineSpec is one registered comparison channel.
type baselineSpec struct {
	name             string
	defaultBits      int
	defaultCalibReps int
	minCores         int
	construct        func(m *soc.Machine) (baselineChannel, error)
}

var baselineRegistry = []*baselineSpec{
	{BaselineNetSpectre, 64, 6, 0,
		func(m *soc.Machine) (baselineChannel, error) { return baselines.NewNetSpectre(m) }},
	{BaselineTurboCC, 12, 3, 2,
		func(m *soc.Machine) (baselineChannel, error) { return baselines.NewTurboCC(m) }},
	{BaselineDFScovert, 10, 3, 2,
		func(m *soc.Machine) (baselineChannel, error) { return baselines.NewDFScovert(m) }},
	{BaselinePowerT, 24, 4, 2,
		func(m *soc.Machine) (baselineChannel, error) { return baselines.NewPowerT(m) }},
}

// mitigationSpec maps a canonical mitigation name (plus accepted alias
// spellings) to the mitigate enum.
type mitigationSpec struct {
	name    string
	kind    mitigate.Kind
	aliases []string
}

var mitigationRegistry = []*mitigationSpec{
	{MitigationNone, mitigate.None, nil},
	{MitigationPerCoreVR, mitigate.PerCoreVR, []string{"per-core-vr", "percorevr"}},
	{MitigationImprovedThrottling, mitigate.ImprovedThrottling, nil},
	{MitigationSecureMode, mitigate.SecureMode, []string{"securemode"}},
}

// Lookup maps, built once from the tables above.
var (
	kindByName       = map[string]*kindSpec{}
	baselineByName   = map[string]*baselineSpec{}
	mitigationByName = map[string]*mitigationSpec{}
	// mitigationAliases folds accepted spellings onto the canonical
	// names (identity entries included, so Normalized can fold blindly).
	mitigationAliases = map[string]string{}
)

func init() {
	for _, ks := range kindRegistry {
		kindByName[ks.name] = ks
	}
	for _, bs := range baselineRegistry {
		baselineByName[bs.name] = bs
	}
	for _, ms := range mitigationRegistry {
		mitigationByName[ms.name] = ms
		mitigationAliases[ms.name] = ms.name
		for _, a := range ms.aliases {
			mitigationAliases[a] = ms.name
		}
	}
}

// ChannelKindNames returns every registered channel kind in canonical
// order (all of them are valid for roles channel and mitigation-eval).
func ChannelKindNames() []string {
	out := make([]string, len(kindRegistry))
	for i, ks := range kindRegistry {
		out[i] = ks.name
	}
	return out
}

// SpyKindNames returns the kinds the spy role accepts, in canonical order.
func SpyKindNames() []string {
	var out []string
	for _, ks := range kindRegistry {
		if ks.spyRole {
			out = append(out, ks.name)
		}
	}
	return out
}

// BaselineNames returns every registered baseline in canonical order.
func BaselineNames() []string {
	out := make([]string, len(baselineRegistry))
	for i, bs := range baselineRegistry {
		out[i] = bs.name
	}
	return out
}

// MitigationNames returns every canonical mitigation name in order.
func MitigationNames() []string {
	out := make([]string, len(mitigationRegistry))
	for i, ms := range mitigationRegistry {
		out[i] = ms.name
	}
	return out
}

// KindSource returns the source-paper citation for a registered kind
// ("" for unknown names) — surfaced by docs and CLI help.
func KindSource(kind string) string {
	if ks, ok := kindByName[kind]; ok {
		return ks.source
	}
	return ""
}

// KindDescribe returns the one-line description for a registered kind
// ("" for unknown names).
func KindDescribe(kind string) string {
	if ks, ok := kindByName[kind]; ok {
		return ks.describe
	}
	return ""
}

// roleNames returns the role vocabulary in documentation order.
func roleNames() []string {
	return []string{RoleChannel, RoleBaseline, RoleSpy, RoleMitigation, RoleExperiment}
}

// bitsDefaultsDesc renders the registry's default payload sizes for the
// schema's bits description (kinds, then the spy role, then baselines).
func bitsDefaultsDesc() string {
	var parts []string
	for _, ks := range kindRegistry {
		parts = append(parts, fmt.Sprintf("%s %d", ks.name, ks.defaultBits))
	}
	parts = append(parts, fmt.Sprintf("spy %d", defaultBits(RoleSpy, "", "")))
	for _, bs := range baselineRegistry {
		parts = append(parts, fmt.Sprintf("%s %d", bs.name, bs.defaultBits))
	}
	return strings.Join(parts, ", ")
}

// orList renders names as an "a, b, or c" clause for error messages, so
// every surface's vocabulary listing is generated from the registry.
func orList(names []string) string {
	switch len(names) {
	case 0:
		return ""
	case 1:
		return names[0]
	case 2:
		return names[0] + " or " + names[1]
	}
	return strings.Join(names[:len(names)-1], ", ") + ", or " + names[len(names)-1]
}
