package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// A Sweep is the declarative description of a parameter grid: one base
// Scenario plus named axes whose cross-product expands into the cells
// of the grid. It is how the paper's table-shaped results (Table 6,
// Figs. 13-16 style comparisons of processors × channel kinds ×
// mitigations × noise levels) are requested as a single spec instead of
// hand-enumerated scenario arrays.
//
// Expansion is deterministic: axes iterate in the canonical order
// processor, kind, baseline, mitigation, bits, noise, coding, params,
// with the last-listed axis varying fastest (odometer order), so a
// sweep expands to the same cell sequence on every run, process, and
// transport. Filters drop unwanted cells (e.g. an SMT kind on a
// processor without SMT) without perturbing the order of the rest.
type Sweep struct {
	// Name is an optional human label for the sweep (not part of Hash).
	Name string `json:"name,omitempty"`
	// Base is the scenario every cell starts from. A field set by an
	// axis must be left unset here (Validate rejects the conflict).
	Base Scenario `json:"base"`
	// Axes are the grid dimensions; at least one must be non-empty.
	Axes SweepAxes `json:"axes"`
	// Filters drop cells whose normalized values match every set field
	// of any one filter (a skip-list, applied after expansion).
	Filters []SweepFilter `json:"filters,omitempty"`
	// GroupBy selects the axis subset the aggregate table groups by.
	// Empty means every axis the sweep uses, in canonical order.
	GroupBy []string `json:"group_by,omitempty"`
	// MaxCells caps the pre-filter expansion size. Zero means
	// DefaultMaxSweepCells; values above MaxSweepCells are invalid.
	MaxCells int `json:"max_cells,omitempty"`
	// Refine, when set, turns execution adaptive: a coarse strided pass
	// first, then only regions whose metric moves re-expand into finer
	// cells (see Refine). Unlike MaxCells it changes which cells run,
	// so it is part of the sweep's Hash.
	Refine *Refine `json:"refine,omitempty"`
}

// SweepAxes names the grid dimensions. Scalar axes override the
// same-named Scenario field in each cell; object axes (noise, coding,
// params) substitute the whole sub-object.
type SweepAxes struct {
	Processor  []string `json:"processor,omitempty"`
	Kind       []string `json:"kind,omitempty"`
	Baseline   []string `json:"baseline,omitempty"`
	Mitigation []string `json:"mitigation,omitempty"`
	Bits       []int    `json:"bits,omitempty"`
	Noise      []Noise  `json:"noise,omitempty"`
	Coding     []Coding `json:"coding,omitempty"`
	Params     []Params `json:"params,omitempty"`
}

// Canonical axis names, in canonical expansion order.
const (
	AxisProcessor  = "processor"
	AxisKind       = "kind"
	AxisBaseline   = "baseline"
	AxisMitigation = "mitigation"
	AxisBits       = "bits"
	AxisNoise      = "noise"
	AxisCoding     = "coding"
	AxisParams     = "params"
)

// AxisNames returns every recognized axis name in canonical order.
func AxisNames() []string {
	return []string{AxisProcessor, AxisKind, AxisBaseline, AxisMitigation,
		AxisBits, AxisNoise, AxisCoding, AxisParams}
}

// SweepFilter is one exclusion rule: a cell matching every set (non-zero)
// field is dropped. Only the scalar axes are filterable; values are
// compared after normalization (aliases folded, processors resolved to
// code names).
type SweepFilter struct {
	Processor  string `json:"processor,omitempty"`
	Kind       string `json:"kind,omitempty"`
	Baseline   string `json:"baseline,omitempty"`
	Mitigation string `json:"mitigation,omitempty"`
	Bits       int    `json:"bits,omitempty"`
}

// Expansion bounds: a sweep defaults to at most DefaultMaxSweepCells
// cells and can raise its own cap to MaxSweepCells, never beyond — one
// spec cannot ask for an unbounded amount of simulation.
const (
	DefaultMaxSweepCells = 4096
	MaxSweepCells        = 65536
)

// Cell is one expanded grid point: the combined scenario plus the axis
// assignments that produced it (axis name → value label), which is what
// grouped aggregation keys on.
type Cell struct {
	// Index is the cell's position in the post-filter expansion order.
	Index int `json:"index"`
	// Scenario is the normalized combined spec.
	Scenario Scenario `json:"scenario"`
	// Axes labels the cell's coordinates: scalar axes use the
	// normalized value, object axes its compact JSON encoding.
	Axes map[string]string `json:"axes"`
}

// sweepAxis is one bound axis during expansion.
type sweepAxis struct {
	name  string
	n     int
	apply func(*Scenario, int)
	label func(int) string
}

// axes materializes the non-empty axes of a normalized sweep in
// canonical order.
func (sw Sweep) axes() []sweepAxis {
	var out []sweepAxis
	a := sw.Axes
	if len(a.Processor) > 0 {
		out = append(out, sweepAxis{AxisProcessor, len(a.Processor),
			func(s *Scenario, i int) { s.Processor = a.Processor[i] },
			func(i int) string { return a.Processor[i] }})
	}
	if len(a.Kind) > 0 {
		out = append(out, sweepAxis{AxisKind, len(a.Kind),
			func(s *Scenario, i int) { s.Kind = a.Kind[i] },
			func(i int) string { return a.Kind[i] }})
	}
	if len(a.Baseline) > 0 {
		out = append(out, sweepAxis{AxisBaseline, len(a.Baseline),
			func(s *Scenario, i int) { s.Baseline = a.Baseline[i] },
			func(i int) string { return a.Baseline[i] }})
	}
	if len(a.Mitigation) > 0 {
		out = append(out, sweepAxis{AxisMitigation, len(a.Mitigation),
			func(s *Scenario, i int) { s.Mitigation = a.Mitigation[i] },
			func(i int) string { return a.Mitigation[i] }})
	}
	if len(a.Bits) > 0 {
		out = append(out, sweepAxis{AxisBits, len(a.Bits),
			func(s *Scenario, i int) { s.Bits = a.Bits[i] },
			func(i int) string { return strconv.Itoa(a.Bits[i]) }})
	}
	if len(a.Noise) > 0 {
		out = append(out, sweepAxis{AxisNoise, len(a.Noise),
			func(s *Scenario, i int) { v := a.Noise[i]; s.Noise = &v },
			func(i int) string { return compactJSON(a.Noise[i]) }})
	}
	if len(a.Coding) > 0 {
		out = append(out, sweepAxis{AxisCoding, len(a.Coding),
			func(s *Scenario, i int) { v := a.Coding[i]; s.Coding = &v },
			func(i int) string { return compactJSON(a.Coding[i]) }})
	}
	if len(a.Params) > 0 {
		out = append(out, sweepAxis{AxisParams, len(a.Params),
			func(s *Scenario, i int) { v := a.Params[i]; s.Params = &v },
			func(i int) string { return compactJSON(a.Params[i]) }})
	}
	return out
}

// compactJSON labels an object axis value deterministically.
func compactJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic("scenario: axis label marshal: " + err.Error())
	}
	return string(b)
}

// Normalized returns the sweep with its axis values and filters
// canonicalized the way Scenario.Normalized canonicalizes the matching
// fields (processors to code names, mitigation aliases folded, enums
// lower-cased, group-by names lower-cased). The Base scenario is kept
// verbatim: its defaults are folded per-cell, after the axis values are
// applied, so an axis can set a field whose default would otherwise be
// materialized too early.
func (sw Sweep) Normalized() Sweep {
	n := sw
	n.Axes.Processor = mapStrings(sw.Axes.Processor, normalizeProcessor)
	n.Axes.Kind = mapStrings(sw.Axes.Kind, normalizeEnum)
	n.Axes.Baseline = mapStrings(sw.Axes.Baseline, normalizeEnum)
	n.Axes.Mitigation = mapStrings(sw.Axes.Mitigation, normalizeMitigation)
	if len(sw.Filters) > 0 {
		n.Filters = make([]SweepFilter, len(sw.Filters))
		for i, f := range sw.Filters {
			n.Filters[i] = SweepFilter{
				Processor:  normalizeFilterProcessor(f.Processor),
				Kind:       normalizeEnum(f.Kind),
				Baseline:   normalizeEnum(f.Baseline),
				Mitigation: normalizeMitigation(f.Mitigation),
				Bits:       f.Bits,
			}
		}
	}
	n.GroupBy = mapStrings(sw.GroupBy, normalizeEnum)
	n.Refine = normalizedRefine(sw.Refine)
	return n
}

func mapStrings(in []string, f func(string) string) []string {
	if len(in) == 0 {
		return in
	}
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = f(s)
	}
	return out
}

func normalizeEnum(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

func normalizeMitigation(s string) string {
	s = normalizeEnum(s)
	if canon, ok := mitigationAliases[s]; ok {
		return canon
	}
	return s
}

// normalizeProcessor resolves a marketing or code name to the code name
// via the one Scenario normalization path, so axis values and spec
// fields canonicalize identically. Unknown names pass through for
// Validate to reject with the processor registry's error.
func normalizeProcessor(s string) string {
	if strings.TrimSpace(s) == "" {
		return ""
	}
	return Scenario{Role: RoleChannel, Processor: s}.Normalized().Processor
}

func normalizeFilterProcessor(s string) string {
	if strings.TrimSpace(s) == "" {
		return ""
	}
	return normalizeProcessor(s)
}

// matches reports whether a normalized cell scenario matches the
// (normalized) filter: every set field must agree.
func (f SweepFilter) matches(n Scenario) bool {
	if f == (SweepFilter{}) {
		return false
	}
	if f.Processor != "" && f.Processor != n.Processor {
		return false
	}
	if f.Kind != "" && f.Kind != n.Kind {
		return false
	}
	if f.Baseline != "" && f.Baseline != n.Baseline {
		return false
	}
	if f.Mitigation != "" && f.Mitigation != n.Mitigation {
		return false
	}
	if f.Bits != 0 && f.Bits != n.Bits {
		return false
	}
	return true
}

// effectiveMaxCells resolves the expansion cap.
func (sw Sweep) effectiveMaxCells() int {
	if sw.MaxCells > 0 {
		return sw.MaxCells
	}
	return DefaultMaxSweepCells
}

// EffectiveGroupBy returns the axis subset the aggregate groups by:
// the spec's group_by, or every axis the sweep uses, in canonical order.
func (sw Sweep) EffectiveGroupBy() []string {
	n := sw.Normalized()
	if len(n.GroupBy) > 0 {
		return n.GroupBy
	}
	axes := n.axes()
	out := make([]string, len(axes))
	for i, ax := range axes {
		out[i] = ax.name
	}
	return out
}

// validateStructure checks everything about the sweep that does not
// require expanding cells. It expects a normalized sweep.
func (sw Sweep) validateStructure() (cells int, err error) {
	axes := sw.axes()
	if len(axes) == 0 {
		return 0, fmt.Errorf("sweep: no axes; a sweep needs at least one non-empty axis (a single run is a scenario)")
	}
	if sw.MaxCells < 0 {
		return 0, fmt.Errorf("sweep: max_cells must be non-negative, got %d", sw.MaxCells)
	}
	if sw.MaxCells > MaxSweepCells {
		return 0, fmt.Errorf("sweep: max_cells %d exceeds the hard limit %d", sw.MaxCells, MaxSweepCells)
	}
	for _, vals := range [][]string{sw.Axes.Processor, sw.Axes.Kind, sw.Axes.Baseline, sw.Axes.Mitigation} {
		for _, v := range vals {
			if v == "" {
				return 0, fmt.Errorf("sweep: axis values must be non-empty strings (an empty value would silently take the field's default)")
			}
		}
	}
	// Enum axes are checked against the registries here, at parse time,
	// so a typo or a kind the base role cannot run fails before any cell
	// simulates (not |grid| cells into the sweep).
	baseRole := strings.ToLower(strings.TrimSpace(sw.Base.Role))
	for _, v := range sw.Axes.Kind {
		ks, ok := kindByName[v]
		if !ok {
			return 0, fmt.Errorf("sweep: kind axis value %q is not a registered channel kind (%s)", v, orList(ChannelKindNames()))
		}
		switch baseRole {
		case RoleSpy:
			if !ks.spyRole {
				return 0, fmt.Errorf("sweep: kind axis value %q is not valid for base role spy (spy kinds: %s)", v, orList(SpyKindNames()))
			}
		case RoleBaseline, RoleExperiment:
			return 0, fmt.Errorf("sweep: a kind axis is not valid for base role %s", baseRole)
		}
	}
	for _, v := range sw.Axes.Baseline {
		if _, ok := baselineByName[v]; !ok {
			return 0, fmt.Errorf("sweep: baseline axis value %q is not a registered baseline (%s)", v, orList(BaselineNames()))
		}
	}
	for _, v := range sw.Axes.Mitigation {
		if _, ok := mitigationByName[v]; !ok {
			return 0, fmt.Errorf("sweep: mitigation axis value %q is not a registered mitigation (%s)", v, orList(MitigationNames()))
		}
	}
	for _, b := range sw.Axes.Bits {
		if b <= 0 {
			return 0, fmt.Errorf("sweep: bits axis values must be positive, got %d", b)
		}
	}
	cells = 1
	for _, ax := range axes {
		seen := map[string]bool{}
		for i := 0; i < ax.n; i++ {
			l := ax.label(i)
			if seen[l] {
				return 0, fmt.Errorf("sweep: axis %s repeats value %q (duplicate cells would double-count in aggregates)", ax.name, l)
			}
			seen[l] = true
		}
		if cells > MaxSweepCells/ax.n {
			return 0, fmt.Errorf("sweep: grid exceeds %d cells", MaxSweepCells)
		}
		cells *= ax.n
	}
	if max := sw.effectiveMaxCells(); cells > max {
		return 0, fmt.Errorf("sweep: grid expands to %d cells, above the cap of %d (raise max_cells up to %d or shrink an axis)", cells, max, MaxSweepCells)
	}
	// An axis overriding a field the base also sets would silently
	// shadow the base value — reject the ambiguity.
	for field, both := range map[string]bool{
		AxisProcessor:  len(sw.Axes.Processor) > 0 && sw.Base.Processor != "",
		AxisKind:       len(sw.Axes.Kind) > 0 && sw.Base.Kind != "",
		AxisBaseline:   len(sw.Axes.Baseline) > 0 && sw.Base.Baseline != "",
		AxisMitigation: len(sw.Axes.Mitigation) > 0 && sw.Base.Mitigation != "",
		AxisBits:       len(sw.Axes.Bits) > 0 && sw.Base.Bits != 0,
		AxisNoise:      len(sw.Axes.Noise) > 0 && sw.Base.Noise != nil,
		AxisCoding:     len(sw.Axes.Coding) > 0 && sw.Base.Coding != nil,
		AxisParams:     len(sw.Axes.Params) > 0 && sw.Base.Params != nil,
	} {
		if both {
			return 0, fmt.Errorf("sweep: %s is both a base field and an axis; leave the base field unset", field)
		}
	}
	if len(sw.Axes.Bits) > 0 && sw.Base.Payload != "" {
		return 0, fmt.Errorf("sweep: a bits axis is exclusive with a base payload")
	}
	for i, f := range sw.Filters {
		if f == (SweepFilter{}) {
			return 0, fmt.Errorf("sweep: filters[%d] is empty and would drop every cell", i)
		}
	}
	used := map[string]bool{}
	axisSizes := map[string]int{}
	for _, ax := range axes {
		used[ax.name] = true
		axisSizes[ax.name] = ax.n
	}
	seenGroup := map[string]bool{}
	for _, g := range sw.GroupBy {
		if !used[g] {
			return 0, fmt.Errorf("sweep: group_by axis %q is not an axis of this sweep (have %v)", g, keysOf(used))
		}
		if seenGroup[g] {
			return 0, fmt.Errorf("sweep: group_by repeats axis %q", g)
		}
		seenGroup[g] = true
	}
	if sw.Refine != nil {
		if err := validateRefine(sw.Refine, axisSizes, sw.EffectiveGroupBy()); err != nil {
			return 0, err
		}
	}
	return cells, nil
}

// keysOf returns the used-axis names in canonical order.
func keysOf(used map[string]bool) []string {
	var out []string
	for _, name := range AxisNames() {
		if used[name] {
			out = append(out, name)
		}
	}
	return out
}

// AxisLabels returns each used axis's value labels in axis order,
// exactly as cells carry them in Cell.Axes (scalar labels normalized,
// object labels compact JSON) — the label→position mapping the
// refinement controller scores intervals with. It normalizes first.
func (sw Sweep) AxisLabels() (map[string][]string, error) {
	n := sw.Normalized()
	if _, err := n.validateStructure(); err != nil {
		return nil, err
	}
	out := map[string][]string{}
	for _, ax := range n.axes() {
		vals := make([]string, ax.n)
		for i := range vals {
			vals[i] = ax.label(i)
		}
		out[ax.name] = vals
	}
	return out, nil
}

// CellIterator yields a sweep's cells one at a time, in expansion
// order, without materializing the grid — the pull source the streaming
// engine consumes. Obtain one from Sweep.Cells.
type CellIterator struct {
	sw      Sweep
	axes    []sweepAxis
	odo     []int // current axis indices; nil once exhausted
	started bool
	next    int // post-filter index of the next yielded cell
}

// Cells validates the sweep's structure and returns an iterator over
// its cells. Each yielded cell is normalized and validated; an invalid
// cell (one the filters should have dropped) surfaces as the iterator's
// error.
func (sw Sweep) Cells() (*CellIterator, error) {
	n := sw.Normalized()
	if _, err := n.validateStructure(); err != nil {
		return nil, err
	}
	axes := n.axes()
	return &CellIterator{sw: n, axes: axes, odo: make([]int, len(axes))}, nil
}

// Next returns the next cell. ok is false when the grid is exhausted or
// an invalid cell was hit (err tells the two apart).
func (it *CellIterator) Next() (cell Cell, ok bool, err error) {
	for {
		if it.odo == nil {
			return Cell{}, false, nil
		}
		if it.started {
			// Advance the odometer, last axis fastest.
			i := len(it.odo) - 1
			for ; i >= 0; i-- {
				it.odo[i]++
				if it.odo[i] < it.axes[i].n {
					break
				}
				it.odo[i] = 0
			}
			if i < 0 {
				it.odo = nil
				return Cell{}, false, nil
			}
		}
		it.started = true

		s := it.sw.Base
		labels := make(map[string]string, len(it.axes))
		var parts []string
		for ai, ax := range it.axes {
			ax.apply(&s, it.odo[ai])
			labels[ax.name] = ax.label(it.odo[ai])
		}
		n := s.Normalized()
		// Re-label scalar axes with their normalized cell values so the
		// aggregation key matches the result envelope ("Cannon Lake" the
		// marketing name and "Cannon Lake" the code name are one group).
		relabel := map[string]string{
			AxisProcessor: n.Processor, AxisKind: n.Kind,
			AxisBaseline: n.Baseline, AxisMitigation: n.Mitigation,
		}
		for name, v := range relabel {
			if _, usesAxis := labels[name]; usesAxis {
				labels[name] = v
			}
		}
		filtered := false
		for _, f := range it.sw.Filters {
			if f.matches(n) {
				filtered = true
				break
			}
		}
		if filtered {
			continue
		}
		for _, ax := range it.axes {
			parts = append(parts, ax.name+"="+labels[ax.name])
		}
		name := strings.Join(parts, " ")
		if it.sw.Name != "" {
			name = it.sw.Name + ": " + name
		}
		n.Name = name
		if err := n.validate(); err != nil {
			return Cell{}, false, fmt.Errorf("sweep: cell %d (%s): %w (add a filter to drop the combination)", it.next, strings.Join(parts, " "), err)
		}
		cell = Cell{Index: it.next, Scenario: n, Axes: labels}
		it.next++
		return cell, true, nil
	}
}

// EachCell streams the sweep's cells through fn in expansion order,
// stopping at the first error (an invalid cell, or fn's own).
func (sw Sweep) EachCell(fn func(Cell) error) error {
	it, err := sw.Cells()
	if err != nil {
		return err
	}
	for {
		cell, ok, err := it.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(cell); err != nil {
			return err
		}
	}
}

// Expand materializes every cell. Sweeps are capped (MaxCells), so this
// is safe for CLI/introspection use; the execution paths stream through
// EachCell/Cells instead and never hold the whole grid.
func (sw Sweep) Expand() ([]Cell, error) {
	var out []Cell
	if err := sw.EachCell(func(c Cell) error { out = append(out, c); return nil }); err != nil {
		return nil, err
	}
	return out, nil
}

// Validate checks the sweep: its structure (axes, filters, cap,
// group-by, base/axis conflicts), every expanded cell, and that at
// least one cell survives the filters — all in one expansion pass. It
// normalizes first, so a raw user spec validates directly.
func (sw Sweep) Validate() error {
	_, err := sw.CountCells()
	return err
}

// CountCells returns the number of post-filter cells the sweep expands
// to, validating the sweep (structure and every cell) in the same
// single pass.
func (sw Sweep) CountCells() (int, error) {
	n := 0
	if err := sw.EachCell(func(Cell) error { n++; return nil }); err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("sweep: filters drop every cell")
	}
	return n, nil
}

// Hash returns a stable 16-hex-character content hash of the normalized
// sweep, excluding the display labels (sweep name, base name), the
// seeds (the base's pinned seed and the batch base seed are carried
// alongside results, exactly like Scenario.Hash), and the expansion cap
// (which bounds work without changing any cell). Two sweeps whose JSON
// differs only in axis-map key order hash identically, because the spec
// is hashed from its parsed (ordered-struct) form.
func (sw Sweep) Hash() string {
	n := sw.Normalized()
	n.Name = ""
	n.Base.Name = ""
	n.Base.Seed = 0
	n.MaxCells = 0
	b, err := json.Marshal(n)
	if err != nil {
		panic("scenario: sweep hash marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Describe returns a short human label for logs and timing output.
func (sw Sweep) Describe() string {
	if sw.Name != "" {
		return "sweep " + sw.Name
	}
	n := sw.Normalized()
	var dims []string
	for _, ax := range n.axes() {
		dims = append(dims, fmt.Sprintf("%s×%d", ax.name, ax.n))
	}
	desc := "sweep " + strings.Join(dims, " ")
	if n.Refine != nil {
		desc += " (refined)"
	}
	return desc
}

// ParseSweep parses one JSON sweep object, rejecting unknown fields and
// trailing data — the one strict decoder the CLI and the HTTP v1 layer
// share, mirroring ParseSpecs.
func ParseSweep(data []byte) (Sweep, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 {
		return Sweep{}, fmt.Errorf("empty sweep spec; give a sweep object")
	}
	if trimmed[0] == '[' {
		return Sweep{}, fmt.Errorf("a sweep spec is a single object, not an array (the axes provide the fan-out)")
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.DisallowUnknownFields()
	var sw Sweep
	if err := dec.Decode(&sw); err != nil {
		return Sweep{}, err
	}
	if dec.More() {
		return Sweep{}, fmt.Errorf("trailing data after the sweep object")
	}
	return sw, nil
}
