package scenario

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"ichannels/internal/exp"
)

// TestEveryRunPathReachable is the tentpole acceptance check at the
// package level: each run path the repo offers in Go — the three
// channel kinds, the four baselines, both spy variants, mitigation
// evaluation, and a registered experiment — executes through a
// pure-JSON spec and lands in the normalized envelope.
func TestEveryRunPathReachable(t *testing.T) {
	cases := []struct {
		json string
		// expectations on the envelope
		wantBits  bool
		wantVerd  bool
		wantRep   bool
		wantExtra string
	}{
		{json: `{"role":"channel","kind":"thread","bits":16}`, wantBits: true, wantExtra: "calibration_gap_cycles"},
		{json: `{"role":"channel","kind":"smt","bits":16}`, wantBits: true},
		{json: `{"role":"channel","kind":"cores","bits":16}`, wantBits: true},
		{json: `{"role":"channel","kind":"retire","bits":16}`, wantBits: true, wantExtra: "calibration_gap_cycles"},
		{json: `{"role":"channel","kind":"clockmod","bits":16}`, wantBits: true, wantExtra: "raw_throughput_bps"},
		{json: `{"role":"baseline","baseline":"netspectre","processor":"Coffee Lake","bits":8}`, wantBits: true},
		{json: `{"role":"baseline","baseline":"turbocc","bits":4}`, wantBits: true},
		{json: `{"role":"baseline","baseline":"dfscovert","bits":4}`, wantBits: true},
		{json: `{"role":"baseline","baseline":"powert","bits":6}`, wantBits: true},
		{json: `{"role":"spy","kind":"smt","bits":8}`, wantBits: true, wantExtra: "accuracy"},
		{json: `{"role":"spy","kind":"cores","bits":8}`, wantBits: true, wantExtra: "accuracy"},
		{json: `{"role":"mitigation-eval","mitigation":"percore-vr","kind":"cores","bits":16}`, wantVerd: true},
		{json: `{"role":"mitigation-eval","mitigation":"secure-mode","kind":"thread","bits":16}`, wantVerd: true},
		{json: `{"role":"mitigation-eval","mitigation":"improved-throttling","kind":"retire","bits":16}`, wantVerd: true},
		{json: `{"role":"mitigation-eval","mitigation":"none","kind":"clockmod","bits":16}`, wantVerd: true},
		{json: `{"role":"experiment","experiment":"fig13"}`, wantRep: true},
	}
	for _, tc := range cases {
		var s Scenario
		if err := json.Unmarshal([]byte(tc.json), &s); err != nil {
			t.Fatalf("%s: unmarshal: %v", tc.json, err)
		}
		res, err := Run(context.Background(), s)
		if err != nil {
			t.Errorf("%s: %v", tc.json, err)
			continue
		}
		if res.Hash == "" || res.Seed != DefaultSeed || res.Role == "" {
			t.Errorf("%s: incomplete envelope: %+v", tc.json, res)
		}
		if tc.wantBits && (res.Bits == 0 || len(res.SentBits) != res.Bits || len(res.DecodedBits) != res.Bits) {
			t.Errorf("%s: bit streams missing: bits=%d sent=%d decoded=%d", tc.json, res.Bits, len(res.SentBits), len(res.DecodedBits))
		}
		if tc.wantVerd && res.Verdict == "" {
			t.Errorf("%s: no verdict", tc.json)
		}
		if tc.wantRep && res.Report == nil {
			t.Errorf("%s: no report", tc.json)
		}
		if tc.wantExtra != "" {
			if _, ok := res.Extra[tc.wantExtra]; !ok {
				t.Errorf("%s: extra %q missing (have %v)", tc.json, tc.wantExtra, res.Extra)
			}
		}
	}
}

// TestDeterministicResultJSON: same spec + seed ⇒ byte-identical Result
// JSON, run to run.
func TestDeterministicResultJSON(t *testing.T) {
	spec := Scenario{
		Role: RoleChannel, Kind: KindCores, Bits: 32, Seed: 42,
		Noise: &Noise{InterruptsPerSec: 500, CtxSwitchesPerSec: 100, TSCJitterCycles: 150},
	}
	a, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Errorf("same spec+seed produced different result JSON:\n%s\n%s", ja, jb)
	}
	c, err := Run(context.Background(), Scenario{
		Role: RoleChannel, Kind: KindCores, Bits: 32, Seed: 43,
		Noise: &Noise{InterruptsPerSec: 500, CtxSwitchesPerSec: 100, TSCJitterCycles: 150},
	})
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c)
	if string(ja) == string(jc) {
		t.Error("different seeds produced identical result JSON (suspicious)")
	}
}

// TestPayloadRoundTrip sends a literal payload with ECC coding under
// noise and recovers it.
func TestPayloadRoundTrip(t *testing.T) {
	res, err := Run(context.Background(), Scenario{
		Role: RoleChannel, Kind: KindCores, Payload: "IChannels", Coding: &Coding{},
		Noise: &Noise{InterruptsPerSec: 300, CtxSwitchesPerSec: 50, TSCJitterCycles: 100},
		Seed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodedPayload != "IChannels" {
		t.Errorf("payload round-trip: got %q (notes %v)", res.DecodedPayload, res.Notes)
	}
	if _, ok := res.Extra["ecc_corrected_bits"]; !ok {
		t.Error("ecc_corrected_bits extra missing")
	}
	// Raw (uncoded) payload path.
	raw, err := Run(context.Background(), Scenario{Role: RoleChannel, Kind: KindThread, Payload: "ok", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if raw.DecodedPayload != "ok" {
		t.Errorf("uncoded payload: got %q", raw.DecodedPayload)
	}
}

// TestHashIdentity: the hash excludes labels and seed, folds aliases
// and defaults, and distinguishes different runs.
func TestHashIdentity(t *testing.T) {
	base := Scenario{Role: RoleChannel, Kind: KindCores, Bits: 64}
	same := []Scenario{
		{Role: "Channel", Kind: "CORES", Bits: 64},
		{Role: RoleChannel, Kind: KindCores, Bits: 64, Name: "labelled", Seed: 99},
		{Role: RoleChannel, Kind: KindCores, Processor: "Core i3-8121U", Bits: 64},
		{Role: RoleChannel, Bits: 64},                                   // kind defaults to cores
		{Role: RoleChannel, Kind: KindCores},                            // bits defaults to 64
		{Role: RoleChannel, Kind: KindCores, Bits: 64, Noise: &Noise{}}, // empty noise collapses
	}
	for i, s := range same {
		if s.Hash() != base.Hash() {
			t.Errorf("spec %d should hash like the base: %s vs %s", i, s.Hash(), base.Hash())
		}
	}
	diff := []Scenario{
		{Role: RoleChannel, Kind: KindSMT, Bits: 64},
		{Role: RoleChannel, Kind: KindCores, Bits: 32},
		{Role: RoleChannel, Kind: KindCores, Bits: 64, Processor: "Haswell"},
		{Role: RoleChannel, Kind: KindCores, Bits: 64, Noise: &Noise{InterruptsPerSec: 1}},
		{Role: RoleMitigation, Kind: KindCores, Bits: 64},
	}
	for i, s := range diff {
		if s.Hash() == base.Hash() {
			t.Errorf("spec %d should hash differently from the base", i)
		}
	}
	if h := (Scenario{Role: RoleMitigation, Mitigation: "per-core-vr"}).Hash(); h != (Scenario{Role: RoleMitigation, Mitigation: "percorevr"}).Hash() {
		t.Error("mitigation aliases should hash identically")
	}
}

// TestValidateRejects covers the validation matrix.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		s    Scenario
		frag string
	}{
		{Scenario{}, "missing role"},
		{Scenario{Role: "warp"}, "unknown role"},
		{Scenario{Role: RoleChannel, Kind: "quantum"}, "unknown channel kind"},
		{Scenario{Role: RoleChannel, Processor: "Pentium"}, "unknown processor"},
		{Scenario{Role: RoleChannel, Kind: KindSMT, Processor: "Coffee Lake"}, "requires an SMT processor"},
		{Scenario{Role: RoleChannel, Bits: 7}, "must be even"},
		{Scenario{Role: RoleChannel, Bits: -2}, "must be positive"},
		{Scenario{Role: RoleChannel, Bits: MaxBits + 2}, "exceeds the per-scenario limit"},
		{Scenario{Role: RoleChannel, Bits: 8, Payload: "x"}, "mutually exclusive"},
		{Scenario{Role: RoleChannel, Payload: strings.Repeat("x", 256)}, "255-byte frame limit"},
		{Scenario{Role: RoleChannel, Coding: &Coding{}}, "coding requires a payload"},
		{Scenario{Role: RoleBaseline}, "requires a baseline name"},
		{Scenario{Role: RoleBaseline, Baseline: "meltdown"}, "unknown baseline"},
		{Scenario{Role: RoleBaseline, Baseline: BaselinePowerT, Params: &Params{Cores: 1}}, "at least 2 cores"},
		{Scenario{Role: RoleBaseline, Baseline: BaselineTurboCC, Kind: KindCores}, "kind must be empty"},
		{Scenario{Role: RoleSpy, Kind: KindThread}, "must be smt or cores"},
		{Scenario{Role: RoleSpy, Payload: "x"}, "only valid for roles channel and baseline"},
		{Scenario{Role: RoleSpy, Coding: &Coding{InterleaveDepth: 3}}, "only valid for role channel"},
		{Scenario{Role: RoleMitigation, Mitigation: "prayer"}, "unknown mitigation"},
		{Scenario{Role: RoleMitigation, Noise: &Noise{TSCJitterCycles: 5}}, "its own noise environment"},
		{Scenario{Role: RoleChannel, Mitigation: MitigationSecureMode}, "only valid for role mitigation-eval"},
		{Scenario{Role: RoleChannel, Baseline: BaselinePowerT}, "only valid for role baseline"},
		{Scenario{Role: RoleExperiment}, "requires an experiment id"},
		{Scenario{Role: RoleExperiment, Experiment: "fig99"}, "unknown experiment"},
		{Scenario{Role: RoleExperiment, Experiment: "fig13", Bits: 8}, "must be empty"},
		{Scenario{Role: RoleChannel, Experiment: "fig13"}, "only valid with role experiment"},
		{Scenario{Role: RoleChannel, Noise: &Noise{InterruptsPerSec: -1}}, "non-negative"},
		{Scenario{Role: RoleChannel, Params: &Params{SenderIters: -1}}, "non-negative"},
		{Scenario{Role: RoleChannel, Params: &Params{Cores: 99}}, "exceeds"},
		{Scenario{Role: RoleBaseline, Baseline: BaselineNetSpectre, Params: &Params{SenderIters: 5}}, "only valid for role channel"},
		{Scenario{Role: RoleSpy, Params: &Params{SlotPeriodUS: 10}}, "only valid for role channel"},
		{Scenario{Role: RoleMitigation, Params: &Params{FreqGHz: 2.2}}, "only params.cores"},
		{Scenario{Role: RoleMitigation, Params: &Params{CalibReps: 4}}, "only params.cores"},
		{Scenario{Role: RoleChannel, Seed: -1}, "seed must be non-negative"},
	}
	for _, tc := range cases {
		err := tc.s.Validate()
		if err == nil {
			t.Errorf("%+v: validated but should contain %q", tc.s, tc.frag)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%+v: error %q does not contain %q", tc.s, err, tc.frag)
		}
	}
	// Run must refuse invalid specs too.
	if _, err := Run(context.Background(), Scenario{Role: "warp"}); err == nil {
		t.Error("Run accepted an invalid spec")
	}
}

// TestExperimentGenerators: the canned generators cover the registry
// and inherit injection via Runner.ExpRun.
func TestExperimentGenerators(t *testing.T) {
	all := AllExperiments()
	if len(all) != len(exp.IDs()) {
		t.Fatalf("AllExperiments returned %d scenarios, registry has %d", len(all), len(exp.IDs()))
	}
	var gotID string
	var gotSeed int64
	r := Runner{ExpRun: func(id string, seed int64) (*exp.Report, error) {
		gotID, gotSeed = id, seed
		return exp.NewReport(id, "fake"), nil
	}}
	res, err := r.Run(context.Background(), all[3])
	if err != nil {
		t.Fatal(err)
	}
	if gotID != exp.IDs()[3] || gotSeed != DefaultSeed {
		t.Errorf("injected runner saw (%s, %d)", gotID, gotSeed)
	}
	if res.Report == nil || res.Report.Title != "fake" {
		t.Errorf("injected report lost: %+v", res.Report)
	}
}

// TestSchemaJSON: the schema endpoint payload parses and names every
// role and processor.
func TestSchemaJSON(t *testing.T) {
	var doc map[string]any
	if err := json.Unmarshal(SchemaJSON(), &doc); err != nil {
		t.Fatalf("schema is not valid JSON: %v", err)
	}
	props, ok := doc["properties"].(map[string]any)
	if !ok {
		t.Fatal("schema has no properties")
	}
	for _, field := range []string{"role", "processor", "kind", "baseline", "mitigation", "experiment", "noise", "coding", "bits", "payload", "seed", "params"} {
		if _, ok := props[field]; !ok {
			t.Errorf("schema missing field %q", field)
		}
	}
	b, _ := json.Marshal(props["experiment"])
	for _, id := range exp.IDs() {
		if !strings.Contains(string(b), id) {
			t.Errorf("schema experiment enum missing %q", id)
		}
	}
}

// TestContextCancellation: a cancelled context aborts before simulating.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, Scenario{Role: RoleChannel, Bits: 8}); err == nil {
		t.Error("cancelled context did not abort the run")
	}
}
