// Package scenario defines the repository's single declarative run
// specification. A Scenario is a pure-JSON description of one simulated
// run — an IChannels covert-channel transmission, one of the four
// baseline channels, the instruction-class-inference side channel, a
// mitigation evaluation, or a registered paper experiment — and
// Run/Runner.Run is the single entry point that executes any of them.
//
// Every run path that used to need its own Go call sequence
// (core.New+Calibrate+Transmit, baselines.New*, core.NewSpy,
// mitigate.Evaluate, exp.Run) is reachable through a Scenario, so the
// CLI, the Go facade, and the HTTP v1 API all speak the same language
// and their results land in the same normalized Result envelope,
// directly comparable across channel kinds, processors, baselines and
// mitigations.
//
// Determinism: for a fixed spec and seed, Run produces a Result whose
// JSON encoding is byte-identical across processes, batch parallelism,
// and transports (direct Go call vs HTTP). Scenario.Hash() is a stable
// content hash of the normalized spec (excluding Name and Seed), used
// as the cache / single-flight key by internal/serve.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"ichannels/internal/core"
	"ichannels/internal/exp"
	"ichannels/internal/mitigate"
	"ichannels/internal/model"
)

// Roles select which run path a Scenario describes.
const (
	// RoleChannel transmits over one of the three IChannels variants.
	RoleChannel = "channel"
	// RoleBaseline transmits over one of the four comparison channels.
	RoleBaseline = "baseline"
	// RoleSpy runs the §6.5 instruction-class-inference side channel.
	RoleSpy = "spy"
	// RoleMitigation grades a channel kind under one of the §7 defenses.
	RoleMitigation = "mitigation-eval"
	// RoleExperiment regenerates a registered paper figure/table by ID.
	RoleExperiment = "experiment"
)

// Channel/spy kind names for the paper's three variants (the adopted
// families' names live next to their registry entries in registry.go,
// which is the authoritative list of every kind).
const (
	KindThread = "thread"
	KindSMT    = "smt"
	KindCores  = "cores"
)

// Baseline names.
const (
	BaselineNetSpectre = "netspectre"
	BaselineTurboCC    = "turbocc"
	BaselineDFScovert  = "dfscovert"
	BaselinePowerT     = "powert"
)

// Mitigation names (canonical spellings; Normalized folds aliases).
const (
	MitigationNone               = "none"
	MitigationPerCoreVR          = "percore-vr"
	MitigationImprovedThrottling = "improved-throttling"
	MitigationSecureMode         = "secure-mode"
)

// DefaultSeed is the seed a Scenario runs with when Seed is zero and no
// batch base seed derives one.
const DefaultSeed = 1

// MaxBits bounds the payload of one scenario so a single HTTP request
// cannot ask for an unbounded amount of simulated time.
const MaxBits = 8192

// DefaultProcessor is the part a spec gets when it names none — the
// paper's primary characterization target.
const DefaultProcessor = "Cannon Lake"

// Noise configures OS noise injection and measurement jitter for the
// scenario's machine (absent = an ideal quiet machine).
type Noise struct {
	// InterruptsPerSec is the machine-wide interrupt arrival rate.
	InterruptsPerSec float64 `json:"interrupts_per_sec,omitempty"`
	// CtxSwitchesPerSec is the context-switch arrival rate.
	CtxSwitchesPerSec float64 `json:"ctx_switches_per_sec,omitempty"`
	// TSCJitterCycles adds uniform [0,n) cycles of rdtsc noise.
	TSCJitterCycles int64 `json:"tsc_jitter_cycles,omitempty"`
}

// Coding enables Hamming(7,4)+interleave+CRC framing of the payload
// (§6.3). Valid for role "channel" with a Payload.
type Coding struct {
	// InterleaveDepth is the bit interleaver depth (default 7).
	InterleaveDepth int `json:"interleave_depth,omitempty"`
}

// Params overrides tuning knobs whose defaults otherwise come from the
// processor profile and role (see DefaultParams / the schema endpoint).
// Zero values mean "keep the default".
type Params struct {
	// SlotPeriodUS overrides the covert transaction cycle (channel role).
	SlotPeriodUS float64 `json:"slot_period_us,omitempty"`
	// SenderIters overrides the sender PHI-loop length (channel role).
	SenderIters int64 `json:"sender_iters,omitempty"`
	// ReceiverIters overrides the receiver measurement loop (channel role).
	ReceiverIters int64 `json:"receiver_iters,omitempty"`
	// ReceiverOffsetUS overrides the receiver's slot offset (channel role).
	ReceiverOffsetUS float64 `json:"receiver_offset_us,omitempty"`
	// FreqGHz overrides the requested operating point (default: the
	// profile's base frequency; TurboCC defaults to max Turbo).
	FreqGHz float64 `json:"freq_ghz,omitempty"`
	// Cores overrides the number of instantiated cores (default 2).
	Cores int `json:"cores,omitempty"`
	// CalibReps overrides the calibration repetitions per symbol/width/
	// pair (defaults are per-role; see the schema endpoint).
	CalibReps int `json:"calib_reps,omitempty"`
}

// Scenario is the declarative, JSON-serializable description of one run.
// The zero value is invalid; Role is required and the remaining fields
// depend on it (Validate spells out the rules, and GET
// /v1/scenarios/schema serves a machine-readable description).
type Scenario struct {
	// Name is an optional human label echoed into batch outcomes and
	// serving envelopes (not into the shared Result, and not into Hash:
	// two specs differing only by Name are the same run).
	Name string `json:"name,omitempty"`
	// Role selects the run path: channel, baseline, spy,
	// mitigation-eval, or experiment.
	Role string `json:"role"`
	// Processor names the simulated part (marketing or code name;
	// default "Cannon Lake"). Unused for role "experiment".
	Processor string `json:"processor,omitempty"`
	// Kind is the channel variant (see registry.go for the full list:
	// thread/smt/cores plus the adopted retire and clockmod families).
	// Any registered kind is valid for channel and mitigation-eval
	// (default cores); the spy role takes smt/cores (default smt).
	Kind string `json:"kind,omitempty"`
	// Baseline names the comparison channel for role "baseline":
	// netspectre, turbocc, dfscovert, or powert.
	Baseline string `json:"baseline,omitempty"`
	// Mitigation names the defense for role "mitigation-eval": none,
	// percore-vr, improved-throttling, or secure-mode (default none).
	Mitigation string `json:"mitigation,omitempty"`
	// Experiment is the registered experiment ID for role "experiment".
	Experiment string `json:"experiment,omitempty"`
	// Noise configures OS noise injection (absent = quiet machine).
	// Role mitigation-eval defines its own noise environment and
	// rejects this field.
	Noise *Noise `json:"noise,omitempty"`
	// Coding frames the Payload with ECC before transmission
	// (role channel only).
	Coding *Coding `json:"coding,omitempty"`
	// Bits is the number of pseudo-random payload bits to transmit
	// (even, ≤ MaxBits). Mutually exclusive with Payload; zero picks a
	// per-role default.
	Bits int `json:"bits,omitempty"`
	// Payload is a literal byte payload to transmit instead of random
	// bits (roles channel and baseline; ≤ 255 bytes).
	Payload string `json:"payload,omitempty"`
	// Seed drives all simulation randomness. Zero means "default": a
	// single run uses DefaultSeed, a batch derives a per-scenario seed
	// from the batch base seed and Hash().
	Seed int64 `json:"seed,omitempty"`
	// Params overrides tuning defaults.
	Params *Params `json:"params,omitempty"`
}

// defaultBits returns the per-role payload size used when the spec gives
// neither Bits nor Payload, read from the kind/baseline registries (slow
// carriers default smaller so one scenario stays within a few simulated
// seconds). Unknown kind/baseline names keep the historical fallback so
// normalization stays total; validate rejects them before anything runs.
func defaultBits(role, kind, baseline string) int {
	switch role {
	case RoleChannel, RoleMitigation:
		if ks, ok := kindByName[kind]; ok {
			return ks.defaultBits
		}
	case RoleBaseline:
		if bs, ok := baselineByName[baseline]; ok {
			return bs.defaultBits
		}
	case RoleSpy:
		return 32 // 16 observation windows × 2 bits per width class
	case RoleExperiment:
		return 0
	}
	return 64
}

// defaultCalibReps returns the per-role calibration repetitions, read
// from the kind/baseline registries (same unknown-name fallback rule as
// defaultBits).
func defaultCalibReps(role, kind, baseline string) int {
	switch role {
	case RoleChannel, RoleMitigation:
		if ks, ok := kindByName[kind]; ok {
			return ks.defaultCalibReps
		}
	case RoleBaseline:
		if bs, ok := baselineByName[baseline]; ok {
			return bs.defaultCalibReps
		}
	}
	return 6
}

// Normalized returns the spec with defaults folded in and names
// canonicalized (processor → code name, mitigation aliases, lower-cased
// enums). Hash and Run operate on the normalized form, so a spec and
// its normalization are the same scenario.
func (s Scenario) Normalized() Scenario {
	n := s
	n.Role = strings.ToLower(strings.TrimSpace(n.Role))
	n.Kind = strings.ToLower(strings.TrimSpace(n.Kind))
	n.Baseline = strings.ToLower(strings.TrimSpace(n.Baseline))
	n.Mitigation = strings.ToLower(strings.TrimSpace(n.Mitigation))
	if canon, ok := mitigationAliases[n.Mitigation]; ok {
		n.Mitigation = canon
	}
	if n.Role != RoleExperiment {
		if n.Processor == "" {
			n.Processor = DefaultProcessor
		}
		if p, err := model.ByName(n.Processor); err == nil {
			n.Processor = p.CodeName
		}
	}
	switch n.Role {
	case RoleChannel, RoleMitigation:
		if n.Kind == "" {
			n.Kind = KindCores
		}
	case RoleSpy:
		if n.Kind == "" {
			n.Kind = KindSMT
		}
	}
	if n.Role == RoleMitigation && n.Mitigation == "" {
		n.Mitigation = MitigationNone
	}
	if n.Coding != nil {
		c := *n.Coding
		if c.InterleaveDepth == 0 {
			c.InterleaveDepth = 7
		}
		n.Coding = &c
	}
	// Collapse empty sub-objects so {"noise":{}} hashes like no noise.
	if n.Noise != nil && *n.Noise == (Noise{}) {
		n.Noise = nil
	}
	if n.Params != nil && *n.Params == (Params{}) {
		n.Params = nil
	}
	if n.Bits == 0 && n.Payload == "" {
		n.Bits = defaultBits(n.Role, n.Kind, n.Baseline)
	}
	return n
}

// Hash returns a stable 16-hex-character content hash of the normalized
// spec, excluding Name (a display label) and Seed. Together with the
// effective seed it identifies a run's result bytes, which is what the
// serve layer's single-flight cache keys on.
func (s Scenario) Hash() string {
	n := s.Normalized()
	n.Name = ""
	n.Seed = 0
	b, err := json.Marshal(n)
	if err != nil {
		// Scenario has no unmarshalable fields; keep the signature clean.
		panic("scenario: hash marshal: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Describe returns a short human label for tables and timing output.
func (s Scenario) Describe() string {
	n := s.Normalized()
	if n.Name != "" {
		return n.Name
	}
	switch n.Role {
	case RoleChannel:
		return fmt.Sprintf("channel/%s @ %s", n.Kind, n.Processor)
	case RoleBaseline:
		return fmt.Sprintf("baseline/%s @ %s", n.Baseline, n.Processor)
	case RoleSpy:
		return fmt.Sprintf("spy/%s @ %s", n.Kind, n.Processor)
	case RoleMitigation:
		return fmt.Sprintf("%s × %s/%s @ %s", n.Mitigation, RoleChannel, n.Kind, n.Processor)
	case RoleExperiment:
		return "experiment/" + n.Experiment
	}
	return "scenario/" + n.Role
}

// channelKind maps a registered kind name to the paper-variant core enum
// (only the classic kinds have one; the spy path is the sole remaining
// caller that needs it directly).
func channelKind(kind string) (core.Kind, error) {
	if ks, ok := kindByName[kind]; ok && ks.hasCore {
		return ks.coreKind, nil
	}
	return 0, errUnknownKind(kind)
}

// errUnknownKind is the shared unknown-channel-kind error, listing the
// registry's vocabulary.
func errUnknownKind(kind string) error {
	return fmt.Errorf("scenario: unknown channel kind %q (%s)", kind, orList(ChannelKindNames()))
}

// mitigationKind maps a mitigation name to the mitigate enum via the
// registry.
func mitigationKind(name string) (mitigate.Kind, error) {
	if ms, ok := mitigationByName[name]; ok {
		return ms.kind, nil
	}
	return 0, fmt.Errorf("scenario: unknown mitigation %q (%s)", name, orList(MitigationNames()))
}

// Validate checks the spec for consistency. It normalizes first, so a
// raw user spec can be validated directly.
func (s Scenario) Validate() error {
	return s.Normalized().validate()
}

// validate checks an already-normalized spec.
func (n Scenario) validate() error {
	switch n.Role {
	case RoleChannel, RoleBaseline, RoleSpy, RoleMitigation, RoleExperiment:
	case "":
		return fmt.Errorf("scenario: missing role (%s)", orList(roleNames()))
	default:
		return fmt.Errorf("scenario: unknown role %q (%s)", n.Role, orList(roleNames()))
	}

	if n.Role == RoleExperiment {
		if n.Experiment == "" {
			return fmt.Errorf("scenario: role experiment requires an experiment id (see /v1/experiments)")
		}
		if _, ok := exp.Lookup(n.Experiment); !ok {
			return fmt.Errorf("scenario: unknown experiment %q (use one of %v)", n.Experiment, exp.IDs())
		}
		for field, set := range map[string]bool{
			"processor": n.Processor != "", "kind": n.Kind != "",
			"baseline": n.Baseline != "", "mitigation": n.Mitigation != "",
			"noise": n.Noise != nil, "coding": n.Coding != nil,
			"bits": n.Bits != 0, "payload": n.Payload != "", "params": n.Params != nil,
		} {
			if set {
				return fmt.Errorf("scenario: role experiment takes only an experiment id and a seed; %s must be empty", field)
			}
		}
		return nil
	}
	if n.Experiment != "" {
		return fmt.Errorf("scenario: experiment is only valid with role experiment")
	}

	proc, err := model.ByName(n.Processor)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	cores := effectiveCores(n, proc)

	switch n.Role {
	case RoleChannel, RoleMitigation:
		ks, ok := kindByName[n.Kind]
		if !ok {
			return errUnknownKind(n.Kind)
		}
		if ks.requiresSMT && proc.SMTWays < 2 {
			return fmt.Errorf("scenario: kind %s requires an SMT processor; %s has none", ks.name, proc.CodeName)
		}
		if ks.minCores > 0 && cores < ks.minCores {
			return fmt.Errorf("scenario: kind %s requires at least %d cores (params.cores=%d)", ks.name, ks.minCores, cores)
		}
	case RoleSpy:
		ks, ok := kindByName[n.Kind]
		if !ok || !ks.spyRole {
			return fmt.Errorf("scenario: spy kind must be %s, got %q", orList(SpyKindNames()), n.Kind)
		}
		if ks.requiresSMT && proc.SMTWays < 2 {
			return fmt.Errorf("scenario: spy kind %s requires an SMT processor; %s has none", ks.name, proc.CodeName)
		}
		if ks.minCores > 0 && cores < ks.minCores {
			return fmt.Errorf("scenario: spy kind %s requires at least %d cores (params.cores=%d)", ks.name, ks.minCores, cores)
		}
	case RoleBaseline:
		if n.Baseline == "" {
			return fmt.Errorf("scenario: role baseline requires a baseline name (%s)", orList(BaselineNames()))
		}
		bs, ok := baselineByName[n.Baseline]
		if !ok {
			return fmt.Errorf("scenario: unknown baseline %q (%s)", n.Baseline, orList(BaselineNames()))
		}
		if bs.minCores > 0 && cores < bs.minCores {
			return fmt.Errorf("scenario: baseline %s requires at least %d cores (params.cores=%d)", bs.name, bs.minCores, cores)
		}
	}

	if n.Role != RoleChannel && n.Coding != nil {
		return fmt.Errorf("scenario: coding is only valid for role channel")
	}
	if n.Role != RoleChannel && n.Role != RoleBaseline && n.Payload != "" {
		return fmt.Errorf("scenario: payload is only valid for roles channel and baseline")
	}
	if n.Mitigation != "" {
		if _, err := mitigationKind(n.Mitigation); err != nil {
			return err
		}
		if n.Role != RoleMitigation {
			return fmt.Errorf("scenario: mitigation is only valid for role mitigation-eval")
		}
	}
	if n.Role == RoleMitigation && n.Noise != nil {
		return fmt.Errorf("scenario: mitigation-eval defines its own noise environment; drop the noise field")
	}
	if n.Baseline != "" && n.Role != RoleBaseline {
		return fmt.Errorf("scenario: baseline is only valid for role baseline")
	}
	if n.Role == RoleBaseline && n.Kind != "" {
		return fmt.Errorf("scenario: baselines have a fixed topology; kind must be empty")
	}

	if n.Payload != "" {
		if n.Bits != 0 {
			return fmt.Errorf("scenario: bits and payload are mutually exclusive")
		}
		if len(n.Payload) > 255 {
			return fmt.Errorf("scenario: payload %d bytes exceeds the 255-byte frame limit", len(n.Payload))
		}
	} else {
		if n.Bits <= 0 {
			return fmt.Errorf("scenario: bits must be positive, got %d", n.Bits)
		}
		if n.Bits%2 != 0 {
			return fmt.Errorf("scenario: bits must be even (2 bits per covert symbol), got %d", n.Bits)
		}
		if n.Bits > MaxBits {
			return fmt.Errorf("scenario: bits %d exceeds the per-scenario limit %d", n.Bits, MaxBits)
		}
		if n.Coding != nil {
			return fmt.Errorf("scenario: coding requires a payload (random bits are not framed)")
		}
	}

	if no := n.Noise; no != nil {
		if no.InterruptsPerSec < 0 || no.CtxSwitchesPerSec < 0 || no.TSCJitterCycles < 0 {
			return fmt.Errorf("scenario: noise rates and jitter must be non-negative")
		}
	}
	if c := n.Coding; c != nil && c.InterleaveDepth < 1 {
		return fmt.Errorf("scenario: interleave depth must be positive, got %d", c.InterleaveDepth)
	}
	if p := n.Params; p != nil {
		if p.SlotPeriodUS < 0 || p.SenderIters < 0 || p.ReceiverIters < 0 ||
			p.ReceiverOffsetUS < 0 || p.FreqGHz < 0 || p.Cores < 0 || p.CalibReps < 0 {
			return fmt.Errorf("scenario: params overrides must be non-negative")
		}
		if p.Cores > proc.Cores {
			return fmt.Errorf("scenario: params.cores=%d exceeds the %s profile's %d cores", p.Cores, proc.CodeName, proc.Cores)
		}
		// Reject overrides the role would silently ignore: an ignored
		// field still enters the content hash, so accepting it would
		// both mislead the user and fragment the result cache.
		if n.Role != RoleChannel &&
			(p.SlotPeriodUS != 0 || p.SenderIters != 0 || p.ReceiverIters != 0 || p.ReceiverOffsetUS != 0) {
			return fmt.Errorf("scenario: params slot_period_us/sender_iters/receiver_iters/receiver_offset_us are only valid for role channel")
		}
		if n.Role == RoleChannel && p.SenderIters != 0 {
			if ks, ok := kindByName[n.Kind]; ok && ks.noSenderIters {
				return fmt.Errorf("scenario: params sender_iters is not valid for kind %s (its sender has no tuning loop)", n.Kind)
			}
		}
		if n.Role == RoleMitigation && (p.FreqGHz != 0 || p.CalibReps != 0) {
			return fmt.Errorf("scenario: mitigation-eval fixes its own operating point and calibration; only params.cores may be overridden")
		}
	}
	if n.Seed < 0 {
		return fmt.Errorf("scenario: seed must be non-negative, got %d", n.Seed)
	}
	return nil
}

// effectiveCores returns the core count the scenario's machine gets:
// the override, else min(2, profile) — two cores cover every topology
// the run paths need while keeping big parts (the 24-core Xeon) cheap.
func effectiveCores(n Scenario, proc model.Processor) int {
	if n.Params != nil && n.Params.Cores > 0 {
		return n.Params.Cores
	}
	if proc.Cores < 2 {
		return proc.Cores
	}
	return 2
}

// effectiveCalibReps returns the calibration repetition count.
func effectiveCalibReps(n Scenario) int {
	if n.Params != nil && n.Params.CalibReps > 0 {
		return n.Params.CalibReps
	}
	return defaultCalibReps(n.Role, n.Kind, n.Baseline)
}
