package scenario

import (
	"context"
	"fmt"
	"math/rand"

	"ichannels/internal/baselines"
	"ichannels/internal/channels"
	"ichannels/internal/core"
	"ichannels/internal/ecc"
	"ichannels/internal/exp"
	"ichannels/internal/isa"
	"ichannels/internal/mitigate"
	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/stats"
	"ichannels/internal/units"
)

// Result is the normalized envelope every scenario run produces, so
// heterogeneous runs (channel vs baseline vs spy vs mitigation) are
// directly comparable. Its JSON encoding is deterministic for a fixed
// (spec, seed): wall-clock timing never enters this struct (the engine
// and serve layers carry it separately).
type Result struct {
	// Role/Processor/Kind/Baseline/Mitigation/Experiment echo the
	// normalized spec so a Result is self-describing. The spec's Name
	// label deliberately does NOT appear here: results are shared
	// between requests through the (hash, seed) cache, and the hash
	// excludes Name — the serving envelopes and batch outcomes carry
	// each requester's own label instead.
	Role       string `json:"role"`
	Processor  string `json:"processor,omitempty"`
	Kind       string `json:"kind,omitempty"`
	Baseline   string `json:"baseline,omitempty"`
	Mitigation string `json:"mitigation,omitempty"`
	Experiment string `json:"experiment,omitempty"`
	// Hash is the spec's content hash (cache identity).
	Hash string `json:"hash"`
	// Seed is the effective seed the run used.
	Seed int64 `json:"seed"`

	// Bits is the number of payload bits transmitted (0 for experiment
	// runs).
	Bits int `json:"bits,omitempty"`
	// SentBits/DecodedBits are the flattened bit streams. For the spy
	// role each observation window contributes its 2-bit width-class
	// index (actual vs inferred).
	SentBits    []int `json:"sent_bits,omitempty"`
	DecodedBits []int `json:"decoded_bits,omitempty"`
	// DecodedPayload is the reassembled payload when the spec sent one.
	DecodedPayload string `json:"decoded_payload,omitempty"`
	// ThroughputBPS is the raw channel throughput (bits per simulated
	// second); for mitigation-eval it is the effective goodput estimate.
	ThroughputBPS float64 `json:"throughput_bps,omitempty"`
	// BER is the bit error rate of the transmission.
	BER float64 `json:"ber"`
	// SymbolErrors counts wrongly decoded 2-bit symbols (channel role).
	SymbolErrors int `json:"symbol_errors,omitempty"`
	// ElapsedSimUS is the simulated (not wall-clock) transmission time.
	ElapsedSimUS float64 `json:"elapsed_sim_us,omitempty"`
	// Verdict grades a mitigation evaluation (unaffected/partial/
	// mitigated).
	Verdict string `json:"verdict,omitempty"`
	// Extra carries per-role scalar metrics (calibration gap, spy
	// accuracy, ECC corrections, ...). encoding/json emits map keys
	// sorted, keeping the envelope deterministic.
	Extra map[string]float64 `json:"extra,omitempty"`
	// Notes records caveats (e.g. an unrecoverable ECC frame).
	Notes []string `json:"notes,omitempty"`
	// Report is the regenerated figure/table for role experiment.
	Report *exp.Report `json:"report,omitempty"`
}

// extra records a scalar metric, allocating the map on first use.
func (r *Result) extra(name string, v float64) {
	if r.Extra == nil {
		r.Extra = map[string]float64{}
	}
	r.Extra[name] = v
}

// note appends a commentary line.
func (r *Result) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Runner executes scenarios. The zero value runs everything with the
// real implementations; tests and the serve layer inject ExpRun to
// observe or fake experiment execution.
type Runner struct {
	// ExpRun overrides the experiment executor for role "experiment"
	// (nil means exp.Run).
	ExpRun func(id string, seed int64) (*exp.Report, error)
	// Machines, when set, recycles simulated machines across runs
	// instead of constructing one per scenario — the big wall-clock win
	// for grids of short cells. Reset machines replay byte-identically
	// to fresh ones (the soc pooling contract), so results do not depend
	// on whether a pool is set. Nil constructs per run.
	Machines *soc.Pool
}

// Run executes one scenario with the default Runner. The context is
// checked between simulation phases (the discrete-event simulator
// itself is not interruptible mid-phase).
func Run(ctx context.Context, s Scenario) (*Result, error) {
	return Runner{}.Run(ctx, s)
}

// Run executes one scenario: normalize, validate, pick the effective
// seed (spec seed, else DefaultSeed), and dispatch on role.
func (r Runner) Run(ctx context.Context, s Scenario) (*Result, error) {
	seed := s.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	return r.RunSeeded(ctx, s, seed)
}

// RunSeeded executes one scenario with an explicit seed, overriding the
// spec's Seed field. Batch executors use it to hand out derived seeds.
func (r Runner) RunSeeded(ctx context.Context, s Scenario, seed int64) (*Result, error) {
	n := s.Normalized()
	if err := n.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &Result{
		Role: n.Role, Processor: n.Processor, Kind: n.Kind,
		Baseline: n.Baseline, Mitigation: n.Mitigation, Experiment: n.Experiment,
		Hash: n.Hash(), Seed: seed,
	}
	var err error
	switch n.Role {
	case RoleChannel:
		err = runChannel(ctx, n, seed, res, r.Machines)
	case RoleBaseline:
		err = runBaseline(ctx, n, seed, res, r.Machines)
	case RoleSpy:
		err = runSpy(ctx, n, seed, res, r.Machines)
	case RoleMitigation:
		err = runMitigation(n, seed, res, r.Machines)
	case RoleExperiment:
		run := r.ExpRun
		if run == nil {
			run = exp.Run
		}
		res.Report, err = run(n.Experiment, seed)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// machineFor provisions the scenario's machine — requested operating
// point, core count, noise environment, seed — from the pool when one
// is set (nil constructs). The caller releases it back when the run is
// over.
func machineFor(n Scenario, proc model.Processor, seed int64, pool *soc.Pool) (*soc.Machine, error) {
	opts := soc.Options{
		Processor:     proc,
		RequestedFreq: effectiveFreq(n, proc),
		Cores:         effectiveCores(n, proc),
		Seed:          seed,
	}
	if no := n.Noise; no != nil {
		opts.Noise = soc.WithRates(no.InterruptsPerSec, no.CtxSwitchesPerSec)
		opts.TSCJitterCycles = no.TSCJitterCycles
	}
	return pool.Acquire(opts)
}

// effectiveFreq picks the requested operating point: the override, else
// max Turbo for TurboCC (its mechanism only exists at a Turbo point),
// else the profile's base frequency.
func effectiveFreq(n Scenario, proc model.Processor) units.Hertz {
	if n.Params != nil && n.Params.FreqGHz > 0 {
		return units.Hertz(n.Params.FreqGHz) * units.GHz
	}
	if n.Role == RoleBaseline && n.Baseline == BaselineTurboCC {
		return proc.MaxTurbo
	}
	return proc.BaseFreq
}

// sendBits materializes the payload: the literal payload (ECC-framed
// when coding is on), else deterministic pseudo-random bits drawn from a
// stream decoupled from the machine's noise randomness.
func sendBits(n Scenario, seed int64) ([]int, error) {
	if n.Payload == "" {
		rng := rand.New(rand.NewSource(seed ^ 0x1c4a11b5))
		bits := make([]int, n.Bits)
		for i := range bits {
			bits[i] = rng.Intn(2)
		}
		return bits, nil
	}
	if n.Coding != nil {
		return ecc.EncodeFrame([]byte(n.Payload), n.Coding.InterleaveDepth)
	}
	return ecc.BytesToBits([]byte(n.Payload)), nil
}

// finishTransmission fills the envelope fields shared by the channel
// and baseline roles.
func finishTransmission(res *Result, sent, decoded []int, ber, bps float64, elapsed units.Duration) {
	res.Bits = len(sent)
	res.SentBits = sent
	res.DecodedBits = decoded
	res.BER = ber
	res.ThroughputBPS = bps
	res.ElapsedSimUS = elapsed.Microseconds()
}

// decodePayload reassembles a byte payload from the decoded bit stream.
func decodePayload(n Scenario, res *Result) {
	if n.Payload == "" {
		return
	}
	if n.Coding != nil {
		payload, corrected, err := ecc.DecodeFrame(res.DecodedBits, n.Coding.InterleaveDepth)
		if err != nil {
			res.note("frame unrecoverable after channel errors: %v", err)
			return
		}
		res.DecodedPayload = string(payload)
		res.extra("ecc_corrected_bits", float64(corrected))
		return
	}
	raw, err := ecc.BitsToBytes(res.DecodedBits)
	if err != nil {
		res.note("decoded bit stream not byte-aligned: %v", err)
		return
	}
	res.DecodedPayload = string(raw)
}

// runChannel dispatches role channel to the kind's registered executor.
func runChannel(ctx context.Context, n Scenario, seed int64, res *Result, pool *soc.Pool) error {
	ks, ok := kindByName[n.Kind]
	if !ok {
		return errUnknownKind(n.Kind)
	}
	return ks.run(ctx, n, seed, res, pool)
}

// runCoreKind builds the registry executor for one of the paper's
// multi-level variants: calibrate and transmit over core.Channel.
func runCoreKind(kind core.Kind) func(context.Context, Scenario, int64, *Result, *soc.Pool) error {
	return func(ctx context.Context, n Scenario, seed int64, res *Result, pool *soc.Pool) error {
		proc, err := model.ByName(n.Processor)
		if err != nil {
			return err
		}
		m, err := machineFor(n, proc, seed, pool)
		if err != nil {
			return err
		}
		defer pool.Release(m)
		params := core.DefaultParams(kind, proc)
		if p := n.Params; p != nil {
			if p.SlotPeriodUS > 0 {
				params.SlotPeriod = units.Duration(p.SlotPeriodUS) * units.Microsecond
			}
			if p.SenderIters > 0 {
				params.SenderIters = p.SenderIters
			}
			if p.ReceiverIters > 0 {
				params.ReceiverIters = p.ReceiverIters
			}
			if p.ReceiverOffsetUS > 0 {
				params.ReceiverOffset = units.Duration(p.ReceiverOffsetUS) * units.Microsecond
			}
		}
		ch, err := core.New(m, params)
		if err != nil {
			return err
		}
		cal, err := ch.Calibrate(effectiveCalibReps(n))
		if err != nil {
			return fmt.Errorf("scenario: calibration failed: %w", err)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		bits, err := sendBits(n, seed)
		if err != nil {
			return err
		}
		tr, err := ch.Transmit(bits)
		if err != nil {
			return err
		}
		finishTransmission(res, tr.SentBits, tr.DecodedBits, tr.BER, tr.ThroughputBPS, tr.Elapsed)
		res.SymbolErrors = tr.SymbolErrors
		res.extra("calibration_gap_cycles", cal.Gap)
		res.extra("raw_throughput_bps", params.RawThroughputBPS())
		decodePayload(n, res)
		return nil
	}
}

// registryChannel is the shared surface of the channels-package families
// (retire, clockmod).
type registryChannel interface {
	Calibrate(pairs int) (float64, error)
	Transmit(bits []int) (*channels.Result, error)
}

// runRegistryChannel calibrates and transmits over a channels-package
// family, mirroring the core-variant flow (same operation order, same
// envelope fields).
func runRegistryChannel(ctx context.Context, n Scenario, seed int64, res *Result, pool *soc.Pool,
	build func(m *soc.Machine) (registryChannel, error), rawBPS func(ch registryChannel) float64) error {
	proc, err := model.ByName(n.Processor)
	if err != nil {
		return err
	}
	m, err := machineFor(n, proc, seed, pool)
	if err != nil {
		return err
	}
	defer pool.Release(m)
	ch, err := build(m)
	if err != nil {
		return err
	}
	gap, err := ch.Calibrate(effectiveCalibReps(n))
	if err != nil {
		return fmt.Errorf("scenario: calibration failed: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	bits, err := sendBits(n, seed)
	if err != nil {
		return err
	}
	tr, err := ch.Transmit(bits)
	if err != nil {
		return err
	}
	finishTransmission(res, tr.SentBits, tr.DecodedBits, tr.BER, tr.ThroughputBPS, tr.Elapsed)
	res.SymbolErrors = tr.SymbolErrors
	res.extra("calibration_gap_cycles", gap)
	res.extra("raw_throughput_bps", rawBPS(ch))
	decodePayload(n, res)
	return nil
}

// runRetire executes role channel for the retirement-contention family.
func runRetire(ctx context.Context, n Scenario, seed int64, res *Result, pool *soc.Pool) error {
	return runRegistryChannel(ctx, n, seed, res, pool,
		func(m *soc.Machine) (registryChannel, error) {
			ch, err := channels.NewRetire(m)
			if err != nil {
				return nil, err
			}
			if p := n.Params; p != nil {
				if p.SlotPeriodUS > 0 {
					ch.SlotPeriod = units.Duration(p.SlotPeriodUS) * units.Microsecond
				}
				if p.SenderIters > 0 {
					ch.SenderIters = p.SenderIters
				}
				if p.ReceiverIters > 0 {
					ch.ReceiverIters = p.ReceiverIters
				}
				if p.ReceiverOffsetUS > 0 {
					ch.ReceiverOffset = units.Duration(p.ReceiverOffsetUS) * units.Microsecond
				}
			}
			return ch, nil
		},
		func(ch registryChannel) float64 { return ch.(*channels.Retire).RawThroughputBPS() })
}

// runClockMod executes role channel for the clock-modulation family. The
// generic slot/receiver knobs map onto its window vocabulary
// (slot_period_us → bit window, receiver_iters → measurement loop,
// receiver_offset_us → in-window measurement offset); sender_iters is
// rejected by validation since the sender is a single MSR write.
func runClockMod(ctx context.Context, n Scenario, seed int64, res *Result, pool *soc.Pool) error {
	return runRegistryChannel(ctx, n, seed, res, pool,
		func(m *soc.Machine) (registryChannel, error) {
			ch, err := channels.NewClockMod(m)
			if err != nil {
				return nil, err
			}
			if p := n.Params; p != nil {
				if p.SlotPeriodUS > 0 {
					ch.BitPeriod = units.Duration(p.SlotPeriodUS) * units.Microsecond
				}
				if p.ReceiverIters > 0 {
					ch.MeasureIters = p.ReceiverIters
				}
				if p.ReceiverOffsetUS > 0 {
					ch.MeasureOffset = units.Duration(p.ReceiverOffsetUS) * units.Microsecond
				}
			}
			return ch, nil
		},
		func(ch registryChannel) float64 { return ch.(*channels.ClockMod).RawThroughputBPS() })
}

// baselineChannel is the shared shape of the four baseline channels.
type baselineChannel interface {
	Calibrate(pairs int) error
	Transmit(bits []int) (*baselines.Result, error)
}

// runBaseline calibrates and transmits over one comparison channel.
func runBaseline(ctx context.Context, n Scenario, seed int64, res *Result, pool *soc.Pool) error {
	proc, err := model.ByName(n.Processor)
	if err != nil {
		return err
	}
	m, err := machineFor(n, proc, seed, pool)
	if err != nil {
		return err
	}
	defer pool.Release(m)
	bs, ok := baselineByName[n.Baseline]
	if !ok {
		return fmt.Errorf("scenario: unknown baseline %q", n.Baseline)
	}
	ch, err := bs.construct(m)
	if err != nil {
		return err
	}
	if err := ch.Calibrate(effectiveCalibReps(n)); err != nil {
		return fmt.Errorf("scenario: calibration failed: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	bits, err := sendBits(n, seed)
	if err != nil {
		return err
	}
	br, err := ch.Transmit(bits)
	if err != nil {
		return err
	}
	finishTransmission(res, br.SentBits, br.DecodedBits, br.BER, br.ThroughputBPS, br.Elapsed)
	decodePayload(n, res)
	return nil
}

// runSpy calibrates the side-channel observer and has it classify a
// pseudo-random victim width sequence. Each observation window encodes
// its width-class index as 2 bits, so the spy slots into the same
// bits/BER/throughput envelope as the transmitting channels.
func runSpy(ctx context.Context, n Scenario, seed int64, res *Result, pool *soc.Pool) error {
	proc, err := model.ByName(n.Processor)
	if err != nil {
		return err
	}
	m, err := machineFor(n, proc, seed, pool)
	if err != nil {
		return err
	}
	defer pool.Release(m)
	kind, err := channelKind(n.Kind)
	if err != nil {
		return err
	}
	spy, err := core.NewSpy(m, kind)
	if err != nil {
		return err
	}
	if err := spy.Calibrate(effectiveCalibReps(n)); err != nil {
		return fmt.Errorf("scenario: spy calibration failed: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	widths := core.VictimWidths()
	windows := n.Bits / 2
	rng := rand.New(rand.NewSource(seed ^ 0x1c4a11b5))
	classes := make([]isa.Class, windows)
	for i := range classes {
		classes[i] = widths[rng.Intn(len(widths))]
	}
	inf, err := spy.Infer(classes)
	if err != nil {
		return err
	}
	widthIndex := func(c isa.Class) int {
		for i, w := range widths {
			if w == c {
				return i
			}
		}
		return 0
	}
	toBits := func(cs []isa.Class) []int {
		out := make([]int, 0, 2*len(cs))
		for _, c := range cs {
			i := widthIndex(c)
			out = append(out, i>>1&1, i&1)
		}
		return out
	}
	sent, decoded := toBits(inf.Actual), toBits(inf.Inferred)
	elapsed := units.Duration(windows) * spy.Window
	bps := 0.0
	if elapsed > 0 {
		bps = float64(len(sent)) / elapsed.Seconds()
	}
	finishTransmission(res, sent, decoded, stats.BER(sent, decoded), bps, elapsed)
	res.extra("accuracy", inf.Accuracy)
	return nil
}

// runMitigation grades one channel kind under one defense via the
// mitigation harness (which supplies its own standard noise
// environment — that is the published evaluation methodology).
func runMitigation(n Scenario, seed int64, res *Result, pool *soc.Pool) error {
	proc, err := model.ByName(n.Processor)
	if err != nil {
		return err
	}
	// Bound the machine like every other role (mitigate builds its own
	// machine from the profile, so shrink the profile).
	proc.Cores = effectiveCores(n, proc)
	mk, err := mitigationKind(n.Mitigation)
	if err != nil {
		return err
	}
	ks, ok := kindByName[n.Kind]
	if !ok {
		return errUnknownKind(n.Kind)
	}
	a, err := ks.evalMitigation(pool, mk, proc, n.Bits, seed)
	if err != nil {
		return err
	}
	res.Bits = n.Bits
	res.BER = a.BER
	res.ThroughputBPS = a.EffectiveBPS
	res.Verdict = a.Verdict.String()
	res.extra("calibration_gap_cycles", a.CalibrationGap)
	return nil
}

// evalCoreKind builds the registry mitigation evaluator for one of the
// paper's variants (the classic Table 1 harness).
func evalCoreKind(ck core.Kind) func(*soc.Pool, mitigate.Kind, model.Processor, int, int64) (*mitigate.Assessment, error) {
	return func(pool *soc.Pool, mk mitigate.Kind, proc model.Processor, nBits int, seed int64) (*mitigate.Assessment, error) {
		return mitigate.EvaluatePooled(pool, mk, ck, proc, nBits, seed)
	}
}

// mitChannel adapts a channels-package family to the mitigation
// evaluator's Channel interface.
type mitChannel struct{ ch registryChannel }

func (a mitChannel) Calibrate(reps int) (float64, error) { return a.ch.Calibrate(reps) }

func (a mitChannel) Transmit(bits []int) (float64, float64, error) {
	res, err := a.ch.Transmit(bits)
	if err != nil {
		return 0, 0, err
	}
	return res.BER, res.ThroughputBPS, nil
}

// mitCalibReps matches the calibration depth the classic harness uses
// for its variants.
const mitCalibReps = 8

// evalRetireMitigation grades the retirement-contention family under a
// defense.
func evalRetireMitigation(pool *soc.Pool, mk mitigate.Kind, proc model.Processor, nBits int, seed int64) (*mitigate.Assessment, error) {
	return mitigate.EvaluateChannelPooled(pool, mk, KindRetire, proc, nBits, mitCalibReps, seed,
		func(m *soc.Machine) (mitigate.Channel, error) {
			ch, err := channels.NewRetire(m)
			if err != nil {
				return nil, err
			}
			return mitChannel{ch}, nil
		})
}

// evalClockModMitigation grades the clock-modulation family under a
// defense.
func evalClockModMitigation(pool *soc.Pool, mk mitigate.Kind, proc model.Processor, nBits int, seed int64) (*mitigate.Assessment, error) {
	return mitigate.EvaluateChannelPooled(pool, mk, KindClockMod, proc, nBits, mitCalibReps, seed,
		func(m *soc.Machine) (mitigate.Channel, error) {
			ch, err := channels.NewClockMod(m)
			if err != nil {
				return nil, err
			}
			return mitChannel{ch}, nil
		})
}
