package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHammingRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]int, (len(raw)/4)*4)
		for i := range bits {
			bits[i] = int(raw[i]) & 1
		}
		code, err := HammingEncode(bits)
		if err != nil {
			return false
		}
		back, corrected, err := HammingDecode(code)
		if err != nil || corrected != 0 {
			return false
		}
		if len(back) != len(bits) {
			return false
		}
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingCorrectsEverySingleBitError(t *testing.T) {
	// Exhaustive: all 16 data nibbles × all 7 error positions.
	for data := 0; data < 16; data++ {
		bits := []int{data >> 3 & 1, data >> 2 & 1, data >> 1 & 1, data & 1}
		code, err := HammingEncode(bits)
		if err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos < 7; pos++ {
			corrupt := append([]int(nil), code...)
			corrupt[pos] ^= 1
			back, corrected, err := HammingDecode(corrupt)
			if err != nil {
				t.Fatal(err)
			}
			if corrected != 1 {
				t.Fatalf("data %d pos %d: corrected = %d", data, pos, corrected)
			}
			for i := range bits {
				if back[i] != bits[i] {
					t.Fatalf("data %d pos %d: decode mismatch", data, pos)
				}
			}
		}
	}
}

func TestHammingValidation(t *testing.T) {
	if _, err := HammingEncode([]int{1, 0, 1}); err == nil {
		t.Fatal("length not ÷4 accepted")
	}
	if _, err := HammingEncode([]int{1, 0, 1, 2}); err == nil {
		t.Fatal("non-bit accepted")
	}
	if _, _, err := HammingDecode([]int{1, 0, 1}); err == nil {
		t.Fatal("length not ÷7 accepted")
	}
	if _, _, err := HammingDecode([]int{1, 0, 1, 0, 1, 0, 3}); err == nil {
		t.Fatal("non-bit codeword accepted")
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	f := func(raw []byte, depthRaw uint8) bool {
		depth := int(depthRaw)%16 + 1
		bits := make([]int, len(raw))
		for i := range bits {
			bits[i] = int(raw[i]) & 1
		}
		inter, err := Interleave(bits, depth)
		if err != nil || len(inter) != len(bits) {
			return false
		}
		back, err := Deinterleave(inter, depth)
		if err != nil {
			return false
		}
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveValidation(t *testing.T) {
	if _, err := Interleave([]int{1}, 0); err == nil {
		t.Fatal("zero depth accepted")
	}
	if _, err := Deinterleave([]int{1}, -1); err == nil {
		t.Fatal("negative depth accepted")
	}
}

func TestCRC8KnownVectors(t *testing.T) {
	if got := CRC8([]byte{}); got != 0 {
		t.Fatalf("CRC8(empty) = %#x", got)
	}
	// CRC-8/ATM check value: CRC8("123456789") = 0xF4.
	if got := CRC8([]byte("123456789")); got != 0xF4 {
		t.Fatalf("CRC8 check = %#x, want 0xF4", got)
	}
}

func TestBytesBitsRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		back, err := BitsToBytes(BytesToBits(data))
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsToBytesValidation(t *testing.T) {
	if _, err := BitsToBytes([]int{1, 0, 1}); err == nil {
		t.Fatal("length not ÷8 accepted")
	}
	if _, err := BitsToBytes([]int{1, 0, 1, 0, 1, 0, 1, 5}); err == nil {
		t.Fatal("non-bit accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("secret-key-material")
	frame, err := EncodeFrame(payload, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame)%2 != 0 {
		t.Fatal("frame must be a whole number of 2-bit symbols")
	}
	wantBits, err := FrameBits(len(payload), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != wantBits {
		t.Fatalf("frame %d bits, FrameBits says %d", len(frame), wantBits)
	}
	back, corrected, err := DecodeFrame(frame, 7)
	if err != nil {
		t.Fatal(err)
	}
	if corrected != 0 || !bytes.Equal(back, payload) {
		t.Fatalf("roundtrip failed: %q (%d corrected)", back, corrected)
	}
}

func TestFrameCorrectsScatteredErrors(t *testing.T) {
	payload := []byte("0123456789abcdef")
	frame, err := EncodeFrame(payload, 7)
	if err != nil {
		t.Fatal(err)
	}
	// One error every 7 bits of the *interleaved* stream lands in
	// distinct codewords after deinterleaving with the right geometry;
	// scatter a few far apart instead to stay safely correctable.
	corrupt := append([]int(nil), frame...)
	for _, pos := range []int{3, 60, 120, 200} {
		if pos < len(corrupt) {
			corrupt[pos] ^= 1
		}
	}
	back, corrected, err := DecodeFrame(corrupt, 7)
	if err != nil {
		t.Fatalf("decode failed after scattered errors: %v", err)
	}
	if corrected == 0 || !bytes.Equal(back, payload) {
		t.Fatalf("correction failed: %q, corrected %d", back, corrected)
	}
}

func TestFrameBurstErrorSurvivesInterleaving(t *testing.T) {
	payload := []byte("burst-resilience")
	depth := 7
	frame, err := EncodeFrame(payload, depth)
	if err != nil {
		t.Fatal(err)
	}
	// A contiguous burst of `depth` errors: interleaving spreads it into
	// distinct codewords, each correctable.
	corrupt := append([]int(nil), frame...)
	start := 20
	for i := 0; i < depth; i++ {
		corrupt[start+i] ^= 1
	}
	back, corrected, err := DecodeFrame(corrupt, depth)
	if err != nil {
		t.Fatalf("burst decode failed: %v", err)
	}
	if corrected != depth || !bytes.Equal(back, payload) {
		t.Fatalf("burst correction: %q, corrected %d (want %d)", back, corrected, depth)
	}
}

func TestFrameDetectsUncorrectableCorruption(t *testing.T) {
	payload := []byte("x")
	frame, _ := EncodeFrame(payload, 2)
	rng := rand.New(rand.NewSource(1))
	corrupt := append([]int(nil), frame...)
	// Massive corruption: CRC must catch what Hamming cannot fix.
	for i := range corrupt {
		if rng.Intn(3) == 0 {
			corrupt[i] ^= 1
		}
	}
	if _, _, err := DecodeFrame(corrupt, 2); err == nil {
		t.Fatal("heavily corrupted frame decoded silently")
	}
}

func TestFrameValidation(t *testing.T) {
	if _, err := EncodeFrame(make([]byte, 256), 7); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if _, _, err := DecodeFrame([]int{1, 0, 1}, 7); err == nil {
		t.Fatal("bad frame length accepted")
	}
	if _, err := FrameBits(-1, 7); err == nil {
		t.Fatal("negative size accepted")
	}
}
