// Package ecc provides the error-detection and -correction coding the
// paper recommends for operating IChannels under system noise (§6.3):
// Hamming(7,4) single-error-correcting code plus CRC-8 framing for
// end-to-end validation of exfiltrated payloads.
package ecc

import "fmt"

// Hamming(7,4): data bits d1..d4 and parity bits p1,p2,p3 arranged in the
// classic positions 1..7 (p1 p2 d1 p3 d2 d3 d4). Corrects any single bit
// error per 7-bit codeword.

// HammingEncode expands a bit slice (length divisible by 4) into its
// Hamming(7,4) codeword stream.
func HammingEncode(bits []int) ([]int, error) {
	if len(bits)%4 != 0 {
		return nil, fmt.Errorf("ecc: data length %d not divisible by 4", len(bits))
	}
	for i, b := range bits {
		if b&^1 != 0 {
			return nil, fmt.Errorf("ecc: non-bit value %d at index %d", b, i)
		}
	}
	out := make([]int, 0, len(bits)/4*7)
	for i := 0; i < len(bits); i += 4 {
		d1, d2, d3, d4 := bits[i], bits[i+1], bits[i+2], bits[i+3]
		p1 := d1 ^ d2 ^ d4
		p2 := d1 ^ d3 ^ d4
		p3 := d2 ^ d3 ^ d4
		out = append(out, p1, p2, d1, p3, d2, d3, d4)
	}
	return out, nil
}

// HammingDecode corrects single-bit errors per codeword and returns the
// data bits along with the number of corrections applied.
func HammingDecode(code []int) (data []int, corrected int, err error) {
	if len(code)%7 != 0 {
		return nil, 0, fmt.Errorf("ecc: code length %d not divisible by 7", len(code))
	}
	data = make([]int, 0, len(code)/7*4)
	for i := 0; i < len(code); i += 7 {
		w := [8]int{} // 1-indexed positions
		for j := 0; j < 7; j++ {
			b := code[i+j]
			if b&^1 != 0 {
				return nil, 0, fmt.Errorf("ecc: non-bit value %d at index %d", b, i+j)
			}
			w[j+1] = b
		}
		s1 := w[1] ^ w[3] ^ w[5] ^ w[7]
		s2 := w[2] ^ w[3] ^ w[6] ^ w[7]
		s3 := w[4] ^ w[5] ^ w[6] ^ w[7]
		syndrome := s1 | s2<<1 | s3<<2
		if syndrome != 0 {
			w[syndrome] ^= 1
			corrected++
		}
		data = append(data, w[3], w[5], w[6], w[7])
	}
	return data, corrected, nil
}

// Interleave reorders bits with stride `depth` so that a burst of up to
// `depth` consecutive channel errors lands in distinct codewords (each
// correctable by Hamming). Interleave and Deinterleave are inverses for
// any input length.
func Interleave(bits []int, depth int) ([]int, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("ecc: interleave depth must be positive, got %d", depth)
	}
	n := len(bits)
	out := make([]int, 0, n)
	for start := 0; start < depth; start++ {
		for i := start; i < n; i += depth {
			out = append(out, bits[i])
		}
	}
	return out, nil
}

// Deinterleave inverts Interleave with the same depth.
func Deinterleave(bits []int, depth int) ([]int, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("ecc: interleave depth must be positive, got %d", depth)
	}
	n := len(bits)
	out := make([]int, n)
	k := 0
	for start := 0; start < depth; start++ {
		for i := start; i < n; i += depth {
			out[i] = bits[k]
			k++
		}
	}
	return out, nil
}
