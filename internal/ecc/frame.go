package ecc

import "fmt"

// CRC8 computes the CRC-8/ATM (polynomial 0x07) checksum of a byte slice.
func CRC8(data []byte) byte {
	var crc byte
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// BytesToBits expands bytes MSB-first into bits.
func BytesToBits(data []byte) []int {
	out := make([]int, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			out = append(out, int(b>>i)&1)
		}
	}
	return out
}

// BitsToBytes packs bits (MSB-first, length divisible by 8) into bytes.
func BitsToBytes(bits []int) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("ecc: bit length %d not divisible by 8", len(bits))
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b&^1 != 0 {
			return nil, fmt.Errorf("ecc: non-bit value %d at index %d", b, i)
		}
		out[i/8] |= byte(b) << (7 - i%8)
	}
	return out, nil
}

// EncodeFrame wraps a payload in a covert-channel frame: 1 length byte,
// payload, CRC-8 — all Hamming(7,4) encoded and interleaved. The result's
// bit length is always even (a whole number of 2-bit covert symbols).
func EncodeFrame(payload []byte, interleaveDepth int) ([]int, error) {
	if len(payload) > 255 {
		return nil, fmt.Errorf("ecc: payload %d bytes exceeds frame limit 255", len(payload))
	}
	raw := make([]byte, 0, len(payload)+2)
	raw = append(raw, byte(len(payload)))
	raw = append(raw, payload...)
	raw = append(raw, CRC8(raw))
	bits := BytesToBits(raw)
	coded, err := HammingEncode(bits)
	if err != nil {
		return nil, err
	}
	inter, err := Interleave(coded, interleaveDepth)
	if err != nil {
		return nil, err
	}
	if len(inter)%2 != 0 {
		inter = append(inter, 0) // pad to a whole covert symbol
	}
	return inter, nil
}

// FrameBits returns the encoded bit length of a payload of n bytes with
// the given interleave depth (useful for sizing receiver expectations).
func FrameBits(n, interleaveDepth int) (int, error) {
	if n < 0 || n > 255 {
		return 0, fmt.Errorf("ecc: invalid payload size %d", n)
	}
	bits := (n + 2) * 8 / 4 * 7
	if bits%2 != 0 {
		bits++
	}
	return bits, nil
}

// DecodeFrame reverses EncodeFrame: deinterleave, Hamming-correct, unpack,
// verify length and CRC. It returns the payload, the number of corrected
// bit errors, and an error if the frame is unrecoverable.
func DecodeFrame(bits []int, interleaveDepth int) (payload []byte, corrected int, err error) {
	coded := bits
	if len(coded)%7 != 0 {
		// Remove the symbol-alignment pad.
		if len(coded)%7 == 1 {
			coded = coded[:len(coded)-1]
		} else {
			return nil, 0, fmt.Errorf("ecc: frame length %d is not a codeword multiple", len(bits))
		}
	}
	de, err := Deinterleave(coded, interleaveDepth)
	if err != nil {
		return nil, 0, err
	}
	data, corrected, err := HammingDecode(de)
	if err != nil {
		return nil, corrected, err
	}
	raw, err := BitsToBytes(data)
	if err != nil {
		return nil, corrected, err
	}
	if len(raw) < 2 {
		return nil, corrected, fmt.Errorf("ecc: frame too short (%d bytes)", len(raw))
	}
	n := int(raw[0])
	if len(raw) != n+2 {
		return nil, corrected, fmt.Errorf("ecc: frame length byte %d inconsistent with %d raw bytes", n, len(raw))
	}
	if CRC8(raw[:n+1]) != raw[n+1] {
		return nil, corrected, fmt.Errorf("ecc: CRC mismatch (residual channel errors)")
	}
	return raw[1 : n+1], corrected, nil
}
