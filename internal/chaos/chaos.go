// Package chaos is a fault-injection HTTP proxy for conformance
// testing the remote-store tier: it forwards requests to a real
// upstream while injecting, deterministically per seed, exactly the
// failures a fleet sees in production — latency, flaked requests, 5xx
// bursts, truncated responses, bit-flipped bodies, and full partitions
// with a scheduled heal.
//
// The proxy's contract mirrors the repo's determinism contract from
// the other side: whatever faults it injects, a sweep routed through
// it must still exit 0 with byte-identical output, because every
// client defends itself (envelope verification, retries, local
// recompute). The chaos conformance suite at the repo root drives the
// paper's table sweeps through this proxy and asserts exactly that.
package chaos

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"
)

// maxProxyBody bounds one buffered upstream response.
const maxProxyBody = 256 << 20

// Options configures a Proxy. All fault modes are off at their zero
// values; a zero-value Options is a faithful pass-through proxy.
type Options struct {
	// Target is the upstream base URL (required).
	Target string
	// Seed drives the fault RNG; a fixed seed replays the same fault
	// sequence for the same request order.
	Seed int64
	// Latency delays every forwarded request.
	Latency time.Duration
	// FlakeRate in [0,1] is the probability a request fails at the
	// transport level (the connection is severed without a response) —
	// the retryable failure class.
	FlakeRate float64
	// Burst5xx, when positive, makes the proxy answer 503 for that many
	// consecutive requests every Burst5xxPeriod requests — the
	// server-having-a-bad-time failure class (also retryable).
	Burst5xx       int
	Burst5xxPeriod int
	// TruncateRate in [0,1] is the probability a 200 response body is
	// cut short mid-stream — the torn-read failure class (caught by
	// envelope verification).
	TruncateRate float64
	// CorruptRate in [0,1] is the probability one byte of a 200
	// response body is flipped — the byzantine failure class (also
	// caught by envelope verification, and must never be cached).
	CorruptRate float64
	// Client overrides the forwarding client (nil gets a default).
	Client *http.Client
}

// Stats counts the proxy's activity, by fault injected.
type Stats struct {
	Requests    int64 `json:"requests"`
	Forwarded   int64 `json:"forwarded"`
	Flaked      int64 `json:"flaked"`
	Bursted     int64 `json:"bursted"`
	Truncated   int64 `json:"truncated"`
	Corrupted   int64 `json:"corrupted"`
	Partitioned int64 `json:"partitioned"`
}

// Proxy is the fault-injecting reverse proxy. It implements
// http.Handler; Start wraps it in an httptest server for in-test use.
type Proxy struct {
	opts   Options
	client *http.Client

	mu          sync.Mutex
	rng         *rand.Rand
	n           int64 // request ordinal, drives 5xx bursts
	partitioned bool
	healAt      time.Time
	healTimer   *time.Timer
	stats       Stats
}

// New builds a proxy forwarding to opts.Target.
func New(opts Options) (*Proxy, error) {
	if opts.Target == "" {
		return nil, fmt.Errorf("chaos: need a target base URL")
	}
	if opts.Burst5xx > 0 && opts.Burst5xxPeriod <= opts.Burst5xx {
		return nil, fmt.Errorf("chaos: burst period must exceed burst length")
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Proxy{
		opts:   opts,
		client: client,
		rng:    rand.New(rand.NewSource(opts.Seed)),
	}, nil
}

// Start serves the proxy on a loopback listener and returns its base
// URL and a shutdown func.
func (p *Proxy) Start() (url string, stop func()) {
	srv := httptest.NewServer(p)
	return srv.URL, srv.Close
}

// Partition severs the proxy for d (every request fails at the
// transport level), then heals automatically. A zero d partitions
// until Heal is called.
func (p *Proxy) Partition(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partitioned = true
	if p.healTimer != nil {
		p.healTimer.Stop()
		p.healTimer = nil
	}
	if d > 0 {
		p.healTimer = time.AfterFunc(d, p.Heal)
	}
}

// Heal ends a partition.
func (p *Proxy) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partitioned = false
	if p.healTimer != nil {
		p.healTimer.Stop()
		p.healTimer = nil
	}
}

// Stats snapshots the fault counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// decide rolls this request's faults under one lock acquisition, so
// the fault sequence is a deterministic function of (seed, request
// order).
type verdict struct {
	partitioned bool
	flake       bool
	burst       bool
	truncate    bool
	corrupt     bool
	corruptAt   int64 // offset basis for the flipped byte
}

func (p *Proxy) decide() verdict {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Requests++
	p.n++
	v := verdict{}
	if p.partitioned {
		v.partitioned = true
		p.stats.Partitioned++
		return v
	}
	if p.opts.Burst5xx > 0 && (p.n-1)%int64(p.opts.Burst5xxPeriod) < int64(p.opts.Burst5xx) {
		v.burst = true
		p.stats.Bursted++
		return v
	}
	if p.opts.FlakeRate > 0 && p.rng.Float64() < p.opts.FlakeRate {
		v.flake = true
		p.stats.Flaked++
		return v
	}
	if p.opts.TruncateRate > 0 && p.rng.Float64() < p.opts.TruncateRate {
		v.truncate = true
	}
	if p.opts.CorruptRate > 0 && p.rng.Float64() < p.opts.CorruptRate {
		v.corrupt = true
		v.corruptAt = p.rng.Int63()
	}
	return v
}

// sever kills the client connection without an HTTP response, so the
// client sees a transport error (exactly what a dead host looks like).
// Falls back to 502 when the ResponseWriter cannot hijack.
func sever(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	http.Error(w, "chaos: severed", http.StatusBadGateway)
}

// ServeHTTP forwards one request with this request's faults applied.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	v := p.decide()
	if p.opts.Latency > 0 {
		time.Sleep(p.opts.Latency)
	}
	switch {
	case v.partitioned, v.flake:
		sever(w)
		return
	case v.burst:
		http.Error(w, "chaos: burst", http.StatusServiceUnavailable)
		return
	}

	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.opts.Target+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, "chaos: bad upstream request", http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		// The upstream itself failed; that is its chaos, not ours.
		sever(w)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		sever(w)
		return
	}

	if resp.StatusCode == http.StatusOK && len(body) > 0 {
		if v.truncate {
			body = body[:len(body)/2]
			p.bump(func(s *Stats) { s.Truncated++ })
		}
		if v.corrupt && len(body) > 0 {
			body = append([]byte(nil), body...)
			body[v.corruptAt%int64(len(body))] ^= 0x01
			p.bump(func(s *Stats) { s.Corrupted++ })
		}
	}

	h := w.Header()
	for k, vals := range resp.Header {
		if k == "Content-Length" {
			continue // the body may have changed size
		}
		h[k] = vals
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
	p.bump(func(s *Stats) { s.Forwarded++ })
}

func (p *Proxy) bump(f func(*Stats)) {
	p.mu.Lock()
	f(&p.stats)
	p.mu.Unlock()
}
