package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// upstream serves a fixed body for every request.
func upstream(t *testing.T, body string) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv.URL
}

func get(t *testing.T, url string) (int, string, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, "", err
	}
	return resp.StatusCode, string(data), nil
}

func TestPassThrough(t *testing.T) {
	p, err := New(Options{Target: upstream(t, "hello")})
	if err != nil {
		t.Fatal(err)
	}
	url, stop := p.Start()
	defer stop()
	code, body, err := get(t, url+"/x")
	if err != nil || code != 200 || body != "hello" {
		t.Fatalf("pass-through: code=%d body=%q err=%v", code, body, err)
	}
	if s := p.Stats(); s.Forwarded != 1 || s.Requests != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestFlakeSeversConnections(t *testing.T) {
	p, err := New(Options{Target: upstream(t, "ok"), FlakeRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	url, stop := p.Start()
	defer stop()
	if _, _, err := get(t, url+"/x"); err == nil {
		t.Fatal("flaked request did not fail at the transport level")
	}
	if s := p.Stats(); s.Flaked != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestBurst5xx(t *testing.T) {
	// First 2 of every 5 requests answer 503.
	p, err := New(Options{Target: upstream(t, "ok"), Burst5xx: 2, Burst5xxPeriod: 5})
	if err != nil {
		t.Fatal(err)
	}
	url, stop := p.Start()
	defer stop()
	var codes []int
	for i := 0; i < 5; i++ {
		code, _, err := get(t, url+"/x")
		if err != nil {
			t.Fatal(err)
		}
		codes = append(codes, code)
	}
	want := []int{503, 503, 200, 200, 200}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("burst pattern: got %v, want %v", codes, want)
		}
	}
}

func TestCorruptFlipsOneByte(t *testing.T) {
	const body = "abcdefgh"
	p, err := New(Options{Target: upstream(t, body), CorruptRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	url, stop := p.Start()
	defer stop()
	code, got, err := get(t, url+"/x")
	if err != nil || code != 200 {
		t.Fatalf("corrupt get: code=%d err=%v", code, err)
	}
	if got == body || len(got) != len(body) {
		t.Fatalf("corrupted body %q vs %q: want same length, one byte flipped", got, body)
	}
	diff := 0
	for i := range body {
		if got[i] != body[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
}

func TestTruncateHalvesBody(t *testing.T) {
	const body = "0123456789"
	p, err := New(Options{Target: upstream(t, body), TruncateRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	url, stop := p.Start()
	defer stop()
	_, got, err := get(t, url+"/x")
	if err != nil {
		t.Fatal(err)
	}
	if got != body[:len(body)/2] {
		t.Fatalf("truncated body %q, want %q", got, body[:len(body)/2])
	}
}

func TestPartitionAndHeal(t *testing.T) {
	p, err := New(Options{Target: upstream(t, "ok")})
	if err != nil {
		t.Fatal(err)
	}
	url, stop := p.Start()
	defer stop()
	p.Partition(0)
	if _, _, err := get(t, url+"/x"); err == nil {
		t.Fatal("partitioned request succeeded")
	}
	p.Heal()
	if code, body, err := get(t, url+"/x"); err != nil || code != 200 || body != "ok" {
		t.Fatalf("healed: code=%d body=%q err=%v", code, body, err)
	}
	// Scheduled heal: partition for a moment, wait it out.
	p.Partition(50 * time.Millisecond)
	if _, _, err := get(t, url+"/x"); err == nil {
		t.Fatal("scheduled partition not in effect")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := get(t, url+"/x"); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partition never healed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil || !strings.Contains(err.Error(), "target") {
		t.Fatalf("missing target accepted: %v", err)
	}
	if _, err := New(Options{Target: "http://x", Burst5xx: 3, Burst5xxPeriod: 3}); err == nil {
		t.Fatal("degenerate burst period accepted")
	}
}
