package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"ichannels/internal/scenario"
	"ichannels/internal/store"
)

// countingStoreRun is a cheap deterministic executor that counts
// invocations, for asserting what the store saved.
func countingStoreRun(calls *atomic.Int64) ScenarioRunFunc {
	return func(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
		calls.Add(1)
		return &scenario.Result{
			Role: s.Role, Processor: s.Processor, Kind: s.Kind,
			Hash: s.Hash(), Seed: seed, Bits: s.Bits,
			BER: 0.125, ThroughputBPS: float64(100 * s.Bits),
		}, nil
	}
}

// storeGrid yields n distinct valid channel scenarios.
func storeGrid(n int) func() (scenario.Scenario, bool) {
	i := 0
	return func() (scenario.Scenario, bool) {
		if i >= n {
			return scenario.Scenario{}, false
		}
		s := scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 2 + 2*i}
		i++
		return s, true
	}
}

// collectBytes marshals every emitted result in stream order.
func collectBytes(t *testing.T, opts StreamOptions) (*StreamStats, [][]byte) {
	t.Helper()
	var lines [][]byte
	opts.Emit = func(o ScenarioOutcome) error {
		if o.Err != nil {
			t.Fatalf("outcome error: %v", o.Err)
		}
		b, err := json.Marshal(o.Result)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, b)
		return nil
	}
	stats, err := StreamScenarios(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return stats, lines
}

// storeLayouts names each directory layout with its opener and a way to
// corrupt exactly one stored entry on disk, so the engine-level store
// contract runs identically over per-file and packed corpora.
var storeLayouts = []struct {
	name       string
	open       func(dir string) (store.Store, error)
	corruptOne func(t *testing.T, dir string)
}{
	{
		name: "perfile",
		open: func(dir string) (store.Store, error) { return store.Open(dir) },
		corruptOne: func(t *testing.T, dir string) {
			t.Helper()
			var victim string
			filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
				if err == nil && !d.IsDir() && victim == "" && strings.HasSuffix(path, ".json") {
					victim = path
				}
				return nil
			})
			if victim == "" {
				t.Fatal("no entry file found to corrupt")
			}
			if err := os.WriteFile(victim, []byte("{trunc"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
	},
	{
		name: "packed",
		open: func(dir string) (store.Store, error) { return store.OpenPacked(dir) },
		corruptOne: func(t *testing.T, dir string) {
			t.Helper()
			seg := filepath.Join(dir, store.SegmentsDirName, "00000001.seg")
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := store.ScanSegment(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(sc.Entries) == 0 {
				t.Fatal("no segment records to corrupt")
			}
			e := sc.Entries[0]
			f, err := os.OpenFile(seg, os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteAt([]byte{0xff}, e.Offset+e.Length/2); err != nil {
				t.Fatal(err)
			}
		},
	},
}

// TestStreamStoreFetchOrCompute: a cold store computes and persists
// every scenario; a warm store serves all of them without a single
// compute, with byte-identical results; a corrupted entry degrades to
// a recompute of just that cell. Both directory layouts must satisfy
// the contract through the identical store.Store surface.
func TestStreamStoreFetchOrCompute(t *testing.T) {
	for _, layout := range storeLayouts {
		t.Run(layout.name, func(t *testing.T) {
			const n = 6
			dir := t.TempDir()
			st, err := layout.open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer store.CloseStore(st)
			var calls atomic.Int64

			stats, cold := collectBytes(t, StreamOptions{
				Next: storeGrid(n), BaseSeed: 9, Parallel: 3,
				Run: countingStoreRun(&calls), Store: st,
			})
			if calls.Load() != n || stats.Cached != 0 || stats.StoreErrors != 0 {
				t.Fatalf("cold run: %d computes, %d cached, %d store errors; want %d/0/0",
					calls.Load(), stats.Cached, stats.StoreErrors, n)
			}
			if entries, err := st.(store.DirStore).List(); err != nil || len(entries) != n {
				t.Fatalf("store holds %d entries (%v), want %d", len(entries), err, n)
			}

			calls.Store(0)
			stats, warm := collectBytes(t, StreamOptions{
				Next: storeGrid(n), BaseSeed: 9, Parallel: 3,
				Run: countingStoreRun(&calls), Store: st,
			})
			if calls.Load() != 0 || stats.Cached != n {
				t.Fatalf("warm run: %d computes, %d cached; want 0/%d", calls.Load(), stats.Cached, n)
			}
			for i := range cold {
				if !bytes.Equal(cold[i], warm[i]) {
					t.Fatalf("result %d differs between cold and warm runs:\n%s\n%s", i, cold[i], warm[i])
				}
			}

			// Corrupt one entry: only that cell recomputes, and the stream
			// reports the degraded store operation without failing anything.
			layout.corruptOne(t, dir)
			calls.Store(0)
			stats, repaired := collectBytes(t, StreamOptions{
				Next: storeGrid(n), BaseSeed: 9, Parallel: 3,
				Run: countingStoreRun(&calls), Store: st,
			})
			if calls.Load() != 1 || stats.Cached != n-1 || stats.StoreErrors != 1 {
				t.Fatalf("corrupt-entry run: %d computes, %d cached, %d store errors; want 1/%d/1",
					calls.Load(), stats.Cached, stats.StoreErrors, n-1)
			}
			for i := range cold {
				if !bytes.Equal(cold[i], repaired[i]) {
					t.Fatalf("result %d differs after repair", i)
				}
			}
		})
	}
}

// TestRunScenariosWithStore: the collect-all wrapper threads the store
// through, and outcomes carry the Cached marker into the NDJSON wire
// form.
func TestRunScenariosWithStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := []scenario.Scenario{
		{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 4},
		{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 6},
	}
	var calls atomic.Int64
	opts := ScenarioOptions{Scenarios: specs, BaseSeed: 2, Run: countingStoreRun(&calls)}.WithStore(st)
	if _, err := RunScenarios(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	calls.Store(0)
	batch, err := RunScenarios(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatalf("warm batch computed %d scenarios, want 0", calls.Load())
	}
	for i, r := range batch.Results {
		if !r.Cached {
			t.Errorf("results[%d] not marked cached", i)
		}
	}
	var buf bytes.Buffer
	if err := batch.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), `"cached":true`); got != len(specs) {
		t.Errorf("NDJSON carries %d cached markers, want %d:\n%s", got, len(specs), buf.String())
	}
}
