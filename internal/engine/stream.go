package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ichannels/internal/scenario"
	"ichannels/internal/soc"
	"ichannels/internal/store"
)

// DefaultStreamWindowFactor sizes the reorder window when
// StreamOptions.Window is zero: workers × this factor slots may be
// in flight or awaiting emission at once.
const DefaultStreamWindowFactor = 4

// StreamOptions configures a streaming scenario run. Unlike
// ScenarioOptions there is no materialized batch: scenarios are pulled
// one at a time from Next and outcomes are pushed in stream order to
// Emit, holding at most O(Parallel + Window) outcomes in memory — the
// execution core sweeps and any other unbounded producer ride on.
type StreamOptions struct {
	// Next yields the stream's scenarios in order, returning ok=false
	// when exhausted. It is called serially from one goroutine.
	Next func() (scenario.Scenario, bool)
	// BaseSeed derives per-scenario seeds for specs that pin none,
	// exactly like ScenarioOptions.BaseSeed.
	BaseSeed int64
	// Parallel is the worker-pool size. Values below 1 mean serial.
	Parallel int
	// Window bounds how many outcomes may be in flight or awaiting
	// ordered emission (the reorder buffer). Zero means
	// DefaultStreamWindowFactor × workers; values below the worker
	// count are raised to it (a smaller window would idle workers).
	Window int
	// Run overrides the scenario executor (nil means scenario.Run).
	Run ScenarioRunFunc
	// Machines, when set, is the machine pool the default executor
	// recycles simulated SoCs through (scenario.Runner.Machines). It is
	// ignored when Run or Runner overrides the executor — those bring
	// their own compute path. Pool reuse changes wall-clock only; the
	// emitted bytes are identical with or without it.
	Machines *soc.Pool
	// Runner, when set, takes precedence over Run: it receives each
	// cell's precomputed content hash alongside the spec and seed — the
	// delegation seam the distributed tier plugs into (a coordinator
	// dispatches the cell to a remote worker and verifies the returned
	// envelope against that hash). The store fetch-or-compute wrapping
	// still applies: a stored cell is never delegated, and a delegated
	// success is persisted like a local one.
	Runner CellRunner
	// Store, when set, is consulted before computing each scenario and
	// persisted to after: a stored (hash, seed) result is emitted with
	// Cached=true instead of recomputing, and every freshly computed
	// success is written back. Because stored results are byte-identical
	// to recomputed ones (the determinism contract), the emitted bytes
	// do not depend on which cells hit — only wall-clock does. An
	// unreadable entry counts as a miss (StreamStats.StoreErrors) and
	// the cell recomputes; store errors never fail a scenario.
	Store store.Store
	// Emit receives each outcome in stream order, from the caller's
	// goroutine. A non-nil error stops the stream (in-flight work is
	// drained, nothing new starts) and is returned by StreamScenarios.
	Emit func(ScenarioOutcome) error
}

// CellRunner executes one scenario cell identified by its content hash
// and effective seed — the compute seam StreamScenarios delegates
// through when StreamOptions.Runner is set. The hash is the same value
// the store keys on and the wire frames carry, computed once per cell
// by the stream dispatcher. Implementations must honor the determinism
// contract: for a fixed (spec, seed) the returned result's JSON
// encoding is byte-identical to scenario.Run's, no matter where or how
// the cell was computed. The in-process default wraps scenario.Runner;
// the distributed coordinator (internal/dist) is the remote one.
type CellRunner interface {
	RunCell(ctx context.Context, s scenario.Scenario, hash string, seed int64) (*scenario.Result, error)
}

// RemoteCellStats is optionally implemented by a CellRunner that
// delegates cells to remote workers (the dist coordinator).
// StreamScenarios snapshots the counters into StreamStats after the
// stream drains, so corruption and redispatch surface in the same
// place cache and store activity does. Counters are cumulative over
// the runner's lifetime — a multi-pass refined sweep reuses one
// runner, so the final pass's snapshot is the run's total.
type RemoteCellStats interface {
	RemoteCellStats() (dispatched, redispatched, corrupt, localFallback int)
}

// StreamStats summarizes a completed (or stopped) stream.
type StreamStats struct {
	// Emitted counts outcomes handed to Emit.
	Emitted int
	// Failed counts emitted outcomes whose runner returned an error.
	Failed int
	// Cached counts emitted outcomes served from the result store
	// instead of computed.
	Cached int
	// StoreErrors counts store operations (get or put) that failed;
	// each was degraded to a miss or a skipped write, never a failed
	// scenario. StoreTransient and StorePermanent split the count:
	// transient failures (network blips, timeouts, 5xx, an open
	// breaker) point at infrastructure, permanent ones (corrupt
	// envelopes) at a damaged or byzantine store.
	StoreErrors    int
	StoreTransient int
	StorePermanent int
	// StoreTier snapshots the store's remote-path counters (retry
	// attempts, breaker state, replica cache activity) after the stream
	// drains, when the store exposes them. Nil for purely local stores.
	StoreTier *store.TierStats
	// RemoteDispatched, RemoteRedispatched, RemoteCorrupt and
	// RemoteLocal snapshot a delegating Runner's counters (see
	// RemoteCellStats): cells served by a worker, dispatch attempts
	// retried on another worker, worker results rejected by envelope
	// verification (byzantine or stale workers), and cells that
	// degraded to local compute. All zero for in-process runs.
	RemoteDispatched   int
	RemoteRedispatched int
	RemoteCorrupt      int
	RemoteLocal        int
	// MachinesConstructed and MachinesReused snapshot the machine pool's
	// counters (StreamOptions.Machines) after the stream drains. Like the
	// Remote* counters they are cumulative over the pool's lifetime — a
	// multi-pass sweep sharing one pool sees the run's total in its last
	// pass's snapshot. Zero when no pool is set.
	MachinesConstructed int
	MachinesReused      int
	// Parallel is the effective worker count.
	Parallel int
	// Elapsed is the stream wall-clock time.
	Elapsed time.Duration
}

// streamSlot carries one scenario through the pipeline: the dispatcher
// fills Scenario/Seed, a worker fills Result/Err/Elapsed and closes
// ready, and the emitter (which receives slots in dispatch order
// through a bounded channel) waits on ready before handing the outcome
// to Emit. The bounded channel is both the ordering and the memory
// bound: at most Window slots exist between dispatch and emission.
type streamSlot struct {
	outcome ScenarioOutcome
	ready   chan struct{}
}

// StreamScenarios executes an unbounded, lazily produced sequence of
// scenarios on a worker pool and emits outcomes in order with bounded
// memory — the streaming core RunScenarios (collect-all) and the sweep
// subsystem (grids bigger than memory) are built on.
//
// Determinism: outcomes are emitted in stream order and every spec that
// pins no seed receives DeriveScenarioSeed(BaseSeed, spec), so for a
// fixed BaseSeed the emitted result bytes are identical at any
// Parallel/Window setting; only wall-clock differs.
//
// An invalid spec stops the stream with an error identifying its
// position (scenarios already emitted stay emitted); individual run
// failures are per-outcome and do not stop the stream. Cancelling the
// context stops the stream: nothing more is pulled from Next (so an
// unbounded source cannot spin forever), in-flight outcomes drain
// through Emit with their results or context errors, and the context's
// error is returned. RunScenarios converts that truncation back into
// its per-outcome-error batch contract.
func StreamScenarios(ctx context.Context, opts StreamOptions) (*StreamStats, error) {
	if opts.Next == nil {
		return nil, fmt.Errorf("engine: stream needs a Next source")
	}
	runFn := opts.Run
	if runFn == nil {
		runner := scenario.Runner{Machines: opts.Machines}
		runFn = func(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
			return runner.RunSeeded(ctx, s, seed)
		}
	}
	// The hash-aware compute seam: a delegating Runner wins, otherwise
	// the ScenarioRunFunc path (which predates the hash plumbing and
	// derives nothing from it).
	cellRun := func(ctx context.Context, s scenario.Scenario, hash string, seed int64) (*scenario.Result, error) {
		return runFn(ctx, s, seed)
	}
	if opts.Runner != nil {
		cellRun = opts.Runner.RunCell
	}
	workers := opts.Parallel
	if workers < 1 {
		workers = 1
	}
	window := opts.Window
	if window == 0 {
		window = DefaultStreamWindowFactor * workers
	}
	if window < workers {
		window = workers
	}

	var (
		pending = make(chan *streamSlot, window) // dispatch order, bounds memory
		jobs    = make(chan *streamSlot)         // unordered work feed
		stop    = make(chan struct{})            // closed on emit error
		wg      sync.WaitGroup
		srcErr  error // invalid-spec or cancellation error, owned by the dispatcher
	)

	var storeErrs storeErrCounters
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sl := range jobs {
				o := &sl.outcome
				if err := ctx.Err(); err != nil {
					o.Err = err
				} else {
					t0 := time.Now()
					runSlot(ctx, cellRun, opts.Store, o, &storeErrs)
					o.Elapsed = time.Since(t0)
				}
				close(sl.ready)
			}
		}()
	}

	go func() {
		defer close(pending)
		defer close(jobs)
		for i := 0; ; i++ {
			// Stop pulling on cancellation — the source may be
			// unbounded, and even a finite one should not be drained
			// cell by cell after a Ctrl-C.
			if err := ctx.Err(); err != nil {
				srcErr = err
				return
			}
			s, ok := opts.Next()
			if !ok {
				return
			}
			n := s.Normalized()
			if err := n.Validate(); err != nil {
				srcErr = fmt.Errorf("engine: stream scenario %d: %w", i, err)
				return
			}
			sl := &streamSlot{ready: make(chan struct{})}
			sl.outcome.Scenario = n
			sl.outcome.Hash = n.Hash() // once per slot; seed, store, and framing reuse it
			sl.outcome.Seed = n.Seed
			if sl.outcome.Seed == 0 {
				sl.outcome.Seed = deriveSeedFromHash(opts.BaseSeed, sl.outcome.Hash)
			}
			// The pending send blocks once Window slots await emission —
			// that back-pressure is the memory bound.
			select {
			case pending <- sl:
			case <-stop:
				close(sl.ready) // never dispatched; unblock nobody, but keep the invariant
				return
			}
			select {
			case jobs <- sl:
			case <-stop:
				return
			}
		}
	}()

	stats := &StreamStats{Parallel: workers}
	var emitErr error
	for sl := range pending {
		if emitErr != nil {
			continue // drain
		}
		<-sl.ready
		stats.Emitted++
		if sl.outcome.Err != nil {
			stats.Failed++
		}
		if sl.outcome.Cached {
			stats.Cached++
		}
		if opts.Emit != nil {
			if err := opts.Emit(sl.outcome); err != nil {
				emitErr = err
				close(stop)
			}
		}
	}
	wg.Wait()
	stats.StoreTransient = int(storeErrs.transient.Load())
	stats.StorePermanent = int(storeErrs.permanent.Load())
	stats.StoreErrors = stats.StoreTransient + stats.StorePermanent
	if ts, ok := opts.Store.(store.TierStatter); ok {
		if t := ts.TierStats(); t.Remote != nil || t.Replica != nil {
			stats.StoreTier = &t
		}
	}
	if rs, ok := opts.Runner.(RemoteCellStats); ok {
		stats.RemoteDispatched, stats.RemoteRedispatched, stats.RemoteCorrupt, stats.RemoteLocal = rs.RemoteCellStats()
	}
	if opts.Machines != nil {
		ps := opts.Machines.Stats()
		stats.MachinesConstructed, stats.MachinesReused = int(ps.Constructed), int(ps.Reused)
	}
	stats.Elapsed = time.Since(start)
	if emitErr != nil {
		return stats, emitErr
	}
	if srcErr != nil {
		return stats, srcErr
	}
	return stats, nil
}

// runSlot fills one outcome: fetch from the store when one is
// configured and the entry is intact, compute otherwise, and persist
// fresh successes back. Only successful results are stored — errors are
// deterministic too, but pinning them to disk would make a transient
// environmental failure (out of memory, a panic from a since-fixed bug)
// permanent.
func runSlot(ctx context.Context, run cellRunFunc, st store.Store, o *ScenarioOutcome, storeErrs *storeErrCounters) {
	var key store.Key
	if st != nil {
		key = store.Key{Hash: o.Hash, Seed: o.Seed}
		res, ok, err := store.GetContext(ctx, st, key)
		if err != nil {
			storeErrs.count(err) // unreadable entry: recompute it
		} else if ok {
			o.Result, o.Cached = res, true
			return
		}
	}
	o.Result, o.Err = runCellIsolated(ctx, run, o.Scenario, o.Hash, o.Seed)
	if st != nil && o.Err == nil {
		if err := store.PutContext(ctx, st, key, o.Result); err != nil {
			storeErrs.count(err)
		}
	}
}

// storeErrCounters splits degraded store operations by class: a
// transient failure is the network's fault, a permanent one is the
// bytes' fault. Both degrade identically (recompute or skip the
// write); only the diagnosis differs.
type storeErrCounters struct {
	transient atomic.Int64
	permanent atomic.Int64
}

func (c *storeErrCounters) count(err error) {
	if store.IsPermanentError(err) {
		c.permanent.Add(1)
	} else {
		c.transient.Add(1)
	}
}

// cellRunFunc is the hash-aware internal compute signature runSlot
// executes through — CellRunner.RunCell's shape, whatever fills it.
type cellRunFunc func(ctx context.Context, s scenario.Scenario, hash string, seed int64) (*scenario.Result, error)

// runCellIsolated converts a runner panic into an error so one broken
// cell (or a panicking delegation layer) cannot take down a stream.
func runCellIsolated(ctx context.Context, run cellRunFunc, s scenario.Scenario, hash string, seed int64) (res *scenario.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("engine: scenario %s panicked: %v", hash, p)
		}
	}()
	return run(ctx, s, hash, seed)
}
