package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ichannels/internal/exp"
)

// TestParallelMatchesSerial is the engine's core guarantee: for a fixed
// base seed, a parallel batch over every registered experiment produces
// reports byte-identical to the serial batch, in both renderings.
func TestParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	serial, err := Run(ctx, Options{BaseSeed: 1, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(ctx, Options{BaseSeed: 1, Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Results) != len(exp.IDs()) || len(par.Results) != len(serial.Results) {
		t.Fatalf("result counts: serial %d, parallel %d, registry %d",
			len(serial.Results), len(par.Results), len(exp.IDs()))
	}
	for i := range serial.Results {
		s, p := serial.Results[i], par.Results[i]
		if s.ID != p.ID || s.Seed != p.Seed {
			t.Fatalf("result %d ordering diverged: %s/%d vs %s/%d", i, s.ID, s.Seed, p.ID, p.Seed)
		}
		if s.Err != nil || p.Err != nil {
			t.Fatalf("%s failed: serial %v, parallel %v", s.ID, s.Err, p.Err)
		}
		if s.Report.String() != p.Report.String() {
			t.Errorf("%s: text reports differ between serial and parallel", s.ID)
		}
		sj, err := json.Marshal(s.Report)
		if err != nil {
			t.Fatalf("%s: marshal serial: %v", s.ID, err)
		}
		pj, err := json.Marshal(p.Report)
		if err != nil {
			t.Fatalf("%s: marshal parallel: %v", s.ID, err)
		}
		if !bytes.Equal(sj, pj) {
			t.Errorf("%s: JSON reports differ between serial and parallel", s.ID)
		}
	}
	// The full deterministic text stream must match byte for byte too.
	var st, pt bytes.Buffer
	if err := serial.WriteText(&st); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteText(&pt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st.Bytes(), pt.Bytes()) {
		t.Error("WriteText streams differ between serial and parallel")
	}
}

// fakeRun returns a RunFunc that sleeps for d and records the peak
// number of concurrently running invocations.
func fakeRun(d time.Duration, cur, peak *int64) RunFunc {
	return func(id string, seed int64) (*exp.Report, error) {
		n := atomic.AddInt64(cur, 1)
		for {
			old := atomic.LoadInt64(peak)
			if n <= old || atomic.CompareAndSwapInt64(peak, old, n) {
				break
			}
		}
		time.Sleep(d)
		atomic.AddInt64(cur, -1)
		rep := exp.NewReport(id, "fake")
		rep.Metric("seed", float64(seed))
		return rep, nil
	}
}

// TestParallelIsFaster checks the pool actually overlaps work: four
// 60 ms jobs on four workers must beat the serial run by a wide margin
// and must have run concurrently.
func TestParallelIsFaster(t *testing.T) {
	ids := []string{"a", "b", "c", "d"}
	var cur, peak int64
	serial, err := Run(context.Background(), Options{IDs: ids, Parallel: 1, Run: fakeRun(60*time.Millisecond, &cur, &peak)})
	if err != nil {
		t.Fatal(err)
	}
	if peak != 1 {
		t.Fatalf("serial run overlapped: peak concurrency %d", peak)
	}
	peak = 0
	par, err := Run(context.Background(), Options{IDs: ids, Parallel: 4, Run: fakeRun(60*time.Millisecond, &cur, &peak)})
	if err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Errorf("parallel run never overlapped: peak concurrency %d", peak)
	}
	if par.Elapsed >= serial.Elapsed {
		t.Errorf("parallel batch (%v) not faster than serial (%v)", par.Elapsed, serial.Elapsed)
	}
}

// TestCancellation: cancelling the context abandons queued experiments
// with the context's error while letting running ones finish.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	run := func(id string, seed int64) (*exp.Report, error) {
		once.Do(cancel) // first job cancels the rest
		return exp.NewReport(id, "t"), nil
	}
	ids := []string{"a", "b", "c", "d", "e", "f"}
	b, err := Run(ctx, Options{IDs: ids, Parallel: 1, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if b.Results[0].Err != nil {
		t.Fatalf("first job must complete, got %v", b.Results[0].Err)
	}
	cancelled := 0
	for _, r := range b.Results[1:] {
		if r.Err == context.Canceled {
			cancelled++
		}
	}
	if cancelled != len(ids)-1 {
		t.Errorf("%d of %d queued jobs cancelled", cancelled, len(ids)-1)
	}
	if len(b.Failed()) != cancelled {
		t.Errorf("Failed() = %d, want %d", len(b.Failed()), cancelled)
	}
}

// TestPanicIsolation: a panicking runner becomes an error on its result,
// not a crashed batch.
func TestPanicIsolation(t *testing.T) {
	run := func(id string, seed int64) (*exp.Report, error) {
		if id == "boom" {
			panic("kaboom")
		}
		return exp.NewReport(id, "t"), nil
	}
	b, err := Run(context.Background(), Options{IDs: []string{"ok", "boom", "ok2"}, Parallel: 2, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	if b.Results[0].Err != nil || b.Results[2].Err != nil {
		t.Error("healthy experiments affected by the panicking one")
	}
	if b.Results[1].Err == nil || !strings.Contains(b.Results[1].Err.Error(), "panicked") {
		t.Errorf("panic not converted to error: %v", b.Results[1].Err)
	}
}

func TestUnknownIDRejectedUpfront(t *testing.T) {
	if _, err := Run(context.Background(), Options{IDs: []string{"nope"}}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, "fig6a") != DeriveSeed(1, "fig6a") {
		t.Error("DeriveSeed not stable")
	}
	if DeriveSeed(1, "fig6a") == DeriveSeed(1, "fig6b") {
		t.Error("distinct experiments must get distinct seeds")
	}
	if DeriveSeed(1, "fig6a") == DeriveSeed(2, "fig6a") {
		t.Error("distinct base seeds must derive distinct seeds")
	}
	// The derivation is a documented contract (recorded batch baselines
	// depend on it): pin one value so accidental changes to the mixing
	// fail loudly instead of silently moving every batch-mode report.
	if got := DeriveSeed(1, "fig6a"); got != 3590564834515440597 {
		t.Errorf("DeriveSeed(1, fig6a) = %d, want 3590564834515440597 (derivation changed!)", got)
	}
	seen := map[int64]string{}
	for _, id := range exp.IDs() {
		s := DeriveSeed(1, id)
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision between %s and %s", prev, id)
		}
		seen[s] = id
	}
}

func TestWriteTextSkipsFailures(t *testing.T) {
	run := func(id string, seed int64) (*exp.Report, error) {
		if id == "bad" {
			return nil, context.DeadlineExceeded
		}
		rep := exp.NewReport(id, "t")
		rep.Table("x", "h").AddRow("v")
		return rep, nil
	}
	b, err := Run(context.Background(), Options{IDs: []string{"bad", "ok1", "ok2"}, Parallel: 1, Run: run})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.HasPrefix(out, "\n") {
		t.Error("WriteText starts with a blank line when the first result failed")
	}
	if !strings.Contains(out, "ok1") || !strings.Contains(out, "ok2") {
		t.Error("successful reports missing from text stream")
	}
}

func TestBatchJSONShape(t *testing.T) {
	b, err := Run(context.Background(), Options{IDs: []string{"fig13"}, BaseSeed: 1, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		BaseSeed int64 `json:"base_seed"`
		Failed   int   `json:"failed"`
		Results  []struct {
			ID     string `json:"id"`
			Seed   int64  `json:"seed"`
			Report *struct {
				ID      string             `json:"id"`
				Metrics map[string]float64 `json:"metrics"`
			} `json:"report"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("batch JSON does not round-trip: %v", err)
	}
	if decoded.Failed != 0 || len(decoded.Results) != 1 {
		t.Fatalf("unexpected batch shape: %+v", decoded)
	}
	r := decoded.Results[0]
	if r.ID != "fig13" || r.Report == nil || r.Report.ID != "fig13" {
		t.Fatalf("report missing from JSON: %+v", r)
	}
	if r.Seed != DeriveSeed(1, "fig13") {
		t.Errorf("JSON seed %d is not the derived seed", r.Seed)
	}
	if len(r.Report.Metrics) == 0 {
		t.Error("metrics missing from JSON report")
	}
}
