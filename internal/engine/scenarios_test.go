package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"ichannels/internal/scenario"
)

// testScenarios is a small heterogeneous batch covering several roles.
func testScenarios() []scenario.Scenario {
	return []scenario.Scenario{
		{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 8},
		{Role: scenario.RoleChannel, Kind: scenario.KindThread, Bits: 8},
		{Role: scenario.RoleChannel, Kind: scenario.KindSMT, Bits: 8},
		{Role: scenario.RoleSpy, Bits: 8},
		{Role: scenario.RoleBaseline, Baseline: scenario.BaselineNetSpectre, Bits: 4},
		{Role: scenario.RoleExperiment, Experiment: "fig13"},
	}
}

// stripTiming zeroes the wall-clock fields of a batch JSON encoding so
// the deterministic payload can be compared byte-for-byte.
func stripTiming(t *testing.T, raw []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("batch JSON: %v", err)
	}
	delete(m, "elapsed_us")
	delete(m, "parallel") // the effective pool size is part of the envelope, not the payload
	results, ok := m["results"].([]any)
	if !ok {
		t.Fatal("batch JSON has no results array")
	}
	for _, r := range results {
		delete(r.(map[string]any), "elapsed_us")
	}
	out, _ := json.Marshal(m)
	return string(out)
}

// TestScenarioSerialMatchesParallel: for a fixed base seed the result
// content is byte-identical across parallelism degrees — the same
// contract the experiment batch has.
func TestScenarioSerialMatchesParallel(t *testing.T) {
	var blobs []string
	for _, par := range []int{1, 4} {
		b, err := RunScenarios(context.Background(), ScenarioOptions{
			Scenarios: testScenarios(), BaseSeed: 11, Parallel: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Failed()) != 0 {
			t.Fatalf("parallel=%d: %d scenarios failed (first: %v)", par, len(b.Failed()), b.Failed()[0].Err)
		}
		var buf bytes.Buffer
		if err := b.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, stripTiming(t, buf.Bytes()))

		var text bytes.Buffer
		if err := b.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, text.String())
	}
	if blobs[0] != blobs[2] {
		t.Error("serial and parallel batch JSON differ")
	}
	if blobs[1] != blobs[3] {
		t.Error("serial and parallel batch text differ")
	}
}

// TestScenarioSeedDerivation: derived seeds are order-independent and
// an explicit spec seed wins.
func TestScenarioSeedDerivation(t *testing.T) {
	a := scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 8}
	c := scenario.Scenario{Role: scenario.RoleSpy, Bits: 8}
	pinned := scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindThread, Bits: 8, Seed: 77}

	fake := func(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
		return &scenario.Result{Role: s.Role, Hash: s.Hash(), Seed: seed}, nil
	}
	fwd, err := RunScenarios(context.Background(), ScenarioOptions{
		Scenarios: []scenario.Scenario{a, c, pinned}, BaseSeed: 5, Run: fake,
	})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := RunScenarios(context.Background(), ScenarioOptions{
		Scenarios: []scenario.Scenario{pinned, c, a}, BaseSeed: 5, Run: fake,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Results[0].Seed != rev.Results[2].Seed || fwd.Results[1].Seed != rev.Results[1].Seed {
		t.Error("derived seeds depend on batch order")
	}
	if fwd.Results[0].Seed == fwd.Results[1].Seed {
		t.Error("distinct scenarios derived the same seed")
	}
	if fwd.Results[2].Seed != 77 {
		t.Errorf("explicit spec seed overridden: got %d", fwd.Results[2].Seed)
	}
	if fwd.Results[0].Seed != DeriveScenarioSeed(5, a) {
		t.Error("batch seed does not match DeriveScenarioSeed")
	}
	other, err := RunScenarios(context.Background(), ScenarioOptions{
		Scenarios: []scenario.Scenario{a}, BaseSeed: 6, Run: fake,
	})
	if err != nil {
		t.Fatal(err)
	}
	if other.Results[0].Seed == fwd.Results[0].Seed {
		t.Error("base seed does not influence derived seeds")
	}
}

// TestScenarioBatchValidation: an invalid spec fails the whole batch up
// front, naming the index.
func TestScenarioBatchValidation(t *testing.T) {
	_, err := RunScenarios(context.Background(), ScenarioOptions{
		Scenarios: []scenario.Scenario{
			{Role: scenario.RoleChannel, Bits: 8},
			{Role: "warp"},
		},
	})
	if err == nil || !strings.Contains(err.Error(), "scenarios[1]") {
		t.Errorf("invalid spec not rejected with its index: %v", err)
	}
}

// TestScenarioPanicIsolationAndOnResult: a panicking runner becomes a
// per-outcome error, and OnResult fires exactly once per scenario with
// the slot populated.
func TestScenarioPanicIsolationAndOnResult(t *testing.T) {
	var fired int64
	specs := []scenario.Scenario{
		{Role: scenario.RoleChannel, Bits: 8},
		{Role: scenario.RoleChannel, Bits: 10},
		{Role: scenario.RoleChannel, Bits: 12},
	}
	var b *ScenarioBatch
	b, err := RunScenarios(context.Background(), ScenarioOptions{
		Scenarios: specs,
		Parallel:  2,
		Run: func(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
			if s.Bits == 10 {
				panic("boom")
			}
			return &scenario.Result{Role: s.Role, Seed: seed}, nil
		},
		OnResult: func(i int) {
			atomic.AddInt64(&fired, 1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Errorf("OnResult fired %d times, want 3", fired)
	}
	failed := b.Failed()
	if len(failed) != 1 || !strings.Contains(failed[0].Err.Error(), "panicked") {
		t.Errorf("panic not isolated: %+v", failed)
	}
	if b.Results[0].Err != nil || b.Results[2].Err != nil {
		t.Error("healthy scenarios affected by a panicking sibling")
	}
}

// TestScenarioCancellation: a cancelled context marks unstarted
// scenarios with the context error.
func TestScenarioCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, err := RunScenarios(ctx, ScenarioOptions{
		Scenarios: []scenario.Scenario{{Role: scenario.RoleChannel, Bits: 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Failed()) != 1 {
		t.Error("cancelled context did not mark the scenario failed")
	}
}

// TestScenarioNDJSON: one line per outcome, each valid JSON.
func TestScenarioNDJSON(t *testing.T) {
	b, err := RunScenarios(context.Background(), ScenarioOptions{
		Scenarios: testScenarios()[:2], BaseSeed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("NDJSON produced %d lines, want 2", len(lines))
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Errorf("NDJSON line not valid JSON: %v: %s", err, ln)
		}
		if _, ok := m["result"]; !ok {
			t.Errorf("NDJSON line missing result: %s", ln)
		}
	}
}

// TestDerivedSeedsArePinnable: derived seeds are always positive so a
// reported seed can be written back into a spec ("seed": N) — which the
// validator requires to be non-negative — and replayed exactly.
func TestDerivedSeedsArePinnable(t *testing.T) {
	specs := testScenarios()
	for base := int64(0); base < 64; base++ {
		for _, s := range specs {
			d := DeriveScenarioSeed(base, s)
			if d <= 0 {
				t.Fatalf("base %d, %s: derived seed %d is not pinnable", base, s.Hash(), d)
			}
			pinned := s
			pinned.Seed = d
			if err := pinned.Validate(); err != nil {
				t.Fatalf("pinning derived seed %d rejected: %v", d, err)
			}
		}
	}
}
