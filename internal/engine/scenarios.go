package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"ichannels/internal/scenario"
	"ichannels/internal/soc"
	"ichannels/internal/store"
)

// ScenarioRunFunc executes one scenario with an explicit seed. The
// default wraps scenario.Runner; tests inject fakes.
type ScenarioRunFunc func(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error)

// ScenarioOptions configures a scenario batch run.
type ScenarioOptions struct {
	// Scenarios is the batch, in request order.
	Scenarios []scenario.Scenario
	// BaseSeed is the batch's master seed: scenarios whose Seed is zero
	// run with DeriveScenarioSeed(BaseSeed, spec), so the whole batch
	// replays identically while distinct specs stay decorrelated. A
	// non-zero spec Seed always wins (the spec is then fully pinned).
	BaseSeed int64
	// Parallel is the worker-pool size. Values below 1 mean serial.
	Parallel int
	// Run overrides the scenario executor (nil means scenario.Run).
	Run ScenarioRunFunc
	// Runner, when set, takes precedence over Run — the hash-aware
	// delegation seam (see StreamOptions.Runner).
	Runner CellRunner
	// Store, when set, serves scenarios whose (hash, seed) result it
	// already holds and persists the rest — see StreamOptions.Store.
	Store store.Store
	// Machines, when set, recycles simulated machines through the
	// default executor — see StreamOptions.Machines.
	Machines *soc.Pool
	// OnResult, when set, is called with each scenario's batch index as
	// its outcome is emitted, in batch order (from the calling
	// goroutine). The result slot is fully populated before the call.
	OnResult func(i int)
}

// WithStore returns the options with the result store set — the fluent
// form the facade documents.
func (o ScenarioOptions) WithStore(st store.Store) ScenarioOptions {
	o.Store = st
	return o
}

// ScenarioOutcome is one scenario's slot in a batch.
type ScenarioOutcome struct {
	// Scenario is the normalized spec that ran.
	Scenario scenario.Scenario
	// Hash is the spec's content hash, computed once per outcome (the
	// store key, seed derivation, and sweep cell framing all reuse it).
	Hash string
	// Seed is the effective seed (spec seed or derived).
	Seed   int64
	Result *scenario.Result
	Err    error
	// Cached reports the result was served from the configured store
	// instead of computed (the bytes are identical either way).
	Cached  bool
	Elapsed time.Duration
}

// ScenarioBatch is the outcome of one scenario batch run. Outcomes are
// in request order regardless of completion order.
type ScenarioBatch struct {
	BaseSeed int64
	Parallel int
	Results  []ScenarioOutcome
	// Elapsed is the batch wall-clock time (nondeterministic; kept out
	// of the per-result bytes).
	Elapsed time.Duration
}

// DeriveScenarioSeed maps a batch base seed and a scenario to the seed
// that scenario runs with when its spec pins none. Deriving from the
// content hash makes the seed independent of batch order and
// parallelism — part of the determinism contract. The result is always
// positive so a reported seed can be pinned back into a spec
// ("seed": N) and replayed: spec seeds are non-negative and zero means
// "default".
func DeriveScenarioSeed(base int64, s scenario.Scenario) int64 {
	return deriveSeedFromHash(base, s.Hash())
}

// deriveSeedFromHash is DeriveScenarioSeed for callers that already
// hold the content hash (the stream dispatcher computes it once per
// slot).
func deriveSeedFromHash(base int64, hash string) int64 {
	d := DeriveSeed(base, "scenario:"+hash) & math.MaxInt64
	if d == 0 {
		d = 1
	}
	return d
}

// RunScenarios executes a batch of scenarios and collects every
// outcome — a thin collect-all wrapper over the streaming core
// (StreamScenarios). It returns an error only for unrunnable requests
// (an invalid spec, which would fail identically on every retry), and
// validates the whole batch before running any of it; individual run
// failures are recorded per-outcome and do not stop the batch.
// Cancelling the context abandons scenarios that have not started:
// their outcome slots carry the context error.
func RunScenarios(ctx context.Context, opts ScenarioOptions) (*ScenarioBatch, error) {
	// Validate up front so a malformed batch fails whole, before any
	// simulation runs — the stream itself validates lazily.
	for i, s := range opts.Scenarios {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("engine: scenarios[%d]: %w", i, err)
		}
	}
	b := &ScenarioBatch{
		BaseSeed: opts.BaseSeed,
		Results:  make([]ScenarioOutcome, len(opts.Scenarios)),
		Parallel: poolSize(opts.Parallel, len(opts.Scenarios)),
	}
	next := 0
	emitted := 0
	stats, err := StreamScenarios(ctx, StreamOptions{
		Next: func() (scenario.Scenario, bool) {
			if next >= len(opts.Scenarios) {
				return scenario.Scenario{}, false
			}
			s := opts.Scenarios[next]
			next++
			return s, true
		},
		BaseSeed: opts.BaseSeed,
		Parallel: b.Parallel,
		Run:      opts.Run,
		Runner:   opts.Runner,
		Store:    opts.Store,
		Machines: opts.Machines,
		Emit: func(o ScenarioOutcome) error {
			b.Results[emitted] = o
			if opts.OnResult != nil {
				opts.OnResult(emitted)
			}
			emitted++
			return nil
		},
	})
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil && err == ctxErr {
			// The stream stopped pulling on cancellation; restore the
			// batch contract by populating the abandoned slots with the
			// context error.
			for i := emitted; i < len(opts.Scenarios); i++ {
				n := opts.Scenarios[i].Normalized()
				hash := n.Hash()
				seed := n.Seed
				if seed == 0 {
					seed = deriveSeedFromHash(opts.BaseSeed, hash)
				}
				r := &b.Results[i]
				r.Scenario = n
				r.Hash = hash
				r.Seed = seed
				r.Err = ctxErr
				if opts.OnResult != nil {
					opts.OnResult(i)
				}
			}
		} else {
			return nil, err
		}
	}
	b.Elapsed = stats.Elapsed
	return b, nil
}

// Failed returns the outcomes whose runner returned an error (or was
// cancelled), in batch order.
func (b *ScenarioBatch) Failed() []ScenarioOutcome {
	var out []ScenarioOutcome
	for _, r := range b.Results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// scenarioOutcomeJSON is the wire form of one outcome. Timing and error
// live outside the result object so the result bytes stay deterministic.
type scenarioOutcomeJSON struct {
	Scenario  scenario.Scenario `json:"scenario"`
	Seed      int64             `json:"seed"`
	Cached    bool              `json:"cached"`
	ElapsedUS float64           `json:"elapsed_us"`
	Error     string            `json:"error,omitempty"`
	Result    *scenario.Result  `json:"result,omitempty"`
}

type scenarioBatchJSON struct {
	BaseSeed  int64                 `json:"base_seed"`
	Parallel  int                   `json:"parallel"`
	ElapsedUS float64               `json:"elapsed_us"`
	Failed    int                   `json:"failed"`
	Results   []scenarioOutcomeJSON `json:"results"`
}

func (b *ScenarioBatch) outcomeJSON(i int) scenarioOutcomeJSON {
	r := b.Results[i]
	oj := scenarioOutcomeJSON{
		Scenario:  r.Scenario,
		Seed:      r.Seed,
		Cached:    r.Cached,
		ElapsedUS: float64(r.Elapsed) / float64(time.Microsecond),
		Result:    r.Result,
	}
	if r.Err != nil {
		oj.Error = r.Err.Error()
	}
	return oj
}

// WriteJSON writes the machine-readable batch encoding. The "result"
// sub-objects are byte-identical across serial and parallel runs of the
// same base seed; the surrounding timing fields are wall-clock and vary.
func (b *ScenarioBatch) WriteJSON(w io.Writer) error {
	out := scenarioBatchJSON{
		BaseSeed:  b.BaseSeed,
		Parallel:  b.Parallel,
		ElapsedUS: float64(b.Elapsed) / float64(time.Microsecond),
		Failed:    len(b.Failed()),
		Results:   make([]scenarioOutcomeJSON, len(b.Results)),
	}
	for i := range b.Results {
		out.Results[i] = b.outcomeJSON(i)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteNDJSON writes one outcome object per line (no indentation), the
// same framing the HTTP v1 array endpoint streams.
func (b *ScenarioBatch) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range b.Results {
		if err := enc.Encode(b.outcomeJSON(i)); err != nil {
			return err
		}
	}
	return nil
}

// WriteText writes a comparison table of the batch: one row per
// scenario with the normalized envelope's headline numbers, followed by
// full report renderings for any experiment-role scenarios. The output
// depends only on (BaseSeed, Scenarios).
func (b *ScenarioBatch) WriteText(w io.Writer) error {
	rows := [][]string{{"scenario", "role", "seed", "bits", "throughput (b/s)", "BER", "verdict/extra"}}
	for i := range b.Results {
		r := &b.Results[i]
		if r.Err != nil {
			rows = append(rows, []string{r.Scenario.Describe(), r.Scenario.Role, fmt.Sprint(r.Seed), "-", "-", "-", "ERROR: " + r.Err.Error()})
			continue
		}
		res := r.Result
		last := res.Verdict
		if last == "" {
			if acc, ok := res.Extra["accuracy"]; ok {
				last = fmt.Sprintf("accuracy %.0f%%", acc*100)
			} else if res.DecodedPayload != "" {
				last = fmt.Sprintf("payload %q", res.DecodedPayload)
			}
		}
		rows = append(rows, []string{
			r.Scenario.Describe(), res.Role, fmt.Sprint(r.Seed),
			fmt.Sprint(res.Bits), fmt.Sprintf("%.0f", res.ThroughputBPS),
			fmt.Sprintf("%.3f", res.BER), last,
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for ri, row := range rows {
		for i, c := range row {
			if i > 0 {
				if _, err := fmt.Fprint(w, "  "); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%-*s", widths[i], c); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		if ri == 0 {
			for i := range row {
				if i > 0 {
					fmt.Fprint(w, "  ")
				}
				fmt.Fprint(w, strings.Repeat("-", widths[i]))
			}
			fmt.Fprintln(w)
		}
	}
	for i := range b.Results {
		r := &b.Results[i]
		if r.Err == nil && r.Result.Report != nil {
			if _, err := fmt.Fprintf(w, "\n%s", r.Result.Report.String()); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTiming writes a per-scenario wall-clock summary (intended for
// stderr, keeping stdout deterministic).
func (b *ScenarioBatch) WriteTiming(w io.Writer) {
	for i := range b.Results {
		r := &b.Results[i]
		status := "ok"
		if r.Err != nil {
			status = "FAIL: " + r.Err.Error()
		}
		fmt.Fprintf(w, "%-40s %10.2fms  seed %-20d %s\n",
			r.Scenario.Describe(), float64(r.Elapsed)/float64(time.Millisecond), r.Seed, status)
	}
	fmt.Fprintf(w, "%d scenarios, %d failed, parallel %d, %.2fms total\n",
		len(b.Results), len(b.Failed()), b.Parallel,
		float64(b.Elapsed)/float64(time.Millisecond))
}
