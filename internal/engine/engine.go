// Package engine orchestrates batch execution on a bounded worker pool,
// with per-item derived seeds, wall-clock timing capture, panic
// isolation, and context cancellation. It is the seam batch execution
// (cmd/ichannels run / scenario run) and HTTP serving (internal/serve)
// build on.
//
// A batch is a list of scenarios (RunScenarios) — the general form — or,
// for the legacy experiment-ID path, a list of registered experiment IDs
// (Run). The registered figure experiments are themselves expressible as
// scenarios (scenario.FromExperiment), so the scenario path subsumes the
// experiment one.
//
// Determinism contract: the report/result content of a batch is a pure
// function of (BaseSeed, items). The degree of parallelism affects only
// wall-clock time — for a fixed base seed, a run with Parallel=N
// produces results byte-identical (both text and JSON renderings) to a
// serial run, because every item receives the same derived seed
// (DeriveSeed / DeriveScenarioSeed) and the simulator itself is
// deterministic for a fixed seed. Timing is captured outside the results
// so it never perturbs their bytes.
package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	"ichannels/internal/exp"
)

// RunFunc executes one experiment by ID with an explicit seed. The
// default is exp.Run; tests inject fakes to exercise the pool itself.
type RunFunc func(id string, seed int64) (*exp.Report, error)

// Options configures a batch run.
type Options struct {
	// IDs selects the experiments to run, in the given order. Empty
	// means every registered experiment in definition order.
	IDs []string
	// BaseSeed is the batch's master seed. Each experiment runs with
	// DeriveSeed(BaseSeed, id), so experiments are decorrelated from
	// each other but the whole batch replays identically.
	BaseSeed int64
	// Parallel is the worker-pool size. Values below 1 mean serial.
	Parallel int
	// Run overrides the experiment executor (nil means exp.Run). When
	// set, IDs are not validated against the registry.
	Run RunFunc
}

// Result is the outcome of one experiment in a batch.
type Result struct {
	ID      string
	Section string
	Desc    string
	// Seed is the derived per-experiment seed the runner received.
	Seed    int64
	Report  *exp.Report
	Err     error
	Elapsed time.Duration
}

// Batch is the outcome of one engine run. Results are in request order
// regardless of completion order.
type Batch struct {
	BaseSeed int64
	Parallel int
	Results  []Result
	// Elapsed is the batch wall-clock time (nondeterministic; kept out
	// of the per-report bytes).
	Elapsed time.Duration
}

// DeriveSeed maps a batch base seed and an experiment ID to that
// experiment's seed. The derivation (FNV-1a over the ID, mixed with the
// base through a splitmix64 finalizer) is stable across runs, platforms,
// and worker counts — it is part of the determinism contract, so
// changing it moves every batch-mode report and invalidates recorded
// baselines. (The serve cache is unaffected: it keys on the raw
// client-supplied seed and never derives.)
func DeriveSeed(base int64, id string) int64 {
	h := fnv.New64a()
	io.WriteString(h, id)
	x := h.Sum64() ^ uint64(base)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// Run executes the selected experiments on a worker pool and returns the
// collected results. It returns an error only for unrunnable requests
// (unknown experiment IDs); individual experiment failures are recorded
// in their Result and do not stop the batch. Cancelling the context
// abandons experiments that have not started (their Err becomes the
// context's error); experiments already running complete normally.
func Run(ctx context.Context, opts Options) (*Batch, error) {
	runFn := opts.Run
	ids := opts.IDs
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	if runFn == nil {
		runFn = exp.Run
		for _, id := range ids {
			if _, ok := exp.Lookup(id); !ok {
				return nil, fmt.Errorf("engine: unknown experiment %q (use one of %v)", id, exp.IDs())
			}
		}
	}
	b := &Batch{BaseSeed: opts.BaseSeed, Parallel: opts.Parallel, Results: make([]Result, len(ids))}
	for i, id := range ids {
		r := &b.Results[i]
		r.ID = id
		r.Seed = DeriveSeed(opts.BaseSeed, id)
		if e, ok := exp.Lookup(id); ok {
			r.Section, r.Desc = e.Section, e.Desc
		}
	}

	// Record the effective pool size, not the requested one, so JSON
	// and timing output describe what actually ran.
	b.Parallel = poolSize(opts.Parallel, len(ids))

	start := time.Now()
	runPool(b.Parallel, len(ids), func(i int) {
		r := &b.Results[i]
		if err := ctx.Err(); err != nil {
			r.Err = err
			return
		}
		t0 := time.Now()
		r.Report, r.Err = RunIsolated(runFn, r.ID, r.Seed)
		r.Elapsed = time.Since(t0)
	})
	b.Elapsed = time.Since(start)
	return b, nil
}

// poolSize clamps a requested parallelism to [1, n].
func poolSize(requested, n int) int {
	if requested < 1 {
		requested = 1
	}
	if requested > n {
		requested = n
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// runPool executes work(0..n-1) on a pool of the given size and waits
// for completion. The work function owns all error handling.
func runPool(workers, n int, work func(i int)) {
	idx := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range idx {
				work(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	for w := 0; w < workers; w++ {
		<-done
	}
}

// RunIsolated executes one experiment, converting a runner panic into an
// error so one broken experiment cannot take down a batch or a serving
// process. Both the worker pool and internal/serve route through it.
func RunIsolated(run RunFunc, id string, seed int64) (rep *exp.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			rep, err = nil, fmt.Errorf("engine: experiment %s panicked: %v", id, p)
		}
	}()
	return run(id, seed)
}

// Failed returns the results whose runner returned an error (or was
// cancelled), in batch order.
func (b *Batch) Failed() []Result {
	var out []Result
	for _, r := range b.Results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// resultJSON is the wire form of a Result. Timing and error live outside
// the report object so the report bytes stay deterministic.
type resultJSON struct {
	ID        string      `json:"id"`
	Section   string      `json:"section,omitempty"`
	Desc      string      `json:"desc,omitempty"`
	Seed      int64       `json:"seed"`
	ElapsedUS float64     `json:"elapsed_us"`
	Error     string      `json:"error,omitempty"`
	Report    *exp.Report `json:"report,omitempty"`
}

type batchJSON struct {
	BaseSeed  int64        `json:"base_seed"`
	Parallel  int          `json:"parallel"`
	ElapsedUS float64      `json:"elapsed_us"`
	Failed    int          `json:"failed"`
	Results   []resultJSON `json:"results"`
}

// WriteJSON writes the machine-readable batch encoding. The "report"
// sub-objects are byte-identical across serial and parallel runs of the
// same base seed; the surrounding timing fields are wall-clock and vary.
func (b *Batch) WriteJSON(w io.Writer) error {
	out := batchJSON{
		BaseSeed:  b.BaseSeed,
		Parallel:  b.Parallel,
		ElapsedUS: float64(b.Elapsed) / float64(time.Microsecond),
		Failed:    len(b.Failed()),
		Results:   make([]resultJSON, len(b.Results)),
	}
	for i, r := range b.Results {
		rj := resultJSON{
			ID: r.ID, Section: r.Section, Desc: r.Desc, Seed: r.Seed,
			ElapsedUS: float64(r.Elapsed) / float64(time.Microsecond),
			Report:    r.Report,
		}
		if r.Err != nil {
			rj.Error = r.Err.Error()
		}
		out.Results[i] = rj
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteText writes every successful report's plain-text rendering. The
// output depends only on (BaseSeed, IDs) — timing goes to WriteTiming so
// this stream can be diffed across runs.
func (b *Batch) WriteText(w io.Writer) error {
	printed := false
	for _, r := range b.Results {
		if r.Err != nil {
			continue
		}
		if printed {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprint(w, r.Report.String()); err != nil {
			return err
		}
		printed = true
	}
	return nil
}

// WriteTiming writes a per-experiment wall-clock summary (intended for
// stderr, keeping stdout deterministic).
func (b *Batch) WriteTiming(w io.Writer) {
	for _, r := range b.Results {
		status := "ok"
		if r.Err != nil {
			status = "FAIL: " + r.Err.Error()
		}
		fmt.Fprintf(w, "%-10s %10.2fms  seed %-20d %s\n",
			r.ID, float64(r.Elapsed)/float64(time.Millisecond), r.Seed, status)
	}
	fmt.Fprintf(w, "%d experiments, %d failed, parallel %d, %.2fms total\n",
		len(b.Results), len(b.Failed()), b.Parallel,
		float64(b.Elapsed)/float64(time.Millisecond))
}
