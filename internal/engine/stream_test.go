package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ichannels/internal/scenario"
)

// streamSource yields n generated (valid, distinct) scenarios.
func streamSource(n int) func() (scenario.Scenario, bool) {
	i := 0
	return func() (scenario.Scenario, bool) {
		if i >= n {
			return scenario.Scenario{}, false
		}
		i++
		return scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 2 * i}, true
	}
}

// fakeStreamRun is a cheap deterministic executor for pipeline tests.
func fakeStreamRun(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
	return &scenario.Result{Role: s.Role, Hash: s.Hash(), Seed: seed, Bits: s.Bits}, nil
}

// TestStreamBoundedMemory is the acceptance check for the streaming
// core: a grid-sized stream (500 scenarios) through a small window
// never holds more than O(workers + window) outcomes between dispatch
// and emission — peak live slots stay flat as the stream length grows.
func TestStreamBoundedMemory(t *testing.T) {
	const (
		n       = 500
		workers = 4
		window  = 8
	)
	var (
		mu         sync.Mutex
		dispatched int
		emitted    int
		peak       int
	)
	src := streamSource(n)
	stats, err := StreamScenarios(context.Background(), StreamOptions{
		Next: func() (scenario.Scenario, bool) {
			s, ok := src()
			if ok {
				mu.Lock()
				dispatched++
				if live := dispatched - emitted; live > peak {
					peak = live
				}
				mu.Unlock()
			}
			return s, ok
		},
		Parallel: workers,
		Window:   window,
		Run:      fakeStreamRun,
		Emit: func(o ScenarioOutcome) error {
			mu.Lock()
			emitted++
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Emitted != n || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want %d emitted, 0 failed", stats, n)
	}
	// window slots buffered + 1 being dispatched is the design bound;
	// allow the one-slot slack, nothing proportional to n.
	if limit := window + 2; peak > limit {
		t.Errorf("peak live outcomes %d exceeds the bound %d (window %d, workers %d)", peak, limit, window, workers)
	}
}

// TestStreamParallelMatchesSerial: the emitted outcome sequence (as
// NDJSON-style bytes) is identical between a serial stream and a
// parallel one with a small window — the determinism contract extended
// to streaming.
func TestStreamParallelMatchesSerial(t *testing.T) {
	render := func(parallel, window int) string {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		_, err := StreamScenarios(context.Background(), StreamOptions{
			Next:     streamSource(24),
			BaseSeed: 7,
			Parallel: parallel,
			Window:   window,
			Run:      fakeStreamRun,
			Emit: func(o ScenarioOutcome) error {
				return enc.Encode(struct {
					Hash string           `json:"hash"`
					Seed int64            `json:"seed"`
					Res  *scenario.Result `json:"result"`
				}{o.Scenario.Hash(), o.Seed, o.Result})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := render(1, 1)
	for _, cfg := range [][2]int{{4, 4}, {8, 32}} {
		if got := render(cfg[0], cfg[1]); got != serial {
			t.Errorf("parallel=%d window=%d stream bytes differ from serial", cfg[0], cfg[1])
		}
	}
}

// TestStreamInvalidSpecStopsWithPosition: a bad spec mid-stream stops
// the stream with its position; everything before it was emitted.
func TestStreamInvalidSpecStopsWithPosition(t *testing.T) {
	i := 0
	emitted := 0
	_, err := StreamScenarios(context.Background(), StreamOptions{
		Next: func() (scenario.Scenario, bool) {
			i++
			if i == 3 {
				return scenario.Scenario{Role: "warp"}, true
			}
			return scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 2 * i}, true
		},
		Parallel: 2,
		Run:      fakeStreamRun,
		Emit:     func(o ScenarioOutcome) error { emitted++; return nil },
	})
	if err == nil || !strings.Contains(err.Error(), "stream scenario 2") {
		t.Fatalf("invalid spec error = %v, want position 2", err)
	}
	if emitted != 2 {
		t.Errorf("emitted %d outcomes before the invalid spec, want 2", emitted)
	}
}

// TestStreamEmitErrorStops: an Emit error stops the stream promptly —
// the source is not drained to exhaustion.
func TestStreamEmitErrorStops(t *testing.T) {
	pulled := 0
	src := streamSource(10_000)
	boom := fmt.Errorf("sink full")
	_, err := StreamScenarios(context.Background(), StreamOptions{
		Next: func() (scenario.Scenario, bool) {
			pulled++
			return src()
		},
		Parallel: 2,
		Window:   4,
		Run:      fakeStreamRun,
		Emit:     func(o ScenarioOutcome) error { return boom },
	})
	if err != boom {
		t.Fatalf("err = %v, want the emit error", err)
	}
	if pulled > 100 {
		t.Errorf("source pulled %d times after the sink failed; stream did not stop", pulled)
	}
}

// TestStreamCancellationStopsUnboundedSource: cancelling the context
// stops the dispatcher from pulling — an endless generator cannot keep
// the stream alive — and StreamScenarios returns the context error.
func TestStreamCancellationStopsUnboundedSource(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pulled := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := StreamScenarios(ctx, StreamOptions{
			Next: func() (scenario.Scenario, bool) {
				pulled++
				if pulled == 10 {
					cancel()
				}
				// Endless: only cancellation can stop this stream.
				return scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 8, Seed: int64(pulled)}, true
			},
			Parallel: 2,
			Window:   4,
			Run:      fakeStreamRun,
		})
		if err != context.Canceled {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not stop after cancellation")
	}
	if pulled > 20 {
		t.Errorf("source pulled %d times after cancellation", pulled)
	}
}

// TestStreamRunFailuresDoNotStop: per-scenario failures are emitted as
// outcomes and counted, and the stream runs to completion.
func TestStreamRunFailuresDoNotStop(t *testing.T) {
	stats, err := StreamScenarios(context.Background(), StreamOptions{
		Next:     streamSource(10),
		Parallel: 3,
		Run: func(ctx context.Context, s scenario.Scenario, seed int64) (*scenario.Result, error) {
			if s.Bits%4 == 0 {
				return nil, fmt.Errorf("synthetic failure")
			}
			if s.Bits == 6 {
				panic("boom")
			}
			return fakeStreamRun(ctx, s, seed)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Emitted != 10 || stats.Failed != 6 {
		t.Errorf("stats = %+v, want 10 emitted / 6 failed (5 synthetic + 1 panic)", stats)
	}
}
