// Package soc assembles the full simulated system-on-chip: cores, central
// PMU, power delivery, clocking, the invariant TSC, OS noise, and the
// software contexts (agents) that run on hardware threads. It is the
// integration point every experiment and covert channel builds on.
package soc

import (
	"fmt"
	"math/rand"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/pdn"
	"ichannels/internal/pmu"
	"ichannels/internal/power"
	"ichannels/internal/sched"
	"ichannels/internal/uarch"
	"ichannels/internal/units"
)

// Options configures a Machine beyond its processor profile.
type Options struct {
	// Processor is the calibrated part to simulate. Required.
	Processor model.Processor

	// RequestedFreq is the operating point software asks for (a fixed
	// frequency for the characterization experiments, or the Turbo
	// maximum). Zero means the processor's base frequency.
	RequestedFreq units.Hertz

	// Cores limits the number of instantiated cores (0 = all the
	// profile has). The paper's experiments mostly use one or two.
	Cores int

	// PerCoreVR enables mitigation 1 (per-core regulators). Combine
	// with VROverride to model an LDO.
	PerCoreVR bool

	// VROverride substitutes the regulator parameters (e.g. an LDO for
	// the mitigation study). Nil keeps the profile's VR.
	VROverride *pdn.Config

	// PerThreadThrottle enables mitigation 2 (improved core throttling).
	PerThreadThrottle bool

	// SecureMode enables mitigation 3 from time zero.
	SecureMode bool

	// Noise configures OS interrupt / context-switch injection.
	Noise NoiseConfig

	// TSCJitterCycles adds uniform [0, n) cycles of measurement noise to
	// every rdtsc an agent performs, modelling serialization overhead
	// and pipeline-state variation of the real instruction. Zero means
	// ideal reads.
	TSCJitterCycles int64

	// Seed drives all randomness (noise arrival, jitter). The same seed
	// replays the same simulation.
	Seed int64
}

// Machine is one fully wired simulated system.
type Machine struct {
	Q     *sched.Queue
	Proc  model.Processor
	Cores []*uarch.Core
	PMU   *pmu.PMU

	loadLine pdn.LoadLine
	thermal  *power.Thermal
	noise    *noiseInjector
	opts     Options

	// rng is constructed (or re-seeded after a Reset) lazily on first
	// draw: seeding math/rand costs more than an entire short simulation,
	// and machines without noise or TSC jitter never draw at all. The
	// draw sequence for a given seed is unchanged, so output bytes are
	// identical to an eagerly seeded machine.
	rng       *rand.Rand
	rngSeeded bool

	// threads holds the live (bound, not yet stopped) software threads in
	// bind order; a thread is removed the moment its agent stops, keeping
	// the bind-time duplicate-slot check and the noise injector's victim
	// scan O(live threads) rather than O(threads ever bound). retired
	// accumulates stopped threads until the next Reset recycles them.
	threads []*SWThread
	retired []*SWThread
	freeTh  []*SWThread

	lastPower units.Watt
	// actScratch is the reusable per-probe activity buffer; its values
	// are consumed before the probe returns, never retained.
	actScratch []uarch.ThreadActivity
}

// deriveShape validates opts and resolves the derived build parameters
// shared by New and Reset.
func deriveShape(opts Options) (ncores int, req units.Hertz, err error) {
	p := opts.Processor
	if err := p.Validate(); err != nil {
		return 0, 0, err
	}
	ncores = opts.Cores
	if ncores == 0 {
		ncores = p.Cores
	}
	if ncores < 1 || ncores > p.Cores {
		return 0, 0, fmt.Errorf("soc: core count %d outside [1, %d]", ncores, p.Cores)
	}
	req = opts.RequestedFreq
	if req == 0 {
		req = p.BaseFreq
	}
	if req > p.MaxTurbo {
		return 0, 0, fmt.Errorf("soc: requested frequency %v above max Turbo %v", req, p.MaxTurbo)
	}
	return ncores, req, nil
}

// pmuConfig builds the PMU configuration for opts.
func pmuConfig(opts Options, req units.Hertz) pmu.Config {
	p := opts.Processor
	vr := p.VR
	if opts.VROverride != nil {
		vr = *opts.VROverride
	}
	return pmu.Config{
		Guardband:          p.Guardband,
		VF:                 p.VF,
		Limits:             p.Limits,
		Cdyn:               p.Cdyn,
		Leakage:            p.Leakage,
		LicenseHysteresis:  p.LicenseHysteresis,
		FreqRestoreDelay:   p.FreqRestoreDelay,
		FreqStep:           p.FreqStep,
		PLLRelock:          p.PLLRelock,
		RequestedFrequency: req,
		PerCoreVR:          opts.PerCoreVR,
		VR:                 vr,
	}
}

// coreConfig builds the configuration for core i under opts.
func coreConfig(opts Options, i int) uarch.Config {
	p := opts.Processor
	return uarch.Config{
		ID:                  i,
		SMTWays:             p.SMTWays,
		DeliverWidth:        p.DeliverWidth,
		ThrottleFactor:      p.ThrottleFactor,
		PerThreadThrottle:   opts.PerThreadThrottle,
		AVX256Gate:          gateConfig(p.AVX256Gate),
		AVX512Gate:          gateConfig(p.AVX512Gate),
		BaselineUndelivered: 0.01,
	}
}

// New builds and initializes a machine. The returned machine is at
// simulated time zero with all cores idle and the PMU settled at the
// requested operating point.
func New(opts Options) (*Machine, error) {
	p := opts.Processor
	ncores, req, err := deriveShape(opts)
	if err != nil {
		return nil, err
	}

	q := sched.NewQueue()
	ll, err := pdn.NewLoadLine(p.RLL)
	if err != nil {
		return nil, err
	}
	th, err := power.NewThermal(p.Thermal.Ambient, p.Thermal.RPkg, p.Thermal.TauPkg, p.Thermal.RDie, p.Thermal.TauDie)
	if err != nil {
		return nil, err
	}

	unit, err := pmu.New(pmuConfig(opts, req), q)
	if err != nil {
		return nil, err
	}

	m := &Machine{
		Q:        q,
		Proc:     p,
		PMU:      unit,
		loadLine: ll,
		thermal:  th,
		opts:     opts,
	}

	cores := make([]*uarch.Core, ncores)
	pmuCores := make([]pmu.Core, ncores)
	for i := range cores {
		core, err := uarch.NewCore(coreConfig(opts, i), q, unit)
		if err != nil {
			return nil, err
		}
		cores[i] = core
		pmuCores[i] = core
	}
	m.Cores = cores
	if err := unit.AttachCores(pmuCores); err != nil {
		return nil, err
	}
	if err := unit.Initialize(); err != nil {
		return nil, err
	}
	m.settle()
	return m, nil
}

// settle performs the post-initialization steps shared by New and Reset:
// the secure-mode guardband ramp and arming the noise injector.
func (m *Machine) settle() {
	if m.opts.SecureMode {
		m.PMU.SetSecure(true)
		// Let the worst-case guardband ramp settle before time zero
		// workloads begin; secure mode is an operating mode, not a
		// transient (paper §7).
		m.Q.RunUntil(m.Q.Now().Add(200 * units.Microsecond))
	}
	m.noise = newNoiseInjector(m, m.opts.Noise)
}

// Reset rewinds the machine to the state New(opts) would produce — time
// zero, cores idle, PMU settled, counters cleared, randomness restarted
// from opts.Seed — while reusing every long-lived structure: the event
// queue's node pool, the cores with their prebound callbacks, the PMU's
// per-core slices, the regulators, and retired SWThreads. A reset machine
// replays byte-identically to a fresh one (soc's reset determinism test
// and the sweep conformance suites hold this line).
//
// The machine's shape must not change: same processor topology (core
// count, SMT ways) and same regulator topology (PerCoreVR). Pools key on
// shape, so Reset is only ever asked for compatible options; incompatible
// options return an error and the caller falls back to New.
func (m *Machine) Reset(opts Options) error {
	ncores, req, err := deriveShape(opts)
	if err != nil {
		return err
	}
	if ncores != len(m.Cores) || opts.Processor.SMTWays != m.Proc.SMTWays {
		return fmt.Errorf("soc: Reset cannot change core topology (%d cores × %d-way to %d × %d-way)",
			len(m.Cores), m.Proc.SMTWays, ncores, opts.Processor.SMTWays)
	}
	ll, err := pdn.NewLoadLine(opts.Processor.RLL)
	if err != nil {
		return err
	}
	th := opts.Processor.Thermal
	thermal, err := power.NewThermal(th.Ambient, th.RPkg, th.TauPkg, th.RDie, th.TauDie)
	if err != nil {
		return err
	}
	// From here on the machine mutates; a mid-way error leaves it in an
	// undefined state and the caller must discard it (pools do).
	m.Q.Reset()
	for i, c := range m.Cores {
		if err := c.Reset(coreConfig(opts, i)); err != nil {
			return err
		}
	}
	if err := m.PMU.Reset(pmuConfig(opts, req)); err != nil {
		return err
	}
	m.Proc = opts.Processor
	m.opts = opts
	m.loadLine = ll
	m.thermal = thermal
	m.rngSeeded = false
	m.lastPower = 0
	// Recycle every software thread object bound during the previous run.
	m.freeTh = append(m.freeTh, m.retired...)
	m.freeTh = append(m.freeTh, m.threads...)
	m.retired = m.retired[:0]
	m.threads = m.threads[:0]
	m.settle()
	return nil
}

func gateConfig(g interface {
	Gate() (bool, units.Duration, units.Duration)
}) uarch.PowerGateConfig {
	present, wake, idle := g.Gate()
	if !present {
		return uarch.PowerGateConfig{Present: false}
	}
	return uarch.PowerGateConfig{Present: true, WakeLatency: wake, IdleTimeout: idle}
}

// Now returns the current simulated time.
func (m *Machine) Now() units.Time { return m.Q.Now() }

// TSC returns the invariant timestamp counter value at time t.
func (m *Machine) TSC(t units.Time) int64 {
	return int64(t.Seconds() * float64(m.Proc.TSCFreq))
}

// ReadTSC models an agent actually executing rdtsc at time t: the true
// counter plus the configured measurement jitter.
func (m *Machine) ReadTSC(t units.Time) int64 {
	v := m.TSC(t)
	if m.opts.TSCJitterCycles > 0 {
		v += m.Rand().Int63n(m.opts.TSCJitterCycles)
	}
	return v
}

// CyclesOf converts a duration to TSC cycles.
func (m *Machine) CyclesOf(d units.Duration) int64 {
	return int64(d.Seconds() * float64(m.Proc.TSCFreq))
}

// RunFor advances the simulation by d.
func (m *Machine) RunFor(d units.Duration) {
	m.Q.RunUntil(m.Q.Now().Add(d))
}

// RunUntil advances the simulation to absolute time t.
func (m *Machine) RunUntil(t units.Time) { m.Q.RunUntil(t) }

// Rand exposes the machine's deterministic random source (used by agents
// that need jitter; seeded from Options.Seed). The source is seeded on
// first use — deterministically, so the draw sequence matches an eagerly
// seeded one — because seeding math/rand dominates machine construction
// for short runs that never draw.
func (m *Machine) Rand() *rand.Rand {
	if !m.rngSeeded {
		if m.rng == nil {
			m.rng = rand.New(rand.NewSource(m.opts.Seed))
		} else {
			m.rng.Seed(m.opts.Seed)
		}
		m.rngSeeded = true
	}
	return m.rng
}

// PowerState is an instantaneous electrical snapshot of the machine.
type PowerState struct {
	T       units.Time
	Vcc     units.Volt // regulator output (core 0's regulator)
	Vccload units.Volt // voltage at the cores after load-line droop
	Icc     units.Ampere
	Power   units.Watt
	Freq    units.Hertz
	Temp    units.Celsius
	// CoreIPC is the delivered uops/cycle of each core (sum over its
	// threads), the quantity the paper plots in Figs. 4 and 9.
	CoreIPC []float64
	// Throttled flags cores whose IDQ gate is engaged.
	Throttled []bool
	// Licenses is the per-core granted license.
	Licenses []isa.Class
}

// Probe computes the instantaneous electrical state and advances the
// thermal model to now. Experiments and the trace recorder call this at
// their sampling rate. The returned per-core slices are freshly
// allocated (the trace recorder retains whole samples); agents that
// poll per slot and need only scalars use ProbeScalars.
func (m *Machine) Probe() PowerState {
	ipc := make([]float64, len(m.Cores))
	st := m.probe(ipc)
	st.CoreIPC = ipc
	throttled := make([]bool, len(m.Cores))
	for i, c := range m.Cores {
		throttled[i] = c.Throttled()
	}
	st.Throttled = throttled
	st.Licenses = m.PMU.Licenses()
	return st
}

// ProbeScalars is Probe without the per-core slices (CoreIPC, Throttled,
// Licenses stay nil): the same electrical computation and thermal-model
// advance, but allocation-free — the form for agents that sample the
// machine every slot (e.g. the PowerT receiver polling temperature).
func (m *Machine) ProbeScalars() PowerState {
	return m.probe(nil)
}

// probe computes the scalar electrical state, accumulating per-core IPC
// into ipc when non-nil.
func (m *Machine) probe(ipc []float64) PowerState {
	now := m.Q.Now()
	vcc := m.PMU.Voltage(0, now)
	freq := m.PMU.Frequency()

	var cdyn float64
	for i, c := range m.Cores {
		busy := false
		m.actScratch = c.AppendActivity(m.actScratch[:0])
		for _, a := range m.actScratch {
			if !a.Busy {
				continue
			}
			busy = true
			cdyn += (m.Proc.Cdyn.PerClass[a.Class] - m.Proc.Cdyn.Idle) * a.CdynScale * a.RateFraction
			if ipc != nil {
				ipc[i] += a.RateFraction // relative to ~1 uop/cycle kernels
			}
		}
		if busy {
			cdyn += m.Proc.Cdyn.Idle
		} else {
			cdyn += m.Proc.Cdyn.Idle * 0.2 // clock-gated idle core
		}
	}
	// Advance thermals under the previously computed power, then refresh.
	temp := m.thermal.Advance(now, m.lastPower)
	icc := power.DynamicCurrent(cdyn, vcc, freq) + m.Proc.Leakage.Current(vcc, temp)
	watts := units.Watt(float64(vcc) * float64(icc))
	m.lastPower = watts

	return PowerState{
		T:       now,
		Vcc:     vcc,
		Vccload: m.loadLine.LoadVoltage(vcc, icc),
		Icc:     icc,
		Power:   watts,
		Freq:    freq,
		Temp:    temp,
	}
}

// Threads returns the live (bound, not yet stopped) software threads in
// bind order.
func (m *Machine) Threads() []*SWThread { return m.threads }
