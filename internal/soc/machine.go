// Package soc assembles the full simulated system-on-chip: cores, central
// PMU, power delivery, clocking, the invariant TSC, OS noise, and the
// software contexts (agents) that run on hardware threads. It is the
// integration point every experiment and covert channel builds on.
package soc

import (
	"fmt"
	"math/rand"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/pdn"
	"ichannels/internal/pmu"
	"ichannels/internal/power"
	"ichannels/internal/sched"
	"ichannels/internal/uarch"
	"ichannels/internal/units"
)

// Options configures a Machine beyond its processor profile.
type Options struct {
	// Processor is the calibrated part to simulate. Required.
	Processor model.Processor

	// RequestedFreq is the operating point software asks for (a fixed
	// frequency for the characterization experiments, or the Turbo
	// maximum). Zero means the processor's base frequency.
	RequestedFreq units.Hertz

	// Cores limits the number of instantiated cores (0 = all the
	// profile has). The paper's experiments mostly use one or two.
	Cores int

	// PerCoreVR enables mitigation 1 (per-core regulators). Combine
	// with VROverride to model an LDO.
	PerCoreVR bool

	// VROverride substitutes the regulator parameters (e.g. an LDO for
	// the mitigation study). Nil keeps the profile's VR.
	VROverride *pdn.Config

	// PerThreadThrottle enables mitigation 2 (improved core throttling).
	PerThreadThrottle bool

	// SecureMode enables mitigation 3 from time zero.
	SecureMode bool

	// Noise configures OS interrupt / context-switch injection.
	Noise NoiseConfig

	// TSCJitterCycles adds uniform [0, n) cycles of measurement noise to
	// every rdtsc an agent performs, modelling serialization overhead
	// and pipeline-state variation of the real instruction. Zero means
	// ideal reads.
	TSCJitterCycles int64

	// Seed drives all randomness (noise arrival, jitter). The same seed
	// replays the same simulation.
	Seed int64
}

// Machine is one fully wired simulated system.
type Machine struct {
	Q     *sched.Queue
	Proc  model.Processor
	Cores []*uarch.Core
	PMU   *pmu.PMU

	loadLine pdn.LoadLine
	thermal  *power.Thermal
	rng      *rand.Rand
	noise    *noiseInjector
	threads  []*SWThread
	opts     Options

	lastPower units.Watt
	// actScratch is the reusable per-probe activity buffer; its values
	// are consumed before the probe returns, never retained.
	actScratch []uarch.ThreadActivity
}

// New builds and initializes a machine. The returned machine is at
// simulated time zero with all cores idle and the PMU settled at the
// requested operating point.
func New(opts Options) (*Machine, error) {
	p := opts.Processor
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ncores := opts.Cores
	if ncores == 0 {
		ncores = p.Cores
	}
	if ncores < 1 || ncores > p.Cores {
		return nil, fmt.Errorf("soc: core count %d outside [1, %d]", ncores, p.Cores)
	}
	req := opts.RequestedFreq
	if req == 0 {
		req = p.BaseFreq
	}
	if req > p.MaxTurbo {
		return nil, fmt.Errorf("soc: requested frequency %v above max Turbo %v", req, p.MaxTurbo)
	}

	q := sched.NewQueue()
	ll, err := pdn.NewLoadLine(p.RLL)
	if err != nil {
		return nil, err
	}
	th, err := power.NewThermal(p.Thermal.Ambient, p.Thermal.RPkg, p.Thermal.TauPkg, p.Thermal.RDie, p.Thermal.TauDie)
	if err != nil {
		return nil, err
	}

	vr := p.VR
	if opts.VROverride != nil {
		vr = *opts.VROverride
	}
	pcfg := pmu.Config{
		Guardband:          p.Guardband,
		VF:                 p.VF,
		Limits:             p.Limits,
		Cdyn:               p.Cdyn,
		Leakage:            p.Leakage,
		LicenseHysteresis:  p.LicenseHysteresis,
		FreqRestoreDelay:   p.FreqRestoreDelay,
		FreqStep:           p.FreqStep,
		PLLRelock:          p.PLLRelock,
		RequestedFrequency: req,
		PerCoreVR:          opts.PerCoreVR,
		VR:                 vr,
	}
	unit, err := pmu.New(pcfg, q)
	if err != nil {
		return nil, err
	}

	m := &Machine{
		Q:        q,
		Proc:     p,
		PMU:      unit,
		loadLine: ll,
		thermal:  th,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		opts:     opts,
	}

	avx256 := gateConfig(p.AVX256Gate)
	avx512 := gateConfig(p.AVX512Gate)
	cores := make([]*uarch.Core, ncores)
	pmuCores := make([]pmu.Core, ncores)
	for i := range cores {
		cc := uarch.Config{
			ID:                  i,
			SMTWays:             p.SMTWays,
			DeliverWidth:        p.DeliverWidth,
			ThrottleFactor:      p.ThrottleFactor,
			PerThreadThrottle:   opts.PerThreadThrottle,
			AVX256Gate:          avx256,
			AVX512Gate:          avx512,
			BaselineUndelivered: 0.01,
		}
		core, err := uarch.NewCore(cc, q, unit)
		if err != nil {
			return nil, err
		}
		cores[i] = core
		pmuCores[i] = core
	}
	m.Cores = cores
	if err := unit.AttachCores(pmuCores); err != nil {
		return nil, err
	}
	if err := unit.Initialize(); err != nil {
		return nil, err
	}
	if opts.SecureMode {
		unit.SetSecure(true)
		// Let the worst-case guardband ramp settle before time zero
		// workloads begin; secure mode is an operating mode, not a
		// transient (paper §7).
		q.RunUntil(q.Now().Add(200 * units.Microsecond))
	}
	m.noise = newNoiseInjector(m, opts.Noise)
	return m, nil
}

func gateConfig(g interface {
	Gate() (bool, units.Duration, units.Duration)
}) uarch.PowerGateConfig {
	present, wake, idle := g.Gate()
	if !present {
		return uarch.PowerGateConfig{Present: false}
	}
	return uarch.PowerGateConfig{Present: true, WakeLatency: wake, IdleTimeout: idle}
}

// Now returns the current simulated time.
func (m *Machine) Now() units.Time { return m.Q.Now() }

// TSC returns the invariant timestamp counter value at time t.
func (m *Machine) TSC(t units.Time) int64 {
	return int64(t.Seconds() * float64(m.Proc.TSCFreq))
}

// ReadTSC models an agent actually executing rdtsc at time t: the true
// counter plus the configured measurement jitter.
func (m *Machine) ReadTSC(t units.Time) int64 {
	v := m.TSC(t)
	if m.opts.TSCJitterCycles > 0 {
		v += m.rng.Int63n(m.opts.TSCJitterCycles)
	}
	return v
}

// CyclesOf converts a duration to TSC cycles.
func (m *Machine) CyclesOf(d units.Duration) int64 {
	return int64(d.Seconds() * float64(m.Proc.TSCFreq))
}

// RunFor advances the simulation by d.
func (m *Machine) RunFor(d units.Duration) {
	m.Q.RunUntil(m.Q.Now().Add(d))
}

// RunUntil advances the simulation to absolute time t.
func (m *Machine) RunUntil(t units.Time) { m.Q.RunUntil(t) }

// Rand exposes the machine's deterministic random source (used by agents
// that need jitter; seeded from Options.Seed).
func (m *Machine) Rand() *rand.Rand { return m.rng }

// PowerState is an instantaneous electrical snapshot of the machine.
type PowerState struct {
	T       units.Time
	Vcc     units.Volt // regulator output (core 0's regulator)
	Vccload units.Volt // voltage at the cores after load-line droop
	Icc     units.Ampere
	Power   units.Watt
	Freq    units.Hertz
	Temp    units.Celsius
	// CoreIPC is the delivered uops/cycle of each core (sum over its
	// threads), the quantity the paper plots in Figs. 4 and 9.
	CoreIPC []float64
	// Throttled flags cores whose IDQ gate is engaged.
	Throttled []bool
	// Licenses is the per-core granted license.
	Licenses []isa.Class
}

// Probe computes the instantaneous electrical state and advances the
// thermal model to now. Experiments and the trace recorder call this at
// their sampling rate. The returned per-core slices are freshly
// allocated (the trace recorder retains whole samples); agents that
// poll per slot and need only scalars use ProbeScalars.
func (m *Machine) Probe() PowerState {
	ipc := make([]float64, len(m.Cores))
	st := m.probe(ipc)
	st.CoreIPC = ipc
	throttled := make([]bool, len(m.Cores))
	for i, c := range m.Cores {
		throttled[i] = c.Throttled()
	}
	st.Throttled = throttled
	st.Licenses = m.PMU.Licenses()
	return st
}

// ProbeScalars is Probe without the per-core slices (CoreIPC, Throttled,
// Licenses stay nil): the same electrical computation and thermal-model
// advance, but allocation-free — the form for agents that sample the
// machine every slot (e.g. the PowerT receiver polling temperature).
func (m *Machine) ProbeScalars() PowerState {
	return m.probe(nil)
}

// probe computes the scalar electrical state, accumulating per-core IPC
// into ipc when non-nil.
func (m *Machine) probe(ipc []float64) PowerState {
	now := m.Q.Now()
	vcc := m.PMU.Voltage(0, now)
	freq := m.PMU.Frequency()

	var cdyn float64
	for i, c := range m.Cores {
		busy := false
		m.actScratch = c.AppendActivity(m.actScratch[:0])
		for _, a := range m.actScratch {
			if !a.Busy {
				continue
			}
			busy = true
			cdyn += (m.Proc.Cdyn.PerClass[a.Class] - m.Proc.Cdyn.Idle) * a.CdynScale * a.RateFraction
			if ipc != nil {
				ipc[i] += a.RateFraction // relative to ~1 uop/cycle kernels
			}
		}
		if busy {
			cdyn += m.Proc.Cdyn.Idle
		} else {
			cdyn += m.Proc.Cdyn.Idle * 0.2 // clock-gated idle core
		}
	}
	// Advance thermals under the previously computed power, then refresh.
	temp := m.thermal.Advance(now, m.lastPower)
	icc := power.DynamicCurrent(cdyn, vcc, freq) + m.Proc.Leakage.Current(vcc, temp)
	watts := units.Watt(float64(vcc) * float64(icc))
	m.lastPower = watts

	return PowerState{
		T:       now,
		Vcc:     vcc,
		Vccload: m.loadLine.LoadVoltage(vcc, icc),
		Icc:     icc,
		Power:   watts,
		Freq:    freq,
		Temp:    temp,
	}
}

// Threads returns the software threads bound so far.
func (m *Machine) Threads() []*SWThread { return m.threads }
