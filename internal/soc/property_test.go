package soc

import (
	"testing"
	"testing/quick"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/units"
)

// elapsedFor runs one burst of a class on a fresh machine and returns the
// elapsed duration and the core's throttling period.
func elapsedFor(t *testing.T, cls isa.Class, iters int64, seed int64) (units.Duration, units.Duration) {
	t.Helper()
	m, err := New(Options{Processor: model.CannonLake8121U(), RequestedFreq: 2.2 * units.GHz, Cores: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var d units.Duration
	agent := AgentFunc{AgentName: "prop", Fn: func(env *Env, prev *Result) Action {
		if prev == nil {
			return Exec(isa.KernelFor(cls), iters)
		}
		d = prev.Elapsed()
		return Stop()
	}}
	if _, err := m.Bind(0, 0, agent); err != nil {
		t.Fatal(err)
	}
	m.RunFor(400 * units.Microsecond)
	if d == 0 {
		t.Fatalf("burst of %v did not finish", cls)
	}
	return d, m.Cores[0].ThrottleTime(m.Now())
}

// Property: the throttling period is monotone non-decreasing in
// instruction-class intensity — the foundation of the covert channel's
// multi-level alphabet (Key Conclusion 4).
func TestPropertyTPMonotoneInClass(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := isa.Class(int(aRaw) % isa.NumClasses)
		b := isa.Class(int(bRaw) % isa.NumClasses)
		if a > b {
			a, b = b, a
		}
		_, tpA := elapsedFor(t, a, 100, 1)
		_, tpB := elapsedFor(t, b, 100, 1)
		return tpA <= tpB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: doubling the iteration count at a fixed class increases
// elapsed time by at least the unthrottled work time of the extra
// iterations (execution never gets faster with more work).
func TestPropertyElapsedMonotoneInWork(t *testing.T) {
	f := func(clsRaw uint8, extraRaw uint8) bool {
		cls := isa.Class(int(clsRaw) % isa.NumClasses)
		base := int64(50)
		extra := int64(extraRaw%100) + 1
		d1, _ := elapsedFor(t, cls, base, 2)
		d2, _ := elapsedFor(t, cls, base+extra, 2)
		return d2 > d1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: retired uops equal iterations × uops/iter exactly, regardless
// of throttling, SMT sharing, or noise (work is conserved).
func TestPropertyWorkConservation(t *testing.T) {
	f := func(clsRaw uint8, itersRaw uint8, seedRaw uint8) bool {
		cls := isa.Class(int(clsRaw) % isa.NumClasses)
		iters := int64(itersRaw%200) + 1
		m, err := New(Options{
			Processor:     model.CannonLake8121U(),
			RequestedFreq: 2.2 * units.GHz,
			Noise:         WithRates(float64(seedRaw)*10, 50),
			Seed:          int64(seedRaw),
		})
		if err != nil {
			return false
		}
		var got float64
		agent := AgentFunc{AgentName: "wc", Fn: func(env *Env, prev *Result) Action {
			if prev == nil {
				return Exec(isa.KernelFor(cls), iters)
			}
			got = prev.Counters.RetiredUops
			return Stop()
		}}
		if _, err := m.Bind(0, 0, agent); err != nil {
			return false
		}
		m.RunFor(2 * units.Millisecond)
		want := float64(iters) * float64(isa.KernelFor(cls).UopsPerIter)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		return diff < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: voltage never exceeds the worst-case (secure-mode) level and
// never drops below the V/F baseline, no matter what runs.
func TestPropertyVoltageBounded(t *testing.T) {
	f := func(schedule []uint8) bool {
		proc := model.CannonLake8121U()
		m, err := New(Options{Processor: proc, RequestedFreq: 2.2 * units.GHz, Seed: 9})
		if err != nil {
			return false
		}
		base := proc.VF.Voltage(2.2 * units.GHz)
		max := base + proc.Guardband.Max(2, 2.2*units.GHz)
		idx := 0
		agent := AgentFunc{AgentName: "vb", Fn: func(env *Env, prev *Result) Action {
			if idx >= len(schedule) || idx >= 6 {
				return Stop()
			}
			cls := isa.Class(int(schedule[idx]) % isa.NumClasses)
			idx++
			return Exec(isa.KernelFor(cls), 60)
		}}
		if _, err := m.Bind(0, 0, agent); err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			m.RunFor(25 * units.Microsecond)
			v := m.PMU.Voltage(0, m.Now())
			if v < base-1e-9 || v > max+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
