package soc

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/uarch"
	"ichannels/internal/units"
)

// ActionKind enumerates what a software context can ask its hardware
// thread to do next.
type ActionKind int

const (
	// ActStop ends the agent; the hardware thread goes idle for good.
	ActStop ActionKind = iota
	// ActExec runs a kernel for a number of iterations.
	ActExec
	// ActSpinUntil busy-waits (an rdtsc polling loop) until an absolute
	// simulated time; this is the wall-clock synchronization primitive
	// the cross-core channel uses (paper §4.3.3).
	ActSpinUntil
	// ActIdleFor parks the thread off-core (e.g. blocked in the OS) for
	// a duration; it does not occupy pipeline resources.
	ActIdleFor
)

func (k ActionKind) String() string {
	switch k {
	case ActStop:
		return "stop"
	case ActExec:
		return "exec"
	case ActSpinUntil:
		return "spin"
	case ActIdleFor:
		return "idle"
	default:
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
}

// Action is one unit of behaviour an agent requests.
type Action struct {
	Kind   ActionKind
	Kernel isa.Kernel
	Iters  int64
	Until  units.Time
	Dur    units.Duration
}

// Exec builds an action running iters iterations of k.
func Exec(k isa.Kernel, iters int64) Action {
	return Action{Kind: ActExec, Kernel: k, Iters: iters}
}

// SpinUntil builds a busy-wait action ending at absolute time t.
func SpinUntil(t units.Time) Action { return Action{Kind: ActSpinUntil, Until: t} }

// IdleFor builds an off-core idle action of duration d.
func IdleFor(d units.Duration) Action { return Action{Kind: ActIdleFor, Dur: d} }

// Stop ends the agent.
func Stop() Action { return Action{Kind: ActStop} }

// Result describes a completed action, with the timing and counter data a
// real attacker would gather with rdtsc and perf counters.
type Result struct {
	Action   Action
	Start    units.Time
	End      units.Time
	StartTSC int64
	EndTSC   int64
	// Counters is the per-thread performance-counter delta over the
	// action (meaningful for ActExec and ActSpinUntil).
	Counters uarch.Counters
}

// Elapsed returns the action's wall-clock duration.
func (r Result) Elapsed() units.Duration { return r.End.Sub(r.Start) }

// ElapsedTSC returns the rdtsc-style cycle count of the action.
func (r Result) ElapsedTSC() int64 { return r.EndTSC - r.StartTSC }

// Env gives an agent its execution context: identity, the clock it can
// legitimately read (TSC), and the machine's random source for jitter.
type Env struct {
	M      *Machine
	CoreID int
	Slot   int
}

// Now returns the current simulated time (an agent would obtain this by
// converting rdtsc; both are exposed for convenience).
func (e *Env) Now() units.Time { return e.M.Now() }

// TSC returns the current timestamp-counter value.
func (e *Env) TSC() int64 { return e.M.TSC(e.M.Now()) }

// Agent is a reactive software context: each time its previous action
// completes, Next is asked for the following one. prev is nil on the first
// call and is only valid for the duration of that call — the machine
// reuses the Result storage for the thread's next transition, so an
// agent that needs a field later must copy the value out. Agents run
// entirely inside the deterministic event loop.
type Agent interface {
	Name() string
	Next(env *Env, prev *Result) Action
}

// SWThread binds an agent to a hardware thread slot.
type SWThread struct {
	m       *Machine
	env     Env
	agent   Agent
	stopped bool

	// In-flight action state and the reused Result. One hardware thread
	// runs one action at a time, so a single pending slot per thread
	// suffices; binding the completion callbacks once per thread keeps
	// the agent transition loop — the single hottest path of the
	// simulator — free of per-step closure and Result allocations.
	pendAct    Action
	pendStart  units.Time
	pendTSC    int64
	pendCtr    uarch.Counters
	res        Result
	onDone     func(units.Time) // completes ActExec / ActSpinUntil
	onIdleDone func(units.Time) // completes ActIdleFor
	idleName   string
}

// Agent returns the bound agent.
func (t *SWThread) Agent() Agent { return t.agent }

// Stopped reports whether the agent has returned ActStop.
func (t *SWThread) Stopped() bool { return t.stopped }

// CoreID returns the core the thread is bound to.
func (t *SWThread) CoreID() int { return t.env.CoreID }

// Slot returns the hardware thread slot.
func (t *SWThread) Slot() int { return t.env.Slot }

// Bind attaches an agent to (coreID, slot) and schedules its first step at
// the current simulated time. Each hardware thread slot can host at most
// one agent.
func (m *Machine) Bind(coreID, slot int, a Agent) (*SWThread, error) {
	if coreID < 0 || coreID >= len(m.Cores) {
		return nil, fmt.Errorf("soc: no core %d", coreID)
	}
	if slot < 0 || slot >= m.Proc.SMTWays {
		return nil, fmt.Errorf("soc: core %d has no SMT slot %d", coreID, slot)
	}
	// m.threads holds only live threads, so this duplicate-slot check is
	// O(bound slots) no matter how many agents have come and gone — it
	// used to scan every thread ever bound, which made long machine
	// reuse (thousands of transmissions on one machine) quadratic.
	for _, t := range m.threads {
		if t.env.CoreID == coreID && t.env.Slot == slot {
			return nil, fmt.Errorf("soc: core %d slot %d already bound to %q", coreID, slot, t.agent.Name())
		}
	}
	if a == nil {
		return nil, fmt.Errorf("soc: nil agent")
	}
	t := m.newThread()
	t.agent = a
	t.env = Env{M: m, CoreID: coreID, Slot: slot}
	t.idleName = "soc.idle." + a.Name()
	m.threads = append(m.threads, t)
	m.Q.After(0, "soc.bind."+a.Name(), func(units.Time) { m.step(t, nil) })
	return t, nil
}

// newThread takes a recycled SWThread from the free list (keeping its
// prebound completion callbacks) or allocates one.
func (m *Machine) newThread() *SWThread {
	if n := len(m.freeTh); n > 0 {
		t := m.freeTh[n-1]
		m.freeTh[n-1] = nil
		m.freeTh = m.freeTh[:n-1]
		t.stopped = false
		t.pendAct = Action{}
		t.pendStart = 0
		t.pendTSC = 0
		t.pendCtr = uarch.Counters{}
		t.res = Result{}
		return t
	}
	t := &SWThread{m: m}
	t.onDone = t.completeMeasured
	t.onIdleDone = t.completeIdle
	return t
}

// retire removes a stopped thread from the live list, preserving bind
// order for the remaining threads (the noise injector's victim draw
// depends on that order). The object itself is recycled at the next
// machine Reset, not immediately: callers may hold the *SWThread and
// poll Stopped() after the agent exits.
func (m *Machine) retire(t *SWThread) {
	for i, lt := range m.threads {
		if lt == t {
			copy(m.threads[i:], m.threads[i+1:])
			m.threads[len(m.threads)-1] = nil
			m.threads = m.threads[:len(m.threads)-1]
			break
		}
	}
	m.retired = append(m.retired, t)
}

// completeMeasured finishes an ActExec/ActSpinUntil action: fill the
// thread's reused Result from the pending state and step the agent.
func (t *SWThread) completeMeasured(end units.Time) {
	m := t.m
	core := m.Cores[t.env.CoreID]
	t.res = Result{
		Action: t.pendAct, Start: t.pendStart, End: end,
		StartTSC: t.pendTSC, EndTSC: m.ReadTSC(end),
		Counters: core.Counters(t.env.Slot, end).Sub(t.pendCtr),
	}
	m.step(t, &t.res)
}

// completeIdle finishes an ActIdleFor action (no counters: the thread
// was off-core).
func (t *SWThread) completeIdle(end units.Time) {
	m := t.m
	t.res = Result{
		Action: t.pendAct, Start: t.pendStart, End: end,
		StartTSC: t.pendTSC, EndTSC: m.TSC(end),
	}
	m.step(t, &t.res)
}

// step drives one agent transition: deliver the previous result, obtain
// the next action, and submit it to the core.
func (m *Machine) step(t *SWThread, prev *Result) {
	if t.stopped {
		return
	}
	act := t.agent.Next(&t.env, prev)
	core := m.Cores[t.env.CoreID]
	now := m.Q.Now()
	switch act.Kind {
	case ActStop:
		t.stopped = true
		m.retire(t)

	case ActExec:
		t.pendAct, t.pendStart = act, now
		t.pendCtr = core.Counters(t.env.Slot, now)
		t.pendTSC = m.ReadTSC(now)
		core.Start(t.env.Slot, act.Kernel, act.Iters, t.onDone)

	case ActSpinUntil:
		t.pendAct, t.pendStart = act, now
		t.pendCtr = core.Counters(t.env.Slot, now)
		t.pendTSC = m.ReadTSC(now)
		core.Spin(t.env.Slot, act.Until, t.onDone)

	case ActIdleFor:
		t.pendAct, t.pendStart = act, now
		t.pendTSC = m.TSC(now)
		m.Q.After(act.Dur, t.idleName, t.onIdleDone)

	default:
		panic(fmt.Sprintf("soc: agent %q returned invalid action kind %v", t.agent.Name(), act.Kind))
	}
}

// AgentFunc adapts a function to the Agent interface.
type AgentFunc struct {
	AgentName string
	Fn        func(env *Env, prev *Result) Action
}

// Name implements Agent.
func (a AgentFunc) Name() string { return a.AgentName }

// Next implements Agent.
func (a AgentFunc) Next(env *Env, prev *Result) Action { return a.Fn(env, prev) }
