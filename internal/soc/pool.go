package soc

import "sync"

// Pool recycles Machines across runs. Building a machine costs far more
// than most short simulations run on it — cores with prebound callbacks,
// PMU slices, regulators, and the event queue's node pool are all
// steady-state-allocation-free once warm — so sweep workers acquire a
// machine per cell and release it back instead of rebuilding the SoC
// every time. Reset guarantees a recycled machine replays byte-identically
// to a fresh one, so pooling is invisible in the output.
//
// Machines pool by shape (processor profile, core count, regulator
// topology): everything else — seed, noise, mitigation knobs, requested
// frequency — is re-applied by Reset. A Reset that cannot honour the new
// options (topology change, validation failure) falls back to New and the
// stale machine is discarded, so key collisions cost performance, never
// correctness.
//
// A nil *Pool is valid and simply constructs machines, so call sites can
// thread an optional pool without branching.
type Pool struct {
	mu    sync.Mutex
	idle  map[poolKey][]*Machine
	stats PoolStats
}

// PoolStats counts pool activity: how many machines were built from
// scratch and how many runs reused a pooled one.
type PoolStats struct {
	Constructed uint64 `json:"constructed"`
	Reused      uint64 `json:"reused"`
}

type poolKey struct {
	proc      string
	cores     int
	perCoreVR bool
}

// maxIdlePerKey bounds how many idle machines one shape retains; beyond
// it, released machines are dropped for the garbage collector. Workers
// hold at most one machine each, so this comfortably covers any sane
// parallelism.
const maxIdlePerKey = 32

func keyOf(opts Options) poolKey {
	ncores := opts.Cores
	if ncores == 0 {
		ncores = opts.Processor.Cores
	}
	return poolKey{proc: opts.Processor.Name, cores: ncores, perCoreVR: opts.PerCoreVR}
}

// NewPool creates an empty machine pool. Safe for concurrent use.
func NewPool() *Pool {
	return &Pool{idle: make(map[poolKey][]*Machine)}
}

// Acquire returns a machine configured per opts: a recycled one when a
// shape-compatible machine is idle, a fresh one otherwise. The caller owns
// it until Release.
func (p *Pool) Acquire(opts Options) (*Machine, error) {
	if p == nil {
		return New(opts)
	}
	key := keyOf(opts)
	p.mu.Lock()
	var m *Machine
	if list := p.idle[key]; len(list) > 0 {
		n := len(list) - 1
		m = list[n]
		list[n] = nil
		p.idle[key] = list[:n]
	}
	p.mu.Unlock()
	if m != nil {
		if err := m.Reset(opts); err == nil {
			p.mu.Lock()
			p.stats.Reused++
			p.mu.Unlock()
			return m, nil
		}
		// Shape mismatch under a colliding key (or a validation failure
		// Reset detected mid-way): discard the machine and build fresh.
	}
	m, err := New(opts)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.stats.Constructed++
	p.mu.Unlock()
	return m, nil
}

// Release returns a machine to the pool for a later Acquire. The caller
// must not touch it afterwards. Releasing to a nil pool (or releasing a
// nil machine) is a no-op.
func (p *Pool) Release(m *Machine) {
	if p == nil || m == nil {
		return
	}
	key := keyOf(m.opts)
	p.mu.Lock()
	if len(p.idle[key]) < maxIdlePerKey {
		p.idle[key] = append(p.idle[key], m)
	}
	p.mu.Unlock()
}

// Stats returns a snapshot of the pool counters. Valid on a nil pool
// (all zeros).
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
