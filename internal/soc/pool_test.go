package soc

import (
	"fmt"
	"testing"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/units"
)

// signatureOpts is a deliberately feature-dense configuration: TSC jitter
// and OS noise exercise the machine rng, AVX-512 work exercises power
// gates, licenses, throttling, and the license-hysteresis decay events.
func signatureOpts(seed int64) Options {
	return Options{
		Processor:       model.CannonLake8121U(),
		Noise:           WithRates(5000, 500),
		TSCJitterCycles: 150,
		Seed:            seed,
	}
}

// runSignature drives a multi-phase workload on two threads of core 0 and
// returns a deterministic transcript of everything an experiment could
// observe: every action result, periodic electrical probes, and the final
// PMU counters.
func runSignature(t *testing.T, m *Machine) string {
	t.Helper()
	var sig []Result
	phase := 0
	tx := AgentFunc{AgentName: "tx", Fn: func(env *Env, prev *Result) Action {
		if prev != nil {
			sig = append(sig, *prev)
		}
		phase++
		switch phase {
		case 1:
			return Exec(isa.Loop512Heavy, 2000) // license request + gate wake
		case 2:
			return IdleFor(700 * units.Microsecond) // let the license decay
		case 3:
			return Exec(isa.Loop512Heavy, 500) // pay the wake again
		case 4:
			return SpinUntil(env.Now().Add(20 * units.Microsecond))
		default:
			return Stop()
		}
	}}
	rxDone := 0
	rx := AgentFunc{AgentName: "rx", Fn: func(env *Env, prev *Result) Action {
		if prev != nil {
			sig = append(sig, *prev)
		}
		rxDone++
		if rxDone > 40 {
			return Stop()
		}
		return Exec(isa.Loop64b, 200)
	}}
	if _, err := m.Bind(0, 0, tx); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Bind(0, 1, rx); err != nil {
		t.Fatal(err)
	}
	var probes []PowerState
	for i := 0; i < 20; i++ {
		m.RunFor(100 * units.Microsecond)
		probes = append(probes, m.ProbeScalars())
	}
	return fmt.Sprintf("results=%+v probes=%+v pmu=%+v time=%v fired=%d",
		sig, probes, m.PMU.Stats(), m.Now(), m.Q.Fired())
}

// TestResetReplaysByteIdentical is the pooling determinism contract: a
// Reset machine must produce exactly the observable transcript of a fresh
// machine with the same options — including the rng-driven noise and
// jitter draws — for its own options, for different options, and back.
func TestResetReplaysByteIdentical(t *testing.T) {
	optsA := signatureOpts(42)
	optsB := signatureOpts(1234)
	optsB.PerThreadThrottle = true
	optsB.RequestedFreq = 2 * units.GHz

	fresh := func(o Options) string {
		m, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		return runSignature(t, m)
	}
	wantA, wantB := fresh(optsA), fresh(optsB)
	if wantA == wantB {
		t.Fatal("signature workload cannot tell optsA from optsB; test is vacuous")
	}

	m, err := New(optsA)
	if err != nil {
		t.Fatal(err)
	}
	_ = runSignature(t, m) // dirty the machine
	for i, step := range []struct {
		opts Options
		want string
	}{
		{optsA, wantA}, // reset to same options
		{optsB, wantB}, // reset across mitigation/frequency/seed changes
		{optsA, wantA}, // and back
	} {
		if err := m.Reset(step.opts); err != nil {
			t.Fatalf("reset %d: %v", i, err)
		}
		if got := runSignature(t, m); got != step.want {
			t.Fatalf("reset %d: transcript diverged from fresh machine\n got: %.400s\nwant: %.400s", i, got, step.want)
		}
	}
}

// TestResetSecureMode covers the settle-before-time-zero path.
func TestResetSecureMode(t *testing.T) {
	opts := signatureOpts(7)
	opts.SecureMode = true
	m1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := runSignature(t, m1)

	m2, err := New(signatureOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	_ = runSignature(t, m2)
	if err := m2.Reset(opts); err != nil {
		t.Fatal(err)
	}
	if m2.Now() == 0 {
		t.Fatal("secure-mode Reset should have advanced past the guardband settle")
	}
	if got := runSignature(t, m2); got != want {
		t.Fatalf("secure-mode reset transcript diverged\n got: %.400s\nwant: %.400s", got, want)
	}
}

func TestResetRejectsTopologyChange(t *testing.T) {
	m, err := New(signatureOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	bad := signatureOpts(1)
	bad.Cores = 1
	if err := m.Reset(bad); err == nil {
		t.Fatal("Reset accepted a core-count change")
	}
}

func TestPoolReusesByShape(t *testing.T) {
	p := NewPool()
	optsA := signatureOpts(3)
	m1, err := p.Acquire(optsA)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(m1)
	optsA2 := signatureOpts(99) // same shape, different seed
	m2, err := p.Acquire(optsA2)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Fatal("same-shape Acquire did not reuse the pooled machine")
	}
	// Different shape must construct.
	optsB := signatureOpts(3)
	optsB.Cores = 1
	m3, err := p.Acquire(optsB)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Fatal("different-shape Acquire reused an incompatible machine")
	}
	st := p.Stats()
	if st.Constructed != 2 || st.Reused != 1 {
		t.Fatalf("stats = %+v, want 2 constructed / 1 reused", st)
	}
	// A pooled run must match a fresh machine's transcript.
	p.Release(m2)
	m4, err := p.Acquire(optsA)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(optsA)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := runSignature(t, m4), runSignature(t, fresh); got != want {
		t.Fatalf("pooled transcript diverged from fresh\n got: %.400s\nwant: %.400s", got, want)
	}
}

func TestNilPoolConstructs(t *testing.T) {
	var p *Pool
	m, err := p.Acquire(signatureOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil pool returned nil machine")
	}
	p.Release(m) // must not panic
	if st := p.Stats(); st != (PoolStats{}) {
		t.Fatalf("nil pool stats = %+v", st)
	}
}
