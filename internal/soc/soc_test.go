package soc

import (
	"testing"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/units"
)

func testMachine(t *testing.T, opts Options) *Machine {
	t.Helper()
	if opts.Processor.Name == "" {
		opts.Processor = model.CannonLake8121U()
	}
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMachineDefaults(t *testing.T) {
	m := testMachine(t, Options{Seed: 1})
	if len(m.Cores) != 2 {
		t.Fatalf("cores = %d", len(m.Cores))
	}
	if m.PMU.Frequency() != m.Proc.BaseFreq {
		t.Fatalf("initial frequency %v", m.PMU.Frequency())
	}
	if m.Now() != 0 {
		t.Fatalf("time %v", m.Now())
	}
}

func TestNewMachineValidation(t *testing.T) {
	p := model.CannonLake8121U()
	if _, err := New(Options{Processor: p, Cores: 5}); err == nil {
		t.Fatal("too many cores accepted")
	}
	if _, err := New(Options{Processor: p, RequestedFreq: 9 * units.GHz}); err == nil {
		t.Fatal("frequency above Turbo accepted")
	}
	var empty model.Processor
	if _, err := New(Options{Processor: empty}); err == nil {
		t.Fatal("empty profile accepted")
	}
}

func TestTSCInvariant(t *testing.T) {
	m := testMachine(t, Options{Seed: 1})
	c1 := m.TSC(units.Time(units.Microsecond))
	want := int64(float64(m.Proc.TSCFreq) * 1e-6)
	if c1 != want {
		t.Fatalf("TSC(1µs) = %d, want %d", c1, want)
	}
	if m.CyclesOf(units.Microsecond) != want {
		t.Fatalf("CyclesOf mismatch")
	}
}

func TestReadTSCJitterBounds(t *testing.T) {
	m := testMachine(t, Options{Seed: 1, TSCJitterCycles: 100})
	tm := units.Time(50 * units.Microsecond)
	base := m.TSC(tm)
	for i := 0; i < 200; i++ {
		got := m.ReadTSC(tm)
		if got < base || got >= base+100 {
			t.Fatalf("jittered read %d outside [%d, %d)", got, base, base+100)
		}
	}
}

func TestAgentSequencing(t *testing.T) {
	m := testMachine(t, Options{Seed: 1})
	var results []ActionKind
	agent := AgentFunc{AgentName: "seq", Fn: func(env *Env, prev *Result) Action {
		if prev != nil {
			results = append(results, prev.Action.Kind)
		}
		switch len(results) {
		case 0:
			if prev != nil {
				t.Error("first call must have nil prev")
			}
			return Exec(isa.Loop64b, 10)
		case 1:
			return SpinUntil(env.Now().Add(2 * units.Microsecond))
		case 2:
			return IdleFor(3 * units.Microsecond)
		default:
			return Stop()
		}
	}}
	if _, err := m.Bind(0, 0, agent); err != nil {
		t.Fatal(err)
	}
	m.RunFor(200 * units.Microsecond)
	if len(results) != 3 || results[0] != ActExec || results[1] != ActSpinUntil || results[2] != ActIdleFor {
		t.Fatalf("results = %v", results)
	}
}

func TestResultTimings(t *testing.T) {
	m := testMachine(t, Options{Seed: 1})
	var res *Result
	agent := AgentFunc{AgentName: "timing", Fn: func(env *Env, prev *Result) Action {
		if prev == nil {
			return Exec(isa.Loop64b, 100) // 10000 cycles @2.2GHz ≈ 4.545 µs
		}
		res = prev
		return Stop()
	}}
	if _, err := m.Bind(0, 0, agent); err != nil {
		t.Fatal(err)
	}
	m.RunFor(100 * units.Microsecond)
	if res == nil {
		t.Fatal("no result")
	}
	wantUS := 10000 / 2.2e9 * 1e6
	if got := res.Elapsed().Microseconds(); got < wantUS*0.99 || got > wantUS*1.01 {
		t.Fatalf("elapsed %g µs, want ≈%g", got, wantUS)
	}
	if res.ElapsedTSC() <= 0 {
		t.Fatal("TSC delta must be positive")
	}
	if res.Counters.RetiredUops < 19999 || res.Counters.RetiredUops > 20001 {
		t.Fatalf("retired uops = %g", res.Counters.RetiredUops)
	}
}

func TestBindConflicts(t *testing.T) {
	m := testMachine(t, Options{Seed: 1})
	idle := AgentFunc{AgentName: "idle", Fn: func(env *Env, prev *Result) Action {
		if prev == nil {
			return IdleFor(50 * units.Microsecond)
		}
		return Stop()
	}}
	if _, err := m.Bind(0, 0, idle); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Bind(0, 0, idle); err == nil {
		t.Fatal("double bind accepted")
	}
	if _, err := m.Bind(9, 0, idle); err == nil {
		t.Fatal("bad core accepted")
	}
	if _, err := m.Bind(0, 5, idle); err == nil {
		t.Fatal("bad slot accepted")
	}
	if _, err := m.Bind(0, 0, nil); err == nil {
		t.Fatal("nil agent accepted")
	}
	// After the agent stops, the slot is reusable.
	m.RunFor(100 * units.Microsecond)
	if _, err := m.Bind(0, 0, idle); err != nil {
		t.Fatalf("rebind after stop failed: %v", err)
	}
}

func TestNoSMTSlotOnCoffeeLake(t *testing.T) {
	m := testMachine(t, Options{Processor: model.CoffeeLake9700K(), Cores: 2, Seed: 1})
	idle := AgentFunc{AgentName: "x", Fn: func(env *Env, prev *Result) Action { return Stop() }}
	if _, err := m.Bind(0, 1, idle); err == nil {
		t.Fatal("Coffee Lake has no SMT; slot 1 must be rejected")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		m := testMachine(t, Options{Seed: 77, Noise: WithRates(2000, 500), TSCJitterCycles: 100})
		var elapsed []float64
		agent := AgentFunc{AgentName: "d", Fn: func(env *Env, prev *Result) Action {
			if prev != nil {
				elapsed = append(elapsed, float64(prev.ElapsedTSC()))
			}
			if len(elapsed) >= 20 {
				return Stop()
			}
			return Exec(isa.Loop256Heavy, 50)
		}}
		if _, err := m.Bind(0, 0, agent); err != nil {
			t.Fatal(err)
		}
		m.RunFor(3 * units.Millisecond)
		return elapsed
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestNoiseInjectionSlowsWork(t *testing.T) {
	elapsed := func(noise NoiseConfig) units.Duration {
		m := testMachine(t, Options{Seed: 5, Noise: noise})
		var d units.Duration
		agent := AgentFunc{AgentName: "w", Fn: func(env *Env, prev *Result) Action {
			if prev == nil {
				return Exec(isa.Loop64b, 20000) // ≈1.8 ms of work
			}
			d = prev.Elapsed()
			return Stop()
		}}
		if _, err := m.Bind(0, 0, agent); err != nil {
			t.Fatal(err)
		}
		m.RunFor(10 * units.Millisecond)
		return d
	}
	quiet := elapsed(NoiseConfig{})
	noisy := elapsed(WithRates(5000, 1000))
	if noisy <= quiet {
		t.Fatalf("noise did not slow execution: %v vs %v", noisy, quiet)
	}
}

func TestProbeIdleAndBusy(t *testing.T) {
	m := testMachine(t, Options{Seed: 1})
	idle := m.Probe()
	if idle.Icc <= 0 {
		t.Fatal("idle machine must still leak")
	}
	if idle.Vccload >= idle.Vcc {
		t.Fatal("load-line droop missing")
	}
	busyDone := false
	agent := AgentFunc{AgentName: "p", Fn: func(env *Env, prev *Result) Action {
		if prev == nil {
			return Exec(isa.Loop256Heavy, 2000)
		}
		busyDone = true
		return Stop()
	}}
	if _, err := m.Bind(0, 0, agent); err != nil {
		t.Fatal(err)
	}
	m.RunFor(100 * units.Microsecond)
	busy := m.Probe()
	if busyDone {
		t.Fatal("worker finished too early for the probe")
	}
	if busy.Icc <= idle.Icc {
		t.Fatalf("busy Icc %v not above idle %v", busy.Icc, idle.Icc)
	}
	if busy.CoreIPC[0] <= 0 {
		t.Fatal("busy core must report IPC")
	}
	if len(busy.Licenses) != 2 {
		t.Fatalf("licenses = %v", busy.Licenses)
	}
}

func TestSecureModeMachineSettled(t *testing.T) {
	m := testMachine(t, Options{Seed: 1, SecureMode: true})
	base := m.Proc.VF.Voltage(m.PMU.Frequency())
	if v := m.PMU.Voltage(0, m.Now()); v <= base {
		t.Fatalf("secure-mode machine must start above baseline: %v vs %v", v, base)
	}
}

func TestActionKindStrings(t *testing.T) {
	if ActExec.String() != "exec" || ActStop.String() != "stop" ||
		ActSpinUntil.String() != "spin" || ActIdleFor.String() != "idle" {
		t.Fatal("action kind names wrong")
	}
	if ActionKind(42).String() != "ActionKind(42)" {
		t.Fatal("unknown kind formatting")
	}
}
