package soc

import (
	"math"

	"ichannels/internal/units"
)

// NoiseConfig describes OS noise injection: interrupts and context
// switches with Poisson arrivals, matching the system-noise model of the
// paper's §6.3 (interrupt latencies of a few µs, context switches of a few
// tens of µs, at rates from a few to thousands of events per second).
type NoiseConfig struct {
	// InterruptRate is the machine-wide interrupt arrival rate, events
	// per second. Zero disables interrupts.
	InterruptRate float64
	// InterruptMin/Max bound the uniformly drawn interrupt service time.
	InterruptMin, InterruptMax units.Duration

	// CtxSwitchRate is the context-switch arrival rate, events/second.
	CtxSwitchRate float64
	// CtxSwitchMin/Max bound the uniformly drawn switch-out duration.
	CtxSwitchMin, CtxSwitchMax units.Duration
}

// DefaultInterrupt returns typical interrupt service bounds (paper §6.3
// cites a few microseconds).
func DefaultInterrupt() (units.Duration, units.Duration) {
	return 2 * units.Microsecond, 8 * units.Microsecond
}

// DefaultCtxSwitch returns typical context-switch bounds (paper §6.3 cites
// a few tens of microseconds).
func DefaultCtxSwitch() (units.Duration, units.Duration) {
	return 10 * units.Microsecond, 30 * units.Microsecond
}

// WithRates builds a NoiseConfig with default durations at the given
// event rates.
func WithRates(interruptsPerSec, ctxSwitchesPerSec float64) NoiseConfig {
	imin, imax := DefaultInterrupt()
	cmin, cmax := DefaultCtxSwitch()
	return NoiseConfig{
		InterruptRate: interruptsPerSec, InterruptMin: imin, InterruptMax: imax,
		CtxSwitchRate: ctxSwitchesPerSec, CtxSwitchMin: cmin, CtxSwitchMax: cmax,
	}
}

type noiseInjector struct {
	m   *Machine
	cfg NoiseConfig
}

func newNoiseInjector(m *Machine, cfg NoiseConfig) *noiseInjector {
	n := &noiseInjector{m: m, cfg: cfg}
	if cfg.InterruptRate > 0 {
		n.scheduleNext(cfg.InterruptRate, "soc.noise.irq", cfg.InterruptMin, cfg.InterruptMax)
	}
	if cfg.CtxSwitchRate > 0 {
		n.scheduleNext(cfg.CtxSwitchRate, "soc.noise.ctx", cfg.CtxSwitchMin, cfg.CtxSwitchMax)
	}
	return n
}

// scheduleNext arms the next Poisson arrival for one event type.
func (n *noiseInjector) scheduleNext(rate float64, name string, dmin, dmax units.Duration) {
	gap := units.FromSeconds(n.exp(1 / rate))
	if gap < 1 {
		gap = 1
	}
	n.m.Q.After(gap, name, func(units.Time) {
		n.fire(dmin, dmax)
		n.scheduleNext(rate, name, dmin, dmax)
	})
}

// fire preempts one randomly chosen bound hardware thread for a uniformly
// drawn service time. m.threads holds exactly the live threads in bind
// order — the same candidate list the old scan over all ever-bound
// threads produced, so the victim draw sequence is unchanged — without
// building a candidate slice per arrival.
func (n *noiseInjector) fire(dmin, dmax units.Duration) {
	live := n.m.threads
	if len(live) == 0 {
		return
	}
	victim := live[n.m.Rand().Intn(len(live))]
	dur := dmin
	if dmax > dmin {
		dur = dmin + units.Duration(n.m.Rand().Int63n(int64(dmax-dmin)))
	}
	n.m.Cores[victim.env.CoreID].Preempt(victim.env.Slot, dur)
}

// exp draws an exponential variate with the given mean (seconds).
func (n *noiseInjector) exp(mean float64) float64 {
	u := n.m.Rand().Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(u)
}
