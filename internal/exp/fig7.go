package exp

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/trace"
	"ichannels/internal/units"
)

func init() {
	register("fig7a", "§5.3", "Vcc/Icc vs. design limits at Turbo (desktop & mobile)", Fig7a)
	register("fig7b", "§5.3", "freq/Vcc/Icc/temperature across Non-AVX→AVX2→AVX512 phases", Fig7b)
}

// projected computes the operating point a workload class *would* demand
// at frequency f if the protection mechanisms did not intervene — the
// paper's green-bordered projected bars in Fig. 7(a).
func projected(p model.Processor, cls isa.Class, f units.Hertz, cores int) (units.Volt, units.Ampere) {
	classes := make([]isa.Class, cores)
	for i := range classes {
		classes[i] = cls
	}
	v := p.VF.Voltage(f) + p.Guardband.Sum(classes, f)
	var cdyn float64
	for range classes {
		cdyn += p.Cdyn.PerClass[cls]
	}
	icc := units.Ampere(cdyn*float64(v)*float64(f)) + p.Leakage.Current(v, 70)
	return v, icc
}

// fig7aCase runs one (system, frequency, workload) cell: it reports the
// projected Vcc/Icc at the requested Turbo frequency and the frequency the
// machine actually settles at once the protection mechanisms react.
func fig7aCase(p model.Processor, f units.Hertz, cls isa.Class, cores int, seed int64) (vProj units.Volt, iProj units.Ampere, settled units.Hertz, err error) {
	vProj, iProj = projected(p, cls, f, cores)
	m, err := newMachine(p, f, cores, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	for c := 0; c < cores; c++ {
		shot := &oneShot{label: "fig7a", start: units.Time(5 * units.Microsecond), k: isa.KernelFor(cls), iters: 30000}
		if _, err := m.Bind(c, 0, shot); err != nil {
			return 0, 0, 0, err
		}
	}
	m.RunFor(3 * units.Millisecond)
	return vProj, iProj, m.PMU.Frequency(), nil
}

// Fig7a reproduces Fig. 7(a): on the desktop part (i7-9700K) AVX2 at
// 4.9 GHz would exceed Vccmax (1.27 V) — the processor retreats to
// 4.8 GHz — while on the mobile part (i3-8121U) AVX2 at 3.1 GHz would
// exceed Iccmax (29 A) and the processor retreats toward 2.2 GHz.
// Non-AVX code runs at the full Turbo frequency on both.
func Fig7a(seed int64) (*Report, error) {
	rep := NewReport("fig7a", "Vcc and Icc vs. design limits at Turbo frequencies")
	tab := rep.Table("projected demand at requested Turbo vs. settled frequency",
		"system", "req freq", "workload", "proj Vcc (V)", "proj Icc (A)", "limit", "violated", "settled freq")

	type cell struct {
		p     model.Processor
		f     units.Hertz
		cls   isa.Class
		cores int
		tag   string
	}
	cfl, cnl := model.CoffeeLake9700K(), model.CannonLake8121U()
	cases := []cell{
		{cfl, 4.9 * units.GHz, isa.Scalar64, 1, "desktop non-AVX"},
		{cfl, 4.9 * units.GHz, isa.Vec256Heavy, 1, "desktop AVX2"},
		{cfl, 4.8 * units.GHz, isa.Vec256Heavy, 1, "desktop AVX2"},
		{cnl, 3.1 * units.GHz, isa.Scalar64, 2, "mobile non-AVX"},
		{cnl, 3.1 * units.GHz, isa.Vec256Heavy, 2, "mobile AVX2"},
		{cnl, 2.2 * units.GHz, isa.Vec256Heavy, 2, "mobile AVX2"},
	}
	for i, c := range cases {
		vp, ip, settled, err := fig7aCase(c.p, c.f, c.cls, c.cores, seed+int64(i))
		if err != nil {
			return nil, err
		}
		limit, violated := "-", "no"
		if vp > c.p.Limits.VccMax {
			limit = fmt.Sprintf("Vccmax %.2fV", float64(c.p.Limits.VccMax))
			violated = "yes"
		}
		if ip > c.p.Limits.IccMax {
			limit = fmt.Sprintf("Iccmax %.0fA", float64(c.p.Limits.IccMax))
			violated = "yes"
		}
		tab.AddRow(c.tag, c.f.String(), c.cls.String(), f3(float64(vp)), f1(float64(ip)), limit, violated,
			settled.String())
		key := fmt.Sprintf("case%d_settled_ghz", i)
		rep.Metric(key, settled.GHzF())
	}
	rep.Note("paper: desktop AVX2@4.9GHz violates Vccmax=1.27V (OK at 4.8); mobile AVX2@3.1GHz violates Iccmax=29A (OK at 2.2)")
	return rep, nil
}

// Fig7b reproduces Fig. 7(b): the mobile part at its Turbo request runs
// three phases (Non-AVX → AVX2 → AVX512) on both cores. Each PHI phase
// settles at a lower frequency to respect Iccmax, the voltage follows the
// V/F curve (well below Vccmax), and the junction temperature stays far
// under Tjmax — proof the throttling is current- not thermally-driven.
func Fig7b(seed int64) (*Report, error) {
	p := model.CannonLake8121U()
	m, err := newMachine(p, 3.1*units.GHz, 2, seed)
	if err != nil {
		return nil, err
	}
	rec, err := trace.NewRecorder(m, 2*units.Millisecond)
	if err != nil {
		return nil, err
	}
	rec.Start()

	// Three phases of 1.8 s each on both cores (paper: ~6 s trace). Each
	// phase's loop is sized to finish safely before the phase boundary
	// at the lowest frequency the protection mechanisms might pick, so
	// the next phase's agent can bind to the freed hardware thread.
	phase := 1800 * units.Millisecond
	mk := func(cls isa.Class, at units.Time, fLow units.Hertz) *oneShot {
		k := isa.KernelFor(cls)
		dur := units.Duration(float64(phase) * 0.9)
		iters := int64(dur.Seconds() * float64(fLow) * k.BaseUPC / float64(k.UopsPerIter))
		return &oneShot{label: "fig7b-" + cls.String(), start: at, k: k, iters: iters}
	}
	phases := []struct {
		cls  isa.Class
		fLow units.Hertz // lower bound on the settled frequency
	}{
		{isa.Scalar64, 3.1 * units.GHz},
		{isa.Vec256Heavy, 2.85 * units.GHz},
		{isa.Vec512Heavy, 2.25 * units.GHz},
	}
	for _, ph := range phases {
		at := m.Now().Add(10 * units.Microsecond)
		for c := 0; c < 2; c++ {
			if _, err := m.Bind(c, 0, mk(ph.cls, at, ph.fLow)); err != nil {
				return nil, err
			}
		}
		m.RunFor(phase)
	}
	rec.Stop()

	// Summarize each phase's steady state from the second half of its
	// window.
	summarize := func(from, to units.Duration) (ghz, vcc, icc, temp float64) {
		n := 0
		for _, s := range rec.Samples() {
			if s.T < units.Time(from) || s.T >= units.Time(to) {
				continue
			}
			ghz += s.Freq.GHzF()
			vcc += float64(s.Vcc)
			icc += float64(s.Icc)
			if float64(s.Temp) > temp {
				temp = float64(s.Temp)
			}
			n++
		}
		if n > 0 {
			ghz /= float64(n)
			vcc /= float64(n)
			icc /= float64(n)
		}
		return
	}
	rep := NewReport("fig7b", "Non-AVX → AVX2 → AVX512 phases on mobile part at Turbo request (3.1 GHz)")
	tab := rep.Table("per-phase steady state (both cores active)",
		"phase", "freq (GHz)", "Vcc (V)", "Icc (A)", "peak temp (°C)", "Iccmax", "Tjmax")
	names := []string{"Non-AVX", "AVX2", "AVX512"}
	for i := range names {
		// Steady-state window: 40%–85% of the phase (the loops are sized
		// to ~90% so the tail may already be idle/restoring).
		from := units.Duration(i)*phase + units.Duration(float64(phase)*0.4)
		to := units.Duration(i)*phase + units.Duration(float64(phase)*0.85)
		g, v, ic, tm := summarize(from, to)
		tab.AddRow(names[i], f3(g), f3(v), f1(ic), f1(tm), f0(float64(p.Limits.IccMax)), f0(float64(p.Limits.TjMax)))
		rep.Metric("freq_"+names[i]+"_ghz", g)
		rep.Metric("icc_"+names[i]+"_a", ic)
		rep.Metric("temp_"+names[i]+"_c", tm)
	}
	rep.Note("paper: frequency steps down entering each heavier phase to hold Icc under Iccmax=29A; junction temperature stays ~58-62°C, far below Tjmax=100°C")
	return rep, nil
}
