package exp

import "fmt"

// Runner regenerates one experiment. The seed makes noise deterministic:
// running the same experiment twice with the same seed must produce an
// identical Report (the engine and serve layers rely on this contract,
// see docs/ARCHITECTURE.md).
type Runner func(seed int64) (*Report, error)

// Experiment describes one registered figure/table runner.
type Experiment struct {
	// ID is the CLI/HTTP name of the experiment (e.g. "fig10a").
	ID string `json:"id"`
	// Section is the paper section the experiment reproduces (e.g.
	// "§5.5"); extensions beyond the paper carry the section they
	// extrapolate from.
	Section string `json:"section"`
	// Desc is a one-line human-readable description.
	Desc string `json:"desc"`
	// Run executes the experiment.
	Run Runner `json:"-"`
}

// registry holds every experiment in definition (= paper) order.
var registry []Experiment

// register adds a runner at package init time. IDs must be unique.
func register(id, section, desc string, r Runner) {
	for _, e := range registry {
		if e.ID == id {
			panic("exp: duplicate experiment id " + id)
		}
	}
	registry = append(registry, Experiment{ID: id, Section: section, Desc: desc, Run: r})
}

// Experiments lists the registered experiments in definition order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the registered experiment IDs in definition order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, seed int64) (*Report, error) {
	e, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (use one of %v)", id, IDs())
	}
	return e.Run(seed)
}
