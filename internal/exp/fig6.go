package exp

import (
	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/trace"
	"ichannels/internal/units"
	"ichannels/internal/workload"
)

func init() {
	register("fig6a", "§5.2", "Vcc delta as two Coffee Lake cores start/stop AVX2 at 2 GHz", Fig6a)
	register("fig6b", "§5.2", "Vcc delta running the 454.calculix proxy on two cores", Fig6b)
}

// Fig6a reproduces Fig. 6(a): two Coffee Lake cores at a fixed 2 GHz run
// staggered AVX2 phases; the regulator voltage steps up ≈8 mV when the
// first core enters its AVX2 phase and ≈9 mV more for the second, with no
// frequency change, then returns to baseline after the phases end. The
// paper's trace spans seconds; the simulation compresses the phases to
// milliseconds, which leaves every voltage plateau intact because the
// mechanism settles in tens of microseconds.
func Fig6a(seed int64) (*Report, error) {
	m, err := newMachine(model.CoffeeLake9700K(), 2*units.GHz, 2, seed)
	if err != nil {
		return nil, err
	}
	rec, err := trace.NewRecorder(m, 10*units.Microsecond)
	if err != nil {
		return nil, err
	}
	rec.Start()

	// Core 1 runs AVX2 in [0.4 ms, 2.0 ms); core 0 in [0.8 ms, 2.1 ms).
	// (The paper's plot colors: "core 1" starts first.)
	avx := func(start, end units.Duration) soc.Agent {
		// Iterations sized for ~2 GHz × 1 UPC over (end−start).
		iters := int64((end - start).Seconds() * 2e9 / float64(isa.Loop256Heavy.UopsPerIter))
		return &oneShot{label: "avx2-phase", start: units.Time(start), k: isa.Loop256Heavy, iters: iters}
	}
	if _, err := m.Bind(1, 0, avx(400*units.Microsecond, 2000*units.Microsecond)); err != nil {
		return nil, err
	}
	if _, err := m.Bind(0, 0, avx(800*units.Microsecond, 2100*units.Microsecond)); err != nil {
		return nil, err
	}
	m.RunFor(3200 * units.Microsecond)
	rec.Stop()

	// Plateau probes at the paper's checkpoints.
	deltaAt := func(t units.Duration) float64 {
		var v float64
		for _, s := range rec.Samples() {
			if s.T <= units.Time(t) {
				v = (s.Vcc).Millivolts()
			}
		}
		return v - rec.Samples()[0].Vcc.Millivolts()
	}
	d1 := deltaAt(700 * units.Microsecond)  // core 1 only
	d2 := deltaAt(1800 * units.Microsecond) // both cores
	d3 := deltaAt(2070 * units.Microsecond) // core 0 only (core 1 stopped — license still held)
	d4 := deltaAt(3100 * units.Microsecond) // all phases over + hysteresis passed

	rep := NewReport("fig6a", "Supply voltage vs. time, staggered AVX2 on two cores @2 GHz (Coffee Lake)")
	tab := rep.Table("Vcc delta plateaus", "checkpoint", "paper (mV)", "model (mV)")
	tab.AddRow("core 1 runs AVX2", "≈8", f1(d1))
	tab.AddRow("both cores run AVX2", "≈17", f1(d2))
	tab.AddRow("core 1 stops (license held)", "≈9..17", f1(d3))
	tab.AddRow("all stop + reset-time", "0", f1(d4))

	// Frequency must not change anywhere in the trace (Key Conclusion 1).
	fmin, fmax := 1e18, 0.0
	for _, s := range rec.Samples() {
		g := s.Freq.GHzF()
		if g < fmin {
			fmin = g
		}
		if g > fmax {
			fmax = g
		}
	}
	rep.Metric("vcc_delta_core1_mv", d1)
	rep.Metric("vcc_delta_both_mv", d2)
	rep.Metric("vcc_delta_end_mv", d4)
	rep.Metric("freq_min_ghz", fmin)
	rep.Metric("freq_max_ghz", fmax)
	rep.Note("frequency stayed at %.3g–%.3g GHz throughout (paper: constant 2 GHz)", fmin, fmax)
	return rep, nil
}

// Fig6b reproduces Fig. 6(b): the 454.calculix proxy (alternating
// non-AVX / AVX2 phases) on two cores at 2 GHz. The supply voltage tracks
// the AVX2 phases of each core while frequency never moves.
func Fig6b(seed int64) (*Report, error) {
	m, err := newMachine(model.CoffeeLake9700K(), 2*units.GHz, 2, seed)
	if err != nil {
		return nil, err
	}
	rec, err := trace.NewRecorder(m, 500*units.Microsecond)
	if err != nil {
		return nil, err
	}
	rec.Start()
	total := 1200 * units.Millisecond
	for c := 0; c < 2; c++ {
		if _, err := m.Bind(c, 0, workload.NewCalculixProxy(units.Time(total))); err != nil {
			return nil, err
		}
	}
	m.RunFor(total + 10*units.Millisecond)
	rec.Stop()

	var dmax float64
	for _, d := range rec.VccDelta() {
		if d > dmax {
			dmax = d
		}
	}
	fmin, fmax := 1e18, 0.0
	for _, s := range rec.Samples() {
		g := s.Freq.GHzF()
		if g < fmin {
			fmin = g
		}
		if g > fmax {
			fmax = g
		}
	}

	rep := NewReport("fig6b", "Supply voltage delta running 454.calculix proxy on two cores @2 GHz")
	tab := rep.Table("calculix proxy", "quantity", "paper", "model")
	tab.AddRow("max Vcc delta (mV)", "≈16-18", f1(dmax))
	tab.AddRow("frequency during run (GHz)", "2.0 constant", f3(fmin)+"–"+f3(fmax))
	rep.Metric("vcc_delta_max_mv", dmax)
	rep.Metric("freq_min_ghz", fmin)
	rep.Metric("freq_max_ghz", fmax)
	rep.Note("voltage follows per-core AVX2 phases only; no frequency modulation (Key Conclusion 1)")
	return rep, nil
}
