package exp

import (
	"fmt"
	"math/rand"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/units"
)

// newMachine builds a machine or panics-by-error for experiment plumbing.
func newMachine(p model.Processor, freq units.Hertz, cores int, seed int64) (*soc.Machine, error) {
	return soc.New(soc.Options{Processor: p, RequestedFreq: freq, Cores: cores, Seed: seed})
}

// randomBits draws n pseudo-random bits.
func randomBits(n int, rng *rand.Rand) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(2)
	}
	return out
}

// oneShot runs a single kernel burst at a fixed start time and captures
// its Result. It is the workhorse of the characterization experiments.
type oneShot struct {
	label string
	start units.Time
	k     isa.Kernel
	iters int64
	res   *soc.Result
}

func (o *oneShot) Name() string { return o.label }

func (o *oneShot) Next(env *soc.Env, prev *soc.Result) soc.Action {
	switch {
	case prev == nil:
		return soc.SpinUntil(o.start)
	case prev.Action.Kind == soc.ActSpinUntil:
		return soc.Exec(o.k, o.iters)
	default:
		r := *prev // prev is only valid during this call; keep a copy
		o.res = &r
		return soc.Stop()
	}
}

// burstSequence runs a list of kernel bursts back-to-back starting at a
// fixed time, capturing every Result.
type burstSequence struct {
	label  string
	start  units.Time
	bursts []soc.Action
	idx    int
	res    []*soc.Result
}

func (b *burstSequence) Name() string { return b.label }

func (b *burstSequence) Next(env *soc.Env, prev *soc.Result) soc.Action {
	if prev == nil {
		return soc.SpinUntil(b.start)
	}
	if prev.Action.Kind == soc.ActExec {
		r := *prev // prev is only valid during this call; keep a copy
		b.res = append(b.res, &r)
	}
	if b.idx >= len(b.bursts) {
		return soc.Stop()
	}
	a := b.bursts[b.idx]
	b.idx++
	return a
}

// measureTP runs one PHI burst on core 0 and returns the core's throttling
// period. Used by the Fig. 8(a)/10(a) sweeps. The machine must be idle.
func measureTP(m *soc.Machine, cls isa.Class, iters int64) (units.Duration, error) {
	start := m.Now().Add(5 * units.Microsecond)
	before := m.Cores[0].ThrottleTime(m.Now())
	shot := &oneShot{label: "tp-probe", start: start, k: isa.KernelFor(cls), iters: iters}
	if _, err := m.Bind(0, 0, shot); err != nil {
		return 0, err
	}
	// Run past the burst plus the worst ramp we model (< 200 µs).
	m.RunFor(400 * units.Microsecond)
	if shot.res == nil {
		return 0, fmt.Errorf("exp: TP probe did not finish")
	}
	return m.Cores[0].ThrottleTime(m.Now()) - before, nil
}

// waitReset advances the machine past the license hysteresis plus
// down-ramp so the next measurement starts from the baseline voltage.
func waitReset(m *soc.Machine) {
	m.RunFor(m.Proc.LicenseHysteresis + 100*units.Microsecond)
}

// us formats a duration in microseconds with 2 decimals.
func us(d units.Duration) string { return fmt.Sprintf("%.2f", d.Microseconds()) }

// f3 formats a float64 with 3 decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// f1 formats a float64 with 1 decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f0 formats a float64 with no decimals.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
