package exp

import (
	"fmt"

	"ichannels/internal/core"
	"ichannels/internal/mitigate"
	"ichannels/internal/model"
)

func init() {
	register("table1", "§7", "mitigation effectiveness matrix (per-core VR / improved throttling / secure mode)", Table1)
	register("table2", "§6.2", "comparison with NetSpectre and TurboCC (capabilities and bandwidth)", Table2)
}

// Table1 reproduces Table 1: effectiveness of the three proposed
// mitigations against each IChannels variant, measured by actually
// attacking mitigated machines. Expected verdicts (paper):
//
//	Per-core VR:          partial / partial / mitigated
//	Improved throttling:  unaffected(-) / mitigated / unaffected(-)
//	Secure mode:          mitigated / mitigated / mitigated
func Table1(seed int64) (*Report, error) {
	p := model.CannonLake8121U()
	assessments, err := mitigate.EvaluateAll(p, 96, seed)
	if err != nil {
		return nil, err
	}
	rep := NewReport("table1", "Mitigation effectiveness (measured on attacked machines)")
	tab := rep.Table("verdicts by (mitigation × channel)",
		"mitigation", "channel", "BER", "cal gap (cycles)", "verdict", "overhead")
	for _, a := range assessments {
		tab.AddRow(a.Mitigation.String(), a.Channel.String(), f3(a.BER), f0(a.CalibrationGap),
			a.Verdict.String(), a.Mitigation.Overhead())
		rep.Metric(fmt.Sprintf("ber_%s_%s", a.Mitigation, a.Channel), a.BER)
		rep.Metric(fmt.Sprintf("verdict_%s_%s", a.Mitigation, a.Channel), float64(a.Verdict))
	}
	rep.Note("paper Table 1: per-core VR partially mitigates thread/SMT and fully mitigates cross-core; improved throttling fully mitigates SMT; secure mode mitigates all three")
	return rep, nil
}

// Table2 reproduces Table 2: the capability/bandwidth comparison against
// NetSpectre and TurboCC. Capabilities are properties of the designs; the
// bandwidth column is measured on the simulator.
func Table2(seed int64) (*Report, error) {
	// Measure the three bandwidths.
	thread, err := runIChannel(core.SameThread, 64, seed)
	if err != nil {
		return nil, err
	}
	rep12b, err := Fig12b(seed + 1)
	if err != nil {
		return nil, err
	}
	fig12a, err := Fig12a(seed + 2)
	if err != nil {
		return nil, err
	}

	rep := NewReport("table2", "Comparison to state-of-the-art throttling covert channels")
	tab := rep.Table("capabilities and measured bandwidth",
		"proposal", "same core", "cross-SMT", "cross-core", "BW (paper)", "BW (model)", "user/kernel", "mechanism", "turbo-independent", "root cause", "mitigations")
	tab.AddRow("NetSpectre", "yes", "no", "no", "1.5 kb/s",
		fmt.Sprintf("%.2f kb/s", fig12a.Metrics["netspectre_bps"]/1000),
		"U", "single-level thread throttling", "yes", "not identified", "none proposed")
	tab.AddRow("TurboCC", "no", "no", "yes", "61 b/s",
		fmt.Sprintf("%.0f b/s", rep12b.Metrics["turbocc_bps"]),
		"K", "Turbo frequency change", "no", "misattributed (thermal)", "none effective")
	ichBW := (thread.ThroughputBPS + rep12b.Metrics["iccsmt_bps"] + rep12b.Metrics["icccores_bps"]) / 3
	tab.AddRow("IChannels", "yes", "yes", "yes", "3 kb/s",
		fmt.Sprintf("%.2f kb/s", ichBW/1000),
		"U", "multi-level thread, SMT, and core (VR) throttling", "yes", "current management (this work)", "three proposed (Table 1)")
	rep.Metric("ichannels_bw_bps", ichBW)
	rep.Metric("netspectre_bw_bps", fig12a.Metrics["netspectre_bps"])
	rep.Metric("turbocc_bw_bps", rep12b.Metrics["turbocc_bps"])
	return rep, nil
}
