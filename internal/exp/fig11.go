package exp

import (
	"strconv"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/stats"
	"ichannels/internal/units"
)

func init() {
	register("fig11", "§5.6", "IDQ undelivered-uop fraction: throttled vs unthrottled iterations", Fig11)
}

// Fig11 reproduces Fig. 11(a): the normalized IDQ_UOPS_NOT_DELIVERED
// counter — undelivered delivery slots over 4×CPU_CLK_UNHALTED — for AVX2
// loop iterations inside and outside the throttling window on Cannon
// Lake. Throttled iterations show ≈0.75 (the IDQ is blocked 3 cycles of
// every 4); unthrottled iterations show ≈0. This is the paper's direct
// evidence for the 1-of-4 delivery gate (Key Conclusion 5).
func Fig11(seed int64) (*Report, error) {
	p := model.CannonLake8121U()
	m, err := newMachine(p, 2.2*units.GHz, 1, seed)
	if err != nil {
		return nil, err
	}
	// Execute the AVX2 loop iteration by iteration, reading the two
	// counters around each (the paper instruments each loop iteration).
	const iterations = 120
	bursts := make([]soc.Action, iterations)
	for i := range bursts {
		bursts[i] = soc.Exec(isa.Loop256Heavy, 1)
	}
	seq := &burstSequence{label: "fig11", start: units.Time(5 * units.Microsecond), bursts: bursts}
	if _, err := m.Bind(0, 0, seq); err != nil {
		return nil, err
	}
	m.RunFor(2 * units.Millisecond)

	width := p.DeliverWidth
	var throttled, unthrottled []float64
	for _, r := range seq.res {
		frac := r.Counters.UndeliveredFraction(width)
		// An iteration is throttled if it ran at ~1/4 speed: detect from
		// its elapsed time (the paper detects the same way, by latency).
		full := float64(isa.Loop256Heavy.UopsPerIter) / (isa.Loop256Heavy.BaseUPC * float64(m.PMU.Frequency()))
		if r.Elapsed().Seconds() > 2*full {
			throttled = append(throttled, frac)
		} else {
			unthrottled = append(unthrottled, frac)
		}
	}
	st, su := stats.Summarize(throttled), stats.Summarize(unthrottled)

	rep := NewReport("fig11", "Normalized undelivered uop slots, throttled vs unthrottled iterations")
	tab := rep.Table("IDQ_UOPS_NOT_DELIVERED / (4·CPU_CLK_UNHALTED)",
		"iteration set", "n", "paper", "model mean", "model p5-p95")
	tab.AddRow("throttled", strconv.Itoa(st.N), "≈0.75", f3(st.Mean), f3(st.P5)+"-"+f3(st.P95))
	tab.AddRow("unthrottled", strconv.Itoa(su.N), "≈0", f3(su.Mean), f3(su.P5)+"-"+f3(su.P95))
	rep.Metric("throttled_undelivered_frac", st.Mean)
	rep.Metric("unthrottled_undelivered_frac", su.Mean)
	rep.Metric("throttled_iterations", float64(st.N))
	rep.Note("the IDQ delivers uops in only 1 of 4 cycles while throttled; both SMT threads share this gate (paper §5.6)")
	return rep, nil
}
