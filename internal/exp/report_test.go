package exp

import (
	"strings"
	"testing"
)

func TestReportRendering(t *testing.T) {
	rep := NewReport("x1", "a title")
	tab := rep.Table("numbers", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("beta", "22")
	rep.Metric("some metric", 3.5) // space must normalize
	rep.Note("caveat %d", 7)

	s := rep.String()
	for _, want := range []string{"x1", "a title", "numbers", "alpha", "beta", "some_metric", "3.5", "caveat 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered report missing %q:\n%s", want, s)
		}
	}
	if _, ok := rep.Metrics["some_metric"]; !ok {
		t.Error("metric name not normalized")
	}
}

func TestTableColumnAlignment(t *testing.T) {
	rep := NewReport("x2", "t")
	tab := rep.Table("", "short", "header")
	tab.AddRow("muchlongervalue", "x")
	s := rep.String()
	lines := strings.Split(s, "\n")
	// Find the header and the row; the second column must start at the
	// same offset in both.
	var header, row string
	for i, l := range lines {
		if strings.HasPrefix(l, "short") {
			header = l
			// separator at i+1, first row at i+2
			row = lines[i+2]
		}
	}
	if header == "" || row == "" {
		t.Fatalf("table not rendered:\n%s", s)
	}
	if strings.Index(header, "header") != strings.Index(row, "x") {
		t.Errorf("columns misaligned:\n%q\n%q", header, row)
	}
}

func TestServerExtension(t *testing.T) {
	rep := mustRun(t, "server")
	for _, ch := range []string{"IccThreadCovert", "IccSMTcovert", "IccCoresCovert"} {
		if metric(t, rep, "ber_"+ch) != 0 {
			t.Errorf("%s BER nonzero on the server part", ch)
		}
		if metric(t, rep, "gap_"+ch) < 2000 {
			t.Errorf("%s calibration gap too small on the server part", ch)
		}
		if bps := metric(t, rep, "bps_"+ch); bps < 2600 || bps > 3000 {
			t.Errorf("%s throughput %.0f b/s", ch, bps)
		}
	}
}

func TestExperimentsDeterministicPerSeed(t *testing.T) {
	// The same seed must reproduce identical metrics (the simulator's
	// core reproducibility guarantee, end to end).
	a, err := Run("fig13", 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig13", 42)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a.Metrics {
		if b.Metrics[k] != v {
			t.Errorf("metric %s diverged: %g vs %g", k, v, b.Metrics[k])
		}
	}
}
