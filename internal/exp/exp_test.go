package exp

import (
	"strings"
	"testing"
)

// These are the repository's integration tests: every figure/table runner
// must execute and its key metrics must match the paper's shapes.

func mustRun(t *testing.T, id string) *Report {
	t.Helper()
	rep, err := Run(id, 1)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.ID != id {
		t.Fatalf("report ID %q", rep.ID)
	}
	if len(rep.Tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	if !strings.Contains(rep.String(), id) {
		t.Fatalf("%s: String() must mention the ID", id)
	}
	return rep
}

func metric(t *testing.T, rep *Report, key string) float64 {
	t.Helper()
	v, ok := rep.Metrics[key]
	if !ok {
		t.Fatalf("%s: missing metric %q (have %v)", rep.ID, key, rep.Metrics)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8bc", "fig9",
		"fig10a", "fig10b", "fig11", "fig12a", "fig12b", "fig13",
		"fig14a", "fig14b", "fig14c", "sevenzip", "table1", "table2",
	}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.ID] = true
		if e.Desc == "" {
			t.Errorf("%s has no description", e.ID)
		}
		if e.Section == "" {
			t.Errorf("%s has no paper section", e.ID)
		}
		got, ok := Lookup(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("Lookup(%s) failed", e.ID)
		}
	}
	if len(IDs()) != len(Experiments()) {
		t.Error("IDs() and Experiments() disagree")
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, err := Run("nope", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestFig6a(t *testing.T) {
	rep := mustRun(t, "fig6a")
	// Paper: +8 mV for the first core, ≈17 mV with both, 0 after.
	if d := metric(t, rep, "vcc_delta_core1_mv"); d < 7 || d > 9 {
		t.Errorf("first-core delta %.1f mV, want ≈8", d)
	}
	if d := metric(t, rep, "vcc_delta_both_mv"); d < 15.5 || d > 18.5 {
		t.Errorf("both-cores delta %.1f mV, want ≈17", d)
	}
	if d := metric(t, rep, "vcc_delta_end_mv"); d > 0.5 {
		t.Errorf("end delta %.1f mV, want 0", d)
	}
	// Key Conclusion 1: frequency untouched at 2 GHz.
	if metric(t, rep, "freq_min_ghz") != 2 || metric(t, rep, "freq_max_ghz") != 2 {
		t.Error("frequency moved during the AVX2 phases")
	}
}

func TestFig6b(t *testing.T) {
	rep := mustRun(t, "fig6b")
	if d := metric(t, rep, "vcc_delta_max_mv"); d < 15 || d > 19 {
		t.Errorf("calculix max delta %.1f mV, want ≈17", d)
	}
	if metric(t, rep, "freq_min_ghz") != 2 {
		t.Error("frequency moved during calculix")
	}
}

func TestFig7a(t *testing.T) {
	rep := mustRun(t, "fig7a")
	// Desktop: non-AVX holds 4.9; AVX2 retreats to 4.8.
	if metric(t, rep, "case0_settled_ghz") != 4.9 {
		t.Error("desktop non-AVX must hold 4.9 GHz")
	}
	if metric(t, rep, "case1_settled_ghz") != 4.8 {
		t.Error("desktop AVX2@4.9 must retreat to 4.8 GHz (Vccmax)")
	}
	// Mobile: non-AVX holds 3.1; AVX2 retreats below it (Iccmax).
	if metric(t, rep, "case3_settled_ghz") != 3.1 {
		t.Error("mobile non-AVX must hold 3.1 GHz")
	}
	if metric(t, rep, "case4_settled_ghz") >= 3.1 {
		t.Error("mobile AVX2@3.1 must retreat (Iccmax)")
	}
	if metric(t, rep, "case5_settled_ghz") != 2.2 {
		t.Error("mobile AVX2@2.2 must hold")
	}
}

func TestFig7b(t *testing.T) {
	rep := mustRun(t, "fig7b")
	fNon := metric(t, rep, "freq_Non-AVX_ghz")
	fAVX2 := metric(t, rep, "freq_AVX2_ghz")
	fAVX512 := metric(t, rep, "freq_AVX512_ghz")
	if !(fNon > fAVX2 && fAVX2 > fAVX512) {
		t.Errorf("frequency must step down per phase: %.2f / %.2f / %.2f", fNon, fAVX2, fAVX512)
	}
	// Icc capped at 29 A in every phase.
	for _, k := range []string{"icc_Non-AVX_a", "icc_AVX2_a", "icc_AVX512_a"} {
		if icc := metric(t, rep, k); icc > 29 {
			t.Errorf("%s = %.1f A exceeds Iccmax", k, icc)
		}
	}
	// Paper: junction temperature 58–62 °C, far below Tjmax=100.
	tAVX2 := metric(t, rep, "temp_AVX2_c")
	if tAVX2 < 50 || tAVX2 > 70 {
		t.Errorf("AVX2 temp %.1f °C, want ≈58-62", tAVX2)
	}
}

func TestFig8a(t *testing.T) {
	rep := mustRun(t, "fig8a")
	hsw := metric(t, rep, "tp_mean_us_Haswell")
	cfl := metric(t, rep, "tp_mean_us_Coffee_Lake")
	cnl := metric(t, rep, "tp_mean_us_Cannon_Lake")
	// Paper: Haswell ≈9 µs (FIVR), Coffee Lake ≈12, Cannon Lake 12-15.
	if hsw < 8 || hsw > 10 {
		t.Errorf("Haswell TP %.1f µs, want ≈9", hsw)
	}
	if cfl < 11 || cfl > 14 {
		t.Errorf("Coffee Lake TP %.1f µs, want ≈12", cfl)
	}
	if cnl < 12 || cnl > 15.5 {
		t.Errorf("Cannon Lake TP %.1f µs, want 12-15", cnl)
	}
	if !(hsw < cfl && cfl <= cnl) {
		t.Error("TP ordering Haswell < Coffee Lake ≤ Cannon Lake broken")
	}
}

func TestFig8bc(t *testing.T) {
	rep := mustRun(t, "fig8bc")
	// Coffee Lake: first iteration ≈8-15 ns longer (gate wake); Haswell ≈0.
	cfl := metric(t, rep, "first_iter_delta_ns_Coffee_Lake")
	if cfl < 8 || cfl > 15 {
		t.Errorf("Coffee Lake first-iter delta %.1f ns, want 8-15", cfl)
	}
	if hsw := metric(t, rep, "first_iter_delta_ns_Haswell"); hsw != 0 {
		t.Errorf("Haswell first-iter delta %.1f ns, want 0 (no AVX gate)", hsw)
	}
	if metric(t, rep, "avx_gate_wakes_Haswell") != 0 {
		t.Error("Haswell has no gate to wake")
	}
}

func TestFig9(t *testing.T) {
	rep := mustRun(t, "fig9")
	// Key Conclusion 5: IPC drops to 1/4, not to zero.
	if r := metric(t, rep, "a_min_ipc_ratio"); r < 0.2 || r > 0.3 {
		t.Errorf("throttled IPC ratio %.2f, want 0.25", r)
	}
	// Sub-Turbo: frequency untouched.
	if metric(t, rep, "a_freq_ghz") != 1.4 {
		t.Error("sub-Turbo burst must not change frequency")
	}
	// Key Conclusion 3: gate wake ≈0.1% of the TP.
	if f := metric(t, rep, "b_wake_fraction_pct"); f > 0.5 {
		t.Errorf("wake fraction %.2f%%, want ≈0.1%%", f)
	}
	// Turbo: a P-state transition happened.
	if metric(t, rep, "c_freq_after_ghz") >= metric(t, rep, "c_freq_before_ghz") {
		t.Error("Turbo burst must downshift")
	}
	if metric(t, rep, "c_halt_us") <= 0 {
		t.Error("P-state transition must include a brief halt")
	}
}

func TestFig10a(t *testing.T) {
	rep := mustRun(t, "fig10a")
	// Paper: 256b_Heavy ≈5 µs → our table is calibrated to 10 µs at
	// 1 GHz single-core for the 0-22 µs Fig. 10 band; the load-bearing
	// shape is the two-core ratio ≈1.8 and monotone growth.
	r := metric(t, rep, "two_core_ratio_256H_1GHz")
	if r < 1.7 || r > 1.9 {
		t.Errorf("two-core ratio %.2f, want ≈1.8", r)
	}
	one := metric(t, rep, "tp_256H_1GHz_1core_us")
	if one < 8 || one > 12 {
		t.Errorf("256H @1GHz TP %.1f µs", one)
	}
}

func TestFig10b(t *testing.T) {
	rep := mustRun(t, "fig10b")
	// TP of 512b_Heavy decreases monotonically with predecessor
	// intensity, ≈20 µs after 64b and ≈0 after 512b_Heavy.
	after64 := metric(t, rep, "tp512_after_64b_us")
	after512 := metric(t, rep, "tp512_after_512b_Heavy_us")
	if after64 < 17 || after64 > 23 {
		t.Errorf("TP after 64b = %.1f µs, want ≈20", after64)
	}
	if after512 > 0.5 {
		t.Errorf("TP after 512b_Heavy = %.2f µs, want ≈0", after512)
	}
	prev := after64
	for _, k := range []string{"tp512_after_128b_Light_us", "tp512_after_128b_Heavy_us",
		"tp512_after_256b_Light_us", "tp512_after_256b_Heavy_us",
		"tp512_after_512b_Light_us", "tp512_after_512b_Heavy_us"} {
		cur := metric(t, rep, k)
		if cur > prev+0.01 {
			t.Errorf("%s = %.1f µs breaks monotonicity (prev %.1f)", k, cur, prev)
		}
		prev = cur
	}
}

func TestFig11(t *testing.T) {
	rep := mustRun(t, "fig11")
	thr := metric(t, rep, "throttled_undelivered_frac")
	unthr := metric(t, rep, "unthrottled_undelivered_frac")
	// Paper: ≈0.75 vs ≈0 (Key Conclusion 5).
	if thr < 0.7 || thr > 0.8 {
		t.Errorf("throttled fraction %.3f, want ≈0.75", thr)
	}
	if unthr > 0.05 {
		t.Errorf("unthrottled fraction %.3f, want ≈0", unthr)
	}
	if metric(t, rep, "throttled_iterations") < 10 {
		t.Error("too few throttled iterations sampled")
	}
}

func TestFig12a(t *testing.T) {
	rep := mustRun(t, "fig12a")
	r := metric(t, rep, "ratio")
	// Paper: 2×.
	if r < 1.8 || r > 2.2 {
		t.Errorf("IccThreadCovert/NetSpectre ratio %.2f, want ≈2", r)
	}
	if metric(t, rep, "iccthread_ber") != 0 {
		t.Error("noise-free IccThreadCovert must be error-free")
	}
}

func TestFig12b(t *testing.T) {
	rep := mustRun(t, "fig12b")
	// Paper: 20 / 61 / 122 b/s and 145× / 47× / 24×.
	if v := metric(t, rep, "dfscovert_bps"); v < 18 || v > 22 {
		t.Errorf("DFScovert %.1f b/s, want ≈20", v)
	}
	if v := metric(t, rep, "turbocc_bps"); v < 55 || v > 67 {
		t.Errorf("TurboCC %.1f b/s, want ≈61", v)
	}
	if v := metric(t, rep, "powert_bps"); v < 115 || v > 130 {
		t.Errorf("PowerT %.1f b/s, want ≈122", v)
	}
	if v := metric(t, rep, "iccsmt_bps"); v < 2600 || v > 3000 {
		t.Errorf("IccSMTcovert %.0f b/s, want ≈2.8k", v)
	}
	if r := metric(t, rep, "ratio_vs_powert"); r < 20 || r > 28 {
		t.Errorf("ratio vs PowerT %.1f, want ≈24", r)
	}
	if r := metric(t, rep, "ratio_vs_dfscovert"); r < 120 || r > 160 {
		t.Errorf("ratio vs DFScovert %.0f, want ≈145", r)
	}
}

func TestFig13(t *testing.T) {
	rep := mustRun(t, "fig13")
	if metric(t, rep, "separable_gt_2k_cycles") != 1 {
		t.Error("the four TP ranges must separate by >2K cycles in low noise")
	}
	// Level means ordered L1 < L2 < L3 < L4 on the same-thread channel
	// (higher intensity → shorter measurement).
	l1 := metric(t, rep, "mean_cycles_L1")
	l4 := metric(t, rep, "mean_cycles_L4")
	if l1 >= l4 {
		t.Errorf("L1 mean %.0f must be below L4 mean %.0f", l1, l4)
	}
}

func TestFig14a(t *testing.T) {
	rep := mustRun(t, "fig14a")
	// Low event rates: error-free. Paper's shape: BER grows with rate.
	if metric(t, rep, "ber_irq_1") != 0 || metric(t, rep, "ber_ctx_1") != 0 {
		t.Error("1 event/s must be error-free")
	}
	if metric(t, rep, "ber_irq_10000") <= metric(t, rep, "ber_irq_100") {
		t.Error("interrupt BER must grow with rate")
	}
	if metric(t, rep, "ber_irq_10000") > 0.1 {
		t.Error("interrupt BER at 10k/s should stay under ≈0.1 (paper <0.08)")
	}
}

func TestFig14b(t *testing.T) {
	rep := mustRun(t, "fig14b")
	// The paper's triangular structure: a 512b_Heavy App corrupts the
	// lighter symbols badly, while a 128b_Heavy App corrupts nothing.
	if v := metric(t, rep, "ser_app512b_Heavy_symL4"); v < 0.3 {
		t.Errorf("512H app vs L4 symbol: SER %.2f, expected heavy corruption", v)
	}
	if v := metric(t, rep, "ser_app512b_Heavy_symL1"); v > 0.1 {
		t.Errorf("512H app vs L1 symbol: SER %.2f, expected ≈0 (symbol ≥ app)", v)
	}
	if v := metric(t, rep, "ser_app128b_Heavy_symL1"); v > 0.1 {
		t.Errorf("128H app vs L1: SER %.2f, expected ≈0", v)
	}
}

func TestFig14c(t *testing.T) {
	rep := mustRun(t, "fig14c")
	low := metric(t, rep, "ber_rate_10")
	high := metric(t, rep, "ber_rate_10000")
	if low > 0.02 {
		t.Errorf("BER at 10 PHIs/s = %.3f, want ≈0", low)
	}
	if high <= low+0.05 {
		t.Errorf("BER must rise significantly with injection rate (%.3f → %.3f)", low, high)
	}
}

func TestSevenZip(t *testing.T) {
	rep := mustRun(t, "sevenzip")
	// Paper §6.3: BER < 0.07 with 7-zip running.
	if ber := metric(t, rep, "ber"); ber >= 0.07 {
		t.Errorf("7-zip BER %.3f, paper reports < 0.07", ber)
	}
}

func TestTable1(t *testing.T) {
	rep := mustRun(t, "table1")
	// Verdict encoding: 0 unaffected, 1 partial, 2 mitigated.
	checks := map[string]float64{
		"verdict_Per-core_VR_IccThreadCovert":         1,
		"verdict_Per-core_VR_IccSMTcovert":            1,
		"verdict_Per-core_VR_IccCoresCovert":          2,
		"verdict_Improved_Throttling_IccThreadCovert": 0,
		"verdict_Improved_Throttling_IccSMTcovert":    2,
		"verdict_Improved_Throttling_IccCoresCovert":  0,
		"verdict_Secure-Mode_IccThreadCovert":         2,
		"verdict_Secure-Mode_IccSMTcovert":            2,
		"verdict_Secure-Mode_IccCoresCovert":          2,
	}
	for k, v := range checks {
		if got := metric(t, rep, k); got != v {
			t.Errorf("%s = %g, want %g", k, got, v)
		}
	}
}

func TestTable2(t *testing.T) {
	rep := mustRun(t, "table2")
	ich := metric(t, rep, "ichannels_bw_bps")
	ns := metric(t, rep, "netspectre_bw_bps")
	tc := metric(t, rep, "turbocc_bw_bps")
	// Paper Table 2: 3 kb/s vs 1.5 kb/s vs 61 b/s.
	if ich < 2600 || ich > 3000 {
		t.Errorf("IChannels BW %.0f b/s", ich)
	}
	if r := ich / ns; r < 1.8 || r > 2.2 {
		t.Errorf("IChannels/NetSpectre ratio %.2f", r)
	}
	if r := ich / tc; r < 40 || r > 55 {
		t.Errorf("IChannels/TurboCC ratio %.1f", r)
	}
}
