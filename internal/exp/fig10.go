package exp

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/units"
)

func init() {
	register("fig10a", "§5.5", "throttling period vs. class × frequency × core count (Cannon Lake)", Fig10a)
	register("fig10b", "§5.5", "512b_Heavy throttling period vs. preceding instruction class", Fig10b)
}

// Fig10a reproduces Fig. 10(a): the throttling period of each of the
// seven instruction classes on Cannon Lake at 1.0/1.2/1.4 GHz with one
// and two cores executing the class concurrently. TP grows with class
// intensity, frequency, and core count (two cores ≈ 1.8× one core).
func Fig10a(seed int64) (*Report, error) {
	p := model.CannonLake8121U()
	rep := NewReport("fig10a", "Throttling period by class, frequency, and active cores (µs)")
	tab := rep.Table("TP (µs); L-levels cluster as {64b}≈L1 … {512b_Heavy}=L5",
		"class", "1GHz/1core", "1.2GHz/1core", "1.4GHz/1core", "1GHz/2cores", "1.2GHz/2cores", "1.4GHz/2cores")

	freqs := []units.Hertz{1.0 * units.GHz, 1.2 * units.GHz, 1.4 * units.GHz}
	// results[cores][class][freq]
	results := map[int]map[isa.Class]map[units.Hertz]float64{1: {}, 2: {}}
	for _, ncores := range []int{1, 2} {
		for _, cls := range isa.AllClasses() {
			results[ncores][cls] = map[units.Hertz]float64{}
			for _, f := range freqs {
				m, err := newMachine(p, f, 2, seed)
				if err != nil {
					return nil, err
				}
				// Run the class on ncores cores simultaneously and take
				// the longest per-core TP (the serialized second grant).
				start := m.Now().Add(5 * units.Microsecond)
				for c := 0; c < ncores; c++ {
					shot := &oneShot{label: fmt.Sprintf("fig10a-c%d", c), start: start, k: isa.KernelFor(cls), iters: 200}
					if _, err := m.Bind(c, 0, shot); err != nil {
						return nil, err
					}
				}
				m.RunFor(400 * units.Microsecond)
				var tp units.Duration
				for c := 0; c < ncores; c++ {
					if t := m.Cores[c].ThrottleTime(m.Now()); t > tp {
						tp = t
					}
				}
				results[ncores][cls][f] = tp.Microseconds()
			}
		}
	}
	for _, cls := range isa.AllClasses() {
		row := []string{cls.String()}
		for _, n := range []int{1, 2} {
			for _, f := range freqs {
				row = append(row, f1(results[n][cls][f]))
			}
		}
		tab.AddRow(row...)
	}
	// Key shape metrics.
	rep.Metric("tp_256H_1GHz_1core_us", results[1][isa.Vec256Heavy][freqs[0]])
	rep.Metric("tp_256H_1GHz_2core_us", results[2][isa.Vec256Heavy][freqs[0]])
	rep.Metric("tp_512H_1.4GHz_1core_us", results[1][isa.Vec512Heavy][freqs[2]])
	ratio := results[2][isa.Vec256Heavy][freqs[0]] / results[1][isa.Vec256Heavy][freqs[0]]
	rep.Metric("two_core_ratio_256H_1GHz", ratio)
	rep.Note("paper: 256b_Heavy is ≈5 µs on one core and ≈9 µs on two cores at 1 GHz (ratio ≈1.8; model %.2f)", ratio)
	rep.Note("TP rises monotonically with class intensity, frequency, and core count (Key Conclusion 4)")
	return rep, nil
}

// Fig10b reproduces Fig. 10(b): the throttling period of a 512b_Heavy
// loop when it is immediately preceded by a loop of each class, at
// 1.4 GHz. The lower the predecessor's intensity, the more voltage
// remains to ramp and the longer the 512b_Heavy TP — the multi-level
// (L1–L5) effect IccThreadCovert encodes symbols in.
func Fig10b(seed int64) (*Report, error) {
	p := model.CannonLake8121U()
	rep := NewReport("fig10b", "512b_Heavy throttling period vs. preceding class @1.4 GHz (µs)")
	tab := rep.Table("TP of the 512b_Heavy loop", "preceding class", "model TP (µs)", "level")

	levels := map[isa.Class]string{
		isa.Scalar64: "L1 (longest)", isa.Vec128Light: "L1/L2", isa.Vec128Heavy: "L2",
		isa.Vec256Light: "L3", isa.Vec256Heavy: "L4", isa.Vec512Light: "L4/L5", isa.Vec512Heavy: "L5 (≈0)",
	}
	var prevTP float64 = -1
	monotone := true
	var tps []float64
	for _, cls := range isa.AllClasses() {
		m, err := newMachine(p, 1.4*units.GHz, 1, seed)
		if err != nil {
			return nil, err
		}
		seq := &burstSequence{
			label: "fig10b",
			start: units.Time(5 * units.Microsecond),
			bursts: []soc.Action{
				soc.Exec(isa.KernelFor(cls), 150),
				soc.Exec(isa.Loop512Heavy, 150),
			},
		}
		if _, err := m.Bind(0, 0, seq); err != nil {
			return nil, err
		}
		m.RunFor(30 * units.Microsecond) // the preceding loop's own TP elapses here
		preTP := m.Cores[0].ThrottleTime(m.Now())
		m.RunFor(400 * units.Microsecond)
		tp := (m.Cores[0].ThrottleTime(m.Now()) - preTP).Microseconds()
		// The 512b loop may start before 30 µs for light predecessors;
		// measure instead from the burst results when available.
		if len(seq.res) == 2 {
			tp = measure512TP(m, seq)
		}
		tab.AddRow(cls.String(), f1(tp), levels[cls])
		rep.Metric("tp512_after_"+cls.String()+"_us", tp)
		tps = append(tps, tp)
		if prevTP >= 0 && tp > prevTP+0.01 {
			monotone = false
		}
		prevTP = tp
	}
	if monotone {
		rep.Note("TP decreases monotonically with predecessor intensity, spanning %.1f µs → %.1f µs (paper: ≈20 µs → ≈0)", tps[0], tps[len(tps)-1])
	} else {
		rep.Note("WARNING: TP not monotone in predecessor intensity — check calibration")
	}
	return rep, nil
}

// measure512TP extracts the 512b_Heavy loop's throttling period from its
// measured elapsed time: elapsed = work + (1−throttleFactor)·TP.
func measure512TP(m *soc.Machine, seq *burstSequence) float64 {
	r := seq.res[1]
	full := float64(isa.Loop512Heavy.UopsPerIter) * 150 / (isa.Loop512Heavy.BaseUPC * float64(m.PMU.Frequency()))
	elapsed := r.Elapsed().Seconds()
	tf := m.Cores[0].Config().ThrottleFactor
	tp := (elapsed - full) / (1 - tf)
	if tp < 0 {
		tp = 0
	}
	return tp * 1e6
}
