package exp

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/trace"
	"ichannels/internal/units"
)

func init() {
	register("fig9", "§5.6", "power-gate/IPC/frequency/Vcc timeline during AVX2 execution", Fig9)
}

// Fig9 reproduces Fig. 9: the microsecond-scale anatomy of one AVX2 burst
// on Cannon Lake under the two current-management reactions:
//
//	(a) below Turbo: the core throttles (IPC → 1/4) while the guardband
//	    ramps; frequency never moves.
//	(b) the power gate opens within nanoseconds at the first AVX2
//	    instruction (~0.1% of the throttling period).
//	(c) at Turbo: the same burst also triggers a P-state transition
//	    (brief full halt, lower frequency) to respect Iccmax.
func Fig9(seed int64) (*Report, error) {
	rep := NewReport("fig9", "Anatomy of an AVX2 burst: throttle, voltage ramp, power gate, P-state")
	p := model.CannonLake8121U()

	// --- (a) guardband ramp at a sub-Turbo operating point ---
	{
		m, err := newMachine(p, 1.4*units.GHz, 1, seed)
		if err != nil {
			return nil, err
		}
		rec, err := trace.NewRecorder(m, 200*units.Nanosecond)
		if err != nil {
			return nil, err
		}
		rec.Start()
		shot := &oneShot{label: "fig9a", start: units.Time(2 * units.Microsecond), k: isa.Loop256Heavy, iters: 220}
		if _, err := m.Bind(0, 0, shot); err != nil {
			return nil, err
		}
		m.RunFor(60 * units.Microsecond)
		rec.Stop()

		var minIPC, fullIPC float64 = 99, 0
		var throttleDur units.Duration
		var vccDelta float64
		v0 := float64(rec.Samples()[0].Vcc)
		var prev *units.Time
		for i := range rec.Samples() {
			s := rec.Samples()[i]
			if len(s.CoreIPC) > 0 && s.CoreIPC[0] > 0 {
				if s.CoreIPC[0] < minIPC {
					minIPC = s.CoreIPC[0]
				}
				if s.CoreIPC[0] > fullIPC {
					fullIPC = s.CoreIPC[0]
				}
			}
			if float64(s.Vcc)-v0 > vccDelta {
				vccDelta = float64(s.Vcc) - v0
			}
			if s.Throttled[0] {
				if prev == nil {
					t := s.T
					prev = &t
				}
				throttleDur = s.T.Sub(*prev)
			}
		}
		tab := rep.Table("(a) sub-Turbo AVX2 burst @1.4 GHz", "quantity", "paper", "model")
		tab.AddRow("IPC while throttled / full", "1/4 of full", fmt.Sprintf("%.2f / %.2f", minIPC, fullIPC))
		tab.AddRow("throttle duration (µs)", "≈10-15", us(throttleDur))
		tab.AddRow("Vcc ramp (mV)", "≈12 (256b heavy)", f1(vccDelta*1000))
		tab.AddRow("frequency", "constant", m.PMU.Frequency().String())
		rep.Metric("a_min_ipc_ratio", minIPC/fullIPC)
		rep.Metric("a_throttle_us", throttleDur.Microseconds())
		rep.Metric("a_vcc_delta_mv", vccDelta*1000)
		rep.Metric("a_freq_ghz", m.PMU.Frequency().GHzF())
	}

	// --- (b) power-gate wake at nanosecond granularity ---
	{
		m, err := newMachine(p, 1.4*units.GHz, 1, seed+1)
		if err != nil {
			return nil, err
		}
		shot := &oneShot{label: "fig9b", start: units.Time(2 * units.Microsecond), k: isa.Loop256Heavy, iters: 150}
		if _, err := m.Bind(0, 0, shot); err != nil {
			return nil, err
		}
		m.RunFor(100 * units.Microsecond)
		tp := m.Cores[0].ThrottleTime(m.Now())
		_, wake, _ := p.AVX256Gate.Gate()
		frac := wake.Seconds() / tp.Seconds() * 100
		tab := rep.Table("(b) AVX2 power-gate wake", "quantity", "paper", "model")
		tab.AddRow("gate wake latency (ns)", "8-15", f1(wake.Nanoseconds()))
		tab.AddRow("gate opens", "once per idle period", fmt.Sprintf("%d", m.Cores[0].AVX256Wakes()))
		tab.AddRow("wake / throttling period", "≈0.1%", fmt.Sprintf("%.2f%%", frac))
		rep.Metric("b_wake_fraction_pct", frac)
	}

	// --- (c) the same burst at Turbo: P-state transition ---
	{
		m, err := newMachine(p, 3.1*units.GHz, 2, seed+2)
		if err != nil {
			return nil, err
		}
		rec, err := trace.NewRecorder(m, 500*units.Nanosecond)
		if err != nil {
			return nil, err
		}
		rec.Start()
		for c := 0; c < 2; c++ {
			shot := &oneShot{label: "fig9c", start: units.Time(2 * units.Microsecond), k: isa.Loop256Heavy, iters: 400}
			if _, err := m.Bind(c, 0, shot); err != nil {
				return nil, err
			}
		}
		m.RunFor(120 * units.Microsecond)
		rec.Stop()

		f0gz, fEnd := rec.Samples()[0].Freq.GHzF(), rec.Samples()[len(rec.Samples())-1].Freq.GHzF()
		halted := 0
		for _, s := range rec.Samples() {
			ipc := 0.0
			for _, v := range s.CoreIPC {
				ipc += v
			}
			if ipc == 0 && s.T > units.Time(2*units.Microsecond) && s.T < units.Time(60*units.Microsecond) {
				halted++
			}
		}
		haltDur := units.Duration(halted) * 500 * units.Nanosecond
		tab := rep.Table("(c) AVX2 burst at Turbo (3.1 GHz, two cores)", "quantity", "paper", "model")
		tab.AddRow("frequency before → after", "3.1 → lower", fmt.Sprintf("%.1f → %.1f GHz", f0gz, fEnd))
		tab.AddRow("halt during P-state transition (µs)", "brief (µs-scale)", us(haltDur))
		rep.Metric("c_freq_before_ghz", f0gz)
		rep.Metric("c_freq_after_ghz", fEnd)
		rep.Metric("c_halt_us", haltDur.Microseconds())
	}
	rep.Note("the throttle (not the power gate) dominates the stall; at Turbo the Iccmax protection adds a P-state transition on top (paper Fig. 9(a)-(c))")
	return rep, nil
}
