package exp

import (
	"fmt"
	"math/rand"

	"ichannels/internal/baselines"
	"ichannels/internal/core"
	"ichannels/internal/model"
	"ichannels/internal/units"
)

func init() {
	register("fig12a", "§6.2", "IccThreadCovert vs NetSpectre throughput", Fig12a)
	register("fig12b", "§6.2", "IChannels vs DFScovert/TurboCC/PowerT throughput", Fig12b)
}

// runIChannel calibrates and transmits nBits over one IChannels variant,
// returning measured goodput-relevant results.
func runIChannel(kind core.Kind, nBits int, seed int64) (*core.TransmitResult, error) {
	p := model.CannonLake8121U()
	m, err := newMachine(p, 2.2*units.GHz, 2, seed)
	if err != nil {
		return nil, err
	}
	ch, err := core.New(m, core.DefaultParams(kind, p))
	if err != nil {
		return nil, err
	}
	if _, err := ch.Calibrate(6); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 99))
	return ch.Transmit(randomBits(nBits, rng))
}

// Fig12a reproduces Fig. 12(a): IccThreadCovert transmits two bits per
// reset-time cycle where NetSpectre's single-level gadget carries one —
// a 2× throughput advantage at comparable cycle times.
func Fig12a(seed int64) (*Report, error) {
	res, err := runIChannel(core.SameThread, 64, seed)
	if err != nil {
		return nil, err
	}
	// NetSpectre runs on the same class of machine (same-thread gadget).
	p := model.CoffeeLake9700K()
	m, err := newMachine(p, 3.6*units.GHz, 1, seed+1)
	if err != nil {
		return nil, err
	}
	ns, err := baselines.NewNetSpectre(m)
	if err != nil {
		return nil, err
	}
	if err := ns.Calibrate(6); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 7))
	nres, err := ns.Transmit(randomBits(64, rng))
	if err != nil {
		return nil, err
	}

	ratio := res.ThroughputBPS / nres.ThroughputBPS
	rep := NewReport("fig12a", "IccThreadCovert vs NetSpectre normalized throughput")
	tab := rep.Table("same-hardware-thread channels", "channel", "bits/transaction", "throughput (b/s)", "BER", "normalized")
	tab.AddRow("NetSpectre", "1", f0(nres.ThroughputBPS), f3(nres.BER), "1.0")
	tab.AddRow("IccThreadCovert", "2", f0(res.ThroughputBPS), f3(res.BER), fmt.Sprintf("%.2f", ratio))
	rep.Metric("iccthread_bps", res.ThroughputBPS)
	rep.Metric("netspectre_bps", nres.ThroughputBPS)
	rep.Metric("ratio", ratio)
	rep.Metric("iccthread_ber", res.BER)
	rep.Note("paper: 2× (two bits per multi-level transaction vs one per single-level transaction)")
	return rep, nil
}

// Fig12b reproduces Fig. 12(b): throughput of IccSMTcovert /
// IccCoresCovert against the three slower power-management channels.
// The paper's numbers: DFScovert 20 b/s, TurboCC 61 b/s, PowerT 122 b/s,
// IChannels 2899 b/s (145× / 47× / 24×).
func Fig12b(seed int64) (*Report, error) {
	p := model.CannonLake8121U()
	rng := rand.New(rand.NewSource(seed + 3))

	smt, err := runIChannel(core.SMT, 64, seed)
	if err != nil {
		return nil, err
	}
	cores, err := runIChannel(core.CrossCore, 64, seed+1)
	if err != nil {
		return nil, err
	}

	mDfs, err := newMachine(p, 2.2*units.GHz, 2, seed+2)
	if err != nil {
		return nil, err
	}
	dfs, err := baselines.NewDFScovert(mDfs)
	if err != nil {
		return nil, err
	}
	if err := dfs.Calibrate(3); err != nil {
		return nil, err
	}
	dres, err := dfs.Transmit(randomBits(10, rng))
	if err != nil {
		return nil, err
	}

	mTc, err := newMachine(p, 3.1*units.GHz, 2, seed+3)
	if err != nil {
		return nil, err
	}
	tc, err := baselines.NewTurboCC(mTc)
	if err != nil {
		return nil, err
	}
	if err := tc.Calibrate(3); err != nil {
		return nil, err
	}
	tres, err := tc.Transmit(randomBits(12, rng))
	if err != nil {
		return nil, err
	}

	mPt, err := newMachine(p, 2.2*units.GHz, 2, seed+4)
	if err != nil {
		return nil, err
	}
	pt, err := baselines.NewPowerT(mPt)
	if err != nil {
		return nil, err
	}
	if err := pt.Calibrate(4); err != nil {
		return nil, err
	}
	pres, err := pt.Transmit(randomBits(24, rng))
	if err != nil {
		return nil, err
	}

	ich := (smt.ThroughputBPS + cores.ThroughputBPS) / 2
	rep := NewReport("fig12b", "Cross-SMT / cross-core channel throughput comparison")
	tab := rep.Table("throughput (b/s)", "channel", "paper", "model", "BER", "IChannels ratio (model)")
	tab.AddRow("DFScovert", "20", f0(dres.ThroughputBPS), f3(dres.BER), fmt.Sprintf("%.0f×", ich/dres.ThroughputBPS))
	tab.AddRow("TurboCC", "61", f0(tres.ThroughputBPS), f3(tres.BER), fmt.Sprintf("%.0f×", ich/tres.ThroughputBPS))
	tab.AddRow("PowerT", "122", f0(pres.ThroughputBPS), f3(pres.BER), fmt.Sprintf("%.1f×", ich/pres.ThroughputBPS))
	tab.AddRow("IccSMTcovert", "2899", f0(smt.ThroughputBPS), f3(smt.BER), "-")
	tab.AddRow("IccCoresCovert", "2899", f0(cores.ThroughputBPS), f3(cores.BER), "-")
	rep.Metric("dfscovert_bps", dres.ThroughputBPS)
	rep.Metric("turbocc_bps", tres.ThroughputBPS)
	rep.Metric("powert_bps", pres.ThroughputBPS)
	rep.Metric("iccsmt_bps", smt.ThroughputBPS)
	rep.Metric("icccores_bps", cores.ThroughputBPS)
	rep.Metric("ratio_vs_powert", ich/pres.ThroughputBPS)
	rep.Metric("ratio_vs_turbocc", ich/tres.ThroughputBPS)
	rep.Metric("ratio_vs_dfscovert", ich/dres.ThroughputBPS)
	rep.Note("paper ratios: 145× / 47× / 24× over DFScovert / TurboCC / PowerT; the model's slot is ~20 µs longer than the paper's 690 µs cycle, giving ≈2.8 kb/s")
	return rep, nil
}
