package exp

import (
	"fmt"

	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/stats"
	"ichannels/internal/units"
)

func init() {
	register("fig8a", "§5.4", "throttling-period distribution per processor (AVX2)", Fig8a)
	register("fig8bc", "§5.4", "AVX2 power-gate wake latency via first-iteration delta", Fig8bc)
}

// fig8aOperatingPoint returns the frequency each part is characterized at
// in the Fig. 8(a) distribution (the parts run their AVX2 sustained
// operating points; the Cannon Lake mobile part sustains multi-core AVX2
// near 1.5 GHz).
func fig8aOperatingPoint(p model.Processor) units.Hertz {
	switch p.CodeName {
	case "Haswell":
		return 3.5 * units.GHz
	case "Coffee Lake":
		return 3.6 * units.GHz
	default: // Cannon Lake
		return 1.5 * units.GHz
	}
}

// Fig8a reproduces Fig. 8(a): the distribution of the AVX2 throttling
// period on the three parts. Haswell's FIVR ramps faster than the MBVR
// parts, so its TP is the shortest (~9 µs vs ~12–15 µs).
func Fig8a(seed int64) (*Report, error) {
	rep := NewReport("fig8a", "Throttling period distribution per processor (AVX2 loop)")
	tab := rep.Table("TP distribution", "processor", "PDN", "paper TP (µs)", "model mean (µs)", "p5", "p95")
	paperTP := map[string]string{"Haswell": "≈9", "Coffee Lake": "≈12", "Cannon Lake": "≈12-15"}

	for _, p := range model.All() {
		m, err := soc.New(soc.Options{
			Processor:       p,
			RequestedFreq:   fig8aOperatingPoint(p),
			Cores:           1,
			Noise:           soc.WithRates(300, 50),
			TSCJitterCycles: 100,
			Seed:            seed,
		})
		if err != nil {
			return nil, err
		}
		var tps []float64
		for i := 0; i < 30; i++ {
			tp, err := measureTP(m, isa.Vec256Heavy, 150)
			if err != nil {
				return nil, err
			}
			tps = append(tps, tp.Microseconds())
			waitReset(m)
		}
		s := stats.Summarize(tps)
		tab.AddRow(p.CodeName, p.VR.Kind.String(), paperTP[p.CodeName], f1(s.Mean), f1(s.P5), f1(s.P95))
		rep.Metric("tp_mean_us_"+p.CodeName, s.Mean)
	}
	rep.Note("Haswell (FIVR) must ramp faster than the MBVR parts; ordering Haswell < Coffee Lake ≤ Cannon Lake is the paper's key shape")
	return rep, nil
}

// Fig8bc reproduces Fig. 8(b,c): the execution-time delta of the first
// AVX2 loop iteration (in which the power gate opens) versus subsequent
// iterations, on Coffee Lake (which power-gates the AVX unit since
// Skylake) and Haswell (which does not). The loop is 300 VMULPD
// instructions; all iterations run inside the throttling window.
func Fig8bc(seed int64) (*Report, error) {
	rep := NewReport("fig8bc", "AVX2 power-gate wake: first-iteration latency delta")
	tab := rep.Table("per-iteration execution time delta vs. steady state (ns)",
		"processor", "iter 1", "iter 2", "iter 3", "paper iter-1 delta")

	vmulLoop := isa.Kernel{Name: "vmulpd_x300", Class: isa.Vec256Heavy, UopsPerIter: 300, BaseUPC: 1, CdynScale: 1}
	for _, p := range []model.Processor{model.CoffeeLake9700K(), model.Haswell4770K()} {
		m, err := newMachine(p, 3*units.GHz, 1, seed)
		if err != nil {
			return nil, err
		}
		seq := &burstSequence{
			label: "fig8bc",
			start: units.Time(5 * units.Microsecond),
			bursts: []soc.Action{
				soc.Exec(vmulLoop, 1),
				soc.Exec(vmulLoop, 1),
				soc.Exec(vmulLoop, 1),
			},
		}
		if _, err := m.Bind(0, 0, seq); err != nil {
			return nil, err
		}
		m.RunFor(300 * units.Microsecond)
		if len(seq.res) != 3 {
			return nil, fmt.Errorf("exp: fig8bc captured %d iterations", len(seq.res))
		}
		steady := seq.res[2].Elapsed()
		deltas := make([]float64, 3)
		for i, r := range seq.res {
			deltas[i] = (r.Elapsed() - steady).Nanoseconds()
		}
		paper := "≈8-15 (gate opens)"
		if present, _, _ := p.AVX256Gate.Gate(); !present {
			paper = "≈0 (no AVX gate)"
		}
		tab.AddRow(p.CodeName, f1(deltas[0]), f1(deltas[1]), f1(deltas[2]), paper)
		rep.Metric("first_iter_delta_ns_"+p.CodeName, deltas[0])
		rep.Metric("avx_gate_wakes_"+p.CodeName, float64(m.Cores[0].AVX256Wakes()))
	}
	rep.Note("the wake latency is ~0.1%% of the 9-15 µs throttling period — power gating cannot be the cause of AVX throttling (Key Conclusion 3)")
	return rep, nil
}
