package exp

import (
	"fmt"

	"ichannels/internal/core"
	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/stats"
	"ichannels/internal/units"
)

func init() {
	register("fig13", "§6.1", "receiver TP distribution per symbol level in a low-noise system", Fig13)
}

// Fig13 reproduces Fig. 13: the distribution of the receiver's measured
// throttling period (in TSC cycles) for each of the four symbol levels on
// a low-noise system (event rates under 1000/s) with other non-AVX
// applications running. The four ranges must not overlap, with >2K cycles
// of separation — which is why the channel's error rate is ≈0 in low
// noise.
func Fig13(seed int64) (*Report, error) {
	p := model.CannonLake8121U()
	m, err := soc.New(soc.Options{
		Processor:       p,
		RequestedFreq:   2.2 * units.GHz,
		Cores:           2,
		Noise:           soc.WithRates(600, 200), // "low noise": <1000 events/s
		TSCJitterCycles: 250,
		Seed:            seed,
	})
	if err != nil {
		return nil, err
	}
	ch, err := core.New(m, core.DefaultParams(core.SameThread, p))
	if err != nil {
		return nil, err
	}

	const perLevel = 60
	schedule := make([]core.Symbol, 0, perLevel*core.NumSymbols)
	for i := 0; i < perLevel; i++ {
		for s := 0; s < core.NumSymbols; s++ {
			schedule = append(schedule, core.Symbol(s))
		}
	}
	measures, err := ch.RunSymbols(schedule)
	if err != nil {
		return nil, err
	}
	groups := make([][]float64, core.NumSymbols)
	for i, mv := range measures {
		s := schedule[i]
		groups[s] = append(groups[s], float64(mv))
	}

	rep := NewReport("fig13", "Receiver TP distribution per level (TSC cycles), low-noise system")
	tab := rep.Table("per-level distribution", "level", "symbol bits", "mean (cycles)", "std", "min", "max")
	for s := core.NumSymbols - 1; s >= 0; s-- {
		sum := stats.Summarize(groups[s])
		hi, lo := core.Symbol(s).Bits()
		tab.AddRow(core.Symbol(s).Level(), fmt.Sprintf("%d%d", hi, lo), f0(sum.Mean), f0(sum.Std), f0(sum.Min), f0(sum.Max))
		rep.Metric(fmt.Sprintf("mean_cycles_%s", core.Symbol(s).Level()), sum.Mean)
	}

	// The paper's headline property: non-overlapping ranges, >2K cycles
	// apart. A handful of noise-hit outliers are trimmed the way the
	// paper's density plot suppresses tails.
	trimmed := make([][]float64, len(groups))
	for i, g := range groups {
		sum := stats.Summarize(g)
		for _, v := range g {
			if v >= sum.P5 && v <= sum.P95 {
				trimmed[i] = append(trimmed[i], v)
			}
		}
	}
	sep := stats.Separable(trimmed, 2000)
	sepVal := 0.0
	if sep {
		sepVal = 1
	}
	rep.Metric("separable_gt_2k_cycles", sepVal)
	rep.Note("paper: the four TP ranges do not overlap and are >2K cycles apart → error rate ≈0 in low noise (model separable=%v)", sep)
	return rep, nil
}
