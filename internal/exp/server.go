package exp

import (
	"math/rand"

	"ichannels/internal/core"
	"ichannels/internal/model"
	"ichannels/internal/units"
)

func init() {
	register("server", "§6.4", "IChannels on a Skylake-SP server part (extension)", Server)
}

// Server is an extension experiment for the paper's §6.4: Intel server
// cores share the client cores' current-management design, so all three
// channels should establish on a server part too. The Skylake-SP profile
// is extrapolated (the paper publishes no server figures), so this is an
// existence/shape result: all three channels calibrate with separable
// levels and transmit error-free at ≈2.8 kb/s.
func Server(seed int64) (*Report, error) {
	p := model.XeonPlatinum8160()
	rep := NewReport("server", "IChannels on a Skylake-SP server part (extension)")
	tab := rep.Table("channel establishment on "+p.Name,
		"channel", "calibration gap (cycles)", "BER", "throughput (b/s)")

	rng := rand.New(rand.NewSource(seed + 21))
	for _, kind := range []core.Kind{core.SameThread, core.SMT, core.CrossCore} {
		// Use a distant core pair: the mechanism is package-wide.
		m, err := newMachine(p, 2.1*units.GHz, 8, seed+int64(kind))
		if err != nil {
			return nil, err
		}
		params := core.DefaultParams(kind, p)
		if kind == core.CrossCore {
			params.ReceiverCore = 7
		}
		ch, err := core.New(m, params)
		if err != nil {
			return nil, err
		}
		cal, err := ch.Calibrate(5)
		if err != nil {
			return nil, err
		}
		res, err := ch.Transmit(randomBits(48, rng))
		if err != nil {
			return nil, err
		}
		tab.AddRow(kind.String(), f0(cal.Gap), f3(res.BER), f0(res.ThroughputBPS))
		rep.Metric("gap_"+kind.String(), cal.Gap)
		rep.Metric("ber_"+kind.String(), res.BER)
		rep.Metric("bps_"+kind.String(), res.ThroughputBPS)
	}
	rep.Note("server profile is an extrapolation (paper §6.4 gives no figures); result is existence of all three channels, not calibrated magnitudes")
	return rep, nil
}
