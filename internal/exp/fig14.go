package exp

import (
	"fmt"
	"math/rand"

	"ichannels/internal/core"
	"ichannels/internal/isa"
	"ichannels/internal/model"
	"ichannels/internal/soc"
	"ichannels/internal/units"
	"ichannels/internal/workload"
)

func init() {
	register("fig14a", "§6.3", "BER vs interrupt / context-switch rate", Fig14a)
	register("fig14b", "§6.3", "decoding errors by App-PHI level × channel-PHI level", Fig14b)
	register("fig14c", "§6.3", "BER vs concurrent App-PHI injection rate", Fig14c)
	register("sevenzip", "§6.3", "BER with the 7-zip proxy running concurrently", SevenZip)
}

// noisyTransmit runs an IccThreadCovert transmission under a given noise
// configuration and optional concurrent app, returning the BER.
func noisyTransmit(noise soc.NoiseConfig, app func(m *soc.Machine) error, nBits int, seed int64) (float64, error) {
	p := model.CannonLake8121U()
	m, err := soc.New(soc.Options{
		Processor:       p,
		RequestedFreq:   2.2 * units.GHz,
		Cores:           2,
		Noise:           noise,
		TSCJitterCycles: 250,
		Seed:            seed,
	})
	if err != nil {
		return 0, err
	}
	ch, err := core.New(m, core.DefaultParams(core.SameThread, p))
	if err != nil {
		return 0, err
	}
	if _, err := ch.Calibrate(6); err != nil {
		return 0, err
	}
	if app != nil {
		if err := app(m); err != nil {
			return 0, err
		}
	}
	rng := rand.New(rand.NewSource(seed + 5))
	res, err := ch.Transmit(randomBits(nBits, rng))
	if err != nil {
		return 0, err
	}
	return res.BER, nil
}

// Fig14a reproduces Fig. 14(a): the channel's bit error rate as a
// function of the interrupt and context-switch rates. Even thousands of
// events per second leave the BER under ≈0.08, because an event must land
// inside the microseconds-long decoding window to corrupt a symbol.
func Fig14a(seed int64) (*Report, error) {
	rep := NewReport("fig14a", "BER vs system event rate (IccThreadCovert)")
	tab := rep.Table("bit error rate", "events/s", "interrupts BER", "ctx-switch BER")
	rates := []float64{1, 10, 100, 1000, 10000}
	const nBits = 160
	for i, r := range rates {
		imin, imax := soc.DefaultInterrupt()
		cmin, cmax := soc.DefaultCtxSwitch()
		berIRQ, err := noisyTransmit(soc.NoiseConfig{
			InterruptRate: r, InterruptMin: imin, InterruptMax: imax,
		}, nil, nBits, seed+int64(i))
		if err != nil {
			return nil, err
		}
		berCtx, err := noisyTransmit(soc.NoiseConfig{
			CtxSwitchRate: r, CtxSwitchMin: cmin, CtxSwitchMax: cmax,
		}, nil, nBits, seed+100+int64(i))
		if err != nil {
			return nil, err
		}
		tab.AddRow(f0(r), f3(berIRQ), f3(berCtx))
		rep.Metric(fmt.Sprintf("ber_irq_%.0f", r), berIRQ)
		rep.Metric(fmt.Sprintf("ber_ctx_%.0f", r), berCtx)
	}
	rep.Note("paper: BER stays below ≈0.08 even in highly noisy systems (thousands of events/s)")
	rep.Note("deviation: at 10⁴ ctx-switches/s the model's BER exceeds the paper's because its decode window (~25-50 µs; guardband steps calibrated at 2.2 GHz) is ~2× the paper's few-µs interval; §6.3's averaging/ECC recovery is available in the ecc package")
	return rep, nil
}

// Fig14b reproduces Fig. 14(b): which (App-PHI level, channel-PHI level)
// combinations decode erroneously when a concurrent application injects
// PHIs during transactions. Errors concentrate where the App's level
// exceeds the channel symbol's level (the App's guardband masks the
// symbol's).
func Fig14b(seed int64) (*Report, error) {
	p := model.CannonLake8121U()
	appLevels := []isa.Class{isa.Vec128Heavy, isa.Vec256Light, isa.Vec256Heavy, isa.Vec512Heavy}
	rep := NewReport("fig14b", "Symbol error rate by App-PHI level × channel symbol level")
	tab := rep.Table("symbol error rate (App injecting at 5000 PHIs/s)",
		"App-PHI \\ ICh-PHI", "L4 (128H)", "L3 (256L)", "L2 (256H)", "L1 (512H)")

	for ai, appCls := range appLevels {
		m, err := soc.New(soc.Options{
			Processor: p, RequestedFreq: 2.2 * units.GHz, Cores: 2,
			TSCJitterCycles: 250, Seed: seed + int64(ai),
		})
		if err != nil {
			return nil, err
		}
		ch, err := core.New(m, core.DefaultParams(core.SameThread, p))
		if err != nil {
			return nil, err
		}
		if _, err := ch.Calibrate(6); err != nil {
			return nil, err
		}
		// Start the interfering app on the other core, then probe each
		// symbol level repeatedly.
		inj := &workload.PHIInjector{Rate: 5000, Class: appCls, BurstIters: 50, Until: units.Time(1<<62 - 1)}
		if _, err := m.Bind(1, 0, inj); err != nil {
			return nil, err
		}
		const per = 24
		row := []string{appCls.String()}
		for s := 0; s < core.NumSymbols; s++ {
			schedule := make([]core.Symbol, per)
			for i := range schedule {
				schedule[i] = core.Symbol(s)
			}
			measures, err := ch.RunSymbols(schedule)
			if err != nil {
				return nil, err
			}
			errs := 0
			for _, mv := range measures {
				if ch.Calibration().Decode(float64(mv)) != core.Symbol(s) {
					errs++
				}
			}
			ser := float64(errs) / float64(per)
			row = append(row, f3(ser))
			rep.Metric(fmt.Sprintf("ser_app%s_sym%s", appCls, core.Symbol(s).Level()), ser)
		}
		tab.AddRow(row...)
	}
	rep.Note("paper: errors occur when the App's PHI level exceeds the channel's PHI level (Fig. 14(b), red cells)")
	return rep, nil
}

// Fig14c reproduces Fig. 14(c): BER as a function of the App's PHI
// injection rate, with the App drawing a random level per burst. BER
// rises markedly at high injection rates.
func Fig14c(seed int64) (*Report, error) {
	rep := NewReport("fig14c", "BER vs concurrent App-PHI rate (random levels)")
	tab := rep.Table("bit error rate", "App-PHIs/s", "BER")
	rates := []float64{10, 100, 1000, 10000}
	const nBits = 160
	for i, r := range rates {
		rate := r
		ber, err := noisyTransmit(soc.NoiseConfig{}, func(m *soc.Machine) error {
			inj := &workload.PHIInjector{Rate: rate, Random: true, BurstIters: 50, Until: units.Time(1<<62 - 1)}
			_, err := m.Bind(1, 0, inj)
			return err
		}, nBits, seed+int64(i))
		if err != nil {
			return nil, err
		}
		tab.AddRow(f0(r), f3(ber))
		rep.Metric(fmt.Sprintf("ber_rate_%.0f", r), ber)
	}
	rep.Note("paper: BER increases significantly as the App executes PHIs at higher rates")
	return rep, nil
}

// SevenZip reproduces the paper's §6.3 experiment: the 7-zip proxy (AVX2
// but no AVX-512) runs concurrently while the channel sends data; the
// observed BER stays under 0.07. (The paper transmits for 60 s; the
// simulation transmits a proportionally scaled stream.)
func SevenZip(seed int64) (*Report, error) {
	const nBits = 600 // ≈0.21 s of channel time; same mechanism density as 60 s
	ber, err := noisyTransmit(soc.WithRates(600, 200), func(m *soc.Machine) error {
		zip := &workload.SevenZip{Until: units.Time(1<<62 - 1)}
		_, err := m.Bind(1, 0, zip)
		return err
	}, nBits, seed)
	if err != nil {
		return nil, err
	}
	rep := NewReport("sevenzip", "BER with concurrent 7-zip proxy (AVX2, no AVX-512)")
	tab := rep.Table("7-zip interference", "quantity", "paper", "model")
	tab.AddRow("BER across IChannels", "< 0.07", f3(ber))
	rep.Metric("ber", ber)
	rep.Note("7-zip's 256-bit bursts only mask the lowest symbol levels sporadically; the receiver's 512b_Heavy reference keeps most transactions intact")
	return rep, nil
}
