// Package exp regenerates every table and figure of the paper's
// evaluation (§5–§7) on the simulator: each experiment builds the
// machine(s) it needs, runs the workloads, and returns a Report with the
// same rows/series the paper plots, plus scalar metrics that the
// repository's benchmarks and tests assert on.
package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

func (t *Table) render(b *strings.Builder) {
	if t.Title != "" {
		fmt.Fprintf(b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// Report is the structured output of one experiment.
type Report struct {
	ID    string
	Title string
	// Tables hold the figure/table data in the paper's layout.
	Tables []*Table
	// Metrics are scalar results keyed by name (asserted by tests,
	// reported by benchmarks).
	Metrics map[string]float64
	// Notes records caveats and paper-vs-measured commentary.
	Notes []string
}

// NewReport creates an empty report.
func NewReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Metrics: map[string]float64{}}
}

// Metric records a scalar result. Names are normalized to contain no
// whitespace so they can double as testing.B metric units.
func (r *Report) Metric(name string, v float64) {
	r.Metrics[strings.ReplaceAll(name, " ", "_")] = v
}

// Note appends a commentary line.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Table adds and returns a new table.
func (r *Report) Table(title string, header ...string) *Table {
	t := &Table{Title: title, Header: header}
	r.Tables = append(r.Tables, t)
	return t
}

// String renders the report as plain text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteByte('\n')
		t.render(&b)
	}
	if len(r.Metrics) > 0 {
		b.WriteString("\nmetrics:\n")
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-42s %.4g\n", k, r.Metrics[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner regenerates one experiment. The seed makes noise deterministic.
type Runner func(seed int64) (*Report, error)

// registryEntry pairs a runner with its description for the CLI.
type registryEntry struct {
	ID     string
	Desc   string
	Runner Runner
}

var registry []registryEntry

func register(id, desc string, r Runner) {
	registry = append(registry, registryEntry{ID: id, Desc: desc, Runner: r})
}

// Experiments lists the registered experiment IDs in definition order,
// with descriptions.
func Experiments() [][2]string {
	out := make([][2]string, len(registry))
	for i, e := range registry {
		out[i] = [2]string{e.ID, e.Desc}
	}
	return out
}

// Run executes the experiment with the given ID.
func Run(id string, seed int64) (*Report, error) {
	for _, e := range registry {
		if e.ID == id {
			return e.Runner(seed)
		}
	}
	return nil, fmt.Errorf("exp: unknown experiment %q (use one of %v)", id, ids())
}

func ids() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
