// Package exp regenerates every table and figure of the paper's
// evaluation (§5–§7) on the simulator: each experiment builds the
// machine(s) it needs, runs the workloads, and returns a Report with the
// same rows/series the paper plots, plus scalar metrics that the
// repository's benchmarks and tests assert on.
//
// The package is split into the experiment runners (fig*.go, tables.go,
// server.go), the registry that names them (registry.go), and the Report
// type they produce (this file). Reports render both as aligned plain
// text (String) and as deterministic JSON (encoding/json); orchestration
// — worker pools, derived seeds, timing — lives one layer up in
// internal/engine, and HTTP serving in internal/serve.
package exp

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a printable result table.
type Table struct {
	Title  string     `json:"title,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

func (t *Table) render(b *strings.Builder) {
	if t.Title != "" {
		fmt.Fprintf(b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// Report is the structured output of one experiment. Its JSON encoding is
// deterministic for deterministic content (encoding/json emits map keys
// in sorted order), which the engine's parallel-vs-serial equality
// guarantee and the serve cache rely on.
type Report struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Tables hold the figure/table data in the paper's layout.
	Tables []*Table `json:"tables,omitempty"`
	// Metrics are scalar results keyed by name (asserted by tests,
	// reported by benchmarks).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Notes records caveats and paper-vs-measured commentary.
	Notes []string `json:"notes,omitempty"`
}

// NewReport creates an empty report.
func NewReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Metrics: map[string]float64{}}
}

// Metric records a scalar result. Names are normalized to contain no
// whitespace so they can double as testing.B metric units.
func (r *Report) Metric(name string, v float64) {
	r.Metrics[strings.ReplaceAll(name, " ", "_")] = v
}

// Note appends a commentary line.
func (r *Report) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Table adds and returns a new table.
func (r *Report) Table(title string, header ...string) *Table {
	t := &Table{Title: title, Header: header}
	r.Tables = append(r.Tables, t)
	return t
}

// String renders the report as plain text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s — %s ===\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteByte('\n')
		t.render(&b)
	}
	if len(r.Metrics) > 0 {
		b.WriteString("\nmetrics:\n")
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-42s %.4g\n", k, r.Metrics[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
