package uarch

import (
	"math"
	"testing"

	"ichannels/internal/isa"
	"ichannels/internal/sched"
	"ichannels/internal/units"
)

// fakeCM is a scriptable CurrentManager: it can grant instantly, after a
// delay, or never.
type fakeCM struct {
	q          *sched.Queue
	grantAfter units.Duration // <0: never grant
	requests   []isa.Class
	touches    []isa.Class
	core       *Core
}

func (f *fakeCM) RequestLicense(coreID int, c isa.Class) {
	f.requests = append(f.requests, c)
	if f.grantAfter < 0 {
		return
	}
	f.q.After(f.grantAfter, "fake.grant", func(now units.Time) {
		f.core.GrantLicense(c, now)
	})
}

func (f *fakeCM) TouchLicense(coreID int, c isa.Class) { f.touches = append(f.touches, c) }

func testCoreConfig() Config {
	return Config{
		ID:                  0,
		SMTWays:             2,
		DeliverWidth:        4,
		ThrottleFactor:      0.25,
		AVX256Gate:          PowerGateConfig{Present: true, WakeLatency: 10 * units.Nanosecond, IdleTimeout: 5 * units.Microsecond},
		AVX512Gate:          PowerGateConfig{Present: true, WakeLatency: 14 * units.Nanosecond, IdleTimeout: 5 * units.Microsecond},
		BaselineUndelivered: 0.01,
	}
}

func newTestCore(t *testing.T, cfg Config, grantAfter units.Duration) (*Core, *sched.Queue, *fakeCM) {
	t.Helper()
	q := sched.NewQueue()
	cm := &fakeCM{q: q, grantAfter: grantAfter}
	c, err := NewCore(cfg, q, cm)
	if err != nil {
		t.Fatal(err)
	}
	cm.core = c
	c.SetFrequency(2*units.GHz, 0)
	return c, q, cm
}

func TestConfigValidation(t *testing.T) {
	if err := testCoreConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := testCoreConfig()
	bad.SMTWays = 3
	if bad.Validate() == nil {
		t.Error("SMTWays=3 accepted")
	}
	bad = testCoreConfig()
	bad.ThrottleFactor = 0
	if bad.Validate() == nil {
		t.Error("zero throttle factor accepted")
	}
	bad = testCoreConfig()
	bad.DeliverWidth = 0
	if bad.Validate() == nil {
		t.Error("zero width accepted")
	}
	bad = testCoreConfig()
	bad.BaselineUndelivered = 1
	if bad.Validate() == nil {
		t.Error("baseline undelivered = 1 accepted")
	}
}

func TestScalarExecutionTiming(t *testing.T) {
	c, q, cm := newTestCore(t, testCoreConfig(), 0)
	var done units.Time
	// 100 iters × 200 uops at 2 UPC, 2 GHz → 10000 cycles → 5 µs.
	c.Start(0, isa.Loop64b, 100, func(now units.Time) { done = now })
	q.Run(0)
	want := 5 * units.Microsecond
	if got := units.Duration(done); got != want {
		t.Fatalf("elapsed %v, want %v", got, want)
	}
	if len(cm.requests) != 0 {
		t.Fatal("scalar code must not request a license")
	}
	if len(cm.touches) == 0 {
		t.Fatal("kernel start must touch the license window")
	}
}

func TestThrottledExecutionTiming(t *testing.T) {
	// Grant after 12 µs: the PHI loop runs at 1/4 rate for 12 µs, then
	// full rate. 100 iters × 200 uops at 1 UPC, 2 GHz = 10 µs of work;
	// elapsed = 12 + (20000 − 12µs×0.5e9 uops)/2e9... computed: work
	// done during TP = 12 µs × 0.25 × 2e9 = 6000 uops; remaining 14000
	// at 2e9 uops/s = 7 µs → total 19 µs = 0.75·TP + W/r.
	c, q, _ := newTestCore(t, testCoreConfig(), 12*units.Microsecond)
	var done units.Time
	c.Start(0, isa.Loop256Heavy, 100, func(now units.Time) { done = now })
	q.Run(0)
	// Plus ~3 ns: the 10 ns AVX power-gate wake defers the start of
	// throttled execution, and the lost quarter-rate time is made up at
	// full rate.
	want := 19 * units.Microsecond
	if got := units.Duration(done); got < want-10*units.Nanosecond || got > want+10*units.Nanosecond {
		t.Fatalf("elapsed %v, want ≈%v", got, want)
	}
	if got := c.ThrottleTime(q.Now()); got != 12*units.Microsecond {
		t.Fatalf("throttle time %v", got)
	}
}

func TestLicenseEscalationRequestsOnce(t *testing.T) {
	c, q, cm := newTestCore(t, testCoreConfig(), units.Microsecond)
	c.Start(0, isa.Loop256Heavy, 10, nil)
	q.Run(0)
	if len(cm.requests) != 1 || cm.requests[0] != isa.Vec256Heavy {
		t.Fatalf("requests = %v", cm.requests)
	}
	// Re-running the same class with the license granted: no new request.
	c.Start(0, isa.Loop256Heavy, 10, nil)
	q.Run(0)
	if len(cm.requests) != 1 {
		t.Fatalf("redundant request issued: %v", cm.requests)
	}
	// A higher class must request again.
	c.Start(0, isa.Loop512Heavy, 10, nil)
	q.Run(0)
	if len(cm.requests) != 2 || cm.requests[1] != isa.Vec512Heavy {
		t.Fatalf("requests = %v", cm.requests)
	}
}

func TestSMTSharingHalvesRates(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 0)
	var d0, d1 units.Time
	// Two scalar threads sharing the front-end: each takes twice as long
	// as it would alone (5 µs → 10 µs).
	c.Start(0, isa.Loop64b, 100, func(now units.Time) { d0 = now })
	c.Start(1, isa.Loop64b, 100, func(now units.Time) { d1 = now })
	q.Run(0)
	if units.Duration(d0) != 10*units.Microsecond || units.Duration(d1) != 10*units.Microsecond {
		t.Fatalf("SMT elapsed: %v, %v", units.Duration(d0), units.Duration(d1))
	}
}

func TestSMTSiblingThrottledTogether(t *testing.T) {
	// The PHI thread throttles the whole core: a scalar sibling running
	// concurrently also slows 4× while the throttle lasts (paper §5.6).
	c, q, _ := newTestCore(t, testCoreConfig(), 20*units.Microsecond)
	var dScalar units.Time
	c.Start(0, isa.Loop256Heavy, 400, nil)
	c.Start(1, isa.Loop64b, 100, func(now units.Time) { dScalar = now })
	q.Run(0)
	// Scalar thread: 10000 cycles of work, SMT-shared (×0.5) and
	// throttled (×0.25) for the whole 20 µs window: rate 0.25 uops/ns →
	// 20 µs × 5000... work = 20000 uops? No: 100×200 = 20000 uops at
	// 2 UPC → shared 1 UPC → throttled 0.25 UPC = 0.5e9 uops/s →
	// 20000/0.5e9 = 40 µs > TP. After TP: rate 1 UPC ×2e9... = 2e9.
	// Done = 20 µs + (20000 − 10000)/2e9 = 25 µs.
	want := 25 * units.Microsecond
	if got := units.Duration(dScalar); got < want-100 || got > want+100 {
		t.Fatalf("sibling elapsed %v, want ≈%v", got, want)
	}
}

func TestPerThreadThrottleSparesSibling(t *testing.T) {
	cfg := testCoreConfig()
	cfg.PerThreadThrottle = true
	c, q, _ := newTestCore(t, cfg, 20*units.Microsecond)
	var dScalar units.Time
	c.Start(0, isa.Loop256Heavy, 400, nil)
	c.Start(1, isa.Loop64b, 100, func(now units.Time) { dScalar = now })
	q.Run(0)
	// With improved throttling the sibling runs SMT-shared but never
	// throttled: 20000 uops at 1 UPC × 2 GHz = 10 µs.
	want := 10 * units.Microsecond
	if got := units.Duration(dScalar); got < want-100 || got > want+2*units.Microsecond {
		t.Fatalf("sibling elapsed %v, want ≈%v", got, want)
	}
}

func TestUndeliveredCounterFractions(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 15*units.Microsecond)
	c.Start(0, isa.Loop256Heavy, 400, nil)
	q.RunUntil(units.Time(10 * units.Microsecond)) // inside the throttle window
	ctr := c.Counters(0, q.Now())
	frac := ctr.UndeliveredFraction(4)
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("throttled undelivered fraction = %g, want ≈0.75", frac)
	}
	// After the throttle: fraction decays toward the baseline.
	q.Run(0)
	end := c.Counters(0, q.Now())
	delta := end.Sub(ctr)
	tail := delta.UndeliveredFraction(4)
	if tail > 0.2 {
		t.Fatalf("unthrottled fraction = %g", tail)
	}
}

func TestPowerGateFirstUseOnly(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 0)
	var d1, d2 units.Duration
	start := q.Now()
	c.Start(0, isa.Loop256Heavy, 1, func(now units.Time) {
		d1 = now.Sub(start)
		second := now
		c.Start(0, isa.Loop256Heavy, 1, func(n2 units.Time) { d2 = n2.Sub(second) })
	})
	q.Run(0)
	if d1-d2 != 10*units.Nanosecond {
		t.Fatalf("first-use wake delta = %v, want 10ns", d1-d2)
	}
	if c.AVX256Wakes() != 1 {
		t.Fatalf("wakes = %d", c.AVX256Wakes())
	}
}

func TestPowerGateClosesAfterIdle(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 0)
	c.Start(0, isa.Loop256Heavy, 1, nil)
	q.Run(0)
	// Past the 5 µs idle timeout the gate closes; next use wakes again.
	q.At(q.Now().Add(20*units.Microsecond), "later", func(now units.Time) {
		c.Start(0, isa.Loop256Heavy, 1, nil)
	})
	q.Run(0)
	if c.AVX256Wakes() != 2 {
		t.Fatalf("wakes = %d, want 2 (gate must close after idle)", c.AVX256Wakes())
	}
}

func TestAVX512OpensBothGates(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 0)
	c.Start(0, isa.Loop512Heavy, 1, nil)
	q.Run(0)
	if c.AVX256Wakes() != 1 || c.AVX512Wakes() != 1 {
		t.Fatalf("wakes = %d/%d", c.AVX256Wakes(), c.AVX512Wakes())
	}
}

func TestScalarDoesNotTouchGates(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 0)
	c.Start(0, isa.Loop64b, 10, nil)
	c.Start(1, isa.Loop128Heavy, 10, nil) // 128-bit: not AVX-gated
	q.Run(0)
	if c.AVX256Wakes() != 0 || c.AVX512Wakes() != 0 {
		t.Fatal("non-AVX work opened a gate")
	}
}

func TestSpinOccupiesUntil(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 0)
	var done units.Time
	c.Spin(0, units.Time(7*units.Microsecond), func(now units.Time) { done = now })
	if c.BusyThreads() != 1 {
		t.Fatal("spin must occupy the slot")
	}
	q.Run(0)
	if done != units.Time(7*units.Microsecond) {
		t.Fatalf("spin ended at %v", done)
	}
	if c.BusyThreads() != 0 {
		t.Fatal("slot not freed")
	}
}

func TestPreemptPausesProgress(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 0)
	var done units.Time
	c.Start(0, isa.Loop64b, 100, func(now units.Time) { done = now }) // 5 µs of work
	q.RunUntil(units.Time(units.Microsecond))
	c.Preempt(0, 3*units.Microsecond)
	q.Run(0)
	want := 8 * units.Microsecond // 5 µs work + 3 µs preemption
	if got := units.Duration(done); got != want {
		t.Fatalf("elapsed %v, want %v", got, want)
	}
}

func TestNestedPreemption(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 0)
	var done units.Time
	c.Start(0, isa.Loop64b, 100, func(now units.Time) { done = now })
	q.RunUntil(units.Time(units.Microsecond))
	c.Preempt(0, 2*units.Microsecond)
	c.Preempt(0, 4*units.Microsecond) // overlapping: total pause 4 µs
	q.Run(0)
	want := 9 * units.Microsecond
	if got := units.Duration(done); got != want {
		t.Fatalf("elapsed %v, want %v", got, want)
	}
}

func TestHaltStopsEverything(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 0)
	var done units.Time
	c.Start(0, isa.Loop64b, 100, func(now units.Time) { done = now })
	q.RunUntil(units.Time(units.Microsecond))
	c.SetHalted(true, q.Now())
	q.RunUntil(units.Time(3 * units.Microsecond))
	c.SetHalted(false, q.Now())
	q.Run(0)
	if got := units.Duration(done); got != 7*units.Microsecond {
		t.Fatalf("elapsed %v, want 7µs (2µs halt)", got)
	}
	// CPU_CLK_UNHALTED must exclude the halt.
	ctr := c.Counters(0, q.Now())
	wantCycles := 5e-6 * 2e9 // only the running time
	if math.Abs(ctr.UnhaltedCycles-wantCycles) > 1 {
		t.Fatalf("unhalted cycles = %g, want %g", ctr.UnhaltedCycles, wantCycles)
	}
}

func TestFrequencyChangeMidKernel(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 0)
	var done units.Time
	c.Start(0, isa.Loop64b, 100, func(now units.Time) { done = now }) // 10000 cycles
	q.RunUntil(units.Time(units.Microsecond))                         // 2000 cycles done at 2 GHz
	c.SetFrequency(1*units.GHz, q.Now())
	q.Run(0)
	// Remaining 8000 cycles at 1 GHz = 8 µs → total 9 µs.
	if got := units.Duration(done); got != 9*units.Microsecond {
		t.Fatalf("elapsed %v, want 9µs", got)
	}
}

func TestDutyCycleSlowsRetirement(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 0)
	var done units.Time
	c.Start(0, isa.Loop64b, 100, func(now units.Time) { done = now }) // 10000 cycles
	q.RunUntil(units.Time(units.Microsecond))                         // 2000 cycles done at 2 GHz
	c.SetDutyCycle(0.25, q.Now())
	q.Run(0)
	// Remaining 8000 cycles at quarter duty = 4× wall time: 16 µs → 17 µs.
	if got := units.Duration(done); got != 17*units.Microsecond {
		t.Fatalf("elapsed %v, want 17µs", got)
	}
	// The off cycles count as undelivered slots, and unhalted cycles keep
	// accruing at the unmodulated clock.
	ctr := c.Counters(0, q.Now())
	wantCycles := 17e-6 * 2e9
	if math.Abs(ctr.UnhaltedCycles-wantCycles) > 1 {
		t.Fatalf("unhalted cycles = %g, want %g", ctr.UnhaltedCycles, wantCycles)
	}
	frac := Counters{UnhaltedCycles: ctr.UnhaltedCycles - 2000, UndeliveredSlots: ctr.UndeliveredSlots}.UndeliveredFraction(4)
	if frac < 0.7 {
		t.Fatalf("modulated undelivered fraction = %g, want ≥0.75-ish", frac)
	}
	// Restoring duty 1 must be a clean no-op state.
	c.SetDutyCycle(1, q.Now())
	if c.DutyCycle() != 1 {
		t.Fatalf("duty = %g after restore", c.DutyCycle())
	}
}

func TestDutyCycleValidation(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 0)
	for _, d := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("duty %g accepted", d)
				}
			}()
			c.SetDutyCycle(d, q.Now())
		}()
	}
}

func TestDowngradeKeepsPendingThrottle(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), -1) // never grant
	c.Start(0, isa.Loop256Heavy, 10, nil)
	if !c.Throttled() {
		t.Fatal("must throttle while the request is pending")
	}
	c.DowngradeLicense(isa.Scalar64, q.Now())
	if !c.Throttled() {
		t.Fatal("downgrade must not lift a pending-throttle")
	}
	c.GrantLicense(isa.Vec256Heavy, q.Now())
	if c.Throttled() {
		t.Fatal("grant must lift the throttle")
	}
}

func TestActivityReporting(t *testing.T) {
	c, q, _ := newTestCore(t, testCoreConfig(), 0)
	c.Start(0, isa.Loop256Heavy, 100, nil)
	q.RunUntil(units.Time(100 * units.Nanosecond))
	acts := c.Activity()
	if len(acts) != 2 {
		t.Fatalf("activity entries = %d", len(acts))
	}
	if !acts[0].Busy || acts[0].Class != isa.Vec256Heavy {
		t.Fatalf("activity[0] = %+v", acts[0])
	}
	if acts[1].Busy {
		t.Fatal("idle slot reported busy")
	}
}

func TestStartOnBusySlotPanics(t *testing.T) {
	c, _, _ := newTestCore(t, testCoreConfig(), 0)
	c.Start(0, isa.Loop64b, 10, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Start(0, isa.Loop64b, 10, nil)
}

func TestStartBeforeFrequencyPanics(t *testing.T) {
	q := sched.NewQueue()
	cm := &fakeCM{q: q}
	c, err := NewCore(testCoreConfig(), q, cm)
	if err != nil {
		t.Fatal(err)
	}
	cm.core = c
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Start(0, isa.Loop64b, 10, nil)
}
