package uarch

import (
	"fmt"

	"ichannels/internal/sched"
	"ichannels/internal/units"
)

// PowerGateConfig describes one execution-unit power gate (e.g. the AVX256
// or AVX512 gate present on Skylake and later parts, paper §5.4).
type PowerGateConfig struct {
	// Present is false on parts without the gate (e.g. Haswell's AVX
	// unit is not power-gated; its first AVX iteration pays nothing,
	// Fig. 8(c)).
	Present bool
	// WakeLatency is the staggered wake-up time when the gate opens
	// (8–15 ns measured in the paper; ~0.1% of a throttling period).
	WakeLatency units.Duration
	// IdleTimeout is how long the unit may sit unused before the local
	// PMU closes the gate to save leakage.
	IdleTimeout units.Duration
}

// Validate checks gate parameters.
func (c PowerGateConfig) Validate() error {
	if !c.Present {
		return nil
	}
	if c.WakeLatency < 0 {
		return fmt.Errorf("uarch: negative power-gate wake latency %v", c.WakeLatency)
	}
	if c.IdleTimeout <= 0 {
		return fmt.Errorf("uarch: power-gate idle timeout must be positive, got %v", c.IdleTimeout)
	}
	return nil
}

// PowerGate tracks the open/closed state of one gated execution unit.
// The local PMU opens it on first use (paying the staggered wake latency)
// and closes it after IdleTimeout without use, unless the unit is still
// in active use at that moment.
//
// The idle timer is deadline-lazy: uses only advance the recorded
// deadline (lastUse + IdleTimeout); one scheduled event serves a whole
// busy streak and re-arms itself at the still-future deadline when it
// fires early. The gate still closes at exactly the same simulated time
// as an eager cancel-and-reschedule would, but a use in the hot path
// costs no event allocation.
type PowerGate struct {
	cfg       PowerGateConfig
	name      string
	closeName string
	q         *sched.Queue
	inUse     func() bool // still actively executing on the unit?
	open      bool
	lastUse   units.Time
	closeEv   sched.EventRef
	onIdle    func(units.Time) // prebound onIdleTimer, allocated once

	// Wakes counts gate-open transitions (observable in Fig. 8(b) as the
	// first-iteration latency delta).
	Wakes uint64
}

// NewPowerGate creates a gate. inUse is consulted when the idle timer
// fires: if it returns true the close is deferred. A gate that is not
// Present behaves as always-open with zero wake latency.
func NewPowerGate(name string, cfg PowerGateConfig, q *sched.Queue, inUse func() bool) (*PowerGate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if inUse == nil {
		inUse = func() bool { return false }
	}
	g := &PowerGate{cfg: cfg, name: name, closeName: name + ".close", q: q, inUse: inUse}
	g.onIdle = g.onIdleTimer
	return g, nil
}

// Open reports whether the gate is currently open (units powered).
func (g *PowerGate) Open() bool { return !g.cfg.Present || g.open }

// Use records a use of the unit at time now and returns the wake delay the
// consumer must wait before executing (zero if the gate was already open).
func (g *PowerGate) Use(now units.Time) units.Duration {
	if !g.cfg.Present {
		return 0
	}
	g.lastUse = now
	if g.open {
		g.armClose()
		return 0
	}
	g.open = true
	g.Wakes++
	g.armClose()
	return g.cfg.WakeLatency
}

// Touch refreshes the idle timer without requesting a wake (used when a
// long-running kernel keeps the unit busy).
func (g *PowerGate) Touch(now units.Time) {
	if !g.cfg.Present || !g.open {
		return
	}
	g.lastUse = now
	g.armClose()
}

// armClose ensures a close timer is pending. An already-live timer is
// left alone: it may fire before the current deadline, but onIdleTimer
// re-arms at the true deadline, so the close time is unchanged.
func (g *PowerGate) armClose() {
	if g.closeEv.Cancelled() {
		g.closeEv = g.q.At(g.lastUse.Add(g.cfg.IdleTimeout), g.closeName, g.onIdle)
	}
}

// reset returns the gate to its just-constructed state under a (possibly
// updated) configuration. The owning core guarantees the scheduler was
// reset too, so no close timer is pending.
func (g *PowerGate) reset(cfg PowerGateConfig) {
	g.cfg = cfg
	g.open = false
	g.lastUse = 0
	g.closeEv = sched.EventRef{}
	g.Wakes = 0
}

func (g *PowerGate) onIdleTimer(now units.Time) {
	if !g.open {
		return
	}
	if deadline := g.lastUse.Add(g.cfg.IdleTimeout); deadline > now {
		// Used since this timer was armed: sleep on to the live deadline.
		g.closeEv = g.q.At(deadline, g.closeName, g.onIdle)
		return
	}
	if g.inUse() {
		// Unit still busy: check again a full timeout later.
		g.lastUse = now
		g.closeEv = g.q.At(now.Add(g.cfg.IdleTimeout), g.closeName, g.onIdle)
		return
	}
	g.open = false
}
