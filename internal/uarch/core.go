// Package uarch models the core microarchitecture features that current
// management interacts with: the 4-wide front-end (IDQ) to back-end uop
// delivery, the 1-of-4-cycle throttle gate that blocks delivery while the
// voltage ramps (paper §5.6, Fig. 11), SMT slot sharing (both threads of a
// core are throttled together), AVX power gates, and the two performance
// counters the paper's characterization relies on (CPU_CLK_UNHALTED and
// IDQ_UOPS_NOT_DELIVERED).
//
// Execution uses an analytic rate model: between state-change events a
// hardware thread retires uops at a constant rate determined by its
// kernel's base throughput, SMT sharing, throttle state, and the core
// clock. The core re-prices all threads whenever any of those inputs
// change, so timing is exact to the event resolution with no per-cycle
// stepping.
package uarch

import (
	"fmt"
	"strconv"

	"ichannels/internal/isa"
	"ichannels/internal/sched"
	"ichannels/internal/units"
)

// CurrentManager is what a core needs from the power management unit. The
// PMU answers license requests asynchronously by calling GrantLicense on
// the core.
type CurrentManager interface {
	// RequestLicense asks for the core's license to be raised to at
	// least class c. The core throttles itself until the grant arrives.
	RequestLicense(coreID int, c isa.Class)
	// TouchLicense informs the PMU that class c is being actively used
	// on the core, refreshing the license decay (reset-time) timer.
	TouchLicense(coreID int, c isa.Class)
}

// Config describes one simulated core.
type Config struct {
	ID      int
	SMTWays int // 1 (no SMT) or 2

	// DeliverWidth is the front-end delivery width in uops/cycle.
	DeliverWidth int

	// ThrottleFactor is the fraction of uop-delivery cycles that survive
	// the throttle gate (1 of 4 → 0.25, paper Fig. 11(b)).
	ThrottleFactor float64

	// PerThreadThrottle enables the paper's "Improved Core Throttling"
	// mitigation (§7): only the thread that executes the PHI has its
	// uops blocked; the SMT sibling runs unimpeded.
	PerThreadThrottle bool

	// ThrottleOnset is the delay between detecting a PHI needing a
	// higher license and the throttle engaging (nanoseconds; the paper
	// notes throttling starts within a few ns).
	ThrottleOnset units.Duration

	// AVX256Gate and AVX512Gate describe the vector-unit power gates.
	AVX256Gate PowerGateConfig
	AVX512Gate PowerGateConfig

	// BaselineUndelivered is the background fraction of delivery slots
	// unused in unthrottled execution (small; Fig. 11(a) shows ≈0).
	BaselineUndelivered float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SMTWays != 1 && c.SMTWays != 2 {
		return fmt.Errorf("uarch: core %d: SMTWays must be 1 or 2, got %d", c.ID, c.SMTWays)
	}
	if c.DeliverWidth <= 0 {
		return fmt.Errorf("uarch: core %d: DeliverWidth must be positive", c.ID)
	}
	if c.ThrottleFactor <= 0 || c.ThrottleFactor > 1 {
		return fmt.Errorf("uarch: core %d: ThrottleFactor %g outside (0,1]", c.ID, c.ThrottleFactor)
	}
	if c.ThrottleOnset < 0 {
		return fmt.Errorf("uarch: core %d: negative throttle onset", c.ID)
	}
	if c.BaselineUndelivered < 0 || c.BaselineUndelivered >= 1 {
		return fmt.Errorf("uarch: core %d: BaselineUndelivered %g outside [0,1)", c.ID, c.BaselineUndelivered)
	}
	if err := c.AVX256Gate.Validate(); err != nil {
		return err
	}
	return c.AVX512Gate.Validate()
}

// threadState is the lifecycle state of a hardware thread.
type threadState int

const (
	tsIdle threadState = iota
	tsWaking
	tsRunning
	tsSpinning
)

func (s threadState) String() string {
	switch s {
	case tsIdle:
		return "idle"
	case tsWaking:
		return "waking"
	case tsRunning:
		return "running"
	case tsSpinning:
		return "spinning"
	default:
		return fmt.Sprintf("threadState(%d)", int(s))
	}
}

// Counters is a snapshot of the per-thread performance counters.
type Counters struct {
	// UnhaltedCycles mirrors CPU_CLK_UNHALTED: core clock cycles while
	// the core was not halted.
	UnhaltedCycles float64
	// UndeliveredSlots mirrors IDQ_UOPS_NOT_DELIVERED: delivery slots in
	// which the IDQ delivered no uop with the back-end not stalled.
	UndeliveredSlots float64
	// RetiredUops counts uops retired by this thread.
	RetiredUops float64
}

// Sub returns c - o, the counter deltas over an interval.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		UnhaltedCycles:   c.UnhaltedCycles - o.UnhaltedCycles,
		UndeliveredSlots: c.UndeliveredSlots - o.UndeliveredSlots,
		RetiredUops:      c.RetiredUops - o.RetiredUops,
	}
}

// UndeliveredFraction is the paper's normalized metric:
// IDQ_UOPS_NOT_DELIVERED / (width · CPU_CLK_UNHALTED).
func (c Counters) UndeliveredFraction(width int) float64 {
	if c.UnhaltedCycles <= 0 {
		return 0
	}
	return c.UndeliveredSlots / (float64(width) * c.UnhaltedCycles)
}

// hwThread is one SMT hardware context of a core.
type hwThread struct {
	core *Core
	slot int

	state     threadState
	kernel    isa.Kernel
	remUops   float64
	spinEnd   units.Time
	preempted int // preemption nesting depth (OS noise)
	onDone    func(units.Time)

	rate       float64 // uops per second under current conditions
	lastAccrue units.Time
	completion sched.EventRef
	wakeEv     sched.EventRef

	// Prebound event callbacks and precomputed event names. The agent
	// transition loop schedules completion/spin/wake/resume events on
	// every slot of every transaction; binding these once per thread
	// keeps the per-event cost to the sched.Event allocation alone.
	completionFn func(units.Time)
	spinEndFn    func(units.Time)
	wakeFn       func(units.Time)
	resumeFn     func(units.Time)
	setRunning   func()
	setSpinning  func()
	incPreempt   func()
	decPreempt   func()
	doneName     string
	spinEndName  string
	wakeName     string
	resumeName   string

	ctr Counters
}

// Core is one simulated physical core.
type Core struct {
	cfg Config
	q   *sched.Queue
	cm  CurrentManager

	freq   units.Hertz
	halted bool
	// duty is the clock-modulation duty cycle in (0,1]: the fraction of
	// cycles in which the front-end delivers uops (IA32_CLOCK_MODULATION
	// T-states). 1 means unmodulated; the arithmetic below special-cases
	// that value so an unmodulated core accrues bit-identically to a core
	// built before duty cycling existed.
	duty float64

	throttled     bool
	throttleSince units.Time
	throttleTotal units.Duration
	requester     int // slot that triggered the pending license request

	license isa.Class
	pending isa.Class // requested-but-not-granted class; isa.Scalar64-1 if none

	threads []*hwThread
	avx256  *PowerGate
	avx512  *PowerGate
}

const noPending = isa.Class(-1)

// NewCore creates a core. The frequency must be set (by the PMU / clock
// domain) before any work runs.
func NewCore(cfg Config, q *sched.Queue, cm CurrentManager) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if q == nil || cm == nil {
		return nil, fmt.Errorf("uarch: core %d: nil queue or current manager", cfg.ID)
	}
	c := &Core{
		cfg:     cfg,
		q:       q,
		cm:      cm,
		duty:    1,
		license: isa.Scalar64,
		pending: noPending,
	}
	// Event names are built with strconv instead of fmt: machine
	// construction is on the short-run critical path (a 100 µs simulation
	// must not pay Sprintf's reflection cost a dozen times), and strconv
	// serves small core/slot indices from its static digit table.
	coreName := "core" + strconv.Itoa(cfg.ID)
	var err error
	c.avx256, err = NewPowerGate(coreName+".avx256pg", cfg.AVX256Gate, q, func() bool {
		return c.ActiveClass().AVX()
	})
	if err != nil {
		return nil, err
	}
	c.avx512, err = NewPowerGate(coreName+".avx512pg", cfg.AVX512Gate, q, func() bool {
		return c.ActiveClass().AVX512()
	})
	if err != nil {
		return nil, err
	}
	c.threads = make([]*hwThread, cfg.SMTWays)
	for i := range c.threads {
		t := &hwThread{core: c, slot: i, state: tsIdle}
		prefix := coreName + ".t" + strconv.Itoa(i) + "."
		t.doneName = prefix + "done"
		t.spinEndName = prefix + "spinend"
		t.wakeName = prefix + "wake"
		t.resumeName = prefix + "resume"
		t.completionFn = t.onCompletion
		t.spinEndFn = t.onSpinEnd
		t.wakeFn = t.onWake
		t.resumeFn = t.onResume
		t.setRunning = func() { t.state = tsRunning }
		t.setSpinning = func() { t.state = tsSpinning }
		t.incPreempt = func() { t.preempted++ }
		t.decPreempt = func() {
			if t.preempted > 0 {
				t.preempted--
			}
		}
		c.threads[i] = t
	}
	return c, nil
}

// ID returns the core's identifier.
func (c *Core) ID() int { return c.cfg.ID }

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Frequency returns the current core clock frequency.
func (c *Core) Frequency() units.Hertz { return c.freq }

// SetFrequency changes the core clock (called by the PMU's clock domain).
func (c *Core) SetFrequency(f units.Hertz, now units.Time) {
	if f <= 0 {
		panic(fmt.Sprintf("uarch: core %d: non-positive frequency %v", c.cfg.ID, f))
	}
	if f == c.freq {
		return
	}
	c.repriceAll(now, func() { c.freq = f })
}

// Halted reports whether the core clock is stopped (P-state transition).
func (c *Core) Halted() bool { return c.halted }

// SetHalted stops or restarts the core clock.
func (c *Core) SetHalted(h bool, now units.Time) {
	if h == c.halted {
		return
	}
	c.repriceAll(now, func() { c.halted = h })
}

// DutyCycle returns the clock-modulation duty cycle (1 when unmodulated).
func (c *Core) DutyCycle() float64 { return c.duty }

// SetDutyCycle sets the clock-modulation duty cycle (called by the PMU when
// software programs IA32_CLOCK_MODULATION). d must be in (0,1]; d == 1
// restores full delivery.
func (c *Core) SetDutyCycle(d float64, now units.Time) {
	if d <= 0 || d > 1 {
		panic(fmt.Sprintf("uarch: core %d: duty cycle %v outside (0,1]", c.cfg.ID, d))
	}
	if d == c.duty {
		return
	}
	c.repriceAll(now, func() { c.duty = d })
}

// Throttled reports whether the IDQ throttle gate is engaged.
func (c *Core) Throttled() bool { return c.throttled }

// ThrottleTime returns the cumulative time the core has spent throttled.
func (c *Core) ThrottleTime(now units.Time) units.Duration {
	t := c.throttleTotal
	if c.throttled {
		t += now.Sub(c.throttleSince)
	}
	return t
}

// License returns the currently granted license class.
func (c *Core) License() isa.Class { return c.license }

// GrantLicense is called by the PMU when the voltage transition backing a
// license request completes. It lifts the throttle if no higher request is
// still outstanding.
func (c *Core) GrantLicense(class isa.Class, now units.Time) {
	c.repriceAll(now, func() {
		if class > c.license {
			c.license = class
		}
		if c.pending != noPending && c.pending <= c.license {
			c.pending = noPending
			c.setThrottle(false, now)
		}
	})
}

// DowngradeLicense is called by the PMU when the license decays after the
// hysteresis (reset-time) expires.
func (c *Core) DowngradeLicense(class isa.Class, now units.Time) {
	c.repriceAll(now, func() {
		c.license = class
		// A pending request above the new license keeps the core
		// throttled; nothing else changes.
	})
}

func (c *Core) setThrottle(on bool, now units.Time) {
	if on == c.throttled {
		return
	}
	c.throttled = on
	if on {
		c.throttleSince = now
	} else {
		c.throttleTotal += now.Sub(c.throttleSince)
	}
}

// ActiveClass returns the highest instruction class currently being
// executed (or waking toward execution) on any thread of the core. The PMU
// consults this when deciding whether a license may decay.
func (c *Core) ActiveClass() isa.Class {
	cls := isa.Scalar64
	for _, t := range c.threads {
		if (t.state == tsRunning || t.state == tsWaking) && t.kernel.Class > cls {
			cls = t.kernel.Class
		}
	}
	return cls
}

// Busy reports whether any hardware thread is occupying the pipeline.
func (c *Core) Busy() bool { return c.BusyThreads() > 0 }

// BusyThreads returns the number of threads currently occupying pipeline
// resources (running, spinning, or waking).
func (c *Core) BusyThreads() int {
	n := 0
	for _, t := range c.threads {
		if t.state != tsIdle {
			n++
		}
	}
	return n
}

// Counters returns a snapshot of the performance counters of a thread,
// accrued up to now.
func (c *Core) Counters(slot int, now units.Time) Counters {
	t := c.thread(slot)
	t.accrue(now)
	return t.ctr
}

// AVX256Wakes returns how many times the AVX256 power gate has opened.
func (c *Core) AVX256Wakes() uint64 { return c.avx256.Wakes }

// AVX512Wakes returns how many times the AVX512 power gate has opened.
func (c *Core) AVX512Wakes() uint64 { return c.avx512.Wakes }

// ThreadActivity describes what one hardware thread is doing, for the
// electrical model.
type ThreadActivity struct {
	Busy      bool
	Class     isa.Class
	CdynScale float64
	// RateFraction is the delivered-uop rate relative to the kernel's
	// unthrottled single-thread rate (0..1); throttled or SMT-sharing
	// execution draws proportionally less dynamic current.
	RateFraction float64
}

// Activity returns the current activity of every hardware thread.
func (c *Core) Activity() []ThreadActivity {
	return c.AppendActivity(nil)
}

// AppendActivity appends the current activity of every hardware thread
// to dst and returns the extended slice — the allocation-free form for
// callers that sample at high rate and consume the values immediately
// (the electrical probe reuses one scratch buffer per machine).
func (c *Core) AppendActivity(dst []ThreadActivity) []ThreadActivity {
	base := len(dst)
	for range c.threads {
		dst = append(dst, ThreadActivity{})
	}
	out := dst[base:]
	for i, t := range c.threads {
		switch t.state {
		case tsRunning:
			frac := 0.0
			if base := t.kernel.BaseUPC * float64(c.freq); base > 0 {
				frac = t.rate / base
			}
			out[i] = ThreadActivity{Busy: true, Class: t.kernel.Class, CdynScale: t.kernel.CdynScale, RateFraction: frac}
		case tsSpinning:
			// A spin loop is scalar work at moderate activity.
			out[i] = ThreadActivity{Busy: true, Class: isa.Scalar64, CdynScale: 0.4, RateFraction: 1}
		case tsWaking:
			out[i] = ThreadActivity{Busy: true, Class: t.kernel.Class, CdynScale: t.kernel.CdynScale, RateFraction: 0}
		default:
			out[i] = ThreadActivity{}
		}
	}
	return dst
}

func (c *Core) thread(slot int) *hwThread {
	if slot < 0 || slot >= len(c.threads) {
		panic(fmt.Sprintf("uarch: core %d has no thread slot %d", c.cfg.ID, slot))
	}
	return c.threads[slot]
}

// Start begins executing iters iterations of kernel k on the given
// hardware thread slot. onDone fires when the last iteration retires.
// The thread must be idle.
func (c *Core) Start(slot int, k isa.Kernel, iters int64, onDone func(units.Time)) {
	if err := k.Validate(); err != nil {
		panic(fmt.Sprintf("uarch: core %d: %v", c.cfg.ID, err))
	}
	if iters <= 0 {
		panic(fmt.Sprintf("uarch: core %d: non-positive iteration count %d", c.cfg.ID, iters))
	}
	if c.freq <= 0 {
		panic(fmt.Sprintf("uarch: core %d: Start before frequency was set", c.cfg.ID))
	}
	t := c.thread(slot)
	if t.state != tsIdle {
		panic(fmt.Sprintf("uarch: core %d slot %d: Start while %v", c.cfg.ID, slot, t.state))
	}
	now := c.q.Now()

	// Power-gate wake: first AVX use after idle pays the staggered wake
	// latency before any uop executes (paper §5.4, Fig. 8(b)).
	var wake units.Duration
	if k.Class.AVX512() {
		wake = maxDuration(c.avx256.Use(now), c.avx512.Use(now))
	} else if k.Class.AVX() {
		wake = c.avx256.Use(now)
	}

	// Occupy the slot before any PMU traffic so the PMU's current
	// projections see this core as busy when it evaluates the request.
	t.kernel = k
	t.remUops = float64(iters) * float64(k.UopsPerIter)
	t.onDone = onDone
	t.lastAccrue = now
	if wake > 0 {
		t.state = tsWaking
		t.wakeEv = c.q.After(wake, t.wakeName, t.wakeFn)
		c.repriceAll(now, nil) // waking occupies the slot: reprice siblings
	} else {
		c.repriceAll(now, t.setRunning)
	}

	// License handling: executing a class above the granted license
	// requests an upgrade and throttles the whole core until the PMU's
	// voltage transition completes (di/dt avoidance, paper §4.1.1).
	c.cm.TouchLicense(c.cfg.ID, k.Class)
	needRequest := k.Class > c.license && (c.pending == noPending || k.Class > c.pending)
	if needRequest {
		c.repriceAll(now, func() {
			c.pending = k.Class
			c.requester = slot
			c.setThrottle(true, now)
		})
		c.cm.RequestLicense(c.cfg.ID, k.Class)
	}
}

// Spin busy-waits the thread (an rdtsc polling loop) until the absolute
// time `until`, then fires onDone. Spinning occupies pipeline resources
// (it shares the front-end with the SMT sibling) but retires no tracked
// uops.
func (c *Core) Spin(slot int, until units.Time, onDone func(units.Time)) {
	t := c.thread(slot)
	if t.state != tsIdle {
		panic(fmt.Sprintf("uarch: core %d slot %d: Spin while %v", c.cfg.ID, slot, t.state))
	}
	now := c.q.Now()
	if until < now {
		until = now
	}
	t.kernel = isa.Kernel{}
	t.onDone = onDone
	t.spinEnd = until
	t.lastAccrue = now
	c.repriceAll(now, t.setSpinning)
	t.completion = c.q.At(until, t.spinEndName, t.spinEndFn)
}

// Preempt simulates OS noise (an interrupt or context switch) landing on a
// hardware thread: for dur, the thread's own work makes no progress while
// the slot stays occupied (the OS handler runs scalar code in its place).
// Preemptions nest.
func (c *Core) Preempt(slot int, dur units.Duration) {
	t := c.thread(slot)
	now := c.q.Now()
	c.repriceAll(now, t.incPreempt)
	c.q.After(dur, t.resumeName, t.resumeFn)
}

// finishThread retires the thread's current work and invokes its callback.
func (c *Core) finishThread(t *hwThread, now units.Time) {
	t.accrue(now)
	done := t.onDone
	t.onDone = nil
	wasClass := t.kernel.Class
	c.repriceAll(now, func() {
		t.state = tsIdle
		t.rate = 0
	})
	// Keep the power-gate idle timers honest about last use.
	if wasClass.AVX() {
		c.avx256.Touch(now)
	}
	if wasClass.AVX512() {
		c.avx512.Touch(now)
	}
	c.cm.TouchLicense(c.cfg.ID, wasClass)
	if done != nil {
		done(now)
	}
}

// repriceAll accrues progress for every thread up to now, applies the
// state mutation, then recomputes rates and completion events. Passing a
// nil mutation just re-prices.
func (c *Core) repriceAll(now units.Time, mutate func()) {
	for _, t := range c.threads {
		t.accrue(now)
	}
	if mutate != nil {
		mutate()
	}
	for _, t := range c.threads {
		t.reprice(now)
	}
}

// throttleApplies reports whether the throttle gate blocks this thread's
// uop delivery. With per-thread throttling (mitigation 2), only the
// requesting thread's PHI uops are blocked.
func (c *Core) throttleApplies(t *hwThread) bool {
	if !c.throttled {
		return false
	}
	if !c.cfg.PerThreadThrottle {
		return true
	}
	return t.slot == c.requester
}

// accrue advances a thread's retired-uop progress and counters from its
// last accrual point to now under the rate that has been in effect.
func (t *hwThread) accrue(now units.Time) {
	if now <= t.lastAccrue {
		return
	}
	dt := now.Sub(t.lastAccrue).Seconds()
	t.lastAccrue = now
	c := t.core
	if t.state == tsIdle {
		return
	}
	if !c.halted {
		cycles := float64(c.freq) * dt
		t.ctr.UnhaltedCycles += cycles
		width := float64(c.cfg.DeliverWidth)
		switch {
		case t.state == tsWaking:
			// Waiting on the power gate: nothing delivered.
			t.ctr.UndeliveredSlots += width * cycles
		case c.throttleApplies(t):
			// The IDQ delivers only 1 cycle in 4; in the blocked
			// cycles all slots go undelivered (paper Fig. 11(b)).
			blocked := 1 - c.cfg.ThrottleFactor
			t.ctr.UndeliveredSlots += width * cycles * blocked
		default:
			t.ctr.UndeliveredSlots += width * cycles * c.cfg.BaselineUndelivered
		}
		if c.duty < 1 {
			// Clock modulation gates the front-end in the off fraction
			// regardless of the thread's delivery state above.
			t.ctr.UndeliveredSlots += width * cycles * (1 - c.duty)
		}
	}
	if t.state == tsRunning && t.rate > 0 {
		adv := t.rate * dt
		if adv > t.remUops {
			adv = t.remUops
		}
		t.remUops -= adv
		t.ctr.RetiredUops += adv
	}
}

// reprice recomputes the thread's uop rate from current core state and
// reschedules its completion event.
func (t *hwThread) reprice(now units.Time) {
	c := t.core
	if t.state != tsRunning {
		// Spin completion is a fixed-time event; nothing to reprice.
		return
	}
	rate := t.kernel.BaseUPC * float64(c.freq)
	if c.BusyThreads() > 1 {
		// SMT threads share the front-end delivery bandwidth.
		rate *= 0.5
	}
	if c.throttleApplies(t) {
		rate *= c.cfg.ThrottleFactor
	}
	if c.duty != 1 {
		rate *= c.duty
	}
	if c.halted || t.preempted > 0 {
		rate = 0
	}
	t.rate = rate

	c.q.Cancel(t.completion)
	t.completion = sched.EventRef{}
	if t.remUops <= 1e-9 {
		// Finished exactly at a boundary: complete now.
		t.completion = c.q.At(now, t.doneName, t.completionFn)
		return
	}
	if rate <= 0 {
		return // stalled; a future state change will reprice again
	}
	secs := t.remUops / rate
	doneAt := now.Add(units.FromSeconds(secs))
	if doneAt == now {
		doneAt = now.Add(1) // guarantee forward progress at ps resolution
	}
	t.completion = c.q.At(doneAt, t.doneName, t.completionFn)
}

// onCompletion handles a completion event (prebound per thread): accrue
// progress, reprice if a mid-flight state change outdated the event, and
// finish otherwise. An exactly-at-boundary completion (remUops already
// zero) accrues nothing and falls straight through to finishThread.
func (t *hwThread) onCompletion(tm units.Time) {
	t.completion = sched.EventRef{}
	t.accrue(tm)
	if t.remUops > 1e-6 {
		t.reprice(tm)
		if !t.completion.Cancelled() {
			return
		}
	}
	t.core.finishThread(t, tm)
}

// onSpinEnd handles a spin deadline (prebound per thread).
func (t *hwThread) onSpinEnd(tm units.Time) {
	t.completion = sched.EventRef{}
	t.core.finishThread(t, tm)
}

// onWake handles a power-gate wake completing (prebound per thread).
func (t *hwThread) onWake(tm units.Time) {
	t.wakeEv = sched.EventRef{}
	t.core.repriceAll(tm, t.setRunning)
}

// onResume handles an OS-noise preemption ending (prebound per thread).
func (t *hwThread) onResume(tm units.Time) {
	t.core.repriceAll(tm, t.decPreempt)
}

// Reset returns the core to its just-constructed state so a pooled
// machine can rerun from simulated time zero. The new configuration must
// keep the core's identity and SMT topology (machine pools key on shape);
// behavioural knobs (throttle policy, gate timings) may change. The caller
// must have reset the shared scheduler first — no events of the previous
// run may still be pending.
func (c *Core) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.ID != c.cfg.ID || cfg.SMTWays != c.cfg.SMTWays {
		return fmt.Errorf("uarch: core %d: Reset cannot change identity or topology (to core %d, %d-way)",
			c.cfg.ID, cfg.ID, cfg.SMTWays)
	}
	c.cfg = cfg
	c.freq = 0
	c.halted = false
	c.duty = 1
	c.throttled = false
	c.throttleSince = 0
	c.throttleTotal = 0
	c.requester = 0
	c.license = isa.Scalar64
	c.pending = noPending
	c.avx256.reset(cfg.AVX256Gate)
	c.avx512.reset(cfg.AVX512Gate)
	for _, t := range c.threads {
		t.state = tsIdle
		t.kernel = isa.Kernel{}
		t.remUops = 0
		t.spinEnd = 0
		t.preempted = 0
		t.onDone = nil
		t.rate = 0
		t.lastAccrue = 0
		t.completion = sched.EventRef{}
		t.wakeEv = sched.EventRef{}
		t.ctr = Counters{}
	}
	return nil
}

func maxDuration(a, b units.Duration) units.Duration {
	if a > b {
		return a
	}
	return b
}
