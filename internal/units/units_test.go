package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDurationConstants(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatalf("Nanosecond = %d ps", int64(Nanosecond))
	}
	if Second != 1e12*Picosecond {
		t.Fatalf("Second = %d ps", int64(Second))
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(5 * Microsecond)
	if t1.Sub(t0) != 5*Microsecond {
		t.Fatalf("Sub = %v", t1.Sub(t0))
	}
	if got := t1.Microseconds(); got != 5 {
		t.Fatalf("Microseconds = %g", got)
	}
	if got := Time(2 * Second).Seconds(); got != 2 {
		t.Fatalf("Seconds = %g", got)
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(us uint32) bool {
		d := Duration(us) * Microsecond
		back := FromSeconds(d.Seconds())
		diff := back - d
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1 // ≤1 ps rounding
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromSecondsSaturates(t *testing.T) {
	if FromSeconds(1e30) != Duration(math.MaxInt64) {
		t.Fatal("positive overflow must saturate")
	}
	if FromSeconds(-1e30) != Duration(math.MinInt64) {
		t.Fatal("negative overflow must saturate")
	}
}

func TestFromMicroAndNano(t *testing.T) {
	if FromMicroseconds(1.5) != 1500*Nanosecond {
		t.Fatalf("FromMicroseconds(1.5) = %v", FromMicroseconds(1.5))
	}
	if FromNanoseconds(2) != 2*Nanosecond {
		t.Fatalf("FromNanoseconds(2) = %v", FromNanoseconds(2))
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d ps → %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestVoltage(t *testing.T) {
	if MV(850) != Volt(0.85) {
		t.Fatalf("MV(850) = %v", MV(850))
	}
	if got := Volt(1.2).Millivolts(); got != 1200 {
		t.Fatalf("Millivolts = %g", got)
	}
}

func TestHertzPeriod(t *testing.T) {
	if got := (1 * GHz).Period(); got != Nanosecond {
		t.Fatalf("1GHz period = %v", got)
	}
	if got := (2 * GHz).Period(); got != 500*Picosecond {
		t.Fatalf("2GHz period = %v", got)
	}
}

func TestHertzPeriodPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero frequency")
		}
	}()
	Hertz(0).Period()
}

func TestHertzCycles(t *testing.T) {
	if got := (1 * GHz).Cycles(1 * Microsecond); got != 1000 {
		t.Fatalf("cycles = %d", got)
	}
	if got := (3 * GHz).Cycles(-1); got != 0 {
		t.Fatalf("negative duration cycles = %d", got)
	}
}

func TestHertzDurationOf(t *testing.T) {
	if got := (1 * GHz).DurationOf(1000); got != Microsecond {
		t.Fatalf("DurationOf = %v", got)
	}
}

func TestDurationOfCyclesInverse(t *testing.T) {
	f := func(n uint16) bool {
		h := 2 * GHz
		d := h.DurationOf(float64(n) + 1)
		// DurationOf ceils, so Cycles must return at least n+1 cycles
		// minus rounding of 1.
		c := h.Cycles(d)
		return c >= int64(n) && c <= int64(n)+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHertzString(t *testing.T) {
	if got := (3 * GHz).String(); got != "3GHz" {
		t.Fatalf("String = %q", got)
	}
	if got := (200 * MHz).String(); got != "200MHz" {
		t.Fatalf("String = %q", got)
	}
	if got := (5 * KHz).String(); got != "5kHz" {
		t.Fatalf("String = %q", got)
	}
}

func TestGHzF(t *testing.T) {
	if got := (2200 * MHz).GHzF(); math.Abs(got-2.2) > 1e-12 {
		t.Fatalf("GHzF = %g", got)
	}
}
