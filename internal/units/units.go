// Package units defines the physical quantities used throughout the
// simulator: simulated time (picosecond resolution), voltage, current,
// power, temperature, and frequency.
//
// Simulated time is an int64 count of picoseconds. One picosecond of
// resolution comfortably resolves a single cycle at any realistic clock
// frequency (a 5 GHz cycle is 200 ps) while an int64 still spans over 100
// days of simulated time. Electrical quantities are float64 in SI units.
package units

import (
	"fmt"
	"math"
)

// Time is an absolute simulation timestamp in picoseconds since the start
// of the simulation.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Duration constants.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Add returns the timestamp d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds converts an absolute timestamp to seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Microseconds converts an absolute timestamp to microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

func (t Time) String() string { return Duration(t).String() }

// Seconds converts a duration to seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Microseconds converts a duration to microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Nanoseconds converts a duration to nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// String renders the duration with an auto-selected unit.
func (d Duration) String() string {
	abs := d
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case abs >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case abs >= Microsecond:
		return fmt.Sprintf("%.3fus", d.Microseconds())
	case abs >= Nanosecond:
		return fmt.Sprintf("%.3fns", d.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(d))
	}
}

// FromSeconds converts seconds to a Duration, saturating on overflow.
func FromSeconds(s float64) Duration {
	ps := s * float64(Second)
	if ps >= math.MaxInt64 {
		return Duration(math.MaxInt64)
	}
	if ps <= math.MinInt64 {
		return Duration(math.MinInt64)
	}
	return Duration(ps)
}

// FromMicroseconds converts microseconds to a Duration.
func FromMicroseconds(us float64) Duration { return FromSeconds(us * 1e-6) }

// FromNanoseconds converts nanoseconds to a Duration.
func FromNanoseconds(ns float64) Duration { return FromSeconds(ns * 1e-9) }

// Volt is an electric potential in volts.
type Volt float64

// Millivolts returns the voltage expressed in millivolts.
func (v Volt) Millivolts() float64 { return float64(v) * 1000 }

// MV constructs a voltage from millivolts.
func MV(mv float64) Volt { return Volt(mv / 1000) }

func (v Volt) String() string { return fmt.Sprintf("%.4gV", float64(v)) }

// Ampere is an electric current in amperes.
type Ampere float64

func (a Ampere) String() string { return fmt.Sprintf("%.4gA", float64(a)) }

// Ohm is an electrical resistance in ohms.
type Ohm float64

// MilliOhm constructs a resistance from milliohms.
func MilliOhm(mo float64) Ohm { return Ohm(mo / 1000) }

// Watt is power in watts.
type Watt float64

func (w Watt) String() string { return fmt.Sprintf("%.4gW", float64(w)) }

// Celsius is a temperature in degrees Celsius.
type Celsius float64

func (c Celsius) String() string { return fmt.Sprintf("%.1f°C", float64(c)) }

// Hertz is a frequency in hertz.
type Hertz float64

// Frequency constants.
const (
	KHz Hertz = 1e3
	MHz Hertz = 1e6
	GHz Hertz = 1e9
)

// GHzF returns the frequency expressed in gigahertz.
func (h Hertz) GHzF() float64 { return float64(h) / 1e9 }

func (h Hertz) String() string {
	switch {
	case h >= GHz:
		return fmt.Sprintf("%.3gGHz", float64(h)/1e9)
	case h >= MHz:
		return fmt.Sprintf("%.3gMHz", float64(h)/1e6)
	case h >= KHz:
		return fmt.Sprintf("%.3gkHz", float64(h)/1e3)
	default:
		return fmt.Sprintf("%.3gHz", float64(h))
	}
}

// Period returns the duration of one cycle at frequency h.
// It panics if h is not positive: a clocked component cannot run at zero
// or negative frequency.
func (h Hertz) Period() Duration {
	if h <= 0 {
		panic(fmt.Sprintf("units: non-positive frequency %v has no period", float64(h)))
	}
	return Duration(math.Round(float64(Second) / float64(h)))
}

// Cycles returns how many whole cycles at frequency h fit in d.
func (h Hertz) Cycles(d Duration) int64 {
	if d <= 0 {
		return 0
	}
	return int64(float64(d) / float64(Second) * float64(h))
}

// DurationOf returns the time that n cycles take at frequency h.
func (h Hertz) DurationOf(n float64) Duration {
	if h <= 0 {
		panic(fmt.Sprintf("units: non-positive frequency %v", float64(h)))
	}
	return Duration(math.Ceil(n / float64(h) * float64(Second)))
}
