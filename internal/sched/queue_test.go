package sched

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ichannels/internal/units"
)

// impls returns both Scheduler implementations; every behavioural test
// runs against each, so the wheel and the oracle share one contract.
func impls() map[string]func() Scheduler {
	return map[string]func() Scheduler{
		"wheel": func() Scheduler { return NewQueue() },
		"heap":  func() Scheduler { return NewHeapQueue() },
	}
}

func forEachImpl(t *testing.T, f func(t *testing.T, mk func() Scheduler)) {
	for name, mk := range impls() {
		t.Run(name, func(t *testing.T) { f(t, mk) })
	}
}

func TestFiresInTimeOrder(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		var got []int
		q.At(30, "c", func(units.Time) { got = append(got, 3) })
		q.At(10, "a", func(units.Time) { got = append(got, 1) })
		q.At(20, "b", func(units.Time) { got = append(got, 2) })
		q.Run(0)
		if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
			t.Fatalf("order = %v", got)
		}
		if q.Now() != 30 {
			t.Fatalf("now = %v", q.Now())
		}
	})
}

func TestSameTimeFIFO(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		var got []int
		for i := 0; i < 10; i++ {
			i := i
			q.At(5, "e", func(units.Time) { got = append(got, i) })
		}
		q.Run(0)
		for i, v := range got {
			if v != i {
				t.Fatalf("same-timestamp events out of insertion order: %v", got)
			}
		}
	})
}

func TestCancel(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		fired := false
		e := q.At(10, "x", func(units.Time) { fired = true })
		q.Cancel(e)
		q.Run(0)
		if fired {
			t.Fatal("cancelled event fired")
		}
		if !e.Cancelled() {
			t.Fatal("event should report cancelled")
		}
		// Cancelling again (and the zero handle) must be no-ops.
		q.Cancel(e)
		q.Cancel(EventRef{})
	})
}

func TestCancelMiddleKeepsOthers(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		var got []string
		a := q.At(1, "a", func(units.Time) { got = append(got, "a") })
		b := q.At(2, "b", func(units.Time) { got = append(got, "b") })
		c := q.At(3, "c", func(units.Time) { got = append(got, "c") })
		_ = a
		q.Cancel(b)
		_ = c
		q.Run(0)
		if len(got) != 2 || got[0] != "a" || got[1] != "c" {
			t.Fatalf("got %v", got)
		}
	})
}

func TestHandleDiesOnFire(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		e := q.At(10, "x", func(units.Time) {})
		if e.Cancelled() {
			t.Fatal("live handle reports cancelled")
		}
		if e.Time() != 10 || e.Name() != "x" {
			t.Fatalf("live handle: Time=%v Name=%q", e.Time(), e.Name())
		}
		q.Run(0)
		if !e.Cancelled() {
			t.Fatal("fired event's handle should report cancelled")
		}
		if e.Time() != 0 || e.Name() != "" {
			t.Fatalf("dead handle: Time=%v Name=%q", e.Time(), e.Name())
		}
	})
}

// A handle to a fired event must stay dead even after the queue recycles
// the underlying node for a new event (the free-list ABA case the
// generation stamp exists for).
func TestStaleHandleAfterNodeReuse(t *testing.T) {
	q := NewQueue()
	old := q.At(10, "old", func(units.Time) {})
	q.Run(0)
	fresh := q.At(20, "fresh", func(units.Time) {})
	if !old.Cancelled() {
		t.Fatal("stale handle came back to life on node reuse")
	}
	if fresh.Cancelled() {
		t.Fatal("fresh handle reports cancelled")
	}
	// Cancelling the stale handle must not kill the new occupant.
	q.Cancel(old)
	if fresh.Cancelled() || q.Pending() != 1 {
		t.Fatalf("stale Cancel hit the recycled node: pending=%d", q.Pending())
	}
}

func TestAfter(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		q.At(100, "advance", func(units.Time) {})
		q.Step()
		var at units.Time
		q.After(50, "later", func(now units.Time) { at = now })
		q.Run(0)
		if at != 150 {
			t.Fatalf("After fired at %v", at)
		}
	})
}

func TestAfterNegativeClamps(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		fired := false
		q.After(-5, "neg", func(units.Time) { fired = true })
		q.Run(0)
		if !fired || q.Now() != 0 {
			t.Fatalf("negative After: fired=%v now=%v", fired, q.Now())
		}
	})
}

func TestPastSchedulingPanics(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		q.At(10, "x", func(units.Time) {})
		q.Step()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic when scheduling in the past")
			}
		}()
		q.At(5, "past", func(units.Time) {})
	})
}

func TestNilCallbackPanics(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for nil callback")
			}
		}()
		q.At(5, "nil", nil)
	})
}

func TestRunUntil(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		var fired []units.Time
		for _, at := range []units.Time{10, 20, 30, 40} {
			at := at
			q.At(at, "e", func(now units.Time) { fired = append(fired, now) })
		}
		q.RunUntil(25)
		if len(fired) != 2 {
			t.Fatalf("fired %v", fired)
		}
		if q.Now() != 25 {
			t.Fatalf("now = %v after RunUntil", q.Now())
		}
		q.RunUntil(100)
		if len(fired) != 4 {
			t.Fatalf("fired %v", fired)
		}
		if q.Now() != 100 {
			t.Fatalf("now = %v", q.Now())
		}
	})
}

func TestRunUntilBackwardsPanics(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		q.RunUntil(10)
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for backwards RunUntil")
			}
		}()
		q.RunUntil(5)
	})
}

func TestEventsScheduledDuringRun(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		var got []units.Time
		q.At(10, "a", func(now units.Time) {
			got = append(got, now)
			q.At(now.Add(5), "b", func(n2 units.Time) { got = append(got, n2) })
		})
		q.Run(0)
		if len(got) != 2 || got[1] != 15 {
			t.Fatalf("got %v", got)
		}
	})
}

func TestRunMaxEvents(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		count := 0
		var reschedule func(units.Time)
		reschedule = func(now units.Time) {
			count++
			q.At(now.Add(1), "loop", reschedule)
		}
		q.At(0, "loop", reschedule)
		n := q.Run(100)
		if n != 100 || count != 100 {
			t.Fatalf("ran %d events, callback count %d", n, count)
		}
		if q.Fired() != 100 {
			t.Fatalf("Fired = %d", q.Fired())
		}
	})
}

func TestPending(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		q := mk()
		if q.Pending() != 0 {
			t.Fatal("fresh queue not empty")
		}
		q.At(1, "a", func(units.Time) {})
		q.At(2, "b", func(units.Time) {})
		if q.Pending() != 2 {
			t.Fatalf("Pending = %d", q.Pending())
		}
		q.Step()
		if q.Pending() != 1 {
			t.Fatalf("Pending = %d", q.Pending())
		}
	})
}

// Events spread far beyond the ring horizon (the overflow tier) and dense
// near events must interleave in exact time order.
func TestOverflowTierOrdering(t *testing.T) {
	q := NewQueue()
	var got []units.Time
	rec := func(now units.Time) { got = append(got, now) }
	// Far events first (land in overflow), then near ones (land in ring).
	times := []units.Time{
		units.Time(5 * units.Millisecond), // ~5 ring horizons out
		units.Time(2 * units.Millisecond),
		units.Time(100 * units.Millisecond),
		units.Time(3 * units.Microsecond),
		units.Time(900 * units.Microsecond),
		units.Time(1),
	}
	for _, tm := range times {
		q.At(tm, "e", rec)
	}
	q.Run(0)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("overflow interleaving out of order: %v", got)
	}
	if len(got) != len(times) {
		t.Fatalf("fired %d of %d", len(got), len(times))
	}
}

// Steady-state scheduling must reuse nodes from the free list instead of
// allocating.
func TestWheelSteadyStateAllocFree(t *testing.T) {
	q := NewQueue()
	fn := func(units.Time) {}
	// Warm the free list.
	for i := 0; i < 64; i++ {
		q.After(units.Duration(i+1), "warm", fn)
	}
	q.Run(0)
	allocs := testing.AllocsPerRun(100, func() {
		e := q.After(10, "hot", fn)
		q.Cancel(e)
		q.After(5, "hot", fn)
		q.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/cancel/fire allocated %v per run", allocs)
	}
}

func TestQueueReset(t *testing.T) {
	q := NewQueue()
	fired := 0
	q.At(10, "a", func(units.Time) { fired++ })
	q.At(units.Time(50*units.Millisecond), "far", func(units.Time) { fired++ })
	q.Step()
	q.Reset()
	if q.Now() != 0 || q.Pending() != 0 || q.Fired() != 0 {
		t.Fatalf("after Reset: now=%v pending=%d fired=%d", q.Now(), q.Pending(), q.Fired())
	}
	// A reset queue must replay exactly like a fresh one, including
	// sequence-number FIFO ordering at equal times.
	var got []int
	for i := 0; i < 4; i++ {
		i := i
		q.At(7, "e", func(units.Time) { got = append(got, i) })
	}
	q.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("post-Reset FIFO broken: %v", got)
		}
	}
}

// Property: any randomly scheduled set of events fires in nondecreasing
// time order, on both implementations.
func TestPropertyOrdering(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		f := func(times []uint16) bool {
			q := mk()
			var fired []units.Time
			for _, tm := range times {
				q.At(units.Time(tm), "e", func(now units.Time) { fired = append(fired, now) })
			}
			q.Run(0)
			if len(fired) != len(times) {
				return false
			}
			return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatal(err)
		}
	})
}

// Property: cancelling a random subset removes exactly that subset.
func TestPropertyCancelSubset(t *testing.T) {
	forEachImpl(t, func(t *testing.T, mk func() Scheduler) {
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 50; trial++ {
			q := mk()
			n := 1 + rng.Intn(64)
			events := make([]EventRef, n)
			firedCount := 0
			for i := 0; i < n; i++ {
				events[i] = q.At(units.Time(rng.Intn(1000)), "e", func(units.Time) { firedCount++ })
			}
			cancelled := 0
			for _, e := range events {
				if rng.Intn(2) == 0 {
					q.Cancel(e)
					cancelled++
				}
			}
			q.Run(0)
			if firedCount != n-cancelled {
				t.Fatalf("trial %d: fired %d, want %d", trial, firedCount, n-cancelled)
			}
		}
	})
}
