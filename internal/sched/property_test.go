package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"ichannels/internal/units"
)

// TestWheelMatchesHeapOracle drives the timing wheel and the reference
// heap with the same randomized operation mix — schedule (near, far, and
// same-time), cancel, reschedule (cancel + re-add), Step, and RunUntil
// advances — and requires both to fire the same events at the same times
// in the same order. This is the determinism contract behind the
// byte-identical-output guarantee: identical (time, sequence) total order
// regardless of the queue's internal structure.
func TestWheelMatchesHeapOracle(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			runOracleTrial(t, seed, 2000)
		})
	}
}

// firing is one observed event execution.
type firing struct {
	id int
	at units.Time
}

func runOracleTrial(t *testing.T, seed int64, ops int) {
	rng := rand.New(rand.NewSource(seed))
	wheel := Scheduler(NewQueue())
	oracle := Scheduler(NewHeapQueue())

	var wheelLog, oracleLog []firing
	type handles struct{ w, h EventRef }
	var live []handles
	nextID := 0

	schedule := func(d units.Duration) {
		id := nextID
		nextID++
		name := "ev"
		wRef := wheel.After(d, name, func(now units.Time) {
			wheelLog = append(wheelLog, firing{id: id, at: now})
		})
		hRef := oracle.After(d, name, func(now units.Time) {
			oracleLog = append(oracleLog, firing{id: id, at: now})
		})
		live = append(live, handles{w: wRef, h: hRef})
	}

	// Delay distribution mixes the simulator's real scales: sub-tick,
	// in-ring, and far past the overflow horizon.
	randDelay := func() units.Duration {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // dense near-future (within one bucket or a few)
			return units.Duration(rng.Int63n(int64(3 * units.Microsecond)))
		case 4, 5, 6: // mid-ring (license-hysteresis scale)
			return units.Duration(rng.Int63n(int64(900 * units.Microsecond)))
		case 7, 8: // beyond the ring horizon (frequency-restore scale)
			return units.Duration(rng.Int63n(int64(40 * units.Millisecond)))
		default: // exactly now (same-time FIFO ordering)
			return 0
		}
	}

	for op := 0; op < ops; op++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // schedule
			schedule(randDelay())
		case 4: // cancel a random live handle on both
			if len(live) > 0 {
				i := rng.Intn(len(live))
				wheel.Cancel(live[i].w)
				oracle.Cancel(live[i].h)
				live = append(live[:i], live[i+1:]...)
			}
		case 5: // reschedule: cancel then re-add at a fresh delay
			if len(live) > 0 {
				i := rng.Intn(len(live))
				wheel.Cancel(live[i].w)
				oracle.Cancel(live[i].h)
				live = append(live[:i], live[i+1:]...)
				schedule(randDelay())
			}
		case 6, 7: // fire one event
			sw := wheel.Step()
			so := oracle.Step()
			if sw != so {
				t.Fatalf("op %d: Step returned wheel=%v oracle=%v", op, sw, so)
			}
		case 8: // advance both clocks across a random window
			d := randDelay()
			wheel.RunUntil(wheel.Now().Add(d))
			oracle.RunUntil(oracle.Now().Add(d))
		case 9: // consistency probes
			if wheel.Now() != oracle.Now() {
				t.Fatalf("op %d: now diverged: wheel=%v oracle=%v", op, wheel.Now(), oracle.Now())
			}
			if wheel.Pending() != oracle.Pending() {
				t.Fatalf("op %d: pending diverged: wheel=%d oracle=%d", op, wheel.Pending(), oracle.Pending())
			}
			if wheel.Fired() != oracle.Fired() {
				t.Fatalf("op %d: fired diverged: wheel=%d oracle=%d", op, wheel.Fired(), oracle.Fired())
			}
		}
		// Dead handles must agree too (a cancelled/fired wheel handle may
		// sit on the free list; it must still read as cancelled).
		for i := range live {
			if live[i].w.Cancelled() != live[i].h.Cancelled() {
				t.Fatalf("op %d: handle %d liveness diverged", op, i)
			}
		}
	}

	// Drain everything that remains.
	wheel.Run(0)
	oracle.Run(0)

	if len(wheelLog) != len(oracleLog) {
		t.Fatalf("fired %d events on wheel, %d on oracle", len(wheelLog), len(oracleLog))
	}
	for i := range wheelLog {
		if wheelLog[i] != oracleLog[i] {
			t.Fatalf("firing %d diverged: wheel=%+v oracle=%+v", i, wheelLog[i], oracleLog[i])
		}
	}
	if wheel.Fired() != oracle.Fired() {
		t.Fatalf("final fired counts diverged: wheel=%d oracle=%d", wheel.Fired(), oracle.Fired())
	}
}
