// Package sched provides the deterministic discrete-event queue that drives
// the simulator. Events fire in (time, insertion-sequence) order, so two
// runs with the same inputs replay identically — a property the covert
// channel experiments rely on for reproducibility (randomness enters only
// through explicitly seeded noise models).
package sched

import (
	"container/heap"
	"fmt"

	"ichannels/internal/units"
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	At   units.Time
	Name string
	fn   func(units.Time)

	seq   uint64
	index int // heap index; -1 once fired or cancelled
}

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.index == -1 }

// Queue is a deterministic event queue with a current simulated time.
// The zero value is not usable; call NewQueue.
type Queue struct {
	now    units.Time
	events eventHeap
	seq    uint64
	fired  uint64
}

// NewQueue creates an empty queue at time zero.
func NewQueue() *Queue {
	return &Queue{}
}

// Now returns the current simulated time.
func (q *Queue) Now() units.Time { return q.now }

// Fired returns the number of events executed so far (for diagnostics).
func (q *Queue) Fired() uint64 { return q.fired }

// Pending returns the number of scheduled, uncancelled events.
func (q *Queue) Pending() int { return q.events.Len() }

// At schedules fn to run at time t. Scheduling in the past panics: it
// would silently corrupt causality in the simulation.
func (q *Queue) At(t units.Time, name string, fn func(units.Time)) *Event {
	if t < q.now {
		panic(fmt.Sprintf("sched: event %q scheduled at %v, before now (%v)", name, t, q.now))
	}
	if fn == nil {
		panic(fmt.Sprintf("sched: event %q has nil callback", name))
	}
	e := &Event{At: t, Name: name, fn: fn, seq: q.seq}
	q.seq++
	heap.Push(&q.events, e)
	return e
}

// After schedules fn to run d after the current time.
func (q *Queue) After(d units.Duration, name string, fn func(units.Time)) *Event {
	if d < 0 {
		d = 0
	}
	return q.At(q.now.Add(d), name, fn)
}

// Cancel removes a scheduled event. Cancelling a nil, fired, or already-
// cancelled event is a no-op, so callers can cancel unconditionally.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index == -1 {
		return
	}
	heap.Remove(&q.events, e.index)
	e.index = -1
}

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty.
func (q *Queue) Step() bool {
	if q.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&q.events).(*Event)
	e.index = -1
	q.now = e.At
	q.fired++
	e.fn(q.now)
	return true
}

// RunUntil fires events in order until the queue is exhausted or the next
// event is after t, then advances the clock to exactly t.
func (q *Queue) RunUntil(t units.Time) {
	if t < q.now {
		panic(fmt.Sprintf("sched: RunUntil(%v) is before now (%v)", t, q.now))
	}
	for q.events.Len() > 0 && q.events[0].At <= t {
		q.Step()
	}
	q.now = t
}

// Run fires events until the queue is empty or maxEvents have fired.
// It returns the number of events fired. A maxEvents of 0 means no limit.
func (q *Queue) Run(maxEvents uint64) uint64 {
	var n uint64
	for q.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
