// Package sched provides the deterministic discrete-event queue that drives
// the simulator. Events fire in (time, insertion-sequence) order, so two
// runs with the same inputs replay identically — a property the covert
// channel experiments rely on for reproducibility (randomness enters only
// through explicitly seeded noise models).
//
// The production Queue is a bucketed timing wheel sized to the simulator's
// event-time distribution (power-gate wakes at tens of ns, throttle slots
// at µs, license hysteresis at 650 µs, frequency restores at ms): a ring
// of ~1 µs buckets covering ~1 ms of future, an overflow heap for
// everything beyond the horizon, and a free list of event nodes so the
// steady state schedules without allocating. HeapQueue (heap.go) keeps the
// original container/heap implementation as the conformance oracle; both
// fire in the identical (time, sequence) total order.
package sched

import (
	"container/heap"
	"fmt"
	"math/bits"

	"ichannels/internal/units"
)

// Wheel geometry. One bucket spans 2^tickBits picoseconds (~1.05 µs); the
// ring covers nBuckets ticks (~1.07 ms) of future beyond the current time.
// Events past the horizon wait in the overflow heap and migrate into the
// ring as the clock approaches them.
const (
	tickBits = 20 // bucket width: 2^20 ps ≈ 1.05 µs
	ringBits = 10 // ring size: 1024 buckets ≈ 1.07 ms horizon
	nBuckets = 1 << ringBits
	ringMask = nBuckets - 1
	nWords   = nBuckets / 64
)

// Event is one scheduled callback node. Nodes are owned by the queue and
// recycled through a free list after they fire or are cancelled; callers
// hold EventRef handles, never *Event.
type Event struct {
	at   units.Time
	name string
	fn   func(units.Time)
	seq  uint64

	// gen invalidates outstanding EventRefs: it increments every time the
	// node dies (fires or is cancelled), so a stale handle to a recycled
	// node reports Cancelled instead of aliasing the new occupant.
	gen uint64

	// Intrusive location state: exactly one of the three holds.
	//   bucket >= 0           — linked into ring bucket `bucket`
	//   index >= 0            — at overflow-heap position `index`
	//   bucket < 0, index < 0 — dead (free list or oracle-retired)
	next, prev *Event
	bucket     int32
	index      int32
}

// EventRef is a caller-held handle to a scheduled event. The zero value
// behaves as an already-cancelled event, so callers can keep one field per
// logical timer and test or cancel it unconditionally.
type EventRef struct {
	e   *Event
	gen uint64
}

// Cancelled reports whether the event has been cancelled or already fired
// (a zero EventRef is cancelled).
func (r EventRef) Cancelled() bool { return r.e == nil || r.e.gen != r.gen }

// Time returns the scheduled fire time. It is meaningful only while the
// event is live (not Cancelled); afterwards it returns 0.
func (r EventRef) Time() units.Time {
	if r.Cancelled() {
		return 0
	}
	return r.e.at
}

// Name returns the event's name while it is live, and "" afterwards.
func (r EventRef) Name() string {
	if r.Cancelled() {
		return ""
	}
	return r.e.name
}

// Scheduler is the event-queue contract shared by the timing-wheel Queue
// and the reference HeapQueue. The property tests drive both with the same
// operation sequence; the benchmarks compare them on the same workloads.
type Scheduler interface {
	Now() units.Time
	Fired() uint64
	Pending() int
	At(t units.Time, name string, fn func(units.Time)) EventRef
	After(d units.Duration, name string, fn func(units.Time)) EventRef
	Cancel(r EventRef)
	Step() bool
	RunUntil(t units.Time)
	Run(maxEvents uint64) uint64
}

// Queue is a deterministic event queue with a current simulated time,
// implemented as a timing wheel with an overflow heap. The zero value is
// not usable; call NewQueue.
type Queue struct {
	now   units.Time
	seq   uint64
	fired uint64
	npend int

	buckets  [nBuckets]*Event // bucket heads (doubly linked, unordered)
	occupied [nWords]uint64   // one bit per non-empty bucket
	overflow eventHeap        // events beyond the ring horizon, (at, seq)
	free     *Event           // dead nodes, chained through next
}

// NewQueue creates an empty queue at time zero.
func NewQueue() *Queue {
	return &Queue{}
}

// Now returns the current simulated time.
func (q *Queue) Now() units.Time { return q.now }

// Fired returns the number of events executed so far (for diagnostics).
func (q *Queue) Fired() uint64 { return q.fired }

// Pending returns the number of scheduled, uncancelled events.
func (q *Queue) Pending() int { return q.npend }

// tickOf maps a time to its wheel tick. Simulated time is never negative,
// so the unsigned shift is exact.
func tickOf(t units.Time) uint64 { return uint64(t) >> tickBits }

// alloc takes a node from the free list, or makes one.
func (q *Queue) alloc() *Event {
	if e := q.free; e != nil {
		q.free = e.next
		e.next = nil
		return e
	}
	return &Event{bucket: -1, index: -1}
}

// release retires a node: outstanding handles die (gen bump) and the node
// joins the free list for the next At.
func (q *Queue) release(e *Event) {
	e.gen++
	e.fn = nil
	e.name = ""
	e.prev = nil
	e.bucket = -1
	e.index = -1
	e.next = q.free
	q.free = e
}

// place links a live node into the ring (if its tick is within the
// horizon) or pushes it onto the overflow heap.
func (q *Queue) place(e *Event) {
	tick := tickOf(e.at)
	if tick < tickOf(q.now)+nBuckets {
		b := int(tick & ringMask)
		e.bucket = int32(b)
		e.prev = nil
		e.next = q.buckets[b]
		if e.next != nil {
			e.next.prev = e
		}
		q.buckets[b] = e
		q.occupied[b>>6] |= 1 << (uint(b) & 63)
		return
	}
	heap.Push(&q.overflow, e)
}

// unlink removes a live node from whichever tier holds it.
func (q *Queue) unlink(e *Event) {
	if b := e.bucket; b >= 0 {
		if e.prev != nil {
			e.prev.next = e.next
		} else {
			q.buckets[b] = e.next
			if e.next == nil {
				q.occupied[b>>6] &^= 1 << (uint(b) & 63)
			}
		}
		if e.next != nil {
			e.next.prev = e.prev
		}
		e.next, e.prev = nil, nil
		e.bucket = -1
		return
	}
	heap.Remove(&q.overflow, int(e.index))
}

// refill migrates overflow events whose ticks have come inside the ring
// horizon. Each event migrates at most once, so the cost is amortized into
// its original schedule.
func (q *Queue) refill() {
	horizon := tickOf(q.now) + nBuckets
	for len(q.overflow) > 0 && tickOf(q.overflow[0].at) < horizon {
		q.place(heap.Pop(&q.overflow).(*Event))
	}
}

// peekMin returns the earliest pending event, or nil. Ring events always
// precede overflow events (the overflow holds only ticks past the ring
// horizon after refill), so the scan is: first occupied bucket in circular
// tick order from now, then min-(at, seq) within it.
func (q *Queue) peekMin() *Event {
	if q.npend == 0 {
		return nil
	}
	q.refill()
	start := int(tickOf(q.now) & ringMask)
	if b := q.firstOccupied(start); b >= 0 {
		best := q.buckets[b]
		for e := best.next; e != nil; e = e.next {
			if e.at < best.at || (e.at == best.at && e.seq < best.seq) {
				best = e
			}
		}
		return best
	}
	if len(q.overflow) > 0 {
		return q.overflow[0]
	}
	return nil
}

// firstOccupied scans the occupancy bitmap for the first non-empty bucket
// in circular order from start. Buckets hold at most one distinct tick at
// a time (pending events all lie within one horizon of now), so circular
// order from now's bucket is earliest-tick order.
func (q *Queue) firstOccupied(start int) int {
	w := start >> 6
	if word := q.occupied[w] &^ ((1 << (uint(start) & 63)) - 1); word != 0 {
		return w<<6 + bits.TrailingZeros64(word)
	}
	for i := 1; i <= nWords; i++ {
		wi := (w + i) & (nWords - 1)
		if word := q.occupied[wi]; word != 0 {
			b := wi<<6 + bits.TrailingZeros64(word)
			// The first word is rescanned last for the bits below start
			// (ticks that wrapped to the far end of the window).
			if wi == w && b >= start {
				return -1
			}
			return b
		}
	}
	return -1
}

// At schedules fn to run at time t. Scheduling in the past panics: it
// would silently corrupt causality in the simulation.
func (q *Queue) At(t units.Time, name string, fn func(units.Time)) EventRef {
	if t < q.now {
		panic(fmt.Sprintf("sched: event %q scheduled at %v, before now (%v)", name, t, q.now))
	}
	if fn == nil {
		panic(fmt.Sprintf("sched: event %q has nil callback", name))
	}
	e := q.alloc()
	e.at, e.name, e.fn = t, name, fn
	e.seq = q.seq
	q.seq++
	q.npend++
	q.place(e)
	return EventRef{e: e, gen: e.gen}
}

// After schedules fn to run d after the current time.
func (q *Queue) After(d units.Duration, name string, fn func(units.Time)) EventRef {
	if d < 0 {
		d = 0
	}
	return q.At(q.now.Add(d), name, fn)
}

// Cancel removes a scheduled event. Cancelling a zero, fired, or already-
// cancelled handle is a no-op, so callers can cancel unconditionally.
func (q *Queue) Cancel(r EventRef) {
	if r.Cancelled() {
		return
	}
	q.unlink(r.e)
	q.release(r.e)
	q.npend--
}

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty.
func (q *Queue) Step() bool {
	e := q.peekMin()
	if e == nil {
		return false
	}
	q.fire(e)
	return true
}

// fire pops e (which must be the pending minimum), advances the clock to
// it, retires the node, and runs the callback. The node is released before
// the callback so the callback can immediately reuse it via At; the gen
// bump keeps any handles to the fired event reporting Cancelled.
func (q *Queue) fire(e *Event) {
	q.unlink(e)
	q.npend--
	q.now = e.at
	q.fired++
	fn := e.fn
	q.release(e)
	fn(q.now)
}

// RunUntil fires events in order until the queue is exhausted or the next
// event is after t, then advances the clock to exactly t.
func (q *Queue) RunUntil(t units.Time) {
	if t < q.now {
		panic(fmt.Sprintf("sched: RunUntil(%v) is before now (%v)", t, q.now))
	}
	for {
		e := q.peekMin()
		if e == nil || e.at > t {
			break
		}
		q.fire(e)
	}
	q.now = t
}

// Run fires events until the queue is empty or maxEvents have fired.
// It returns the number of events fired. A maxEvents of 0 means no limit.
func (q *Queue) Run(maxEvents uint64) uint64 {
	var n uint64
	for q.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// Reset returns the queue to its initial state — time zero, no pending
// events, counters cleared — while keeping the node free list, so a pooled
// machine's next run schedules without allocating. Sequence numbers restart
// at zero: a reset queue replays exactly like a fresh one.
func (q *Queue) Reset() {
	for b, e := range q.buckets {
		for e != nil {
			next := e.next
			q.release(e)
			e = next
		}
		q.buckets[b] = nil
	}
	for i := range q.occupied {
		q.occupied[i] = 0
	}
	for _, e := range q.overflow {
		e.index = -1
		q.release(e)
	}
	q.overflow = q.overflow[:0]
	q.now = 0
	q.seq = 0
	q.fired = 0
	q.npend = 0
}

// eventHeap orders events by (time, sequence). It backs both the wheel's
// overflow tier and the reference HeapQueue.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = int32(i)
	h[j].index = int32(j)
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = int32(len(*h))
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	e.index = -1
	return e
}
