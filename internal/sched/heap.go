package sched

import (
	"container/heap"
	"fmt"

	"ichannels/internal/units"
)

// HeapQueue is the original container/heap event queue, kept as the
// conformance oracle for the timing-wheel Queue: the property tests drive
// both with identical operation sequences and require identical firing
// order, and the scheduler microbenchmarks compare them on the same
// workloads. It implements the same Scheduler interface and EventRef
// handle semantics (handles die when the event fires or is cancelled),
// but retires nodes to the garbage collector instead of a free list —
// simplicity over speed, as befits an oracle.
type HeapQueue struct {
	now    units.Time
	events eventHeap
	seq    uint64
	fired  uint64
}

// NewHeapQueue creates an empty reference queue at time zero.
func NewHeapQueue() *HeapQueue {
	return &HeapQueue{}
}

// Now returns the current simulated time.
func (q *HeapQueue) Now() units.Time { return q.now }

// Fired returns the number of events executed so far.
func (q *HeapQueue) Fired() uint64 { return q.fired }

// Pending returns the number of scheduled, uncancelled events.
func (q *HeapQueue) Pending() int { return q.events.Len() }

// At schedules fn to run at time t, panicking on past times and nil
// callbacks exactly like Queue.At.
func (q *HeapQueue) At(t units.Time, name string, fn func(units.Time)) EventRef {
	if t < q.now {
		panic(fmt.Sprintf("sched: event %q scheduled at %v, before now (%v)", name, t, q.now))
	}
	if fn == nil {
		panic(fmt.Sprintf("sched: event %q has nil callback", name))
	}
	e := &Event{at: t, name: name, fn: fn, seq: q.seq, bucket: -1, index: -1}
	q.seq++
	heap.Push(&q.events, e)
	return EventRef{e: e, gen: e.gen}
}

// After schedules fn to run d after the current time.
func (q *HeapQueue) After(d units.Duration, name string, fn func(units.Time)) EventRef {
	if d < 0 {
		d = 0
	}
	return q.At(q.now.Add(d), name, fn)
}

// Cancel removes a scheduled event; zero, fired, or already-cancelled
// handles are no-ops.
func (q *HeapQueue) Cancel(r EventRef) {
	if r.Cancelled() {
		return
	}
	heap.Remove(&q.events, int(r.e.index))
	r.e.gen++
	r.e.fn = nil
}

// Step fires the earliest pending event and returns true, or returns false
// if the queue is empty.
func (q *HeapQueue) Step() bool {
	if q.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&q.events).(*Event)
	q.now = e.at
	q.fired++
	fn := e.fn
	e.gen++
	e.fn = nil
	fn(q.now)
	return true
}

// RunUntil fires events in order until the queue is exhausted or the next
// event is after t, then advances the clock to exactly t.
func (q *HeapQueue) RunUntil(t units.Time) {
	if t < q.now {
		panic(fmt.Sprintf("sched: RunUntil(%v) is before now (%v)", t, q.now))
	}
	for q.events.Len() > 0 && q.events[0].at <= t {
		q.Step()
	}
	q.now = t
}

// Run fires events until the queue is empty or maxEvents have fired.
// It returns the number of events fired. A maxEvents of 0 means no limit.
func (q *HeapQueue) Run(maxEvents uint64) uint64 {
	var n uint64
	for q.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}
