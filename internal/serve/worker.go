package serve

import (
	"io"
	"net/http"

	"ichannels/internal/dist"
	"ichannels/internal/scenario"
	"ichannels/internal/store"
)

// CodeHashMismatch is the structured error code a worker answers when
// the dispatched content hash does not match the hash it computes from
// the same spec — coordinator/worker version skew (drifted
// normalization or hashing). The coordinator quarantines the worker:
// results computed under a disputed identity must never enter the
// corpus.
const CodeHashMismatch = "hash_mismatch"

// v1Cells is the distributed tier's worker endpoint: POST /v1/cells
// accepts one dist.CellDispatch frame, runs the cell through the same
// single-flight (hash, seed) cache every other route shares — so a
// fleet of coordinators deduplicates across nodes, and the durable
// store stays the shared corpus — and answers with the store's
// checksummed envelope encoding of the result. The coordinator verifies
// that envelope with store.DecodeEnvelope, which is what makes a
// byzantine or truncating transport detectable.
func (s *Server) v1Cells(w http.ResponseWriter, r *http.Request) {
	if !methodOnly(w, r, http.MethodPost) {
		return
	}
	if !requireJSON(w, r) {
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
			"request body exceeds %d bytes", maxBodyBytes)
		return
	}
	d, err := dist.ParseCellDispatch(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v (wire version %d)", err, dist.DispatchVersion)
		return
	}
	if d.V != dist.DispatchVersion {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"dispatch version %d; this worker speaks %d", d.V, dist.DispatchVersion)
		return
	}
	if d.Seed <= 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"dispatch seed %d: effective seeds are positive", d.Seed)
		return
	}
	n := d.Scenario.Normalized()
	if err := n.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidScenario, "%v", err)
		return
	}
	// Recompute the identity instead of trusting the frame: a
	// coordinator whose normalization or hashing drifted from this
	// worker's must not get results filed under its idea of the hash.
	if h := n.Hash(); h != d.Hash {
		writeError(w, http.StatusConflict, CodeHashMismatch,
			"dispatched hash %s, this worker computes %s: coordinator/worker version skew", d.Hash, h)
		return
	}
	key := cacheKey{Hash: d.Hash, Seed: d.Seed}
	ent, _ := s.entry(key)
	s.compute(key, ent, func() (*scenario.Result, error) {
		return s.runScenarioIsolated(r, n, d.Seed)
	})
	if ent.err != nil {
		writeError(w, http.StatusInternalServerError, CodeRunFailed,
			"%s (seed %d): %v", n.Describe(), d.Seed, ent.err)
		return
	}
	env, err := store.EncodeEnvelope(store.Key(key), ent.result)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeRunFailed,
			"encoding result envelope: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(env)
}
