package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"ichannels/internal/store"
)

// TestServerWarmsFromStore: a restarted server (fresh memory cache,
// same store directory) serves previously computed results from disk
// without recomputing them — the two-tier contract.
func TestServerWarmsFromStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := `{"role":"experiment","experiment":"fig6a","seed":5}`
	type response struct {
		Cached bool `json:"cached"`
	}

	var calls1 int64
	ts1 := httptest.NewServer(New(Options{Run: countingRun(&calls1, false), Store: st}).Handler())
	code, body := postJSON(t, ts1, "/v1/scenarios", "application/json", spec)
	ts1.Close()
	if code != http.StatusOK {
		t.Fatalf("first server: status %d: %s", code, body)
	}
	if atomic.LoadInt64(&calls1) != 1 {
		t.Fatalf("first server computed %d times, want 1", calls1)
	}
	var first response
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first request marked cached")
	}

	// "Restart": a new server with an empty memory cache on the same
	// store.
	var calls2 int64
	srv2 := New(Options{Run: countingRun(&calls2, false), Store: st})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	code, body = postJSON(t, ts2, "/v1/scenarios", "application/json", spec)
	if code != http.StatusOK {
		t.Fatalf("second server: status %d: %s", code, body)
	}
	if atomic.LoadInt64(&calls2) != 0 {
		t.Fatalf("second server computed %d times, want 0 (store should serve it)", calls2)
	}
	var second response
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("store-served request not marked cached")
	}
	if hits, fails := srv2.StoreStats(); hits != 1 || fails != 0 {
		t.Errorf("store stats %d hits / %d failures, want 1/0", hits, fails)
	}
}

// TestV1SweepSkipsMaterializedCells: re-posting a sweep to a restarted
// server recomputes nothing — every cell streams with "cached":true,
// and the aggregate bytes match the cold run's.
func TestV1SweepSkipsMaterializedCells(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(New(Options{Store: st}).Handler())
	code, cold := postBody(t, ts1, "/v1/sweeps?seed=11", testSweepSpec)
	ts1.Close()
	if code != http.StatusOK {
		t.Fatalf("cold sweep: status %d: %s", code, cold)
	}
	coldCells, coldAgg := parseSweepStream(t, cold)
	for i, c := range coldCells {
		if c.Cached {
			t.Errorf("cold cell %d marked cached", i)
		}
	}

	srv2 := New(Options{Store: st})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	code, warm := postBody(t, ts2, "/v1/sweeps?seed=11", testSweepSpec)
	if code != http.StatusOK {
		t.Fatalf("warm sweep: status %d: %s", code, warm)
	}
	cells, warmAgg := parseSweepStream(t, warm)
	for i, c := range cells {
		if !c.Cached {
			t.Errorf("cell %d not served from the store", i)
		}
	}
	if string(coldAgg) != string(warmAgg) {
		t.Errorf("aggregate differs across restart:\ncold: %s\nwarm: %s", coldAgg, warmAgg)
	}
	if hits, fails := srv2.StoreStats(); hits != int64(len(cells)) || fails != 0 {
		t.Errorf("store stats %d hits / %d failures, want %d/0", hits, fails, len(cells))
	}
}
