package serve

// The store-sharing routes: when a server is started with both a store
// and ShareStore, its corpus becomes the object store for a fleet —
// remote processes open `-store http://host:port` (store.OpenRemote)
// and read/write checksummed envelopes over GET/PUT /v1/store/{key}
// without a shared filesystem. The wire carries exactly the bytes a
// directory layout would hold, so the envelope verification on both
// ends is unchanged; this server never has to trust its clients (a
// corrupt PUT is rejected before it touches disk) and clients never
// have to trust this server (store.Remote re-verifies every GET).
//
// /v1/stats is served unconditionally: operators watching a fleet need
// the cache and store tallies whether or not the corpus is shared.

import (
	"fmt"
	"io"
	"net/http"

	"ichannels/internal/soc"
	"ichannels/internal/store"
)

// statsResponse is the GET /v1/stats body.
type statsResponse struct {
	Cache cacheStats `json:"cache"`
	// Machines is the machine-pool tally: simulated SoCs built from
	// scratch vs recycled across scenario runs (wall-clock metadata;
	// reuse never changes result bytes).
	Machines soc.PoolStats `json:"machines"`
	Store    *storeStats   `json:"store,omitempty"`
}

type cacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

type storeStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Errors int64 `json:"errors"`
	// Transient and Permanent split Errors by failure class: network
	// blips vs corrupt envelopes (a byzantine upstream).
	Transient int64 `json:"transient"`
	Permanent int64 `json:"permanent"`
	Shared    bool  `json:"shared"`
	// Tier reports the remote-path counters (retry attempts, breaker
	// state, replica cache) when this server's store has a remote
	// behind it.
	Tier *store.TierStats `json:"tier,omitempty"`
	// Retention advertises the server-side GC config and last report
	// when a retention timer is configured.
	Retention *retentionStats `json:"retention,omitempty"`
}

// retentionStats is the /v1/stats retention block.
type retentionStats struct {
	GCEvery  string `json:"gc_every"`
	MaxAge   string `json:"max_age,omitempty"`
	MaxBytes int64  `json:"max_bytes,omitempty"`
	Runs     int64  `json:"runs"`
	// LastUnix is the wall-clock time of the last pass (0 before the
	// first).
	LastUnix  int64           `json:"last_unix,omitempty"`
	Last      *store.GCReport `json:"last,omitempty"`
	LastError string          `json:"last_error,omitempty"`
}

// v1Stats handles GET /v1/stats.
func (s *Server) v1Stats(w http.ResponseWriter, r *http.Request) {
	if !methodOnly(w, r, http.MethodGet) {
		return
	}
	resp := statsResponse{}
	resp.Cache.Hits, resp.Cache.Misses = s.CacheStats()
	resp.Machines = s.machines.Stats()
	if s.store != nil {
		st := &storeStats{Shared: s.shareStore}
		st.Hits, st.Misses, st.Errors = s.StoreCounters()
		st.Transient, st.Permanent = s.StoreErrorCounters()
		if ts, ok := s.store.(store.TierStatter); ok {
			t := ts.TierStats()
			st.Tier = &t
		}
		if s.gcEvery > 0 {
			ret := &retentionStats{
				GCEvery:  s.gcEvery.String(),
				MaxBytes: s.gcMaxBytes,
			}
			if s.gcMaxAge > 0 {
				ret.MaxAge = s.gcMaxAge.String()
			}
			s.mu.Lock()
			ret.Runs = s.gcRuns
			ret.Last = s.lastGC
			ret.LastError = s.lastGCErr
			if !s.lastGCAt.IsZero() {
				ret.LastUnix = s.lastGCAt.Unix()
			}
			s.mu.Unlock()
			st.Retention = ret
		}
		resp.Store = st
	}
	writeJSON(w, http.StatusOK, resp)
}

// backend returns the store's raw-object interface. Every directory
// layout and the remote client implement it; a store that doesn't
// (possible through the facade's custom-Store seam) can still serve
// scenarios but cannot share objects.
func (s *Server) backend() (store.Backend, bool) {
	b, ok := s.store.(store.Backend)
	return b, ok
}

// v1StoreIndex handles GET /v1/store: the corpus listing, which remote
// `store ls` and resume planning consume.
func (s *Server) v1StoreIndex(w http.ResponseWriter, r *http.Request) {
	if !methodOnly(w, r, http.MethodGet) {
		return
	}
	b, ok := s.backend()
	if !ok {
		writeError(w, http.StatusNotImplemented, CodeUnsupported,
			"this server's store does not expose raw objects")
		return
	}
	ls, err := b.ListObjects()
	if err != nil {
		s.countStoreErr(err)
		writeError(w, http.StatusInternalServerError, CodeStoreError, "list store: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, ls)
}

// v1StoreEntry handles GET and PUT /v1/store/{key}.
func (s *Server) v1StoreEntry(w http.ResponseWriter, r *http.Request) {
	b, ok := s.backend()
	if !ok {
		writeError(w, http.StatusNotImplemented, CodeUnsupported,
			"this server's store does not expose raw objects")
		return
	}
	key, ok := store.ParseKeyString(r.URL.Path[len(store.StorePathPrefix)+1:])
	if !ok {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"store keys look like <hash>-<seed>")
		return
	}
	switch r.Method {
	case http.MethodGet:
		data, ok, err := b.GetObject(key)
		if err != nil {
			s.countStoreErr(err)
			writeError(w, http.StatusInternalServerError, CodeStoreError,
				"read %s: %v", key, err)
			return
		}
		if !ok {
			s.countStore(storeTallyMiss)
			writeError(w, http.StatusNotFound, CodeNotFound, "no result for %s", key)
			return
		}
		s.countStore(storeTallyHit)
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case http.MethodPut:
		if !requireJSON(w, r) {
			return
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "read body: %v", err)
			return
		}
		if len(data) > maxBodyBytes {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				"envelope exceeds %d bytes", maxBodyBytes)
			return
		}
		// With a byte budget configured, an envelope that alone busts
		// it would be evicted by the next GC pass anyway; reject it at
		// the door instead of churning the corpus.
		if s.gcMaxBytes > 0 && int64(len(data)) > s.gcMaxBytes {
			writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
				"envelope exceeds the store byte budget (%d bytes)", s.gcMaxBytes)
			return
		}
		// Verify before storing: the corpus only ever holds envelopes
		// that decode, identify their key, and pass their checksum.
		if _, err := store.DecodeEnvelope(key, data); err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest,
				"rejected envelope for %s: %v", key, err)
			return
		}
		if err := b.PutObject(key, data); err != nil {
			s.countStoreErr(err)
			writeError(w, http.StatusInternalServerError, CodeStoreError,
				"write %s: %v", key, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", fmt.Sprintf("%s, %s", http.MethodGet, http.MethodPut))
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"use GET or PUT")
	}
}
