package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ichannels/internal/exp"
)

// countingRun wraps a fake runner and counts executions per (id, seed).
func countingRun(calls *int64, fail bool) func(string, int64) (*exp.Report, error) {
	return func(id string, seed int64) (*exp.Report, error) {
		atomic.AddInt64(calls, 1)
		if fail {
			return nil, errors.New("synthetic failure")
		}
		rep := exp.NewReport(id, "served")
		rep.Metric("seed", float64(seed))
		rep.Table("t", "a", "b").AddRow("1", "2")
		return rep, nil
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func post(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func TestListExperiments(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	code, body := get(t, ts, "/experiments")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var list []exp.Experiment
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != len(exp.IDs()) {
		t.Fatalf("listed %d experiments, registry has %d", len(list), len(exp.IDs()))
	}
	for _, e := range list {
		if e.ID == "" || e.Desc == "" || e.Section == "" {
			t.Errorf("incomplete listing entry: %+v", e)
		}
	}
}

func TestRunAndCacheHit(t *testing.T) {
	var calls int64
	srv := New(Options{Run: countingRun(&calls, false)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := post(t, ts, "/run/fig6a?seed=7")
	if code != http.StatusOK {
		t.Fatalf("first run: status %d: %s", code, body)
	}
	var first runResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.ID != "fig6a" || first.Seed != 7 {
		t.Fatalf("first response: %+v", first)
	}
	if first.Report == nil || first.Report.Metrics["seed"] != 7 {
		t.Fatalf("report missing or wrong seed: %+v", first.Report)
	}

	code, body2 := post(t, ts, "/run/fig6a?seed=7")
	if code != http.StatusOK {
		t.Fatalf("second run: status %d", code)
	}
	var second runResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical request not served from cache")
	}
	if calls != 1 {
		t.Errorf("runner executed %d times, want 1", calls)
	}
	// The deterministic payload must be byte-identical across the two.
	a, _ := json.Marshal(first.Report)
	b, _ := json.Marshal(second.Report)
	if string(a) != string(b) {
		t.Error("cached report differs from the computed one")
	}

	// A different seed is a different key.
	if code, _ := post(t, ts, "/run/fig6a?seed=8"); code != http.StatusOK {
		t.Fatalf("seed 8: status %d", code)
	}
	if calls != 2 {
		t.Errorf("distinct seed did not recompute (calls=%d)", calls)
	}
	if hits, misses := srv.CacheStats(); hits != 1 || misses != 2 {
		t.Errorf("cache stats hits=%d misses=%d, want 1/2", hits, misses)
	}
}

func TestConcurrentRequestsCoalesce(t *testing.T) {
	var calls int64
	srv := New(Options{Run: countingRun(&calls, false)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 16
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/run/fig13?seed=3", "", nil)
			if err == nil {
				codes[i] = resp.StatusCode
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("request %d: status %d", i, c)
		}
	}
	if calls != 1 {
		t.Errorf("%d concurrent identical requests ran the experiment %d times, want 1", n, calls)
	}
}

func TestMaxConcurrentBoundsDistinctSeeds(t *testing.T) {
	var cur, peak int64
	slow := func(id string, seed int64) (*exp.Report, error) {
		n := atomic.AddInt64(&cur, 1)
		for {
			old := atomic.LoadInt64(&peak)
			if n <= old || atomic.CompareAndSwapInt64(&peak, old, n) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		atomic.AddInt64(&cur, -1)
		return exp.NewReport(id, "slow"), nil
	}
	srv := New(Options{Run: slow, MaxConcurrent: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Post(fmt.Sprintf("%s/run/fig6a?seed=%d", ts.URL, i), "", nil)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	if peak > 2 {
		t.Errorf("peak concurrent simulations %d exceeds MaxConcurrent=2", peak)
	}
	if peak < 2 {
		t.Errorf("distinct-seed requests never overlapped (peak %d)", peak)
	}
}

func TestCacheEviction(t *testing.T) {
	var calls int64
	srv := New(Options{Run: countingRun(&calls, false), MaxCacheEntries: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post(t, ts, "/run/fig6a?seed=1") // cache: {1}
	post(t, ts, "/run/fig6a?seed=2") // cache: {1, 2}
	post(t, ts, "/run/fig6a?seed=3") // evicts 1 → {2, 3}
	if calls != 3 {
		t.Fatalf("3 distinct seeds ran %d times", calls)
	}
	if _, body := post(t, ts, "/run/fig6a?seed=3"); calls != 3 {
		t.Errorf("seed 3 should be cached: %s", body)
	}
	post(t, ts, "/run/fig6a?seed=1") // evicted → recompute
	if calls != 4 {
		t.Errorf("evicted seed 1 not recomputed (calls=%d)", calls)
	}

	// Negative MaxCacheEntries disables caching entirely.
	var calls2 int64
	srv2 := New(Options{Run: countingRun(&calls2, false), MaxCacheEntries: -1})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	post(t, ts2, "/run/fig6a?seed=1")
	post(t, ts2, "/run/fig6a?seed=1")
	if calls2 != 2 {
		t.Errorf("caching disabled but runner ran %d times for 2 requests", calls2)
	}
}

func TestErrorPaths(t *testing.T) {
	var calls int64
	srv := New(Options{Run: countingRun(&calls, true)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := post(t, ts, "/run/doesnotexist"); code != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d, want 404", code)
	}
	if code, _ := post(t, ts, "/run/fig6a?seed=banana"); code != http.StatusBadRequest {
		t.Errorf("bad seed: status %d, want 400", code)
	}
	code, body := post(t, ts, "/run/fig6a?seed=1")
	if code != http.StatusInternalServerError {
		t.Errorf("failing runner: status %d, want 500", code)
	}
	var e map[string]string
	if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
		t.Errorf("error body not JSON: %s", body)
	}
	// Failures are cached too: a retry must not rerun the experiment.
	if code, _ := post(t, ts, "/run/fig6a?seed=1"); code != http.StatusInternalServerError {
		t.Error("cached failure lost")
	}
	if calls != 1 {
		t.Errorf("failing experiment ran %d times, want 1 (errors are cached)", calls)
	}
	// Wrong method on a valid route.
	if code, _ := get(t, ts, "/run/fig6a"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status %d, want 405", code)
	}
}

func TestPanickingRunnerIsIsolated(t *testing.T) {
	srv := New(Options{Run: func(id string, seed int64) (*exp.Report, error) {
		panic("boom")
	}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body := post(t, ts, "/run/fig6a")
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d: %s", code, body)
	}
	// The server must still answer subsequent requests.
	if code, _ := get(t, ts, "/experiments"); code != http.StatusOK {
		t.Error("server unusable after a panicking runner")
	}
}

// TestRealExperimentRoundTrip runs one real (fast) experiment end to end
// through the HTTP layer and checks the report against a direct run.
func TestRealExperimentRoundTrip(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	code, body := post(t, ts, fmt.Sprintf("/run/fig13?seed=%d", 42))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp runResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	direct, err := exp.Run("fig13", 42)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct)
	got, _ := json.Marshal(resp.Report)
	if string(want) != string(got) {
		t.Error("served report differs from a direct exp.Run with the same seed")
	}
}
