package serve

// The shared-store routes and the stats endpoint: a server started
// with ShareStore is a usable object store for store.OpenRemote
// clients, corrupt uploads are rejected at the door, and the counters
// behind /v1/stats tell the truth about corpus traffic.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ichannels/internal/scenario"
	"ichannels/internal/store"
)

func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func storeTestResult(seed int64) *scenario.Result {
	return &scenario.Result{
		Role: scenario.RoleChannel, Processor: "Cannon Lake", Kind: scenario.KindCores,
		Hash: "0123456789abcdef", Seed: seed,
		Bits: 4, SentBits: []int{1, 0, 1, 1}, DecodedBits: []int{1, 0, 1, 1},
		ThroughputBPS: 3000.25, BER: 0.125,
	}
}

// TestV1StoreSharing: a ShareStore server serves its corpus to a
// store.OpenRemote client — put, get, miss, and list all round-trip
// over the wire, for both directory layouts underneath.
func TestV1StoreSharing(t *testing.T) {
	for _, layout := range []store.Layout{store.LayoutPerFile, store.LayoutPacked} {
		t.Run(string(layout), func(t *testing.T) {
			dir := t.TempDir()
			var st store.Store
			var err error
			if layout == store.LayoutPacked {
				st, err = store.OpenPacked(dir)
			} else {
				st, err = store.Open(dir)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer store.CloseStore(st)

			srv := New(Options{Store: st, ShareStore: true})
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			remote, err := store.OpenRemote(ts.URL, ts.Client())
			if err != nil {
				t.Fatal(err)
			}
			key := store.Key{Hash: "0123456789abcdef", Seed: 7}
			if _, ok, err := remote.Get(key); ok || err != nil {
				t.Fatalf("miss through remote: ok=%v err=%v", ok, err)
			}
			if err := remote.Put(key, storeTestResult(7)); err != nil {
				t.Fatal(err)
			}
			res, ok, err := remote.Get(key)
			if !ok || err != nil {
				t.Fatalf("get through remote: ok=%v err=%v", ok, err)
			}
			if res.Seed != 7 || res.BER != 0.125 {
				t.Fatalf("wrong result over the wire: %+v", res)
			}
			ls, err := remote.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(ls) != 1 || ls[0].Key != key {
				t.Fatalf("remote list %+v, want exactly %s", ls, key)
			}
			// The server tallied the traffic: one miss, one hit.
			hits, misses, errors := srv.StoreCounters()
			if hits != 1 || misses != 1 || errors != 0 {
				t.Fatalf("store counters %d/%d/%d, want 1 hit, 1 miss, 0 errors", hits, misses, errors)
			}
		})
	}
}

// TestV1StoreRejectsBadUploads: the server verifies envelopes before
// storing them — garbage, checksum damage, and misidentified uploads
// all bounce with 400 and leave the corpus empty.
func TestV1StoreRejectsBadUploads(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Store: st, ShareStore: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	key := store.Key{Hash: "0123456789abcdef", Seed: 1}
	good, err := store.EncodeEnvelope(key, storeTestResult(1))
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x01

	put := func(path, body, contentType string) int {
		req, err := http.NewRequest(http.MethodPut, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", contentType)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	keyPath := store.StorePathPrefix + "/" + key.String()
	if code := put(keyPath, "not json", "application/json"); code != http.StatusBadRequest {
		t.Errorf("garbage upload: status %d, want 400", code)
	}
	if code := put(keyPath, string(flipped), "application/json"); code != http.StatusBadRequest {
		t.Errorf("damaged envelope: status %d, want 400", code)
	}
	// An intact envelope uploaded under someone else's key is caught by
	// the identity check.
	other := store.StorePathPrefix + "/ffff000011112222-9"
	if code := put(other, string(good), "application/json"); code != http.StatusBadRequest {
		t.Errorf("misidentified envelope: status %d, want 400", code)
	}
	if code := put(keyPath, string(good), "text/plain"); code != http.StatusUnsupportedMediaType {
		t.Errorf("wrong media type: status %d, want 415", code)
	}
	if code := put(store.StorePathPrefix+"/notakey", "{}", "application/json"); code != http.StatusBadRequest {
		t.Errorf("malformed key: status %d, want 400", code)
	}
	ls, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 0 {
		t.Fatalf("a rejected upload reached the corpus: %+v", ls)
	}
	// The valid one lands.
	if code := put(keyPath, string(good), "application/json"); code != http.StatusNoContent {
		t.Errorf("valid upload: status %d, want 204", code)
	}
}

// TestV1StoreNotSharedByDefault: without ShareStore the object routes
// do not exist, even with a store configured — sharing is opt-in.
func TestV1StoreNotSharedByDefault(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Options{Store: st}).Handler())
	defer ts.Close()
	if code, _ := getBody(t, ts, store.StorePathPrefix); code != http.StatusNotFound {
		t.Errorf("index route exists without -share: status %d", code)
	}
	if code, _ := getBody(t, ts, store.StorePathPrefix+"/abcd-1"); code != http.StatusNotFound {
		t.Errorf("entry route exists without -share: status %d", code)
	}
}

// TestV1Stats: the stats endpoint reports cache tallies always, store
// tallies only when a store is configured, and flags sharing.
func TestV1Stats(t *testing.T) {
	type stats struct {
		Cache struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
		} `json:"cache"`
		Store *struct {
			Hits   int64 `json:"hits"`
			Misses int64 `json:"misses"`
			Errors int64 `json:"errors"`
			Shared bool  `json:"shared"`
		} `json:"store"`
	}

	// Memory-only server: no store block.
	ts := httptest.NewServer(New(Options{}).Handler())
	code, body := getBody(t, ts, "/v1/stats")
	ts.Close()
	if code != http.StatusOK {
		t.Fatalf("stats: status %d: %s", code, body)
	}
	var bare stats
	if err := json.Unmarshal(body, &bare); err != nil {
		t.Fatal(err)
	}
	if bare.Store != nil {
		t.Fatalf("memory-only server reports store stats: %+v", bare.Store)
	}

	// Stored server: one compute (store miss) + one repeat (memory hit),
	// then a restart serving from the store (store hit).
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := `{"role":"experiment","experiment":"fig6a","seed":5}`
	ts1 := httptest.NewServer(New(Options{Store: st, ShareStore: true}).Handler())
	postJSON(t, ts1, "/v1/scenarios", "application/json", spec)
	postJSON(t, ts1, "/v1/scenarios", "application/json", spec)
	code, body = getBody(t, ts1, "/v1/stats")
	ts1.Close()
	if code != http.StatusOK {
		t.Fatalf("stats: status %d: %s", code, body)
	}
	var warm stats
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Cache.Hits != 1 || warm.Cache.Misses != 1 {
		t.Errorf("cache stats %+v, want 1 hit / 1 miss", warm.Cache)
	}
	if warm.Store == nil || warm.Store.Hits != 0 || warm.Store.Misses != 1 || warm.Store.Errors != 0 {
		t.Errorf("store stats %+v, want 0 hits / 1 miss / 0 errors", warm.Store)
	}
	if !warm.Store.Shared {
		t.Error("shared flag not set")
	}

	ts2 := httptest.NewServer(New(Options{Store: st}).Handler())
	defer ts2.Close()
	postJSON(t, ts2, "/v1/scenarios", "application/json", spec)
	code, body = getBody(t, ts2, "/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: status %d: %s", code, body)
	}
	var restarted stats
	if err := json.Unmarshal(body, &restarted); err != nil {
		t.Fatal(err)
	}
	if restarted.Store == nil || restarted.Store.Hits != 1 || restarted.Store.Misses != 0 {
		t.Errorf("restarted store stats %+v, want 1 hit / 0 misses", restarted.Store)
	}
	if restarted.Store.Shared {
		t.Error("shared flag set without ShareStore")
	}
}

// TestServeOverPackedStore: the serve layer on top of a packed corpus
// behaves exactly as over per-file — warm restarts serve from segments.
func TestServeOverPackedStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := `{"role":"experiment","experiment":"fig6a","seed":5}`
	ts1 := httptest.NewServer(New(Options{Store: st}).Handler())
	code, body := postJSON(t, ts1, "/v1/scenarios", "application/json", spec)
	ts1.Close()
	if code != http.StatusOK {
		t.Fatalf("cold: status %d: %s", code, body)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.OpenPacked(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv := New(Options{Store: st2})
	ts2 := httptest.NewServer(srv.Handler())
	defer ts2.Close()
	code, body = postJSON(t, ts2, "/v1/scenarios", "application/json", spec)
	if code != http.StatusOK {
		t.Fatalf("warm: status %d: %s", code, body)
	}
	var resp struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("packed-store restart did not serve from segments")
	}
	if hits, fails := srv.StoreStats(); hits != 1 || fails != 0 {
		t.Errorf("store stats %d/%d, want 1 hit, 0 failures", hits, fails)
	}
}
