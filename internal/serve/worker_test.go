package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ichannels/internal/dist"
	"ichannels/internal/scenario"
	"ichannels/internal/store"
)

func workerServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	opts.Worker = true
	s := New(opts)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func postCell(t *testing.T, srv *httptest.Server, body []byte, contentType string) *http.Response {
	t.Helper()
	resp, err := http.Post(srv.URL+dist.DispatchPath, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", dist.DispatchPath, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func cellFrame(t *testing.T, s scenario.Scenario, seed int64) ([]byte, store.Key) {
	t.Helper()
	n := s.Normalized()
	hash := n.Hash()
	frame, err := json.Marshal(dist.NewCellDispatch(n, hash, seed))
	if err != nil {
		t.Fatal(err)
	}
	return frame, store.Key{Hash: hash, Seed: seed}
}

// TestWorkerEndpointServesVerifiableEnvelope: the happy path answers
// with bytes DecodeEnvelope accepts for the dispatched key.
func TestWorkerEndpointServesVerifiableEnvelope(t *testing.T) {
	_, srv := workerServer(t, Options{})
	frame, key := cellFrame(t, scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 8}, 42)
	resp := postCell(t, srv, frame, "application/json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	res, err := store.DecodeEnvelope(key, buf.Bytes())
	if err != nil {
		t.Fatalf("response failed envelope verification: %v", err)
	}
	// The envelope's payload is the canonical result encoding: the
	// bytes a local run marshals to.
	want, err := scenario.Runner{}.RunSeeded(t.Context(), scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 8}.Normalized(), 42)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(res)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Errorf("worker result differs from local run:\nlocal:  %s\nworker: %s", wantJSON, gotJSON)
	}
}

// TestWorkerEndpointRejectsHashMismatch: a dispatched hash the worker
// cannot reproduce is refused with 409/hash_mismatch (version skew).
func TestWorkerEndpointRejectsHashMismatch(t *testing.T) {
	_, srv := workerServer(t, Options{})
	n := scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 8}.Normalized()
	frame, err := json.Marshal(dist.NewCellDispatch(n, "00ff00ff00ff00ff", 42))
	if err != nil {
		t.Fatal(err)
	}
	resp := postCell(t, srv, frame, "application/json")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != CodeHashMismatch {
		t.Errorf("code = %q, want %q", eb.Code, CodeHashMismatch)
	}
}

// TestWorkerEndpointRejections covers the remaining refusal paths.
func TestWorkerEndpointRejections(t *testing.T) {
	_, srv := workerServer(t, Options{})
	n := scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 8}.Normalized()
	good, _ := cellFrame(t, n, 42)

	t.Run("method", func(t *testing.T) {
		resp, err := http.Get(srv.URL + dist.DispatchPath)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("status = %d, want 405", resp.StatusCode)
		}
	})
	t.Run("content-type", func(t *testing.T) {
		if resp := postCell(t, srv, good, "text/plain"); resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Errorf("status = %d, want 415", resp.StatusCode)
		}
	})
	t.Run("malformed", func(t *testing.T) {
		if resp := postCell(t, srv, []byte(`{"v":1,`), "application/json"); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("unknown-field", func(t *testing.T) {
		bad := bytes.Replace(good, []byte(`{"v":1`), []byte(`{"v":1,"smuggled":true`), 1)
		if resp := postCell(t, srv, bad, "application/json"); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("version", func(t *testing.T) {
		bad := bytes.Replace(good, []byte(`{"v":1`), []byte(`{"v":9`), 1)
		if resp := postCell(t, srv, bad, "application/json"); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("zero-seed", func(t *testing.T) {
		frame, err := json.Marshal(dist.NewCellDispatch(n, n.Hash(), 0))
		if err != nil {
			t.Fatal(err)
		}
		if resp := postCell(t, srv, frame, "application/json"); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("invalid-scenario", func(t *testing.T) {
		bad := scenario.Scenario{Role: "warp"}
		frame, err := json.Marshal(dist.CellDispatch{V: dist.DispatchVersion, Hash: bad.Hash(), Seed: 1, Scenario: bad})
		if err != nil {
			t.Fatal(err)
		}
		if resp := postCell(t, srv, frame, "application/json"); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status = %d, want 400", resp.StatusCode)
		}
	})
}

// TestWorkerEndpointDisabledByDefault: a plain API server must not
// expose the dispatch endpoint.
func TestWorkerEndpointDisabledByDefault(t *testing.T) {
	srv := httptest.NewServer(New(Options{}).Handler())
	t.Cleanup(srv.Close)
	resp, err := http.Post(srv.URL+dist.DispatchPath, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404 when Worker is off", resp.StatusCode)
	}
}

// TestWorkerEndpointSharesCacheAndStore: repeated dispatches coalesce
// on the single-flight cache (cross-node dedup) and successes land in
// the durable store (the shared corpus -resume reads).
func TestWorkerEndpointSharesCacheAndStore(t *testing.T) {
	fs, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s, srv := workerServer(t, Options{Store: fs})
	frame, key := cellFrame(t, scenario.Scenario{Role: scenario.RoleChannel, Kind: scenario.KindCores, Bits: 8}, 42)

	first := postCell(t, srv, frame, "application/json")
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first dispatch: status %d", first.StatusCode)
	}
	if _, ok, err := fs.Get(key); err != nil || !ok {
		t.Fatalf("store.Get after dispatch: ok=%v err=%v, want the result persisted", ok, err)
	}
	hits0, _ := s.CacheStats()
	second := postCell(t, srv, frame, "application/json")
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second dispatch: status %d", second.StatusCode)
	}
	if hits, _ := s.CacheStats(); hits != hits0+1 {
		t.Errorf("cache hits = %d, want %d (repeat dispatch must coalesce)", hits, hits0+1)
	}
	var b1, b2 bytes.Buffer
	b1.ReadFrom(first.Body)
	b2.ReadFrom(second.Body)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("repeat dispatch served different envelope bytes")
	}
}
