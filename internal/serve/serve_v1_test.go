package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"ichannels/internal/engine"
	"ichannels/internal/exp"
	"ichannels/internal/scenario"
)

// postJSON posts a body with the given content type.
func postJSON(t *testing.T, ts *httptest.Server, path, contentType, body string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// decodeErr unmarshals a structured error envelope.
func decodeErr(t *testing.T, body []byte) errorBody {
	t.Helper()
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body not JSON: %v: %s", err, body)
	}
	return e
}

func TestV1ListAndSchema(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()

	code, body := get(t, ts, "/v1/experiments")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/experiments: status %d", code)
	}
	var list []exp.Experiment
	if err := json.Unmarshal(body, &list); err != nil || len(list) != len(exp.IDs()) {
		t.Fatalf("v1 experiment list wrong: err=%v n=%d", err, len(list))
	}

	code, body = get(t, ts, "/v1/scenarios/schema")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/scenarios/schema: status %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("schema not JSON: %v", err)
	}
	if doc["title"] != "Scenario" {
		t.Errorf("schema title: %v", doc["title"])
	}
}

// TestV1MethodAndContentTypeChecks: mutating routes enforce method and
// Content-Type with structured errors.
func TestV1MethodAndContentTypeChecks(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()

	// Wrong method on each v1 route.
	code, body := post(t, ts, "/v1/experiments")
	if code != http.StatusMethodNotAllowed || decodeErr(t, body).Code != CodeMethodNotAllowed {
		t.Errorf("POST /v1/experiments: status %d body %s", code, body)
	}
	code, body = post(t, ts, "/v1/scenarios/schema")
	if code != http.StatusMethodNotAllowed || decodeErr(t, body).Code != CodeMethodNotAllowed {
		t.Errorf("POST /v1/scenarios/schema: status %d body %s", code, body)
	}
	code, body = get(t, ts, "/v1/scenarios")
	if code != http.StatusMethodNotAllowed || decodeErr(t, body).Code != CodeMethodNotAllowed {
		t.Errorf("GET /v1/scenarios: status %d body %s", code, body)
	}

	// Wrong / missing Content-Type on the mutating route.
	for _, ct := range []string{"", "text/plain", "application/x-www-form-urlencoded"} {
		code, body = postJSON(t, ts, "/v1/scenarios", ct, `{"role":"experiment","experiment":"fig13"}`)
		if code != http.StatusUnsupportedMediaType || decodeErr(t, body).Code != CodeUnsupportedMedia {
			t.Errorf("Content-Type %q: status %d body %s", ct, code, body)
		}
	}
	// Charset parameter is accepted.
	code, _ = postJSON(t, ts, "/v1/scenarios", "application/json; charset=utf-8", `{"role":"experiment","experiment":"fig13"}`)
	if code != http.StatusOK {
		t.Errorf("application/json with charset rejected: status %d", code)
	}
}

// TestV1SeedValidation: malformed or conflicting seed query values are
// 400s with a structured body, on both v1 and the legacy route.
func TestV1SeedValidation(t *testing.T) {
	ts := httptest.NewServer(New(Options{Run: countingRun(new(int64), false)}).Handler())
	defer ts.Close()

	for _, path := range []string{
		"/v1/scenarios?seed=banana",
		"/v1/scenarios?seed=9999999999999999999999",
		"/v1/scenarios?seed=1&seed=2",
	} {
		code, body := postJSON(t, ts, path, "application/json", `{"role":"experiment","experiment":"fig13"}`)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, code)
			continue
		}
		e := decodeErr(t, body)
		if e.Code != CodeBadRequest || e.Message == "" || e.Legacy == "" {
			t.Errorf("%s: error envelope incomplete: %+v", path, e)
		}
	}
	// Legacy route: same strictness, structured body.
	for _, path := range []string{"/run/fig6a?seed=banana", "/run/fig6a?seed=1&seed=2", "/run/fig6a?seed=1e3"} {
		code, body := post(t, ts, path)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, code)
			continue
		}
		if e := decodeErr(t, body); e.Code != CodeBadRequest {
			t.Errorf("%s: code %q", path, e.Code)
		}
	}
	// Repeated identical seed values are fine.
	if code, _ := post(t, ts, "/run/fig6a?seed=4&seed=4"); code != http.StatusOK {
		t.Errorf("identical repeated seeds rejected: %d", code)
	}
}

// TestV1BadBodies: malformed payloads get structured 400s.
func TestV1BadBodies(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	cases := []struct {
		body string
		code string
	}{
		{``, CodeBadRequest},
		{`{`, CodeBadRequest},
		{`{"role":"channel","warp":9}`, CodeBadRequest}, // unknown field
		{`{"role":"channel"} trailing`, CodeBadRequest}, // trailing data
		{`{"role":"warp"}`, CodeInvalidScenario},        // invalid spec
		{`{"role":"channel","bits":7}`, CodeInvalidScenario},
		{`[]`, CodeBadRequest}, // empty array
		{`[{"role":"channel","bits":8},{"role":"warp"}]`, CodeInvalidScenario},
	}
	for _, tc := range cases {
		code, body := postJSON(t, ts, "/v1/scenarios", "application/json", tc.body)
		if code != http.StatusBadRequest {
			t.Errorf("%q: status %d, want 400 (%s)", tc.body, code, body)
			continue
		}
		if e := decodeErr(t, body); e.Code != tc.code {
			t.Errorf("%q: code %q, want %q (%s)", tc.body, e.Code, tc.code, e.Message)
		}
	}
	// An invalid array item names its index.
	_, body := postJSON(t, ts, "/v1/scenarios", "application/json", `[{"role":"channel","bits":8},{"role":"warp"}]`)
	if e := decodeErr(t, body); !strings.Contains(e.Message, "scenarios[1]") {
		t.Errorf("array error does not name the index: %s", e.Message)
	}
}

// TestV1SingleScenarioMatchesDirect: the HTTP layer returns byte-
// identical result JSON to a direct Go call for a fixed seed, and the
// second request is served from cache.
func TestV1SingleScenarioMatchesDirect(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()

	spec := `{"role":"channel","kind":"cores","bits":16,"seed":42}`
	code, body := postJSON(t, ts, "/v1/scenarios", "application/json", spec)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp scenarioResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Cached || resp.Result == nil {
		t.Fatalf("first response: cached=%v result=%v", resp.Cached, resp.Result)
	}

	var s scenario.Scenario
	if err := json.Unmarshal([]byte(spec), &s); err != nil {
		t.Fatal(err)
	}
	direct, err := scenario.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct)
	got, _ := json.Marshal(resp.Result)
	if string(want) != string(got) {
		t.Errorf("served result differs from direct scenario.Run:\n%s\n%s", want, got)
	}
	if resp.Hash != s.Hash() || resp.Seed != 42 {
		t.Errorf("envelope hash/seed wrong: %s/%d", resp.Hash, resp.Seed)
	}

	code, body = postJSON(t, ts, "/v1/scenarios", "application/json", spec)
	if code != http.StatusOK {
		t.Fatalf("second run: status %d", code)
	}
	var second scenarioResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical request not served from cache")
	}
	got2, _ := json.Marshal(second.Result)
	if string(got2) != string(got) {
		t.Error("cached result differs from the computed one")
	}
}

// TestV1BatchNDJSON: an array gets an ordered NDJSON stream; duplicate
// specs coalesce into one computation; the single-spec cache is shared.
func TestV1BatchNDJSON(t *testing.T) {
	var calls int64
	ts := httptest.NewServer(New(Options{Run: countingRun(&calls, false)}).Handler())
	defer ts.Close()

	batch := `[
	  {"role":"experiment","experiment":"fig6a","seed":3},
	  {"role":"experiment","experiment":"fig6b","seed":3},
	  {"role":"experiment","experiment":"fig6a","seed":3}
	]`
	code, body := postJSON(t, ts, "/v1/scenarios", "application/json", batch)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 3 {
		t.Fatalf("NDJSON lines: %d, want 3", len(lines))
	}
	var parsed []scenarioLine
	for i, ln := range lines {
		var l scenarioLine
		if err := json.Unmarshal([]byte(ln), &l); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if l.Index != i {
			t.Errorf("line %d has index %d (stream out of order)", i, l.Index)
		}
		if l.Error != nil || l.Result == nil {
			t.Errorf("line %d: err=%v result=%v", i, l.Error, l.Result)
		}
		parsed = append(parsed, l)
	}
	if calls != 2 {
		t.Errorf("3 batch items (1 duplicate) ran the experiment %d times, want 2", calls)
	}
	a, _ := json.Marshal(parsed[0].Result)
	c, _ := json.Marshal(parsed[2].Result)
	if string(a) != string(c) {
		t.Error("duplicate batch items returned different results")
	}

	// A follow-up single POST of the same spec hits the shared cache.
	code, body = postJSON(t, ts, "/v1/scenarios", "application/json", `{"role":"experiment","experiment":"fig6a","seed":3}`)
	if code != http.StatusOK {
		t.Fatalf("single after batch: status %d", code)
	}
	var single scenarioResponse
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	if !single.Cached || calls != 2 {
		t.Errorf("single request after batch recomputed (cached=%v calls=%d)", single.Cached, calls)
	}
}

// TestV1BatchSeedDerivation: items without a pinned seed derive from
// the ?seed= base and match the engine's derivation.
func TestV1BatchSeedDerivation(t *testing.T) {
	var calls int64
	ts := httptest.NewServer(New(Options{Run: countingRun(&calls, false)}).Handler())
	defer ts.Close()

	batch := `[{"role":"experiment","experiment":"fig6a"},{"role":"experiment","experiment":"fig6b"}]`
	_, body := postJSON(t, ts, "/v1/scenarios?seed=9", "application/json", batch)
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("NDJSON lines: %d (%s)", len(lines), body)
	}
	for i, id := range []string{"fig6a", "fig6b"} {
		var l scenarioLine
		if err := json.Unmarshal([]byte(lines[i]), &l); err != nil {
			t.Fatal(err)
		}
		// Seeds must match the engine derivation for the same spec.
		want := engineDerive(9, id)
		if l.Seed != want {
			t.Errorf("%s: seed %d, want derived %d", id, l.Seed, want)
		}
	}
}

func engineDerive(base int64, id string) int64 {
	return engine.DeriveScenarioSeed(base, scenario.FromExperiment(id))
}

// TestV1RunFailure: a failing scenario yields a structured 500 (single)
// or an in-stream error line (batch), and failures are cached.
func TestV1RunFailure(t *testing.T) {
	var calls int64
	ts := httptest.NewServer(New(Options{Run: countingRun(&calls, true)}).Handler())
	defer ts.Close()

	spec := `{"role":"experiment","experiment":"fig6a","seed":5}`
	code, body := postJSON(t, ts, "/v1/scenarios", "application/json", spec)
	if code != http.StatusInternalServerError || decodeErr(t, body).Code != CodeRunFailed {
		t.Errorf("failing single: status %d body %s", code, body)
	}
	if code, _ := postJSON(t, ts, "/v1/scenarios", "application/json", spec); code != http.StatusInternalServerError {
		t.Error("cached failure lost")
	}
	if calls != 1 {
		t.Errorf("failing scenario ran %d times, want 1 (errors are cached)", calls)
	}

	// Batch: the stream stays 200, the failing line carries the error.
	code, body = postJSON(t, ts, "/v1/scenarios", "application/json", `[`+spec+`]`)
	if code != http.StatusOK {
		t.Fatalf("batch with failing item: status %d", code)
	}
	var l scenarioLine
	if err := json.Unmarshal(bytes.TrimSpace(body), &l); err != nil {
		t.Fatal(err)
	}
	if l.Error == nil || l.Error.Code != CodeRunFailed || l.Result != nil {
		t.Errorf("failing batch line: %+v", l)
	}
}

// TestV1PanicIsolation: a panicking runner produces a 500 and leaves
// the server usable — through the scenario route.
func TestV1PanicIsolation(t *testing.T) {
	ts := httptest.NewServer(New(Options{Run: func(id string, seed int64) (*exp.Report, error) {
		panic("boom")
	}}).Handler())
	defer ts.Close()
	code, _ := postJSON(t, ts, "/v1/scenarios", "application/json", `{"role":"experiment","experiment":"fig6a"}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d", code)
	}
	if code, _ := get(t, ts, "/v1/experiments"); code != http.StatusOK {
		t.Error("server unusable after a panicking runner")
	}
}

// TestV1RealScenarioRoles runs a real (fast) non-experiment scenario
// through HTTP end to end.
func TestV1RealScenarioRoles(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	code, body := postJSON(t, ts, "/v1/scenarios", "application/json",
		`{"role":"spy","kind":"smt","bits":8,"seed":2}`)
	if code != http.StatusOK {
		t.Fatalf("spy scenario: status %d: %s", code, body)
	}
	var resp scenarioResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result.Role != scenario.RoleSpy || len(resp.Result.SentBits) != 8 {
		t.Errorf("spy result wrong: %+v", resp.Result)
	}
	if _, ok := resp.Result.Extra["accuracy"]; !ok {
		t.Error("spy accuracy missing")
	}
}

func TestLegacyRoutesStillServe(t *testing.T) {
	// The PR-1 routes must keep answering (their original tests also
	// run; this guards the response shape against the shim).
	var calls int64
	srv := New(Options{Run: countingRun(&calls, false)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	code, body := post(t, ts, fmt.Sprintf("/run/%s?seed=6", "fig6a"))
	if code != http.StatusOK {
		t.Fatalf("legacy run: %d", code)
	}
	var rr runResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.ID != "fig6a" || rr.Seed != 6 || rr.Report == nil {
		t.Errorf("legacy response shape broken: %+v", rr)
	}
	// Legacy and v1 keys do not collide: same experiment+seed through
	// v1 is a separate cache entry (the spec hash is not "exp:fig6a").
	if _, err := ts.Client().Post(ts.URL+"/v1/scenarios", "application/json",
		strings.NewReader(`{"role":"experiment","experiment":"fig6a","seed":6}`)); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&calls) != 2 {
		t.Logf("note: legacy and v1 caches are separate namespaces (calls=%d)", calls)
	}
}

// TestCanceledClientDoesNotPoisonCache: a request whose context is
// already canceled must not plant a context error in the shared cache —
// later healthy clients get the real result.
func TestCanceledClientDoesNotPoisonCache(t *testing.T) {
	srv := New(Options{})
	h := srv.Handler()
	spec := `{"role":"experiment","experiment":"fig13","seed":9}`

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/scenarios", strings.NewReader(spec)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	req2 := httptest.NewRequest(http.MethodPost, "/v1/scenarios", strings.NewReader(spec))
	req2.Header.Set("Content-Type", "application/json")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req2)
	if rec2.Code != http.StatusOK {
		t.Fatalf("healthy request after canceled one: status %d body %s", rec2.Code, rec2.Body.Bytes())
	}
	var resp scenarioResponse
	if err := json.Unmarshal(rec2.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Result == nil || resp.Result.Report == nil {
		t.Error("cached entry carries no result after a canceled first client")
	}
}

// TestV1QuerySeedBounds: a query seed no valid spec could express is
// rejected, and ?seed=0 means "default" like the spec field.
func TestV1QuerySeedBounds(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()

	code, body := postJSON(t, ts, "/v1/scenarios?seed=-5", "application/json", `{"role":"experiment","experiment":"fig13"}`)
	if code != http.StatusBadRequest || decodeErr(t, body).Code != CodeBadRequest {
		t.Errorf("negative query seed: status %d body %s", code, body)
	}
	code, body = postJSON(t, ts, "/v1/scenarios?seed=0", "application/json", `{"role":"experiment","experiment":"fig13"}`)
	if code != http.StatusOK {
		t.Fatalf("?seed=0: status %d", code)
	}
	var resp scenarioResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Seed != scenario.DefaultSeed {
		t.Errorf("?seed=0 ran with seed %d, want the default %d", resp.Seed, scenario.DefaultSeed)
	}
}

// TestNameIsPerRequestNotCached: the cache keys on a Name-excluding
// hash, so the requester's label must come from the envelope, never
// from the shared cached result.
func TestNameIsPerRequestNotCached(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	run := func(name string) scenarioResponse {
		code, body := postJSON(t, ts, "/v1/scenarios", "application/json",
			fmt.Sprintf(`{"name":%q,"role":"experiment","experiment":"fig13","seed":4}`, name))
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, code, body)
		}
		var resp scenarioResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	alice := run("alice")
	bob := run("bob")
	if !bob.Cached {
		t.Error("name must not fragment the cache: bob's request should hit alice's entry")
	}
	if alice.Name != "alice" || bob.Name != "bob" {
		t.Errorf("envelope names wrong: %q / %q", alice.Name, bob.Name)
	}
	a, _ := json.Marshal(alice.Result)
	b, _ := json.Marshal(bob.Result)
	if string(a) != string(b) {
		t.Error("shared cached results differ")
	}
	if strings.Contains(string(b), "alice") {
		t.Error("cached result leaks the first requester's label")
	}
}
