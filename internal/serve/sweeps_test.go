package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"ichannels/internal/scenario"
	"ichannels/internal/sweep"
)

// testSweepSpec is a 2×2 channel grid (processor × bits), cheap enough
// to run for real.
const testSweepSpec = `{
  "name": "serve-test",
  "base": {"role": "channel", "kind": "cores"},
  "axes": {"processor": ["Cannon Lake", "Haswell"], "bits": [4, 8]},
  "group_by": ["processor"]
}`

// postBody POSTs a JSON body and returns status + raw response.
func postBody(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// parseSweepStream splits an NDJSON sweep response into cell lines and
// the trailing aggregate line.
func parseSweepStream(t *testing.T, body []byte) (cells []sweepLine, aggregate []byte) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(nil, 1<<20)
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte{}, sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("sweep stream has %d lines, want cells + aggregate:\n%s", len(lines), body)
	}
	for _, ln := range lines[:len(lines)-1] {
		var cell sweepLine
		if err := json.Unmarshal(ln, &cell); err != nil {
			t.Fatalf("cell line %s: %v", ln, err)
		}
		cells = append(cells, cell)
	}
	last := lines[len(lines)-1]
	if !bytes.Contains(last, []byte(`"aggregate"`)) {
		t.Fatalf("last line is not the aggregate envelope: %s", last)
	}
	return cells, last
}

// TestV1SweepSchema: the sweep schema is served and embeds the
// scenario schema.
func TestV1SweepSchema(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	code, body := get(t, ts, "/v1/sweeps/schema")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["title"] != "Sweep" {
		t.Errorf("schema title %v", doc["title"])
	}
	if code, _ := post(t, ts, "/v1/sweeps/schema"); code != http.StatusMethodNotAllowed {
		t.Errorf("POST schema: status %d, want 405", code)
	}
}

// TestV1SweepStreamAndAggregate is the acceptance check for the wire:
// the grid streams one line per cell in expansion order, the final line
// carries the aggregate, and that aggregate is byte-identical to the
// one sweep.Run (the CLI path) computes for the same spec and seed.
func TestV1SweepStreamAndAggregate(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()

	code, body := postBody(t, ts, "/v1/sweeps?seed=11", testSweepSpec)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	cells, aggLine := parseSweepStream(t, body)
	if len(cells) != 4 {
		t.Fatalf("streamed %d cells, want 4", len(cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d (order not preserved)", i, c.Index)
		}
		if c.Error != nil || c.Result == nil {
			t.Errorf("cell %d: error %v", i, c.Error)
		}
		if c.Axes[scenario.AxisProcessor] == "" || c.Axes[scenario.AxisBits] == "" {
			t.Errorf("cell %d missing axis labels: %v", i, c.Axes)
		}
	}

	sw, err := scenario.ParseSweep([]byte(testSweepSpec))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sweep.Run(context.Background(), sw, sweep.Options{BaseSeed: 11, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	var wantAgg bytes.Buffer
	if err := sweep.WriteAggregateLine(&wantAgg, direct.Aggregate); err != nil {
		t.Fatal(err)
	}
	if got, want := string(aggLine)+"\n", wantAgg.String(); got != want {
		t.Errorf("HTTP aggregate differs from the direct run:\nhttp: %s\ndirect: %s", got, want)
	}
	// Per-cell results must match the direct path bytes too.
	for i, c := range cells {
		if c.Seed != direct.Cells[i].Seed || c.Hash != direct.Cells[i].Hash {
			t.Errorf("cell %d identity differs: http (%s, %d) direct (%s, %d)",
				i, c.Hash, c.Seed, direct.Cells[i].Hash, direct.Cells[i].Seed)
		}
	}
}

// TestV1SweepCacheSharing: re-posting a sweep serves every cell from
// the cache, and the cells share the cache with POST /v1/scenarios.
func TestV1SweepCacheSharing(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()

	_, first := postBody(t, ts, "/v1/sweeps?seed=3", testSweepSpec)
	firstCells, _ := parseSweepStream(t, first)
	for i, c := range firstCells {
		if c.Cached {
			t.Errorf("first pass cell %d already cached", i)
		}
	}
	_, second := postBody(t, ts, "/v1/sweeps?seed=3", testSweepSpec)
	secondCells, _ := parseSweepStream(t, second)
	for i, c := range secondCells {
		if !c.Cached {
			t.Errorf("second pass cell %d not served from cache", i)
		}
		if c.Result == nil || c.Seed != firstCells[i].Seed {
			t.Errorf("second pass cell %d differs", i)
		}
	}

	// A single-scenario request for one cell's spec+seed hits the same
	// cache entry.
	spec, _ := json.Marshal(map[string]any{
		"role": "channel", "kind": "cores", "processor": "Cannon Lake",
		"bits": 4, "seed": firstCells[0].Seed,
	})
	code, body := postBody(t, ts, "/v1/scenarios", string(spec))
	if code != http.StatusOK {
		t.Fatalf("scenario request: %d: %s", code, body)
	}
	var resp scenarioResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Error("scenario request did not hit the sweep's cache entry")
	}
}

// TestV1SweepBadRequests: malformed specs, invalid sweeps, and protocol
// violations map to the structured error envelope.
func TestV1SweepBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()

	cases := []struct {
		name     string
		body     string
		wantCode int
		wantErr  string
	}{
		{"not json", "nope", http.StatusBadRequest, CodeBadRequest},
		{"array", "[]", http.StatusBadRequest, CodeBadRequest},
		{"unknown field", `{"base":{"role":"channel"},"axes":{"bits":[4]},"bogus":1}`, http.StatusBadRequest, CodeBadRequest},
		{"no axes", `{"base":{"role":"channel","bits":4},"axes":{}}`, http.StatusBadRequest, CodeInvalidSweep},
		{"invalid cell", `{"base":{"role":"channel"},"axes":{"kind":["cores","warp"],"bits":[4]}}`, http.StatusBadRequest, CodeInvalidSweep},
		{"over cap", `{"base":{"role":"channel","kind":"cores"},"axes":{"bits":[4,8]},"max_cells":70000}`, http.StatusBadRequest, CodeInvalidSweep},
	}
	for _, tc := range cases {
		code, body := postBody(t, ts, "/v1/sweeps", tc.body)
		if code != tc.wantCode {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.wantCode, body)
			continue
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Code != tc.wantErr {
			t.Errorf("%s: error envelope %s, want code %s", tc.name, body, tc.wantErr)
		}
	}
	// A valid sweep above the per-request cell limit is rejected even
	// though its own max_cells admits it (8192 cells: 4096 even bits
	// values × 2 processors).
	var bits []string
	for b := 2; b <= 8192; b += 2 {
		bits = append(bits, strconv.Itoa(b))
	}
	big := `{"base":{"role":"channel","kind":"cores"},` +
		`"axes":{"processor":["Cannon Lake","Haswell"],"bits":[` + strings.Join(bits, ",") + `]},` +
		`"max_cells":65536}`
	if code, body := postBody(t, ts, "/v1/sweeps", big); code != http.StatusBadRequest {
		t.Errorf("over-limit sweep: status %d: %.200s", code, body)
	} else if !strings.Contains(string(body), "per-request limit") {
		t.Errorf("over-limit sweep error: %.200s", body)
	}

	if code, _ := get(t, ts, "/v1/sweeps"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweeps: status %d, want 405", code)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/sweeps", "text/plain", strings.NewReader(testSweepSpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("text/plain: status %d, want 415", resp.StatusCode)
	}
	code, body := postBody(t, ts, "/v1/sweeps?seed=-4", testSweepSpec)
	if code != http.StatusBadRequest {
		t.Errorf("negative seed: status %d: %s", code, body)
	}
}

// TestLRUEvictionKeepsHotEntries: a cache hit refreshes recency, so the
// working set of a long session survives while untouched entries age
// out — the LRU upgrade over PR 1's FIFO.
func TestLRUEvictionKeepsHotEntries(t *testing.T) {
	var calls int64
	srv := New(Options{Run: countingRun(&calls, false), MaxCacheEntries: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post(t, ts, "/run/fig6a?seed=1") // miss → {1}
	post(t, ts, "/run/fig6a?seed=2") // miss → {1, 2}
	post(t, ts, "/run/fig6a?seed=1") // hit: 1 becomes most recent → {2, 1}
	if calls != 2 {
		t.Fatalf("setup ran %d computations, want 2", calls)
	}
	post(t, ts, "/run/fig6a?seed=3") // full: evict LRU = 2 → {1, 3}
	post(t, ts, "/run/fig6a?seed=1") // must still be resident
	if calls != 3 {
		t.Errorf("hot entry was evicted (calls=%d, want 3: seeds 1, 2, 3 computed once each)", calls)
	}
	post(t, ts, "/run/fig6a?seed=2") // was evicted → recompute
	if calls != 4 {
		t.Errorf("cold entry not evicted (calls=%d, want 4)", calls)
	}
}
