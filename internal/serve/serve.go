// Package serve exposes the scenario engine over a versioned HTTP/JSON
// API so a fleet of clients can request arbitrary simulated runs — not
// just the pre-registered figure experiments — without shelling out to
// the CLI:
//
//	GET  /v1/experiments       list registered experiments (id, section, desc)
//	GET  /v1/scenarios/schema  machine-readable Scenario spec schema
//	POST /v1/scenarios         run one scenario (JSON object) or a batch
//	                           (JSON array; the response streams NDJSON,
//	                           one outcome line per scenario, in order)
//	GET  /v1/sweeps/schema     machine-readable Sweep spec schema
//	POST /v1/sweeps            expand and run a parameter grid; the
//	                           response streams one NDJSON line per cell
//	                           followed by an aggregate envelope
//	                           (see internal/sweep)
//
// Errors carry a structured envelope {code, message} (plus a legacy
// "error" field). Mutating routes enforce method and Content-Type
// (application/json); malformed seed query values are rejected with
// HTTP 400.
//
// The legacy PR-1 routes are kept as thin shims over the same cache and
// are deprecated in favor of /v1:
//
//	GET  /experiments        → GET /v1/experiments
//	POST /run/{name}?seed=N  → POST /v1/scenarios with
//	                           {"role":"experiment","experiment":name,"seed":N}
//
// Results are cached in memory keyed by (scenario hash, seed) — the
// generalization of PR 1's (experiment, seed) key. Because the
// simulator is deterministic for a fixed seed (see docs/ARCHITECTURE.md)
// a cached result is bit-for-bit the result a fresh run would produce,
// so repeated requests are served without recomputation. Concurrent
// requests for the same key are coalesced: only the first computes, the
// rest wait for its result — including across items of one batch and
// across unrelated clients. Runner errors are cached too — they are
// equally deterministic — so a failing (scenario, seed) pair does not
// burn CPU on every retry. The cache is bounded
// (Options.MaxCacheEntries, LRU eviction — hits refresh recency, so a
// sweep session's hot repeated cells outlive one-shot grid neighbours)
// so seed sweeps cannot grow the process without limit.
//
// With Options.Store set the cache becomes two-tier: a memory miss
// consults the durable result store (internal/store) before computing,
// and every computed success is persisted, so a restarted server warms
// from disk and eviction never discards work — only the memory copy.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"ichannels/internal/dist"
	"ichannels/internal/engine"
	"ichannels/internal/exp"
	"ichannels/internal/scenario"
	"ichannels/internal/soc"
	"ichannels/internal/store"
)

// DefaultMaxCacheEntries bounds the result cache when Options leaves
// MaxCacheEntries zero.
const DefaultMaxCacheEntries = 1024

// MaxBatchScenarios bounds one POST /v1/scenarios array.
const MaxBatchScenarios = 256

// maxBodyBytes bounds one request body.
const maxBodyBytes = 4 << 20

// legacyKeyPrefix namespaces the deprecated /run/{name} route's cache
// keys: experiment IDs are not scenario content hashes, so they share
// the in-memory cache under this reserved prefix and never enter the
// durable store.
const legacyKeyPrefix = "exp:"

// Error codes of the structured error envelope.
const (
	CodeBadRequest        = "bad_request"
	CodeInvalidScenario   = "invalid_scenario"
	CodeUnknownExperiment = "unknown_experiment"
	CodeMethodNotAllowed  = "method_not_allowed"
	CodeUnsupportedMedia  = "unsupported_media_type"
	CodeTooLarge          = "payload_too_large"
	CodeRunFailed         = "run_failed"
	CodeNotFound          = "not_found"
	CodeStoreError        = "store_error"
	CodeUnsupported       = "unsupported"
)

// Options configures a Server.
type Options struct {
	// Run overrides the experiment executor (nil means exp.Run) for
	// both the legacy /run/{name} route and experiment-role scenarios.
	// Injected by tests to observe cache behavior.
	Run engine.RunFunc
	// MaxCacheEntries bounds the result cache; when full, the
	// least-recently-used completed entry is evicted (a cache hit
	// refreshes the entry's recency, so a sweep session's hot repeated
	// cells survive long grids of one-shot neighbours). Zero means
	// DefaultMaxCacheEntries. Negative disables caching — and with it
	// the coalescing of concurrent identical requests, which rides on
	// the published cache entries.
	MaxCacheEntries int
	// MaxConcurrent bounds how many simulations run at once across all
	// requests (coalesced duplicates share one slot). Zero means
	// GOMAXPROCS, negative means unbounded.
	MaxConcurrent int
	// Store, when set, is the durable tier under the in-memory cache:
	// a memory miss consults the store before computing, and every
	// freshly computed success is persisted. A restarted server warms
	// from disk — re-posting a sweep recomputes nothing — and LRU
	// eviction costs only memory, never the corpus. An unreadable
	// entry degrades to a miss; a failed write to a skipped persist.
	Store store.Store
	// Worker additionally exposes the distributed tier's cell endpoint
	// (POST /v1/cells, see internal/dist): a coordinator dispatches
	// sweep cells here and verifies the checksummed envelope responses.
	// Off by default — a plain API server is not a compute worker.
	Worker bool
	// GCEvery, when positive and the store supports retention
	// (store.DirStore's GCWith — both directory layouts and the replica
	// cache do), runs an age/size GC pass on that interval for the
	// lifetime of the server. GCMaxAge and GCMaxBytes are the pass's
	// GCOptions; both zero still removes corrupt entries and stale
	// temporaries. The retention config and last report are advertised
	// via /v1/stats, and GCMaxBytes also caps uploaded envelopes on the
	// shared store routes.
	GCEvery    time.Duration
	GCMaxAge   time.Duration
	GCMaxBytes int64
	// ShareStore additionally exposes the store's object routes
	// (GET/PUT /v1/store/{key}, GET /v1/store — see store.HTTPBackend):
	// remote processes opening `-store http://this-host` read and write
	// this server's corpus without a shared filesystem. Requires Store;
	// off by default — sharing a corpus is an operator decision.
	ShareStore bool
}

// Server runs scenarios on demand and caches their results.
type Server struct {
	run        engine.RunFunc  // legacy experiment executor
	runner     scenario.Runner // scenario executor (ExpRun wired to run)
	machines   *soc.Pool       // machine pool the runner recycles SoCs through
	maxCache   int
	sem        chan struct{} // nil = unbounded; else bounds running simulations
	store      store.Store   // nil = memory-only; else the durable tier
	worker     bool          // serve the /v1/cells dispatch endpoint
	shareStore bool          // serve the /v1/store object routes

	// Retention config (see Options.GCEvery); zero values mean off.
	gcEvery    time.Duration
	gcMaxAge   time.Duration
	gcMaxBytes int64
	gcStop     chan struct{}
	closeOnce  sync.Once

	mu          sync.Mutex
	cache       map[cacheKey]*cacheEntry
	order       []cacheKey // recency order, oldest first, for LRU eviction
	hits        int64
	misses      int64
	storeHits   int64
	storeMisses int64
	storeErrors int64
	storeTrans  int64 // transient store failures (network-class)
	storePerm   int64 // permanent store failures (corrupt envelopes)
	gcRuns      int64
	lastGC      *store.GCReport
	lastGCErr   string
	lastGCAt    time.Time
}

// cacheKey identifies one deterministic result: the scenario's content
// hash plus the effective seed. Legacy experiment runs use the reserved
// "exp:" prefix so they share the cache without colliding with spec
// hashes (which are fixed-width hex).
type cacheKey struct {
	Hash string
	Seed int64
}

// cacheEntry coalesces concurrent computations of one key: the entry is
// published under the mutex, the computation runs exactly once, and
// ready is closed when it finishes so any number of waiters (including
// NDJSON batch writers) can block on it. Eviction skips in-flight
// entries (evicting one would let a concurrent identical request start
// a duplicate simulation).
type cacheEntry struct {
	once    sync.Once
	ready   chan struct{}
	result  *scenario.Result
	err     error
	elapsed time.Duration
	// fromStore marks a result fetched from the durable tier instead
	// of computed (set before ready closes; read only after it).
	fromStore bool
}

// served reports whether the entry was already complete in memory
// (memCached) or filled from the store — the conditions under which a
// response is marked "cached". Call only after the entry is ready.
func (e *cacheEntry) served(memCached bool) bool {
	return memCached || e.fromStore
}

func newCacheEntry() *cacheEntry { return &cacheEntry{ready: make(chan struct{})} }

// done reports whether the computation has finished.
func (e *cacheEntry) done() bool {
	select {
	case <-e.ready:
		return true
	default:
		return false
	}
}

// New builds a Server.
func New(opts Options) *Server {
	run := opts.Run
	if run == nil {
		run = exp.Run
	}
	maxCache := opts.MaxCacheEntries
	if maxCache == 0 {
		maxCache = DefaultMaxCacheEntries
	}
	var sem chan struct{}
	switch c := opts.MaxConcurrent; {
	case c == 0:
		sem = make(chan struct{}, runtime.GOMAXPROCS(0))
	case c > 0:
		sem = make(chan struct{}, c)
	}
	machines := soc.NewPool()
	s := &Server{
		run:        run,
		runner:     scenario.Runner{ExpRun: run, Machines: machines},
		machines:   machines,
		maxCache:   maxCache,
		sem:        sem,
		store:      opts.Store,
		worker:     opts.Worker,
		shareStore: opts.ShareStore && opts.Store != nil,
		gcEvery:    opts.GCEvery,
		gcMaxAge:   opts.GCMaxAge,
		gcMaxBytes: opts.GCMaxBytes,
		cache:      map[cacheKey]*cacheEntry{},
	}
	if s.gcEvery > 0 {
		if _, ok := s.store.(retainer); ok {
			s.gcStop = make(chan struct{})
			go s.retentionLoop()
		}
	}
	return s
}

// retainer is the retention surface a store must expose for the timer
// (both directory layouts and the replica cache satisfy it).
type retainer interface {
	GCWith(opts store.GCOptions) (*store.GCReport, error)
}

// retentionLoop runs GC passes on the configured interval until Close.
func (s *Server) retentionLoop() {
	t := time.NewTicker(s.gcEvery)
	defer t.Stop()
	for {
		select {
		case <-s.gcStop:
			return
		case <-t.C:
			s.RunRetention()
		}
	}
}

// RunRetention runs one retention pass now (the timer calls it; tests
// and operators may too). It returns the pass's report, or an error
// when the store does not support retention or the pass failed.
func (s *Server) RunRetention() (*store.GCReport, error) {
	ret, ok := s.store.(retainer)
	if !ok {
		return nil, fmt.Errorf("serve: store does not support retention")
	}
	rep, err := ret.GCWith(store.GCOptions{MaxAge: s.gcMaxAge, MaxBytes: s.gcMaxBytes})
	s.mu.Lock()
	s.gcRuns++
	s.lastGCAt = time.Now()
	s.lastGC, s.lastGCErr = rep, ""
	if err != nil {
		s.lastGCErr = err.Error()
	}
	s.mu.Unlock()
	return rep, err
}

// Close stops the retention timer. Safe to call more than once; a
// server without retention needs no Close, but callers may do so
// unconditionally.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.gcStop != nil {
			close(s.gcStop)
		}
	})
	return nil
}

// Handler returns the HTTP routing for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// v1 routes do their own method checks so 405s carry the
	// structured error envelope.
	mux.HandleFunc("/v1/experiments", s.v1Experiments)
	mux.HandleFunc("/v1/scenarios/schema", s.v1Schema)
	mux.HandleFunc("/v1/scenarios", s.v1Scenarios)
	mux.HandleFunc("/v1/sweeps/schema", s.v1SweepSchema)
	mux.HandleFunc("/v1/sweeps", s.v1Sweeps)
	mux.HandleFunc("/v1/stats", s.v1Stats)
	if s.worker {
		mux.HandleFunc(dist.DispatchPath, s.v1Cells)
	}
	if s.shareStore {
		mux.HandleFunc(store.StorePathPrefix, s.v1StoreIndex)
		mux.HandleFunc(store.StorePathPrefix+"/", s.v1StoreEntry)
	}
	// Legacy shims (deprecated; see the package comment).
	mux.HandleFunc("GET /experiments", s.handleList)
	mux.HandleFunc("POST /run/{name}", s.handleRun)
	return mux
}

// CacheStats reports cache hits and misses so far (hit = the request
// found a published entry, even if it then waited for the computation).
func (s *Server) CacheStats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

// entry returns the cache entry for key, creating (and publishing) it
// if absent. cached reports whether the result was already complete
// when the request arrived — the condition under which the response is
// marked served-from-cache; a coalesced waiter on an in-flight entry
// still pays the compute wall-clock.
//
// Eviction is LRU: a hit moves the key to the back of the recency
// order, so long sweep sessions re-requesting a hot working set keep it
// resident while one-shot grid cells age out from the front.
func (s *Server) entry(key cacheKey) (ent *cacheEntry, cached bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ent, hit := s.cache[key]
	cached = hit && ent != nil && ent.done()
	if hit {
		s.hits++
		s.touchLocked(key)
		return ent, cached
	}
	s.misses++
	ent = newCacheEntry()
	if s.maxCache > 0 {
		// Evict least-recently-used completed entries; in-flight ones
		// are skipped (the cap may be exceeded transiently, bounded by
		// MaxConcurrent plus waiters).
		for len(s.cache) >= s.maxCache {
			evicted := false
			for i, k := range s.order {
				if e := s.cache[k]; e != nil && e.done() {
					s.order = append(s.order[:i:i], s.order[i+1:]...)
					delete(s.cache, k)
					evicted = true
					break
				}
			}
			if !evicted {
				break
			}
		}
		s.cache[key] = ent
		s.order = append(s.order, key)
	}
	return ent, false
}

// touchLocked moves key to the back of the recency order. The linear
// scan is bounded by MaxCacheEntries and is noise next to the
// simulations the cache fronts.
func (s *Server) touchLocked(key cacheKey) {
	for i := len(s.order) - 1; i >= 0; i-- {
		if s.order[i] == key {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = key
			return
		}
	}
}

// compute fills ent for key exactly once and wakes all waiters: fetch
// from the durable tier when it holds the key, run fn (bounded by the
// simulation semaphore) otherwise, persisting fresh successes back.
// Store reads happen outside the semaphore — a disk hit must not queue
// behind running simulations.
func (s *Server) compute(key cacheKey, ent *cacheEntry, fn func() (*scenario.Result, error)) {
	ent.once.Do(func() {
		defer close(ent.ready)
		// The legacy /run/{name} shim keys on an "exp:" pseudo-hash,
		// not a scenario content hash; those entries stay memory-only
		// so the durable corpus holds only content-addressed results
		// (v1 experiment-role scenarios persist under real hashes).
		useStore := s.store != nil && !strings.HasPrefix(key.Hash, legacyKeyPrefix)
		if useStore {
			t0 := time.Now()
			res, ok, err := s.store.Get(store.Key(key))
			switch {
			case err != nil:
				s.countStoreErr(err) // unreadable entry: recompute
			case ok:
				ent.result, ent.fromStore = res, true
				ent.elapsed = time.Since(t0)
				s.countStore(storeTallyHit)
				return
			default:
				s.countStore(storeTallyMiss)
			}
		}
		if s.sem != nil {
			s.sem <- struct{}{}
			defer func() { <-s.sem }()
		}
		// elapsed_us reports compute (or disk-read) cost only — the
		// semaphore wait above is queueing, not simulation.
		t0 := time.Now()
		ent.result, ent.err = fn()
		ent.elapsed = time.Since(t0)
		if useStore && ent.err == nil {
			if err := s.store.Put(store.Key(key), ent.result); err != nil {
				s.countStoreErr(err)
			}
		}
	})
}

// storeTally classifies one durable-tier event for the counters.
type storeTally int

const (
	storeTallyHit storeTally = iota
	storeTallyMiss
)

// countStore tallies durable-tier activity for StoreStats and the
// /v1/stats endpoint. Both the compute read-through path and the shared
// /v1/store object routes feed it, so the counters describe corpus
// effectiveness across every consumer of this server's store.
func (s *Server) countStore(t storeTally) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch t {
	case storeTallyHit:
		s.storeHits++
	default:
		s.storeMisses++
	}
}

// countStoreErr tallies one degraded store operation, split by failure
// class: transient (network blip — retrying or recomputing covers it)
// vs permanent (corrupt envelope — the bytes are wrong at the source).
func (s *Server) countStoreErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.storeErrors++
	if store.IsPermanentError(err) {
		s.storePerm++
	} else {
		s.storeTrans++
	}
}

// StoreStats reports durable-tier hits and degraded operations
// (unreadable entries and failed writes) so far. Zeroes when no store
// is configured. See StoreCounters for the full hit/miss/error split.
func (s *Server) StoreStats() (hits, failures int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storeHits, s.storeErrors
}

// StoreCounters reports the durable tier's full tally: hits (reads
// served from the corpus), misses (clean absences that led to a
// compute), and errors (unreadable entries and failed writes).
func (s *Server) StoreCounters() (hits, misses, errors int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storeHits, s.storeMisses, s.storeErrors
}

// StoreErrorCounters splits the error tally by failure class:
// transient (network-class, degraded and recovered) vs permanent
// (corrupt envelopes — a damaged or byzantine upstream).
func (s *Server) StoreErrorCounters() (transient, permanent int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storeTrans, s.storePerm
}

// ---- wire envelopes ----

// errorBody is the structured error envelope. The legacy "error" field
// duplicates Message for PR-1 clients.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Legacy  string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func errBody(code, format string, args ...any) *errorBody {
	msg := fmt.Sprintf(format, args...)
	return &errorBody{Code: code, Message: msg, Legacy: msg}
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errBody(code, format, args...))
}

// parseSeed extracts an optional integer seed query value, rejecting
// malformed or conflicting values instead of silently defaulting.
func parseSeed(r *http.Request) (seed int64, set bool, err error) {
	vals := r.URL.Query()["seed"]
	if len(vals) == 0 {
		return 0, false, nil
	}
	for _, v := range vals[1:] {
		if v != vals[0] {
			return 0, false, fmt.Errorf("conflicting seed values %q and %q", vals[0], v)
		}
	}
	seed, perr := strconv.ParseInt(vals[0], 10, 64)
	if perr != nil {
		return 0, false, fmt.Errorf("bad seed %q: must be an integer", vals[0])
	}
	return seed, true, nil
}

// requireJSON enforces the Content-Type of mutating routes.
func requireJSON(w http.ResponseWriter, r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	mt, _, err := mime.ParseMediaType(ct)
	if ct == "" || err != nil || mt != "application/json" {
		writeError(w, http.StatusUnsupportedMediaType, CodeUnsupportedMedia,
			"Content-Type must be application/json, got %q", ct)
		return false
	}
	return true
}

// methodOnly enforces one HTTP method with a structured 405.
func methodOnly(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
			"%s %s not allowed; use %s", r.Method, r.URL.Path, method)
		return false
	}
	return true
}

// ---- v1 handlers ----

func (s *Server) v1Experiments(w http.ResponseWriter, r *http.Request) {
	if !methodOnly(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, exp.Experiments())
}

func (s *Server) v1Schema(w http.ResponseWriter, r *http.Request) {
	if !methodOnly(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(scenario.SchemaJSON())
}

// scenarioResponse is the wire form of one scenario run. The result
// object is the deterministic payload; name/cached/elapsed_us are
// serving metadata (the name is the requester's label — results are
// shared through the cache, so the label lives here, not in them).
type scenarioResponse struct {
	Name      string           `json:"name,omitempty"`
	Hash      string           `json:"hash"`
	Seed      int64            `json:"seed"`
	Cached    bool             `json:"cached"`
	ElapsedUS float64          `json:"elapsed_us"`
	Result    *scenario.Result `json:"result"`
}

// scenarioLine is one NDJSON line of a batch response. Exactly one of
// Error and Result is set.
type scenarioLine struct {
	Index     int              `json:"index"`
	Name      string           `json:"name,omitempty"`
	Hash      string           `json:"hash"`
	Seed      int64            `json:"seed"`
	Cached    bool             `json:"cached"`
	ElapsedUS float64          `json:"elapsed_us"`
	Error     *errorBody       `json:"error,omitempty"`
	Result    *scenario.Result `json:"result,omitempty"`
}

// v1Scenarios accepts a single Scenario object or an array of them.
func (s *Server) v1Scenarios(w http.ResponseWriter, r *http.Request) {
	if !methodOnly(w, r, http.MethodPost) {
		return
	}
	if !requireJSON(w, r) {
		return
	}
	querySeed, seedSet, err := parseSeed(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	// Scenario seeds are non-negative (spec rule); a query seed must
	// not smuggle in values no valid spec could reproduce. Zero means
	// "default", exactly like a spec's seed field.
	if seedSet && querySeed < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "seed must be non-negative, got %d", querySeed)
		return
	}
	if seedSet && querySeed == 0 {
		seedSet = false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, CodeTooLarge,
			"request body exceeds %d bytes", maxBodyBytes)
		return
	}
	specs, isArray, err := scenario.ParseSpecs(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "decoding scenarios: %v (see /v1/scenarios/schema)", err)
		return
	}
	if isArray {
		s.runBatch(w, r, specs, querySeed, seedSet)
		return
	}
	n := specs[0].Normalized()
	if err := n.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidScenario, "%v", err)
		return
	}
	seed := n.Seed
	if seed == 0 {
		seed = scenario.DefaultSeed
		if seedSet {
			seed = querySeed
		}
	}
	hash := n.Hash()
	key := cacheKey{Hash: hash, Seed: seed}
	ent, cached := s.entry(key)
	s.compute(key, ent, func() (*scenario.Result, error) {
		return s.runScenarioIsolated(r, n, seed)
	})
	if ent.err != nil {
		writeError(w, http.StatusInternalServerError, CodeRunFailed,
			"%s (seed %d): %v", n.Describe(), seed, ent.err)
		return
	}
	writeJSON(w, http.StatusOK, scenarioResponse{
		Name: n.Name, Hash: hash, Seed: seed, Cached: ent.served(cached),
		ElapsedUS: float64(ent.elapsed) / float64(time.Microsecond),
		Result:    ent.result,
	})
}

// runBatch executes a scenario array and streams NDJSON outcomes in
// request order as they complete.
func (s *Server) runBatch(w http.ResponseWriter, r *http.Request, specs []scenario.Scenario, querySeed int64, seedSet bool) {
	if len(specs) > MaxBatchScenarios {
		writeError(w, http.StatusBadRequest, CodeBadRequest,
			"batch of %d scenarios exceeds the limit of %d", len(specs), MaxBatchScenarios)
		return
	}
	baseSeed := int64(scenario.DefaultSeed)
	if seedSet {
		baseSeed = querySeed
	}
	// Validate everything up front: a malformed batch fails whole,
	// before any simulation runs.
	type item struct {
		spec   scenario.Scenario
		hash   string
		seed   int64
		ent    *cacheEntry
		cached bool
	}
	items := make([]item, len(specs))
	for i, spec := range specs {
		n := spec.Normalized()
		if err := n.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidScenario, "scenarios[%d]: %v", i, err)
			return
		}
		items[i].spec = n
		items[i].hash = n.Hash()
		items[i].seed = n.Seed
		if items[i].seed == 0 {
			items[i].seed = engine.DeriveScenarioSeed(baseSeed, n)
		}
	}
	// Publish all entries first so duplicates inside the batch coalesce,
	// then compute concurrently (bounded by the simulation semaphore).
	for i := range items {
		items[i].ent, items[i].cached = s.entry(cacheKey{Hash: items[i].hash, Seed: items[i].seed})
	}
	for i := range items {
		it := items[i]
		go s.compute(cacheKey{Hash: it.hash, Seed: it.seed}, it.ent, func() (*scenario.Result, error) {
			return s.runScenarioIsolated(r, it.spec, it.seed)
		})
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := range items {
		it := items[i]
		select {
		case <-it.ent.ready:
		case <-r.Context().Done():
			// Client went away; in-flight computations still complete
			// into the cache for the next request.
			return
		}
		line := scenarioLine{
			Index: i, Name: it.spec.Name, Hash: it.hash, Seed: it.seed,
			Cached:    it.ent.served(it.cached),
			ElapsedUS: float64(it.ent.elapsed) / float64(time.Microsecond),
		}
		if it.ent.err != nil {
			line.Error = errBody(CodeRunFailed, "%s (seed %d): %v", it.spec.Describe(), it.seed, it.ent.err)
		} else {
			line.Result = it.ent.result
		}
		if err := enc.Encode(line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// runScenarioIsolated executes one scenario with panic isolation. The
// computation is detached from the request's cancellation (the values
// are kept): entries are shared across requests, so a client that
// disconnects mid-run must not poison the cache with a context error
// that later, healthy clients would then be served. The simulation is
// short and completes into the cache either way — exactly what a
// retrying client wants.
func (s *Server) runScenarioIsolated(r *http.Request, n scenario.Scenario, seed int64) (res *scenario.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("scenario %s panicked: %v", n.Hash(), p)
		}
	}()
	return s.runner.RunSeeded(context.WithoutCancel(r.Context()), n, seed)
}

// ---- legacy shims ----

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, exp.Experiments())
}

// runResponse is the legacy wire form of one experiment run. The report
// object is the deterministic payload; cached/elapsed_us are serving
// metadata.
type runResponse struct {
	ID        string      `json:"id"`
	Section   string      `json:"section,omitempty"`
	Desc      string      `json:"desc,omitempty"`
	Seed      int64       `json:"seed"`
	Cached    bool        `json:"cached"`
	ElapsedUS float64     `json:"elapsed_us"`
	Report    *exp.Report `json:"report"`
}

// handleRun is the legacy single-experiment route. It shares the
// scenario cache under the reserved "exp:" key prefix.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := exp.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownExperiment, "unknown experiment %q", name)
		return
	}
	seed, set, err := parseSeed(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if !set {
		seed = 1
	}

	key := cacheKey{Hash: legacyKeyPrefix + name, Seed: seed}
	ent, cached := s.entry(key)
	s.compute(key, ent, func() (*scenario.Result, error) {
		rep, err := engine.RunIsolated(s.run, name, seed)
		if err != nil {
			return nil, err
		}
		return &scenario.Result{Role: scenario.RoleExperiment, Experiment: name, Seed: seed, Report: rep}, nil
	})
	if ent.err != nil {
		writeError(w, http.StatusInternalServerError, CodeRunFailed, "%s (seed %d): %v", name, seed, ent.err)
		return
	}
	writeJSON(w, http.StatusOK, runResponse{
		ID: name, Section: e.Section, Desc: e.Desc, Seed: seed,
		Cached:    ent.served(cached),
		ElapsedUS: float64(ent.elapsed) / float64(time.Microsecond),
		Report:    ent.result.Report,
	})
}
