// Package serve exposes the experiment registry over HTTP so a fleet of
// clients can request figure/table regenerations without shelling out to
// the CLI:
//
//	GET  /experiments        list registered experiments (id, section, desc)
//	POST /run/{name}?seed=N  run one experiment with an explicit seed
//
// Results are cached in memory keyed by (experiment, seed). Because the
// simulator is deterministic for a fixed seed (see docs/ARCHITECTURE.md),
// a cached report is bit-for-bit the report a fresh run would produce, so
// repeated requests are served without recomputation. Concurrent requests
// for the same key are coalesced: only the first computes, the rest wait
// for its result. Runner errors are cached too — they are equally
// deterministic — so a failing (experiment, seed) pair does not burn CPU
// on every retry. The cache is bounded (Options.MaxCacheEntries, FIFO
// eviction) so seed sweeps cannot grow the process without limit.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ichannels/internal/engine"
	"ichannels/internal/exp"
)

// DefaultMaxCacheEntries bounds the result cache when Options leaves
// MaxCacheEntries zero.
const DefaultMaxCacheEntries = 1024

// Options configures a Server.
type Options struct {
	// Run overrides the experiment executor (nil means exp.Run).
	// Injected by tests to observe cache behavior.
	Run engine.RunFunc
	// MaxCacheEntries bounds the result cache; when full, the oldest
	// completed entry is evicted (FIFO). Zero means
	// DefaultMaxCacheEntries. Negative disables caching — and with it
	// the coalescing of concurrent identical requests, which rides on
	// the published cache entries.
	MaxCacheEntries int
	// MaxConcurrent bounds how many simulations run at once across all
	// requests (coalesced duplicates share one slot). Zero means
	// GOMAXPROCS, negative means unbounded.
	MaxConcurrent int
}

// Server runs experiments on demand and caches their reports.
type Server struct {
	run      engine.RunFunc
	maxCache int
	sem      chan struct{} // nil = unbounded; else bounds running simulations

	mu     sync.Mutex
	cache  map[cacheKey]*cacheEntry
	order  []cacheKey // insertion order, for FIFO eviction
	hits   int64
	misses int64
}

type cacheKey struct {
	ID   string
	Seed int64
}

// cacheEntry coalesces concurrent computations of one key: the entry is
// published under the mutex, the computation runs exactly once. done
// flips after the computation finishes so eviction can skip in-flight
// entries (evicting one would let a concurrent identical request start
// a duplicate simulation).
type cacheEntry struct {
	once    sync.Once
	done    atomic.Bool
	report  *exp.Report
	err     error
	elapsed time.Duration
}

// New builds a Server.
func New(opts Options) *Server {
	run := opts.Run
	if run == nil {
		run = exp.Run
	}
	maxCache := opts.MaxCacheEntries
	if maxCache == 0 {
		maxCache = DefaultMaxCacheEntries
	}
	var sem chan struct{}
	switch c := opts.MaxConcurrent; {
	case c == 0:
		sem = make(chan struct{}, runtime.GOMAXPROCS(0))
	case c > 0:
		sem = make(chan struct{}, c)
	}
	return &Server{run: run, maxCache: maxCache, sem: sem, cache: map[cacheKey]*cacheEntry{}}
}

// Handler returns the HTTP routing for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /experiments", s.handleList)
	mux.HandleFunc("POST /run/{name}", s.handleRun)
	return mux
}

// CacheStats reports cache hits and misses so far (hit = the request
// found a published entry, even if it then waited for the computation).
func (s *Server) CacheStats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits, s.misses
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, exp.Experiments())
}

// runResponse is the wire form of one run. The report object is the
// deterministic payload; cached/elapsed_us are serving metadata.
type runResponse struct {
	ID        string      `json:"id"`
	Section   string      `json:"section,omitempty"`
	Desc      string      `json:"desc,omitempty"`
	Seed      int64       `json:"seed"`
	Cached    bool        `json:"cached"`
	ElapsedUS float64     `json:"elapsed_us"`
	Report    *exp.Report `json:"report"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	e, ok := exp.Lookup(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown experiment %q", name)
		return
	}
	seed := int64(1)
	if q := r.URL.Query().Get("seed"); q != "" {
		var err error
		if seed, err = strconv.ParseInt(q, 10, 64); err != nil {
			writeError(w, http.StatusBadRequest, "bad seed %q: must be an integer", q)
			return
		}
	}

	key := cacheKey{ID: name, Seed: seed}
	s.mu.Lock()
	ent, hit := s.cache[key]
	// A request only counts as served-from-cache if the result already
	// existed when it arrived; a coalesced waiter on an in-flight entry
	// still pays the compute wall-clock.
	cached := hit && ent != nil && ent.done.Load()
	if hit {
		s.hits++
	} else {
		s.misses++
		ent = &cacheEntry{}
		if s.maxCache > 0 {
			// Evict oldest completed entries; in-flight ones are
			// skipped (the cap may be exceeded transiently, bounded
			// by MaxConcurrent plus waiters).
			for len(s.cache) >= s.maxCache {
				evicted := false
				for i, k := range s.order {
					if e := s.cache[k]; e != nil && e.done.Load() {
						s.order = append(s.order[:i:i], s.order[i+1:]...)
						delete(s.cache, k)
						evicted = true
						break
					}
				}
				if !evicted {
					break
				}
			}
			s.cache[key] = ent
			s.order = append(s.order, key)
		}
	}
	s.mu.Unlock()

	ent.once.Do(func() {
		if s.sem != nil {
			s.sem <- struct{}{}
			defer func() { <-s.sem }()
		}
		t0 := time.Now()
		ent.report, ent.err = engine.RunIsolated(s.run, name, seed)
		ent.elapsed = time.Since(t0)
		ent.done.Store(true)
	})

	if ent.err != nil {
		writeError(w, http.StatusInternalServerError, "%s (seed %d): %v", name, seed, ent.err)
		return
	}
	writeJSON(w, http.StatusOK, runResponse{
		ID: name, Section: e.Section, Desc: e.Desc, Seed: seed,
		Cached:    cached,
		ElapsedUS: float64(ent.elapsed) / float64(time.Microsecond),
		Report:    ent.report,
	})
}
